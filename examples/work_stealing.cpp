// ACilk-5 in miniature: run Fig. 4 benchmarks on the work-stealing runtime
// under the symmetric (Cilk-5-style, mfence-per-pop) and asymmetric
// (ACilk-5-style, l-mfence software prototype) fence policies, and print
// the per-benchmark relative execution time plus the event counts the
// paper's Sec. 5 analysis is based on.
//
// Usage:  work_stealing [workers] [benchmark-name] [--adaptive]
//                       [--policy=table.json]
//         (default: 2 workers, fib + cilksort + nqueens)
//
// --adaptive adds a third runtime whose workers pick their fence at
// runtime (lbmf::adapt: monitor -> crossover table -> hysteresis) and
// reports the mode switches each run adopted. --policy loads the crossover
// table from a fence_inferencer --policy-json file instead of the builtin
// E17 frontier.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lbmf/cilkbench/registry.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;
using cilkbench::Benchmark;
using cilkbench::Scale;

namespace {

template <FencePolicy P>
double run_once(ws::Scheduler<P>& sched, const Benchmark& b,
                ws::SchedulerStats* stats_out, std::uint64_t* checksum) {
  sched.reset_stats();
  Stopwatch sw;
  *checksum = cilkbench::run_on(sched, b);
  const double secs = sw.seconds();
  *stats_out = sched.stats();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool adaptive = false;
  const char* policy_path = nullptr;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
    } else if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      policy_path = argv[i] + 9;
      adaptive = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const std::size_t workers =
      !positional.empty() ? static_cast<std::size_t>(std::atoi(positional[0]))
                          : 2;
  const char* only = positional.size() > 1 ? positional[1] : nullptr;

  ws::AdaptationOptions aopts;
  if (policy_path != nullptr) {
    std::ifstream in(policy_path);
    std::stringstream ss;
    ss << in.rdbuf();
    const auto table = adapt::PolicyTable::from_json(ss.str());
    if (!table) {
      std::fprintf(stderr, "could not parse policy table from %s\n",
                   policy_path);
      return 1;
    }
    aopts.table = *table;
    std::printf("policy table: %s\n", policy_path);
  }

  const auto sym_list = cilkbench::all_benchmarks<SymmetricFence>(Scale::kTest);
  const auto asym_list =
      cilkbench::all_benchmarks<AsymmetricSignalFence>(Scale::kTest);
  const auto adapt_list =
      cilkbench::all_benchmarks<adapt::AdaptiveFence>(Scale::kTest);

  ws::Scheduler<SymmetricFence> sym(workers);
  ws::Scheduler<AsymmetricSignalFence> asym(workers);
  ws::Scheduler<adapt::AdaptiveFence> adap(workers);
  if (adaptive) adap.enable_adaptation(aopts);

  std::printf("%-10s %10s %10s %7s %9s %8s %10s", "benchmark", "sym(ms)",
              "asym(ms)", "rel", "spawns", "steals", "steal-eff");
  if (adaptive) std::printf(" %10s %9s", "adapt(ms)", "switches");
  std::printf("\n");
  const char* defaults[] = {"fib", "cilksort", "nqueens"};
  // Switch counts live in the policy slots and survive reset_stats();
  // difference successive totals to report per-benchmark adoptions.
  std::uint64_t switches_seen = 0;
  for (std::size_t i = 0; i < sym_list.size(); ++i) {
    const Benchmark& b = sym_list[i];
    if (only != nullptr) {
      if (b.name != only) continue;
    } else {
      bool pick = false;
      for (const char* d : defaults) pick |= b.name == d;
      if (!pick) continue;
    }

    ws::SchedulerStats ss{}, as{};
    std::uint64_t sum_s = 0, sum_a = 0;
    const double t_sym = run_once(sym, b, &ss, &sum_s);
    const double t_asym = run_once(asym, asym_list[i], &as, &sum_a);
    if (sum_s != sum_a) {
      std::fprintf(stderr, "checksum mismatch on %s!\n", b.name.c_str());
      return 1;
    }
    std::printf("%-10s %10.2f %10.2f %7.2f %9llu %8llu %9.0f%%",
                b.name.c_str(), t_sym * 1e3, t_asym * 1e3,
                t_sym > 0 ? t_asym / t_sym : 0.0,
                static_cast<unsigned long long>(as.spawns),
                static_cast<unsigned long long>(as.steals_success),
                as.steal_success_ratio() * 100.0);
    if (adaptive) {
      ws::SchedulerStats ds{};
      std::uint64_t sum_d = 0;
      const double t_adapt = run_once(adap, adapt_list[i], &ds, &sum_d);
      if (sum_s != sum_d) {
        std::fprintf(stderr, "adaptive checksum mismatch on %s!\n",
                     b.name.c_str());
        return 1;
      }
      std::printf(" %10.2f %9llu", t_adapt * 1e3,
                  static_cast<unsigned long long>(ds.policy_switches -
                                                  switches_seen));
      switches_seen = ds.policy_switches;
    }
    std::printf("\n");
  }

  std::printf(
      "\nrel < 1 means the asymmetric runtime (victim pays only a compiler\n"
      "fence; thieves signal) beat the symmetric mfence-per-pop baseline.\n"
      "steal-eff is the paper's signals-to-successful-steals ratio.\n");
  if (adaptive) {
    std::printf(
        "switches counts the quiescent-point fence changes the adaptive\n"
        "workers adopted while tracking the run's steal/pop mix.\n");
  }
  return 0;
}
