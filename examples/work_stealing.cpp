// ACilk-5 in miniature: run Fig. 4 benchmarks on the work-stealing runtime
// under the symmetric (Cilk-5-style, mfence-per-pop) and asymmetric
// (ACilk-5-style, l-mfence software prototype) fence policies, and print
// the per-benchmark relative execution time plus the event counts the
// paper's Sec. 5 analysis is based on.
//
// Usage:  work_stealing [workers] [benchmark-name]
//         (default: 2 workers, fib + cilksort + nqueens)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "lbmf/cilkbench/registry.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;
using cilkbench::Benchmark;
using cilkbench::Scale;

namespace {

template <FencePolicy P>
double run_once(ws::Scheduler<P>& sched, const Benchmark& b,
                ws::SchedulerStats* stats_out, std::uint64_t* checksum) {
  sched.reset_stats();
  Stopwatch sw;
  *checksum = cilkbench::run_on(sched, b);
  const double secs = sw.seconds();
  *stats_out = sched.stats();
  return secs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t workers =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  const char* only = argc > 2 ? argv[2] : nullptr;

  const auto sym_list = cilkbench::all_benchmarks<SymmetricFence>(Scale::kTest);
  const auto asym_list =
      cilkbench::all_benchmarks<AsymmetricSignalFence>(Scale::kTest);

  ws::Scheduler<SymmetricFence> sym(workers);
  ws::Scheduler<AsymmetricSignalFence> asym(workers);

  std::printf("%-10s %10s %10s %7s %9s %8s %10s\n", "benchmark", "sym(ms)",
              "asym(ms)", "rel", "spawns", "steals", "steal-eff");
  const char* defaults[] = {"fib", "cilksort", "nqueens"};
  for (std::size_t i = 0; i < sym_list.size(); ++i) {
    const Benchmark& b = sym_list[i];
    if (only != nullptr) {
      if (b.name != only) continue;
    } else {
      bool pick = false;
      for (const char* d : defaults) pick |= b.name == d;
      if (!pick) continue;
    }

    ws::SchedulerStats ss{}, as{};
    std::uint64_t sum_s = 0, sum_a = 0;
    const double t_sym = run_once(sym, b, &ss, &sum_s);
    const double t_asym = run_once(asym, asym_list[i], &as, &sum_a);
    if (sum_s != sum_a) {
      std::fprintf(stderr, "checksum mismatch on %s!\n", b.name.c_str());
      return 1;
    }
    std::printf("%-10s %10.2f %10.2f %7.2f %9llu %8llu %9.0f%%\n",
                b.name.c_str(), t_sym * 1e3, t_asym * 1e3,
                t_sym > 0 ? t_asym / t_sym : 0.0,
                static_cast<unsigned long long>(as.spawns),
                static_cast<unsigned long long>(as.steals_success),
                as.steal_success_ratio() * 100.0);
  }

  std::printf(
      "\nrel < 1 means the asymmetric runtime (victim pays only a compiler\n"
      "fence; thieves signal) beat the symmetric mfence-per-pop baseline.\n"
      "steal-eff is the paper's signals-to-successful-steals ratio.\n");
  return 0;
}
