// The ARW lock in action (Sec. 5, second application): a reader-biased
// readers-writer lock where read_lock is fence-free and writers remotely
// serialize each registered reader. Compares read throughput of SRW
// (symmetric), ARW (signal-based l-mfence) and ARW+ (waiting heuristic) on
// a small read-mostly workload.
//
// Usage:  biased_rwlock [threads] [read:write ratio N]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

/// The paper's microbenchmark: each thread reads a 4-element array under
/// the read lock; every N/P reads it takes the write lock and bumps all
/// four cells. Returns total reads completed in `seconds`.
template <typename Lock>
std::uint64_t measure_reads(std::size_t threads, double ratio,
                            double seconds, RwLockStats* stats_out) {
  Lock lock;
  alignas(64) volatile long data[4] = {0, 0, 0, 0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      auto token = lock.register_reader();
      const std::uint64_t writes_every =
          static_cast<std::uint64_t>(ratio / static_cast<double>(threads));
      std::uint64_t reads = 0;
      std::uint64_t since_write = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        token.read_lock();
        long sum = 0;
        for (int j = 0; j < 4; ++j) sum += data[j];
        token.read_unlock();
        ++reads;
        if (++since_write >= writes_every) {
          since_write = 0;
          lock.write_lock();
          for (int j = 0; j < 4; ++j) data[j] = data[j] + 1;
          lock.write_unlock();
        }
        (void)sum;
      }
      total_reads.fetch_add(reads, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  if (stats_out != nullptr) *stats_out = lock.stats();
  return total_reads.load();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;
  const double ratio = argc > 2 ? std::atof(argv[2]) : 10'000.0;
  const double seconds = 0.5;

  RwLockStats srw_stats{}, arw_stats{}, arwp_stats{};
  const auto srw = measure_reads<SrwLock>(threads, ratio, seconds, &srw_stats);
  const auto arw = measure_reads<ArwLock>(threads, ratio, seconds, &arw_stats);
  const auto arwp =
      measure_reads<ArwPlusLock>(threads, ratio, seconds, &arwp_stats);

  std::printf("threads=%zu  read:write=%.0f:1  window=%.1fs\n\n", threads,
              ratio, seconds);
  std::printf("%-6s %14s %10s %10s %12s %10s\n", "lock", "reads", "rel",
              "writes", "signals", "acks");
  std::printf("%-6s %14llu %10.2f %10llu %12llu %10s\n", "SRW",
              static_cast<unsigned long long>(srw),
              1.0,
              static_cast<unsigned long long>(srw_stats.write_acquires),
              static_cast<unsigned long long>(srw_stats.serializations), "-");
  std::printf("%-6s %14llu %10.2f %10llu %12llu %10s\n", "ARW",
              static_cast<unsigned long long>(arw),
              srw > 0 ? static_cast<double>(arw) / static_cast<double>(srw)
                      : 0.0,
              static_cast<unsigned long long>(arw_stats.write_acquires),
              static_cast<unsigned long long>(arw_stats.serializations), "-");
  std::printf("%-6s %14llu %10.2f %10llu %12llu %10llu\n", "ARW+",
              static_cast<unsigned long long>(arwp),
              srw > 0 ? static_cast<double>(arwp) / static_cast<double>(srw)
                      : 0.0,
              static_cast<unsigned long long>(arwp_stats.write_acquires),
              static_cast<unsigned long long>(arwp_stats.serializations),
              static_cast<unsigned long long>(arwp_stats.ack_clears));

  std::printf(
      "\nrel > 1: the asymmetric lock out-read the symmetric control.\n"
      "ARW+ clears most reader slots via acknowledgments (acks column)\n"
      "instead of %0.0f-cycle-class signal round trips.\n",
      10000.0);
  return 0;
}
