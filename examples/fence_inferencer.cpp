// fence_inferencer — counterexample-guided fence synthesis over the LE/ST
// simulator: feed it a litmus test with `?fence` holes (see docs/LITMUS.md)
// and it searches the per-hole {none, mfence, l-mfence} lattice for the
// minimum-cost placement that makes every interleaving safe, prints the
// repaired program, and emits a JSON report. On the holey Dekker with a
// hot primary (freq 1000) and a rare secondary this mechanically
// rediscovers the paper's Fig. 3 asymmetric protocol: l-mfence on the
// primary, mfence on the secondary.
//
// Usage:
//   fence_inferencer test.lit                 # infer and print the repair
//   fence_inferencer -                        # read the test from stdin
//   fence_inferencer test.lit --json=out.json # also write the JSON report
//   fence_inferencer test.lit --exhaustive    # naive 3^k enumeration
//   fence_inferencer test.lit --no-minimality # skip the minimality sweep
//   fence_inferencer test.lit --no-symmetry   # no orbit canonicalization /
//                                             # machine state symmetry
//   fence_inferencer test.lit --no-incremental # cold explorer run per
//                                             # candidate (no prefix reuse)
//   fence_inferencer test.lit --graph-cache=g.bin # persist the reached-state
//                                             # prefix graph: loaded when the
//                                             # key matches, rebuilt + saved
//                                             # otherwise
//   fence_inferencer test.lit --max-states=N --batch=K --threads=T
//   fence_inferencer test.lit --sweep        # Fig. 6-style cost frontier:
//                                            # re-solve over a (victim freq
//                                            # × LE/ST round-trip) grid and
//                                            # chart the optimum crossovers
//   fence_inferencer test.lit --sweep --policy-json=table.json
//                                            # also write the sweep as the
//                                            # compact runtime policy table
//                                            # adapt::PolicyTable loads
//   fence_inferencer test.lit --sweep --backends=signal,membarrier-pair,sim-lest
//                                            # add the serialization-backend
//                                            # dimension: one extra plane per
//                                            # backend (non-inverting backends
//                                            # re-solve with l-mfence banned
//                                            # on non-victim sites)
//
// Exit codes: 0 = SAT (repair printed; in --sweep mode: every grid point
// SAT with a SAFE recheck), 1 = UNSAT (no placement is safe), 2 =
// usage/parse error, 3 = inconclusive (state or candidate budget hit).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lbmf/infer/infer.hpp"

using namespace lbmf;

namespace {

struct CliOptions {
  infer::InferenceEngine::Options engine;
  std::string json_path;
  std::string policy_json_path;
  std::string graph_cache_path;
  std::vector<infer::SweepBackend> backends;
  bool sweep = false;
};

[[noreturn]] void bad_flag(const std::string& flag) {
  std::fprintf(stderr, "unrecognized or malformed flag: %s\n", flag.c_str());
  std::exit(2);
}

CliOptions parse_flags(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;  // the litmus file argument
    if (a.rfind("--max-states=", 0) == 0) {
      char* end = nullptr;
      cli.engine.max_states_per_check = std::strtoull(a.c_str() + 13, &end, 10);
      if (end == nullptr || *end != '\0' ||
          cli.engine.max_states_per_check == 0) {
        bad_flag(a);
      }
    } else if (a.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      cli.engine.explorer_threads = std::strtoul(a.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || cli.engine.explorer_threads == 0 ||
          cli.engine.explorer_threads > 256) {
        bad_flag(a);
      }
    } else if (a.rfind("--batch=", 0) == 0) {
      char* end = nullptr;
      cli.engine.batch = std::strtoul(a.c_str() + 8, &end, 10);
      if (end == nullptr || *end != '\0' || cli.engine.batch == 0 ||
          cli.engine.batch > 64) {
        bad_flag(a);
      }
    } else if (a.rfind("--json=", 0) == 0) {
      cli.json_path = a.substr(7);
      if (cli.json_path.empty()) bad_flag(a);
    } else if (a.rfind("--policy-json=", 0) == 0) {
      cli.policy_json_path = a.substr(14);
      if (cli.policy_json_path.empty()) bad_flag(a);
    } else if (a.rfind("--graph-cache=", 0) == 0) {
      cli.graph_cache_path = a.substr(14);
      if (cli.graph_cache_path.empty()) bad_flag(a);
    } else if (a.rfind("--backends=", 0) == 0) {
      // Comma-separated serialization-backend planes for --sweep. The
      // role-inversion capability is fixed per name rather than probed on
      // the host, so the emitted planes are identical wherever the sweep
      // runs: signal cannot invert roles; membarrier-pair and sim-lest can.
      const std::string list = a.substr(11);
      if (list.empty()) bad_flag(a);
      std::size_t pos = 0;
      while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        infer::SweepBackend b;
        b.name = list.substr(pos, comma - pos);
        if (b.name == "signal") {
          b.inverts_roles = false;
        } else if (b.name == "membarrier-pair" || b.name == "sim-lest") {
          b.inverts_roles = true;
        } else {
          bad_flag(a);
        }
        cli.backends.push_back(std::move(b));
        pos = comma + 1;
      }
    } else if (a == "--sweep") {
      cli.sweep = true;
    } else if (a == "--exhaustive") {
      cli.engine.exhaustive = true;
    } else if (a == "--no-learning") {
      cli.engine.learn_clauses = false;
    } else if (a == "--no-minimality") {
      cli.engine.minimality_pass = false;
    } else if (a == "--no-symmetry") {
      cli.engine.symmetry = false;
    } else if (a == "--no-incremental") {
      cli.engine.incremental = false;
    } else if (a == "--no-por") {
      cli.engine.por = false;
    } else {
      bad_flag(a);
    }
  }
  return cli;
}

std::string read_source(int argc, char** argv) {
  std::string arg;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      arg = argv[i];
      break;
    }
  }
  if (arg.empty()) {
    std::fprintf(stderr,
                 "usage: fence_inferencer <test.lit | -> [--flags]\n");
    std::exit(2);
  }
  if (arg == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(arg);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", arg.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string bracketed(const infer::InferProblem& p, sim::Addr a) {
  const std::string n = p.location_name(a);
  return n.empty() || n.front() == '[' ? n : "[" + n + "]";
}

/// The repaired source: the original text with each `?fence` line replaced
/// by the concrete instruction(s) the winning assignment chose there.
std::string repair_source(const std::string& source,
                          const infer::InferProblem& p,
                          const infer::Assignment& a) {
  // Split keeping line numbers 1-based, like the assembler counts them.
  std::vector<std::string> lines;
  std::istringstream in(source);
  for (std::string l; std::getline(in, l);) lines.push_back(l);

  for (std::size_t s = 0; s < p.sites.size(); ++s) {
    const infer::FenceSite& site = p.sites[s];
    if (site.src_line == 0 || site.src_line > lines.size()) continue;
    std::string& l = lines[site.src_line - 1];
    const std::string indent = l.substr(0, l.find_first_not_of(" \t"));
    const std::string loc = bracketed(p, site.addr);
    const std::string val = std::to_string(site.value);
    switch (a.kinds[s]) {
      case sim::FenceKind::kNone:
        l = indent + "store " + loc + ", " + val;
        break;
      case sim::FenceKind::kMfence:
        l = indent + "store " + loc + ", " + val + "\n" + indent + "mfence";
        break;
      case sim::FenceKind::kLmfence:
        l = indent + "lmfence " + loc + ", " + val;
        break;
    }
  }
  std::string out;
  for (const std::string& l : lines) out += l + "\n";
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string json_report(const infer::InferProblem& p,
                        const infer::InferResult& r) {
  std::ostringstream j;
  j << "{\n";
  j << "  \"status\": \"" << infer::to_string(r.status) << "\",\n";
  j << "  \"holes\": " << p.sites.size() << ",\n";
  j << "  \"lattice_size\": " << r.lattice_size << ",\n";
  j << "  \"candidates_generated\": " << r.candidates_generated << ",\n";
  j << "  \"candidates_verified\": " << r.candidates_verified << ",\n";
  j << "  \"candidates_pruned\": " << r.candidates_pruned << ",\n";
  j << "  \"states_total\": " << r.states_total << ",\n";
  j << "  \"prefix_states\": " << r.prefix_states << ",\n";
  j << "  \"incremental_reuses\": " << r.incremental_reuses << ",\n";
  j << "  \"cache_hits\": " << r.cache_hits << ",\n";
  if (r.status == infer::InferStatus::kSat) {
    j << "  \"best_cost\": " << r.best_cost << ",\n";
    j << "  \"recheck_safe\": " << (r.recheck_safe ? "true" : "false")
      << ",\n";
    j << "  \"placement\": [\n";
    for (std::size_t s = 0; s < p.sites.size(); ++s) {
      j << "    {\"site\": \"" << json_escape(p.describe_site(s))
        << "\", \"line\": " << p.sites[s].src_line << ", \"fence\": \""
        << sim::to_string(r.best.kinds[s]) << "\"}"
        << (s + 1 < p.sites.size() ? "," : "") << "\n";
    }
    j << "  ],\n";
    // Runtime-source map, present only when the litmus text carries `#@`
    // provenance comments (machine-extracted files) — hand-written tests
    // keep the report byte-identical to what it always was.
    bool any_prov = false;
    for (const infer::FenceSite& s : p.sites) {
      any_prov = any_prov || !s.provenance.empty();
    }
    if (any_prov) {
      j << "  \"source_map\": [\n";
      for (std::size_t s = 0; s < p.sites.size(); ++s) {
        j << "    {\"site\": \"" << json_escape(p.describe_site(s))
          << "\", \"fence\": \"" << sim::to_string(r.best.kinds[s])
          << "\", \"source\": \"" << json_escape(p.sites[s].provenance)
          << "\"}" << (s + 1 < p.sites.size() ? "," : "") << "\n";
      }
      j << "  ],\n";
    }
  }
  if (r.unsat_violation) {
    j << "  \"violation\": \"" << json_escape(*r.unsat_violation) << "\",\n";
  }
  j << "  \"clauses\": [";
  for (std::size_t i = 0; i < r.clauses.size(); ++i) {
    j << (i ? ", " : "") << "\"" << json_escape(r.clauses[i]) << "\"";
  }
  j << "],\n";
  j << "  \"minimality\": [\n";
  for (std::size_t i = 0; i < r.minimality.size(); ++i) {
    const infer::MinimalityNote& n = r.minimality[i];
    j << "    {\"site\": \"" << json_escape(p.describe_site(n.site))
      << "\", \"from\": \"" << sim::to_string(n.from) << "\", \"to\": \""
      << sim::to_string(n.to) << "\", \"safe\": " << (n.safe ? "true" : "false")
      << ", \"cost_delta\": " << n.cost_delta << "}"
      << (i + 1 < r.minimality.size() ? "," : "") << "\n";
  }
  j << "  ]\n";
  j << "}\n";
  return j.str();
}

/// --sweep mode: solve the problem over the (victim freq × LE/ST
/// round-trip) grid, print the optimum per point plus the crossover
/// boundaries, optionally dump the JSON report. Exit 0 iff every grid
/// point is SAT with a SAFE recheck.
int run_sweep_mode(const infer::InferProblem& p, const CliOptions& cli) {
  infer::SweepOptions so;
  so.engine = cli.engine;
  so.backends = cli.backends;
  const infer::SweepResult sr = infer::run_sweep(p, so);

  std::printf("\ncost-frontier sweep: victim=cpu%zu, %zux%zu grid\n",
              so.victim_cpu, sr.roundtrips.size(), sr.victim_freqs.size());
  for (double rt : sr.roundtrips) {
    std::printf("  roundtrip %g:\n", rt);
    for (const infer::SweepPoint& pt : sr.points) {
      if (pt.lest_roundtrip != rt) continue;
      std::printf("    freq %-8g %-7s %-40s cost %.0f%s\n", pt.victim_freq,
                  infer::to_string(pt.status),
                  infer::to_string(pt.best).c_str(), pt.best_cost,
                  pt.recheck_safe ? "" : " (recheck FAILED)");
    }
  }
  for (const infer::SweepBackendPlane& bp : sr.backend_planes) {
    std::size_t differs = 0;
    for (std::size_t i = 0;
         i < bp.points.size() && i < sr.points.size(); ++i) {
      if (!(bp.points[i].best == sr.points[i].best)) ++differs;
    }
    std::printf("  backend plane %-16s (%s roles): %zu/%zu optima differ "
                "from base\n",
                bp.name.c_str(), bp.inverts_roles ? "inverts" : "fixed",
                differs, bp.points.size());
  }
  std::printf("crossovers along the freq axis:\n");
  if (sr.crossovers.empty()) std::printf("  (none)\n");
  for (const infer::Crossover& x : sr.crossovers) {
    std::printf("  roundtrip %g: %s -> %s between freq %g and %g\n",
                x.lest_roundtrip, x.from.c_str(), x.to.c_str(), x.freq_before,
                x.freq_after);
  }
  std::printf("explorer runs %llu, verdict-cache hits %llu, states %llu, "
              "prefix region %llu states reused %llu times\n",
              static_cast<unsigned long long>(sr.explorer_runs),
              static_cast<unsigned long long>(sr.cache_hits),
              static_cast<unsigned long long>(sr.states_total),
              static_cast<unsigned long long>(sr.prefix_states),
              static_cast<unsigned long long>(sr.incremental_reuses));

  if (!cli.json_path.empty()) {
    std::ofstream jf(cli.json_path);
    if (!jf) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
    jf << infer::sweep_to_json(sr, "cli") << "\n";
    std::printf("report written to %s\n", cli.json_path.c_str());
  }
  if (!cli.policy_json_path.empty()) {
    std::ofstream jf(cli.policy_json_path);
    if (!jf) {
      std::fprintf(stderr, "cannot write %s\n", cli.policy_json_path.c_str());
      return 2;
    }
    jf << infer::sweep_to_policy_json(sr) << "\n";
    std::printf("policy table written to %s\n", cli.policy_json_path.c_str());
  }
  if (!sr.all_sat()) {
    std::printf("SWEEP FAILED: some grid point is not SAT+SAFE\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli = parse_flags(argc, argv);
  const std::string source = read_source(argc, argv);

  infer::ProblemParse parsed = infer::problem_from_source(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.error->to_string().c_str());
    return 2;
  }
  infer::InferProblem& p = *parsed.problem;
  std::printf("%zu cpu(s), %zu fence hole(s)", p.programs.size(),
              p.sites.size());
  for (std::size_t i = 0; i < p.sites.size(); ++i) {
    std::printf(" %s", p.describe_site(i).c_str());
  }
  std::printf("\nfreqs:");
  for (std::size_t c = 0; c < p.programs.size(); ++c) {
    std::printf(" cpu%zu=%g", c, p.cpu_freq(c));
  }
  std::printf("\n");
  if (!p.symmetric_groups.empty() && cli.engine.symmetry) {
    std::printf("symmetric groups:");
    for (const auto& g : p.symmetric_groups) {
      std::printf(" {");
      for (std::size_t k = 0; k < g.size(); ++k) {
        std::printf("%scpu%u", k ? "," : "", g[k]);
      }
      std::printf("}");
    }
    std::printf(" — searching per placement orbit\n");
  }

  // The persisted reached-state prefix graph: reuse it when its key still
  // matches this problem (programs/sites/config/property — not costs),
  // otherwise rebuild under the engine's explorer options and save.
  infer::PrefixGraph cached_graph;
  if (!cli.graph_cache_path.empty() && cli.engine.incremental &&
      !p.sites.empty()) {
    const lbmf::Hash128 key = infer::problem_graph_key(p);
    if (infer::load_prefix_graph(cached_graph, cli.graph_cache_path, key)) {
      std::printf("prefix cache: hit — %s (%llu region states, %zu seeds)\n",
                  cli.graph_cache_path.c_str(),
                  static_cast<unsigned long long>(
                      cached_graph.base.states_explored),
                  cached_graph.seeds.size());
    } else {
      cached_graph = infer::build_prefix_graph(
          p, infer::InferenceEngine::explorer_options_for(p, cli.engine));
      if (cached_graph.valid &&
          infer::save_prefix_graph(cached_graph, cli.graph_cache_path)) {
        std::printf(
            "prefix cache: miss — built %llu region states, %zu seeds, "
            "saved to %s\n",
            static_cast<unsigned long long>(cached_graph.base.states_explored),
            cached_graph.seeds.size(), cli.graph_cache_path.c_str());
      } else {
        std::printf("prefix cache: unusable (region over budget or "
                    "unwritable path)\n");
      }
    }
    if (cached_graph.valid) cli.engine.prefix_graph = &cached_graph;
  }

  if (cli.sweep) return run_sweep_mode(p, cli);

  infer::InferenceEngine engine(p, cli.engine);
  const infer::InferResult r = engine.run();

  std::printf("%s: %llu explorer checks over a %llu-point lattice (%llu "
              "pruned by %zu learned clauses), %llu states\n",
              infer::to_string(r.status),
              static_cast<unsigned long long>(r.candidates_verified),
              static_cast<unsigned long long>(r.lattice_size),
              static_cast<unsigned long long>(r.candidates_pruned),
              r.clauses.size(),
              static_cast<unsigned long long>(r.states_total));
  if (r.incremental_reuses > 0) {
    std::printf("incremental: %llu checks resumed from a %llu-state prefix "
                "region\n",
                static_cast<unsigned long long>(r.incremental_reuses),
                static_cast<unsigned long long>(r.prefix_states));
  }
  for (const std::string& c : r.clauses) {
    std::printf("  clause: %s\n", c.c_str());
  }

  if (!cli.json_path.empty()) {
    std::ofstream jf(cli.json_path);
    if (!jf) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
    jf << json_report(p, r);
    std::printf("report written to %s\n", cli.json_path.c_str());
  }

  if (r.status == infer::InferStatus::kUnsat) {
    std::printf("UNSAT: no fence placement makes this program safe\n");
    if (r.unsat_violation) {
      std::printf("fence-independent violation: %s\n",
                  r.unsat_violation->c_str());
    }
    return 1;
  }
  if (r.status == infer::InferStatus::kLimit) {
    std::printf("INCONCLUSIVE: budget hit (raise --max-states=N)\n");
    return 3;
  }

  std::printf("minimum-cost placement (cost %.0f, re-check %s):\n",
              r.best_cost, r.recheck_safe ? "SAFE" : "FAILED");
  for (std::size_t s = 0; s < p.sites.size(); ++s) {
    std::printf("  line %zu %s -> %s", p.sites[s].src_line,
                p.describe_site(s).c_str(), sim::to_string(r.best.kinds[s]));
    if (!p.sites[s].provenance.empty()) {
      std::printf("  (%s)", p.sites[s].provenance.c_str());
    }
    std::printf("\n");
  }
  for (const infer::MinimalityNote& n : r.minimality) {
    std::printf("  minimality: site %zu %s -> %s is %s (cost %+.0f)\n", n.site,
                sim::to_string(n.from), sim::to_string(n.to),
                n.hit_limit ? "inconclusive" : n.safe ? "safe" : "UNSAFE",
                n.cost_delta);
  }
  std::printf("\nrepaired program:\n%s",
              repair_source(source, p, r.best).c_str());
  return r.recheck_safe ? 0 : 3;
}
