// litmus_runner — a herd-style command-line model checker for the LE/ST
// simulator: feed it a textual litmus test (file argument, or stdin with
// "-", or the built-in demo) and it exhaustively enumerates every
// interleaving, reporting either "safe" or a step-by-step annotated
// counterexample schedule.
//
// Usage:
//   litmus_runner                           # built-in asymmetric-Dekker demo
//   litmus_runner test.lit                  # run a litmus file
//   litmus_runner test.lit --protocol=moesi # pick MSI / MESI / MOESI
//   echo "..." | litmus_runner -            # read the test from stdin
//
// Litmus syntax: see include/lbmf/sim/assembler.hpp; sample tests live in
// examples/litmus/.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/explorer.hpp"

using namespace lbmf::sim;

namespace {

constexpr const char* kDemo = R"(# Built-in demo: the paper's asymmetric Dekker protocol (Fig. 3a).
# Change 'lmfence [L1], 1' to 'store [L1], 1' and watch it break.
cpu 0:
  lmfence [L1], 1
  load r0, [L2]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [L1], 0
  halt
cpu 1:
  store [L2], 1
  mfence
  load r0, [L1]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [L2], 0
  halt
)";

Protocol parse_protocol(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--protocol=msi") return Protocol::kMsi;
    if (a == "--protocol=mesi") return Protocol::kMesi;
    if (a == "--protocol=moesi") return Protocol::kMoesi;
  }
  return Protocol::kMesi;
}

std::string read_source(int argc, char** argv) {
  std::string arg;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      arg = argv[i];
      break;
    }
  }
  if (arg.empty()) return kDemo;
  if (arg == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(arg);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", arg.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string source = read_source(argc, argv);
  const AssembleResult assembled = assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "line %zu: %s\n", assembled.error->line,
                 assembled.error->message.c_str());
    return 2;
  }

  std::printf("%zu cpu(s), %zu shared location(s):", assembled.programs.size(),
              assembled.symbols.size());
  for (const auto& [name, addr] : assembled.symbols) {
    std::printf(" %s=[%u]", name.c_str(), addr);
  }
  std::printf("\n");

  SimConfig cfg;
  cfg.num_cpus = assembled.programs.size();
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  cfg.protocol = parse_protocol(argc, argv);
  std::printf("coherence protocol: %s\n", to_string(cfg.protocol));
  Machine machine(cfg);
  for (const auto& [a, v] : assembled.initial_memory) machine.set_memory(a, v);
  for (std::size_t i = 0; i < assembled.programs.size(); ++i) {
    machine.load_program(i, assembled.programs[i]);
  }

  Explorer::Options opts;
  Explorer ex(machine, opts);
  const ExploreResult r = ex.run();

  std::printf("explored %llu states, %llu transitions, %llu terminal\n",
              static_cast<unsigned long long>(r.states_explored),
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.terminal_states));
  if (r.hit_limit) {
    std::printf("STATE LIMIT HIT — result inconclusive\n");
    return 3;
  }
  if (!r.violation) {
    std::printf("SAFE: no schedule violates mutual exclusion or coherence\n");
    return 0;
  }

  std::printf("VIOLATION: %s\n\ncounterexample schedule (%zu steps):\n",
              r.violation->c_str(), r.violation_trace.size());
  // Rebuild an identical machine for the annotated replay.
  Machine replay(cfg);
  for (const auto& [a, v] : assembled.initial_memory) replay.set_memory(a, v);
  for (std::size_t i = 0; i < assembled.programs.size(); ++i) {
    replay.load_program(i, assembled.programs[i]);
  }
  std::printf("%s", annotate_schedule(std::move(replay),
                                      r.violation_trace).c_str());
  return 1;
}
