// litmus_runner — a herd-style command-line model checker for the LE/ST
// simulator: feed it a textual litmus test (file argument, or stdin with
// "-", or the built-in demo) and it exhaustively enumerates every
// interleaving, reporting either "safe" or a step-by-step annotated
// counterexample schedule.
//
// Usage:
//   litmus_runner                           # built-in asymmetric-Dekker demo
//   litmus_runner test.lit                  # run a litmus file
//   litmus_runner test.lit --protocol=moesi # pick MSI / MESI / MOESI
//   litmus_runner test.lit --max-states=1000000   # state budget
//   litmus_runner test.lit --no-por         # disable partial-order reduction
//   litmus_runner test.lit --threads=8      # parallel exploration
//   litmus_runner test.lit --stats          # dedup hit rate, states/sec,
//                                           # symmetry orbit, spill bytes, ...
//   litmus_runner test.lit --no-symmetry    # disable thread-symmetry state
//                                           # canonicalization (see LITMUS.md
//                                           # `symmetric`; identical programs
//                                           # are also auto-detected)
//   litmus_runner test.lit --visited-budget=BYTES  # spill the visited set to
//                                           # mmap'd cold segments past BYTES
//   litmus_runner test.lit --expect-violation  # negative test: fail if SAFE
//   echo "..." | litmus_runner -            # read the test from stdin
//
// Exit codes: 0 = expected verdict (SAFE, or VIOLATION under
// --expect-violation), 1 = the opposite verdict, 2 = usage/parse error,
// 3 = state limit hit (always inconclusive, never the expected verdict).
//
// Litmus syntax: see include/lbmf/sim/assembler.hpp; sample tests live in
// examples/litmus/.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

using namespace lbmf::sim;

namespace {

constexpr const char* kDemo = R"(# Built-in demo: the paper's asymmetric Dekker protocol (Fig. 3a).
# Change 'lmfence [L1], 1' to 'store [L1], 1' and watch it break.
cpu 0:
  lmfence [L1], 1
  load r0, [L2]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [L1], 0
  halt
cpu 1:
  store [L2], 1
  mfence
  load r0, [L1]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [L2], 0
  halt
)";

struct CliOptions {
  Protocol protocol = Protocol::kMesi;
  std::uint64_t max_states = 2'000'000;
  bool por = true;
  std::size_t threads = 1;
  bool stats = false;
  /// Thread-symmetry reduction: canonicalize states under permutations of
  /// CPUs running byte-identical programs (`symmetric` directive groups
  /// plus auto-detection). --no-symmetry is the exact-search escape hatch.
  bool symmetry = true;
  /// Visited-set memory budget in bytes; 0 = unbounded (never spill).
  std::uint64_t visited_budget = 0;
  /// Negative tests (broken_*.lit): succeed only if a violation is found.
  bool expect_violation = false;
};

[[noreturn]] void bad_flag(const std::string& flag) {
  std::fprintf(stderr, "unrecognized or malformed flag: %s\n", flag.c_str());
  std::exit(2);
}

CliOptions parse_flags(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;  // the litmus file argument
    if (a == "--protocol=msi") {
      cli.protocol = Protocol::kMsi;
    } else if (a == "--protocol=mesi") {
      cli.protocol = Protocol::kMesi;
    } else if (a == "--protocol=moesi") {
      cli.protocol = Protocol::kMoesi;
    } else if (a.rfind("--max-states=", 0) == 0) {
      char* end = nullptr;
      cli.max_states = std::strtoull(a.c_str() + 13, &end, 10);
      if (end == nullptr || *end != '\0' || cli.max_states == 0) bad_flag(a);
    } else if (a == "--no-por") {
      cli.por = false;
    } else if (a.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      cli.threads = std::strtoul(a.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || cli.threads == 0 ||
          cli.threads > 256) {
        bad_flag(a);
      }
    } else if (a == "--stats") {
      cli.stats = true;
    } else if (a == "--no-symmetry") {
      cli.symmetry = false;
    } else if (a.rfind("--visited-budget=", 0) == 0) {
      char* end = nullptr;
      cli.visited_budget = std::strtoull(a.c_str() + 17, &end, 10);
      if (end == nullptr || *end != '\0' || cli.visited_budget == 0) {
        bad_flag(a);
      }
    } else if (a == "--expect-violation") {
      cli.expect_violation = true;
    } else {
      bad_flag(a);
    }
  }
  return cli;
}

std::string read_source(int argc, char** argv) {
  std::string arg;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      arg = argv[i];
      break;
    }
  }
  if (arg.empty()) return kDemo;
  if (arg == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(arg);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", arg.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_flags(argc, argv);
  const std::string source = read_source(argc, argv);
  const AssembleResult assembled = assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s\n", assembled.error->to_string().c_str());
    return 2;
  }

  std::printf("%zu cpu(s), %zu shared location(s):", assembled.programs.size(),
              assembled.symbols.size());
  for (const auto& [name, addr] : assembled.symbols) {
    std::printf(" %s=[%u]", name.c_str(), addr);
  }
  std::printf("\n");

  SimConfig cfg;
  cfg.num_cpus = assembled.programs.size();
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  cfg.protocol = cli.protocol;
  std::printf("coherence protocol: %s, por: %s, threads: %zu\n",
              to_string(cfg.protocol), cli.por ? "on" : "off", cli.threads);
  Machine machine(cfg);
  for (const auto& [a, v] : assembled.initial_memory) machine.set_memory(a, v);
  for (std::size_t i = 0; i < assembled.programs.size(); ++i) {
    machine.load_program(i, assembled.programs[i]);
  }
  if (cli.symmetry) {
    // Declared `symmetric` groups were validated at assemble time;
    // auto_symmetry then groups any remaining byte-identical programs.
    std::vector<std::vector<std::uint8_t>> declared;
    for (const auto& g : assembled.symmetric_groups) {
      declared.emplace_back(g.begin(), g.end());
    }
    if (!declared.empty()) machine.set_symmetric_groups(std::move(declared));
    machine.auto_symmetry();
    if (machine.symmetry_orbit() > 1) {
      std::printf("thread symmetry: %zu group(s), orbit %llu "
                  "(--no-symmetry for the exact search)\n",
                  machine.symmetric_groups().size(),
                  static_cast<unsigned long long>(machine.symmetry_orbit()));
    }
  }

  Explorer::Options opts;
  opts.max_states = cli.max_states;
  opts.por = cli.por;
  opts.threads = cli.threads;
  opts.visited_budget_bytes = cli.visited_budget;
  // Terminal-state property: `final` directives (if any) plus deadlock
  // detection for tests using `lock`/`unlock`. A no-op for tests without
  // either construct.
  if (!assembled.final_allowed.empty()) {
    std::printf("final-state property: %zu allowed terminal valuation(s)\n",
                assembled.final_allowed.size());
  }
  opts.check = final_state_check(assembled.final_allowed);
  Explorer ex(machine, opts);
  const auto t0 = std::chrono::steady_clock::now();
  const ExploreResult r = ex.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::printf("explored %llu states, %llu transitions, %llu terminal\n",
              static_cast<unsigned long long>(r.states_explored),
              static_cast<unsigned long long>(r.transitions),
              static_cast<unsigned long long>(r.terminal_states));
  if (cli.stats) {
    const double hit_rate =
        r.transitions == 0
            ? 0.0
            : 100.0 * static_cast<double>(r.dedup_hits) /
                  static_cast<double>(r.transitions);
    std::printf("stats: %.0f states/sec, dedup hit rate %.1f%% "
                "(%llu of %llu), visited set %.1f KiB resident\n",
                seconds > 0 ? static_cast<double>(r.states_explored) / seconds
                            : 0.0,
                hit_rate, static_cast<unsigned long long>(r.dedup_hits),
                static_cast<unsigned long long>(r.transitions),
                static_cast<double>(r.visited_bytes) / 1024.0);
    std::printf("stats: symmetry orbit %llu, spilled %.1f KiB in %u "
                "segment(s)\n",
                static_cast<unsigned long long>(r.symmetry_orbit),
                static_cast<double>(r.spill_bytes) / 1024.0,
                r.spill_segments);
  }
  if (r.hit_limit) {
    std::printf("STATE LIMIT HIT — result inconclusive "
                "(raise with --max-states=N)\n");
    return 3;
  }
  if (!r.violation) {
    std::printf("SAFE: no schedule violates mutual exclusion, coherence, "
                "or the final-state property\n");
    if (cli.expect_violation) {
      std::printf("UNEXPECTED: --expect-violation was given but every "
                  "schedule is safe\n");
      return 1;
    }
    return 0;
  }

  std::printf("VIOLATION: %s\n\ncounterexample schedule (%zu steps):\n",
              r.violation->c_str(), r.violation_trace.size());
  // Rebuild an identical machine for the annotated replay.
  Machine replay(cfg);
  for (const auto& [a, v] : assembled.initial_memory) replay.set_memory(a, v);
  for (std::size_t i = 0; i < assembled.programs.size(); ++i) {
    replay.load_program(i, assembled.programs[i]);
  }
  std::printf("%s", annotate_schedule(std::move(replay),
                                      r.violation_trace).c_str());
  if (cli.expect_violation) {
    std::printf("EXPECTED: violation found, as requested\n");
    return 0;
  }
  return 1;
}
