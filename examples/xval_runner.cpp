// xval_runner — cross-validate the LE/ST simulator against the host's real
// x86-TSO memory system: assemble a litmus test, exhaustively enumerate its
// reachable / safe / violating terminal outcomes in the simulator, run the
// same program as a pthread stress test over real shared memory, and diff
// the two worlds. A native observation outside the simulator's reachable
// set is a model-soundness failure; a reachable outcome never observed
// natively is coverage, not error.
//
// Usage:
//   xval_runner test.lit                       # full cross-validation
//   xval_runner test.lit --iters=1000000       # native stress iterations
//   xval_runner test.lit --seed=42             # skew-RNG seed
//   xval_runner test.lit --max-states=1000000  # simulator state budget
//   xval_runner test.lit --step-budget=200000  # native wedge cutoff
//   xval_runner test.lit --no-pin              # don't pin stress threads
//   xval_runner test.lit --json=XVAL_foo.json  # write the report artifact
//   xval_runner test.lit --expect-violation    # broken_*: require the
//                                              # hardware to witness an
//                                              # outcome from the violating
//                                              # (tainted) set
//   xval_runner test.lit --sim-only            # skip the native leg even on
//                                              # supported hosts (report the
//                                              # simulator sets only)
//   echo "..." | xval_runner -                 # read the test from stdin
//
// Exit codes: 0 = expected verdict (observed ⊆ reachable, and the
// violating set was witnessed under --expect-violation), 1 = model
// unsound or expected violation unobserved, 2 = usage/parse error,
// 3 = inconclusive (state limit hit or wedged iterations), 4 = host
// unsupported (non-x86-64 or <2 CPUs) — gate scripts treat 4 as a loud
// skip, not a failure. --json is written in every case, including skips.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/xval/xval.hpp"

using namespace lbmf;

namespace {

struct CliOptions {
  xval::XvalOptions xv;
  std::string json_path;
  bool expect_violation = false;
  bool sim_only = false;
};

[[noreturn]] void bad_flag(const std::string& flag) {
  std::fprintf(stderr, "unrecognized or malformed flag: %s\n", flag.c_str());
  std::exit(2);
}

std::uint64_t parse_u64(const std::string& flag, std::size_t prefix) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(flag.c_str() + prefix, &end, 10);
  if (end == nullptr || *end != '\0') bad_flag(flag);
  return v;
}

CliOptions parse_flags(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) continue;  // the litmus file argument
    if (a.rfind("--iters=", 0) == 0) {
      cli.xv.native.iterations = parse_u64(a, 8);
      if (cli.xv.native.iterations == 0) bad_flag(a);
    } else if (a.rfind("--seed=", 0) == 0) {
      cli.xv.native.seed = parse_u64(a, 7);
    } else if (a.rfind("--max-states=", 0) == 0) {
      cli.xv.max_states = parse_u64(a, 13);
      if (cli.xv.max_states == 0) bad_flag(a);
    } else if (a.rfind("--step-budget=", 0) == 0) {
      cli.xv.native.step_budget = parse_u64(a, 14);
      if (cli.xv.native.step_budget == 0) bad_flag(a);
    } else if (a == "--no-pin") {
      cli.xv.native.pin_threads = false;
    } else if (a.rfind("--json=", 0) == 0) {
      cli.json_path = a.substr(7);
      if (cli.json_path.empty()) bad_flag(a);
    } else if (a == "--expect-violation") {
      cli.expect_violation = true;
    } else if (a == "--sim-only") {
      cli.sim_only = true;
    } else {
      bad_flag(a);
    }
  }
  return cli;
}

std::string litmus_name(const std::string& path) {
  if (path.empty() || path == "-") return "stdin";
  const std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::size_t dot = base.rfind(".lit");
  if (dot != std::string::npos && dot == base.size() - 4) base.resize(dot);
  return base;
}

std::string read_source(const std::string& arg) {
  if (arg == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    return ss.str();
  }
  std::ifstream f(arg);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", arg.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void print_set(const char* label, const std::set<std::string>& s) {
  std::printf("%s (%zu):\n", label, s.size());
  for (const std::string& o : s) std::printf("  %s\n", o.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_flags(argc, argv);
  std::string file;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--", 0) != 0) {
      file = argv[i];
      break;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "usage: xval_runner <test.lit | -> [flags]\n");
    return 2;
  }

  const std::string source = read_source(file);
  const sim::AssembleResult assembled = sim::assemble(source);
  if (!assembled.ok()) {
    std::fprintf(stderr, "%s\n", assembled.error->to_string().c_str());
    return 2;
  }

  const std::string name = litmus_name(file);
  std::printf("xval: %s — %zu role(s), sim state budget %llu, native %llu "
              "iteration(s)\n",
              name.c_str(), assembled.programs.size(),
              static_cast<unsigned long long>(cli.xv.max_states),
              static_cast<unsigned long long>(cli.xv.native.iterations));

  xval::XvalReport report;
  if (cli.sim_only) {
    const xval::ObservationSchema schema =
        xval::ObservationSchema::from(assembled);
    report.litmus = name;
    report.sim = xval::compute_reachable(assembled, schema, cli.xv.max_states);
    report.skipped = true;
    report.skip_reason = "--sim-only";
    report.unobserved.assign(report.sim.reachable.begin(),
                             report.sim.reachable.end());
  } else {
    report = xval::cross_validate(name, assembled, cli.xv);
  }

  print_set("sim reachable", report.sim.reachable);
  print_set("sim violating (tainted)", report.sim.violating);
  if (!report.sim.violation.empty()) {
    std::printf("sim violation diagnostic: %s\n", report.sim.violation.c_str());
  }

  if (!cli.json_path.empty()) {
    std::ofstream out(cli.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
    out << xval::to_json(report);
    std::printf("report: %s\n", cli.json_path.c_str());
  }

  if (report.skipped && !cli.sim_only) {
    std::printf("SKIPPED: %s\n", report.skip_reason.c_str());
    return 4;
  }
  if (report.skipped) {
    std::printf("SIM-ONLY: %zu reachable, %zu violating outcome(s)\n",
                report.sim.reachable.size(), report.sim.violating.size());
    return 0;
  }

  std::printf("native: %llu iteration(s), %zu distinct outcome(s), %llu "
              "wedged, %llu violating outcome hit(s)\n",
              static_cast<unsigned long long>(report.iterations),
              report.observed.size(),
              static_cast<unsigned long long>(report.wedged_iterations),
              static_cast<unsigned long long>(report.violations_observed));
  for (const auto& [obs, count] : report.observed) {
    const bool reachable = report.sim.reachable.count(obs) != 0;
    const bool violating = report.sim.violating.count(obs) != 0;
    std::printf("  %10llu  %s%s\n", static_cast<unsigned long long>(count),
                obs.c_str(),
                !reachable ? "  <-- UNEXPLAINED"
                           : (violating ? "  (violating)" : ""));
  }
  std::printf("coverage: %.1f%% of reachable outcomes observed\n",
              100.0 * report.coverage());

  if (!report.model_sound()) {
    std::printf("UNSOUND: %zu native outcome(s) outside the simulator's "
                "reachable set\n",
                report.unexplained.size());
    return 1;
  }
  if (!report.conclusive()) {
    std::printf("INCONCLUSIVE: %s%s\n",
                report.sim.complete ? "" : "sim state limit hit; ",
                report.wedged_iterations != 0 ? "native iterations wedged"
                                              : "");
    return 3;
  }
  if (cli.expect_violation) {
    if (report.violations_observed == 0) {
      std::printf("EXPECTED-VIOLATION MISSING: hardware never produced an "
                  "outcome from the tainted set\n");
      return 1;
    }
    std::printf("OK: model sound; hardware witnessed the violating outcome "
                "family %llu time(s)\n",
                static_cast<unsigned long long>(report.violations_observed));
    return 0;
  }
  std::printf("OK: every native outcome is simulator-reachable\n");
  return 0;
}
