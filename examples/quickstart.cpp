// Quickstart: the l-mfence public API in its simplest form.
//
// A primary thread publishes values through a GuardedLocation without ever
// executing a hardware fence; a secondary thread reads the location with
// remote_read(), which first forces the primary to serialize (here via the
// signal-based software prototype, exactly the paper's Sec. 5 setup).
//
// Build & run:  ./build/examples/quickstart

#include <atomic>
#include <cstdio>
#include <thread>

#include "lbmf/core/lmfence.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

/// Compare the primary-side cost of publishing under three disciplines:
/// no fence at all, the classic mfence, and the location-based fence.
template <typename PublishFn>
double time_publishes(long iters, PublishFn publish) {
  Stopwatch sw;
  for (long i = 0; i < iters; ++i) publish(i);
  return sw.seconds();
}

}  // namespace

int main() {
  constexpr long kIters = 2'000'000;

  // --- 1. Cost on the publishing (primary) thread, run alone ------------
  std::atomic<long> plain{0};

  const double t_nofence = time_publishes(kIters, [&](long i) {
    plain.store(i, std::memory_order_relaxed);
    compiler_fence();
  });

  const double t_mfence = time_publishes(kIters, [&](long i) {
    plain.store(i, std::memory_order_relaxed);
    full_fence();
  });

  GuardedLocation<long, AsymmetricSignalFence> guarded(0);
  guarded.bind_primary();
  const double t_lmfence =
      time_publishes(kIters, [&](long i) { guarded.lmfence_store(i); });

  std::printf("publisher running alone, %ld stores:\n", kIters);
  std::printf("  no fence      : %8.1f ns/store\n", t_nofence / kIters * 1e9);
  std::printf("  mfence        : %8.1f ns/store  (%.1fx slower)\n",
              t_mfence / kIters * 1e9, t_mfence / t_nofence);
  std::printf("  l-mfence (sw) : %8.1f ns/store  (%.1fx slower)\n",
              t_lmfence / kIters * 1e9, t_lmfence / t_nofence);

  // --- 2. A secondary thread observing the primary ----------------------
  std::atomic<bool> stop{false};
  std::atomic<long> observed{0};
  std::thread secondary([&] {
    long last = 0;
    for (int i = 0; i < 50; ++i) {
      // remote_read() serializes the primary first, so it sees every store
      // the primary has issued up to its latest lmfence_store.
      const long v = guarded.remote_read();
      if (v < last) {
        std::fprintf(stderr, "monotonicity violated: %ld < %ld\n", v, last);
        return;
      }
      last = v;
    }
    observed.store(last, std::memory_order_release);
    stop.store(true, std::memory_order_release);
  });

  long i = 0;
  while (!stop.load(std::memory_order_acquire)) {
    guarded.lmfence_store(++i);
  }
  secondary.join();
  guarded.unbind_primary();

  std::printf("\nsecondary observed %ld after %ld publishes — every remote\n"
              "read saw a value at least as fresh as the primary's last\n"
              "serialization, with zero fences on the primary's fast path.\n",
              observed.load(), i);
  return 0;
}
