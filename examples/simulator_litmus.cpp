// Drive the LE/ST hardware simulator: exhaustively model-check the Dekker
// protocol under every fence discipline (the machine-checked Theorem 7 and
// its negative controls), then measure the simulated cycle costs the paper
// quotes — the ~150-cycle LE/ST remote round trip vs the ~10,000-cycle
// signal round trip.
//
// Build & run:  ./build/examples/simulator_litmus

#include <cstdio>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

using namespace lbmf::sim;

namespace {

void check_dekker(FenceKind primary, FenceKind secondary) {
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(primary, secondary), opts);
  const ExploreResult r = ex.run();
  std::printf("  %-9s / %-9s : %7llu states  ->  %s\n", to_string(primary),
              to_string(secondary),
              static_cast<unsigned long long>(r.states_explored),
              r.violation ? "MUTUAL EXCLUSION VIOLATED" : "safe in every schedule");
  if (r.violation) {
    std::printf("      witness schedule (%zu steps):", r.violation_trace.size());
    for (const Choice& c : r.violation_trace) {
      std::printf(" %s", to_string(c).c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("exhaustive Dekker check on the TSO+MESI+LE/ST simulator\n");
  std::printf("(primary fence / secondary fence):\n");
  check_dekker(FenceKind::kLmfence, FenceKind::kMfence);   // the paper's Fig 3(a)
  check_dekker(FenceKind::kLmfence, FenceKind::kLmfence);  // mirrored variant
  check_dekker(FenceKind::kMfence, FenceKind::kMfence);    // classic
  check_dekker(FenceKind::kNone, FenceKind::kMfence);      // negative control
  check_dekker(FenceKind::kNone, FenceKind::kNone);        // negative control

  // ----- the Sec. 5 cost comparison, on the simulator -------------------
  Machine hw = make_roundtrip_machine(/*use_interrupt=*/false);
  for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);  // arm l-mfence
  hw.step(1, Action::Execute);  // remote read of the guarded line
  const auto lest_cycles = hw.cpu(1).counters.cycles;

  Machine sw = make_roundtrip_machine(/*use_interrupt=*/true);
  sw.step(0, Action::Execute);  // store parked in the buffer
  sw.deliver_interrupt(0);      // the signal leg
  sw.step(1, Action::Execute);  // read after the handler ack
  const auto signal_cycles =
      sw.cpu(0).counters.cycles + sw.cpu(1).counters.cycles;

  std::printf("\nremote serialization round trip (simulated cycles):\n");
  std::printf("  LE/ST hardware   : %6llu   (paper: ~150)\n",
              static_cast<unsigned long long>(lest_cycles));
  std::printf("  signal prototype : %6llu   (paper: ~10,000)\n",
              static_cast<unsigned long long>(signal_cycles));
  std::printf("  ratio            : %6.1fx\n",
              static_cast<double>(signal_cycles) /
                  static_cast<double>(lest_cycles));

  // ----- solo-thread Dekker overhead (the Sec. 1 claim) -----------------
  std::printf("\nsolo Dekker loop, 1000 iterations (simulated cycles):\n");
  for (FenceKind k :
       {FenceKind::kNone, FenceKind::kMfence, FenceKind::kLmfence}) {
    Machine m = make_solo_dekker_machine(k, 1000);
    m.run_round_robin();
    std::printf("  %-9s : %8llu cycles, %llu mfences executed\n",
                to_string(k),
                static_cast<unsigned long long>(m.cpu(0).counters.cycles),
                static_cast<unsigned long long>(m.cpu(0).counters.mfences));
  }
  return 0;
}
