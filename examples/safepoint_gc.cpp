// A toy stop-the-world collector on the Safepoint mechanism — the paper's
// JVM/GC motivating example end to end. Mutator threads continuously
// rewire a shared object graph, polling the safepoint between operations
// (fence-free under the asymmetric policy); the collector periodically
// stops the world, marks from the roots, and sweeps.
//
// Usage: safepoint_gc [seconds] [mutators]

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "lbmf/core/safepoint.hpp"
#include "lbmf/util/rng.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

constexpr std::size_t kHeapSize = 4096;
constexpr std::size_t kRoots = 8;

struct Object {
  int next = -1;      // single reference slot (a cons-cell heap)
  bool allocated = false;
  bool marked = false;
};

struct Heap {
  std::vector<Object> objects{kHeapSize};
  int roots[kRoots] = {-1, -1, -1, -1, -1, -1, -1, -1};
  std::size_t free_hint = 0;

  int allocate() {
    for (std::size_t probe = 0; probe < kHeapSize; ++probe) {
      const std::size_t i = (free_hint + probe) % kHeapSize;
      if (!objects[i].allocated) {
        objects[i] = Object{-1, true, false};
        free_hint = i + 1;
        return static_cast<int>(i);
      }
    }
    return -1;  // out of memory: wait for the collector
  }
};

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int mutators = argc > 2 ? std::atoi(argv[2]) : 2;

  Safepoint<AsymmetricSignalFence> sp;
  Heap heap;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> oom_waits{0};

  // Mutators: allocate chains hanging off per-thread roots, truncate them
  // at random (creating garbage), and poll the safepoint each step. All
  // heap access is safepoint-synchronized: the collector only touches the
  // heap while every mutator is parked.
  std::vector<std::thread> pool;
  for (int m = 0; m < mutators; ++m) {
    pool.emplace_back([&, m] {
      auto token = sp.register_mutator();
      Xoshiro256 rng(static_cast<std::uint64_t>(m) + 1);
      const std::size_t my_root = static_cast<std::size_t>(m) % kRoots;
      while (!stop.load(std::memory_order_relaxed)) {
        token.poll();
        const int obj = heap.allocate();
        if (obj < 0) {
          oom_waits.fetch_add(1, std::memory_order_relaxed);
          token.poll();
          continue;
        }
        allocations.fetch_add(1, std::memory_order_relaxed);
        // Push onto my root chain; sometimes drop the whole chain.
        heap.objects[static_cast<std::size_t>(obj)].next =
            heap.roots[my_root];
        heap.roots[my_root] = obj;
        if (rng.next_bool(0.02)) heap.roots[my_root] = -1;  // garbage!
      }
    });
  }

  std::uint64_t collections = 0;
  std::uint64_t swept_total = 0;
  Stopwatch sw;
  while (sw.seconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    sp.stop_the_world([&] {
      ++collections;
      for (Object& o : heap.objects) o.marked = false;
      for (int root : heap.roots) {
        for (int cur = root; cur >= 0;
             cur = heap.objects[static_cast<std::size_t>(cur)].next) {
          Object& o = heap.objects[static_cast<std::size_t>(cur)];
          if (o.marked) break;  // cycle guard (chains are acyclic anyway)
          o.marked = true;
        }
      }
      for (Object& o : heap.objects) {
        if (o.allocated && !o.marked) {
          o.allocated = false;
          ++swept_total;
        }
      }
    });
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();

  std::printf("ran %.2fs with %d mutators (asymmetric safepoint):\n",
              seconds, mutators);
  std::printf("  allocations   : %llu\n",
              static_cast<unsigned long long>(allocations.load()));
  std::printf("  collections   : %llu\n",
              static_cast<unsigned long long>(collections));
  std::printf("  objects swept : %llu\n",
              static_cast<unsigned long long>(swept_total));
  std::printf("  oom waits     : %llu\n",
              static_cast<unsigned long long>(oom_waits.load()));
  std::printf("\nmutator polls are fence-free; only stop-the-world pauses\n"
              "serialize them — the JVM/JNI pattern from the paper's intro.\n");
  return 0;
}
