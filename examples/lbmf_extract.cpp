// lbmf_extract — litmus extraction from annotated runtime code: replay a
// structure's LBMF_* annotation recording (lbmf::extract), emit the
// canonical holey `.lit` with `#@ file:line` provenance comments, drift-
// diff it against the committed hand-written litmus file, and run
// lbmf::infer over the *generated* text, reporting the placement as
// runtime source locations ("lbmf/ws/deque.hpp:NN: l-mfence").
//
// This binary is compiled with -DLBMF_EXTRACT=1, so the annotated spec
// functions in the runtime headers record; every other target in the
// repo compiles the same annotations away to nothing.
//
// Usage:
//   lbmf_extract --list                     # registered protocols
//   lbmf_extract the-deque                  # emit the generated .lit to stdout
//   lbmf_extract the-deque --emit=out.lit   # write it to a file
//   lbmf_extract the-deque --check=examples/litmus/the_deque_holes.lit
//                                           # semantic drift diff (CI gate)
//   lbmf_extract the-deque --infer          # infer over the generated litmus
//   lbmf_extract the-deque --infer --json=report.json --graph-cache=g.bin
//   lbmf_extract the-deque --no-provenance  # drop the #@ comments
//   lbmf_extract the-deque --infer --max-states=N --threads=T --batch=K
//
// Exit codes: 0 = success (drift clean, inference SAT+SAFE), 1 = drift
// detected or UNSAT, 2 = usage/recording error, 3 = inference
// inconclusive (budget hit).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#define LBMF_EXTRACT 1
#include "lbmf/extract/extract.hpp"
#include "lbmf/infer/infer.hpp"

using namespace lbmf;

namespace {

struct CliOptions {
  std::string protocol;
  std::string emit_path;
  std::string check_path;
  std::string json_path;
  std::string graph_cache_path;
  infer::InferenceEngine::Options engine;
  bool list = false;
  bool run_infer = false;
  bool provenance = true;
};

[[noreturn]] void bad_flag(const std::string& flag) {
  std::fprintf(stderr, "unrecognized or malformed flag: %s\n", flag.c_str());
  std::exit(2);
}

CliOptions parse_flags(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--", 0) != 0) {
      if (!cli.protocol.empty()) bad_flag(a);
      cli.protocol = a;
    } else if (a == "--list") {
      cli.list = true;
    } else if (a == "--infer") {
      cli.run_infer = true;
    } else if (a == "--no-provenance") {
      cli.provenance = false;
    } else if (a.rfind("--emit=", 0) == 0) {
      cli.emit_path = a.substr(7);
      if (cli.emit_path.empty()) bad_flag(a);
    } else if (a.rfind("--check=", 0) == 0) {
      cli.check_path = a.substr(8);
      if (cli.check_path.empty()) bad_flag(a);
    } else if (a.rfind("--json=", 0) == 0) {
      cli.json_path = a.substr(7);
      if (cli.json_path.empty()) bad_flag(a);
    } else if (a.rfind("--graph-cache=", 0) == 0) {
      cli.graph_cache_path = a.substr(14);
      if (cli.graph_cache_path.empty()) bad_flag(a);
    } else if (a.rfind("--max-states=", 0) == 0) {
      char* end = nullptr;
      cli.engine.max_states_per_check = std::strtoull(a.c_str() + 13, &end, 10);
      if (end == nullptr || *end != '\0' ||
          cli.engine.max_states_per_check == 0) {
        bad_flag(a);
      }
    } else if (a.rfind("--threads=", 0) == 0) {
      char* end = nullptr;
      cli.engine.explorer_threads = std::strtoul(a.c_str() + 10, &end, 10);
      if (end == nullptr || *end != '\0' || cli.engine.explorer_threads == 0 ||
          cli.engine.explorer_threads > 256) {
        bad_flag(a);
      }
    } else if (a.rfind("--batch=", 0) == 0) {
      char* end = nullptr;
      cli.engine.batch = std::strtoul(a.c_str() + 8, &end, 10);
      if (end == nullptr || *end != '\0' || cli.engine.batch == 0 ||
          cli.engine.batch > 64) {
        bad_flag(a);
      }
    } else {
      bad_flag(a);
    }
  }
  return cli;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

int run_inference(const CliOptions& cli_in, const std::string& lit) {
  CliOptions cli = cli_in;
  infer::ProblemParse parsed = infer::problem_from_source(lit);
  if (!parsed.ok()) {
    std::fprintf(stderr, "generated litmus does not assemble — %s\n",
                 parsed.error->to_string().c_str());
    return 2;
  }
  infer::InferProblem& p = *parsed.problem;
  std::printf("inference: %zu cpu(s), %zu hole(s)\n", p.programs.size(),
              p.sites.size());

  // Same persisted prefix-graph flow as fence_inferencer: the key covers
  // programs/sites/config (not source text), so a cache built over the
  // committed litmus answers for the generated one — that identity is
  // itself a consequence of a clean drift gate.
  infer::PrefixGraph cached_graph;
  if (!cli.graph_cache_path.empty() && cli.engine.incremental &&
      !p.sites.empty()) {
    const lbmf::Hash128 key = infer::problem_graph_key(p);
    if (infer::load_prefix_graph(cached_graph, cli.graph_cache_path, key)) {
      std::printf("prefix cache: hit — %s (%llu region states, %zu seeds)\n",
                  cli.graph_cache_path.c_str(),
                  static_cast<unsigned long long>(
                      cached_graph.base.states_explored),
                  cached_graph.seeds.size());
    } else {
      cached_graph = infer::build_prefix_graph(
          p, infer::InferenceEngine::explorer_options_for(p, cli.engine));
      if (cached_graph.valid &&
          infer::save_prefix_graph(cached_graph, cli.graph_cache_path)) {
        std::printf(
            "prefix cache: miss — built %llu region states, %zu seeds, "
            "saved to %s\n",
            static_cast<unsigned long long>(cached_graph.base.states_explored),
            cached_graph.seeds.size(), cli.graph_cache_path.c_str());
      } else {
        std::printf("prefix cache: unusable (region over budget or "
                    "unwritable path)\n");
      }
    }
    if (cached_graph.valid) cli.engine.prefix_graph = &cached_graph;
  }

  infer::InferenceEngine engine(p, cli.engine);
  const infer::InferResult r = engine.run();

  if (!cli.json_path.empty()) {
    std::ofstream jf(cli.json_path);
    if (!jf) {
      std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
      return 2;
    }
    jf << extract::extract_report_json(cli.protocol, p, r);
    std::printf("report written to %s\n", cli.json_path.c_str());
  }

  if (r.status == infer::InferStatus::kUnsat) {
    std::printf("UNSAT: no fence placement makes this protocol safe\n");
    return 1;
  }
  if (r.status == infer::InferStatus::kLimit) {
    std::printf("INCONCLUSIVE: budget hit (raise --max-states=N)\n");
    return 3;
  }

  std::printf("minimum-cost placement (cost %.0f, re-check %s): %s\n",
              r.best_cost, r.recheck_safe ? "SAFE" : "FAILED",
              infer::to_string(r.best).c_str());
  std::printf("%s", extract::format_source_placements(
                        extract::map_back(p, r.best))
                        .c_str());
  return r.recheck_safe ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse_flags(argc, argv);

  const std::vector<extract::RegisteredProtocol> registry =
      extract::protocol_registry();
  if (cli.list) {
    for (const extract::RegisteredProtocol& rp : registry) {
      std::printf("%-14s (committed: examples/litmus/%s)\n", rp.key,
                  rp.committed);
    }
    return 0;
  }
  if (cli.protocol.empty()) {
    std::fprintf(stderr,
                 "usage: lbmf_extract <protocol | --list> [--emit=FILE] "
                 "[--check=COMMITTED.lit] [--infer] [--json=FILE] "
                 "[--graph-cache=FILE] [--no-provenance]\n");
    return 2;
  }

  const extract::RegisteredProtocol* proto = nullptr;
  for (const extract::RegisteredProtocol& rp : registry) {
    if (cli.protocol == rp.key) proto = &rp;
  }
  if (proto == nullptr) {
    std::fprintf(stderr, "unknown protocol '%s' (try --list)\n",
                 cli.protocol.c_str());
    return 2;
  }

  const extract::Spec spec = extract::record_protocol(*proto);
  extract::EmitOptions eo;
  eo.provenance = cli.provenance;
  eo.banner_note = std::string("examples/litmus/") + proto->committed;
  const extract::EmitResult emitted = extract::emit_lit(spec, eo);
  if (!emitted.ok()) {
    std::fprintf(stderr, "recording for '%s' is malformed:\n%s\n", proto->key,
                 emitted.error_string().c_str());
    return 2;
  }

  if (!cli.emit_path.empty()) {
    std::ofstream out(cli.emit_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli.emit_path.c_str());
      return 2;
    }
    out << emitted.text;
    std::printf("generated litmus written to %s\n", cli.emit_path.c_str());
  } else if (!cli.run_infer && cli.check_path.empty()) {
    std::printf("%s", emitted.text.c_str());
  }

  if (!cli.check_path.empty()) {
    const std::string committed = read_file(cli.check_path);
    const extract::DriftReport drift =
        extract::compare_litmus(emitted.text, committed);
    if (!drift.clean()) {
      std::printf("DRIFT between annotations and %s:\n%s",
                  cli.check_path.c_str(), drift.to_string().c_str());
      return 1;
    }
    std::printf("drift check: clean against %s\n", cli.check_path.c_str());
  }

  if (cli.run_infer) return run_inference(cli, emitted.text);
  return 0;
}
