// Packet-processing example (the paper's fourth motivating application):
// an owner thread accounts synthetic traffic into its private flow table
// through the l-mfence fast path while a control-plane thread occasionally
// installs forwarding rules from outside, paying the remote serialization.
//
// Usage: packet_pipeline [seconds] [update_interval_us]

#include <cstdio>
#include <cstdlib>

#include "lbmf/flowtable/pipeline.hpp"

using namespace lbmf;
using namespace lbmf::flowtable;

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::uint64_t interval_us =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1000;

  std::printf("packet pipeline, %.2fs, control-plane update every %lluus\n\n",
              seconds, static_cast<unsigned long long>(interval_us));

  const PipelineResult sym =
      run_pipeline<SymmetricFence>(seconds, 1, interval_us);
  const PipelineResult asym =
      run_pipeline<AsymmetricSignalFence>(seconds, 1, interval_us);

  auto report = [](const char* name, const PipelineResult& r) {
    std::printf("%-10s %12.0f pkt/s   %8llu rule updates   "
                "%llu owner announces, %llu serializations\n",
                name, r.packets_per_second(),
                static_cast<unsigned long long>(r.remote_updates),
                static_cast<unsigned long long>(r.sync.primary_acquires),
                static_cast<unsigned long long>(r.sync.serializations));
  };
  report("mfence", sym);
  report("l-mfence", asym);
  std::printf("\nspeedup from removing the per-packet fence: %.2fx\n",
              sym.packets_per_second() > 0
                  ? asym.packets_per_second() / sym.packets_per_second()
                  : 0.0);
  return 0;
}
