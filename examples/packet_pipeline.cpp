// Packet-processing example (the paper's fourth motivating application),
// now at serving-tier scale: the flow table is sharded by key hash, each
// shard's owner worker accounts traffic through the l-mfence fast path,
// and a control plane installs rules from outside — one cross-shard wave
// (one fence, one overlapped serialize_many) instead of per-shard round
// trips. Runs the same closed loop under the symmetric (mfence-per-packet)
// and asymmetric policies and reports throughput plus client-side p50/p99
// request sojourns.
//
// Usage: packet_pipeline [seconds] [shards]

#include <cstdio>
#include <cstdlib>

#include "lbmf/serve/serve.hpp"
#include "lbmf/util/histogram.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;
using namespace lbmf::serve;

namespace {

struct RunResult {
  double packets_per_second = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t flows = 0;
  std::uint64_t grows = 0;
};

template <typename P>
RunResult run(double seconds, std::size_t shards) {
  ServeConfig cfg;
  cfg.shards = shards;
  cfg.max_clients = 1;
  cfg.ring_capacity = 8192;
  cfg.initial_shard_capacity = 1u << 8;  // grown live by the owners
  Server<P> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  // A wave-batched rule push ahead of traffic: every later response for
  // these flows carries the pushed rule.
  std::vector<RuleUpdate> updates;
  for (FlowKey k = 1; k <= 64; ++k) {
    updates.push_back({k, static_cast<std::uint32_t>(1000 + k)});
  }
  srv.push_rules_wave(updates);

  LogHistogram hist;
  Stopwatch sw;
  std::uint64_t submitted = 0, reaped = 0;
  FlowKey next = 0;
  while (sw.seconds() < seconds) {
    const std::uint64_t now = rdtsc();
    for (int i = 0; i < 64; ++i) {
      if (client.try_submit(next % 4096 + 1, 64, /*burst=*/16, now)) {
        ++next;
        ++submitted;
      } else {
        break;
      }
    }
    reaped += client.poll(&hist);
  }
  while (reaped < submitted) reaped += client.poll(&hist);
  const double secs = sw.seconds();

  // Consistent table-wide export while the owners are still serving.
  const std::uint64_t total = srv.total_packets();
  srv.stop();

  const ServerStats s = srv.stats();
  RunResult r;
  r.packets_per_second =
      secs > 0 ? static_cast<double>(submitted) * 16 / secs : 0.0;
  r.p50_ns = tsc_to_ns(hist.percentile(50));
  r.p99_ns = tsc_to_ns(hist.percentile(99));
  r.flows = s.flows;
  r.grows = s.grows;
  if (total != s.packets) {
    std::printf("  (wave export raced? %llu != %llu)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(s.packets));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::size_t shards =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2;
  if (shards == 0 || (shards & (shards - 1)) != 0) {
    std::fprintf(stderr, "shards must be a power of two\n");
    return 2;
  }

  std::printf("serving tier: %zu shards, %.2fs per policy, burst 16\n\n",
              shards, seconds);

  const RunResult sym = run<SymmetricFence>(seconds, shards);
  const RunResult asym = run<AsymmetricSignalFence>(seconds, shards);

  auto report = [](const char* name, const RunResult& r) {
    std::printf("%-10s %12.0f pkt/s   p50 %9.0f ns   p99 %9.0f ns   "
                "%llu flows (%llu grows)\n",
                name, r.packets_per_second, r.p50_ns, r.p99_ns,
                static_cast<unsigned long long>(r.flows),
                static_cast<unsigned long long>(r.grows));
  };
  report("mfence", sym);
  report("l-mfence", asym);
  std::printf("\nspeedup from removing the per-packet fence: %.2fx "
              "(p99 sojourn %.2fx lower)\n",
              sym.packets_per_second > 0
                  ? asym.packets_per_second / sym.packets_per_second
                  : 0.0,
              asym.p99_ns > 0 ? sym.p99_ns / asym.p99_ns : 0.0);
  return 0;
}
