#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/dekker/asymmetric_mutex.hpp"
#include "lbmf/dekker/dekker.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {
namespace {

// ------------------------------------------------------- typed over policies

template <typename P>
class DekkerTest : public ::testing::Test {};

// UnsafeNoFence is deliberately excluded: mutual exclusion is not guaranteed
// without fences (that absence is demonstrated exhaustively in sim tests).
using SafePolicies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                      AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(DekkerTest, SafePolicies);

TYPED_TEST(DekkerTest, UncontendedPrimaryLockUnlock) {
  AsymmetricDekker<TypeParam> d;
  d.bind_primary();
  for (int i = 0; i < 1000; ++i) {
    d.lock_primary();
    d.unlock_primary();
  }
  EXPECT_EQ(d.stats().primary_acquires, 1000u);
  EXPECT_EQ(d.stats().secondary_acquires, 0u);
  d.unbind_primary();
}

TYPED_TEST(DekkerTest, UncontendedTryLockAlwaysSucceeds) {
  AsymmetricDekker<TypeParam> d;
  d.bind_primary();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(d.try_lock_primary());
    d.unlock_primary();
  }
  d.unbind_primary();
}

TYPED_TEST(DekkerTest, MutualExclusionUnderContention) {
  AsymmetricDekker<TypeParam> d;
  std::atomic<bool> bound{false};
  std::atomic<bool> secondary_done{false};
  // Shared state protected by the protocol; read+write without atomics so a
  // mutual-exclusion failure corrupts the count.
  volatile long counter = 0;
  constexpr long kPerSide = 20000;

  std::thread primary([&] {
    d.bind_primary();
    bound.store(true, std::memory_order_release);
    for (long i = 0; i < kPerSide; ++i) {
      d.lock_primary();
      counter = counter + 1;
      d.unlock_primary();
    }
    // Lifetime contract: unbind on the primary thread, only after every
    // secondary has stopped issuing serialize() calls.
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    d.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  for (long i = 0; i < kPerSide; ++i) {
    d.lock_secondary();
    counter = counter + 1;
    d.unlock_secondary();
  }
  secondary_done.store(true, std::memory_order_release);
  primary.join();
  EXPECT_EQ(counter, 2 * kPerSide);
  EXPECT_EQ(d.stats().primary_acquires, static_cast<std::uint64_t>(kPerSide));
  EXPECT_EQ(d.stats().secondary_acquires,
            static_cast<std::uint64_t>(kPerSide));
}

TYPED_TEST(DekkerTest, OverlapDetectorSeesNoConcurrentOwners) {
  AsymmetricDekker<TypeParam> d;
  std::atomic<bool> bound{false};
  std::atomic<int> owners{0};
  std::atomic<int> max_owners{0};
  constexpr int kIters = 10000;

  auto enter = [&] {
    const int now = owners.fetch_add(1, std::memory_order_acq_rel) + 1;
    int prev = max_owners.load(std::memory_order_relaxed);
    while (prev < now && !max_owners.compare_exchange_weak(
                             prev, now, std::memory_order_relaxed)) {
    }
  };
  auto leave = [&] { owners.fetch_sub(1, std::memory_order_acq_rel); };

  std::atomic<bool> secondary_done{false};
  std::thread primary([&] {
    d.bind_primary();
    bound.store(true, std::memory_order_release);
    for (int i = 0; i < kIters; ++i) {
      d.lock_primary();
      enter();
      leave();
      d.unlock_primary();
    }
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    d.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < kIters; ++i) {
    d.lock_secondary();
    enter();
    leave();
    d.unlock_secondary();
  }
  secondary_done.store(true, std::memory_order_release);
  primary.join();
  EXPECT_EQ(max_owners.load(), 1);
}

TYPED_TEST(DekkerTest, AsymmetryShowsUpInStats) {
  AsymmetricDekker<TypeParam> d;
  d.bind_primary();
  for (int i = 0; i < 10; ++i) {
    d.lock_primary();
    d.unlock_primary();
  }
  const auto s = d.stats();
  EXPECT_EQ(s.primary_fences, 10u);
  if (TypeParam::kAsymmetric) {
    EXPECT_EQ(s.serializations, 0u);  // nobody contended, nobody paid
  }
  d.unbind_primary();
}

// ------------------------------------------------------- AsymmetricMutex

TYPED_TEST(DekkerTest, MutexManySecondariesSumIsExact) {
  AsymmetricMutex<TypeParam> m;
  std::atomic<bool> bound{false};
  volatile long counter = 0;
  constexpr long kPrimaryIters = 20000;
  constexpr int kSecondaries = 3;
  constexpr long kSecondaryIters = 2000;

  std::atomic<bool> secondaries_done{false};
  std::thread primary([&] {
    m.bind_primary();
    bound.store(true, std::memory_order_release);
    for (long i = 0; i < kPrimaryIters; ++i) {
      m.lock_primary();
      counter = counter + 1;
      m.unlock_primary();
    }
    while (!secondaries_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    m.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<std::thread> secondaries;
  for (int t = 0; t < kSecondaries; ++t) {
    secondaries.emplace_back([&] {
      for (long i = 0; i < kSecondaryIters; ++i) {
        m.lock_secondary();
        counter = counter + 1;
        m.unlock_secondary();
      }
    });
  }
  for (auto& th : secondaries) th.join();
  secondaries_done.store(true, std::memory_order_release);
  primary.join();
  EXPECT_EQ(counter, kPrimaryIters + kSecondaries * kSecondaryIters);
}

TYPED_TEST(DekkerTest, MutexTryLockSecondaryBacksOffWhilePrimaryHolds) {
  AsymmetricMutex<TypeParam> m;
  std::atomic<bool> bound{false};
  std::atomic<bool> holding{false};
  std::atomic<bool> release{false};

  std::atomic<bool> done{false};
  std::thread primary([&] {
    m.bind_primary();
    bound.store(true, std::memory_order_release);
    m.lock_primary();
    holding.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    m.unlock_primary();
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    m.unbind_primary();
  });
  while (!holding.load(std::memory_order_acquire)) std::this_thread::yield();

  EXPECT_FALSE(m.try_lock_secondary());
  release.store(true, std::memory_order_release);

  SpinWait waiter;
  bool acquired = false;
  for (int i = 0; i < 1000000 && !acquired; ++i) {
    acquired = m.try_lock_secondary();
    if (!acquired) waiter.wait();
  }
  EXPECT_TRUE(acquired);
  if (acquired) m.unlock_secondary();
  done.store(true, std::memory_order_release);
  primary.join();
}

TYPED_TEST(DekkerTest, GuardsReleaseOnScopeExit) {
  AsymmetricMutex<TypeParam> m;
  m.bind_primary();
  {
    PrimaryLockGuard g(m);
  }
  {
    SecondaryLockGuard g(m);
  }
  // If either guard failed to unlock, this second pass would deadlock.
  {
    PrimaryLockGuard g(m);
  }
  m.unbind_primary();
  SUCCEED();
}

}  // namespace
}  // namespace lbmf
