#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lbmf/dekker/peterson.hpp"

namespace lbmf {
namespace {

template <typename P>
class PetersonTest : public ::testing::Test {};

using SafePolicies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                      AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(PetersonTest, SafePolicies);

TYPED_TEST(PetersonTest, UncontendedBothRoles) {
  AsymmetricPeterson<TypeParam> p;
  p.bind_primary();
  for (int i = 0; i < 1000; ++i) {
    p.lock_primary();
    p.unlock_primary();
  }
  for (int i = 0; i < 100; ++i) {
    p.lock_secondary();
    p.unlock_secondary();
  }
  p.unbind_primary();
  SUCCEED();
}

TYPED_TEST(PetersonTest, MutualExclusionUnderContention) {
  AsymmetricPeterson<TypeParam> p;
  std::atomic<bool> bound{false};
  std::atomic<bool> secondary_done{false};
  volatile long counter = 0;
  constexpr long kPerSide = 20000;

  std::thread primary([&] {
    p.bind_primary();
    bound.store(true, std::memory_order_release);
    for (long i = 0; i < kPerSide; ++i) {
      p.lock_primary();
      counter = counter + 1;
      p.unlock_primary();
    }
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    p.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  for (long i = 0; i < kPerSide; ++i) {
    p.lock_secondary();
    counter = counter + 1;
    p.unlock_secondary();
  }
  secondary_done.store(true, std::memory_order_release);
  primary.join();
  EXPECT_EQ(counter, 2 * kPerSide);
}

TYPED_TEST(PetersonTest, OverlapDetectorNeverSeesTwoOwners) {
  AsymmetricPeterson<TypeParam> p;
  std::atomic<bool> bound{false};
  std::atomic<bool> secondary_done{false};
  std::atomic<int> owners{0};
  std::atomic<bool> overlap{false};
  constexpr int kIters = 10000;

  auto visit = [&] {
    if (owners.fetch_add(1, std::memory_order_acq_rel) != 0) {
      overlap.store(true, std::memory_order_relaxed);
    }
    owners.fetch_sub(1, std::memory_order_acq_rel);
  };

  std::thread primary([&] {
    p.bind_primary();
    bound.store(true, std::memory_order_release);
    for (int i = 0; i < kIters; ++i) {
      p.lock_primary();
      visit();
      p.unlock_primary();
    }
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    p.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < kIters; ++i) {
    p.lock_secondary();
    visit();
    p.unlock_secondary();
  }
  secondary_done.store(true, std::memory_order_release);
  primary.join();
  EXPECT_FALSE(overlap.load());
}

}  // namespace
}  // namespace lbmf
