// Mutex-zoo conformance: every lock in include/lbmf/zoo/ (plus Peterson,
// the zoo's fourth member, from lbmf/dekker/) runs a mutual-exclusion
// pound and a completion/fairness smoke against every serialization
// backend {signal, membarrier-pair, sim-lest} in the asymmetric regime —
// the regime the zoo locks implement (hot side announces with an
// l-mfence, cold side serializes the hot side remotely). Backends whose
// capabilities are absent on this host skip loudly, never pass vacuously.
//
// Mutual exclusion: a plain (non-atomic) counter incremented only inside
// the critical section, plus an overlap detector — any lost increment or
// concurrent entry fails. Fairness smoke: the locks are blocking, so each
// role finishing its full quota within the test timeout is the liveness
// assertion; the counter equality is the proof that no round was dropped.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/backend/backend.hpp"
#include "lbmf/zoo/zoo.hpp"

namespace lbmf {
namespace {

using adapt::AdaptiveFence;
using adapt::PolicyMode;
using backend::BackendCaps;
using backend::BackendId;

constexpr std::uint64_t kRounds = 1'000;

// Shared counting harness: every lock exercises the same detector.
struct CsProbe {
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::uint64_t guarded = 0;  // plain: only ever touched inside a CS

  void enter() {
    if (in_cs.exchange(1, std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    ++guarded;
    for (int spin = 0; spin < 16; ++spin) compiler_fence();
    in_cs.store(0, std::memory_order_relaxed);
  }
};

// Bind the calling (primary) thread's handle to `id` in the asymmetric
// regime; false (plus a loud skip by the caller) when the backend cannot.
void bind_asymmetric(const AdaptiveFence::Handle& h, BackendId id) {
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(AdaptiveFence::request_backend(h, id));
  EXPECT_TRUE(AdaptiveFence::request_mode(h, PolicyMode::kAsymmetric));
  AdaptiveFence::quiescent_point(h);  // no announce in flight yet
  EXPECT_EQ(AdaptiveFence::current_backend(h), id);
  EXPECT_EQ(AdaptiveFence::realized_mode(h), PolicyMode::kAsymmetric);
}

bool backend_usable(BackendId id) {
  return backend::serialization_backend(id).caps().asymmetric;
}

// ---------------------------------------------------------------- Peterson

void peterson_conformance(BackendId id) {
  if (!backend_usable(id)) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }
  AsymmetricPeterson<AdaptiveFence> mtx;
  CsProbe probe;
  std::atomic<bool> ready{false};
  std::atomic<bool> secondary_done{false};

  std::thread primary([&] {
    mtx.bind_primary();
    bind_asymmetric(mtx.primary_handle(), id);
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      mtx.lock_primary();
      probe.enter();
      mtx.unlock_primary();
    }
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    mtx.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread secondary([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      mtx.lock_secondary();
      probe.enter();
      mtx.unlock_secondary();
    }
    secondary_done.store(true, std::memory_order_release);
  });

  secondary.join();
  primary.join();
  EXPECT_EQ(probe.violations.load(), 0);
  EXPECT_EQ(probe.guarded, 2 * kRounds);
}

TEST(ZooPeterson, Signal) { peterson_conformance(BackendId::kSignal); }
TEST(ZooPeterson, MembarrierPair) {
  peterson_conformance(BackendId::kMembarrierPair);
}
TEST(ZooPeterson, SimLest) { peterson_conformance(BackendId::kSimLest); }

// ---------------------------------------------------------------- spinlock

void spinlock_conformance(BackendId id) {
  if (!backend_usable(id)) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }
  constexpr int kContenders = 2;
  zoo::BiasedSpinlock<AdaptiveFence> mtx;
  CsProbe probe;
  std::atomic<bool> ready{false};
  std::atomic<int> contenders_done{0};

  std::thread owner([&] {
    mtx.bind_primary();
    bind_asymmetric(mtx.primary_handle(), id);
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      mtx.lock_primary();
      probe.enter();
      mtx.unlock_primary();
    }
    while (contenders_done.load(std::memory_order_acquire) < kContenders) {
      std::this_thread::yield();
    }
    mtx.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<std::thread> contenders;
  for (int c = 0; c < kContenders; ++c) {
    contenders.emplace_back([&] {
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        mtx.lock_secondary();
        probe.enter();
        mtx.unlock_secondary();
      }
      contenders_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::thread& t : contenders) t.join();
  owner.join();
  EXPECT_EQ(probe.violations.load(), 0);
  EXPECT_EQ(probe.guarded, (1 + kContenders) * kRounds);
}

TEST(ZooSpinlock, Signal) { spinlock_conformance(BackendId::kSignal); }
TEST(ZooSpinlock, MembarrierPair) {
  spinlock_conformance(BackendId::kMembarrierPair);
}
TEST(ZooSpinlock, SimLest) { spinlock_conformance(BackendId::kSimLest); }

// ------------------------------------------------------------------ bakery

void bakery_conformance(BackendId id) {
  if (!backend_usable(id)) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }
  constexpr std::size_t kThreads = 3;
  zoo::BakeryLock<AdaptiveFence, kThreads> mtx;
  CsProbe probe;
  std::atomic<bool> ready{false};
  std::atomic<std::size_t> secondaries_done{0};

  std::thread primary([&] {
    mtx.bind_primary();
    bind_asymmetric(mtx.primary_handle(), id);
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      mtx.lock(0);
      probe.enter();
      mtx.unlock(0);
    }
    while (secondaries_done.load(std::memory_order_acquire) < kThreads - 1) {
      std::this_thread::yield();
    }
    mtx.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<std::thread> secondaries;
  for (std::size_t i = 1; i < kThreads; ++i) {
    secondaries.emplace_back([&, i] {
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        mtx.lock(i);
        probe.enter();
        mtx.unlock(i);
      }
      secondaries_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::thread& t : secondaries) t.join();
  primary.join();
  EXPECT_EQ(probe.violations.load(), 0);
  EXPECT_EQ(probe.guarded, kThreads * kRounds);
}

TEST(ZooBakery, Signal) { bakery_conformance(BackendId::kSignal); }
TEST(ZooBakery, MembarrierPair) {
  bakery_conformance(BackendId::kMembarrierPair);
}
TEST(ZooBakery, SimLest) { bakery_conformance(BackendId::kSimLest); }

// ------------------------------------------------------------- futex mutex

void futex_conformance(BackendId id) {
  if (!backend_usable(id)) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }
  constexpr int kWaiters = 2;
  zoo::FutexMutex<AdaptiveFence> mtx;
  CsProbe probe;
  std::atomic<bool> ready{false};
  std::atomic<int> waiters_done{0};

  std::thread owner([&] {
    mtx.bind_primary();
    bind_asymmetric(mtx.primary_handle(), id);
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      mtx.lock_primary();
      probe.enter();
      mtx.unlock_primary();  // the location-fenced release fast path
    }
    while (waiters_done.load(std::memory_order_acquire) < kWaiters) {
      std::this_thread::yield();
    }
    mtx.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<std::thread> waiters;
  for (int w = 0; w < kWaiters; ++w) {
    waiters.emplace_back([&] {
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        mtx.lock_secondary();
        probe.enter();
        mtx.unlock_secondary();
      }
      waiters_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (std::thread& t : waiters) t.join();
  owner.join();
  EXPECT_EQ(probe.violations.load(), 0);
  EXPECT_EQ(probe.guarded, (1 + kWaiters) * kRounds);
}

TEST(ZooFutexMutex, Signal) { futex_conformance(BackendId::kSignal); }
TEST(ZooFutexMutex, MembarrierPair) {
  futex_conformance(BackendId::kMembarrierPair);
}
TEST(ZooFutexMutex, SimLest) { futex_conformance(BackendId::kSimLest); }

// ------------------------------------------------- single-thread sanity

// Uncontended acquire/release through both roles of each zoo lock with the
// default (symmetric, always-available) policy — catches plumbing breaks
// without any backend or second thread.
TEST(ZooSmoke, UncontendedAllLocks) {
  {
    zoo::BiasedSpinlock<SymmetricFence> s;
    s.bind_primary();
    s.lock_primary();
    s.unlock_primary();
    s.lock_secondary();
    s.unlock_secondary();
    s.unbind_primary();
  }
  {
    zoo::BakeryLock<SymmetricFence, 4> b;
    b.bind_primary();
    for (std::size_t i = 0; i < 4; ++i) {
      b.lock(i);
      b.unlock(i);
    }
    b.unbind_primary();
  }
  {
    zoo::FutexMutex<SymmetricFence> f;
    f.bind_primary();
    f.lock_primary();
    f.unlock_primary();
    f.lock_secondary();
    f.unlock_secondary();
    f.unbind_primary();
  }
}

}  // namespace
}  // namespace lbmf
