#include <gtest/gtest.h>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

namespace lbmf::sim {
namespace {

// ------------------------------------------------------------ happy paths

TEST(Assembler, SingleCpuArithmetic) {
  const auto r = assemble(R"(
    cpu 0:
      mov r0, 5
      add r0, 3
      halt
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.programs.size(), 1u);
  SimConfig cfg;
  cfg.num_cpus = 1;
  Machine m(cfg);
  m.load_program(0, r.programs[0]);
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 8);
}

TEST(Assembler, SymbolicLocationsShareAddressesAcrossCpus) {
  const auto r = assemble(R"(
    cpu 0:
      store [flag], 1
      mfence
      halt
    cpu 1:
      load r0, [flag]
      halt
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.programs.size(), 2u);
  EXPECT_EQ(r.symbols.size(), 1u);
  EXPECT_EQ(r.symbols.at("flag"), 0u);
}

TEST(Assembler, ThreeOrMoreCpuSectionsAssemble) {
  // Regression: the cpu-section ordering check used to double-count
  // finished sections and rejected every program with a third CPU.
  const auto r = assemble(R"(
    cpu 0:
      store [x], 1
      halt
    cpu 1:
      store [x], 2
      halt
    cpu 2:
      load r0, [x]
      halt
    cpu 3:
      halt
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  EXPECT_EQ(r.programs.size(), 4u);
}

TEST(Assembler, FenceHolesAreRecordedAndAssembleAsPlainStores) {
  const auto r = assemble(R"(
    cpu 0:
      ?fence [flag], 1
      load r0, [peer]
      halt
    cpu 1:
      ?fence [peer], 1
      load r0, [flag]
      halt
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.holes.size(), 2u);
  EXPECT_EQ(r.holes[0].cpu, 0u);
  EXPECT_EQ(r.holes[0].instr_index, 0u);
  EXPECT_EQ(r.holes[0].addr, r.symbols.at("flag"));
  EXPECT_EQ(r.holes[0].value, 1);
  EXPECT_EQ(r.holes[1].cpu, 1u);
  // The hole itself is a plain store until a fence kind is chosen.
  EXPECT_EQ(r.programs[0].code[0].op, Op::kStore);
}

TEST(Assembler, FreqDirectiveRecordsPerCpuWeights) {
  const auto r = assemble(R"(
    cpu 0:
      freq 1000
      halt
    cpu 1:
      halt
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.cpu_freqs.size(), 2u);
  EXPECT_DOUBLE_EQ(r.cpu_freqs[0], 1000.0);
  EXPECT_DOUBLE_EQ(r.cpu_freqs[1], 1.0);
  // freq emits no instruction.
  EXPECT_EQ(r.programs[0].code.size(), r.programs[1].code.size());
}

TEST(Assembler, CommentsWhitespaceAndNumericAddresses) {
  const auto r = assemble(
      "cpu 0:\n"
      "  # a comment line\n"
      "  store [3], 9   // trailing comment\n"
      "\n"
      "  load r1 , [ 3 ]\n"
      "  halt\n");
  ASSERT_TRUE(r.ok()) << r.error->message;
  Machine m = assemble_machine(
      "cpu 0:\n  store [3], 9\n  load r1, [3]\n  halt\n");
  m.run_round_robin();
  EXPECT_EQ(m.cpu(1 - 1).regs[1], 9);
}

TEST(Assembler, LabelsAndLoops) {
  Machine m = assemble_machine(R"(
    cpu 0:
      mov r0, 4
      mov r1, 0
    top:
      add r1, 10
      add r0, -1
      bne r0, 0, top
      halt
  )");
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[1], 40);
}

TEST(Assembler, StoreFromRegister) {
  Machine m = assemble_machine(R"(
    cpu 0:
      mov r2, 77
      store [x], r2
      mfence
      load r0, [x]
      halt
  )");
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 77);
}

TEST(Assembler, TextualAsymmetricDekkerIsExhaustivelySafe) {
  // The paper's Fig. 3(a), written as a litmus text and model-checked.
  const char* source = R"(
    # Asymmetric Dekker: primary uses l-mfence, secondary uses mfence.
    cpu 0:
      lmfence [L1], 1
      load r0, [L2]
      bne r0, 0, skip
      cs_enter
      cs_exit
    skip:
      store [L1], 0
      halt
    cpu 1:
      store [L2], 1
      mfence
      load r0, [L1]
      bne r0, 0, skip
      cs_enter
      cs_exit
    skip:
      store [L2], 0
      halt
  )";
  SimConfig cfg;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  const ExploreResult r = explore_all(assemble_machine(source, cfg));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_GT(r.states_explored, 100u);
}

TEST(Assembler, TextualFenceFreeDekkerViolates) {
  const char* source = R"(
    cpu 0:
      store [L1], 1
      load r0, [L2]
      bne r0, 0, skip
      cs_enter
      cs_exit
    skip:
      halt
    cpu 1:
      store [L2], 1
      load r0, [L1]
      bne r0, 0, skip
      cs_enter
      cs_exit
    skip:
      halt
  )";
  Explorer::Options opts;
  Explorer ex(assemble_machine(source), opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.violation.has_value());
}

TEST(Assembler, InitDirectiveSetsSharedMemory) {
  Machine m = assemble_machine(R"(
    init [flag], 7
    init [9], 42
    cpu 0:
      load r0, [flag]
      load r1, [9]
      halt
  )");
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 7);
  EXPECT_EQ(m.cpu(0).regs[1], 42);
}

TEST(Assembler, ShippedPetersonLitmusShapeWorksInline) {
  // Mirrors examples/litmus/peterson_lmfence.lit: exhaustively safe.
  const char* source = R"(
    cpu 0:
      store [flag0], 1
      lmfence [turn], 1
      load r0, [flag1]
      beq r0, 0, enter
      load r1, [turn]
      beq r1, 1, skip
    enter:
      cs_enter
      cs_exit
    skip:
      store [flag0], 0
      halt
    cpu 1:
      store [flag1], 1
      lmfence [turn], 2
      load r0, [flag0]
      beq r0, 0, enter
      load r1, [turn]
      beq r1, 2, skip
    enter:
      cs_enter
      cs_exit
    skip:
      store [flag1], 0
      halt
  )";
  const ExploreResult r = explore_all(assemble_machine(source));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

// ------------------------------------------------------------- error paths

TEST(AssemblerErrors, UnknownInstruction) {
  const auto r = assemble("cpu 0:\n  frobnicate r0\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_NE(r.error->message.find("unknown instruction"), std::string::npos);
}

TEST(AssemblerErrors, InstructionOutsideCpuSection) {
  const auto r = assemble("mov r0, 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("outside"), std::string::npos);
}

TEST(AssemblerErrors, RegisterOutOfRange) {
  const auto r = assemble("cpu 0:\n  mov r9, 1\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("register"), std::string::npos);
}

TEST(AssemblerErrors, MissingHalt) {
  const auto r = assemble("cpu 0:\n  mov r0, 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("halt"), std::string::npos);
}

TEST(AssemblerErrors, UndefinedLabel) {
  const auto r = assemble("cpu 0:\n  jmp nowhere\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("undefined label"), std::string::npos);
}

TEST(AssemblerErrors, CpuSectionsOutOfOrder) {
  const auto r = assemble("cpu 1:\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("in order"), std::string::npos);
}

TEST(AssemblerErrors, TrailingGarbage) {
  const auto r = assemble("cpu 0:\n  mfence extra\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("trailing"), std::string::npos);
}

TEST(AssemblerErrors, EmptySource) {
  const auto r = assemble("  \n # only comments\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("no 'cpu"), std::string::npos);
}

TEST(AssemblerErrors, InitAfterCpuSectionRejected) {
  const auto r = assemble("cpu 0:\n  halt\ninit [x], 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("precede"), std::string::npos);
}

TEST(AssemblerErrors, MalformedLocation) {
  const auto r = assemble("cpu 0:\n  load r0, flag\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("'['"), std::string::npos);
}

// ---------------------------------------- diagnostics: column + token

TEST(AssemblerErrors, UnknownInstructionReportsColumnAndToken) {
  const auto r = assemble("cpu 0:\n  frobnicate r0\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->column, 3u);  // 1-based: two spaces of indent
  EXPECT_EQ(r.error->token, "frobnicate");
}

TEST(AssemblerErrors, RegisterOutOfRangeReportsColumnAndToken) {
  const auto r = assemble("cpu 0:\n  mov r9, 1\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->column, 7u);
  EXPECT_EQ(r.error->token, "r9");
}

TEST(AssemblerErrors, BadImmediateReportsColumnAndToken) {
  const auto r = assemble("cpu 0:\n  store [x], banana\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->column, 14u);
  EXPECT_EQ(r.error->token, "banana");
}

TEST(AssemblerErrors, MissingBracketReportsColumn) {
  const auto r = assemble("cpu 0:\n  load r0, flag\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->column, 12u);  // points at 'f' where '[' was expected
}

TEST(AssemblerErrors, TrailingTokenReportsOffendingToken) {
  const auto r = assemble("cpu 0:\n  mfence extra\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->line, 2u);
  EXPECT_EQ(r.error->token, "extra");
  EXPECT_EQ(r.error->column, 10u);
}

TEST(AssemblerErrors, StructuralErrorsKeepColumnZero) {
  const auto r = assemble("cpu 0:\n  halt\ninit [x], 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error->column, 0u);
  EXPECT_TRUE(r.error->token.empty());
}

TEST(AssemblerErrors, ToStringIncludesLineColumnAndToken) {
  const auto r = assemble("cpu 0:\n  mov r9, 1\n  halt\n");
  ASSERT_FALSE(r.ok());
  const std::string s = r.error->to_string();
  EXPECT_NE(s.find("line 2"), std::string::npos) << s;
  EXPECT_NE(s.find("col 7"), std::string::npos) << s;
  EXPECT_NE(s.find("'r9'"), std::string::npos) << s;
}

// ------------------------------------------- `#@` provenance comments

TEST(Assembler, ProvenanceCommentAttachesToHole) {
  const auto r = assemble(
      "cpu 0:\n"
      "  ?fence [x], 1                  #@ lbmf/ws/deque.hpp:119\n"
      "  load r0, [y]\n"
      "  halt\n");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.holes.size(), 1u);
  EXPECT_EQ(r.holes[0].provenance, "lbmf/ws/deque.hpp:119");
}

TEST(Assembler, ProvenanceIsAPlainCommentToOtherInstructions) {
  // `#@` on non-hole lines (and the program bytes generally) must be
  // invisible: the same test with and without provenance comments
  // assembles identically.
  const auto with = assemble(
      "cpu 0:                           #@ a.hpp:1 role primary\n"
      "  store [x], 1                   #@ a.hpp:2\n"
      "  load r0, [y]                   #@ a.hpp:3\n"
      "  halt                           #@ a.hpp:4\n");
  const auto without = assemble(
      "cpu 0:\n  store [x], 1\n  load r0, [y]\n  halt\n");
  ASSERT_TRUE(with.ok()) << with.error->message;
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with.programs[0].code, without.programs[0].code);
  EXPECT_EQ(with.symbols, without.symbols);
}

TEST(Assembler, HoleWithoutProvenanceHasEmptyProvenance) {
  const auto r = assemble("cpu 0:\n  ?fence [x], 1  # plain comment\n  halt\n");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.holes.size(), 1u);
  EXPECT_TRUE(r.holes[0].provenance.empty());
}

// ------------------------------------------- locked RMWs + final directive

TEST(Assembler, LockUnlockEnforceMutualExclusion) {
  // A spinlock word [G] guarding the critical section: the locked-xchg
  // semantics of lock/unlock must make this exhaustively safe even though
  // no fence instruction appears anywhere.
  const char* source = R"(
    cpu 0:
      lock [G]
      cs_enter
      cs_exit
      unlock [G]
      halt
    cpu 1:
      lock [G]
      cs_enter
      cs_exit
      unlock [G]
      halt
  )";
  const ExploreResult r = explore_all(assemble_machine(source));
  ASSERT_FALSE(r.hit_limit);
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

TEST(Assembler, FinalDirectiveRecordsDisjunctionOfConjunctions) {
  const auto r = assemble(R"(
    cpu 0:
      store [x], 1
      halt
    cpu 1:
      store [x], 2
      halt
    final [x], 1, [y], 0
    final [x], 2
  )");
  ASSERT_TRUE(r.ok()) << r.error->message;
  ASSERT_EQ(r.final_allowed.size(), 2u);
  ASSERT_EQ(r.final_allowed[0].size(), 2u);  // one line = one conjunction
  EXPECT_EQ(r.final_allowed[0][0].second, 1);
  ASSERT_EQ(r.final_allowed[1].size(), 1u);
  EXPECT_EQ(r.final_allowed[1][0].second, 2);
}

TEST(Assembler, FinalStateCheckFlagsAForbiddenTerminalState) {
  // Racing stores: both final orders are reachable, but only [x]=1 is
  // declared allowed — the explorer must surface the [x]=2 outcome.
  const char* source = R"(
    cpu 0:
      store [x], 1
      halt
    cpu 1:
      store [x], 2
      halt
    final [x], 1
  )";
  const auto a = assemble(source);
  ASSERT_TRUE(a.ok());
  Explorer::Options opts;
  opts.check = final_state_check(a.final_allowed);
  Explorer ex(assemble_machine(source), opts);
  const ExploreResult r = ex.run();
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_NE(r.violation->find("not in final set"), std::string::npos);
}

TEST(Assembler, FinalStateCheckAcceptsWhenAllOutcomesListed) {
  const char* source = R"(
    cpu 0:
      store [x], 1
      halt
    cpu 1:
      store [x], 2
      halt
    final [x], 1
    final [x], 2
  )";
  const auto a = assemble(source);
  ASSERT_TRUE(a.ok());
  Explorer::Options opts;
  opts.check = final_state_check(a.final_allowed);
  Explorer ex(assemble_machine(source), opts);
  const ExploreResult r = ex.run();
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

TEST(Assembler, BlockedLockWithNoReleaserIsReportedAsDeadlock) {
  // cpu0 takes the gate and halts without releasing; cpu1 blocks forever
  // on its lock — a terminal state that is not finished().
  const char* source = R"(
    cpu 0:
      lock [G]
      halt
    cpu 1:
      lock [G]
      store [x], 1
      halt
  )";
  const auto a = assemble(source);
  ASSERT_TRUE(a.ok());
  Explorer::Options opts;
  opts.check = final_state_check(a.final_allowed);
  Explorer ex(assemble_machine(source), opts);
  const ExploreResult r = ex.run();
  ASSERT_TRUE(r.violation.has_value());
  EXPECT_NE(r.violation->find("deadlock"), std::string::npos);
}

TEST(AssemblerErrors, FinalWithoutPairsRejected) {
  const auto r = assemble("cpu 0:\n  halt\nfinal\n");
  ASSERT_FALSE(r.ok());
}

TEST(AssemblerErrors, LockNeedsABracketedLocation) {
  const auto r = assemble("cpu 0:\n  lock r0\n  halt\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error->message.find("'['"), std::string::npos);
}

}  // namespace
}  // namespace lbmf::sim
