// Death tests: every LBMF_CHECK contract in the public surface must abort
// loudly (never corrupt silently) when violated.
#include <gtest/gtest.h>

#include "lbmf/core/lmfence.hpp"
#include "lbmf/dekker/dekker.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf {
namespace {

TEST(ContractDeath, CheckMacroAborts) {
  EXPECT_DEATH(LBMF_CHECK(1 == 2), "LBMF_CHECK failed");
  EXPECT_DEATH(LBMF_CHECK_MSG(false, "custom detail"), "custom detail");
}

using IntGuardedLocation = GuardedLocation<int, SymmetricFence>;

TEST(ContractDeath, GuardedLocationDoubleBind) {
  EXPECT_DEATH(
      {
        IntGuardedLocation loc;
        loc.bind_primary();
        loc.bind_primary();
      },
      "already has a primary");
}

TEST(ContractDeath, DekkerDoubleBind) {
  EXPECT_DEATH(
      {
        AsymmetricDekker<SymmetricFence> d;
        d.bind_primary();
        d.bind_primary();
      },
      "already bound");
}

TEST(ContractDeath, DekkerDestructionWhileBound) {
  EXPECT_DEATH(
      {
        AsymmetricDekker<SymmetricFence> d;
        d.bind_primary();
        // destructor runs with the binding still live
      },
      "unbind_primary not called");
}

TEST(ContractDeath, SpawnOutsideScheduler) {
  EXPECT_DEATH(
      {
        ws::TaskGroupBase g;
        auto t = ws::ClosureTask(g, [] {});
        typename ws::Scheduler<SymmetricFence>::TaskGroup tg;
        tg.spawn(t);  // no worker thread context
      },
      "spawn outside a scheduler task");
}

TEST(ContractDeath, SimProgramWithoutHalt) {
  EXPECT_DEATH(
      {
        sim::ProgramBuilder b("nohalt");
        b.mov(0, 1);
        (void)b.build();
      },
      "halt");
}

TEST(ContractDeath, SimUndefinedLabel) {
  EXPECT_DEATH(
      {
        sim::ProgramBuilder b("badlabel");
        b.jump("nowhere").halt();
        (void)b.build();
      },
      "undefined label");
}

TEST(ContractDeath, SimNestedCriticalSection) {
  EXPECT_DEATH(
      {
        sim::SimConfig cfg;
        cfg.num_cpus = 1;
        sim::Machine m(cfg);
        sim::ProgramBuilder b("nested");
        b.cs_enter().cs_enter().cs_exit().cs_exit().halt();
        m.load_program(0, b.build());
        m.run_round_robin();
      },
      "nested critical section");
}

TEST(ContractDeath, SimStepWhenDisabled) {
  EXPECT_DEATH(
      {
        sim::SimConfig cfg;
        cfg.num_cpus = 1;
        sim::Machine m(cfg);
        sim::ProgramBuilder b("p");
        b.halt();
        m.load_program(0, b.build());
        m.step(0, sim::Action::Drain);  // empty store buffer
      },
      "action_enabled");
}

TEST(ContractDeath, SimInvalidConfig) {
  EXPECT_DEATH(
      {
        sim::SimConfig cfg;
        cfg.num_cpus = 0;
        sim::Machine m(cfg);
      },
      "LBMF_CHECK failed");
}

}  // namespace
}  // namespace lbmf
