// Audit tests for the explorer engine itself (rather than the litmus
// verdicts it produces): fingerprint dedup must be indistinguishable from
// exact dedup, partial-order reduction must shrink the graph without
// changing any observable result, the iterative DFS must survive path
// depths that would overflow a recursive implementation, and the parallel
// mode must agree with the sequential one.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/program.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg_n(std::size_t cpus) {
  SimConfig cfg;
  cfg.num_cpus = cpus;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

struct LitmusProgram {
  const char* name;
  Machine machine;
};

// Every bundled litmus machine, safe and violating alike. Exploration runs
// with stop_at_violation = false so the traversal is a deterministic
// function of the state graph even for the negative controls.
std::vector<LitmusProgram> bundled_litmus_programs() {
  std::vector<LitmusProgram> v;
  const FenceKind kinds[] = {FenceKind::kNone, FenceKind::kMfence,
                             FenceKind::kLmfence};
  for (FenceKind a : kinds) {
    for (FenceKind b : kinds) {
      v.push_back({"dekker", make_dekker_machine(a, b, cfg_n(2))});
      v.push_back({"peterson", make_peterson_machine(a, b, cfg_n(2))});
      v.push_back({"store_buffer", make_store_buffer_litmus(a, b, cfg_n(2))});
    }
  }
  v.push_back({"message_passing", make_message_passing_litmus(cfg_n(2))});
  v.push_back({"load_buffering", make_load_buffering_litmus(cfg_n(2))});
  v.push_back({"iriw", make_iriw_litmus(cfg_n(4))});
  return v;
}

Explorer::Options audit_options() {
  Explorer::Options opts;
  opts.observe = observe_obs0;
  opts.stop_at_violation = false;  // deterministic full traversal
  opts.max_states = 5'000'000;
  return opts;
}

// ------------------------------------------------------- collision audit

// 128-bit fingerprints replace full canonical keys in the visited set. A
// hash collision would silently merge two distinct states and change the
// traversal. Run every bundled litmus program both ways and require the
// results to be bit-for-bit identical — if fingerprinting ever lost a
// state, at least one counter or outcome set would diverge.
TEST(CollisionAudit, FingerprintMatchesExactDedupOnEveryLitmusProgram) {
  for (auto& p : bundled_litmus_programs()) {
    Explorer::Options opts = audit_options();
    opts.exact_dedup = false;
    const ExploreResult fp = explore_all(p.machine, opts);
    opts.exact_dedup = true;
    const ExploreResult exact = explore_all(p.machine, opts);

    ASSERT_FALSE(fp.hit_limit) << p.name;
    EXPECT_EQ(fp.states_explored, exact.states_explored) << p.name;
    EXPECT_EQ(fp.transitions, exact.transitions) << p.name;
    EXPECT_EQ(fp.terminal_states, exact.terminal_states) << p.name;
    EXPECT_EQ(fp.dedup_hits, exact.dedup_hits) << p.name;
    EXPECT_EQ(fp.outcomes, exact.outcomes) << p.name;
    EXPECT_EQ(fp.violation.has_value(), exact.violation.has_value()) << p.name;
    // Exact mode keeps whole canonical strings, costing more than the 16
    // bytes a fingerprint slot takes. (Absolute totals are not comparable
    // on graphs smaller than the fingerprint set's minimum capacity.)
    EXPECT_GT(exact.visited_bytes, exact.states_explored * 16) << p.name;
  }
}

// ------------------------------------------------- partial-order reduction

// POR must prune strictly (otherwise it is dead weight) while preserving
// every observable: terminal outcomes, terminal count reachability of a
// violation, for each bundled program.
TEST(PartialOrderReduction, StrictlyFewerStatesIdenticalOutcomes) {
  for (auto& p : bundled_litmus_programs()) {
    Explorer::Options opts = audit_options();
    opts.por = false;
    const ExploreResult full = explore_all(p.machine, opts);
    opts.por = true;
    const ExploreResult reduced = explore_all(p.machine, opts);

    ASSERT_FALSE(full.hit_limit) << p.name;
    EXPECT_LT(reduced.states_explored, full.states_explored) << p.name;
    EXPECT_LE(reduced.transitions, full.transitions) << p.name;
    EXPECT_EQ(reduced.outcomes, full.outcomes) << p.name;
    EXPECT_EQ(reduced.violation.has_value(), full.violation.has_value())
        << p.name;
  }
}

// ------------------------------------------------------------- deep chains

// A 30k-instruction straight-line program produces a single schedule of
// depth ~30k. The seed explorer recursed once per step and overflowed the
// stack well short of this; the iterative DFS just walks it.
TEST(DeepPrograms, RegisterChainThirtyThousandDeep) {
  constexpr int kLen = 30'000;
  ProgramBuilder b("deep_regs");
  for (int i = 0; i < kLen; ++i) b.add(0, 1);
  b.halt();
  Machine m(cfg_n(1));
  m.load_program(0, b.build());

  Explorer::Options opts;
  opts.max_states = 200'000;
  const ExploreResult r = explore_all(std::move(m), opts);
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_EQ(r.terminal_states, 1u);
  EXPECT_GE(r.states_explored, static_cast<std::uint64_t>(kLen));
}

// Same idea with stores: a long straight-line store chain through a
// 1-entry store buffer interleaves Execute/Drain, so DFS paths reach
// ~2x chain length and every frame is a real branch point.
TEST(DeepPrograms, StoreChainTwelveThousandDeep) {
  constexpr int kLen = 12'000;
  ProgramBuilder b("deep_stores");
  for (int i = 0; i < kLen; ++i) {
    b.store(addr::kScratchBase, static_cast<Word>(i & 0xff));
  }
  b.halt();
  SimConfig cfg = cfg_n(1);
  cfg.sb_capacity = 1;
  Machine m(cfg);
  m.load_program(0, b.build());

  Explorer::Options opts;
  opts.max_states = 500'000;
  const ExploreResult r = explore_all(std::move(m), opts);
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_EQ(r.terminal_states, 1u);
  EXPECT_GE(r.states_explored, static_cast<std::uint64_t>(kLen));
}

// --------------------------------------------------------- parallel mode

// With POR off the parallel explorer visits exactly the full state graph,
// so every counter must match the sequential run.
TEST(ParallelExploration, MatchesSequentialWithoutPor) {
  for (auto& p : bundled_litmus_programs()) {
    Explorer::Options opts = audit_options();
    opts.por = false;
    opts.threads = 1;
    const ExploreResult seq = explore_all(p.machine, opts);
    opts.threads = 4;
    const ExploreResult par = explore_all(p.machine, opts);

    EXPECT_EQ(par.states_explored, seq.states_explored) << p.name;
    EXPECT_EQ(par.terminal_states, seq.terminal_states) << p.name;
    EXPECT_EQ(par.outcomes, seq.outcomes) << p.name;
    EXPECT_EQ(par.violation.has_value(), seq.violation.has_value()) << p.name;
  }
}

// Under POR the parallel cycle proviso is conservative, so states_explored
// may exceed the sequential count (never the full graph's outcome set
// though): verdicts and outcomes still agree.
TEST(ParallelExploration, SameOutcomesWithPor) {
  for (auto& p : bundled_litmus_programs()) {
    Explorer::Options opts = audit_options();
    opts.por = true;
    opts.threads = 1;
    const ExploreResult seq = explore_all(p.machine, opts);
    opts.threads = 4;
    const ExploreResult par = explore_all(p.machine, opts);

    EXPECT_EQ(par.outcomes, seq.outcomes) << p.name;
    EXPECT_EQ(par.terminal_states, seq.terminal_states) << p.name;
    EXPECT_EQ(par.violation.has_value(), seq.violation.has_value()) << p.name;
  }
}

// ------------------------------------------------------- small satellites

TEST(ExploreAllOverload, OptionsVariantHonoursEveryOption) {
  Explorer::Options opts;
  opts.observe = observe_obs0;
  opts.por = false;
  opts.max_states = 10;  // force the limit so we know opts was used
  const ExploreResult r = explore_all(
      make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence, cfg_n(2)),
      opts);
  EXPECT_TRUE(r.hit_limit);
  EXPECT_LE(r.states_explored, 10u + 4u);  // small slack for in-flight counts
}

TEST(AnnotateSchedule, ReportsIndexOfFirstNotEnabledStep) {
  Machine m = make_dekker_machine(FenceKind::kMfence, FenceKind::kMfence,
                                  cfg_n(2));
  // Step 0 is legal (CPU0 executes its first instruction); step 1 asks CPU1
  // to drain an empty store buffer, which is never enabled from the start.
  const std::vector<Choice> schedule = {
      Choice{0, Action::Execute},
      Choice{1, Action::Drain},
  };
  const std::string annotated = annotate_schedule(std::move(m), schedule);
  EXPECT_NE(annotated.find("schedule step 1 not enabled"), std::string::npos)
      << annotated;
  EXPECT_EQ(annotated.find("schedule step 0"), std::string::npos) << annotated;
}

}  // namespace
}  // namespace lbmf::sim
