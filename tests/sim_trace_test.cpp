#include <gtest/gtest.h>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/trace.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg2() {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

TEST(SimTrace, RecordsOneExecEventPerInstruction) {
  Machine m(cfg2());
  ProgramBuilder b("p");
  b.mov(0, 1).store(3, 7).mfence().halt();
  m.load_program(0, b.build());
  ProgramBuilder idle("i");
  idle.halt();
  m.load_program(1, idle.build());
  TraceRecorder rec;
  m.set_trace(&rec);
  m.run_round_robin();
  EXPECT_EQ(rec.count(EventKind::kExec),
            m.cpu(0).counters.instructions + m.cpu(1).counters.instructions);
  EXPECT_EQ(rec.count(EventKind::kDrain), 1u);  // the mfence drained 1 store
}

TEST(SimTrace, GuardEventsShowUpInOrder) {
  Machine m(cfg2());
  ProgramBuilder p("primary");
  p.lmfence(0, 1).halt();
  ProgramBuilder q("reader");
  q.load(0, 0).halt();
  m.load_program(0, p.build());
  m.load_program(1, q.build());
  TraceRecorder rec;
  m.set_trace(&rec);
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);  // arm + park
  m.step(1, Action::Execute);                              // remote read

  EXPECT_EQ(rec.count(EventKind::kLinkArm), 1u);
  EXPECT_EQ(rec.count(EventKind::kGuardRemote), 1u);
  EXPECT_EQ(rec.count(EventKind::kDrain), 1u);  // the guard flush

  // Ordering: arm before the guard fires, guard before the drain.
  std::uint64_t arm_seq = 0, guard_seq = 0, drain_seq = 0;
  for (const TraceEvent& e : rec.events()) {
    if (e.kind == EventKind::kLinkArm) arm_seq = e.seq;
    if (e.kind == EventKind::kGuardRemote) guard_seq = e.seq;
    if (e.kind == EventKind::kDrain) drain_seq = e.seq;
  }
  EXPECT_LT(arm_seq, guard_seq);
  EXPECT_LT(guard_seq, drain_seq);
}

TEST(SimTrace, DetachedRecorderStopsRecording) {
  Machine m(cfg2());
  ProgramBuilder b("p");
  b.mov(0, 1).mov(1, 2).halt();
  m.load_program(0, b.build());
  ProgramBuilder idle("i");
  idle.halt();
  m.load_program(1, idle.build());
  TraceRecorder rec;
  m.set_trace(&rec);
  m.step(0, Action::Execute);
  m.set_trace(nullptr);
  m.step(0, Action::Execute);
  EXPECT_EQ(rec.count(EventKind::kExec), 1u);
}

TEST(SimTrace, FormattingIsStable) {
  TraceRecorder rec;
  rec.record(1, EventKind::kGuardRemote, 7, 0);
  rec.record(0, EventKind::kExec, kInvalidAddr, 0, "MOV r0");
  const auto& evs = rec.events();
  EXPECT_NE(to_string(evs[0]).find("cpu1"), std::string::npos);
  EXPECT_NE(to_string(evs[0]).find("guard-remote"), std::string::npos);
  EXPECT_NE(to_string(evs[1]).find("MOV r0"), std::string::npos);
  EXPECT_NE(rec.to_string().find('\n'), std::string::npos);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(SimTrace, AnnotatedViolationScheduleTellsTheStory) {
  // Get a violating schedule from the fence-free Dekker and annotate it:
  // the narrative must end with 2 CPUs in the critical section and must
  // not contain any guard events (no l-mfence was armed).
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(FenceKind::kNone, FenceKind::kNone, cfg2()),
              opts);
  const ExploreResult r = ex.run();
  ASSERT_TRUE(r.violation.has_value());

  const std::string story = annotate_schedule(
      make_dekker_machine(FenceKind::kNone, FenceKind::kNone, cfg2()),
      r.violation_trace);
  EXPECT_NE(story.find("final: 2 CPU(s) in critical section"),
            std::string::npos)
      << story;
  EXPECT_EQ(story.find("guard-remote"), std::string::npos);
  EXPECT_NE(story.find("CS_ENTER"), std::string::npos);
}

TEST(SimTrace, AnnotatedSafeScheduleShowsGuardFiring) {
  // Round-robin the asymmetric Dekker and annotate the schedule: the story
  // must include the link arming; if a remote access hit the guarded line,
  // a guard-remote event follows.
  Machine probe = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                      cfg2());
  std::vector<Choice> schedule;
  while (!probe.finished()) {
    bool stepped = false;
    for (std::size_t c = 0; c < 2 && !stepped; ++c) {
      if (probe.action_enabled(c, Action::Execute)) {
        schedule.push_back({static_cast<std::uint8_t>(c), Action::Execute});
        probe.step(c, Action::Execute);
        stepped = true;
      } else if (probe.action_enabled(c, Action::Drain)) {
        schedule.push_back({static_cast<std::uint8_t>(c), Action::Drain});
        probe.step(c, Action::Drain);
        stepped = true;
      }
    }
    ASSERT_TRUE(stepped);
  }
  const std::string story = annotate_schedule(
      make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence, cfg2()),
      schedule);
  EXPECT_NE(story.find("link-arm"), std::string::npos) << story;
  EXPECT_NE(story.find("final:"), std::string::npos);
}

}  // namespace
}  // namespace lbmf::sim
