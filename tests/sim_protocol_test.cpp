// Protocol-variant tests: the paper claims the LE/ST mechanism "can be
// adapted to other variants such as MSI and MOESI" (Sec. 2). Here the whole
// litmus battery runs under each protocol, plus variant-specific state
// checks (no E under MSI; Owned appears on MOESI downgrades with memory
// left stale until eviction).
#include <gtest/gtest.h>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg_for(Protocol p) {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  cfg.protocol = p;
  return cfg;
}

class ProtocolSuite : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolSuite, AsymmetricDekkerSafeExhaustively) {
  const ExploreResult r = explore_all(make_dekker_machine(
      FenceKind::kLmfence, FenceKind::kMfence, cfg_for(GetParam())));
  ASSERT_FALSE(r.hit_limit)
      << to_string(GetParam()) << ": state budget hit, not SAFE";
  EXPECT_FALSE(r.violation.has_value())
      << to_string(GetParam()) << ": " << *r.violation;
}

TEST_P(ProtocolSuite, MirroredLmfenceSafeExhaustively) {
  const ExploreResult r = explore_all(make_dekker_machine(
      FenceKind::kLmfence, FenceKind::kLmfence, cfg_for(GetParam())));
  ASSERT_FALSE(r.hit_limit)
      << to_string(GetParam()) << ": state budget hit, not SAFE";
  EXPECT_FALSE(r.violation.has_value())
      << to_string(GetParam()) << ": " << *r.violation;
}

TEST_P(ProtocolSuite, FenceFreeDekkerStillViolates) {
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(FenceKind::kNone, FenceKind::kNone,
                                  cfg_for(GetParam())),
              opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.violation.has_value()) << to_string(GetParam());
}

TEST_P(ProtocolSuite, StoreBufferLitmusMatchesTso) {
  Explorer::Options opts;
  opts.observe = observe_obs0;
  Explorer ex(make_store_buffer_litmus(FenceKind::kLmfence,
                                       FenceKind::kLmfence,
                                       cfg_for(GetParam())),
              opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit)
      << to_string(GetParam()) << ": state budget hit, not SAFE";
  ASSERT_FALSE(r.violation.has_value())
      << to_string(GetParam()) << ": " << *r.violation;
  EXPECT_EQ(r.outcomes.count("r0=0,r0=0"), 0u) << to_string(GetParam());
}

TEST_P(ProtocolSuite, RemoteGuardedReadSeesFreshValue) {
  SimConfig cfg = cfg_for(GetParam());
  Machine m(cfg);
  ProgramBuilder p("primary");
  p.lmfence(addr::kFlag0, 1).halt();
  ProgramBuilder q("reader");
  q.load(reg::kObs0, addr::kFlag0).halt();
  m.load_program(0, p.build());
  m.load_program(1, q.build());
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  m.step(1, Action::Execute);
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 1) << to_string(GetParam());
  EXPECT_FALSE(m.check_coherence().has_value()) << to_string(GetParam());
}

TEST_P(ProtocolSuite, FuzzRandomSchedulesKeepInvariants) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Machine m = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                    cfg_for(GetParam()));
    m.run_random(seed);
    EXPECT_FALSE(m.check_coherence().has_value())
        << to_string(GetParam()) << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSuite,
                         ::testing::Values(Protocol::kMsi, Protocol::kMesi,
                                           Protocol::kMoesi),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return to_string(info.param);
                         });

// ------------------------------------------------- variant-specific states

TEST(ProtocolMsi, SoleReaderFillsSharedNotExclusive) {
  Machine m(cfg_for(Protocol::kMsi));
  ProgramBuilder b("r");
  b.load(0, 9).halt();
  ProgramBuilder idle("i");
  idle.halt();
  m.load_program(0, b.build());
  m.load_program(1, idle.build());
  m.step(0, Action::Execute);
  EXPECT_EQ(m.line_state(0, 9), Mesi::Shared);  // MSI has no E
}

TEST(ProtocolMsi, LoadExclusiveFillsModifiedDirectly) {
  Machine m(cfg_for(Protocol::kMsi));
  ProgramBuilder b("le");
  b.load_exclusive(0, 9).halt();
  ProgramBuilder idle("i");
  idle.halt();
  m.load_program(0, b.build());
  m.load_program(1, idle.build());
  m.step(0, Action::Execute);
  EXPECT_EQ(m.line_state(0, 9), Mesi::Modified);
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(ProtocolMoesi, DowngradedDirtyLineBecomesOwnedAndMemoryStaysStale) {
  Machine m(cfg_for(Protocol::kMoesi));
  ProgramBuilder w("w");
  w.store(9, 42).mfence().halt();
  ProgramBuilder r("r");
  r.load(reg::kObs0, 9).halt();
  m.load_program(0, w.build());
  m.load_program(1, r.build());
  m.step(0, Action::Execute);  // store commits
  m.step(0, Action::Execute);  // mfence completes it -> M
  ASSERT_EQ(m.line_state(0, 9), Mesi::Modified);
  m.step(1, Action::Execute);  // remote read: M -> O, no writeback
  EXPECT_EQ(m.line_state(0, 9), Mesi::Owned);
  EXPECT_EQ(m.line_state(1, 9), Mesi::Shared);
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 42);  // data came from the owner
  EXPECT_EQ(m.memory(9), 0);                 // memory intentionally stale
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(ProtocolMoesi, EvictingOwnedLineWritesBack) {
  SimConfig cfg = cfg_for(Protocol::kMoesi);
  cfg.cache_capacity = 2;
  Machine m(cfg);
  ProgramBuilder w("w");
  w.store(9, 42).mfence();   // 9 -> M
  w.load(2, 50).load(3, 60); // force eviction pressure later
  w.halt();
  ProgramBuilder r("r");
  r.load(reg::kObs0, 9).halt();
  m.load_program(0, w.build());
  m.load_program(1, r.build());
  m.step(0, Action::Execute);
  m.step(0, Action::Execute);  // 9 in M
  m.step(1, Action::Execute);  // downgrade: 9 -> O on cpu0
  ASSERT_EQ(m.line_state(0, 9), Mesi::Owned);
  m.step(0, Action::Execute);  // load 50 (cache: {9:O, 50})
  m.step(0, Action::Execute);  // load 60 evicts LRU = 9 (Owned)
  EXPECT_EQ(m.line_state(0, 9), Mesi::Invalid);
  EXPECT_EQ(m.memory(9), 42);  // writeback happened on eviction
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(ProtocolMoesi, WriterReclaimsOwnedLineViaUpgrade) {
  Machine m(cfg_for(Protocol::kMoesi));
  ProgramBuilder w("w");
  w.store(9, 42).mfence();  // M
  w.store(9, 43).mfence();  // after downgrade to O this needs an upgrade
  w.halt();
  ProgramBuilder r("r");
  r.load(reg::kObs0, 9).load(reg::kObs1, 9).halt();
  m.load_program(0, w.build());
  m.load_program(1, r.build());
  m.step(0, Action::Execute);
  m.step(0, Action::Execute);  // 9 -> M (42)
  m.step(1, Action::Execute);  // reader: cpu0 9 -> O, reader S (42)
  ASSERT_EQ(m.line_state(0, 9), Mesi::Owned);
  m.step(0, Action::Execute);  // store 43 commits
  m.step(0, Action::Execute);  // mfence: upgrade O -> M, invalidate reader
  EXPECT_EQ(m.line_state(0, 9), Mesi::Modified);
  EXPECT_EQ(m.line_state(1, 9), Mesi::Invalid);
  m.step(1, Action::Execute);  // reader re-fetches: sees 43 from owner
  EXPECT_EQ(m.cpu(1).regs[reg::kObs1], 43);
  EXPECT_FALSE(m.check_coherence().has_value());
}

}  // namespace
}  // namespace lbmf::sim
