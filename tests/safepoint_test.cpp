#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/core/safepoint.hpp"

namespace lbmf {
namespace {

template <typename P>
class SafepointTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(SafepointTest, Policies);

TYPED_TEST(SafepointTest, StopTheWorldWithNoMutatorsRunsImmediately) {
  Safepoint<TypeParam> sp;
  bool ran = false;
  sp.stop_the_world([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(sp.stops(), 1u);
}

TYPED_TEST(SafepointTest, PollIsFreeWithoutPendingRequest) {
  Safepoint<TypeParam> sp;
  std::thread mutator([&] {
    auto token = sp.register_mutator();
    for (int i = 0; i < 100000; ++i) token.poll();
    EXPECT_EQ(token.times_parked(), 0u);
  });
  mutator.join();
}

TYPED_TEST(SafepointTest, WorldStopsAreAtomicSnapshots) {
  // Mutators increment a pair in lockstep between polls; during a stop the
  // coordinator must always observe the pair equal — any torn observation
  // means a mutator kept running through the safepoint.
  Safepoint<TypeParam> sp;
  constexpr int kMutators = 3;
  alignas(64) static volatile long a_cells[kMutators];
  alignas(64) static volatile long b_cells[kMutators];
  for (int i = 0; i < kMutators; ++i) {
    a_cells[i] = 0;
    b_cells[i] = 0;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};

  std::vector<std::thread> mutators;
  for (int t = 0; t < kMutators; ++t) {
    mutators.emplace_back([&, t] {
      auto token = sp.register_mutator();
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!stop.load(std::memory_order_relaxed)) {
        a_cells[t] = a_cells[t] + 1;  // deliberately torn between polls
        b_cells[t] = b_cells[t] + 1;
        token.poll();
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < kMutators) {
    std::this_thread::yield();
  }

  int torn = 0;
  for (int round = 0; round < 50; ++round) {
    sp.stop_the_world([&] {
      for (int t = 0; t < kMutators; ++t) {
        if (a_cells[t] != b_cells[t]) ++torn;
      }
    });
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : mutators) th.join();
  EXPECT_EQ(torn, 0);
  EXPECT_EQ(sp.stops(), 50u);
}

TYPED_TEST(SafepointTest, SafeRegionExemptsMutatorFromTheWait) {
  Safepoint<TypeParam> sp;
  std::atomic<bool> in_region{false};
  std::atomic<bool> leave{false};

  std::thread mutator([&] {
    auto token = sp.register_mutator();
    token.enter_safe_region();
    in_region.store(true, std::memory_order_release);
    while (!leave.load(std::memory_order_acquire)) {
      std::this_thread::yield();  // "blocked in a syscall"
    }
    token.leave_safe_region();
  });
  while (!in_region.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // The coordinator must complete even though the mutator never polls.
  bool ran = false;
  sp.stop_the_world([&] { ran = true; });
  EXPECT_TRUE(ran);

  leave.store(true, std::memory_order_release);
  mutator.join();
}

TYPED_TEST(SafepointTest, LeavingSafeRegionDuringStopWaitsForRelease) {
  Safepoint<TypeParam> sp;
  std::atomic<bool> in_region{false};
  std::atomic<bool> try_leave{false};
  std::atomic<bool> left{false};
  std::atomic<bool> release_world{false};

  std::thread mutator([&] {
    auto token = sp.register_mutator();
    token.enter_safe_region();
    in_region.store(true, std::memory_order_release);
    while (!try_leave.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    token.leave_safe_region();  // must block while the world is stopped
    left.store(true, std::memory_order_release);
  });
  while (!in_region.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread coordinator([&] {
    sp.stop_the_world([&] {
      try_leave.store(true, std::memory_order_release);
      // Give the mutator a chance to (incorrectly) slip out mid-stop.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      EXPECT_FALSE(left.load(std::memory_order_acquire));
      release_world.store(true, std::memory_order_release);
    });
  });

  coordinator.join();
  mutator.join();
  EXPECT_TRUE(left.load());
  EXPECT_TRUE(release_world.load());
}

TYPED_TEST(SafepointTest, MutatorSlotsRecycle) {
  Safepoint<TypeParam> sp;
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto token = sp.register_mutator();
      token.poll();
    });
    t.join();
  }
  bool ran = false;
  sp.stop_the_world([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(SafepointAsymmetry, MutatorPollPaysNoFenceWhenIdle) {
  // Not directly observable via counters, but the poll path must not
  // serialize: run a million polls and require that no parks happened and
  // no stop was needed.
  Safepoint<AsymmetricSignalFence> sp;
  std::thread mutator([&] {
    auto token = sp.register_mutator();
    for (int i = 0; i < 1000000; ++i) token.poll();
    EXPECT_EQ(token.times_parked(), 0u);
  });
  mutator.join();
  EXPECT_EQ(sp.stops(), 0u);
}

TYPED_TEST(SafepointTest, BatchedWaveStopsMixedMutatorPopulation) {
  // stop_the_world() serializes all mutators with one batched wave. Mix
  // polling mutators with safe-region dwellers so a single wave spans both
  // classes, and verify the snapshot is still atomic.
  Safepoint<TypeParam> sp;
  constexpr int kPolling = 4;
  alignas(64) static volatile long a_cells[kPolling];
  alignas(64) static volatile long b_cells[kPolling];
  for (int i = 0; i < kPolling; ++i) {
    a_cells[i] = 0;
    b_cells[i] = 0;
  }
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};

  std::vector<std::thread> mutators;
  for (int t = 0; t < kPolling; ++t) {
    mutators.emplace_back([&, t] {
      auto token = sp.register_mutator();
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!stop.load(std::memory_order_relaxed)) {
        a_cells[t] = a_cells[t] + 1;
        b_cells[t] = b_cells[t] + 1;
        token.poll();
      }
    });
  }
  // Two more mutators parked in safe regions for the whole test: the wave
  // serializes them too, but must not wait on them.
  for (int t = 0; t < 2; ++t) {
    mutators.emplace_back([&] {
      auto token = sp.register_mutator();
      token.enter_safe_region();
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!stop.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
      token.leave_safe_region();
    });
  }
  while (ready.load(std::memory_order_acquire) < kPolling + 2) {
    std::this_thread::yield();
  }

  int torn = 0;
  for (int round = 0; round < 20; ++round) {
    sp.stop_the_world([&] {
      for (int t = 0; t < kPolling; ++t) {
        if (a_cells[t] != b_cells[t]) ++torn;
      }
    });
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : mutators) th.join();
  EXPECT_EQ(torn, 0);
  EXPECT_EQ(sp.stops(), 20u);
}

}  // namespace
}  // namespace lbmf
