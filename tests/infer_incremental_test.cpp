// Incremental re-exploration and orbit-canonical candidate search.
//
// The engine's two scale-up levers must be invisible in every verdict:
// resuming candidate verifications from the persisted hole-independent
// prefix region (PrefixGraph) and collapsing placement orbits of declared
// symmetric CPUs must produce bit-identical optima to the cold, exact
// search — just with fewer explorer runs and fewer suffix states. These
// tests pin that equivalence on the real litmus protocols and exercise the
// graph's persistence format (save/load, key mismatch rejection).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "lbmf/infer/infer.hpp"

namespace lbmf::infer {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

InferProblem problem_from_file(const char* name) {
  const ProblemParse parse =
      problem_from_source(slurp(std::string(LBMF_LITMUS_DIR) + "/" + name));
  EXPECT_TRUE(parse.ok()) << name;
  return *parse.problem;
}

InferResult solve(const InferProblem& p, bool symmetry, bool incremental,
                  const PrefixGraph* graph = nullptr) {
  InferenceEngine::Options o;
  o.symmetry = symmetry;
  o.incremental = incremental;
  o.prefix_graph = graph;
  InferenceEngine engine(p, o);
  return engine.run();
}

// A temp path that is unique per test process; removed by each test.
std::string tmp_graph_path(const char* tag) {
  return ::testing::TempDir() + "lbmf_prefix_" + tag + ".bin";
}

// ----------------------------------------------------------- graph build

TEST(PrefixGraph, BuildsNonTrivialRegionForTwoThieves) {
  const InferProblem p = problem_from_file("the_deque_two_thieves.lit");
  const InferenceEngine::Options o;
  const PrefixGraph g =
      build_prefix_graph(p, InferenceEngine::explorer_options_for(p, o));
  ASSERT_TRUE(g.valid);
  EXPECT_TRUE(g.key == problem_graph_key(p));
  EXPECT_GT(g.base.states_explored, 0u);
  EXPECT_FALSE(g.seeds.empty());
  EXPECT_EQ(g.visited.size(), g.base.states_explored);
  // The region is hole-independent: no violation can be found there for a
  // protocol whose races all require executing through a hole.
  EXPECT_FALSE(g.base.violation.has_value());
}

TEST(PrefixGraph, KeyIgnoresFreqsAndCosts) {
  InferProblem p = problem_from_file("the_deque_two_thieves.lit");
  const Hash128 base_key = problem_graph_key(p);
  InferProblem hot = p;
  hot.cpu_freqs[0] *= 100;
  EXPECT_TRUE(problem_graph_key(hot) == base_key);
  InferProblem moved = p;
  moved.sites[0].instr_index += 1;
  EXPECT_FALSE(problem_graph_key(moved) == base_key);
}

TEST(PrefixGraph, SaveLoadRoundtripAndKeyMismatch) {
  const InferProblem p = problem_from_file("the_deque_two_thieves.lit");
  const InferenceEngine::Options o;
  const PrefixGraph g =
      build_prefix_graph(p, InferenceEngine::explorer_options_for(p, o));
  ASSERT_TRUE(g.valid);
  const std::string path = tmp_graph_path("roundtrip");
  ASSERT_TRUE(save_prefix_graph(g, path));

  PrefixGraph loaded;
  ASSERT_TRUE(load_prefix_graph(loaded, path, problem_graph_key(p)));
  EXPECT_TRUE(loaded.valid);
  EXPECT_EQ(loaded.seeds.size(), g.seeds.size());
  EXPECT_EQ(loaded.visited.size(), g.visited.size());
  EXPECT_EQ(loaded.base.states_explored, g.base.states_explored);
  for (std::size_t i = 0; i < g.seeds.size(); ++i) {
    EXPECT_EQ(loaded.seeds[i].arch, g.seeds[i].arch) << i;
    EXPECT_EQ(loaded.seeds[i].agenda.size(), g.seeds[i].agenda.size()) << i;
  }

  // A different problem's key must reject the file, leaving the graph
  // invalid (the caller then rebuilds cold).
  const InferProblem other = problem_from_file("chase_lev.lit");
  PrefixGraph rejected;
  EXPECT_FALSE(load_prefix_graph(rejected, path, problem_graph_key(other)));
  EXPECT_FALSE(rejected.valid);
  EXPECT_FALSE(load_prefix_graph(rejected, path + ".missing",
                                 problem_graph_key(p)));
  std::remove(path.c_str());
}

// ----------------------------------------------------- cold/warm parity

// The core soundness pin: for each big protocol, the four combinations of
// {symmetry, incremental} must land on the same optimum at the same cost
// with a SAFE recheck; the reduced searches must do no more explorer runs
// than the exact one.
TEST(ColdWarmParity, VerdictsIdenticalAcrossAllEngineModes) {
  const char* files[] = {"the_deque_two_thieves.lit", "chase_lev.lit",
                         "biased_rwlock.lit"};
  for (const char* name : files) {
    const InferProblem p = problem_from_file(name);
    const InferResult exact = solve(p, false, false);
    ASSERT_EQ(exact.status, InferStatus::kSat) << name;
    for (const bool sym : {false, true}) {
      for (const bool inc : {false, true}) {
        if (!sym && !inc) continue;
        const InferResult r = solve(p, sym, inc);
        ASSERT_EQ(r.status, InferStatus::kSat) << name;
        EXPECT_EQ(r.best.kinds, exact.best.kinds) << name;
        EXPECT_EQ(r.best_cost, exact.best_cost) << name;
        EXPECT_TRUE(r.recheck_safe) << name;
        EXPECT_LE(r.candidates_verified, exact.candidates_verified) << name;
        if (inc) {
          EXPECT_GT(r.prefix_states, 0u) << name;
          EXPECT_GT(r.incremental_reuses, 0u) << name;
        } else {
          EXPECT_EQ(r.incremental_reuses, 0u) << name;
        }
      }
    }
  }
}

// The tentpole acceptance number: PR 5's engine needed 12 explorer runs for
// the two-thief lattice; symmetry + clause learning + incremental reuse
// must solve it in at most 4, at the same cost-3520 placement.
TEST(ColdWarmParity, TwoThievesSolvedInAtMostFourRuns) {
  const InferProblem p = problem_from_file("the_deque_two_thieves.lit");
  const InferResult r = solve(p, true, true);
  ASSERT_EQ(r.status, InferStatus::kSat);
  EXPECT_LE(r.candidates_verified, 4u);
  EXPECT_EQ(r.best_cost, 3520.0);
  EXPECT_TRUE(r.recheck_safe);
  const std::vector<FenceKind> want = {
      FenceKind::kLmfence, FenceKind::kNone, FenceKind::kMfence,
      FenceKind::kNone,    FenceKind::kMfence, FenceKind::kNone};
  EXPECT_EQ(r.best.kinds, want);
}

// An externally supplied graph (the --graph-cache path) must be adopted:
// the engine reports the region it resumed from without rebuilding it.
TEST(ColdWarmParity, ExternalGraphIsAdopted) {
  const InferProblem p = problem_from_file("biased_rwlock.lit");
  InferenceEngine::Options o;
  const PrefixGraph g =
      build_prefix_graph(p, InferenceEngine::explorer_options_for(p, o));
  ASSERT_TRUE(g.valid);
  const InferResult r = solve(p, true, true, &g);
  ASSERT_EQ(r.status, InferStatus::kSat);
  EXPECT_EQ(r.prefix_states, g.base.states_explored);
  EXPECT_GT(r.incremental_reuses, 0u);
  EXPECT_TRUE(r.recheck_safe);
}

// ------------------------------------------------------------ sweep grid

// Across a sweep grid the warm engine reuses ONE region for every grid
// point (the graph key excludes freqs and costs); all optima must match
// the cold sweep bit-for-bit.
TEST(SweepIncremental, GridVerdictsBitIdenticalColdVsWarm) {
  const InferProblem p = problem_from_file("the_deque_two_thieves.lit");
  SweepOptions so;
  so.victim_freqs = {1, 1'000, 100'000};
  so.roundtrips = {150, 1'500};
  so.engine.incremental = false;
  const SweepResult cold = run_sweep(p, so);
  so.engine.incremental = true;
  const SweepResult warm = run_sweep(p, so);

  ASSERT_EQ(cold.points.size(), warm.points.size());
  for (std::size_t i = 0; i < cold.points.size(); ++i) {
    EXPECT_EQ(warm.points[i].status, cold.points[i].status) << i;
    EXPECT_EQ(warm.points[i].best.kinds, cold.points[i].best.kinds) << i;
    EXPECT_EQ(warm.points[i].best_cost, cold.points[i].best_cost) << i;
    EXPECT_EQ(warm.points[i].recheck_safe, cold.points[i].recheck_safe) << i;
  }
  EXPECT_EQ(warm.crossovers.size(), cold.crossovers.size());
  EXPECT_GT(warm.prefix_states, 0u);
  EXPECT_GT(warm.incremental_reuses, 0u);
  EXPECT_EQ(cold.prefix_states, 0u);
  // The one-time region plus warm suffix work must not exceed cold work.
  EXPECT_LE(warm.states_total + warm.prefix_states, cold.states_total);
}

}  // namespace
}  // namespace lbmf::infer
