// Serialization-backend conformance matrix: the same two protocol
// correctness checks — Dekker mutual exclusion and the biased rwlock's
// writer round — run against every serialization backend {signal,
// membarrier-pair, sim-lest} through AdaptiveFence's per-handle re-binding.
// The Dekker leg runs each backend at the strongest regime its caps admit
// (double-l-mfence on the role-inverting backends, the asymmetric mix on
// signal), so the double regime's primary-side peer drain is exercised by
// a real protocol, not just the unit tests. Backends whose capabilities
// are absent on this host skip loudly rather than pass vacuously.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/backend/backend.hpp"
#include "lbmf/dekker/dekker.hpp"
#include "lbmf/rwlock/rwlock.hpp"

namespace lbmf {
namespace {

using adapt::AdaptiveFence;
using adapt::PolicyMode;
using backend::BackendCaps;
using backend::BackendId;

// The strongest regime a backend's capabilities admit; what the adaptive
// runtime's realize step would clamp any request to.
PolicyMode strongest_mode(const BackendCaps& caps) {
  if (caps.inverts_roles) return PolicyMode::kDoubleLmfence;
  if (caps.asymmetric) return PolicyMode::kAsymmetric;
  return PolicyMode::kSymmetric;
}

// ------------------------------------------------------------- Dekker leg

// Two threads race a blocking Dekker lock around a plain (non-atomic)
// counter; any lost increment or CS overlap is a mutual-exclusion
// violation. The primary re-binds to `id` at its first quiescent point and
// the test asserts the realized regime is the strongest the backend
// advertises — a silent downgrade would make the leg vacuous.
void dekker_conformance(BackendId id) {
  const BackendCaps caps = backend::serialization_backend(id).caps();
  if (!caps.asymmetric) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }
  const PolicyMode want = strongest_mode(caps);

  constexpr std::uint64_t kRounds = 2'000;
  AsymmetricDekker<AdaptiveFence> dk;
  std::atomic<bool> ready{false};
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  std::uint64_t guarded = 0;  // plain: only ever touched inside the CS

  const auto enter_cs = [&] {
    if (in_cs.exchange(1, std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    ++guarded;
    for (int spin = 0; spin < 16; ++spin) compiler_fence();
    in_cs.store(0, std::memory_order_relaxed);
  };

  std::atomic<bool> secondary_done{false};
  std::thread primary([&] {
    dk.bind_primary();
    const AdaptiveFence::Handle h = dk.primary_handle();
    ASSERT_TRUE(h.valid());
    EXPECT_TRUE(AdaptiveFence::request_backend(h, id));
    EXPECT_TRUE(AdaptiveFence::request_mode(h, want));
    AdaptiveFence::quiescent_point(h);  // no announce in flight yet
    EXPECT_EQ(AdaptiveFence::current_backend(h), id);
    EXPECT_EQ(AdaptiveFence::realized_mode(h), want);
    EXPECT_EQ(AdaptiveFence::degraded_count(h), 0u);
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      dk.lock_primary();
      enter_cs();
      dk.unlock_primary();
    }
    // Lifetime contract: the registered thread must stay alive (able to
    // answer drains) until the secondary stops serializing it, and must
    // unbind on its own thread.
    while (!secondary_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    dk.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread secondary([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      dk.lock_secondary();
      enter_cs();
      dk.unlock_secondary();
    }
    secondary_done.store(true, std::memory_order_release);
  });

  secondary.join();
  primary.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(guarded, 2 * kRounds);
  const DekkerStats s = dk.stats();
  EXPECT_GT(s.serializations, 0u);  // the secondary really drained remotely
  if (want == PolicyMode::kDoubleLmfence) {
    // Role inversion was live: the primary drained its peer per announce.
    EXPECT_GT(s.primary_serializations, 0u);
  } else {
    EXPECT_EQ(s.primary_serializations, 0u);
  }
}

TEST(BackendMatrixDekker, Signal) { dekker_conformance(BackendId::kSignal); }
TEST(BackendMatrixDekker, MembarrierPair) {
  dekker_conformance(BackendId::kMembarrierPair);
}
TEST(BackendMatrixDekker, SimLest) { dekker_conformance(BackendId::kSimLest); }

// ------------------------------------------------------------- rwlock leg

// Readers re-bound to `id` run the l-mfence fast path in the asymmetric
// regime while a writer repeatedly updates two plain variables that must
// never be observed torn. The writer's round trips go through the bound
// backend's serialize_many wave — the writer-side conformance the matrix
// is after.
void rwlock_conformance(BackendId id) {
  const BackendCaps caps = backend::serialization_backend(id).caps();
  if (!caps.asymmetric) {
    GTEST_SKIP() << backend::to_string(id) << " cannot serialize on this host";
  }

  constexpr int kReaders = 2;
  constexpr std::uint64_t kWrites = 400;
  BiasedRwLock<AdaptiveFence> lock;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads{0};
  std::uint64_t a = 0, b = 0;  // writer keeps a == b under the write lock

  std::thread readers[kReaders];
  for (std::thread& t : readers) {
    t = std::thread([&] {
      auto token = lock.register_reader();
      const AdaptiveFence::Handle h = token.handle();
      ASSERT_TRUE(h.valid());
      EXPECT_TRUE(AdaptiveFence::request_backend(h, id));
      EXPECT_TRUE(AdaptiveFence::request_mode(h, PolicyMode::kAsymmetric));
      AdaptiveFence::quiescent_point(h);  // before any read-lock section
      EXPECT_EQ(AdaptiveFence::realized_mode(h), PolicyMode::kAsymmetric);
      ready.fetch_add(1, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        token.read_lock();
        if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
        token.read_unlock();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }

  for (std::uint64_t w = 0; w < kWrites; ++w) {
    lock.write_lock();
    ++a;
    for (int spin = 0; spin < 16; ++spin) compiler_fence();
    ++b;
    lock.write_unlock();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(a, kWrites);
  EXPECT_EQ(b, kWrites);
  EXPECT_GT(lock.stats().serializations, 0u);
}

TEST(BackendMatrixRwLock, Signal) { rwlock_conformance(BackendId::kSignal); }
TEST(BackendMatrixRwLock, MembarrierPair) {
  rwlock_conformance(BackendId::kMembarrierPair);
}
TEST(BackendMatrixRwLock, SimLest) { rwlock_conformance(BackendId::kSimLest); }

// ------------------------------------------------- backend observability

// The role-inverting backends keep trip ledgers; a drain routed through
// each must land there. Self-contained (drives serialize_peers directly)
// so it holds even when the test runner puts every TEST in its own process.
TEST(BackendMatrixLedger, TripsWereRouted) {
  backend::SerializationBackend& mb =
      backend::serialization_backend(BackendId::kMembarrierPair);
  if (mb.caps().inverts_roles) {
    const std::uint64_t before = backend::membarrier_trips();
    EXPECT_TRUE(mb.serialize_peers());
    EXPECT_GT(backend::membarrier_trips(), before);
  } else {
    EXPECT_FALSE(mb.serialize_peers());
  }

  backend::SerializationBackend& sl =
      backend::serialization_backend(BackendId::kSimLest);
  if (sl.caps().inverts_roles) {
    const std::uint64_t trips = backend::simlest_trips();
    const std::uint64_t cycles = backend::simlest_modeled_cycles();
    EXPECT_TRUE(sl.serialize_peers());
    EXPECT_GT(backend::simlest_trips(), trips);
    EXPECT_GT(backend::simlest_modeled_cycles(), cycles);
  } else {
    EXPECT_FALSE(sl.serialize_peers());
  }
}

}  // namespace
}  // namespace lbmf
