#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/core/epoch.hpp"

namespace lbmf {
namespace {

template <typename P>
class EpochTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(EpochTest, Policies);

TYPED_TEST(EpochTest, SynchronizeWithNoReadersReturnsImmediately) {
  EpochDomain<TypeParam> d;
  d.synchronize();
  d.synchronize();
  EXPECT_EQ(d.grace_periods(), 2u);
}

TYPED_TEST(EpochTest, ReadLockUnlockIsCheapAndNonBlocking) {
  EpochDomain<TypeParam> d;
  std::thread reader([&] {
    auto token = d.register_reader();
    for (int i = 0; i < 100000; ++i) {
      auto g = token.read_lock();
    }
  });
  reader.join();
  d.synchronize();  // must not hang on a quiescent ex-reader
  EXPECT_EQ(d.grace_periods(), 1u);
}

TYPED_TEST(EpochTest, SynchronizeWaitsForActiveReader) {
  EpochDomain<TypeParam> d;
  std::atomic<bool> in_section{false};
  std::atomic<bool> release{false};
  std::atomic<bool> synced{false};

  std::thread reader([&] {
    auto token = d.register_reader();
    {
      auto g = token.read_lock();
      in_section.store(true, std::memory_order_release);
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // Still inside: synchronize() must not have returned.
      EXPECT_FALSE(synced.load(std::memory_order_acquire));
    }
    while (!synced.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!in_section.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread writer([&] {
    d.synchronize();
    synced.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(synced.load(std::memory_order_acquire));
  release.store(true, std::memory_order_release);
  writer.join();
  reader.join();
  EXPECT_TRUE(synced.load());
}

TYPED_TEST(EpochTest, SectionsStartedAfterAdvanceDoNotBlockTheWriter) {
  // A reader hammering short sections must not livelock synchronize():
  // sections that begin after the epoch advance are exempt.
  EpochDomain<TypeParam> d;
  std::atomic<bool> stop{false};
  std::atomic<bool> started{false};
  std::thread reader([&] {
    auto token = d.register_reader();
    started.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = token.read_lock();
    }
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < 20; ++i) d.synchronize();
  EXPECT_EQ(d.grace_periods(), 20u);
  stop.store(true, std::memory_order_release);
  reader.join();
}

TYPED_TEST(EpochTest, RetireRunsDeleterAfterGracePeriodExactlyOnce) {
  EpochDomain<TypeParam> d;
  static std::atomic<int> deletions{0};
  deletions.store(0);
  auto* obj = new int(7);
  d.retire(static_cast<void*>(obj), [](void* p) {
    delete static_cast<int*>(p);
    deletions.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(d.retired_pending(), 1u);
  EXPECT_EQ(deletions.load(), 0);  // deferred
  d.synchronize();
  EXPECT_EQ(deletions.load(), 1);
  EXPECT_EQ(d.retired_pending(), 0u);
  d.synchronize();
  EXPECT_EQ(deletions.load(), 1);  // never twice
}

TYPED_TEST(EpochTest, GraceProtectsAgainstUseAfterReclaim) {
  // The RCU pattern: readers dereference a published pointer inside a
  // read section; the writer swaps the pointer, retires the old object
  // and synchronizes before poisoning it. Readers must never observe a
  // poisoned object inside a section.
  struct Node {
    std::atomic<bool> poisoned{false};
    int payload = 0;
  };
  EpochDomain<TypeParam> d;
  std::atomic<Node*> published{new Node{}};
  std::atomic<bool> stop{false};
  std::atomic<bool> started{false};
  std::atomic<bool> saw_poison{false};

  std::thread reader([&] {
    auto token = d.register_reader();
    started.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = token.read_lock();
      Node* n = published.load(std::memory_order_acquire);
      if (n->poisoned.load(std::memory_order_relaxed)) {
        saw_poison.store(true, std::memory_order_relaxed);
      }
      // Touch the payload like real read-side code would.
      volatile int sink = n->payload;
      (void)sink;
    }
  });
  while (!started.load(std::memory_order_acquire)) std::this_thread::yield();

  std::vector<Node*> graveyard;
  for (int round = 0; round < 50; ++round) {
    Node* fresh = new Node{};
    fresh->payload = round;
    Node* old = published.exchange(fresh, std::memory_order_acq_rel);
    d.synchronize();              // grace period: no reader still holds old
    old->poisoned.store(true, std::memory_order_relaxed);
    graveyard.push_back(old);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(saw_poison.load());
  for (Node* n : graveyard) delete n;
  delete published.load();
}

TYPED_TEST(EpochTest, ManyReadersManyGracePeriods) {
  EpochDomain<TypeParam> d;
  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto token = d.register_reader();
      ready.fetch_add(1, std::memory_order_acq_rel);
      while (!stop.load(std::memory_order_relaxed)) {
        auto g = token.read_lock();
      }
    });
  }
  while (ready.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }
  for (int i = 0; i < 10; ++i) d.synchronize();
  EXPECT_EQ(d.grace_periods(), 10u);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

TYPED_TEST(EpochTest, BatchedWaveWaitsForEveryActiveReader) {
  // synchronize() fans out over all registered readers with one batched
  // serialize_many wave; it must still wait for each of N concurrently
  // active sections individually.
  EpochDomain<TypeParam> d;
  constexpr int kReaders = 6;
  std::atomic<int> in_section{0};
  std::atomic<bool> release{false};
  std::atomic<bool> synced{false};

  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto token = d.register_reader();
      {
        auto g = token.read_lock();
        in_section.fetch_add(1, std::memory_order_acq_rel);
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        // Still inside: the grace period must not have ended.
        EXPECT_FALSE(synced.load(std::memory_order_acquire));
      }
      while (!synced.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  while (in_section.load(std::memory_order_acquire) < kReaders) {
    std::this_thread::yield();
  }

  std::thread writer([&] {
    d.synchronize();
    synced.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(synced.load(std::memory_order_acquire));
  release.store(true, std::memory_order_release);
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_TRUE(synced.load());
  EXPECT_EQ(d.grace_periods(), 1u);
}

}  // namespace
}  // namespace lbmf
