#include <gtest/gtest.h>

#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"
#include "lbmf/util/rng.hpp"

namespace lbmf::sim {
namespace {

SimConfig small_cfg() {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

// ----------------------------------------------------------- basic execution

TEST(SimMachine, RegisterOpsAndHalt) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("regs");
  b.mov(0, 5).add(0, 3).mov(1, 100).halt();
  m.load_program(0, b.build());
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 8);
  EXPECT_EQ(m.cpu(0).regs[1], 100);
  EXPECT_TRUE(m.finished());
}

TEST(SimMachine, StoreGoesToBufferThenMemory) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("st");
  b.store(3, 77).halt();
  m.load_program(0, b.build());
  m.step(0, Action::Execute);  // store commits into SB
  EXPECT_EQ(m.cpu(0).sb.size(), 1u);
  EXPECT_EQ(m.memory(3), 0);  // not yet globally visible
  m.step(0, Action::Drain);
  EXPECT_TRUE(m.cpu(0).sb.empty());
  // Completed into the cache in M (dirty); memory updates on writeback.
  EXPECT_EQ(m.line_state(0, 3), Mesi::Modified);
}

TEST(SimMachine, StoreBufferForwardingSeesOwnStore) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("fwd");
  b.store(3, 55).load(0, 3).halt();
  m.load_program(0, b.build());
  m.step(0, Action::Execute);  // store (stays in SB)
  m.step(0, Action::Execute);  // load — must forward from SB
  EXPECT_EQ(m.cpu(0).regs[0], 55);
}

TEST(SimMachine, LoadMissFillsExclusiveWhenUnshared) {
  Machine m(small_cfg());
  ProgramBuilder b("ld");
  b.load(0, 9).halt();
  m.load_program(0, b.build());
  ProgramBuilder idle("idle");
  idle.halt();
  m.load_program(1, idle.build());
  m.set_memory(9, 123);
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 123);
  EXPECT_EQ(m.line_state(0, 9), Mesi::Exclusive);
}

TEST(SimMachine, SecondReaderDowngradesToShared) {
  Machine m(small_cfg());
  ProgramBuilder b0("r0");
  b0.load(0, 9).halt();
  ProgramBuilder b1("r1");
  b1.load(0, 9).halt();
  m.load_program(0, b0.build());
  m.load_program(1, b1.build());
  m.set_memory(9, 5);
  m.step(0, Action::Execute);  // cpu0 reads -> E
  EXPECT_EQ(m.line_state(0, 9), Mesi::Exclusive);
  m.step(1, Action::Execute);  // cpu1 reads -> both S
  EXPECT_EQ(m.line_state(0, 9), Mesi::Shared);
  EXPECT_EQ(m.line_state(1, 9), Mesi::Shared);
  EXPECT_EQ(m.cpu(1).regs[0], 5);
}

TEST(SimMachine, WriterInvalidatesReaderAndReaderSeesNewValue) {
  Machine m(small_cfg());
  ProgramBuilder w("w");
  w.store(4, 1).mfence().halt();
  ProgramBuilder r("r");
  r.load(0, 4).load(1, 4).halt();
  m.load_program(0, w.build());
  m.load_program(1, r.build());
  m.step(1, Action::Execute);  // reader pulls line (value 0) into E
  EXPECT_EQ(m.cpu(1).regs[0], 0);
  m.step(0, Action::Execute);  // writer commits store
  m.step(0, Action::Execute);  // mfence completes it -> invalidates reader
  EXPECT_EQ(m.line_state(1, 4), Mesi::Invalid);
  EXPECT_EQ(m.line_state(0, 4), Mesi::Modified);
  m.step(1, Action::Execute);  // reader re-fetches (2nd load): sees 1, both S
  EXPECT_EQ(m.cpu(1).regs[1], 1);
  EXPECT_EQ(m.line_state(0, 4), Mesi::Shared);
  EXPECT_EQ(m.line_state(1, 4), Mesi::Shared);
  EXPECT_EQ(m.memory(4), 1);  // writeback happened on downgrade
}

TEST(SimMachine, MfenceDrainsWholeBuffer) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("fence");
  b.store(1, 1).store(2, 2).store(3, 3).mfence().halt();
  m.load_program(0, b.build());
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).counters.mfences, 1u);
  EXPECT_EQ(m.cpu(0).counters.sb_drains, 3u);
  EXPECT_EQ(m.line_state(0, 1), Mesi::Modified);
  EXPECT_EQ(m.line_state(0, 2), Mesi::Modified);
  EXPECT_EQ(m.line_state(0, 3), Mesi::Modified);
}

TEST(SimMachine, FullStoreBufferStallsAndSelfDrains) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  cfg.sb_capacity = 2;
  Machine m(cfg);
  ProgramBuilder b("full");
  b.store(1, 1).store(2, 2).store(3, 3).halt();  // 3rd store must stall
  m.load_program(0, b.build());
  m.step(0, Action::Execute);
  m.step(0, Action::Execute);
  EXPECT_TRUE(m.cpu(0).sb.full());
  m.step(0, Action::Execute);  // forced drain of oldest, then push
  EXPECT_EQ(m.cpu(0).sb.size(), 2u);
  EXPECT_EQ(m.line_state(0, 1), Mesi::Modified);
}

TEST(SimMachine, BranchesAndLoops) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("loop");
  b.mov(0, 5).mov(1, 0);
  b.label("top");
  b.add(1, 2).add(0, -1).branch_ne(0, 0, "top").halt();
  m.load_program(0, b.build());
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[1], 10);
}

TEST(SimMachine, InterruptFlushesStoreBufferAndCharges) {
  SimConfig cfg = small_cfg();
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b("intr");
  b.store(1, 9).halt();
  m.load_program(0, b.build());
  m.step(0, Action::Execute);
  const auto before = m.cpu(0).counters.cycles;
  m.deliver_interrupt(0);
  EXPECT_TRUE(m.cpu(0).sb.empty());
  EXPECT_GE(m.cpu(0).counters.cycles - before, cfg.cost_interrupt);
}

// -------------------------------------------------------------- TSO litmus

TEST(SimMachine, MessagePassingNeverReordersOnTso) {
  // Run many random schedules; r0==1 && r1==0 must never appear.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Machine m = make_message_passing_litmus(small_cfg());
    m.run_random(seed);
    const Word flag = m.cpu(1).regs[reg::kObs0];
    const Word data = m.cpu(1).regs[reg::kObs1];
    ASSERT_FALSE(flag == 1 && data != 42)
        << "MP violation at seed " << seed << ": flag=" << flag
        << " data=" << data;
  }
}

TEST(SimMachine, CoherenceInvariantsHoldAcrossRandomSchedules) {
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Machine m = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                    small_cfg());
    // Step manually so we can check invariants mid-flight.
    Xoshiro256 rng(seed);
    while (!m.finished()) {
      Choice options[8];
      std::size_t n = 0;
      for (std::size_t i = 0; i < 2; ++i) {
        if (m.action_enabled(i, Action::Execute)) {
          options[n++] = {static_cast<std::uint8_t>(i), Action::Execute};
        }
        if (m.action_enabled(i, Action::Drain)) {
          options[n++] = {static_cast<std::uint8_t>(i), Action::Drain};
        }
      }
      ASSERT_GT(n, 0u);
      const Choice c = options[rng.next_below(n)];
      m.step(c.cpu, c.action);
      const auto violation = m.check_coherence();
      ASSERT_FALSE(violation.has_value()) << *violation << " seed=" << seed;
      ASSERT_LE(m.cpus_in_cs(), 1u) << "seed=" << seed;
    }
  }
}

TEST(SimMachine, CanonicalStateDistinguishesProgress) {
  Machine a = make_message_passing_litmus(small_cfg());
  Machine b = make_message_passing_litmus(small_cfg());
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
  a.step(0, Action::Execute);
  EXPECT_NE(a.canonical_state(), b.canonical_state());
  b.step(0, Action::Execute);
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
}

TEST(SimMachine, CyclesAreExcludedFromCanonicalState) {
  // Two different schedules reaching the same architectural state must
  // produce equal canonical encodings even though cycle counts differ.
  Machine a = make_message_passing_litmus(small_cfg());
  Machine b = make_message_passing_litmus(small_cfg());
  // a: writer store, drain. b: writer store, reader-independent path, drain.
  a.step(0, Action::Execute);
  a.step(0, Action::Drain);
  b.step(0, Action::Execute);
  b.deliver_interrupt(0);  // drains via a costlier route
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
  EXPECT_NE(a.cpu(0).counters.cycles, b.cpu(0).counters.cycles);
}

}  // namespace
}  // namespace lbmf::sim
