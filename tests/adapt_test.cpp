// Unit and integration tests for lbmf::adapt — the decayed-window
// estimator, the PolicyTable frontier lookup, the selector's hysteresis,
// and the AdaptiveFence policy's quiescent-point switching (including a
// threaded Dekker mutual-exclusion check while a controller flips the
// regime under load).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "lbmf/adapt/adapt.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf::adapt {
namespace {

// --------------------------------------------------------- DecayedWindow

TEST(DecayedWindow, EstimateIsBiasCorrectedEwma) {
  DecayedWindow w(0.5);
  EXPECT_DOUBLE_EQ(w.estimate(), 0.0);
  w.add(10.0);
  // Bias correction: a single sample IS the estimate, not alpha * sample.
  EXPECT_DOUBLE_EQ(w.estimate(), 10.0);
  w.add(20.0);
  // (0.5*20 + 0.25*10) / (0.5 + 0.25)
  EXPECT_NEAR(w.estimate(), 50.0 / 3.0, 1e-12);
  EXPECT_EQ(w.samples(), 2u);
}

TEST(DecayedWindow, ConstantStreamConvergesToTheConstant) {
  DecayedWindow w(0.2);
  for (int i = 0; i < 100; ++i) w.add(42.0);
  EXPECT_NEAR(w.estimate(), 42.0, 1e-9);
}

TEST(DecayedWindow, SingleBurstMovesTheEstimateByAtMostAlpha) {
  DecayedWindow w(0.1);
  for (int i = 0; i < 200; ++i) w.add(100.0);
  w.add(10'000.0);
  // One outlier window shifts the (near-converged) estimate by ~alpha of
  // the gap, not to the outlier.
  EXPECT_LT(w.estimate(), 100.0 + 0.11 * (10'000.0 - 100.0));
  EXPECT_GT(w.estimate(), 100.0);
}

TEST(DecayedWindow, ResetForgetsEverything) {
  DecayedWindow w(0.3);
  w.add(5.0);
  w.reset();
  EXPECT_DOUBLE_EQ(w.estimate(), 0.0);
  EXPECT_EQ(w.samples(), 0u);
  w.add(7.0);
  EXPECT_DOUBLE_EQ(w.estimate(), 7.0);
}

// ------------------------------------------------------- WorkloadMonitor

TEST(WorkloadMonitor, DifferencesCumulativeCounters) {
  MonitorConfig cfg;
  cfg.rate_alpha = 1.0;  // estimate == newest window, for crisp assertions
  WorkloadMonitor m(cfg);
  m.sample(1'000, 10);
  EXPECT_DOUBLE_EQ(m.pops_per_window(), 1'000.0);
  EXPECT_DOUBLE_EQ(m.steals_per_window(), 10.0);
  m.sample(1'500, 10);
  EXPECT_DOUBLE_EQ(m.pops_per_window(), 500.0);
  EXPECT_DOUBLE_EQ(m.steals_per_window(), 0.0);
  EXPECT_EQ(m.windows(), 2u);
}

TEST(WorkloadMonitor, FreqRatioTracksThePopStealMix) {
  MonitorConfig cfg;
  cfg.rate_alpha = 1.0;
  WorkloadMonitor pop_heavy(cfg);
  pop_heavy.sample(10'000, 10);
  EXPECT_NEAR(pop_heavy.freq_ratio(), 1'000.0, 1.0);

  WorkloadMonitor steal_heavy(cfg);
  steal_heavy.sample(10, 10'000);
  EXPECT_NEAR(steal_heavy.freq_ratio(), 0.001, 0.001);

  // An idle deque (no events at all) sits at the neutral ratio 1.
  WorkloadMonitor idle(cfg);
  idle.sample(0, 0);
  EXPECT_DOUBLE_EQ(idle.freq_ratio(), 1.0);
}

TEST(WorkloadMonitor, CounterResetRebaselinesInsteadOfGoingNegative) {
  MonitorConfig cfg;
  cfg.rate_alpha = 1.0;
  WorkloadMonitor m(cfg);
  m.sample(5'000, 100);
  // reset_stats() ran concurrently: totals went backwards. The regressed
  // window is unmeasurable, so it must read as *empty* — treating the new
  // total as a delta would report a phantom burst that never happened —
  // and the next window must difference from the new baseline.
  m.sample(200, 4);
  EXPECT_DOUBLE_EQ(m.pops_per_window(), 0.0);
  EXPECT_DOUBLE_EQ(m.steals_per_window(), 0.0);
  m.sample(350, 10);
  EXPECT_DOUBLE_EQ(m.pops_per_window(), 150.0);
  EXPECT_DOUBLE_EQ(m.steals_per_window(), 6.0);
}

TEST(WorkloadMonitor, ResetUnderSamplingDoesNotSpikeTheEwma) {
  MonitorConfig cfg;
  cfg.rate_alpha = 0.5;  // real EWMA: a phantom delta would linger
  WorkloadMonitor m(cfg);
  m.sample(1'000, 10);
  m.sample(2'000, 20);
  const double settled = m.pops_per_window();
  EXPECT_NEAR(settled, 1'000.0, 1e-9);
  // reset_stats() lands between samples and the counters restart low. The
  // regressed window contributes 0, so the estimate decays *toward* zero;
  // the old behavior fed the post-reset total in as a delta, spiking the
  // EWMA with events that were already counted before the reset.
  m.sample(600, 5);
  EXPECT_LT(m.pops_per_window(), settled);
  EXPECT_GE(m.pops_per_window(), 0.0);
  // The stream recovers: the next window differences cleanly from the
  // post-reset baseline and pulls the estimate back up.
  const double dipped = m.pops_per_window();
  m.sample(1'600, 15);
  EXPECT_GT(m.pops_per_window(), dipped);
}

TEST(WorkloadMonitor, RoundtripDefaultsUntilMeasured) {
  MonitorConfig cfg;
  cfg.default_roundtrip_cycles = 12'345.0;
  cfg.roundtrip_alpha = 1.0;
  WorkloadMonitor m(cfg);
  m.sample(10, 1);  // no measurement this window
  EXPECT_DOUBLE_EQ(m.roundtrip_cycles(), 12'345.0);
  m.sample(20, 2, 800.0);
  EXPECT_DOUBLE_EQ(m.roundtrip_cycles(), 800.0);
  m.sample(30, 3);  // <= 0 leaves the estimate untouched
  EXPECT_DOUBLE_EQ(m.roundtrip_cycles(), 800.0);
}

// ----------------------------------------------------------- PolicyTable

TEST(PolicyTable, BuiltinFrontierMatchesTheShippedSweep) {
  const PolicyTable t = PolicyTable::builtin_default();
  // Grid cells straight from BENCH_sweep.json (E17): near-free trips put
  // even a 1:1 workload on double-l-mfence; at the paper's 150-cycle
  // constant a 1:1 workload is symmetric and a 10:1 one asymmetric.
  EXPECT_EQ(t.lookup(1, 10), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(t.lookup(1, 150), PolicyMode::kSymmetric);
  EXPECT_EQ(t.lookup(10, 150), PolicyMode::kAsymmetric);
  EXPECT_EQ(t.lookup(1, 50), PolicyMode::kAsymmetric);
  // Signal-prototype territory (~10^4-cycle trips): only clearly pop-heavy
  // workloads justify dropping the victim's fence.
  EXPECT_EQ(t.lookup(100, 15'000), PolicyMode::kSymmetric);
  EXPECT_EQ(t.lookup(1'000, 15'000), PolicyMode::kAsymmetric);
}

TEST(PolicyTable, LookupSnapsLog10NearestAndClamps) {
  const PolicyTable t = PolicyTable::builtin_default();
  // log10(5)=0.7 is nearer to 10 than to 1; log10(3)=0.48 nearer to 1.
  EXPECT_EQ(t.lookup(5, 150), t.lookup(10, 150));
  EXPECT_EQ(t.lookup(3, 150), t.lookup(1, 150));
  // Outside the grid: clamp to the nearest edge on both axes.
  EXPECT_EQ(t.lookup(1e9, 150), t.lookup(100'000, 150));
  EXPECT_EQ(t.lookup(1'000, 1e7), t.lookup(1'000, 15'000));
  EXPECT_EQ(t.lookup(0.0, 150), t.lookup(1, 150));   // non-positive input
  EXPECT_EQ(t.lookup(1'000, -5.0), t.lookup(1'000, 10));
}

TEST(PolicyTable, JsonRoundTripsTheCompactForm) {
  const PolicyTable t = PolicyTable::builtin_default();
  const std::string j = t.to_json();
  const std::optional<PolicyTable> back = PolicyTable::from_json(j);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(PolicyTable, FromJsonParsesAFullSweepReport) {
  // A BENCH_sweep.json-shaped report (2 freqs x 1 roundtrip) whose optima
  // collapse to {symmetric, asymmetric}.
  const std::string sweep =
      "{\"bench\":\"sweep\",\"workload\":\"cli\","
      "\"victim_freqs\":[1,1000],\"roundtrips\":[150],\"points\":["
      "{\"freq\":1,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{mfence, none, mfence, none}\",\"cost\":200,"
      "\"recheck_safe\":true},"
      "{\"freq\":1000,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{l-mfence, none, mfence, none}\",\"cost\":3260,"
      "\"recheck_safe\":true}],\"crossovers\":[],"
      "\"explorer_runs\":2,\"cache_hits\":0,\"states_total\":100}";
  const std::optional<PolicyTable> t = PolicyTable::from_json(sweep);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ratios(), (std::vector<double>{1, 1000}));
  EXPECT_EQ(t->roundtrips(), (std::vector<double>{150}));
  EXPECT_EQ(t->lookup(1, 150), PolicyMode::kSymmetric);
  EXPECT_EQ(t->lookup(1'000, 150), PolicyMode::kAsymmetric);
}

TEST(PolicyTable, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(PolicyTable::from_json("").has_value());
  EXPECT_FALSE(PolicyTable::from_json("{\"ratios\":[1,10]}").has_value());
  // Mode list shorter than the grid.
  EXPECT_FALSE(PolicyTable::from_json(
                   "{\"ratios\":[1,10],\"roundtrips\":[150],"
                   "\"modes\":[\"symmetric\"]}")
                   .has_value());
  // Unknown mode spelling.
  EXPECT_FALSE(PolicyTable::from_json(
                   "{\"ratios\":[1],\"roundtrips\":[150],"
                   "\"modes\":[\"sorta-fenced\"]}")
                   .has_value());
}

TEST(PolicyTable, ModeFromOptimumReadsTheAnnounceSites) {
  EXPECT_EQ(mode_from_optimum("{mfence, none, mfence, none}"),
            PolicyMode::kSymmetric);
  EXPECT_EQ(mode_from_optimum("{l-mfence, none, mfence, none}"),
            PolicyMode::kAsymmetric);
  EXPECT_EQ(mode_from_optimum("{l-mfence, none, l-mfence, none}"),
            PolicyMode::kDoubleLmfence);
  // Unparseable input degrades to the always-safe regime.
  EXPECT_EQ(mode_from_optimum("not an assignment"), PolicyMode::kSymmetric);
}

TEST(PolicyTable, BuiltinPlanesEncodeBackendCapabilities) {
  const PolicyTable t = PolicyTable::builtin_default();
  ASSERT_EQ(t.planes().size(), 3u);
  // The signal backend cannot invert roles: its plane replaces the
  // double-l-mfence corner with the asymmetric mix and must never propose
  // double anywhere (an unrealizable proposal would only bump the
  // degraded counter at every quiescent point).
  EXPECT_EQ(t.lookup(1, 10, "signal"), PolicyMode::kAsymmetric);
  for (const BackendPlane& p : t.planes()) {
    if (p.backend != "signal") continue;
    for (PolicyMode m : p.modes) EXPECT_NE(m, PolicyMode::kDoubleLmfence);
  }
  // Role-inverting backends keep the corner and extend double-l-mfence
  // through the LE/ST-scale rows of the symmetric-traffic column.
  EXPECT_EQ(t.lookup(1, 10, "membarrier-pair"), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(t.lookup(1, 150, "membarrier-pair"), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(t.lookup(1, 150, "sim-lest"), PolicyMode::kDoubleLmfence);
  // Past the LE/ST range, and off the symmetric column, the base verdicts
  // stand unchanged.
  EXPECT_EQ(t.lookup(1, 15'000, "sim-lest"), t.lookup(1, 15'000));
  EXPECT_EQ(t.lookup(1'000, 150, "sim-lest"), t.lookup(1'000, 150));
}

TEST(PolicyTable, LookupFallsBackToBaseGridWithoutAMatchingPlane) {
  const PolicyTable t = PolicyTable::builtin_default();
  EXPECT_EQ(t.lookup(1, 10, ""), t.lookup(1, 10));
  EXPECT_EQ(t.lookup(1, 10, "carrier-pigeon"), t.lookup(1, 10));
  // A planeless table ignores the backend argument entirely.
  const PolicyTable bare({1}, {150}, {PolicyMode::kAsymmetric});
  EXPECT_EQ(bare.lookup(1, 150, "signal"), PolicyMode::kAsymmetric);
}

TEST(PolicyTable, AddPlaneReplacesByNameAndRoundTripsJson) {
  PolicyTable t({1, 1'000}, {150},
                {PolicyMode::kSymmetric, PolicyMode::kAsymmetric});
  t.add_plane(
      {"sim-lest", {PolicyMode::kDoubleLmfence, PolicyMode::kAsymmetric}});
  EXPECT_EQ(t.lookup(1, 150, "sim-lest"), PolicyMode::kDoubleLmfence);
  // Re-adding under the same name replaces in place, no duplicate plane.
  t.add_plane({"sim-lest", {PolicyMode::kSymmetric, PolicyMode::kSymmetric}});
  ASSERT_EQ(t.planes().size(), 1u);
  EXPECT_EQ(t.lookup(1, 150, "sim-lest"), PolicyMode::kSymmetric);
  const std::optional<PolicyTable> back = PolicyTable::from_json(t.to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(PolicyTable, FromJsonParsesTheSweepBackendPlanes) {
  // The FromJsonParsesAFullSweepReport grid plus the backend_planes
  // section bench_sweep now appends: a constrained signal plane and a
  // role-inverting plane whose cheap corner is double-l-mfence.
  const std::string sweep =
      "{\"bench\":\"sweep\",\"workload\":\"cli\","
      "\"victim_freqs\":[1,1000],\"roundtrips\":[150],\"points\":["
      "{\"freq\":1,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{mfence, none, mfence, none}\",\"cost\":200,"
      "\"recheck_safe\":true},"
      "{\"freq\":1000,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{l-mfence, none, mfence, none}\",\"cost\":3260,"
      "\"recheck_safe\":true}],\"crossovers\":[],"
      "\"explorer_runs\":2,\"cache_hits\":0,\"states_total\":100,"
      "\"backend_planes\":["
      "{\"backend\":\"signal\",\"inverts_roles\":false,\"points\":["
      "{\"freq\":1,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{mfence, none, mfence, none}\",\"cost\":200,"
      "\"recheck_safe\":true},"
      "{\"freq\":1000,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{l-mfence, none, mfence, none}\",\"cost\":3260,"
      "\"recheck_safe\":true}]},"
      "{\"backend\":\"sim-lest\",\"inverts_roles\":true,\"points\":["
      "{\"freq\":1,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{l-mfence, none, l-mfence, none}\",\"cost\":120,"
      "\"recheck_safe\":true},"
      "{\"freq\":1000,\"roundtrip\":150,\"status\":\"sat\","
      "\"optimum\":\"{l-mfence, none, mfence, none}\",\"cost\":3260,"
      "\"recheck_safe\":true}]}]}";
  const std::optional<PolicyTable> t = PolicyTable::from_json(sweep);
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->planes().size(), 2u);
  EXPECT_EQ(t->lookup(1, 150, "signal"), PolicyMode::kSymmetric);
  EXPECT_EQ(t->lookup(1, 150, "sim-lest"), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(t->lookup(1'000, 150, "sim-lest"), PolicyMode::kAsymmetric);
  // The base grid is untouched by the planes.
  EXPECT_EQ(t->lookup(1, 150), PolicyMode::kSymmetric);
  // And the planes survive the compact round trip too.
  const std::optional<PolicyTable> back = PolicyTable::from_json(t->to_json());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, *t);
}

// -------------------------------------------------------- PolicySelector

SelectorConfig crisp_selector(int confirm) {
  SelectorConfig cfg;
  cfg.monitor.rate_alpha = 1.0;  // estimate == newest window
  cfg.confirm_windows = confirm;
  cfg.fixed_roundtrip_cycles = 10'000.0;
  return cfg;
}

TEST(PolicySelector, AdoptsAfterConfirmWindowsConsistentProposals) {
  PolicySelector sel(PolicyTable::builtin_default(), crisp_selector(3));
  EXPECT_EQ(sel.current(), PolicyMode::kSymmetric);
  // Pop-heavy windows (ratio ~2000 at a 10^4-cycle trip -> asymmetric):
  // the proposal must survive 3 consecutive windows before adoption.
  std::uint64_t pops = 0;
  EXPECT_EQ(sel.update(pops += 2'000, 1), PolicyMode::kSymmetric);
  EXPECT_EQ(sel.update(pops += 2'000, 1), PolicyMode::kSymmetric);
  EXPECT_EQ(sel.update(pops += 2'000, 1), PolicyMode::kAsymmetric);
  EXPECT_EQ(sel.switches(), 1u);
  EXPECT_EQ(sel.windows(), 3u);
}

TEST(PolicySelector, BoundaryStraddlingInputNeverOscillates) {
  PolicySelector sel(PolicyTable::builtin_default(), crisp_selector(3));
  // Alternate pop-heavy and steal-heavy windows: the proposal flips every
  // window, so no streak ever reaches 3 and the mode never moves.
  std::uint64_t pops = 0, steals = 0;
  for (int i = 0; i < 200; ++i) {
    if (i % 2 == 0) {
      pops += 2'000;
      steals += 1;
    } else {
      pops += 1;
      steals += 2'000;
    }
    sel.update(pops, steals);
  }
  EXPECT_EQ(sel.current(), PolicyMode::kSymmetric);
  EXPECT_EQ(sel.switches(), 0u);
}

TEST(PolicySelector, SwitchesBackWhenTheWorkloadFlips) {
  PolicySelector sel(PolicyTable::builtin_default(), crisp_selector(2));
  std::uint64_t pops = 0, steals = 0;
  for (int i = 0; i < 5; ++i) sel.update(pops += 2'000, steals += 1);
  EXPECT_EQ(sel.current(), PolicyMode::kAsymmetric);
  for (int i = 0; i < 5; ++i) sel.update(pops += 1, steals += 2'000);
  EXPECT_EQ(sel.current(), PolicyMode::kSymmetric);
  EXPECT_EQ(sel.switches(), 2u);
}

TEST(PolicySelector, BackendPlaneConstrainsProposals) {
  // Same workload point (1:1 mix at a near-free round trip), two selectors:
  // on the base grid the cell is double-l-mfence; a selector bound to the
  // signal plane proposes the clamped asymmetric mix instead, so its
  // bookings are always realizable.
  SelectorConfig cfg = crisp_selector(1);
  cfg.fixed_roundtrip_cycles = 10.0;
  PolicySelector base_sel(PolicyTable::builtin_default(), cfg);
  std::uint64_t pops = 0, steals = 0;
  base_sel.update(pops += 100, steals += 100);
  EXPECT_EQ(base_sel.current(), PolicyMode::kDoubleLmfence);

  cfg.backend = "signal";
  PolicySelector sig_sel(PolicyTable::builtin_default(), cfg);
  pops = steals = 0;
  sig_sel.update(pops += 100, steals += 100);
  EXPECT_EQ(sig_sel.current(), PolicyMode::kAsymmetric);
}

// --------------------------------------------------------- AdaptiveFence
//
// NOTE ordering: ModeSwitchLifecycle must observe a measured round trip of
// exactly 0 before any asymmetric serialize() in this binary, so the
// AdaptiveFence tests that trigger signal round trips come after it.

TEST(AdaptiveFence, ModeSwitchLifecycle) {
  AdaptiveFence::Handle h = AdaptiveFence::register_primary();
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(AdaptiveFence::current_mode(h), PolicyMode::kSymmetric);
  EXPECT_EQ(AdaptiveFence::switch_count(h), 0u);

  // Symmetric mode: serialize() from a peer is a no-op success — the
  // primary fences for itself, so no signal (and no measured round trip)
  // may result.
  std::thread peer([h] { EXPECT_TRUE(AdaptiveFence::serialize(h)); });
  peer.join();
  EXPECT_DOUBLE_EQ(SerializerRegistry::measured_roundtrip_cycles(), 0.0);

  // A request is adopted only at a quiescent point.
  EXPECT_TRUE(AdaptiveFence::request_mode(h, PolicyMode::kAsymmetric));
  EXPECT_EQ(AdaptiveFence::current_mode(h), PolicyMode::kSymmetric);
  EXPECT_EQ(AdaptiveFence::requested_mode(h), PolicyMode::kAsymmetric);
  EXPECT_TRUE(AdaptiveFence::quiescent_point(h));
  EXPECT_EQ(AdaptiveFence::current_mode(h), PolicyMode::kAsymmetric);
  EXPECT_EQ(AdaptiveFence::switch_count(h), 1u);
  // Idempotent once adopted.
  EXPECT_FALSE(AdaptiveFence::quiescent_point(h));
  EXPECT_EQ(AdaptiveFence::switch_count(h), 1u);

  AdaptiveFence::unregister_primary(h);
  EXPECT_FALSE(h.valid());
}

TEST(AdaptiveFence, AsymmetricModeSerializesRemotely) {
  AdaptiveFence::Handle h = AdaptiveFence::register_primary();
  ASSERT_TRUE(h.valid());
  AdaptiveFence::request_mode(h, PolicyMode::kAsymmetric);
  ASSERT_TRUE(AdaptiveFence::quiescent_point(h));

  std::thread peer([h] { EXPECT_TRUE(AdaptiveFence::serialize(h)); });
  peer.join();
  // The signal round trip was real: the registry measured it.
  EXPECT_GT(SerializerRegistry::measured_roundtrip_cycles(), 0.0);

  AdaptiveFence::unregister_primary(h);
}

TEST(AdaptiveFence, SerializeManyPartitionsByMode) {
  // Two primaries on helper threads, one symmetric and one asymmetric; a
  // wave over both (plus an invalid handle) must serialize both live ones.
  struct Primary {
    AdaptiveFence::Handle h;
    std::atomic<bool> ready{false};
    std::atomic<bool> done{false};
    std::thread t;
  };
  Primary sym, asym;
  auto body = [](Primary* p, PolicyMode m) {
    p->h = AdaptiveFence::register_primary();
    ASSERT_TRUE(p->h.valid());
    AdaptiveFence::request_mode(p->h, m);
    AdaptiveFence::quiescent_point(p->h);
    p->ready.store(true, std::memory_order_release);
    while (!p->done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    AdaptiveFence::unregister_primary(p->h);
  };
  sym.t = std::thread(body, &sym, PolicyMode::kSymmetric);
  asym.t = std::thread(body, &asym, PolicyMode::kAsymmetric);
  while (!sym.ready.load(std::memory_order_acquire) ||
         !asym.ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  const AdaptiveFence::Handle hs[] = {sym.h, asym.h, AdaptiveFence::Handle{}};
  EXPECT_EQ(AdaptiveFence::serialize_many(hs), 2u);

  sym.done.store(true, std::memory_order_release);
  asym.done.store(true, std::memory_order_release);
  sym.t.join();
  asym.t.join();
}

TEST(AdaptiveFence, SatisfiesBothConcepts) {
  static_assert(FencePolicy<AdaptiveFence>);
  static_assert(AdaptiveFencePolicy<AdaptiveFence>);
  static_assert(!AdaptiveFencePolicy<AsymmetricSignalFence>);
  EXPECT_STREQ(AdaptiveFence::name(), "adaptive");
}

TEST(AdaptiveFence, DoubleBookingDegradesLoudlyOnSignal) {
  AdaptiveFence::Handle h = AdaptiveFence::register_primary();
  ASSERT_TRUE(h.valid());
  EXPECT_EQ(AdaptiveFence::current_backend(h), backend::BackendId::kSignal);
  // The signal backend cannot invert roles: booking double-l-mfence must
  // clamp to the asymmetric mix at the quiescent point — and say so via
  // the degraded counter, not silently.
  EXPECT_TRUE(AdaptiveFence::request_mode(h, PolicyMode::kDoubleLmfence));
  EXPECT_TRUE(AdaptiveFence::quiescent_point(h));
  EXPECT_EQ(AdaptiveFence::booked_mode(h), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(AdaptiveFence::realized_mode(h), PolicyMode::kAsymmetric);
  EXPECT_EQ(AdaptiveFence::current_mode(h), AdaptiveFence::realized_mode(h));
  EXPECT_EQ(AdaptiveFence::switch_count(h), 1u);         // realized: S -> A
  EXPECT_EQ(AdaptiveFence::booked_switch_count(h), 1u);  // booked:   S -> D
  EXPECT_GE(AdaptiveFence::degraded_count(h), 1u);
  AdaptiveFence::unregister_primary(h);
}

TEST(AdaptiveFence, RoleInvertingBackendRealizesDouble) {
  const backend::SerializationBackend& sim =
      backend::serialization_backend(backend::BackendId::kSimLest);
  if (!sim.caps().inverts_roles) {
    GTEST_SKIP() << "sim-lest backend unavailable on this host";
  }
  AdaptiveFence::Handle h = AdaptiveFence::register_primary();
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(AdaptiveFence::request_backend(h, backend::BackendId::kSimLest));
  EXPECT_TRUE(AdaptiveFence::request_mode(h, PolicyMode::kDoubleLmfence));
  EXPECT_TRUE(AdaptiveFence::quiescent_point(h));
  EXPECT_EQ(AdaptiveFence::current_backend(h), backend::BackendId::kSimLest);
  EXPECT_EQ(AdaptiveFence::booked_mode(h), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(AdaptiveFence::realized_mode(h), PolicyMode::kDoubleLmfence);
  EXPECT_EQ(AdaptiveFence::degraded_count(h), 0u);
  // Both sides run light: a peer's announce (compiler-only fence + drain)
  // and the primary's own peer drain both go through the simulated LE/ST
  // path and must succeed.
  std::thread peer([h] {
    AdaptiveFence::secondary_fence(h);
    EXPECT_TRUE(AdaptiveFence::serialize(h));
  });
  peer.join();
  EXPECT_TRUE(AdaptiveFence::serialize_peers(h));
  AdaptiveFence::unregister_primary(h);
}

// Dekker mutual exclusion while the regime flips under load. Each round,
// both threads race one Dekker attempt and then meet at a barrier; the
// primary flips the requested mode every 8 rounds and adopts it at its
// quiescent point (no announce in flight — the contract the scheduler's
// adaptation hook relies on). The secondary runs the unconditional mfence
// and serializes the primary per the mode it observes, which may be one
// switch stale. Any mutual-exclusion violation means a switch dropped the
// Def. 2 serialization point. Round barriers are yield-spins so the test
// degrades to cooperative handoff on a single-CPU host instead of
// starving the serialize-paying secondary.
TEST(AdaptiveFenceThreaded, SwitchUnderLoadPreservesMutualExclusion) {
  constexpr std::uint64_t kRounds = 4000;
  std::atomic<int> pflag{0};
  std::atomic<int> sflag{0};
  std::atomic<int> in_cs{0};
  std::atomic<std::uint64_t> p_entries{0};
  std::atomic<std::uint64_t> s_entries{0};
  std::atomic<int> violations{0};
  std::atomic<std::uint64_t> p_round{0};
  std::atomic<std::uint64_t> s_round{0};
  std::atomic<bool> handle_ready{false};
  std::atomic<std::uint64_t> switches_seen{0};
  AdaptiveFence::Handle h;

  const auto enter_cs = [&](std::atomic<std::uint64_t>& entries) {
    if (in_cs.exchange(1, std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    for (int spin = 0; spin < 32; ++spin) {
      lbmf::compiler_fence();  // keep the dwell loop from being elided
    }
    in_cs.store(0, std::memory_order_relaxed);
    entries.fetch_add(1, std::memory_order_relaxed);
  };
  const auto await = [](std::atomic<std::uint64_t>& peer, std::uint64_t r) {
    while (peer.load(std::memory_order_acquire) < r) {
      std::this_thread::yield();
    }
  };

  std::thread primary([&] {
    h = AdaptiveFence::register_primary();
    ASSERT_TRUE(h.valid());
    handle_ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      pflag.store(1, std::memory_order_relaxed);
      AdaptiveFence::primary_fence();
      if (sflag.load(std::memory_order_relaxed) == 0) {
        enter_cs(p_entries);
      }
      pflag.store(0, std::memory_order_relaxed);
      if (r % 8 == 0) {
        AdaptiveFence::request_mode(h, (r / 8) % 2 == 0
                                           ? PolicyMode::kAsymmetric
                                           : PolicyMode::kSymmetric);
      }
      // Between attempts: no announce in flight — the quiescent point.
      AdaptiveFence::quiescent_point(h);
      p_round.store(r + 1, std::memory_order_release);
      await(s_round, r + 1);
    }
    // The secondary publishes its round only after serialize() returns, so
    // seeing s_round == kRounds means no serialization is still in flight
    // and the handle can be retired (which invalidates it — grab the
    // switch tally first).
    switches_seen.store(AdaptiveFence::switch_count(h),
                        std::memory_order_relaxed);
    AdaptiveFence::unregister_primary(h);
  });

  while (!handle_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread secondary([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      sflag.store(1, std::memory_order_relaxed);
      AdaptiveFence::secondary_fence();
      AdaptiveFence::serialize(h);
      if (pflag.load(std::memory_order_relaxed) == 0) {
        enter_cs(s_entries);
      }
      sflag.store(0, std::memory_order_relaxed);
      s_round.store(r + 1, std::memory_order_release);
      await(p_round, r + 1);
    }
  });

  secondary.join();
  primary.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(p_entries.load(), 0u);
  EXPECT_GT(s_entries.load(), 0u);
  EXPECT_GE(switches_seen.load(), 10u);
}

// ------------------------------------------------- Scheduler integration

// Spawn-recursive fib (mirrors ws_test's ws_fib, monomorphized).
template <typename P>
void ws_fib(long n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  typename ws::Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([n, &a] { ws_fib<P>(n - 1, &a); });
  tg.spawn(t);
  ws_fib<P>(n - 2, &b);
  tg.sync();
  *out = a + b;
}

TEST(SchedulerAdaptation, WorkersSwitchUnderAnAllAsymmetricTable) {
  // Force-feed an all-asymmetric frontier with no hysteresis: every worker
  // must adopt kAsymmetric at its first sampling window and the run must
  // still compute the right answer.
  const std::size_t cells = 6 * 7;
  ws::AdaptationOptions opts;
  opts.table = adapt::PolicyTable(
      {1, 10, 100, 1'000, 10'000, 100'000},
      {10, 50, 150, 500, 1'500, 5'000, 15'000},
      std::vector<PolicyMode>(cells, PolicyMode::kAsymmetric));
  opts.selector.confirm_windows = 1;
  opts.sample_every = 64;

  ws::Scheduler<AdaptiveFence> sched(3);
  sched.enable_adaptation(opts);
  long result = 0;
  sched.run([&] { ws_fib<AdaptiveFence>(20, &result); });
  EXPECT_EQ(result, 6765);  // fib(20)

  const ws::SchedulerStats s = sched.stats();
  EXPECT_GE(s.policy_switches, 1u);
  EXPECT_GT(s.spawns, 0u);
}

TEST(SchedulerAdaptation, StaticPoliciesReportZeroSwitches) {
  ws::Scheduler<SymmetricFence> sched(2);
  long result = 0;
  sched.run([&] { ws_fib<SymmetricFence>(15, &result); });
  EXPECT_EQ(result, 610);
  EXPECT_EQ(sched.stats().policy_switches, 0u);
}

}  // namespace
}  // namespace lbmf::adapt
