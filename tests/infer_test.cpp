#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

#include "lbmf/infer/infer.hpp"

namespace lbmf::infer {
namespace {

using sim::addr::kFlag0;
using sim::addr::kFlag1;

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << "missing " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// Test sources are self-contained so the suite does not depend on example
// files; the example-file tests below additionally pin the shipped .lit
// files to the same answers.
constexpr const char* kHoleyDekker = R"(
cpu 0:
  freq 1000
  ?fence [L1], 1
  load r0, [L2]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  ?fence [L1], 0
  halt
cpu 1:
  freq 1
  ?fence [L2], 1
  load r0, [L1]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  ?fence [L2], 0
  halt
)";

constexpr const char* kHoleySb = R"(
cpu 0:
  ?fence [x], 1
  load r0, [y]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  halt
cpu 1:
  ?fence [y], 1
  load r0, [x]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  halt
)";

// Both CPUs enter the critical section unconditionally: no fence anywhere
// can restore mutual exclusion.
constexpr const char* kHopeless = R"(
cpu 0:
  ?fence [x], 1
  cs_enter
  cs_exit
  halt
cpu 1:
  cs_enter
  cs_exit
  halt
)";

InferProblem parse(const std::string& src) {
  ProblemParse p = problem_from_source(src);
  EXPECT_TRUE(p.ok()) << (p.error ? p.error->message : "");
  return *p.problem;
}

// ------------------------------------------------------------- lattice basics

TEST(InferLattice, StrengthOrdersKinds) {
  EXPECT_LT(strength(FenceKind::kNone), strength(FenceKind::kLmfence));
  EXPECT_LT(strength(FenceKind::kLmfence), strength(FenceKind::kMfence));
}

TEST(InferLattice, WeakerEqualIsPointwise) {
  const Assignment bottom{{FenceKind::kNone, FenceKind::kNone}};
  const Assignment mixed{{FenceKind::kLmfence, FenceKind::kNone}};
  const Assignment top{{FenceKind::kMfence, FenceKind::kMfence}};
  EXPECT_TRUE(weaker_equal(bottom, mixed));
  EXPECT_TRUE(weaker_equal(mixed, top));
  EXPECT_TRUE(weaker_equal(bottom, bottom));
  EXPECT_FALSE(weaker_equal(top, mixed));
  // Incomparable: each stronger somewhere.
  const Assignment other{{FenceKind::kNone, FenceKind::kMfence}};
  EXPECT_FALSE(weaker_equal(mixed, other));
  EXPECT_FALSE(weaker_equal(other, mixed));
}

// ------------------------------------------------------------------- parsing

TEST(InferParse, HolesCarryCpuIndexAddrAndLine) {
  const InferProblem p = parse(kHoleyDekker);
  ASSERT_EQ(p.sites.size(), 4u);
  ASSERT_EQ(p.programs.size(), 2u);
  EXPECT_EQ(p.sites[0].cpu, 0u);
  EXPECT_EQ(p.sites[0].instr_index, 0u);
  EXPECT_EQ(p.sites[0].value, 1);
  EXPECT_EQ(p.sites[1].cpu, 0u);
  EXPECT_EQ(p.sites[1].value, 0);
  EXPECT_EQ(p.sites[2].cpu, 1u);
  EXPECT_EQ(p.sites[3].cpu, 1u);
  // Announce holes sit at the top of each program.
  EXPECT_EQ(p.sites[2].instr_index, 0u);
  // 1-based source lines, increasing.
  EXPECT_GT(p.sites[0].src_line, 0u);
  EXPECT_LT(p.sites[0].src_line, p.sites[1].src_line);
  EXPECT_LT(p.sites[1].src_line, p.sites[2].src_line);
  // The two flags resolve to distinct symbols.
  EXPECT_NE(p.sites[0].addr, p.sites[2].addr);
  EXPECT_EQ(p.location_name(p.sites[0].addr), "L1");
}

TEST(InferParse, FreqDirectiveIsPerCpu) {
  const InferProblem p = parse(kHoleyDekker);
  EXPECT_DOUBLE_EQ(p.cpu_freq(0), 1000.0);
  EXPECT_DOUBLE_EQ(p.cpu_freq(1), 1.0);
  // Out-of-range CPUs default to 1.0 rather than crashing.
  EXPECT_DOUBLE_EQ(p.cpu_freq(7), 1.0);
}

TEST(InferParse, FreqOutsideCpuSectionIsAnError) {
  const ProblemParse p = problem_from_source("freq 10\ncpu 0:\n  halt\n");
  EXPECT_FALSE(p.ok());
}

TEST(InferParse, DuplicateFreqIsAnError) {
  const ProblemParse p =
      problem_from_source("cpu 0:\n  freq 10\n  freq 20\n  halt\n");
  EXPECT_FALSE(p.ok());
}

TEST(InferParse, HoleWithoutLaterUseStillParses) {
  const ProblemParse p =
      problem_from_source("cpu 0:\n  ?fence [x], 1\n  halt\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.problem->sites.size(), 1u);
}

// ------------------------------------------------------------ instantiation

TEST(InferInstantiate, BranchTargetsAreRemappedAcrossInsertions) {
  InferProblem p;
  sim::ProgramBuilder b;
  b.mov(0, 0);                  // 0
  b.branch_eq(0, 1, "end");     // 1 -> old target 4
  b.store(kFlag0, 1);           // 2  (the site)
  b.load(1, kFlag1);            // 3
  b.label("end");
  b.halt();                     // 4
  p.programs.push_back(b.build());
  FenceSite s;
  s.cpu = 0;
  s.instr_index = 2;
  s.addr = kFlag0;
  s.value = 1;
  p.sites.push_back(s);
  p.config.num_cpus = 1;

  {
    const Instantiation none = instantiate(p, Assignment{{FenceKind::kNone}});
    EXPECT_EQ(none.programs[0].code.size(), 5u);
    EXPECT_EQ(none.site_pos[0], 2u);
    EXPECT_EQ(none.programs[0].code[1].target, 4);
  }
  {
    const Instantiation mf = instantiate(p, Assignment{{FenceKind::kMfence}});
    ASSERT_EQ(mf.programs[0].code.size(), 6u);
    EXPECT_EQ(mf.site_pos[0], 2u);
    EXPECT_EQ(mf.programs[0].code[3].op, sim::Op::kMfence);
    EXPECT_EQ(mf.programs[0].code[1].target, 5);  // shifted past the mfence
    EXPECT_EQ(mf.programs[0].code[5].op, sim::Op::kHalt);
  }
  {
    const Instantiation lm = instantiate(p, Assignment{{FenceKind::kLmfence}});
    // mov, beq, SetLink, LE, ST, BranchLinkSet, Mfence, load, halt
    ASSERT_EQ(lm.programs[0].code.size(), 9u);
    EXPECT_EQ(lm.site_pos[0], 4u);
    EXPECT_EQ(lm.programs[0].code[4].op, sim::Op::kStore);
    EXPECT_EQ(lm.programs[0].code[1].target, 8);  // beq over the expansion
    // The expansion's own branch skips only its trailing mfence.
    EXPECT_EQ(lm.programs[0].code[5].op, sim::Op::kBranchLinkSet);
    EXPECT_EQ(lm.programs[0].code[5].target, 7);
    EXPECT_EQ(lm.programs[0].code[8].op, sim::Op::kHalt);
  }
}

TEST(InferInstantiate, LmfenceExpansionMatchesProgramBuilder) {
  InferProblem p;
  sim::ProgramBuilder b;
  b.store(kFlag0, 1).load(0, kFlag1).halt();
  p.programs.push_back(b.build());
  FenceSite s;
  s.cpu = 0;
  s.instr_index = 0;
  s.addr = kFlag0;
  s.value = 1;
  p.sites.push_back(s);

  const Instantiation lm = instantiate(p, Assignment{{FenceKind::kLmfence}});
  sim::ProgramBuilder ref;
  ref.lmfence(kFlag0, 1).load(0, kFlag1).halt();
  const sim::Program want = ref.build();
  ASSERT_EQ(lm.programs[0].code.size(), want.code.size());
  for (std::size_t i = 0; i < want.code.size(); ++i) {
    EXPECT_EQ(sim::to_string(lm.programs[0].code[i]),
              sim::to_string(want.code[i]))
        << "instr " << i;
  }
}

TEST(InferInstantiate, DiscoverSitesFindsStoreLoadPoints) {
  sim::ProgramBuilder b0;
  b0.store(kFlag0, 1).load(0, kFlag1).store(kFlag0, 0).halt();
  sim::ProgramBuilder b1;
  b1.load(0, kFlag0).halt();
  std::vector<sim::Program> progs{b0.build(), b1.build()};
  const std::vector<FenceSite> sites = discover_sites(progs);
  // Only the first store has a later load; the trailing clear does not.
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].cpu, 0u);
  EXPECT_EQ(sites[0].instr_index, 0u);
  EXPECT_EQ(sites[0].addr, kFlag0);
}

// --------------------------------------------------------------------- costs

TEST(InferCost, FrequencyAsymmetryDrivesTheFig3Answer) {
  const InferProblem p = parse(kHoleyDekker);
  const model::CostTable c;
  // Hot primary: l-mfence (3 cycles x 1000) + one rare remote read round
  // trip beats an mfence per entry by ~30x.
  EXPECT_LT(site_cost(p, 0, FenceKind::kLmfence, c),
            site_cost(p, 0, FenceKind::kMfence, c));
  // Rare secondary: guarding its flag would bill every hot-side load the
  // LE/ST round trip; the plain mfence is far cheaper.
  EXPECT_LT(site_cost(p, 2, FenceKind::kMfence, c),
            site_cost(p, 2, FenceKind::kLmfence, c));
  // The bound is sound: never above the cost of any strengthening.
  const Assignment bottom = p.uniform(FenceKind::kNone);
  const Assignment asym{{FenceKind::kLmfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone}};
  EXPECT_LE(assignment_cost_lower_bound(p, bottom, c), assignment_cost(p, asym, c));
}

// -------------------------------------------------------------------- engine

InferResult run_engine(const std::string& src,
                       InferenceEngine::Options o = {}) {
  InferenceEngine e(parse(src), o);
  return e.run();
}

TEST(InferEngine, DekkerRecoversThePaperAsymmetricProtocol) {
  const InferResult r = run_engine(kHoleyDekker);
  ASSERT_EQ(r.status, InferStatus::kSat);
  const Assignment want{{FenceKind::kLmfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone}};
  EXPECT_EQ(r.best, want);
  // freq 1000 * 3 + 1 * (150 + 10) for the l-mfence, + 1 * 100 mfence.
  EXPECT_NEAR(r.best_cost, 3260.0, 0.5);
  EXPECT_TRUE(r.recheck_safe);
  EXPECT_FALSE(r.clauses.empty());
  // Every fence in the winner is load-bearing: dropping any breaks safety.
  // (Swapping mfence -> l-mfence can stay safe — just never cheaper here.)
  for (const MinimalityNote& n : r.minimality) {
    if (n.to == FenceKind::kNone) {
      EXPECT_FALSE(n.safe);
    }
  }
}

TEST(InferEngine, CounterexamplePruningBeatsNaiveEnumeration) {
  const InferResult guided = run_engine(kHoleyDekker);
  InferenceEngine::Options naive;
  naive.exhaustive = true;
  naive.minimality_pass = false;
  const InferResult full = run_engine(kHoleyDekker, naive);
  ASSERT_EQ(guided.status, InferStatus::kSat);
  ASSERT_EQ(full.status, InferStatus::kSat);
  // Same optimum, found with >= 4x fewer explorer runs (the E16 gate).
  EXPECT_EQ(guided.best, full.best);
  EXPECT_DOUBLE_EQ(guided.best_cost, full.best_cost);
  EXPECT_EQ(full.candidates_verified, full.lattice_size);
  EXPECT_GE(full.candidates_verified, guided.candidates_verified * 4);
}

TEST(InferEngine, StoreBufferNeedsAFenceOnBothSides) {
  const InferResult r = run_engine(kHoleySb);
  ASSERT_EQ(r.status, InferStatus::kSat);
  // Equal frequencies: the 100-cycle mfence undercuts the l-mfence's
  // 150-cycle remote round trip on both sides.
  const Assignment want{{FenceKind::kMfence, FenceKind::kMfence}};
  EXPECT_EQ(r.best, want);
  EXPECT_NEAR(r.best_cost, 200.0, 0.5);
  EXPECT_TRUE(r.recheck_safe);
  // The forbidden both-read-zero outcome means a single fence never
  // suffices: every single-site weakening is re-verified UNSAFE.
  int weakenings_checked = 0;
  for (const MinimalityNote& n : r.minimality) {
    if (n.to == FenceKind::kNone) {
      EXPECT_FALSE(n.safe);
      ++weakenings_checked;
    }
  }
  EXPECT_EQ(weakenings_checked, 2);
}

TEST(InferEngine, FenceIndependentViolationIsUnsat) {
  const InferResult r = run_engine(kHopeless);
  ASSERT_EQ(r.status, InferStatus::kUnsat);
  ASSERT_TRUE(r.unsat_violation.has_value());
  EXPECT_NE(r.unsat_violation->find("mutual exclusion"), std::string::npos);
  EXPECT_FALSE(r.unsat_trace.empty());
}

TEST(InferEngine, StateBudgetExhaustionReportsLimitNotSat) {
  InferenceEngine::Options o;
  o.max_states_per_check = 1;  // every check is inconclusive
  const InferResult r = run_engine(kHoleyDekker, o);
  // Regression: an exploration that hits its limit must never be taken as
  // proof of safety.
  EXPECT_EQ(r.status, InferStatus::kLimit);
}

TEST(InferEngine, BatchedVerificationFindsTheSameOptimum) {
  InferenceEngine::Options o;
  o.batch = 4;
  const InferResult batched = run_engine(kHoleyDekker, o);
  const InferResult serial = run_engine(kHoleyDekker);
  ASSERT_EQ(batched.status, InferStatus::kSat);
  EXPECT_EQ(batched.best, serial.best);
  EXPECT_DOUBLE_EQ(batched.best_cost, serial.best_cost);
}

TEST(InferEngine, LearningOffStillFindsTheOptimum) {
  InferenceEngine::Options o;
  o.learn_clauses = false;
  const InferResult r = run_engine(kHoleyDekker, o);
  ASSERT_EQ(r.status, InferStatus::kSat);
  EXPECT_NEAR(r.best_cost, 3260.0, 0.5);
  EXPECT_TRUE(r.clauses.empty());
  EXPECT_EQ(r.candidates_pruned, 0u);
}

TEST(InferEngine, NoHolesIsTriviallySatWhenSafe) {
  const InferResult r = run_engine(
      "cpu 0:\n  store [x], 1\n  halt\ncpu 1:\n  load r0, [x]\n  halt\n");
  ASSERT_EQ(r.status, InferStatus::kSat);
  EXPECT_TRUE(r.best.kinds.empty());
  EXPECT_DOUBLE_EQ(r.best_cost, 0.0);
  EXPECT_TRUE(r.recheck_safe);
}

// ------------------------------------------------------------ shipped files

TEST(InferExamples, DekkerHolesFileMatchesThePaper) {
  const InferResult r =
      run_engine(slurp(std::string(LBMF_LITMUS_DIR) + "/dekker_holes.lit"));
  ASSERT_EQ(r.status, InferStatus::kSat);
  const Assignment want{{FenceKind::kLmfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone}};
  EXPECT_EQ(r.best, want);
  EXPECT_TRUE(r.recheck_safe);
}

TEST(InferExamples, PetersonHolesFencesOnlyTheLastAnnounceStore) {
  const InferResult r =
      run_engine(slurp(std::string(LBMF_LITMUS_DIR) + "/peterson_holes.lit"));
  ASSERT_EQ(r.status, InferStatus::kSat);
  ASSERT_EQ(r.best.kinds.size(), 4u);
  // FIFO store buffers: fencing turn (the last announce store) also orders
  // the flag store, so the flag holes stay empty on both sides.
  EXPECT_EQ(r.best.kinds[0], FenceKind::kNone);
  EXPECT_EQ(r.best.kinds[1], FenceKind::kLmfence);  // hot primary
  EXPECT_EQ(r.best.kinds[2], FenceKind::kNone);
  EXPECT_EQ(r.best.kinds[3], FenceKind::kMfence);   // rare secondary
  EXPECT_TRUE(r.recheck_safe);
}

TEST(InferExamples, StoreBufferHolesFileNeedsBothMfences) {
  const InferResult r = run_engine(
      slurp(std::string(LBMF_LITMUS_DIR) + "/store_buffer_holes.lit"));
  ASSERT_EQ(r.status, InferStatus::kSat);
  const Assignment want{{FenceKind::kMfence, FenceKind::kMfence}};
  EXPECT_EQ(r.best, want);
}

TEST(InferExamples, TheDequeHolesRecoverThePaperPlacement) {
  // The tentpole acceptance test: on the THE-deque pop/steal handshake
  // (victim hot at freq 1000) the engine must rediscover the paper's
  // Sec. 6 protocol — l-mfence on the victim's announce, mfence on the
  // thief's announce, nothing on either retreat.
  const InferResult r =
      run_engine(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  ASSERT_EQ(r.status, InferStatus::kSat);
  const Assignment want{{FenceKind::kLmfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone}};
  EXPECT_EQ(r.best, want);
  // Site A: f=1000 * lest_victim(3) + 1 remote load * (150 + 10) = 3160;
  // site C: f=1 * mfence(100). Total 3260.
  EXPECT_NEAR(r.best_cost, 3260.0, 0.5);
  EXPECT_TRUE(r.recheck_safe);
}

TEST(InferExamples, TwoThievesPlacementIsThiefCountIndependent) {
  // Adding a second thief must not change the shape of the inferred
  // protocol: the victim still pays exactly one l-mfence on its announce,
  // each thief pays its own mfence, and no retreat is fenced — the thief
  // placement is copied per thief, never strengthened.
  const InferResult r = run_engine(
      slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_two_thieves.lit"));
  ASSERT_EQ(r.status, InferStatus::kSat);
  const Assignment want{{FenceKind::kLmfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone,
                         FenceKind::kMfence, FenceKind::kNone}};
  EXPECT_EQ(r.best, want);
  // Site A: f=1000 * lest_victim(3) + 2 remote loads * (150 + 10) = 3320;
  // sites C and E: f=1 * mfence(100) each. Total 3520.
  EXPECT_NEAR(r.best_cost, 3520.0, 0.5);
  EXPECT_TRUE(r.recheck_safe);
}

// ------------------------------------------------------------------- sweep

TEST(InferSweep, DequeFrontierMatchesHandCheckedGridPoints) {
  const InferProblem p =
      parse(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  SweepOptions so;
  so.victim_freqs = {1, 1000};
  so.roundtrips = {10, 150};
  const SweepResult r = run_sweep(p, so);
  ASSERT_EQ(r.points.size(), 4u);
  ASSERT_TRUE(r.all_sat());

  auto at = [&](double f, double rt) -> const SweepPoint& {
    for (const SweepPoint& pt : r.points) {
      if (pt.victim_freq == f && pt.lest_roundtrip == rt) return pt;
    }
    ADD_FAILURE() << "missing grid point";
    return r.points.front();
  };
  // Hand-derived from CostTable defaults (see EXPERIMENTS.md E17):
  // slow victim at the paper's 150-cycle round-trip -> symmetric mfences
  // (victim l-mfence would cost 3+160=163 > 100).
  const Assignment sym{{FenceKind::kMfence, FenceKind::kNone,
                        FenceKind::kMfence, FenceKind::kNone}};
  // Hot victim -> the asymmetric mix (mfence would cost 1000*100).
  const Assignment mix{{FenceKind::kLmfence, FenceKind::kNone,
                        FenceKind::kMfence, FenceKind::kNone}};
  // Near-free remote trips -> even the rare thief goes l-mfence
  // (1*3 + 2*(10+10) = 43 < 100).
  const Assignment dbl{{FenceKind::kLmfence, FenceKind::kNone,
                        FenceKind::kLmfence, FenceKind::kNone}};
  EXPECT_EQ(at(1, 150).best, sym);
  EXPECT_EQ(at(1000, 150).best, mix);
  EXPECT_EQ(at(1, 10).best, dbl);
  EXPECT_NEAR(at(1000, 150).best_cost, 3260.0, 0.5);

  EXPECT_GE(r.distinct_optima_at(150), 2u);
  ASSERT_FALSE(r.crossovers.empty());
}

TEST(InferSweep, PolicyJsonCollapsesOptimaToRuntimeModes) {
  const InferProblem p =
      parse(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  SweepOptions so;
  so.victim_freqs = {1, 1000};
  so.roundtrips = {10, 150};
  const SweepResult r = run_sweep(p, so);
  ASSERT_TRUE(r.all_sat());
  // Cells follow the hand-checked optima above: near-free trips put even
  // the slow victim on l-mfence (both announces l-mfence = the double
  // mode); at the paper's 150-cycle constant the slow victim is symmetric
  // and the hot one asymmetric.
  const std::string j = sweep_to_policy_json(r);
  EXPECT_NE(j.find("\"ratios\":[1,1000]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"roundtrips\":[10,150]"), std::string::npos) << j;
  EXPECT_NE(j.find("\"modes\":[\"double-lmfence\",\"asymmetric\","
                   "\"symmetric\",\"asymmetric\"]"),
            std::string::npos)
      << j;
}

TEST(InferSweep, GridSharesOneVerdictCacheAcrossPoints) {
  const InferProblem p =
      parse(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  SweepOptions so;
  so.victim_freqs = {1, 10, 1000};
  so.roundtrips = {10, 150};
  const SweepResult r = run_sweep(p, so);
  ASSERT_TRUE(r.all_sat());
  // Safety verdicts are cost-independent, so across the 6-point grid the
  // explorer only runs for lattice points the first solve didn't already
  // settle; every later check is a cache hit.
  EXPECT_GT(r.cache_hits, 0u);
  EXPECT_LT(r.explorer_runs, r.cache_hits);
}

TEST(InferSweep, ExternalCacheIsSharedAndSurvivesTheSweep) {
  const InferProblem p =
      parse(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  VerdictCache cache;
  SweepOptions so;
  so.victim_freqs = {1, 1000};
  so.roundtrips = {150};
  so.engine.verdict_cache = &cache;
  const SweepResult first = run_sweep(p, so);
  ASSERT_TRUE(first.all_sat());
  EXPECT_GT(cache.size(), 0u);
  // Re-running against the warm cache does zero new explorer work beyond
  // the per-point final recheck (which always bypasses the cache).
  const SweepResult second = run_sweep(p, so);
  ASSERT_TRUE(second.all_sat());
  EXPECT_GT(second.cache_hits, first.cache_hits);
  EXPECT_EQ(first.points[0].best, second.points[0].best);
  EXPECT_EQ(first.points[1].best, second.points[1].best);
}

TEST(InferSweep, JsonReportCarriesGridPointsAndCrossovers) {
  const InferProblem p =
      parse(slurp(std::string(LBMF_LITMUS_DIR) + "/the_deque_holes.lit"));
  SweepOptions so;
  so.victim_freqs = {1, 1000};
  so.roundtrips = {150};
  const SweepResult r = run_sweep(p, so);
  const std::string json = sweep_to_json(r, "unit");
  EXPECT_NE(json.find("\"bench\":\"sweep\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"optimum\":\"{mfence, none, mfence, none}\""),
            std::string::npos);
  EXPECT_NE(json.find("\"optimum\":\"{l-mfence, none, mfence, none}\""),
            std::string::npos);
  EXPECT_NE(json.find("\"crossovers\":[{"), std::string::npos);
}

}  // namespace
}  // namespace lbmf::infer
