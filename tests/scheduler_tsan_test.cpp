// ThreadSanitizer harness for the scheduler and rwlock paths the deque
// harness does not reach: the run() inbox handoff and quiesce barrier, the
// stats()/reset_stats() aggregation racing live workers, the BiasedRwLock
// writer fan-out racing stats() readers, and the adaptation hook
// (monitor → selector → quiescent-point switch) ticking inside worker
// loops. All policies are symmetric so the binary has no signal/membarrier
// dependency and runs anywhere TSan does; the adaptive leg still exercises
// every adaptation code path because mode switching is policy-internal
// bookkeeping. TSan makes any report fatal via halt_on_error.
//
// Plain main, no gtest: gtest + TSan needs a separately instrumented gtest
// build, which the repo does not carry.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/adapt/policy_table.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace {

using namespace lbmf;

// Spawn-recursive fib: the standard work-stealing smoke workload.
template <typename P>
void fib(long n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  typename ws::Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([n, &a] { fib<P>(n - 1, &a); });
  tg.spawn(t);
  fib<P>(n - 2, &b);
  tg.sync();
  *out = a + b;
}

// Repeated run() cycles (inbox post, worker wake, quiesce barrier) with
// stats() and reset_stats() hammered from outside while workers run.
template <typename P>
int drive_scheduler(const char* label, bool adaptive) {
  ws::Scheduler<P> sched(2);
  if constexpr (adapt::AdaptiveFencePolicy<P>) {
    if (adaptive) {
      ws::AdaptationOptions opts;
      // Single-cell all-symmetric table: the monitor, selector, and
      // quiescent-point plumbing all run every window, but no switch ever
      // needs a serialization backend.
      opts.table = adapt::PolicyTable({1.0}, {100.0},
                                      {adapt::PolicyMode::kSymmetric});
      opts.selector.confirm_windows = 1;
      opts.sample_every = 16;
      sched.enable_adaptation(opts);
    }
  }

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const ws::SchedulerStats s = sched.stats();
      sink += s.spawns + s.steals_success + s.pops_fast + s.policy_switches;
      std::this_thread::yield();
    }
    std::atomic_thread_fence(std::memory_order_relaxed);
    (void)sink;
  });
  std::thread resetter([&] {
    for (int i = 0; i < 50; ++i) {
      sched.reset_stats();
      std::this_thread::yield();
    }
  });

  int rc = 0;
  for (int round = 0; round < 3; ++round) {
    long result = 0;
    sched.run([&] { fib<P>(14, &result); });
    if (result != 377) {
      std::printf("FAIL %s: fib(14) = %ld, want 377\n", label, result);
      rc = 1;
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  resetter.join();
  if (rc == 0) std::printf("ok %s: 3 runs, stats hammered\n", label);
  return rc;
}

// BiasedRwLock writer fan-out (batched serialize_many wave over every
// registered reader) racing reader fast paths and stats() aggregation.
int drive_rwlock() {
  BiasedRwLock<SymmetricFence> lock;
  std::atomic<bool> stop{false};
  std::atomic<long> shared{0};
  std::atomic<long> observed{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      auto token = lock.register_reader();
      while (!stop.load(std::memory_order_acquire)) {
        token.read_lock();
        observed.fetch_add(shared.load(std::memory_order_relaxed) >= 0,
                           std::memory_order_relaxed);
        token.read_unlock();
      }
    });
  }
  std::thread stats_reader([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const RwLockStats s = lock.stats();
      sink += s.read_acquires + s.write_acquires + s.serializations;
      std::this_thread::yield();
    }
    std::atomic_thread_fence(std::memory_order_relaxed);
    (void)sink;
  });

  for (int i = 0; i < 200; ++i) {
    lock.write_lock();
    shared.fetch_add(1, std::memory_order_relaxed);
    lock.write_unlock();
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  stats_reader.join();

  const RwLockStats s = lock.stats();
  if (s.write_acquires != 200) {
    std::printf("FAIL rwlock: %llu write acquires, want 200\n",
                static_cast<unsigned long long>(s.write_acquires));
    return 1;
  }
  std::printf("ok rwlock: 200 writes, %llu reads, stats hammered\n",
              static_cast<unsigned long long>(s.read_acquires));
  return 0;
}

}  // namespace

int main() {
  int rc = 0;
  rc |= drive_scheduler<SymmetricFence>("Scheduler<SymmetricFence>", false);
  rc |= drive_scheduler<adapt::AdaptiveFence>("Scheduler<AdaptiveFence>",
                                              true);
  rc |= drive_rwlock();
  std::printf("%s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
