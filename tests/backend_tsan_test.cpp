// ThreadSanitizer harness for the serialization-backend matrix: Dekker
// announce traffic and deque pop/steal traffic run against each backend
// {signal, membarrier-pair, sim-lest} while a controller thread re-binds
// the primary's mode and backend concurrently (request_mode /
// request_backend from outside, quiescent_point adoption inside the
// protocol loop). The cross-thread edges under test are AdaptiveFence's
// mode/backend/booking cells, the backend trip ledgers, and the degraded /
// switch counters — all of which are read by controllers and benches while
// the primary runs. TSan makes any report fatal via halt_on_error.
//
// Plain main, no gtest: gtest + TSan needs a separately instrumented gtest
// build, which the repo does not carry.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/backend/backend.hpp"
#include "lbmf/dekker/dekker.hpp"
#include "lbmf/ws/deque.hpp"
#include "lbmf/ws/task.hpp"

namespace {

using lbmf::AsymmetricDekker;
using lbmf::adapt::AdaptiveFence;
using lbmf::adapt::PolicyMode;
using lbmf::backend::BackendId;

constexpr BackendId kMatrix[] = {BackendId::kSignal, BackendId::kMembarrierPair,
                                 BackendId::kSimLest};
constexpr PolicyMode kModes[] = {PolicyMode::kSymmetric,
                                 PolicyMode::kAsymmetric,
                                 PolicyMode::kDoubleLmfence};

// Dekker rounds with a controller flipping both the requested mode and the
// bound backend while the primary adopts at its quiescent points and the
// secondary serializes it per whatever (possibly one-switch-stale) regime
// it observes.
int drive_dekker() {
  constexpr std::uint64_t kRounds = 1'500;
  AsymmetricDekker<AdaptiveFence> dk;
  std::atomic<bool> ready{false};
  std::atomic<bool> stop_ctl{false};
  std::atomic<int> in_cs{0};
  std::atomic<int> violations{0};
  AdaptiveFence::Handle h;

  const auto enter_cs = [&] {
    if (in_cs.exchange(1, std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
    for (int spin = 0; spin < 8; ++spin) lbmf::compiler_fence();
    in_cs.store(0, std::memory_order_relaxed);
  };

  std::atomic<bool> ctl_exited{false};
  std::atomic<bool> sec_exited{false};
  std::thread primary([&] {
    dk.bind_primary();
    h = dk.primary_handle();
    ready.store(true, std::memory_order_release);
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      dk.lock_primary();
      enter_cs();
      dk.unlock_primary();
      // Between attempts: no announce in flight — adopt whatever the
      // controller has booked since the last round.
      AdaptiveFence::quiescent_point(h);
    }
    // Unregistration must run on the registered thread, and only after the
    // controller and the secondary stop touching the handle.
    stop_ctl.store(true, std::memory_order_release);
    while (!ctl_exited.load(std::memory_order_acquire) ||
           !sec_exited.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    dk.unbind_primary();
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread controller([&] {
    std::uint64_t i = 0;
    std::uint64_t sink = 0;
    while (!stop_ctl.load(std::memory_order_acquire)) {
      AdaptiveFence::request_backend(h, kMatrix[i % 3]);
      AdaptiveFence::request_mode(h, kModes[(i / 3) % 3]);
      // Concurrent reads of everything the benches and CI gates consume.
      sink += static_cast<std::uint64_t>(AdaptiveFence::realized_mode(h)) +
              static_cast<std::uint64_t>(AdaptiveFence::booked_mode(h)) +
              AdaptiveFence::switch_count(h) +
              AdaptiveFence::booked_switch_count(h) +
              AdaptiveFence::degraded_count(h) +
              lbmf::backend::membarrier_trips() +
              lbmf::backend::simlest_trips();
      ++i;
      std::this_thread::yield();
    }
    std::atomic_thread_fence(std::memory_order_relaxed);
    (void)sink;
    ctl_exited.store(true, std::memory_order_release);
  });

  std::thread secondary([&] {
    for (std::uint64_t r = 0; r < kRounds; ++r) {
      dk.lock_secondary();
      enter_cs();
      dk.unlock_secondary();
    }
    sec_exited.store(true, std::memory_order_release);
  });

  secondary.join();
  controller.join();
  primary.join();

  if (violations.load() != 0) {
    std::printf("FAIL dekker: %d mutual-exclusion violations\n",
                violations.load());
    return 1;
  }
  std::printf("ok dekker: %llu rounds/side across the backend matrix\n",
              static_cast<unsigned long long>(kRounds));
  return 0;
}

// Deque pop/steal traffic under the same concurrent re-binding: the victim
// (this thread) owns the adaptive registration, a thief steals through
// serialize(h), and the controller walks the backend matrix.
int drive_deque() {
  constexpr int kTasks = 12'000;
  AdaptiveFence::Handle h = AdaptiveFence::register_primary();
  lbmf::ws::TheDeque<AdaptiveFence> d;
  d.set_owner_handle(h);
  lbmf::ws::TaskGroupBase g;
  std::vector<lbmf::ws::ClosureTask<void (*)()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) tasks.emplace_back(g, +[] {});

  std::atomic<bool> stop{false};
  std::atomic<long> removed{0};

  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (d.steal() != nullptr) removed.fetch_add(1);
    }
  });
  std::thread controller([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      AdaptiveFence::request_backend(h, kMatrix[i % 3]);
      AdaptiveFence::request_mode(h, kModes[(i / 3) % 3]);
      ++i;
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < kTasks; ++i) {
    d.push(&tasks[i]);
    if (d.pop() != nullptr) removed.fetch_add(1);
    if (i % 64 == 0) AdaptiveFence::quiescent_point(h);
  }
  while (d.steal() != nullptr) removed.fetch_add(1);
  stop.store(true, std::memory_order_release);
  thief.join();
  controller.join();
  AdaptiveFence::unregister_primary(h);

  if (removed.load() != kTasks) {
    std::printf("FAIL deque: %ld of %d tasks accounted for\n", removed.load(),
                kTasks);
    return 1;
  }
  std::printf("ok deque: %d tasks, no lost or duplicated pops\n", kTasks);
  return 0;
}

}  // namespace

int main() {
  int rc = 0;
  rc |= drive_dekker();
  rc |= drive_deque();
  std::printf("%s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
