#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/flowtable/pipeline.hpp"

namespace lbmf::flowtable {
namespace {

template <typename P>
class FlowTableTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(FlowTableTest, Policies);

TYPED_TEST(FlowTableTest, RecordsAndAccumulatesPerFlow) {
  FlowTable<TypeParam> t(1u << 6);
  t.bind_owner();
  t.record_packet(7, 100);
  t.record_packet(7, 50);
  t.record_packet(9, 10);
  auto s7 = t.owner_peek(7);
  ASSERT_TRUE(s7.has_value());
  EXPECT_EQ(s7->packets, 2u);
  EXPECT_EQ(s7->bytes, 150u);
  auto s9 = t.owner_peek(9);
  ASSERT_TRUE(s9.has_value());
  EXPECT_EQ(s9->packets, 1u);
  EXPECT_FALSE(t.owner_peek(8).has_value());
  EXPECT_EQ(t.flow_count(), 2u);
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, HashCollisionsProbeLinearly) {
  // Tiny table forces collisions; every key must stay distinct.
  FlowTable<TypeParam> t(1u << 3);
  t.bind_owner();
  for (FlowKey k = 1; k <= 6; ++k) t.record_packet(k, 1);
  EXPECT_EQ(t.flow_count(), 6u);
  for (FlowKey k = 1; k <= 6; ++k) {
    auto s = t.owner_peek(k);
    ASSERT_TRUE(s.has_value()) << k;
    EXPECT_EQ(s->packets, 1u) << k;
  }
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, RemoteRuleUpdateIsSeenByOwner) {
  FlowTable<TypeParam> t;
  std::atomic<bool> bound{false};
  std::atomic<bool> updated{false};
  std::atomic<std::uint32_t> observed_rule{0};
  std::atomic<bool> updater_done{false};

  std::thread owner([&] {
    t.bind_owner();
    bound.store(true, std::memory_order_release);
    // Process packets for the flow until the remotely-installed rule shows
    // up in the owner's fast path.
    while (observed_rule.load(std::memory_order_relaxed) != 5) {
      const std::uint32_t rule = t.record_packet(42, 64);
      if (rule != 0) observed_rule.store(rule, std::memory_order_relaxed);
    }
    while (!updater_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    t.unbind_owner();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  t.update_rule(42, 5);
  updated.store(true, std::memory_order_release);
  updater_done.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(observed_rule.load(), 5u);
  EXPECT_GE(t.sync_stats().secondary_acquires, 1u);
}

TYPED_TEST(FlowTableTest, RemoteReaderSeesConsistentTotals) {
  FlowTable<TypeParam> t;
  std::atomic<bool> bound{false};
  std::atomic<bool> reader_done{false};
  constexpr std::uint64_t kPackets = 5000;

  std::thread owner([&] {
    t.bind_owner();
    bound.store(true, std::memory_order_release);
    PacketGenerator gen(1, 64);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      const auto p = gen.next();
      t.record_packet(p.key, p.bytes);
    }
    while (!reader_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    t.unbind_owner();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  // Concurrent totals are momentary snapshots and must never exceed the
  // final count; the final snapshot must be exact.
  std::uint64_t last = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t total = t.remote_total_packets();
    EXPECT_GE(total, last);
    EXPECT_LE(total, kPackets);
    last = total;
  }
  // Spin until the owner finished producing.
  while (t.remote_total_packets() < kPackets) std::this_thread::yield();
  EXPECT_EQ(t.remote_total_packets(), kPackets);
  reader_done.store(true, std::memory_order_release);
  owner.join();
}

TYPED_TEST(FlowTableTest, UpdateRuleReportsInsertVsUpdate) {
  FlowTable<TypeParam> t(1u << 6);
  t.bind_owner();
  t.record_packet(7, 100);
  // Existing flow: update, no new entry, stats preserved.
  EXPECT_TRUE(t.update_rule(7, 3));
  EXPECT_EQ(t.flow_count(), 1u);
  auto s7 = t.owner_peek(7);
  ASSERT_TRUE(s7.has_value());
  EXPECT_EQ(s7->rule, 3u);
  EXPECT_EQ(s7->packets, 1u);
  // Missing flow: explicit insert of a zero-packet flow, reported as such.
  EXPECT_FALSE(t.update_rule(8, 4));
  EXPECT_EQ(t.flow_count(), 2u);
  auto s8 = t.owner_peek(8);
  ASSERT_TRUE(s8.has_value());
  EXPECT_EQ(s8->rule, 4u);
  EXPECT_EQ(s8->packets, 0u);
  // Traffic arriving after the pre-installed rule sees it immediately.
  EXPECT_EQ(t.record_packet(8, 64), 4u);
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, GrowableTableRehashesIncrementally) {
  // Start tiny and push three orders of magnitude more flows through:
  // every doubling runs the incremental old->new migration under live
  // mutation, and nothing may be lost or double-counted.
  FlowTable<TypeParam> t(1u << 4, Growth::kGrowable);
  t.bind_owner();
  constexpr FlowKey kFlows = 20000;
  for (int round = 0; round < 2; ++round) {
    for (FlowKey k = 1; k <= kFlows; ++k) t.record_packet(k, 10);
  }
  EXPECT_EQ(t.flow_count(), kFlows);
  EXPECT_GE(t.grow_count(), 10u);  // 16 -> 32768 is 11 doublings
  EXPECT_GE(t.capacity(), kFlows * 4 / 3);
  for (FlowKey k = 1; k <= kFlows; ++k) {
    auto s = t.owner_peek(k);
    ASSERT_TRUE(s.has_value()) << k;
    EXPECT_EQ(s->packets, 2u) << k;
    EXPECT_EQ(s->bytes, 20u) << k;
  }
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, RulesSurviveMigration) {
  FlowTable<TypeParam> t(1u << 4, Growth::kGrowable);
  t.bind_owner();
  // Install rules early, then force several growths; rules must follow the
  // entries across the rehash.
  for (FlowKey k = 1; k <= 10; ++k) {
    t.record_packet(k, 1);
    t.update_rule(k, static_cast<std::uint32_t>(k * 7));
  }
  for (FlowKey k = 11; k <= 4000; ++k) t.record_packet(k, 1);
  for (FlowKey k = 1; k <= 10; ++k) {
    EXPECT_EQ(t.record_packet(k, 1), k * 7) << k;
  }
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, EvictBelowDropsColdFlows) {
  FlowTable<TypeParam> t(1u << 4, Growth::kGrowable);
  t.bind_owner();
  for (FlowKey k = 1; k <= 100; ++k) {
    const int reps = (k % 10 == 0) ? 5 : 1;  // every 10th flow is hot
    for (int r = 0; r < reps; ++r) t.record_packet(k, 8);
  }
  EXPECT_EQ(t.flow_count(), 100u);
  EXPECT_EQ(t.remote_evict_below(5), 90u);
  EXPECT_EQ(t.flow_count(), 10u);
  for (FlowKey k = 1; k <= 100; ++k) {
    auto s = t.owner_peek(k);
    if (k % 10 == 0) {
      ASSERT_TRUE(s.has_value()) << k;
      EXPECT_EQ(s->packets, 5u) << k;
    } else {
      EXPECT_FALSE(s.has_value()) << k;
    }
  }
  // The table remains fully usable after the rebuild.
  t.record_packet(3, 8);
  EXPECT_EQ(t.flow_count(), 11u);
  t.unbind_owner();
}

TEST(FlowTableDeath, FixedCapacityTableDiesWhenFull) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FlowTable<SymmetricFence> t(1u << 3, Growth::kFixed);
        t.bind_owner();
        for (FlowKey k = 1; k <= 8; ++k) t.record_packet(k, 1);
        t.unbind_owner();
      },
      "flow table full");
}

TEST(PacketGenerator, DeterministicAndBounded) {
  PacketGenerator a(7, 100), b(7, 100);
  std::set<FlowKey> keys;
  for (int i = 0; i < 1000; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    EXPECT_EQ(pa.key, pb.key);
    EXPECT_EQ(pa.bytes, pb.bytes);
    EXPECT_GE(pa.key, 1u);
    EXPECT_LE(pa.key, 100u);
    EXPECT_GE(pa.bytes, 64u);
    EXPECT_LT(pa.bytes, 1500u);
    keys.insert(pa.key);
  }
  EXPECT_GT(keys.size(), 10u);  // draws from a real population
}

TEST(PacketGenerator, HotSetDominates) {
  PacketGenerator gen(3, 1000, /*hot_fraction=*/0.1, /*hot_probability=*/0.9);
  int hot = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next().key <= 100) ++hot;  // the hot 10% of the population
  }
  EXPECT_GT(hot, kDraws / 2);  // well over half the traffic
}

TEST(Pipeline, EndToEndRunProcessesPacketsAndUpdates) {
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.1, /*updaters=*/1, /*update_interval_us=*/500);
  EXPECT_GT(r.packets_processed, 1000u);
  EXPECT_GT(r.remote_updates, 0u);
  EXPECT_GT(r.packets_per_second(), 0.0);
  // Every remote update went through the secondary (serializing) path.
  EXPECT_EQ(r.sync.secondary_acquires, r.remote_updates);
  // The owner paid one primary announce per packet.
  EXPECT_GE(r.sync.primary_acquires, r.packets_processed);
}

TEST(Pipeline, GrowableTableAbsorbsUndersizedCapacity) {
  // A 64-slot growable table under a 20k-flow population: the owner grows
  // the table live (with updaters poking the secondary side) instead of
  // dying with "flow table full" as the fixed path would.
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.1, /*updaters=*/1, /*update_interval_us=*/500,
      /*flows=*/20000, /*seed=*/0xf10u, /*capacity_pow2=*/1u << 6,
      Growth::kGrowable);
  EXPECT_GT(r.packets_processed, 1000u);
  EXPECT_GT(r.flows_seen, 1000u);
  EXPECT_GE(r.table_grows, 5u);
  EXPECT_EQ(r.sync.secondary_acquires, r.remote_updates);
}

TEST(Pipeline, NoUpdatersMeansNoSerializations) {
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.05, /*updaters=*/0, /*update_interval_us=*/0);
  EXPECT_GT(r.packets_processed, 1000u);
  EXPECT_EQ(r.remote_updates, 0u);
  EXPECT_EQ(r.sync.serializations, 0u);
}

}  // namespace
}  // namespace lbmf::flowtable
