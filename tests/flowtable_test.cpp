#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/flowtable/pipeline.hpp"

namespace lbmf::flowtable {
namespace {

template <typename P>
class FlowTableTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(FlowTableTest, Policies);

TYPED_TEST(FlowTableTest, RecordsAndAccumulatesPerFlow) {
  FlowTable<TypeParam> t(1u << 6);
  t.bind_owner();
  t.record_packet(7, 100);
  t.record_packet(7, 50);
  t.record_packet(9, 10);
  auto s7 = t.owner_peek(7);
  ASSERT_TRUE(s7.has_value());
  EXPECT_EQ(s7->packets, 2u);
  EXPECT_EQ(s7->bytes, 150u);
  auto s9 = t.owner_peek(9);
  ASSERT_TRUE(s9.has_value());
  EXPECT_EQ(s9->packets, 1u);
  EXPECT_FALSE(t.owner_peek(8).has_value());
  EXPECT_EQ(t.flow_count(), 2u);
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, HashCollisionsProbeLinearly) {
  // Tiny table forces collisions; every key must stay distinct.
  FlowTable<TypeParam> t(1u << 3);
  t.bind_owner();
  for (FlowKey k = 1; k <= 6; ++k) t.record_packet(k, 1);
  EXPECT_EQ(t.flow_count(), 6u);
  for (FlowKey k = 1; k <= 6; ++k) {
    auto s = t.owner_peek(k);
    ASSERT_TRUE(s.has_value()) << k;
    EXPECT_EQ(s->packets, 1u) << k;
  }
  t.unbind_owner();
}

TYPED_TEST(FlowTableTest, RemoteRuleUpdateIsSeenByOwner) {
  FlowTable<TypeParam> t;
  std::atomic<bool> bound{false};
  std::atomic<bool> updated{false};
  std::atomic<std::uint32_t> observed_rule{0};
  std::atomic<bool> updater_done{false};

  std::thread owner([&] {
    t.bind_owner();
    bound.store(true, std::memory_order_release);
    // Process packets for the flow until the remotely-installed rule shows
    // up in the owner's fast path.
    while (observed_rule.load(std::memory_order_relaxed) != 5) {
      const std::uint32_t rule = t.record_packet(42, 64);
      if (rule != 0) observed_rule.store(rule, std::memory_order_relaxed);
    }
    while (!updater_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    t.unbind_owner();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  t.update_rule(42, 5);
  updated.store(true, std::memory_order_release);
  updater_done.store(true, std::memory_order_release);
  owner.join();
  EXPECT_EQ(observed_rule.load(), 5u);
  EXPECT_GE(t.sync_stats().secondary_acquires, 1u);
}

TYPED_TEST(FlowTableTest, RemoteReaderSeesConsistentTotals) {
  FlowTable<TypeParam> t;
  std::atomic<bool> bound{false};
  std::atomic<bool> reader_done{false};
  constexpr std::uint64_t kPackets = 5000;

  std::thread owner([&] {
    t.bind_owner();
    bound.store(true, std::memory_order_release);
    PacketGenerator gen(1, 64);
    for (std::uint64_t i = 0; i < kPackets; ++i) {
      const auto p = gen.next();
      t.record_packet(p.key, p.bytes);
    }
    while (!reader_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    t.unbind_owner();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  // Concurrent totals are momentary snapshots and must never exceed the
  // final count; the final snapshot must be exact.
  std::uint64_t last = 0;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t total = t.remote_total_packets();
    EXPECT_GE(total, last);
    EXPECT_LE(total, kPackets);
    last = total;
  }
  // Spin until the owner finished producing.
  while (t.remote_total_packets() < kPackets) std::this_thread::yield();
  EXPECT_EQ(t.remote_total_packets(), kPackets);
  reader_done.store(true, std::memory_order_release);
  owner.join();
}

TEST(PacketGenerator, DeterministicAndBounded) {
  PacketGenerator a(7, 100), b(7, 100);
  std::set<FlowKey> keys;
  for (int i = 0; i < 1000; ++i) {
    const auto pa = a.next();
    const auto pb = b.next();
    EXPECT_EQ(pa.key, pb.key);
    EXPECT_EQ(pa.bytes, pb.bytes);
    EXPECT_GE(pa.key, 1u);
    EXPECT_LE(pa.key, 100u);
    EXPECT_GE(pa.bytes, 64u);
    EXPECT_LT(pa.bytes, 1500u);
    keys.insert(pa.key);
  }
  EXPECT_GT(keys.size(), 10u);  // draws from a real population
}

TEST(PacketGenerator, HotSetDominates) {
  PacketGenerator gen(3, 1000, /*hot_fraction=*/0.1, /*hot_probability=*/0.9);
  int hot = 0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) {
    if (gen.next().key <= 100) ++hot;  // the hot 10% of the population
  }
  EXPECT_GT(hot, kDraws / 2);  // well over half the traffic
}

TEST(Pipeline, EndToEndRunProcessesPacketsAndUpdates) {
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.1, /*updaters=*/1, /*update_interval_us=*/500);
  EXPECT_GT(r.packets_processed, 1000u);
  EXPECT_GT(r.remote_updates, 0u);
  EXPECT_GT(r.packets_per_second(), 0.0);
  // Every remote update went through the secondary (serializing) path.
  EXPECT_EQ(r.sync.secondary_acquires, r.remote_updates);
  // The owner paid one primary announce per packet.
  EXPECT_GE(r.sync.primary_acquires, r.packets_processed);
}

TEST(Pipeline, NoUpdatersMeansNoSerializations) {
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.05, /*updaters=*/0, /*update_interval_us=*/0);
  EXPECT_GT(r.packets_processed, 1000u);
  EXPECT_EQ(r.remote_updates, 0u);
  EXPECT_EQ(r.sync.serializations, 0u);
}

}  // namespace
}  // namespace lbmf::flowtable
