#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "lbmf/cilkbench/dense.hpp"
#include "lbmf/cilkbench/fft.hpp"
#include "lbmf/cilkbench/heat.hpp"
#include "lbmf/cilkbench/recursive.hpp"
#include "lbmf/cilkbench/registry.hpp"
#include "lbmf/cilkbench/sort.hpp"

namespace lbmf::cilkbench {
namespace {

using Sym = SymmetricFence;
using Asym = AsymmetricSignalFence;

// ------------------------------------------------------- numeric references

TEST(CilkbenchDense, MatmulMatchesNaiveProduct) {
  constexpr std::size_t n = 64;
  Matrix a = Matrix::random(n, n, 1);
  Matrix b = Matrix::random(n, n, 2);
  Matrix c(n, n);
  Matrix ref(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) ref(i, j) += a(i, k) * b(k, j);
    }
  }
  ws::Scheduler<Sym> sched(2);
  sched.run([&] {
    detail::matmul_rec<Sym>(block_of(c), block_of(a), block_of(b), n, 1.0);
  });
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

TEST(CilkbenchDense, StrassenMatchesClassicMultiply) {
  constexpr std::size_t n = 256;  // two Strassen levels above the base case
  ws::Scheduler<Sym> sched(2);
  std::uint64_t direct = 0, strassen_sum = 0;
  sched.run([&] { direct = matmul<Sym>(n, 99); });
  sched.run([&] { strassen_sum = strassen<Sym>(n, 99); });
  // Strassen is not bitwise-identical to classic multiply (different
  // association), so compare the actual matrices instead of checksums.
  Matrix a = Matrix::random(n, n, 99);
  Matrix b = Matrix::random(n, n, 100);
  Matrix c1(n, n), c2(n, n);
  sched.run([&] {
    detail::matmul_rec<Sym>(block_of(c1), block_of(a), block_of(b), n, 1.0);
  });
  sched.run([&] {
    detail::strassen_rec<Sym>(block_of(c2), block_of(a), block_of(b), n);
  });
  double max_err = 0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max(max_err, std::abs(c1.data()[i] - c2.data()[i]));
  }
  EXPECT_LT(max_err, 1e-8);
  (void)direct;
  (void)strassen_sum;
}

TEST(CilkbenchDense, LuReconstructsInput) {
  constexpr std::size_t n = 64;
  Matrix orig = Matrix::random_spd(n, 7);
  Matrix a = orig;
  ws::Scheduler<Sym> sched(2);
  sched.run([&] { detail::lu_rec<Sym>(block_of(a), n); });
  // Rebuild L*U and compare to the original.
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      const std::size_t lim = std::min(i, j + 1);
      for (std::size_t k = 0; k < lim; ++k) s += a(i, k) * a(k, j);  // L*U
      if (i <= j) s += a(i, j);  // unit diagonal of L times U(i, j)
      max_err = std::max(max_err, std::abs(s - orig(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(CilkbenchDense, CholeskyReconstructsInput) {
  constexpr std::size_t n = 64;
  Matrix orig = Matrix::random_spd(n, 11);
  Matrix a = orig;
  ws::Scheduler<Sym> sched(2);
  sched.run([&] { detail::cholesky_rec<Sym>(block_of(a), n); });
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::size_t k = 0; k <= j; ++k) s += a(i, k) * a(j, k);  // L L^T
      max_err = std::max(max_err, std::abs(s - orig(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-9);
}

TEST(CilkbenchDense, RectmulHandlesNonSquareShapes) {
  ws::Scheduler<Sym> sched(2);
  constexpr std::size_t m = 96, n = 32, k = 160;
  Matrix a = Matrix::random(m, k, 3);
  Matrix b = Matrix::random(k, n, 4);
  Matrix c(m, n);
  Matrix ref(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      for (std::size_t j = 0; j < n; ++j) ref(i, j) += a(i, t) * b(t, j);
    }
  }
  sched.run([&] {
    detail::rectmul_rec<Sym>(block_of(c), block_of(a), block_of(b), m, n, k);
  });
  for (std::size_t i = 0; i < m * n; ++i) {
    ASSERT_NEAR(c.data()[i], ref.data()[i], 1e-9);
  }
}

TEST(CilkbenchFft, MatchesReferenceDft) {
  constexpr std::size_t n = 512;
  std::vector<Complex> in(n);
  Xoshiro256 rng(5);
  for (auto& x : in) x = Complex(rng.next_double() - 0.5, 0.0);
  std::vector<Complex> out(n);
  ws::Scheduler<Sym> sched(2);
  auto copy = in;
  sched.run([&] { detail::fft_rec<Sym>(copy.data(), n, 1, out.data()); });
  const auto ref = dft_reference(in);
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(out[i] - ref[i]));
  }
  EXPECT_LT(max_err, 1e-7);
}

TEST(CilkbenchRecursive, NqueensKnownCounts) {
  ws::Scheduler<Sym> sched(2);
  std::uint64_t q6 = 0, q7 = 0, q8 = 0;
  sched.run([&] { q6 = nqueens<Sym>(6); });
  sched.run([&] { q7 = nqueens<Sym>(7); });
  sched.run([&] { q8 = nqueens<Sym>(8); });
  EXPECT_EQ(q6, 4u);
  EXPECT_EQ(q7, 40u);
  EXPECT_EQ(q8, 92u);
}

TEST(CilkbenchRecursive, NqueensSerialAndParallelCutoffsAgree) {
  ws::Scheduler<Sym> sched(2);
  std::uint64_t deep = 0, shallow = 0;
  sched.run([&] { deep = nqueens<Sym>(8, 5); });
  sched.run([&] { shallow = nqueens<Sym>(8, 0); });
  EXPECT_EQ(deep, shallow);
}

namespace {
int knapsack_dp_reference(const std::vector<KnapsackItem>& items, int cap) {
  std::vector<int> best(static_cast<std::size_t>(cap) + 1, 0);
  for (const auto& it : items) {
    for (int c = cap; c >= it.weight; --c) {
      best[static_cast<std::size_t>(c)] =
          std::max(best[static_cast<std::size_t>(c)],
                   best[static_cast<std::size_t>(c - it.weight)] + it.value);
    }
  }
  return best[static_cast<std::size_t>(cap)];
}
}  // namespace

TEST(CilkbenchRecursive, KnapsackMatchesDynamicProgramming) {
  const auto items = make_knapsack_items(16, 0xbeef);
  int cap = 0;
  for (const auto& it : items) cap += it.weight;
  cap /= 2;
  const int expected = knapsack_dp_reference(items, cap);
  ws::Scheduler<Sym> sched(2);
  std::uint64_t got = 0;
  sched.run([&] { got = knapsack<Sym>(16); });
  EXPECT_EQ(got, static_cast<std::uint64_t>(expected));
}

TEST(CilkbenchSort, SortsRandomKeysAtAwkwardSizes) {
  ws::Scheduler<Sym> sched(2);
  for (std::size_t n : {1u, 2u, 1023u, 1024u, 1025u, 50'000u}) {
    std::uint64_t h = 0;
    sched.run([&] { h = cilksort<Sym>(n); });
    EXPECT_NE(h, 0u);  // cilksort aborts internally if unsorted
  }
}

TEST(CilkbenchHeat, ConservesBoundaryAndConverges) {
  ws::Scheduler<Sym> sched(2);
  std::uint64_t h1 = 0, h2 = 0;
  sched.run([&] { h1 = heat<Sym>(32, 32, 4); });
  sched.run([&] { h2 = heat<Sym>(32, 32, 4); });
  EXPECT_EQ(h1, h2);  // deterministic
  std::uint64_t h3 = 0;
  sched.run([&] { h3 = heat<Sym>(32, 32, 8); });
  EXPECT_NE(h1, h3);  // more steps changes the field
}

// --------------------------------------- policy-independence of checksums

TEST(CilkbenchRegistry, HasAllTwelvePaperBenchmarks) {
  const auto v = all_benchmarks<Sym>(Scale::kTest);
  ASSERT_EQ(v.size(), 12u);
  const char* expected[] = {"cholesky", "cilksort", "fft",     "fib",
                            "fibx",     "heat",     "knapsack", "lu",
                            "matmul",   "nqueens",  "rectmul", "strassen"};
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(v[i].name, expected[i]);
    EXPECT_FALSE(v[i].paper_input.empty());
  }
}

TEST(CilkbenchRegistry, ChecksumsAgreeAcrossPoliciesAndWorkerCounts) {
  // The headline validity requirement for Fig. 5: the asymmetric runtime
  // must compute the same answers as the symmetric one, serially and in
  // parallel.
  const auto sym_list = all_benchmarks<Sym>(Scale::kTest);
  const auto asym_list = all_benchmarks<Asym>(Scale::kTest);
  ws::Scheduler<Sym> s1(1);
  ws::Scheduler<Sym> s4(4);
  ws::Scheduler<Asym> a4(4);
  for (std::size_t i = 0; i < sym_list.size(); ++i) {
    const std::uint64_t serial = run_on(s1, sym_list[i]);
    const std::uint64_t par = run_on(s4, sym_list[i]);
    const std::uint64_t asym = run_on(a4, asym_list[i]);
    EXPECT_EQ(serial, par) << sym_list[i].name;
    EXPECT_EQ(serial, asym) << sym_list[i].name;
  }
}

}  // namespace
}  // namespace lbmf::cilkbench
