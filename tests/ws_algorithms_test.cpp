#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "lbmf/ws/algorithms.hpp"

namespace lbmf::ws {
namespace {

using P = AsymmetricSignalFence;

class WsAlgorithms : public ::testing::Test {
 protected:
  Scheduler<P> sched{3};
};

TEST_F(WsAlgorithms, ParallelForCoversEveryIndexOnce) {
  constexpr std::size_t kN = 10'000;
  std::vector<int> hits(kN, 0);
  sched.run([&] {
    parallel_for<P>(0, kN, 64, [&](std::size_t i) { hits[i]++; });
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i], 1) << i;
  }
}

TEST_F(WsAlgorithms, ParallelForEmptyAndTinyRanges) {
  int count = 0;
  sched.run([&] {
    parallel_for<P>(5, 5, 8, [&](std::size_t) { ++count; });   // empty
    parallel_for<P>(7, 8, 8, [&](std::size_t) { ++count; });   // one element
    parallel_for<P>(0, 3, 100, [&](std::size_t) { ++count; }); // below grain
  });
  EXPECT_EQ(count, 4);
}

TEST_F(WsAlgorithms, ParallelReduceSumsExactly) {
  constexpr std::size_t kN = 65'536;
  long total = 0;
  sched.run([&] {
    total = parallel_reduce<P, long>(
        0, kN, 128, 0L, [](std::size_t i) { return static_cast<long>(i); },
        [](long a, long b) { return a + b; });
  });
  EXPECT_EQ(total, static_cast<long>(kN) * (kN - 1) / 2);
}

TEST_F(WsAlgorithms, ParallelReduceRespectsAssociativeOrder) {
  // String concatenation is associative but not commutative: the result
  // must equal the sequential left-to-right fold.
  constexpr std::size_t kN = 200;
  std::string result;
  sched.run([&] {
    result = parallel_reduce<P, std::string>(
        0, kN, 16, std::string{},
        [](std::size_t i) { return std::to_string(i % 10); },
        [](std::string a, std::string b) { return a + b; });
  });
  std::string expected;
  for (std::size_t i = 0; i < kN; ++i) expected += std::to_string(i % 10);
  EXPECT_EQ(result, expected);
}

TEST_F(WsAlgorithms, ParallelInvokeTwoAndThreeWay) {
  int a = 0, b = 0, c = 0;
  sched.run([&] {
    parallel_invoke<P>([&] { a = 1; }, [&] { b = 2; });
    parallel_invoke<P>([&] { a += 10; }, [&] { b += 10; }, [&] { c = 3; });
  });
  EXPECT_EQ(a, 11);
  EXPECT_EQ(b, 12);
  EXPECT_EQ(c, 3);
}

TEST_F(WsAlgorithms, ParallelTransformWritesAllSlots) {
  constexpr std::size_t kN = 4096;
  std::vector<double> out(kN, -1.0);
  sched.run([&] {
    parallel_transform<P>(0, kN, 64, out.data(),
                          [](std::size_t i) { return i * 0.5; });
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_DOUBLE_EQ(out[i], i * 0.5) << i;
  }
}

TEST_F(WsAlgorithms, NestedParallelForInsideReduce) {
  // 2D traversal: reduce over rows, each row processed by a nested
  // parallel_for. Exercises nested task groups through the algorithms API.
  constexpr std::size_t kRows = 64, kCols = 64;
  std::vector<long> row_sums(kRows, 0);
  long total = 0;
  sched.run([&] {
    total = parallel_reduce<P, long>(
        0, kRows, 4, 0L,
        [&](std::size_t r) {
          parallel_for<P>(0, kCols, 16, [&, r](std::size_t c) {
            row_sums[r] += static_cast<long>(c);
          });
          return row_sums[r];
        },
        [](long a, long b) { return a + b; });
  });
  EXPECT_EQ(total, static_cast<long>(kRows) * (kCols * (kCols - 1) / 2));
}

TEST(WsAlgorithmsPolicies, SameResultsUnderSymmetricPolicy) {
  Scheduler<SymmetricFence> sched(2);
  long total = 0;
  sched.run([&] {
    total = parallel_reduce<SymmetricFence, long>(
        0, 1000, 16, 0L, [](std::size_t i) { return static_cast<long>(i); },
        [](long a, long b) { return a + b; });
  });
  EXPECT_EQ(total, 499500);
}

}  // namespace
}  // namespace lbmf::ws
