// ThreadSanitizer harness for the work-stealing deques' stats machinery:
// a victim pushes/pops, a thief steals, and two extra threads hammer
// stats() / reset_stats() while both run. Before the counters became
// relaxed atomics TSan reported data races on every plain-uint64_t
// increment read by stats(); this binary (built with -fsanitize=thread by
// the lbmf_tsan_tests CMake option, see tests/CMakeLists.txt) must run
// clean — TSan makes any report fatal via halt_on_error.
//
// Plain main, no gtest: gtest + TSan needs a separately instrumented gtest
// build, which the repo does not carry.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/deque.hpp"
#include "lbmf/ws/task.hpp"

namespace {

using namespace lbmf::ws;

constexpr int kTasks = 50000;

// Every deque template is exercised the same way; DequeT is TheDeque or
// ChaseLevDeque over the symmetric policy (no membarrier dependency, so
// the binary runs anywhere TSan does).
template <template <class> class DequeT>
int drive(const char* label) {
  DequeT<lbmf::SymmetricFence> d;
  TaskGroupBase g;
  std::vector<ClosureTask<void (*)()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) tasks.emplace_back(g, +[] {});

  std::atomic<bool> stop{false};
  std::atomic<long> removed{0};

  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (d.steal() != nullptr) removed.fetch_add(1);
    }
  });
  std::thread reader([&] {
    std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const DequeStats s = d.stats();
      sink += s.pushes + s.pops_fast + s.steals_success + s.thief_fences;
      (void)d.looks_empty();
    }
    // Keep the loads observable so the loop is not optimized away.
    std::atomic_thread_fence(std::memory_order_relaxed);
    (void)sink;
  });
  std::thread resetter([&] {
    // reset_stats() concurrent with the workers: the counts become
    // meaningless, but every access must stay a race-free atomic op.
    for (int i = 0; i < 100; ++i) {
      d.reset_stats();
      std::this_thread::yield();
    }
  });

  for (auto& t : tasks) {
    d.push(&t);
    if (d.pop() != nullptr) removed.fetch_add(1);
  }
  while (d.steal() != nullptr) removed.fetch_add(1);
  stop.store(true, std::memory_order_release);
  thief.join();
  reader.join();
  resetter.join();

  if (removed.load() != kTasks) {
    std::printf("FAIL %s: %ld of %d tasks accounted for\n", label,
                removed.load(), kTasks);
    return 1;
  }
  std::printf("ok %s: %d tasks, no lost or duplicated pops\n", label, kTasks);
  return 0;
}

}  // namespace

int main() {
  int rc = 0;
  rc |= drive<TheDeque>("TheDeque");
  rc |= drive<ChaseLevDeque>("ChaseLevDeque");
  std::printf("%s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}
