// Calibration pins: the simulator's default cost table must keep
// reproducing the paper's three published constants. These tests fail if
// anyone retunes SimConfig in a way that silently un-calibrates every
// downstream simulated result (EXPERIMENTS.md, Threats to validity #4).
#include <gtest/gtest.h>

#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"

namespace lbmf::sim {
namespace {

TEST(SimCosts, LeStRoundTripIsInThePaper150CycleClass) {
  Machine hw = make_roundtrip_machine(/*use_interrupt=*/false);
  for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);
  hw.step(1, Action::Execute);
  const auto cycles = hw.cpu(1).counters.cycles;
  EXPECT_GE(cycles, 120u);
  EXPECT_LE(cycles, 200u);  // paper: ~150 (L1 miss / L2 hit + SB flush)
}

TEST(SimCosts, SignalRoundTripIsInThePaper10kCycleClass) {
  Machine sw = make_roundtrip_machine(/*use_interrupt=*/true);
  sw.step(0, Action::Execute);
  sw.deliver_interrupt(0);
  sw.step(1, Action::Execute);
  const auto cycles = sw.cpu(0).counters.cycles + sw.cpu(1).counters.cycles;
  EXPECT_GE(cycles, 9'000u);
  EXPECT_LE(cycles, 12'000u);  // paper: ~10,000
}

TEST(SimCosts, SoloDekkerMfencePenaltyIsInThePaper4To7xBand) {
  Machine none = make_solo_dekker_machine(FenceKind::kNone, 1000);
  none.run_round_robin();
  Machine fenced = make_solo_dekker_machine(FenceKind::kMfence, 1000);
  fenced.run_round_robin();
  const double ratio =
      static_cast<double>(fenced.cpu(0).counters.cycles) /
      static_cast<double>(none.cpu(0).counters.cycles);
  EXPECT_GE(ratio, 4.0);  // Sec. 1: "runs 4-7 times slower"
  EXPECT_LE(ratio, 7.0);
}

TEST(SimCosts, SoloLmfenceOverheadIsNegligible) {
  Machine none = make_solo_dekker_machine(FenceKind::kNone, 1000);
  none.run_round_robin();
  Machine lmf = make_solo_dekker_machine(FenceKind::kLmfence, 1000);
  lmf.run_round_robin();
  const double ratio = static_cast<double>(lmf.cpu(0).counters.cycles) /
                       static_cast<double>(none.cpu(0).counters.cycles);
  // Sec. 1: "only negligible overhead ... compared to executing the same
  // code without fences at all". Allow up to 25% for the SetLink/LE/branch
  // micro-ops; crucially it must be nowhere near the mfence band.
  EXPECT_LT(ratio, 1.25);
  // And no program-based fence may have executed.
  EXPECT_EQ(lmf.cpu(0).counters.mfences, 0u);
}

TEST(SimCosts, CostTableKnobsActuallySteerTheModel) {
  // Doubling the bus cost must raise the LE/ST round trip accordingly —
  // guards against cost plumbing silently rotting.
  SimConfig cfg;
  cfg.cost_bus_transfer *= 2;
  Machine hw = make_roundtrip_machine(/*use_interrupt=*/false, cfg);
  for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);
  hw.step(1, Action::Execute);
  EXPECT_GT(hw.cpu(1).counters.cycles, 250u);
}

}  // namespace
}  // namespace lbmf::sim
