#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/rwlock/rwlock.hpp"

namespace lbmf {
namespace {

// Exercise the three paper locks plus the membarrier variant through one
// typed suite — and both writer fan-out shapes (batched serialize_many
// wave vs. the sequential signal-one-wait-one baseline), so lock semantics
// are pinned identical across the two paths.
template <typename L>
class RwLockTest : public ::testing::Test {};

using LockTypes =
    ::testing::Types<SrwLock, ArwLock, ArwPlusLock, ArwLockSequential,
                     ArwPlusLockSequential,
                     BiasedRwLock<AsymmetricMembarrierFence, false>>;
TYPED_TEST_SUITE(RwLockTest, LockTypes);

TYPED_TEST(RwLockTest, UncontendedReadLockUnlock) {
  TypeParam lock;
  auto token = lock.register_reader();
  for (int i = 0; i < 1000; ++i) {
    token.read_lock();
    token.read_unlock();
  }
  EXPECT_EQ(lock.stats().read_acquires, 1000u);
  EXPECT_EQ(lock.stats().write_acquires, 0u);
}

TYPED_TEST(RwLockTest, UncontendedWriteLockUnlock) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    lock.write_lock();
    lock.write_unlock();
  }
  EXPECT_EQ(lock.stats().write_acquires, 100u);
}

TYPED_TEST(RwLockTest, WriterExcludesReaderCounterExact) {
  TypeParam lock;
  // Shared data protected by the lock; non-atomic so a mutual-exclusion
  // bug corrupts it.
  volatile long data[4] = {0, 0, 0, 0};
  constexpr int kReaders = 3;
  constexpr long kReadsPerThread = 4000;
  constexpr long kWrites = 200;
  std::atomic<bool> mismatch{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto token = lock.register_reader();
      for (long i = 0; i < kReadsPerThread; ++i) {
        token.read_lock();
        // Writers keep all four cells equal; readers must never observe a
        // torn update.
        const long a = data[0], b = data[1], c = data[2], d = data[3];
        if (!(a == b && b == c && c == d)) {
          mismatch.store(true, std::memory_order_relaxed);
        }
        token.read_unlock();
      }
    });
  }

  std::thread writer([&] {
    for (long w = 0; w < kWrites; ++w) {
      lock.write_lock();
      for (int j = 0; j < 4; ++j) data[j] = data[j] + 1;
      lock.write_unlock();
    }
  });

  for (auto& t : readers) t.join();
  writer.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(data[0], kWrites);
  EXPECT_EQ(data[3], kWrites);
  EXPECT_EQ(lock.stats().read_acquires,
            static_cast<std::uint64_t>(kReaders) * kReadsPerThread);
  EXPECT_EQ(lock.stats().write_acquires, static_cast<std::uint64_t>(kWrites));
}

TYPED_TEST(RwLockTest, MultipleWritersAreMutuallyExclusive) {
  TypeParam lock;
  volatile long counter = 0;
  constexpr int kWriters = 4;
  constexpr long kEach = 500;
  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&] {
      for (long w = 0; w < kEach; ++w) {
        lock.write_lock();
        counter = counter + 1;
        lock.write_unlock();
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(counter, kWriters * kEach);
}

TYPED_TEST(RwLockTest, ReaderSlotsAreRecycled) {
  TypeParam lock;
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto token = lock.register_reader();
      token.read_lock();
      token.read_unlock();
    });
    t.join();
  }
  EXPECT_EQ(lock.stats().read_acquires, 8u);
}

TYPED_TEST(RwLockTest, ConcurrentReadersOverlapFreely) {
  // Two readers must be able to hold the lock at once: park one inside the
  // critical section and verify the other still gets in.
  TypeParam lock;
  std::atomic<bool> first_in{false};
  std::atomic<bool> second_done{false};
  std::thread r1([&] {
    auto tok = lock.register_reader();
    tok.read_lock();
    first_in.store(true, std::memory_order_release);
    while (!second_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    tok.read_unlock();
  });
  std::thread r2([&] {
    auto tok = lock.register_reader();
    while (!first_in.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    tok.read_lock();  // must not block on r1
    tok.read_unlock();
    second_done.store(true, std::memory_order_release);
  });
  r1.join();
  r2.join();
  SUCCEED();
}

TEST(RwLockAsymmetry, ArwReadersPayNoSerializationWithoutWriters) {
  ArwLock lock;
  auto token = lock.register_reader();
  for (int i = 0; i < 100; ++i) {
    token.read_lock();
    token.read_unlock();
  }
  EXPECT_EQ(lock.stats().serializations, 0u);
}

TEST(RwLockAsymmetry, WriterSerializesEachLiveReaderUnderArw) {
  ArwLock lock;
  std::atomic<bool> stop{false};
  std::atomic<int> registered{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto token = lock.register_reader();
      registered.fetch_add(1);
      while (!stop.load(std::memory_order_acquire)) {
        token.read_lock();
        token.read_unlock();
      }
    });
  }
  while (registered.load() < kReaders) std::this_thread::yield();

  lock.write_lock();
  lock.write_unlock();
  // Without the waiting heuristic every live reader slot is signaled.
  EXPECT_EQ(lock.stats().signal_clears, static_cast<std::uint64_t>(kReaders));
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

TEST(RwLockAsymmetry, ArwPlusAcksAvoidSignalsForActiveReaders) {
  ArwPlusLock lock;
  std::atomic<bool> stop{false};
  std::atomic<int> registered{0};
  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      auto token = lock.register_reader();
      registered.fetch_add(1);
      while (!stop.load(std::memory_order_acquire)) {
        token.read_lock();
        token.read_unlock();
      }
    });
  }
  while (registered.load() < kReaders) std::this_thread::yield();

  std::uint64_t acks = 0;
  for (int w = 0; w < 50; ++w) {
    lock.write_lock();
    lock.write_unlock();
  }
  acks = lock.stats().ack_clears;
  // Busy readers pass through lock/unlock constantly, so at least some
  // writer rounds must have been satisfied by acknowledgments instead of
  // signals (on a 1-core host the exact split is scheduling-dependent).
  EXPECT_GT(acks, 0u);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

TEST(RwLockBatched, MixedWaveKeepsMutualExclusionUnderHeuristic) {
  // The batched ARW+ writer round classifies slots (ack-cleared vs.
  // must-signal) and fans the signals out as one wave. Mix idle registered
  // readers (which never ack — always the signal path) with active readers
  // (which ack at lock/unlock — usually the ack path) so a single writer
  // round exercises both classes, then check data integrity.
  ArwPlusLock lock;
  volatile long data[4] = {0, 0, 0, 0};
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> mismatch{false};

  constexpr int kIdleReaders = 2;
  constexpr int kActiveReaders = 2;
  constexpr int kWriters = 2;
  // Idle readers never ack, so every acquire burns the full ARW+ grace
  // budget before signaling — keep the count modest.
  constexpr long kWritesEach = 50;

  std::vector<std::thread> threads;
  for (int i = 0; i < kIdleReaders; ++i) {
    threads.emplace_back([&] {
      auto token = lock.register_reader();
      ready.fetch_add(1);
      // Registered but never locking: the writer must signal this slot.
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kActiveReaders; ++i) {
    threads.emplace_back([&] {
      auto token = lock.register_reader();
      ready.fetch_add(1);
      while (!stop.load(std::memory_order_acquire)) {
        token.read_lock();
        const long a = data[0], b = data[1], c = data[2], d = data[3];
        if (!(a == b && b == c && c == d)) {
          mismatch.store(true, std::memory_order_relaxed);
        }
        token.read_unlock();
      }
    });
  }
  while (ready.load() < kIdleReaders + kActiveReaders) {
    std::this_thread::yield();
  }

  std::vector<std::thread> writers;
  for (int i = 0; i < kWriters; ++i) {
    writers.emplace_back([&] {
      for (long w = 0; w < kWritesEach; ++w) {
        lock.write_lock();
        for (int j = 0; j < 4; ++j) data[j] = data[j] + 1;
        lock.write_unlock();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(data[0], kWriters * kWritesEach);
  EXPECT_EQ(data[3], kWriters * kWritesEach);
  // Idle readers never ack, so every writer round signaled at least them.
  EXPECT_GE(lock.stats().signal_clears,
            static_cast<std::uint64_t>(kWriters * kWritesEach));
}

TEST(RwLockBatched, BatchedAndSequentialWritersAccountIdentically) {
  // Same scenario on both fan-out paths: 3 idle registered readers, one
  // write. Both writers must signal exactly the 3 silent slots.
  const auto run = [](auto& lock) {
    std::atomic<bool> stop{false};
    std::atomic<int> ready{0};
    std::vector<std::thread> readers;
    for (int i = 0; i < 3; ++i) {
      readers.emplace_back([&] {
        auto token = lock.register_reader();
        ready.fetch_add(1);
        while (!stop.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    }
    while (ready.load() < 3) std::this_thread::yield();
    lock.write_lock();
    lock.write_unlock();
    const RwLockStats st = lock.stats();
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    return st;
  };

  ArwLock batched;
  ArwLockSequential sequential;
  const RwLockStats b = run(batched);
  const RwLockStats s = run(sequential);
  EXPECT_EQ(b.signal_clears, 3u);
  EXPECT_EQ(s.signal_clears, 3u);
  EXPECT_EQ(b.serializations, 3u);
  EXPECT_EQ(s.serializations, 3u);
  EXPECT_EQ(b.ack_clears, 0u);
  EXPECT_EQ(s.ack_clears, 0u);
}

TEST(RwLockStats, ReadableWhileWriterIsMidAcquire) {
  // stats() may race a writer mid-write_lock; with atomic counters this is
  // well-defined, and observed totals must be monotonic.
  ArwLock lock;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      lock.write_lock();
      lock.write_unlock();
    }
  });
  std::uint64_t last = 0;
  bool monotonic = true;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t now = lock.stats().write_acquires;
    if (now < last) monotonic = false;
    last = now;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_TRUE(monotonic);
  EXPECT_GE(lock.stats().write_acquires, last);
}

}  // namespace
}  // namespace lbmf
