#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lbmf/core/lmfence.hpp"

namespace lbmf {
namespace {

// GuardedLocation behaviour must be identical across policies; exercise the
// common surface through a typed test.
template <typename P>
class GuardedLocationTest : public ::testing::Test {};

using AllPolicies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                     AsymmetricMembarrierFence, UnsafeNoFence>;
TYPED_TEST_SUITE(GuardedLocationTest, AllPolicies);

TYPED_TEST(GuardedLocationTest, InitialValueAndLocalRoundTrip) {
  GuardedLocation<int, TypeParam> loc(41);
  loc.bind_primary();
  EXPECT_EQ(loc.local_read(), 41);
  loc.lmfence_store(42);
  EXPECT_EQ(loc.local_read(), 42);
  loc.plain_store(0);
  EXPECT_EQ(loc.local_read(), 0);
  loc.unbind_primary();
}

TYPED_TEST(GuardedLocationTest, RemoteReadWithoutPrimaryIsPlainLoad) {
  GuardedLocation<int, TypeParam> loc(5);
  // No primary bound: remote_read must still work (no serialization target).
  EXPECT_EQ(loc.remote_read(), 5);
  EXPECT_EQ(loc.weak_read(), 5);
}

TYPED_TEST(GuardedLocationTest, UnbindTwiceIsIdempotent) {
  GuardedLocation<int, TypeParam> loc;
  loc.bind_primary();
  loc.unbind_primary();
  loc.unbind_primary();  // second call must be a no-op
  SUCCEED();
}

TYPED_TEST(GuardedLocationTest, SecondaryObservesPrimaryStores) {
  GuardedLocation<long, TypeParam> loc(0);
  std::atomic<bool> bound{false};
  std::atomic<bool> stop{false};

  std::thread primary([&] {
    loc.bind_primary();
    bound.store(true, std::memory_order_release);
    long v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      loc.lmfence_store(++v);
    }
    loc.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  long prev = 0;
  for (int i = 0; i < 100; ++i) {
    const long v = loc.remote_read();
    EXPECT_GE(v, prev);  // values only grow; remote reads are never stale-er
    prev = v;
  }
  stop.store(true, std::memory_order_release);
  primary.join();
  EXPECT_GT(loc.remote_read(), 0);
}

TEST(GuardedLocation, StoreThenLoadOtherLocationOrdering) {
  // The l-mfence contract on the primary path, checked through the software
  // prototype: primary does lmfence_store(flag) then reads data written by
  // the secondary; secondary writes data, fences, serializes the primary,
  // then reads flag. If the secondary reads flag == 0, the primary must
  // subsequently see the secondary's data write (the Dekker duality).
  GuardedLocation<int, AsymmetricSignalFence> flag(0);
  std::atomic<int> data{0};
  std::atomic<bool> bound{false};
  std::atomic<bool> primary_saw_data{false};
  std::atomic<bool> secondary_entered{false};

  std::thread primary([&] {
    flag.bind_primary();
    bound.store(true, std::memory_order_release);
    // Announce intent, then check whether the secondary got in first.
    flag.lmfence_store(1);
    // Spin until either we own the race or the secondary signalled entry.
    while (!secondary_entered.load(std::memory_order_acquire) &&
           data.load(std::memory_order_acquire) == 0) {
    }
    if (data.load(std::memory_order_acquire) != 0) {
      primary_saw_data.store(true, std::memory_order_release);
    }
    flag.plain_store(0);
    while (!secondary_entered.load(std::memory_order_acquire)) {
    }
    flag.unbind_primary();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  data.store(77, std::memory_order_relaxed);
  full_fence();
  (void)flag.remote_read();  // serialize primary; value irrelevant here
  secondary_entered.store(true, std::memory_order_release);
  primary.join();
  EXPECT_TRUE(primary_saw_data.load());
}

}  // namespace
}  // namespace lbmf
