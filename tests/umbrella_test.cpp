// The umbrella header must pull in the entire public surface cleanly.
#include "lbmf/lbmf.hpp"

#include <gtest/gtest.h>

TEST(Umbrella, EverythingIsVisible) {
  lbmf::GuardedLocation<int> loc(1);
  EXPECT_EQ(loc.weak_read(), 1);
  lbmf::sim::SimConfig cfg;
  EXPECT_EQ(cfg.protocol, lbmf::sim::Protocol::kMesi);
  lbmf::model::CostTable costs;
  EXPECT_GT(costs.signal_roundtrip_cycles, costs.lest_roundtrip_cycles);
}
