#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/scheduler.hpp"
#include "lbmf/ws/task.hpp"

namespace lbmf::ws {
namespace {

template <typename P>
class ChaseLevTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(ChaseLevTest, Policies);

TYPED_TEST(ChaseLevTest, LifoOwnerFifoThief) {
  ChaseLevDeque<TypeParam> d;
  TaskGroupBase g;
  auto mk = [&g] { return ClosureTask(g, [] {}); };
  auto t1 = mk();
  auto t2 = mk();
  auto t3 = mk();
  d.push(&t1);
  d.push(&t2);
  d.push(&t3);
  EXPECT_EQ(d.size_estimate(), 3);
  EXPECT_EQ(d.take(), &t3);
  EXPECT_EQ(d.steal(), &t1);
  EXPECT_EQ(d.take(), &t2);
  EXPECT_EQ(d.take(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.looks_empty());
}

TYPED_TEST(ChaseLevTest, SingleElementRaceResolvesToOneWinner) {
  // Repeatedly race the owner's take against one thief's steal over a
  // 1-element deque; each element must be won exactly once.
  ChaseLevDeque<TypeParam> d;
  TaskGroupBase g;
  std::atomic<bool> ready{false};
  std::atomic<bool> done{false};
  std::atomic<long> owner_wins{0}, thief_wins{0};
  constexpr long kRounds = 5000;

  auto noop = [] {};
  std::vector<ClosureTask<decltype(noop)>> tasks;
  tasks.reserve(kRounds);
  for (long i = 0; i < kRounds; ++i) tasks.emplace_back(g, noop);

  std::atomic<long> round{-1};

  std::thread owner([&] {
    auto handle = TypeParam::register_primary();
    d.set_owner_handle(handle);
    ready.store(true, std::memory_order_release);
    for (long i = 0; i < kRounds; ++i) {
      d.push(&tasks[static_cast<std::size_t>(i)]);
      round.store(i, std::memory_order_release);
      if (d.take() != nullptr) owner_wins.fetch_add(1);
      // Wait until the element is definitely consumed by someone.
      while (owner_wins.load() + thief_wins.load() < i + 1) {
        std::this_thread::yield();
      }
    }
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    TypeParam::unregister_primary(handle);
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread thief([&] {
    long seen = -1;
    while (owner_wins.load() + thief_wins.load() < kRounds) {
      const long r = round.load(std::memory_order_acquire);
      if (r > seen) {
        if (d.steal() != nullptr) thief_wins.fetch_add(1);
        seen = r;
      } else {
        std::this_thread::yield();
      }
    }
  });
  thief.join();
  done.store(true, std::memory_order_release);
  owner.join();

  EXPECT_EQ(owner_wins.load() + thief_wins.load(), kRounds);
  EXPECT_TRUE(d.looks_empty());
}

TYPED_TEST(ChaseLevTest, EveryTaskConsumedExactlyOnceUnderContention) {
  ChaseLevDeque<TypeParam> d;
  TaskGroupBase g;
  std::atomic<long> executed{0};
  auto body = [&executed] { executed.fetch_add(1, std::memory_order_relaxed); };
  using Task = ClosureTask<decltype(body)>;
  constexpr long kTasks = 20000;
  std::vector<Task> tasks;
  tasks.reserve(kTasks);
  for (long i = 0; i < kTasks; ++i) tasks.emplace_back(g, body);

  std::atomic<bool> ready{false};
  std::atomic<bool> thieves_done{false};

  std::thread owner([&] {
    auto handle = TypeParam::register_primary();
    d.set_owner_handle(handle);
    ready.store(true, std::memory_order_release);
    long pushed = 0;
    while (pushed < kTasks) {
      const long batch = std::min<long>(64, kTasks - pushed);
      for (long i = 0; i < batch; ++i) {
        g.add_pending();
        d.push(&tasks[static_cast<std::size_t>(pushed + i)]);
      }
      pushed += batch;
      for (long i = 0; i < batch / 2; ++i) {
        if (TaskBase* t = d.take()) t->run();
      }
    }
    while (TaskBase* t = d.take()) t->run();
    while (!thieves_done.load(std::memory_order_acquire)) {
      if (TaskBase* t = d.take()) t->run();
      std::this_thread::yield();
    }
    TypeParam::unregister_primary(handle);
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kThieves = 3;
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (executed.load(std::memory_order_acquire) < kTasks) {
        if (TaskBase* task = d.steal()) {
          task->run();
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : thieves) th.join();
  thieves_done.store(true, std::memory_order_release);
  owner.join();

  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_TRUE(g.done());  // run() decremented once per task — no double runs
}

// ------------------------------------------- scheduler over Chase-Lev

// TaskGroup is scheduler-type-specific (its spawn resolves the worker TLS
// of that instantiation), so the recursion is templated on the scheduler.
template <typename Sched>
long fib_on(long n) {
  if (n < 2) return n;
  long a = 0;
  typename Sched::TaskGroup tg;
  auto t = tg.capture([n, &a] { a = fib_on<Sched>(n - 1); });
  tg.spawn(t);
  const long b = fib_on<Sched>(n - 2);
  tg.sync();
  return a + b;
}

TYPED_TEST(ChaseLevTest, SchedulerRunsOnChaseLevBackend) {
  using Sched = Scheduler<TypeParam, ChaseLevDeque>;
  Sched sched(3);
  long result = 0;
  sched.run([&] { result = fib_on<Sched>(18); });
  EXPECT_EQ(result, 2584);
  const SchedulerStats s = sched.stats();
  EXPECT_GT(s.spawns, 1000u);
  // Conservation under Chase-Lev: fast takes + contested takes that won +
  // successful steals account for every spawned task.
  EXPECT_EQ(s.spawns,
            s.pops_fast + (s.pops_conflict - s.pops_empty) + s.steals_success);
}

TYPED_TEST(ChaseLevTest, SchedulerBackendsComputeIdenticalResults) {
  using TheSched = Scheduler<TypeParam, TheDeque>;
  using ClSched = Scheduler<TypeParam, ChaseLevDeque>;
  TheSched the_sched(2);
  ClSched cl_sched(2);
  long a = 0, b = 0;
  the_sched.run([&] { a = fib_on<TheSched>(15); });
  cl_sched.run([&] { b = fib_on<ClSched>(15); });
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, 610);
}

}  // namespace
}  // namespace lbmf::ws
