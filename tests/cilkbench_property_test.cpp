// Parameterized property sweeps over the Fig. 4 benchmark kernels: sizes,
// seeds and known mathematical invariants (reconstruction, maximum
// principle, reference counts).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lbmf/cilkbench/dense.hpp"
#include "lbmf/cilkbench/fft.hpp"
#include "lbmf/cilkbench/heat.hpp"
#include "lbmf/cilkbench/recursive.hpp"
#include "lbmf/cilkbench/sort.hpp"

namespace lbmf::cilkbench {
namespace {

using P = SymmetricFence;

ws::Scheduler<P>& shared_sched() {
  static ws::Scheduler<P> sched(2);
  return sched;
}

// --------------------------------------------------------------- dense sweeps

class MatmulSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MatmulSizes, MatchesNaive) {
  const std::size_t n = GetParam();
  Matrix a = Matrix::random(n, n, n);
  Matrix b = Matrix::random(n, n, n + 1);
  Matrix ref(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t j = 0; j < n; ++j) ref(i, j) += a(i, k) * b(k, j);
    }
  }
  Matrix c(n, n);
  shared_sched().run([&] {
    detail::matmul_rec<P>(block_of(c), block_of(a), block_of(b), n, 1.0);
  });
  for (std::size_t i = 0; i < n * n; ++i) {
    ASSERT_NEAR(c.data()[i], ref.data()[i], 1e-9) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulSizes,
                         ::testing::Values(2, 4, 16, 32, 64, 128));

class FactorizationSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FactorizationSizes, LuReconstructs) {
  const std::size_t n = GetParam();
  Matrix orig = Matrix::random_spd(n, n * 3 + 1);
  Matrix a = orig;
  shared_sched().run([&] { detail::lu_rec<P>(block_of(a), n); });
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0;
      const std::size_t lim = std::min(i, j + 1);
      for (std::size_t k = 0; k < lim; ++k) s += a(i, k) * a(k, j);
      if (i <= j) s += a(i, j);
      max_err = std::max(max_err, std::abs(s - orig(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-8) << "n=" << n;
}

TEST_P(FactorizationSizes, CholeskyReconstructs) {
  const std::size_t n = GetParam();
  Matrix orig = Matrix::random_spd(n, n * 5 + 7);
  Matrix a = orig;
  shared_sched().run([&] { detail::cholesky_rec<P>(block_of(a), n); });
  double max_err = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0;
      for (std::size_t k = 0; k <= j; ++k) s += a(i, k) * a(j, k);
      max_err = std::max(max_err, std::abs(s - orig(i, j)));
    }
  }
  EXPECT_LT(max_err, 1e-8) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FactorizationSizes,
                         ::testing::Values(4, 8, 16, 32, 64, 128));

// ----------------------------------------------------------------- fft sweep

class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesDftAndParseval) {
  const std::size_t n = GetParam();
  std::vector<Complex> in(n);
  Xoshiro256 rng(n);
  for (auto& x : in) x = Complex(rng.next_double() - 0.5, 0.0);
  std::vector<Complex> out(n);
  auto copy = in;
  shared_sched().run(
      [&] { detail::fft_rec<P>(copy.data(), n, 1, out.data()); });

  const auto ref = dft_reference(in);
  double max_err = 0, time_energy = 0, freq_energy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    max_err = std::max(max_err, std::abs(out[i] - ref[i]));
    time_energy += std::norm(in[i]);
    freq_energy += std::norm(out[i]);
  }
  EXPECT_LT(max_err, 1e-7) << "n=" << n;
  // Parseval: sum |x|^2 == (1/n) sum |X|^2.
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
              1e-6 * time_energy + 1e-9)
      << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FftSizes,
                         ::testing::Values(2, 8, 64, 256, 1024));

// ---------------------------------------------------------------- heat sweep

TEST(HeatProperty, MaximumPrincipleHolds) {
  // Jacobi iterates of the Laplace stencil stay within the boundary value
  // range: with a 100-degree edge and 0-degree interior, every cell stays
  // in [0, 100] forever.
  constexpr std::size_t nx = 48, ny = 48;
  Matrix cur(nx, ny);
  Matrix next(nx, ny);
  for (std::size_t i = 0; i < nx; ++i) {
    cur(i, 0) = 100.0;
    next(i, 0) = 100.0;
  }
  shared_sched().run([&] {
    for (int t = 0; t < 64; ++t) {
      for (std::size_t i = 1; i + 1 < nx; ++i) {
        for (std::size_t j = 1; j + 1 < ny; ++j) {
          next(i, j) = 0.25 * (cur(i - 1, j) + cur(i + 1, j) +
                               cur(i, j - 1) + cur(i, j + 1));
        }
      }
      std::swap(cur, next);
    }
  });
  for (std::size_t i = 0; i < nx * ny; ++i) {
    ASSERT_GE(cur.data()[i], 0.0);
    ASSERT_LE(cur.data()[i], 100.0);
  }
  // Heat must have diffused: a cell adjacent to the hot edge is warm.
  EXPECT_GT(cur(nx / 2, 1), 1.0);
}

// --------------------------------------------------------------- count sweeps

class NqueensSizes
    : public ::testing::TestWithParam<std::pair<int, std::uint64_t>> {};

TEST_P(NqueensSizes, KnownCounts) {
  const auto [n, expected] = GetParam();
  std::uint64_t got = 0;
  shared_sched().run([&] { got = nqueens<P>(n); });
  EXPECT_EQ(got, expected) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NqueensSizes,
    ::testing::Values(std::pair{1, 1ull}, std::pair{2, 0ull},
                      std::pair{3, 0ull}, std::pair{4, 2ull},
                      std::pair{5, 10ull}, std::pair{6, 4ull},
                      std::pair{7, 40ull}, std::pair{8, 92ull},
                      std::pair{9, 352ull}));

class FibSizes : public ::testing::TestWithParam<int> {};

TEST_P(FibSizes, MatchesClosedForm) {
  const int n = GetParam();
  std::uint64_t iterative = 0, a = 0, b = 1;
  for (int i = 0; i < n; ++i) {
    iterative = a;
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  iterative = a;
  std::uint64_t got = 0;
  shared_sched().run([&] { got = fib<P>(n); });
  EXPECT_EQ(got, iterative) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FibSizes,
                         ::testing::Values(0, 1, 2, 3, 10, 15, 20));

class KnapsackSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KnapsackSeeds, MatchesDynamicProgramming) {
  const std::uint64_t seed = GetParam();
  const auto items = make_knapsack_items(14, seed);
  int cap = 0;
  for (const auto& it : items) cap += it.weight;
  cap /= 2;
  std::vector<int> best(static_cast<std::size_t>(cap) + 1, 0);
  for (const auto& it : items) {
    for (int c = cap; c >= it.weight; --c) {
      best[static_cast<std::size_t>(c)] =
          std::max(best[static_cast<std::size_t>(c)],
                   best[static_cast<std::size_t>(c - it.weight)] + it.value);
    }
  }
  std::uint64_t got = 0;
  shared_sched().run([&] { got = knapsack<P>(14, seed); });
  EXPECT_EQ(got, static_cast<std::uint64_t>(best.back())) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KnapsackSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

class SortSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSizes, ChecksumsStableAcrossWorkerCounts) {
  const std::size_t n = GetParam();
  std::uint64_t h1 = 0, h2 = 0;
  shared_sched().run([&] { h1 = cilksort<P>(n); });
  ws::Scheduler<P> four(4);
  four.run([&] { h2 = cilksort<P>(n); });
  EXPECT_EQ(h1, h2) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SortSizes,
                         ::testing::Values(3, 100, 1024, 4097, 30'000));

}  // namespace
}  // namespace lbmf::cilkbench
