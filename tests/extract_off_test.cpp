// The other half of the lbmf::extract contract: WITHOUT -DLBMF_EXTRACT=1
// (this TU, like every production target) the annotation layer must cost
// exactly nothing — kEnabled is false, every LBMF_* macro expands to
// `((void)0)` without evaluating (or even name-looking-up) its arguments,
// and the runtime headers define no recording functions at all.

#include <gtest/gtest.h>

#include "lbmf/extract/annotate.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/deque.hpp"

static_assert(!lbmf::extract::kEnabled,
              "extract_off_test must build without LBMF_EXTRACT");
static_assert(LBMF_EXTRACT_ENABLED == 0,
              "annotation layer must report itself disabled");

namespace {

TEST(ExtractOff, MacrosCompileAwayWithoutEvaluatingArguments) {
  // None of these identifiers exist; if any macro looked at its arguments
  // this TU would not compile. That is the whole test.
  LBMF_ROLE(no_such_recorder, "ghost", 1000);
  LBMF_INIT(no_such_recorder, "X", 1);
  LBMF_LOAD(no_such_role, no_such_reg, "X");
  LBMF_STORE(no_such_role, "X", undeclared_value);
  LBMF_STORE_REG(no_such_role, "X", no_such_reg);
  LBMF_FENCE_HOLE(no_such_role, "X", 1);
  LBMF_MFENCE(no_such_role);
  LBMF_LMFENCE(no_such_role, "X", 1);
  LBMF_RMW_ACQUIRE(no_such_role, "G");
  LBMF_RMW_RELEASE(no_such_role, "G");
  LBMF_MOV(no_such_role, no_such_reg, 5);
  LBMF_ADD(no_such_role, no_such_reg, -1);
  LBMF_LABEL(no_such_role, "somewhere");
  LBMF_BEQ(no_such_role, no_such_reg, 0, "somewhere");
  LBMF_BNE(no_such_role, no_such_reg, 0, "somewhere");
  LBMF_JMP(no_such_role, "somewhere");
  LBMF_CRITICAL(no_such_role);
  LBMF_CRITICAL_ENTER(no_such_role);
  LBMF_CRITICAL_EXIT(no_such_role);
  LBMF_DELAY(no_such_role, 20);
  LBMF_HALT(no_such_role);
  LBMF_FINAL_PROPERTY(no_such_recorder, "X", 1, "Y", 0);
  LBMF_SYMMETRIC(no_such_recorder, "a", "b");
  SUCCEED();
}

TEST(ExtractOff, MacroIsAnExpressionStatement) {
  // `((void)0)` composes like any other void expression — usable in an
  // if/else without braces, the shape annotated runtime code ends up with.
  const bool flag = true;
  if (flag)
    LBMF_MFENCE(whatever);
  else
    LBMF_HALT(whatever);
  SUCCEED();
}

// The annotated spec functions are fenced behind LBMF_EXTRACT_ENABLED, so
// with extraction off the runtime headers (all three included above) must
// not declare them — this TU compiling at all is that guarantee, and
// run_extract_gates.sh additionally nm-checks a production binary for
// stray record_*_protocol symbols.

}  // namespace
