// lbmf::xval unit tests: the pieces of the hardware cross-validation
// harness that do NOT need a multi-core x86 host — the observation
// schema, the reachable/violating set computation (pure simulator), the
// observed-vs-reachable differ (fed hand-built inputs, including a
// deliberately weakened model that must be reported unsound), and the
// JSON artifact writer. The native stress leg itself runs when the host
// allows (>= 2 CPUs, x86-64) and skips loudly otherwise — the CI gate
// script exercises it for real on the x86 runners.

#include <gtest/gtest.h>

#include <string>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/xval/xval.hpp"

namespace lbmf::xval {
namespace {

// Classic SB: both-zero is TSO-reachable; four terminal outcomes total.
constexpr const char* kStoreBuffer = R"(
cpu 0:
  store [x], 1
  load r0, [y]
  halt
cpu 1:
  store [y], 1
  load r0, [x]
  halt
)";

// Fig. 1 with no fences: the both-enter interleaving violates mutual
// exclusion, so its terminal outcome lands in the violating (tainted) set.
constexpr const char* kBrokenDekker = R"(
cpu 0:
  store [L1], 1
  load r0, [L2]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  halt
cpu 1:
  store [L2], 1
  load r0, [L1]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  halt
)";

sim::AssembleResult assemble_or_die(const char* src) {
  sim::AssembleResult r = sim::assemble(src);
  EXPECT_TRUE(r.ok()) << (r.error ? r.error->to_string() : "");
  return r;
}

// ------------------------------------------------------------- schema

TEST(XvalSchema, CoversRegistersAndLocations) {
  const sim::AssembleResult a = assemble_or_die(kStoreBuffer);
  const ObservationSchema s = ObservationSchema::from(a);
  ASSERT_EQ(s.reg_masks.size(), 2u);
  EXPECT_EQ(s.reg_masks[0], 1u);  // r0 written on each cpu
  EXPECT_EQ(s.reg_masks[1], 1u);
  ASSERT_EQ(s.locations.size(), 2u);  // x and y, named, ascending
  EXPECT_LT(s.locations[0].first, s.locations[1].first);
}

TEST(XvalSchema, FormatIsDeterministic) {
  const sim::AssembleResult a = assemble_or_die(kStoreBuffer);
  const ObservationSchema s = ObservationSchema::from(a);
  const std::string out = s.format(
      [](std::size_t, unsigned r) { return static_cast<sim::Word>(r); },
      [](sim::Addr) { return sim::Word{7}; },
      [](std::size_t cpu) { return cpu == 1; });
  // cpu1 is stuck (marked '!'), registers and memory appear in order.
  EXPECT_NE(out.find("cpu0{r0=0}"), std::string::npos);
  EXPECT_NE(out.find("cpu1!{r0=0}"), std::string::npos);
  EXPECT_NE(out.find("=7"), std::string::npos);
}

// ------------------------------------------------- reachable/violating

TEST(XvalReachable, StoreBufferHasFourOutcomesNoTaint) {
  const sim::AssembleResult a = assemble_or_die(kStoreBuffer);
  const ObservationSchema s = ObservationSchema::from(a);
  const ReachableSets sets = compute_reachable(a, s);
  EXPECT_TRUE(sets.complete);
  EXPECT_EQ(sets.reachable.size(), 4u);  // r0 in {0,1} on each cpu
  EXPECT_TRUE(sets.violating.empty());
  EXPECT_EQ(sets.safe.size(), 4u);
}

TEST(XvalReachable, BrokenDekkerTaintsTheBothZeroOutcome) {
  const sim::AssembleResult a = assemble_or_die(kBrokenDekker);
  const ObservationSchema s = ObservationSchema::from(a);
  const ReachableSets sets = compute_reachable(a, s);
  EXPECT_TRUE(sets.complete);
  EXPECT_GT(sets.violating_states, 0u);
  // The violating interleavings all terminate with both flags set and
  // both r0 reads zero — the store-buffer outcome of Fig. 1.
  ASSERT_EQ(sets.violating.size(), 1u);
  const std::string& tainted = *sets.violating.begin();
  EXPECT_NE(tainted.find("cpu0{r0=0}"), std::string::npos);
  EXPECT_NE(tainted.find("cpu1{r0=0}"), std::string::npos);
  // Tainted outcomes are also reachable outcomes.
  EXPECT_TRUE(sets.reachable.count(tainted));
}

// ------------------------------------------------------------- differ

NativeResult fake_native() {
  NativeResult n;
  n.iterations = 100;
  n.observed["cpu0{r0=0} cpu1{r0=1} mem{x=1 y=1}"] = 60;
  n.observed["cpu0{r0=0} cpu1{r0=0} mem{x=1 y=1}"] = 40;
  return n;
}

TEST(XvalDiff, SoundModelExplainsEverything) {
  ReachableSets sets;
  sets.reachable = {"cpu0{r0=0} cpu1{r0=1} mem{x=1 y=1}",
                    "cpu0{r0=0} cpu1{r0=0} mem{x=1 y=1}",
                    "cpu0{r0=1} cpu1{r0=1} mem{x=1 y=1}"};
  sets.safe = sets.reachable;
  const XvalReport rep = diff_outcomes("sb", fake_native(), sets);
  EXPECT_TRUE(rep.model_sound());
  EXPECT_TRUE(rep.unexplained.empty());
  // The never-observed outcome is coverage, not error.
  ASSERT_EQ(rep.unobserved.size(), 1u);
  EXPECT_EQ(rep.unobserved[0], "cpu0{r0=1} cpu1{r0=1} mem{x=1 y=1}");
  EXPECT_NEAR(rep.coverage(), 2.0 / 3.0, 1e-9);
}

// The acceptance-critical direction: weaken the model (drop the TSO
// store-buffer outcome from the reachable set, as an SC-only simulator
// would) and the differ must flag the hardware observation as
// unexplained — observed ⊄ reachable is a model-soundness failure.
TEST(XvalDiff, WeakenedModelIsReportedUnsound) {
  ReachableSets sc_only;
  sc_only.reachable = {"cpu0{r0=0} cpu1{r0=1} mem{x=1 y=1}",
                       "cpu0{r0=1} cpu1{r0=1} mem{x=1 y=1}"};
  sc_only.safe = sc_only.reachable;
  const XvalReport rep = diff_outcomes("sb-sc", fake_native(), sc_only);
  EXPECT_FALSE(rep.model_sound());
  ASSERT_EQ(rep.unexplained.size(), 1u);
  EXPECT_EQ(rep.unexplained[0], "cpu0{r0=0} cpu1{r0=0} mem{x=1 y=1}");
}

TEST(XvalDiff, ViolatingObservationsAreCounted) {
  ReachableSets sets;
  sets.reachable = {"cpu0{r0=0} cpu1{r0=1} mem{x=1 y=1}",
                    "cpu0{r0=0} cpu1{r0=0} mem{x=1 y=1}"};
  sets.safe = {"cpu0{r0=0} cpu1{r0=1} mem{x=1 y=1}"};
  sets.violating = {"cpu0{r0=0} cpu1{r0=0} mem{x=1 y=1}"};
  const XvalReport rep = diff_outcomes("bd", fake_native(), sets);
  EXPECT_TRUE(rep.model_sound());  // tainted outcomes are still reachable
  EXPECT_EQ(rep.violations_observed, 40u);
}

// ------------------------------------------------------------- native leg

TEST(XvalNative, StressRunsWhenHostAllows) {
  std::string reason;
  if (!native_host_supported(2, &reason)) {
    GTEST_SKIP() << "native leg unsupported here: " << reason;
  }
  const sim::AssembleResult a = assemble_or_die(kStoreBuffer);
  const ObservationSchema s = ObservationSchema::from(a);
  NativeOptions opts;
  opts.iterations = 2'000;
  const NativeResult n = run_native(a, s, opts);
  EXPECT_EQ(n.iterations, 2'000u);
  EXPECT_EQ(n.wedged_iterations, 0u);
  EXPECT_GE(n.observed.size(), 1u);
  // Every observation must be simulator-reachable (model soundness).
  const ReachableSets sets = compute_reachable(a, s);
  for (const auto& [obs, count] : n.observed) {
    EXPECT_TRUE(sets.reachable.count(obs)) << "unexplained: " << obs;
  }
}

// ------------------------------------------------------------------ JSON

TEST(XvalJson, ReportSerializes) {
  ReachableSets sets;
  sets.reachable = {"a", "b"};
  sets.safe = {"a"};
  sets.violating = {"b"};
  NativeResult n;
  n.iterations = 10;
  n.observed["a"] = 9;
  n.observed["b"] = 1;
  XvalReport rep = diff_outcomes("demo", n, sets);
  rep.arch = "x86_64";
  rep.online_cpus = 4;
  const std::string j = to_json(rep);
  EXPECT_NE(j.find("\"xval\":\"demo\""), std::string::npos);
  EXPECT_NE(j.find("\"model_sound\":true"), std::string::npos);
  EXPECT_NE(j.find("\"violations_observed\":1"), std::string::npos);
  EXPECT_NE(j.find("\"reachable\""), std::string::npos);
  // Nothing unexplained: the array must be empty.
  EXPECT_EQ(j.find("\"unexplained\":[\""), std::string::npos);
}

}  // namespace
}  // namespace lbmf::xval
