// Property-based tests of the simulator: random programs and random
// schedules must never break the architectural invariants (MESI SWMR,
// clean-value agreement, link validity), must preserve per-location
// sequential consistency, and deterministic replays must agree.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/util/rng.hpp"

namespace lbmf::sim {
namespace {

// ------------------------------------------------------------ fuzz programs

/// Generate a random straight-line program over a small set of addresses:
/// stores, loads, mfences, and full lmfence expansions.
Program random_program(Xoshiro256& rng, int len, int cpu_id) {
  ProgramBuilder b("fuzz-" + std::to_string(cpu_id));
  for (int i = 0; i < len; ++i) {
    const Addr a = static_cast<Addr>(rng.next_below(4));
    const Word v = static_cast<Word>(rng.next_below(100)) + 1;
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:
        b.store(a, v);
        break;
      case 3:
      case 4:
      case 5:
        b.load(static_cast<std::uint8_t>(rng.next_below(4)), a);
        break;
      case 6:
        b.mfence();
        break;
      case 7:
      case 8:
        b.lmfence(a, v);
        break;
      default:
        b.load_exclusive(static_cast<std::uint8_t>(rng.next_below(4)), a);
        break;
    }
  }
  b.halt();
  return b.build();
}

class SimFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimFuzz, RandomProgramsKeepInvariantsUnderRandomSchedules) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  SimConfig cfg;
  cfg.num_cpus = 2 + rng.next_below(2);      // 2 or 3 CPUs
  cfg.sb_capacity = 1 + rng.next_below(4);   // tiny buffers stress drains
  cfg.cache_capacity = 2 + rng.next_below(6);  // evictions of guarded lines
  Machine m(cfg);
  for (std::size_t c = 0; c < cfg.num_cpus; ++c) {
    m.load_program(c, random_program(rng, 12, static_cast<int>(c)));
  }

  Xoshiro256 sched(seed ^ 0xabcdef);
  std::uint64_t steps = 0;
  while (!m.finished()) {
    Choice options[16];
    std::size_t n = 0;
    for (std::size_t c = 0; c < cfg.num_cpus; ++c) {
      if (m.action_enabled(c, Action::Execute)) {
        options[n++] = {static_cast<std::uint8_t>(c), Action::Execute};
      }
      if (m.action_enabled(c, Action::Drain)) {
        options[n++] = {static_cast<std::uint8_t>(c), Action::Drain};
      }
    }
    ASSERT_GT(n, 0u) << "machine wedged, seed=" << seed;
    const Choice pick = options[sched.next_below(n)];
    m.step(pick.cpu, pick.action);
    // Occasionally inject an interrupt (signal delivery) mid-run.
    if (sched.next_below(50) == 0) {
      m.deliver_interrupt(sched.next_below(cfg.num_cpus));
    }
    const auto violation = m.check_coherence();
    ASSERT_FALSE(violation.has_value())
        << *violation << " seed=" << seed << " step=" << steps;
    ASSERT_LT(++steps, 100000u) << "non-termination, seed=" << seed;
  }

  // Terminal sanity: every store buffer drained, memory equals the last
  // completed store per location (spot-checked via cache agreement).
  for (std::size_t c = 0; c < cfg.num_cpus; ++c) {
    EXPECT_TRUE(m.cpu(c).sb.empty());
    EXPECT_FALSE(m.cpu(c).le_bit || m.cpu(c).in_cs);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimFuzz, ::testing::Range<std::uint64_t>(0, 60));

// ----------------------------------------------- per-location coherence (SC)

TEST(SimProperty, SingleLocationWritesSerializeTotally) {
  // Two CPUs blindly store distinct value ranges to one address; after the
  // run the final value must be one of the written values and every cache
  // holding the line cleanly must agree with memory (checked throughout by
  // check_coherence; here we assert the end state).
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SimConfig cfg;
    cfg.num_cpus = 2;
    Machine m(cfg);
    ProgramBuilder a("w1");
    for (Word v = 1; v <= 5; ++v) a.store(0, v);
    a.mfence().halt();
    ProgramBuilder b("w2");
    for (Word v = 101; v <= 105; ++v) b.store(0, v);
    b.mfence().halt();
    m.load_program(0, a.build());
    m.load_program(1, b.build());
    m.run_random(seed);
    const Word final = [&] {
      for (std::size_t c = 0; c < 2; ++c) {
        const CacheLine* l = m.cpu(c).cache.peek(0);
        if (l != nullptr && l->state == Mesi::Modified) return l->at(0);
      }
      return m.memory(0);
    }();
    EXPECT_TRUE(final == 5 || final == 105) << "seed=" << seed
                                            << " final=" << final;
  }
}

TEST(SimProperty, LoadsNeverTravelBackwards) {
  // A reader polling one location must observe a monotone sequence when
  // the only writer writes monotonically increasing values.
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    SimConfig cfg;
    cfg.num_cpus = 2;
    Machine m(cfg);
    ProgramBuilder w("writer");
    for (Word v = 1; v <= 6; ++v) w.store(0, v);
    w.halt();
    ProgramBuilder r("reader");
    for (int i = 0; i < 6; ++i) {
      r.load(static_cast<std::uint8_t>(i % 6), 0);
    }
    r.halt();
    m.load_program(0, w.build());
    m.load_program(1, r.build());
    m.run_random(seed);
    Word prev = -1;
    for (int i = 0; i < 6; ++i) {
      const Word v = m.cpu(1).regs[i % 6];
      EXPECT_GE(v, prev) << "seed=" << seed << " read#" << i;
      prev = v;
    }
  }
}

// ----------------------------------------------------- schedule determinism

TEST(SimProperty, IdenticalSchedulesProduceIdenticalStates) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Machine a = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence);
    Machine b = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence);
    a.run_random(seed);
    b.run_random(seed);
    EXPECT_EQ(a.canonical_state(), b.canonical_state()) << "seed=" << seed;
    EXPECT_EQ(a.total_cycles(), b.total_cycles()) << "seed=" << seed;
  }
}

// ------------------------------------------------- exhaustive == randomized

TEST(SimProperty, RandomOutcomesAreSubsetOfExhaustiveOutcomes) {
  Explorer::Options opts;
  opts.observe = observe_obs0;
  Explorer ex(make_store_buffer_litmus(FenceKind::kNone, FenceKind::kNone),
              opts);
  const ExploreResult all = ex.run();
  ASSERT_FALSE(all.hit_limit) << "state budget hit: inconclusive";
  ASSERT_FALSE(all.violation.has_value()) << *all.violation;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Machine m = make_store_buffer_litmus(FenceKind::kNone, FenceKind::kNone);
    m.run_random(seed);
    EXPECT_TRUE(all.outcomes.count(observe_obs0(m)))
        << observe_obs0(m) << " seed=" << seed;
  }
}

// ----------------------------------------------- 3-CPU exhaustive coherence

TEST(SimProperty, ThreeCpuExhaustiveKeepsCoherence) {
  SimConfig cfg;
  cfg.num_cpus = 3;
  Machine m(cfg);
  ProgramBuilder p0("w");
  p0.lmfence(0, 7).halt();
  ProgramBuilder p1("r1");
  p1.load(0, 0).halt();
  ProgramBuilder p2("w2");
  p2.store(0, 9).mfence().halt();
  m.load_program(0, p0.build());
  m.load_program(1, p1.build());
  m.load_program(2, p2.build());
  const ExploreResult r = explore_all(std::move(m));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_GT(r.states_explored, 50u);
}

}  // namespace
}  // namespace lbmf::sim
