// ThreadSanitizer harness for the flow-table stack: the Dekker-guarded
// table itself (owner fast path vs remote rule updates/reads), the
// owner-side incremental rehash under concurrent secondary traffic, the
// lock-free flow_count()/grow_count() snapshots, and the serving tier's
// SPSC lanes + cross-shard secondary waves. Everything racy is
// instantiated (and instrumented) in this TU; see deque_tsan_test.cpp for
// the probe/linking rationale.
//
// Not a gtest binary: TSAN_OPTIONS=halt_on_error=1 turns any report into a
// non-zero exit, which is the assertion.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/flowtable/pipeline.hpp"
#include "lbmf/serve/serve.hpp"
#include "lbmf/util/check.hpp"

namespace {

using namespace lbmf;
using namespace lbmf::flowtable;
using namespace lbmf::serve;

// Owner records traffic into an undersized growable table (continuous
// incremental rehash) while one thread updates rules, one reads flows and
// totals, and one polls the lock-free counters.
void table_growth_race() {
  const PipelineResult r = run_pipeline<AsymmetricSignalFence>(
      /*duration_s=*/0.2, /*updaters=*/2, /*update_interval_us=*/200,
      /*flows=*/20000, /*seed=*/0xf10u, /*capacity_pow2=*/1u << 6,
      Growth::kGrowable);
  LBMF_CHECK(r.packets_processed > 0);
  LBMF_CHECK(r.table_grows > 0);
}

void table_remote_readers() {
  FlowTable<AsymmetricSignalFence> t(1u << 5, Growth::kGrowable);
  std::atomic<bool> bound{false};
  std::atomic<bool> stop{false};

  std::thread owner([&] {
    t.bind_owner();
    bound.store(true, std::memory_order_release);
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      t.record_packet(i % 5000 + 1, 64);
      ++i;
    }
    t.unbind_owner();
  });
  while (!bound.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread reader([&] {
    for (int i = 0; i < 200; ++i) {
      (void)t.remote_read(static_cast<FlowKey>(i % 100 + 1));
      (void)t.remote_total_packets();
    }
  });
  std::thread counter([&] {
    for (int i = 0; i < 20000; ++i) {
      (void)t.flow_count();
      (void)t.grow_count();
    }
  });
  std::thread evictor([&] {
    for (int i = 0; i < 5; ++i) (void)t.remote_evict_below(2);
  });
  reader.join();
  counter.join();
  evictor.join();
  stop.store(true, std::memory_order_release);
  owner.join();
}

// Serving tier: a client thread streams requests through the SPSC lanes
// while a control thread alternates single-shard updates with cross-shard
// waves (rule pushes, stats export, eviction) and a stats thread reads the
// lock-free snapshots.
void serve_race() {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.max_clients = 1;
  cfg.ring_capacity = 128;
  cfg.batch_limit = 32;
  cfg.initial_shard_capacity = 1u << 6;
  Server<AsymmetricSignalFence> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  std::atomic<bool> stop{false};
  std::thread control([&] {
    std::vector<RuleUpdate> updates;
    for (FlowKey k = 1; k <= 16; ++k) {
      updates.push_back({k, static_cast<std::uint32_t>(k)});
    }
    while (!stop.load(std::memory_order_relaxed)) {
      (void)srv.push_rules_wave(updates);
      (void)srv.update_rule(3, 7);
      (void)srv.total_packets();
      (void)srv.evict_sweep(1);
    }
  });
  std::thread stats([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)srv.stats();
      (void)srv.live_flows();
    }
  });

  constexpr std::size_t kReqs = 30000;
  std::uint64_t reaped = 0, submitted = 0;
  while (reaped < kReqs) {
    if (submitted < kReqs &&
        client.try_submit(submitted % 2000 + 1, 64, 2, submitted)) {
      ++submitted;
    }
    reaped += client.poll(nullptr);
  }
  stop.store(true, std::memory_order_release);
  control.join();
  stats.join();
  srv.stop();
  LBMF_CHECK(srv.stats().packets == kReqs * 2);
}

}  // namespace

int main() {
  table_growth_race();
  table_remote_readers();
  serve_race();
  std::puts("flowtable_tsan_test: OK");
  return 0;
}
