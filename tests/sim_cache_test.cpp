#include <gtest/gtest.h>

#include "lbmf/sim/cache.hpp"

namespace lbmf::sim {
namespace {

TEST(SimCache, MissThenHit) {
  Cache c(4);
  EXPECT_EQ(c.peek(10), nullptr);
  EXPECT_FALSE(c.insert(10, Mesi::Shared, {99}).has_value());
  ASSERT_NE(c.peek(10), nullptr);
  EXPECT_EQ(c.peek(10)->at(0), 99);
  EXPECT_EQ(c.peek(10)->state, Mesi::Shared);
}

TEST(SimCache, InsertOverwritesExistingLine) {
  Cache c(4);
  c.insert(10, Mesi::Shared, {1});
  c.insert(10, Mesi::Modified, {2});
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.peek(10)->at(0), 2);
  EXPECT_EQ(c.peek(10)->state, Mesi::Modified);
}

TEST(SimCache, LruEvictionPicksColdestLine) {
  Cache c(2);
  c.insert(1, Mesi::Shared, {11});
  c.insert(2, Mesi::Shared, {22});
  c.touch(1);  // 2 is now coldest
  auto evicted = c.insert(3, Mesi::Shared, {33});
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->base, 2u);
  EXPECT_NE(c.peek(1), nullptr);
  EXPECT_NE(c.peek(3), nullptr);
}

TEST(SimCache, EraseReturnsLine) {
  Cache c(4);
  c.insert(5, Mesi::Exclusive, {50});
  auto removed = c.erase(5);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->at(0), 50);
  EXPECT_EQ(c.peek(5), nullptr);
  EXPECT_FALSE(c.erase(5).has_value());
}

TEST(SimCache, SetStateOnResidentAndAbsentLines) {
  Cache c(4);
  c.insert(7, Mesi::Exclusive, {70});
  c.set_state(7, Mesi::Shared);
  EXPECT_EQ(c.peek(7)->state, Mesi::Shared);
  c.set_state(8, Mesi::Modified);  // absent: silent no-op
  EXPECT_EQ(c.peek(8), nullptr);
}

TEST(SimStoreBuffer, FifoOrderOfCompletion) {
  StoreBuffer sb(4);
  sb.push({1, 10, false});
  sb.push({2, 20, false});
  sb.push({1, 30, false});
  EXPECT_EQ(sb.pop_oldest().value, 10);
  EXPECT_EQ(sb.pop_oldest().value, 20);
  EXPECT_EQ(sb.pop_oldest().value, 30);
  EXPECT_TRUE(sb.empty());
}

TEST(SimStoreBuffer, ForwardingReturnsYoungestMatch) {
  StoreBuffer sb(4);
  sb.push({1, 10, false});
  sb.push({2, 20, false});
  sb.push({1, 30, false});
  EXPECT_EQ(sb.forwarded_value(1), 30);
  EXPECT_EQ(sb.forwarded_value(2), 20);
  EXPECT_FALSE(sb.forwarded_value(3).has_value());
}

TEST(SimStoreBuffer, CapacityIsReported) {
  StoreBuffer sb(2);
  EXPECT_FALSE(sb.full());
  sb.push({1, 1, false});
  sb.push({2, 2, false});
  EXPECT_TRUE(sb.full());
  sb.pop_oldest();
  EXPECT_FALSE(sb.full());
}

TEST(SimStoreBuffer, GuardedFlagTravelsWithEntry) {
  StoreBuffer sb(2);
  sb.push({9, 1, true});
  const StoreEntry e = sb.pop_oldest();
  EXPECT_TRUE(e.guarded);
}

}  // namespace
}  // namespace lbmf::sim
