#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <span>
#include <thread>
#include <vector>

#include "lbmf/core/serializer.hpp"

namespace lbmf {
namespace {

TEST(Serializer, RegisterAndUnregisterRoundTrip) {
  auto& reg = SerializerRegistry::instance();
  auto h = reg.register_self();
  ASSERT_TRUE(h.valid());
  reg.unregister_self(h);
  EXPECT_FALSE(h.valid());
}

TEST(Serializer, UnregisterInvalidHandleIsNoop) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle h;  // default, invalid
  reg.unregister_self(h);        // must not crash
  EXPECT_FALSE(h.valid());
}

TEST(Serializer, SerializeInvalidHandleReturnsFalse) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle h;
  EXPECT_FALSE(reg.serialize(h));
}

TEST(Serializer, SelfSerializeDegradesToLocalFence) {
  auto& reg = SerializerRegistry::instance();
  auto h = reg.register_self();
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(reg.serialize(h));  // same thread: local fence, returns fast
  reg.unregister_self(h);
}

TEST(Serializer, SecondaryForcesPrimaryToAcknowledge) {
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    // Busy loop standing in for the primary's fast-path work.
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    reg.unregister_self(handle);
  });

  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  const auto before = SerializerRegistry::signals_received(handle);
  EXPECT_TRUE(reg.serialize(handle));
  EXPECT_TRUE(reg.serialize(handle));
  const auto after = SerializerRegistry::signals_received(handle);
  EXPECT_GE(after - before, 1u);  // signals may coalesce but not vanish

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, PublishedStoreIsVisibleAfterSerialize) {
  // The core guarantee: a value stored by the primary (without any hardware
  // fence) must be visible to the secondary after serialize() returns.
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  std::atomic<int> data{0};
  std::atomic<int> published{0};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      data.store(v, std::memory_order_relaxed);
      published.store(v, std::memory_order_relaxed);
    }
    reg.unregister_self(handle);
  });

  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reg.serialize(handle));
    // After the handshake, everything the primary stored before the ack is
    // visible: data must be at least as fresh as published was then.
    const int p = published.load(std::memory_order_relaxed);
    const int d = data.load(std::memory_order_relaxed);
    EXPECT_GE(d, p - 1);  // data is stored before published each round
  }

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, ManySecondariesSerializeOnePrimary) {
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
    reg.unregister_self(handle);
  });
  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kSecondaries = 4;
  constexpr int kRounds = 50;
  std::atomic<int> successes{0};
  std::vector<std::thread> secondaries;
  secondaries.reserve(kSecondaries);
  for (int t = 0; t < kSecondaries; ++t) {
    secondaries.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (reg.serialize(handle)) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : secondaries) th.join();
  EXPECT_EQ(successes.load(), kSecondaries * kRounds);

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, SlotIsReusableAfterUnregister) {
  auto& reg = SerializerRegistry::instance();
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto h = reg.register_self();
      ASSERT_TRUE(h.valid());
      reg.unregister_self(h);
    });
    t.join();
  }
  // Registry must not have leaked all its slots to dead threads.
  auto h = reg.register_self();
  EXPECT_TRUE(h.valid());
  reg.unregister_self(h);
}

TEST(Serializer, CoalescedAckCoversEachRequestUnderStress) {
  // Many secondaries hammer ONE primary. Each serialize() must return only
  // once the shared ack covers that caller's own request — verified through
  // the visibility guarantee: the primary's unfenced stores must be ordered
  // for every caller individually, no matter whose signal did the work.
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  std::atomic<int> data{0};
  std::atomic<int> published{0};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      data.store(v, std::memory_order_relaxed);
      published.store(v, std::memory_order_relaxed);
    }
    reg.unregister_self(handle);
  });
  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kSecondaries = 8;
  constexpr int kRounds = 300;
  const std::uint64_t posted_before =
      SerializerRegistry::signals_posted(handle);
  const std::uint64_t received_before =
      SerializerRegistry::signals_received(handle);

  std::atomic<int> violations{0};
  std::vector<std::thread> secondaries;
  secondaries.reserve(kSecondaries);
  for (int t = 0; t < kSecondaries; ++t) {
    secondaries.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(reg.serialize(handle));
        // data is stored before published each round, so a covering ack
        // implies data >= the published value sampled afterwards, minus the
        // one store that may be mid-round.
        const int p = published.load(std::memory_order_relaxed);
        const int d = data.load(std::memory_order_relaxed);
        if (d < p - 1) violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : secondaries) th.join();
  EXPECT_EQ(violations.load(), 0);

  // Coalescing must actually engage: with 8 secondaries sharing round
  // trips, both the signals posted (pthread_kill calls) and the handler
  // runs grow sublinearly in the number of requests.
  const std::uint64_t requests = kSecondaries * kRounds;
  const std::uint64_t posted =
      SerializerRegistry::signals_posted(handle) - posted_before;
  const std::uint64_t received =
      SerializerRegistry::signals_received(handle) - received_before;
  EXPECT_LE(posted, requests * 3 / 4) << "coalescing did not engage";
  EXPECT_LE(received, requests * 3 / 4);

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, SerializeManyEmptySpanIsNoop) {
  auto& reg = SerializerRegistry::instance();
  EXPECT_EQ(reg.serialize_many({}), 0u);
}

TEST(Serializer, SerializeManySkipsInvalidAndCountsSelf) {
  auto& reg = SerializerRegistry::instance();
  auto self = reg.register_self();
  ASSERT_TRUE(self.valid());
  std::array<SerializerRegistry::Handle, 2> hs = {
      SerializerRegistry::Handle{},  // invalid: skipped
      self,                          // self: local fence, still counted
  };
  EXPECT_EQ(reg.serialize_many(hs), 1u);
  reg.unregister_self(self);
}

TEST(Serializer, SerializeManyCoversEveryPrimaryInTheWave) {
  // The batched wave gives the same per-primary visibility guarantee as N
  // individual round trips: after serialize_many returns, every primary's
  // unfenced stores are visible.
  auto& reg = SerializerRegistry::instance();
  constexpr int kPrimaries = 4;
  std::atomic<int> registered{0};
  std::atomic<bool> stop{false};
  std::array<SerializerRegistry::Handle, kPrimaries> handles;
  std::array<std::atomic<int>, kPrimaries> data;
  std::array<std::atomic<int>, kPrimaries> published;
  for (int i = 0; i < kPrimaries; ++i) {
    data[i].store(0);
    published[i].store(0);
  }

  std::vector<std::thread> primaries;
  for (int t = 0; t < kPrimaries; ++t) {
    primaries.emplace_back([&, t] {
      handles[t] = reg.register_self();
      registered.fetch_add(1, std::memory_order_acq_rel);
      int v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++v;
        data[t].store(v, std::memory_order_relaxed);
        published[t].store(v, std::memory_order_relaxed);
      }
      reg.unregister_self(handles[t]);
    });
  }
  while (registered.load(std::memory_order_acquire) < kPrimaries) {
    std::this_thread::yield();
  }

  for (int round = 0; round < 50; ++round) {
    EXPECT_EQ(reg.serialize_many(handles),
              static_cast<std::size_t>(kPrimaries));
    for (int t = 0; t < kPrimaries; ++t) {
      const int p = published[t].load(std::memory_order_relaxed);
      const int d = data[t].load(std::memory_order_relaxed);
      EXPECT_GE(d, p - 1) << "primary " << t << " round " << round;
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& th : primaries) th.join();
}

TEST(Serializer, ResignalRecoversFromStalledDelivery) {
  // A primary that briefly blocks the serialization signal stands in for a
  // lost/late delivery: the secondary's bounded ack wait must re-post
  // instead of spinning forever, and count the re-posts for observability.
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    sigset_t block, old;
    sigemptyset(&block);
    sigaddset(&block, SerializerRegistry::signal_number());
    ASSERT_EQ(pthread_sigmask(SIG_BLOCK, &block, &old), 0);
    registered.store(true, std::memory_order_release);
    // Window during which every posted signal stays pending, undelivered.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ASSERT_EQ(pthread_sigmask(SIG_SETMASK, &old, nullptr), 0);
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
    reg.unregister_self(handle);
  });
  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  const std::uint64_t resignals_before = SerializerRegistry::resignals(handle);
  EXPECT_TRUE(reg.serialize(handle));  // stalls ~50ms, then recovers
  EXPECT_GE(SerializerRegistry::resignals(handle), resignals_before + 1);

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, SerializeAfterUnregisterReturnsFalse) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle stale;
  std::thread t([&] {
    auto h = reg.register_self();
    stale = h;  // leak a copy of the handle
    reg.unregister_self(h);
  });
  t.join();
  EXPECT_FALSE(reg.serialize(stale));
}

}  // namespace
}  // namespace lbmf
