#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/core/serializer.hpp"

namespace lbmf {
namespace {

TEST(Serializer, RegisterAndUnregisterRoundTrip) {
  auto& reg = SerializerRegistry::instance();
  auto h = reg.register_self();
  ASSERT_TRUE(h.valid());
  reg.unregister_self(h);
  EXPECT_FALSE(h.valid());
}

TEST(Serializer, UnregisterInvalidHandleIsNoop) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle h;  // default, invalid
  reg.unregister_self(h);        // must not crash
  EXPECT_FALSE(h.valid());
}

TEST(Serializer, SerializeInvalidHandleReturnsFalse) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle h;
  EXPECT_FALSE(reg.serialize(h));
}

TEST(Serializer, SelfSerializeDegradesToLocalFence) {
  auto& reg = SerializerRegistry::instance();
  auto h = reg.register_self();
  ASSERT_TRUE(h.valid());
  EXPECT_TRUE(reg.serialize(h));  // same thread: local fence, returns fast
  reg.unregister_self(h);
}

TEST(Serializer, SecondaryForcesPrimaryToAcknowledge) {
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    // Busy loop standing in for the primary's fast-path work.
    while (!stop.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    reg.unregister_self(handle);
  });

  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  const auto before = SerializerRegistry::signals_received(handle);
  EXPECT_TRUE(reg.serialize(handle));
  EXPECT_TRUE(reg.serialize(handle));
  const auto after = SerializerRegistry::signals_received(handle);
  EXPECT_GE(after - before, 1u);  // signals may coalesce but not vanish

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, PublishedStoreIsVisibleAfterSerialize) {
  // The core guarantee: a value stored by the primary (without any hardware
  // fence) must be visible to the secondary after serialize() returns.
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  std::atomic<int> data{0};
  std::atomic<int> published{0};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      data.store(v, std::memory_order_relaxed);
      published.store(v, std::memory_order_relaxed);
    }
    reg.unregister_self(handle);
  });

  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(reg.serialize(handle));
    // After the handshake, everything the primary stored before the ack is
    // visible: data must be at least as fresh as published was then.
    const int p = published.load(std::memory_order_relaxed);
    const int d = data.load(std::memory_order_relaxed);
    EXPECT_GE(d, p - 1);  // data is stored before published each round
  }

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, ManySecondariesSerializeOnePrimary) {
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> registered{false};
  std::atomic<bool> stop{false};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    registered.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_acquire)) std::this_thread::yield();
    reg.unregister_self(handle);
  });
  while (!registered.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kSecondaries = 4;
  constexpr int kRounds = 50;
  std::atomic<int> successes{0};
  std::vector<std::thread> secondaries;
  secondaries.reserve(kSecondaries);
  for (int t = 0; t < kSecondaries; ++t) {
    secondaries.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (reg.serialize(handle)) {
          successes.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : secondaries) th.join();
  EXPECT_EQ(successes.load(), kSecondaries * kRounds);

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(Serializer, SlotIsReusableAfterUnregister) {
  auto& reg = SerializerRegistry::instance();
  for (int round = 0; round < 8; ++round) {
    std::thread t([&] {
      auto h = reg.register_self();
      ASSERT_TRUE(h.valid());
      reg.unregister_self(h);
    });
    t.join();
  }
  // Registry must not have leaked all its slots to dead threads.
  auto h = reg.register_self();
  EXPECT_TRUE(h.valid());
  reg.unregister_self(h);
}

TEST(Serializer, SerializeAfterUnregisterReturnsFalse) {
  auto& reg = SerializerRegistry::instance();
  SerializerRegistry::Handle stale;
  std::thread t([&] {
    auto h = reg.register_self();
    stale = h;  // leak a copy of the handle
    reg.unregister_self(h);
  });
  t.join();
  EXPECT_FALSE(reg.serialize(stale));
}

}  // namespace
}  // namespace lbmf
