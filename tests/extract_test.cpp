// lbmf::extract round-trip coverage: every annotated structure's recording
// must regenerate a litmus file that is semantically identical to the
// committed hand-written one (same program bytes, symbols, holes, finals,
// symmetry — comments and labels don't count), provenance must survive the
// whole pipeline into lbmf::infer's sites, and inference over the
// *generated* THE-deque text must recover the paper's Sec. 6 placement.
//
// This TU is compiled with LBMF_EXTRACT=1 (see tests/CMakeLists.txt), so
// the annotated spec functions in the runtime headers record;
// extract_off_test.cpp proves the same annotations vanish without it.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "lbmf/extract/extract.hpp"
#include "lbmf/infer/infer.hpp"

namespace lbmf::extract {
namespace {

std::string read_litmus(const std::string& name) {
  const std::string path = std::string(LBMF_LITMUS_DIR) + "/" + name;
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << "cannot open " << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ------------------------------------------------------------ round trip

TEST(ExtractRoundTrip, EveryRegisteredProtocolIsDriftClean) {
  for (const RegisteredProtocol& rp : protocol_registry()) {
    const EmitResult emitted = emit_lit(record_protocol(rp));
    ASSERT_TRUE(emitted.ok()) << rp.key << ": " << emitted.error_string();
    const DriftReport drift =
        compare_litmus(emitted.text, read_litmus(rp.committed));
    EXPECT_TRUE(drift.clean())
        << rp.key << " drifted from " << rp.committed << ":\n"
        << drift.to_string();
  }
}

TEST(ExtractRoundTrip, GeneratedProgramBytesMatchCommitted) {
  // Stronger than the drift report's verdict: the assembled instruction
  // vectors are equal element-wise, provenance comments notwithstanding.
  for (const RegisteredProtocol& rp : protocol_registry()) {
    const EmitResult emitted = emit_lit(record_protocol(rp));
    ASSERT_TRUE(emitted.ok()) << emitted.error_string();
    const sim::AssembleResult gen = sim::assemble(emitted.text);
    const sim::AssembleResult ref = sim::assemble(read_litmus(rp.committed));
    ASSERT_TRUE(gen.ok()) << rp.key << ": " << gen.error->to_string();
    ASSERT_TRUE(ref.ok()) << rp.key << ": " << ref.error->to_string();
    ASSERT_EQ(gen.programs.size(), ref.programs.size()) << rp.key;
    for (std::size_t cpu = 0; cpu < gen.programs.size(); ++cpu) {
      EXPECT_EQ(gen.programs[cpu].code, ref.programs[cpu].code)
          << rp.key << " cpu" << cpu;
    }
    EXPECT_EQ(gen.symbols, ref.symbols) << rp.key;
    EXPECT_EQ(gen.final_allowed, ref.final_allowed) << rp.key;
    EXPECT_EQ(gen.symmetric_groups, ref.symmetric_groups) << rp.key;
  }
}

TEST(ExtractRoundTrip, DriftReportCatchesAProtocolChange) {
  // Sanity-check the gate itself: perturb one recorded value and the
  // compare must report, not stay silent.
  Spec spec = ws::record_the_deque_protocol();
  ASSERT_FALSE(spec.roles.empty());
  spec.roles[0].ops[0].value ^= 1;  // flip the victim's announce value
  const EmitResult emitted = emit_lit(spec);
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  const DriftReport drift =
      compare_litmus(emitted.text, read_litmus("the_deque_holes.lit"));
  EXPECT_FALSE(drift.clean());
}

// ------------------------------------------------------------ provenance

TEST(ExtractProvenance, HolesCarrySourceLocationsThroughInfer) {
  const EmitResult emitted = emit_lit(ws::record_the_deque_protocol());
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  infer::ProblemParse parsed = infer::problem_from_source(emitted.text);
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();
  ASSERT_EQ(parsed.problem->sites.size(), 4u);
  for (const infer::FenceSite& s : parsed.problem->sites) {
    EXPECT_EQ(s.provenance.rfind("lbmf/ws/deque.hpp:", 0), 0u)
        << "site provenance: '" << s.provenance << "'";
  }
}

TEST(ExtractProvenance, NoProvenanceModeEmitsNoComments) {
  EmitOptions opts;
  opts.provenance = false;
  const EmitResult emitted =
      emit_lit(ws::record_the_deque_protocol(), opts);
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  EXPECT_EQ(emitted.text.find("#@"), std::string::npos);
  // Still drift-clean: provenance is presentation, not protocol.
  const DriftReport drift =
      compare_litmus(emitted.text, read_litmus("the_deque_holes.lit"));
  EXPECT_TRUE(drift.clean()) << drift.to_string();
}

TEST(ExtractProvenance, CanonicalPathTrimsToIncludeSuffix) {
  EXPECT_EQ(canonical_source_path("/root/repo/include/lbmf/ws/deque.hpp"),
            "lbmf/ws/deque.hpp");
  EXPECT_EQ(canonical_source_path("deque.hpp"), "deque.hpp");
  EXPECT_EQ(canonical_source_path("/tmp/scratch/spec.cpp"), "spec.cpp");
}

// ------------------------------------------------------- canonicalization

TEST(ExtractEmit, RegistersRenumberedByFirstUse) {
  Recorder rec("regs");
  auto role = rec.role("only", 1);
  role.load(r5, "x");       // first register used -> r0
  role.branch_eq(r5, 0, "done");
  role.load(r3, "y");       // second -> r1
  role.store_reg("z", r3);
  role.label("done");
  role.halt();
  const EmitResult emitted = emit_lit(std::move(rec).take());
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  EXPECT_NE(emitted.text.find("load r0, [x]"), std::string::npos)
      << emitted.text;
  EXPECT_NE(emitted.text.find("load r1, [y]"), std::string::npos);
  EXPECT_NE(emitted.text.find("store [z], r1"), std::string::npos);
  EXPECT_EQ(emitted.text.find("r5"), std::string::npos);
  EXPECT_EQ(emitted.text.find("r3"), std::string::npos);
}

// --------------------------------------------------- parameterized roles

TEST(ExtractRoles, CountParameterStampsIdenticalBodiesSymmetric) {
  Recorder rec("stamped");
  rec.role("owner", 1000).store("F", 1).halt();
  rec.roles("peer", 3, 1, [](RoleRef& p, std::size_t) {
    p.rmw_acquire("G");
    p.store("F", 2);
    p.rmw_release("G");
    p.halt();
  });
  const Spec spec = std::move(rec).take();
  ASSERT_EQ(spec.roles.size(), 4u);
  EXPECT_EQ(spec.roles[1].name, "peer1");
  EXPECT_EQ(spec.roles[3].name, "peer3");
  // Byte-identical bodies were grouped symmetric automatically.
  ASSERT_EQ(spec.symmetric.size(), 1u);
  EXPECT_EQ(spec.symmetric[0],
            (std::vector<std::string>{"peer1", "peer2", "peer3"}));
  const EmitResult emitted = emit_lit(spec);
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  EXPECT_NE(emitted.text.find("symmetric cpu 1, 2, 3"), std::string::npos)
      << emitted.text;
}

TEST(ExtractRoles, IndexVaryingBodiesAreNotGrouped) {
  Recorder rec("varying");
  rec.roles("t", 2, 1, [](RoleRef& p, std::size_t i) {
    p.store(i == 0 ? "A" : "B", 1);  // distinct locations per instance
    p.halt();
  });
  const Spec spec = std::move(rec).take();
  ASSERT_EQ(spec.roles.size(), 2u);
  EXPECT_TRUE(spec.symmetric.empty());
}

// The bakery's contender count is a real parameter: three contenders
// record three byte-identical gated roles, the spec still emits and
// assembles, and the symmetric group covers all three.
TEST(ExtractRoles, BakeryRoleCountScales) {
  const Spec spec = zoo::record_bakery_protocol(3);
  ASSERT_EQ(spec.roles.size(), 4u);  // hot customer + 3 contenders
  ASSERT_EQ(spec.symmetric.size(), 1u);
  EXPECT_EQ(spec.symmetric[0].size(), 3u);
  const EmitResult emitted = emit_lit(spec);
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  const sim::AssembleResult a = sim::assemble(emitted.text);
  ASSERT_TRUE(a.ok()) << a.error->to_string();
  EXPECT_EQ(a.programs.size(), 4u);
  // All contender programs are byte-identical.
  EXPECT_EQ(a.programs[1].code, a.programs[2].code);
  EXPECT_EQ(a.programs[2].code, a.programs[3].code);
}

// ------------------------------------------------------------- validation

TEST(ExtractEmit, RoleWithoutHaltIsRejected) {
  Recorder rec("bad");
  rec.role("r", 1).store("x", 1);
  const EmitResult e = emit_lit(std::move(rec).take());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error_string().find("LBMF_HALT"), std::string::npos);
}

TEST(ExtractEmit, UndefinedBranchTargetIsRejected) {
  Recorder rec("bad");
  auto role = rec.role("r", 1);
  role.load(r0, "x").branch_eq(r0, 0, "nowhere").halt();
  const EmitResult e = emit_lit(std::move(rec).take());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error_string().find("nowhere"), std::string::npos);
}

TEST(ExtractEmit, DuplicateRoleNamesAreRejected) {
  Recorder rec("bad");
  rec.role("twin", 1).halt();
  rec.role("twin", 1).halt();
  const EmitResult e = emit_lit(std::move(rec).take());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error_string().find("duplicate role"), std::string::npos);
}

TEST(ExtractEmit, SymmetricGroupNamingUnknownRoleIsRejected) {
  Recorder rec("bad");
  rec.role("a", 1).halt();
  rec.role("b", 1).halt();
  rec.symmetric("a", "ghost");
  const EmitResult e = emit_lit(std::move(rec).take());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error_string().find("ghost"), std::string::npos);
}

TEST(ExtractEmit, NonIntegralFreqIsRejected) {
  Recorder rec("bad");
  rec.role("r", 2.5).halt();
  const EmitResult e = emit_lit(std::move(rec).take());
  ASSERT_FALSE(e.ok());
  EXPECT_NE(e.error_string().find("freq"), std::string::npos);
}

// ----------------------------------------- inference over generated text

TEST(ExtractInfer, GeneratedTheDequeRecoversPaperPlacement) {
  const EmitResult emitted = emit_lit(ws::record_the_deque_protocol());
  ASSERT_TRUE(emitted.ok()) << emitted.error_string();
  infer::ProblemParse parsed = infer::problem_from_source(emitted.text);
  ASSERT_TRUE(parsed.ok()) << parsed.error->to_string();

  infer::InferenceEngine engine(*parsed.problem, {});
  const infer::InferResult r = engine.run();
  ASSERT_EQ(r.status, infer::InferStatus::kSat);
  EXPECT_TRUE(r.recheck_safe);
  EXPECT_EQ(infer::to_string(r.best), "{l-mfence, none, mfence, none}");
  EXPECT_DOUBLE_EQ(r.best_cost, 3260.0);

  // Map-back: the placement reads as source diagnostics over deque.hpp.
  const auto placements = map_back(*parsed.problem, r.best);
  ASSERT_EQ(placements.size(), 4u);
  EXPECT_EQ(placements[0].fence, "l-mfence");
  EXPECT_EQ(placements[0].source.rfind("lbmf/ws/deque.hpp:", 0), 0u);
  const std::string text = format_source_placements(placements);
  EXPECT_NE(text.find("lbmf/ws/deque.hpp:"), std::string::npos) << text;
  EXPECT_NE(text.find("l-mfence"), std::string::npos);

  // And the machine-readable report carries the same source_map.
  const std::string json =
      extract_report_json("the-deque", *parsed.problem, r);
  EXPECT_NE(json.find("\"source_map\""), std::string::npos);
  EXPECT_NE(json.find("\"best_cost\": 3260"), std::string::npos) << json;
  EXPECT_NE(
      json.find(
          "{\"site\": \"cpu0@0[T]=0\", \"fence\": \"l-mfence\", \"source\": "
          "\"lbmf/ws/deque.hpp:"),
      std::string::npos)
      << json;
}

}  // namespace
}  // namespace lbmf::extract
