// Stress and failure-injection tests: signal storms against the serializer,
// registry slot exhaustion, deque contention with a dedicated victim, and a
// cross-module integration run where the work-stealing runtime, the ARW
// lock and a biased lock all multiplex primaries through the one global
// SerializerRegistry at the same time.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/core/lmfence.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/dekker/biased_lock.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf {
namespace {

// ------------------------------------------------------------- serializer

TEST(SerializerStress, SignalStormAgainstBusyPrimary) {
  auto& reg = SerializerRegistry::instance();
  std::atomic<bool> ready{false};
  std::atomic<bool> stop{false};
  std::atomic<long> progress{0};
  SerializerRegistry::Handle handle;

  std::thread primary([&] {
    handle = reg.register_self();
    ready.store(true, std::memory_order_release);
    // Hot loop with stores: every signal interrupts real work.
    while (!stop.load(std::memory_order_relaxed)) {
      progress.fetch_add(1, std::memory_order_relaxed);
    }
    reg.unregister_self(handle);
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kStorms = 3;
  constexpr int kPerStorm = 300;
  std::vector<std::thread> storm;
  std::atomic<int> ok{0};
  for (int t = 0; t < kStorms; ++t) {
    storm.emplace_back([&] {
      for (int i = 0; i < kPerStorm; ++i) {
        if (reg.serialize(handle)) ok.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : storm) th.join();
  EXPECT_EQ(ok.load(), kStorms * kPerStorm);
  EXPECT_GT(progress.load(), 0);  // the primary kept making progress

  stop.store(true, std::memory_order_release);
  primary.join();
}

TEST(SerializerStress, ManyConcurrentPrimariesAndCrossSerialization) {
  auto& reg = SerializerRegistry::instance();
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  std::vector<SerializerRegistry::Handle> handles(kThreads);
  std::atomic<int> registered{0};
  std::atomic<bool> go{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      handles[t] = reg.register_self();
      registered.fetch_add(1, std::memory_order_acq_rel);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      // Everybody serializes everybody (including themselves).
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int r = 0; r < kRounds; ++r) {
        const int victim = static_cast<int>(rng.next_below(kThreads));
        if (!reg.serialize(handles[victim])) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Rendezvous before anyone unregisters.
      registered.fetch_add(1, std::memory_order_acq_rel);
      while (registered.load(std::memory_order_acquire) < 2 * kThreads) {
        std::this_thread::yield();
      }
      reg.unregister_self(handles[t]);
    });
  }
  while (registered.load(std::memory_order_acquire) < kThreads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(SerializerStress, RegistryExhaustionYieldsInvalidHandleNotCrash) {
  auto& reg = SerializerRegistry::instance();
  // Grab every slot from this single thread (registration is per-call, not
  // per-thread-unique), then verify the next one fails cleanly.
  std::vector<SerializerRegistry::Handle> all;
  all.reserve(SerializerRegistry::kMaxPrimaries);
  std::size_t got = 0;
  for (std::size_t i = 0; i < SerializerRegistry::kMaxPrimaries + 8; ++i) {
    auto h = reg.register_self();
    if (!h.valid()) break;
    all.push_back(h);
    ++got;
  }
  EXPECT_LE(got, SerializerRegistry::kMaxPrimaries);
  auto extra = reg.register_self();
  EXPECT_FALSE(extra.valid());
  EXPECT_FALSE(reg.serialize(extra));
  for (auto& h : all) reg.unregister_self(h);
  // And the registry is usable again.
  auto again = reg.register_self();
  EXPECT_TRUE(again.valid());
  reg.unregister_self(again);
}

// -------------------------------------------------------- guarded location

TEST(GuardedLocationStress, RebindAcrossThreads) {
  GuardedLocation<int, AsymmetricSignalFence> loc(0);
  for (int round = 0; round < 16; ++round) {
    std::thread t([&] {
      loc.bind_primary();
      loc.lmfence_store(round);
      loc.unbind_primary();
    });
    t.join();
    EXPECT_EQ(loc.remote_read(), round);
  }
}

// ------------------------------------------------------------- deque/thieves

TEST(DequeStress, DedicatedVictimAgainstManyThieves) {
  ws::TheDeque<AsymmetricSignalFence> deque;
  ws::TaskGroupBase group;
  std::atomic<long> executed{0};
  auto body = [&executed] { executed.fetch_add(1, std::memory_order_relaxed); };
  using Task = ws::ClosureTask<decltype(body)>;

  constexpr long kTasks = 20000;
  std::vector<Task> tasks;
  tasks.reserve(kTasks);
  for (long i = 0; i < kTasks; ++i) tasks.emplace_back(group, body);

  std::atomic<bool> victim_ready{false};
  std::atomic<bool> thieves_done{false};
  std::atomic<long> victim_got{0};
  std::atomic<long> thieves_got{0};

  std::thread victim([&] {
    auto handle = AsymmetricSignalFence::register_primary();
    deque.set_owner_handle(handle);
    victim_ready.store(true, std::memory_order_release);
    // Push in batches and pop aggressively — the paper's victim role.
    long pushed = 0;
    long got = 0;
    while (pushed < kTasks) {
      const long batch = std::min<long>(64, kTasks - pushed);
      for (long i = 0; i < batch; ++i) {
        group.add_pending();
        deque.push(&tasks[static_cast<std::size_t>(pushed + i)]);
      }
      pushed += batch;
      for (long i = 0; i < batch / 2; ++i) {
        if (ws::TaskBase* t = deque.pop()) {
          t->run();
          ++got;
        }
      }
    }
    while (ws::TaskBase* t = deque.pop()) {
      t->run();
      ++got;
    }
    victim_got.store(got, std::memory_order_release);
    while (!thieves_done.load(std::memory_order_acquire)) {
      // Help drain stragglers the thieves may have left behind.
      if (ws::TaskBase* t = deque.pop()) {
        t->run();
        victim_got.fetch_add(1, std::memory_order_acq_rel);
      }
      std::this_thread::yield();
    }
    AsymmetricSignalFence::unregister_primary(handle);
  });
  while (!victim_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  constexpr int kThieves = 3;
  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      long got = 0;
      while (executed.load(std::memory_order_acquire) < kTasks) {
        if (ws::TaskBase* task = deque.steal()) {
          task->run();
          ++got;
        } else {
          std::this_thread::yield();
        }
      }
      thieves_got.fetch_add(got, std::memory_order_acq_rel);
    });
  }
  for (auto& th : thieves) th.join();
  thieves_done.store(true, std::memory_order_release);
  victim.join();

  // Every task ran exactly once.
  EXPECT_EQ(executed.load(), kTasks);
  EXPECT_TRUE(group.done());
  EXPECT_EQ(victim_got.load() + thieves_got.load(), kTasks);
}

// -------------------------------------------------------------- ws nesting

TEST(SchedulerStress, DeeplyNestedTaskGroups) {
  ws::Scheduler<AsymmetricSignalFence> sched(3);
  std::function<long(int)> nest = [&](int depth) -> long {
    if (depth == 0) return 1;
    long a = 0;
    typename ws::Scheduler<AsymmetricSignalFence>::TaskGroup tg;
    auto t = tg.capture([&, depth] { a = nest(depth - 1); });
    tg.spawn(t);
    const long b = nest(depth - 1);
    tg.sync();
    return a + b;
  };
  long result = 0;
  sched.run([&] { result = nest(12); });
  EXPECT_EQ(result, 1L << 12);
}

TEST(SchedulerStress, RepeatedConstructionTearsDownCleanly) {
  for (int round = 0; round < 6; ++round) {
    ws::Scheduler<AsymmetricSignalFence> sched(2 + round % 3);
    long result = 0;
    sched.run([&] {
      typename ws::Scheduler<AsymmetricSignalFence>::TaskGroup tg;
      auto t = tg.capture([&] { result = 41; });
      tg.spawn(t);
      tg.sync();
      ++result;
    });
    EXPECT_EQ(result, 42);
  }
}

// ------------------------------------------------------------- integration

TEST(Integration, AllSubsystemsShareTheRegistrySimultaneously) {
  // Work-stealing workers, ARW readers and a biased-lock holder all
  // register as l-mfence primaries at once; everything must stay correct.
  ws::Scheduler<AsymmetricSignalFence> sched(2);
  ArwLock rwlock;
  BiasedLock<AsymmetricSignalFence> biased;
  std::atomic<bool> stop{false};
  volatile long biased_counter = 0;
  alignas(64) volatile long shared[4] = {0, 0, 0, 0};
  std::atomic<bool> mismatch{false};

  std::thread bias_holder([&] {
    biased.lock();
    biased_counter = biased_counter + 1;
    biased.unlock();
    while (!stop.load(std::memory_order_acquire)) {
      biased.lock();
      biased_counter = biased_counter + 1;
      biased.unlock();
    }
    biased.lock();  // observe a possible revocation before exit
    biased.unlock();
  });

  std::thread reader([&] {
    auto token = rwlock.register_reader();
    while (!stop.load(std::memory_order_acquire)) {
      token.read_lock();
      const long a = shared[0], b = shared[3];
      if (a != b) mismatch.store(true);
      token.read_unlock();
    }
  });

  // Main thread: run a parallel workload, occasionally write the shared
  // array and poke the biased lock (revoking the bias).
  long fibres = 0;
  for (int round = 0; round < 3; ++round) {
    sched.run([&] {
      std::function<long(long)> fib = [&](long n) -> long {
        if (n < 2) return n;
        long a = 0;
        typename ws::Scheduler<AsymmetricSignalFence>::TaskGroup tg;
        auto t = tg.capture([&, n] { a = fib(n - 1); });
        tg.spawn(t);
        const long b = fib(n - 2);
        tg.sync();
        return a + b;
      };
      fibres = fib(15);
    });
    rwlock.write_lock();
    for (int j = 0; j < 4; ++j) shared[j] = shared[j] + 1;
    rwlock.write_unlock();
    biased.lock();  // revokes the holder's bias on the first round
    biased_counter = biased_counter + 1;
    biased.unlock();
  }

  stop.store(true, std::memory_order_release);
  bias_holder.join();
  reader.join();

  EXPECT_EQ(fibres, 610);
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(shared[0], 3);
  EXPECT_GE(biased.revocations(), 1u);
}

}  // namespace
}  // namespace lbmf
