#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "lbmf/util/affinity.hpp"
#include "lbmf/util/barrier.hpp"
#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/histogram.hpp"
#include "lbmf/util/rng.hpp"
#include "lbmf/util/spin.hpp"
#include "lbmf/util/stats.hpp"
#include "lbmf/util/timing.hpp"

namespace lbmf {
namespace {

// ---------------------------------------------------------------- cacheline

TEST(CacheLine, AlignedWrapperIsLineSizedAndAligned) {
  EXPECT_EQ(sizeof(CacheAligned<int>), kCacheLineSize);
  EXPECT_EQ(alignof(CacheAligned<int>), kCacheLineSize);
  CacheAligned<int> a(7);
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a) % kCacheLineSize, 0u);
}

TEST(CacheLine, ArrayElementsDoNotShareLines) {
  CacheAligned<char> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto lo = reinterpret_cast<std::uintptr_t>(&arr[i]);
    const auto hi = reinterpret_cast<std::uintptr_t>(&arr[i + 1]);
    EXPECT_GE(hi - lo, kCacheLineSize);
  }
}

TEST(CacheLine, LargePayloadRoundsUpToMultipleLines) {
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(CacheAligned<Big>) % kCacheLineSize, 0u);
  EXPECT_GE(sizeof(CacheAligned<Big>), sizeof(Big));
}

TEST(CacheLine, ArrowOperatorReachesMembers) {
  struct S {
    int x = 3;
  };
  CacheAligned<S> s;
  EXPECT_EQ(s->x, 3);
  s->x = 9;
  EXPECT_EQ((*s).x, 9);
}

// --------------------------------------------------------------------- spin

TEST(SpinWait, CountsPauseRoundsThenYields) {
  SpinWait w(/*spin_limit=*/4);
  for (int i = 0; i < 4; ++i) w.wait();
  EXPECT_EQ(w.rounds(), 4u);
  w.wait();  // yield path; rounds saturates at the limit
  EXPECT_EQ(w.rounds(), 4u);
  w.reset();
  EXPECT_EQ(w.rounds(), 0u);
}

TEST(SpinWait, ZeroLimitYieldsImmediatelyWithoutCrashing) {
  SpinWait w(0);
  for (int i = 0; i < 8; ++i) w.wait();
  EXPECT_EQ(w.rounds(), 0u);
}

// ------------------------------------------------------------------ barrier

TEST(SenseBarrier, ReleasesAllThreadsEachCrossing) {
  constexpr int kThreads = 4;
  constexpr int kCrossings = 200;
  SenseBarrier b(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> bad{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      int sense = 0;
      for (int i = 0; i < kCrossings; ++i) {
        arrived.fetch_add(1);
        b.arrive(sense);
        // Everyone who will cross crossing i has already incremented.
        if (arrived.load() < (i + 1) * kThreads) bad.store(true);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(bad.load());
  EXPECT_EQ(arrived.load(), kThreads * kCrossings);
}

// Regression for the xval native-leg bug: a start/end barrier pair in a
// loop, exactly as run_native uses it. With one shared local sense the
// sense flips twice per iteration, each barrier object is always crossed
// with the same local value, and after the first iteration neither barrier
// makes anyone wait — threads overlap iterations freely. With one sense
// per barrier, between crossing `end` for iteration i and crossing `start`
// for iteration i+1, thread 0 must see every thread finished with i and
// none yet inside i+1.
TEST(SenseBarrier, StartEndPairDoesNotOverlapIterations) {
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  SenseBarrier start(kThreads);
  SenseBarrier end(kThreads);
  std::vector<std::atomic<int>> entered(kIters + 1);
  for (auto& e : entered) e.store(0);
  std::atomic<bool> overlap{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      int start_sense = 0;
      int end_sense = 0;
      for (int i = 0; i < kIters; ++i) {
        start.arrive(start_sense);
        entered[i].fetch_add(1);
        end.arrive(end_sense);
        if (t == 0) {
          // Only thread 0 runs here until it re-arrives at `start`:
          // everyone else is parked waiting on the next start crossing.
          if (entered[i].load() != kThreads) overlap.store(true);
          if (entered[i + 1].load() != 0) overlap.store(true);
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(overlap.load());
}

// ---------------------------------------------------------------------- rng

TEST(Rng, SplitMixIsDeterministicPerSeed) {
  SplitMix64 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  SplitMix64 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, XoshiroSequencesDifferAcrossSeeds) {
  Xoshiro256 a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(Rng, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleIsInHalfOpenUnitInterval) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliExtremesAreDegenerate) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

// -------------------------------------------------------------------- stats

TEST(Stats, RunningStatMatchesClosedForm) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(Stats, RunningStatSingleSampleHasZeroVariance) {
  RunningStat rs;
  rs.add(3.5);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.5);
  EXPECT_DOUBLE_EQ(rs.max(), 3.5);
}

TEST(Stats, PercentileInterpolatesBetweenPoints) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0 / 3.0), 20.0);
}

TEST(Stats, PercentileDegenerateInputs) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted({7.0}, 0.9), 7.0);
  // Out-of-range q is clamped.
  std::vector<double> v{1, 2};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, -3.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 5.0), 2.0);
}

TEST(Stats, SummarizeOrdersFields) {
  auto s = summarize({5, 1, 4, 2, 3});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_FALSE(s.to_string().empty());
}

// ------------------------------------------------------------------- timing

TEST(Timing, TscIsMonotonicEnough) {
  const auto a = rdtsc();
  const auto b = rdtscp();
  const auto c = rdtsc();
  EXPECT_LE(a, c);
  (void)b;
}

TEST(Timing, CalibratedFrequencyIsPlausible) {
  const double hz = tsc_hz();
  // Any real machine is between 100 MHz and 10 GHz.
  EXPECT_GT(hz, 1e8);
  EXPECT_LT(hz, 1e10);
  EXPECT_NEAR(tsc_to_ns(static_cast<std::uint64_t>(hz)), 1e9, 1e9 * 0.01);
}

TEST(Timing, StopwatchMeasuresSleep) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.millis(), 9.0);
  sw.reset();
  EXPECT_LT(sw.millis(), 9.0);
}

// ----------------------------------------------------------------- affinity

TEST(Affinity, OnlineCpusIsPositive) { EXPECT_GE(online_cpus(), 1u); }

TEST(Affinity, PinWrapsModuloCpuCount) {
  // Pinning to an index beyond the CPU count must still succeed (wraps).
  EXPECT_TRUE(pin_to_cpu(0));
  EXPECT_TRUE(pin_to_cpu(online_cpus() + 3));
}

// ---------------------------------------------------------------- histogram

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_floor(LogHistogram::bucket_of(v)), v);
  }
}

TEST(LogHistogram, BucketFloorIsTightLowerBound) {
  // For any value, the bucket floor is <= the value and within the
  // advertised relative error (1/16 for kSubBits = 4).
  for (std::uint64_t v : {17ull, 100ull, 1000ull, 123456ull, 99999999ull,
                          (1ull << 40) + 12345, ~0ull - 5}) {
    const std::uint64_t floor =
        LogHistogram::bucket_floor(LogHistogram::bucket_of(v));
    EXPECT_LE(floor, v);
    EXPECT_GE(floor, v - v / LogHistogram::kSubBuckets - 1);
    // Floors map back to their own bucket (canonical representative).
    EXPECT_EQ(LogHistogram::bucket_of(floor), LogHistogram::bucket_of(v));
  }
}

TEST(LogHistogram, EmptyHistogram) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(50), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, PercentilesOnUniformRamp) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(static_cast<double>(h.percentile(50)), 5000.0, 5000.0 / 16 + 1);
  EXPECT_NEAR(static_cast<double>(h.percentile(99)), 9900.0, 9900.0 / 16 + 1);
  EXPECT_EQ(h.percentile(100), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 0.001);
  // Percentiles are monotone in pct.
  std::uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0}) {
    const std::uint64_t q = h.percentile(p);
    EXPECT_GE(q, prev) << p;
    prev = q;
  }
}

TEST(LogHistogram, SingleValueAllPercentiles) {
  LogHistogram h;
  h.record(777);
  for (double p : {0.1, 50.0, 99.0, 100.0}) EXPECT_EQ(h.percentile(p), 777u);
}

TEST(LogHistogram, MergeMatchesCombinedRecording) {
  LogHistogram a, b, combined;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    (v % 2 ? a : b).record(v * 3);
    combined.record(v * 3);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {10.0, 50.0, 99.0}) {
    EXPECT_EQ(a.percentile(p), combined.percentile(p)) << p;
  }
  EXPECT_DOUBLE_EQ(a.mean(), combined.mean());
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
  h.record(9);
  EXPECT_EQ(h.percentile(50), 9u);
}

}  // namespace
}  // namespace lbmf
