#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/serve/serve.hpp"
#include "lbmf/util/histogram.hpp"
#include "lbmf/util/timing.hpp"

namespace lbmf::serve {
namespace {

// ---------------------------------------------------------------- SpscRing

TEST(SpscRing, FifoOrderAcrossWraparound) {
  SpscRing<int> r(8);
  int out[8];
  int next_push = 0, next_pop = 0;
  // Push/pop in a 5/3 pattern so the indices wrap several times.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 5; ++i) {
      if (r.try_push(next_push)) ++next_push;
    }
    const std::size_t n = r.pop_some(out, 3);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], next_pop++);
  }
  while (r.pop_some(out, 8) > 0) {
  }
}

TEST(SpscRing, FullAndEmptyBoundaries) {
  SpscRing<int> r(4);
  EXPECT_EQ(r.capacity(), 4u);
  int v;
  EXPECT_FALSE(r.try_pop(&v));
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));  // full
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.try_pop(&v));
  EXPECT_EQ(v, 0);
  EXPECT_TRUE(r.try_push(4));  // slot freed
  EXPECT_FALSE(r.try_push(5));
}

TEST(SpscRing, TwoThreadStream) {
  SpscRing<std::uint64_t> r(64);
  constexpr std::uint64_t kN = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN;) {
      if (r.try_push(i)) ++i;
    }
  });
  std::uint64_t expect = 0;
  std::uint64_t buf[32];
  while (expect < kN) {
    const std::size_t n = r.pop_some(buf, 32);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expect);
      ++expect;
    }
  }
  producer.join();
}

// ------------------------------------------------------------------ Server

template <typename P>
class ServerTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(ServerTest, Policies);

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.max_clients = 2;
  cfg.ring_capacity = 256;
  cfg.batch_limit = 64;
  cfg.initial_shard_capacity = 1u << 6;  // force growth under serving
  return cfg;
}

/// Submit kReqs requests (burst packets each) over `keys`, reap everything,
/// and return the per-key last-seen rule.
template <typename P>
std::uint64_t pump(Server<P>&, typename Server<P>::Client& client,
                   const std::vector<FlowKey>& keys, std::uint32_t burst,
                   LogHistogram* hist = nullptr) {
  std::uint64_t submitted = 0, reaped = 0;
  std::size_t next = 0;
  while (reaped < keys.size()) {
    if (submitted < keys.size()) {
      const std::uint64_t now = rdtsc();
      if (client.try_submit(keys[next], 64, burst, now)) {
        ++submitted;
        ++next;
      }
    }
    reaped += client.poll(hist);
  }
  return reaped;
}

TYPED_TEST(ServerTest, EndToEndAccountsEveryPacket) {
  Server<TypeParam> srv(small_config());
  srv.start();
  auto client = srv.make_client();

  constexpr std::size_t kReqs = 5000;
  std::vector<FlowKey> keys;
  keys.reserve(kReqs);
  for (std::size_t i = 0; i < kReqs; ++i) {
    keys.push_back(static_cast<FlowKey>(i % 1000 + 1));  // 1000 distinct
  }
  LogHistogram hist;
  EXPECT_EQ(pump(srv, client, keys, /*burst=*/2, &hist), kReqs);

  // Consistent wave export while owners are still live.
  EXPECT_EQ(srv.total_packets(), kReqs * 2u);
  EXPECT_EQ(hist.count(), kReqs);
  EXPECT_GT(hist.percentile(99), 0u);

  srv.stop();
  const ServerStats s = srv.stats();
  EXPECT_EQ(s.requests, kReqs);
  EXPECT_EQ(s.packets, kReqs * 2u);
  EXPECT_EQ(s.flows, 1000u);
  EXPECT_GE(s.grows, 2u);  // 64-slot shards grew to hold ~500 flows each
  // Both shards saw traffic (the router spreads 1..1000 over 2 shards).
  ASSERT_EQ(s.shards.size(), 2u);
  EXPECT_GT(s.shards[0].requests, 0u);
  EXPECT_GT(s.shards[1].requests, 0u);
}

TYPED_TEST(ServerTest, WavePushInstallsRulesAcrossShards) {
  Server<TypeParam> srv(small_config());
  srv.start();
  auto client = srv.make_client();

  // Rules pushed ahead of traffic: every update is an insert.
  std::vector<RuleUpdate> updates;
  for (FlowKey k = 1; k <= 64; ++k) {
    updates.push_back({k, static_cast<std::uint32_t>(k + 100)});
  }
  EXPECT_EQ(srv.push_rules_wave(updates), 0u);

  // Traffic for those keys must observe the pushed rules.
  std::vector<FlowKey> keys;
  for (FlowKey k = 1; k <= 64; ++k) keys.push_back(k);
  std::uint64_t reaped = 0;
  std::size_t next = 0;
  std::vector<std::uint32_t> rule_seen(65, 0);
  while (reaped < keys.size()) {
    if (next < keys.size() &&
        client.try_submit(keys[next], 64, 1, rdtsc())) {
      ++next;
    }
    // Reap through the shard rings directly to check rules per key.
    for (std::size_t s = 0; s < srv.num_shards(); ++s) {
      Response rs;
      while (srv.shard(s).egress(client.lane()).try_pop(&rs)) {
        rule_seen[rs.key] = rs.rule;
        ++reaped;
      }
    }
  }
  for (FlowKey k = 1; k <= 64; ++k) {
    EXPECT_EQ(rule_seen[k], k + 100) << k;
  }

  // A second wave over now-existing flows reports them all as updates.
  EXPECT_EQ(srv.push_rules_wave(updates), updates.size());
  // The sequential baseline applies the same way.
  EXPECT_EQ(srv.push_rules_sequential(updates), updates.size());
  srv.stop();
}

TYPED_TEST(ServerTest, EvictSweepDropsColdFlowsUnderLoad) {
  Server<TypeParam> srv(small_config());
  srv.start();
  auto client = srv.make_client();

  // 200 hot keys x 5 requests, 800 cold keys x 1.
  std::vector<FlowKey> keys;
  for (FlowKey k = 1; k <= 200; ++k) {
    for (int r = 0; r < 5; ++r) keys.push_back(k);
  }
  for (FlowKey k = 201; k <= 1000; ++k) keys.push_back(k);
  pump(srv, client, keys, /*burst=*/1);

  EXPECT_EQ(srv.evict_sweep(5), 800u);
  const ServerStats s = srv.stats();
  EXPECT_EQ(s.flows, 200u);
  // Survivors keep serving and their stats live on.
  std::vector<FlowKey> again(10, 7);
  pump(srv, client, again, /*burst=*/1);
  srv.stop();
  auto st = srv.shard(srv.shard_of(7)).table().owner_peek(7);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->packets, 15u);
}

TEST(ServerClients, TwoClientLanesAreIndependent) {
  ServeConfig cfg = small_config();
  Server<AsymmetricSignalFence> srv(cfg);
  srv.start();
  auto c1 = srv.make_client();
  auto c2 = srv.make_client();
  EXPECT_NE(c1.lane(), c2.lane());

  constexpr std::size_t kReqs = 3000;
  std::atomic<std::uint64_t> total{0};
  std::thread t2([&] {
    auto keys = std::vector<FlowKey>(kReqs, 0);
    for (std::size_t i = 0; i < kReqs; ++i) {
      keys[i] = static_cast<FlowKey>(2000 + i % 500);
    }
    total.fetch_add(pump(srv, c2, keys, 1));
  });
  std::vector<FlowKey> keys(kReqs, 0);
  for (std::size_t i = 0; i < kReqs; ++i) {
    keys[i] = static_cast<FlowKey>(1 + i % 500);
  }
  total.fetch_add(pump(srv, c1, keys, 1));
  t2.join();
  EXPECT_EQ(total.load(), 2 * kReqs);
  srv.stop();
  EXPECT_EQ(srv.stats().packets, 2 * kReqs);
  EXPECT_EQ(srv.stats().flows, 1000u);
}

TEST(ServerAdaptive, AdaptiveShardsServeCorrectlyAndRecordModes) {
  // Correctness smoke for P = AdaptiveFence: accounting must be exact
  // regardless of any live per-shard regime switches. (The deterministic
  // phase-change switching assertion lives in bench_serve's E19 leg, where
  // the phases are long enough to be reliable.)
  ServeConfig cfg = small_config();
  cfg.adapt = true;
  cfg.sample_every = 64;
  cfg.selector.confirm_windows = 2;
  cfg.selector.fixed_roundtrip_cycles = 10000;
  Server<adapt::AdaptiveFence> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  constexpr std::size_t kReqs = 20000;
  std::vector<FlowKey> keys;
  keys.reserve(kReqs);
  for (std::size_t i = 0; i < kReqs; ++i) {
    keys.push_back(static_cast<FlowKey>(i % 256 + 1));
  }
  pump(srv, client, keys, /*burst=*/2);
  // A burst of remote updates against both shards.
  for (int round = 0; round < 200; ++round) {
    for (FlowKey k = 1; k <= 8; ++k) {
      srv.update_rule(k, static_cast<std::uint32_t>(round));
    }
  }
  pump(srv, client, keys, /*burst=*/1);
  srv.stop();

  const ServerStats s = srv.stats();
  EXPECT_EQ(s.packets, kReqs * 3u);
  EXPECT_EQ(s.flows, 256u);
  ASSERT_EQ(s.shards.size(), 2u);
  // Every one of the 1600 updates went through some shard's secondary side.
  std::uint64_t secondary = 0;
  for (const ShardStats& sh : s.shards) secondary += sh.sync.secondary_acquires;
  EXPECT_EQ(secondary, 1600u);
}

TEST(ServerRouting, ShardOfIsStableAndInRange) {
  Server<SymmetricFence> srv([] {
    ServeConfig cfg;
    cfg.shards = 8;
    cfg.ring_capacity = 64;
    return cfg;
  }());
  std::set<std::size_t> hit;
  for (FlowKey k = 1; k <= 4096; ++k) {
    const std::size_t s = srv.shard_of(k);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, srv.shard_of(k));
    hit.insert(s);
  }
  EXPECT_EQ(hit.size(), 8u);  // router actually spreads keys
}

}  // namespace
}  // namespace lbmf::serve
