#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "lbmf/core/membarrier.hpp"

namespace lbmf {
namespace {

TEST(Membarrier, AvailabilityProbeIsStable) {
  const bool first = membarrier::available();
  const bool second = membarrier::available();
  EXPECT_EQ(first, second);
}

TEST(Membarrier, BarrierReturnsRegardlessOfSupport) {
  // barrier() must be callable whether or not the kernel supports it (it
  // degrades to a local fence); it must simply not hang or crash.
  for (int i = 0; i < 10; ++i) membarrier::barrier();
  SUCCEED();
}

TEST(Membarrier, BarrierOrdersAgainstRunningPeer) {
  if (!membarrier::available()) {
    GTEST_SKIP() << "membarrier PRIVATE_EXPEDITED not supported here";
  }
  std::atomic<bool> stop{false};
  std::atomic<int> data{0};
  std::atomic<int> seq{0};

  std::thread peer([&] {
    int v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      data.store(v, std::memory_order_relaxed);
      seq.store(v, std::memory_order_relaxed);
    }
  });

  for (int i = 0; i < 200; ++i) {
    membarrier::barrier();
    const int s = seq.load(std::memory_order_relaxed);
    const int d = data.load(std::memory_order_relaxed);
    EXPECT_GE(d, s - 1);
  }

  stop.store(true, std::memory_order_release);
  peer.join();
}

}  // namespace
}  // namespace lbmf
