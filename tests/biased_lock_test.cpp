#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lbmf/dekker/biased_lock.hpp"

namespace lbmf {
namespace {

template <typename P>
class BiasedLockTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(BiasedLockTest, Policies);

TYPED_TEST(BiasedLockTest, FirstLockerBecomesBiasHolder) {
  BiasedLock<TypeParam> lock;
  EXPECT_FALSE(lock.is_biased());
  lock.lock();
  EXPECT_TRUE(lock.is_biased());
  lock.unlock();
  for (int i = 0; i < 1000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.fast_acquires(), 1001u);
  EXPECT_EQ(lock.fast_releases(), 1001u);
  EXPECT_EQ(lock.revocations(), 0u);
  lock.release_bias();
  EXPECT_FALSE(lock.is_biased());
}

TYPED_TEST(BiasedLockTest, SecondThreadRevokesAndBothStayExclusive) {
  BiasedLock<TypeParam> lock;
  volatile long counter = 0;
  constexpr long kHolderIters = 20000;
  constexpr long kOtherIters = 5000;
  std::atomic<bool> holder_claimed{false};
  std::atomic<bool> others_done{false};

  std::thread holder([&] {
    lock.lock();  // claim the bias
    lock.unlock();
    holder_claimed.store(true, std::memory_order_release);
    for (long i = 0; i < kHolderIters; ++i) {
      lock.lock();
      counter = counter + 1;
      lock.unlock();
    }
    while (!others_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // One more pass so the holder observes the revocation (if any) and
    // releases its serializer registration.
    lock.lock();
    counter = counter + 1;
    lock.unlock();
  });
  while (!holder_claimed.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::thread other([&] {
    for (long i = 0; i < kOtherIters; ++i) {
      lock.lock();
      counter = counter + 1;
      lock.unlock();
    }
  });
  other.join();
  others_done.store(true, std::memory_order_release);
  holder.join();

  EXPECT_EQ(counter, kHolderIters + kOtherIters + 1);
  EXPECT_EQ(lock.revocations(), 1u);
  EXPECT_FALSE(lock.is_biased());
}

TYPED_TEST(BiasedLockTest, ManyRevokersSingleRevocation) {
  BiasedLock<TypeParam> lock;
  std::atomic<bool> claimed{false};
  std::atomic<bool> done{false};
  volatile long counter = 0;

  std::thread holder([&] {
    lock.lock();
    claimed.store(true, std::memory_order_release);
    counter = counter + 1;
    lock.unlock();
    while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
    lock.lock();  // observe revocation, drop registration
    lock.unlock();
  });
  while (!claimed.load(std::memory_order_acquire)) std::this_thread::yield();

  constexpr int kThreads = 4;
  constexpr long kEach = 1000;
  std::vector<std::thread> revokers;
  for (int t = 0; t < kThreads; ++t) {
    revokers.emplace_back([&] {
      for (long i = 0; i < kEach; ++i) {
        lock.lock();
        counter = counter + 1;
        lock.unlock();
      }
    });
  }
  for (auto& t : revokers) t.join();
  done.store(true, std::memory_order_release);
  holder.join();

  EXPECT_EQ(counter, 1 + kThreads * kEach);
  EXPECT_EQ(lock.revocations(), 1u);  // exactly one revocation ever
}

TYPED_TEST(BiasedLockTest, HolderMidCriticalSectionBlocksRevoker) {
  BiasedLock<TypeParam> lock;
  std::atomic<bool> in_cs{false};
  std::atomic<bool> release{false};
  std::atomic<bool> revoker_acquired{false};

  std::thread holder([&] {
    lock.lock();
    in_cs.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.unlock();
    while (!revoker_acquired.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    lock.lock();  // post-revocation acquire via the fallback mutex
    lock.unlock();
  });
  while (!in_cs.load(std::memory_order_acquire)) std::this_thread::yield();

  std::thread revoker([&] {
    lock.lock();  // must block until the holder leaves
    revoker_acquired.store(true, std::memory_order_release);
    lock.unlock();
  });

  // Give the revoker a moment: it must NOT acquire while the holder is in.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(revoker_acquired.load(std::memory_order_acquire));

  release.store(true, std::memory_order_release);
  revoker.join();
  holder.join();
  EXPECT_TRUE(revoker_acquired.load());
}

TEST(BiasedLockAsymmetry, FastPathHasNoSerializationCost) {
  BiasedLock<AsymmetricSignalFence> lock;
  lock.lock();
  lock.unlock();
  // Uncontended biased acquires: no revocations, all fast.
  for (int i = 0; i < 100; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_EQ(lock.fast_acquires(), 101u);
  EXPECT_EQ(lock.revocations(), 0u);
  lock.release_bias();
}

}  // namespace
}  // namespace lbmf
