// Unit tests for the LE/ST mechanism itself (Sec. 3 of the paper): link
// arming, the four link-breaking events, the double-flush corner case, and
// the guard-triggered remote flush that delivers the up-to-date value.
#include <gtest/gtest.h>

#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg2() {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

constexpr Addr kL1 = addr::kFlag0;
constexpr Addr kL2 = addr::kFlag1;

/// CPU0 runs the first `n` micro-steps of lmfence(kL1, 1), i.e. the Fig. 3(b)
/// sequence SetLink; LE; ST; BranchLink; [MFENCE].
Machine lmfence_machine(SimConfig cfg = cfg2()) {
  Machine m(cfg);
  ProgramBuilder p("lmf");
  p.lmfence(kL1, 1);
  p.load(reg::kObs0, kL2);  // the Dekker-style subsequent read
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder s("peer");
  s.load(reg::kObs0, kL1);
  s.halt();
  m.load_program(1, s.build());
  return m;
}

TEST(SimLeSt, LinkArmsAfterSetLinkAndLe) {
  Machine m = lmfence_machine();
  m.step(0, Action::Execute);  // SetLink
  EXPECT_TRUE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).le_addr, kL1);
  m.step(0, Action::Execute);  // LE: line now Exclusive locally
  EXPECT_EQ(m.line_state(0, kL1), Mesi::Exclusive);
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimLeSt, GuardedStoreCommitsWithoutFence) {
  Machine m = lmfence_machine();
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);  // through branch
  // The link held, so the branch skipped the MFENCE: the store is still
  // parked in the buffer and no mfence was executed.
  EXPECT_EQ(m.cpu(0).counters.mfences, 0u);
  EXPECT_EQ(m.cpu(0).sb.size(), 1u);
  EXPECT_TRUE(m.cpu(0).sb.entries().front().guarded);
  EXPECT_TRUE(m.cpu(0).le_bit);
}

TEST(SimLeSt, RemoteReadTriggersFlushAndSeesFreshValue) {
  Machine m = lmfence_machine();
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  ASSERT_EQ(m.cpu(0).sb.size(), 1u);
  // CPU1 now reads the guarded location: the guard must fire, flush CPU0's
  // buffer, and only then serve the read — delivering the new value.
  m.step(1, Action::Execute);
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 1);  // saw the completed store
  EXPECT_TRUE(m.cpu(0).sb.empty());
  EXPECT_FALSE(m.cpu(0).le_bit);  // link cleared
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 1u);
  EXPECT_EQ(m.cpu(0).counters.mfences, 0u);  // never a program-based fence
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimLeSt, NaturalDrainClearsLinkWithoutFlush) {
  Machine m = lmfence_machine();
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  m.step(0, Action::Drain);  // the guarded store completes naturally
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).counters.link_clears_complete, 1u);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 0u);
  // Line may legitimately stay Modified in CPU0's cache.
  EXPECT_EQ(m.line_state(0, kL1), Mesi::Modified);
}

TEST(SimLeSt, LinkBrokenBetweenLeAndStTakesMfencePath) {
  // The rare double-flush case of Sec. 3: a downgrade request arrives
  // between LE and ST; the processor flushes on notification and must then
  // flush again via the branch-to-MFENCE after the store commits.
  Machine m = lmfence_machine();
  m.step(0, Action::Execute);  // SetLink
  m.step(0, Action::Execute);  // LE (Exclusive)
  m.step(1, Action::Execute);  // remote read fires the guard early
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 1u);
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 0);  // store had not committed yet
  m.step(0, Action::Execute);  // ST commits (unguarded now)
  EXPECT_FALSE(m.cpu(0).sb.entries().front().guarded);
  m.step(0, Action::Execute);  // branch: link clear -> falls through
  m.step(0, Action::Execute);  // MFENCE: the second flush
  EXPECT_EQ(m.cpu(0).counters.mfences, 1u);
  EXPECT_TRUE(m.cpu(0).sb.empty());
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimLeSt, SecondLmfenceDifferentLocationFlushesFirst) {
  Machine m(cfg2());
  ProgramBuilder p("two-lmf");
  p.lmfence(kL1, 1);
  p.lmfence(kL2, 1);
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder idle("idle");
  idle.halt();
  m.load_program(1, idle.build());

  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);  // first lmfence
  ASSERT_TRUE(m.cpu(0).le_bit);
  ASSERT_EQ(m.cpu(0).sb.size(), 1u);
  m.step(0, Action::Execute);  // SetLink of the second lmfence
  // Sec. 3: the processor must clear the first link and flush before it can
  // proceed with the second l-mfence.
  EXPECT_EQ(m.cpu(0).counters.link_breaks_second, 1u);
  EXPECT_TRUE(m.cpu(0).sb.empty());  // first store was forced to complete
  EXPECT_TRUE(m.cpu(0).le_bit);      // new link armed
  EXPECT_EQ(m.cpu(0).le_addr, kL2);
}

TEST(SimLeSt, SecondLmfenceSameLocationKeepsLink) {
  Machine m(cfg2());
  ProgramBuilder p("two-lmf-same");
  p.lmfence(kL1, 1);
  p.lmfence(kL1, 2);
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder idle("idle");
  idle.halt();
  m.load_program(1, idle.build());

  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  m.step(0, Action::Execute);  // SetLink, same address: no flush
  EXPECT_EQ(m.cpu(0).counters.link_breaks_second, 0u);
  EXPECT_EQ(m.cpu(0).sb.size(), 1u);  // first store still parked
  for (int i = 0; i < 3; ++i) m.step(0, Action::Execute);  // LE, ST, branch
  EXPECT_EQ(m.cpu(0).sb.size(), 2u);
  EXPECT_EQ(m.cpu(0).counters.mfences, 0u);
}

TEST(SimLeSt, DrainingOlderGuardedStoreKeepsLinkForNewerOne) {
  // Two consecutive l-mfences to the same location park two guarded
  // stores. Completing the older one must NOT clear the link: a remote
  // read after that point still has to trigger the guard so it observes
  // the *newer* value (Definition 2).
  Machine m(cfg2());
  ProgramBuilder p("two-lmf-same-drain");
  p.lmfence(kL1, 1);
  p.lmfence(kL1, 2);
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder s("reader");
  s.load(reg::kObs0, kL1);
  s.halt();
  m.load_program(1, s.build());

  for (int i = 0; i < 8; ++i) m.step(0, Action::Execute);  // both lmfences
  ASSERT_EQ(m.cpu(0).sb.size(), 2u);
  m.step(0, Action::Drain);  // the OLDER guarded store completes
  EXPECT_TRUE(m.cpu(0).le_bit);  // link survives for the newer one
  EXPECT_EQ(m.cpu(0).counters.link_clears_complete, 0u);
  m.step(1, Action::Execute);  // remote read fires the guard
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 2);  // sees the NEWER value
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimLeSt, DrainingLastGuardedStoreClearsLink) {
  Machine m = lmfence_machine();
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  m.step(0, Action::Drain);
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).counters.link_clears_complete, 1u);
}

TEST(SimLeSt, EvictionOfGuardedLineBreaksLink) {
  SimConfig cfg = cfg2();
  cfg.cache_capacity = 2;  // tiny cache to force eviction
  Machine m(cfg);
  ProgramBuilder p("evict");
  p.lmfence(kL1, 1);
  // Touch two other lines; the second fill must evict the guarded line.
  p.load(2, 50);
  p.load(3, 60);
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder idle("idle");
  idle.halt();
  m.load_program(1, idle.build());

  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);  // lmfence done
  ASSERT_TRUE(m.cpu(0).le_bit);
  m.step(0, Action::Execute);  // load 50: cache holds {kL1, 50}
  m.step(0, Action::Execute);  // load 60: evicts LRU = guarded kL1
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_evict, 1u);
  EXPECT_TRUE(m.cpu(0).sb.empty());  // flushed on eviction
  // The flush re-acquired kL1 to complete the store... which may itself have
  // evicted another line; whatever happened, coherence must hold and memory
  // must eventually see the value after writeback. At minimum:
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimLeSt, InterruptDrainsGuardedStoreAndClearsLink) {
  Machine m = lmfence_machine();
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  ASSERT_TRUE(m.cpu(0).le_bit);
  m.deliver_interrupt(0);  // context switch / signal: full drain
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_TRUE(m.cpu(0).sb.empty());
}

TEST(SimLeSt, AblatedHardwareAlwaysFencesInstead) {
  SimConfig cfg = cfg2();
  cfg.le_st_enabled = false;  // no LE/ST support: link never arms
  Machine m = lmfence_machine(cfg);
  for (int i = 0; i < 5; ++i) m.step(0, Action::Execute);
  // Branch saw LEBit == 0, fell through, executed MFENCE.
  EXPECT_EQ(m.cpu(0).counters.mfences, 1u);
  EXPECT_TRUE(m.cpu(0).sb.empty());
}

TEST(SimLeSt, RemoteWriteAlsoTriggersGuard) {
  Machine m(cfg2());
  ProgramBuilder p("primary");
  p.lmfence(kL1, 1);
  p.halt();
  m.load_program(0, p.build());
  ProgramBuilder w("writer");
  w.store(kL1, 9);
  w.mfence();
  w.halt();
  m.load_program(1, w.build());

  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  ASSERT_TRUE(m.cpu(0).le_bit);
  m.step(1, Action::Execute);  // store commits on CPU1 (no bus yet)
  EXPECT_TRUE(m.cpu(0).le_bit);  // commit alone does not touch the bus
  m.step(1, Action::Execute);  // mfence: completion needs Exclusive -> guard
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 1u);
  // CPU1's write serialized after CPU0's guarded store (Lemma 3).
  EXPECT_EQ(m.memory(kL1), 1);  // CPU0's value written back first...
  EXPECT_EQ(m.line_state(1, kL1), Mesi::Modified);  // ...then CPU1 owns it
  const CacheLine* l = m.cpu(1).cache.peek(kL1);
  ASSERT_NE(l, nullptr);
  EXPECT_EQ(l->at(0), 9);
}

TEST(SimLeSt, RoundTripCostMatchesPaperScale) {
  // Paper Sec. 5: LE/ST round trip ~150 cycles vs ~10,000 for signals.
  Machine hw = make_roundtrip_machine(/*use_interrupt=*/false);
  for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);  // arm + park
  hw.step(1, Action::Execute);                              // remote read
  const auto hw_cost = hw.cpu(1).counters.cycles;

  Machine sw = make_roundtrip_machine(/*use_interrupt=*/true);
  sw.step(0, Action::Execute);   // plain store parked in SB
  sw.deliver_interrupt(0);       // signal leg into the primary
  sw.step(1, Action::Execute);   // read after the flush
  const auto sw_cost =
      sw.cpu(0).counters.cycles + sw.cpu(1).counters.cycles;

  EXPECT_GE(hw_cost, 100u);
  EXPECT_LE(hw_cost, 300u);
  EXPECT_GE(sw_cost, 5000u);
  EXPECT_GT(sw_cost / hw_cost, 20u);  // order-of-magnitude gap
}

}  // namespace
}  // namespace lbmf::sim
