#include <gtest/gtest.h>

#include "lbmf/model/cost_model.hpp"
#include "lbmf/sim/litmus.hpp"

namespace lbmf::model {
namespace {

// ------------------------------------------------------------- enum naming

TEST(CostModelNames, FenceImplToStringRoundTrips) {
  for (FenceImpl f : {FenceImpl::kMfence, FenceImpl::kSignal,
                      FenceImpl::kSignalAck, FenceImpl::kLest,
                      FenceImpl::kNone}) {
    const auto back = fence_impl_from_string(to_string(f));
    ASSERT_TRUE(back.has_value()) << to_string(f);
    EXPECT_EQ(*back, f);
  }
  EXPECT_FALSE(fence_impl_from_string("sfence").has_value());
  EXPECT_FALSE(fence_impl_from_string("").has_value());
}

TEST(CostModelNames, SimFenceKindToStringRoundTrips) {
  using sim::FenceKind;
  for (FenceKind k :
       {FenceKind::kNone, FenceKind::kMfence, FenceKind::kLmfence}) {
    const auto back = sim::fence_kind_from_string(sim::to_string(k));
    ASSERT_TRUE(back.has_value()) << sim::to_string(k);
    EXPECT_EQ(*back, k);
  }
  // The litmus grammar's bare spelling is accepted too.
  const auto bare = sim::fence_kind_from_string("lmfence");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(*bare, FenceKind::kLmfence);
  EXPECT_FALSE(sim::fence_kind_from_string("sfence").has_value());
}

TEST(CostModelNames, DefaultTableKeepsThePaperCostOrdering) {
  // The whole asymmetric-fence argument rests on this chain: an l-mfence
  // victim pays a few cycles, an mfence ~a hundred, a signal ~ten thousand.
  const CostTable c;
  EXPECT_LT(c.compiler_fence_cycles, c.lest_victim_cycles);
  EXPECT_LT(c.lest_victim_cycles, c.mfence_cycles);
  EXPECT_LT(c.mfence_cycles, c.signal_roundtrip_cycles);
  EXPECT_LT(c.lest_roundtrip_cycles, c.signal_roundtrip_cycles);
  EXPECT_LT(c.lest_primary_penalty_cycles, c.signal_primary_penalty_cycles);
}

// ---------------------------------------------------------- per-event costs

TEST(CostModel, VictimFenceCostOrdering) {
  CostTable c;
  // mfence > LE/ST victim overhead > compiler fence: the central premise.
  EXPECT_GT(victim_fence_cycles(FenceImpl::kMfence, c),
            victim_fence_cycles(FenceImpl::kLest, c));
  EXPECT_GE(victim_fence_cycles(FenceImpl::kLest, c),
            victim_fence_cycles(FenceImpl::kSignal, c));
  EXPECT_EQ(victim_fence_cycles(FenceImpl::kSignal, c), 0.0);
}

TEST(CostModel, RemoteSerializationCostOrdering) {
  CostTable c;
  // Paper Sec. 5: signal ~10k cycles, LE/ST ~150 cycles.
  EXPECT_NEAR(remote_serialize_cycles(FenceImpl::kSignal, c), 10'000, 1);
  EXPECT_NEAR(remote_serialize_cycles(FenceImpl::kLest, c), 150, 1);
  EXPECT_GT(remote_serialize_cycles(FenceImpl::kSignal, c) /
                remote_serialize_cycles(FenceImpl::kLest, c),
            20.0);
}

// --------------------------------------------------------------- Fig 5 model

WsCounts fib_like() {
  // fib-shaped: enormous spawn count, tiny work per spawn, few steals.
  WsCounts w;
  w.spawns = 1'000'000;
  w.steal_attempts = 200;
  w.steals_success = 190;
  w.work_cycles = 1.0e8;  // ~100 cycles of real work per spawn
  return w;
}

WsCounts heat_like() {
  // heat-shaped: few fences avoided per steal attempt (paper: why heat
  // loses under the software prototype at 16 cores).
  WsCounts w;
  w.spawns = 40'000;
  w.steal_attempts = 12'000;
  w.steals_success = 11'000;
  w.work_cycles = 4.0e8;
  return w;
}

TEST(CostModelFig5, SerialAsymmetricAlwaysWins) {
  CostTable c;
  // With one worker there are no steals; removing the fence can only help.
  for (auto counts : {fib_like(), heat_like()}) {
    counts.steal_attempts = 0;
    counts.steals_success = 0;
    const double rel = ws_relative_time(counts, 1, FenceImpl::kSignal, c);
    EXPECT_LT(rel, 1.0);
  }
}

TEST(CostModelFig5, FibGainsHalfItsSpawnOverheadSerially) {
  // Paper: "the spawn overhead is cut by half if one could avoid the
  // fence". With work ≈ fence-cost per spawn, relative time ≈ 0.5.
  CostTable c;
  WsCounts w = fib_like();
  w.steal_attempts = 0;
  w.work_cycles = static_cast<double>(w.spawns) * c.mfence_cycles;
  const double rel = ws_relative_time(w, 1, FenceImpl::kSignal, c);
  EXPECT_NEAR(rel, 0.5, 0.02);
}

TEST(CostModelFig5, HeatLosesUnderSignalsButWinsUnderLest) {
  // The paper's headline parallel result: heat (and cholesky/lu via poor
  // steal efficiency) lose with the software prototype at 16 cores, and
  // the LE/ST hardware would recover them.
  CostTable c;
  const WsCounts w = heat_like();
  const double signal_rel = ws_relative_time(w, 16, FenceImpl::kSignal, c);
  const double lest_rel = ws_relative_time(w, 16, FenceImpl::kLest, c);
  EXPECT_GT(signal_rel, 1.0);
  EXPECT_LT(lest_rel, 1.0);
}

TEST(CostModelFig5, FibStillWinsInParallelUnderSignals) {
  CostTable c;
  const double rel = ws_relative_time(fib_like(), 16, FenceImpl::kSignal, c);
  EXPECT_LT(rel, 1.0);
}

TEST(CostModelFig5, MorePerWorkerStealsErodeTheWin) {
  CostTable c;
  WsCounts w = fib_like();
  const double few = ws_relative_time(w, 16, FenceImpl::kSignal, c);
  w.steal_attempts = 100'000;
  const double many = ws_relative_time(w, 16, FenceImpl::kSignal, c);
  EXPECT_GT(many, few);
}

// --------------------------------------------------------------- Fig 6 model

TEST(CostModelFig6, HighRatioFavorsArwLowRatioFavorsSrw) {
  CostTable c;
  RwParams p;
  p.threads = 8;
  p.read_write_ratio = 300;  // paper's least-asymmetric setting
  const double low = rw_relative_throughput(p, FenceImpl::kSignal, c);
  p.read_write_ratio = 100'000;  // most asymmetric
  const double high = rw_relative_throughput(p, FenceImpl::kSignal, c);
  EXPECT_LT(low, 1.0);   // Fig 6(a): ARW loses at 300:1, 8 threads
  EXPECT_GT(high, 1.0);  // and wins at 100000:1
  EXPECT_GT(high, low);
}

TEST(CostModelFig6, ArwScalesWorseWithThreadsAtFixedRatio) {
  // Fig 6(a): at a fixed moderate ratio, more threads means more signals
  // per write and a lower normalized throughput.
  CostTable c;
  RwParams p;
  p.read_write_ratio = 1000;
  p.threads = 2;
  const double t2 = rw_relative_throughput(p, FenceImpl::kSignal, c);
  p.threads = 16;
  const double t16 = rw_relative_throughput(p, FenceImpl::kSignal, c);
  EXPECT_GT(t2, t16);
}

TEST(CostModelFig6, WaitingHeuristicDominatesPlainArw) {
  // Fig 6(b): ARW+ beats ARW across the sweep.
  CostTable c;
  for (double ratio : {300.0, 1000.0, 10'000.0, 100'000.0}) {
    for (std::size_t threads : {2u, 4u, 8u, 16u}) {
      RwParams p;
      p.read_write_ratio = ratio;
      p.threads = threads;
      const double arw = rw_relative_throughput(p, FenceImpl::kSignal, c);
      const double arwp = rw_relative_throughput(p, FenceImpl::kSignalAck, c);
      EXPECT_GE(arwp, arw) << ratio << ":" << threads;
    }
  }
}

TEST(CostModelFig6, ArwPlusBeatsSrwAboveThreeHundredToOne) {
  // Fig 6(b): ARW+ is >= 1 everywhere except roughly the 300:1 row.
  CostTable c;
  for (double ratio : {1000.0, 10'000.0, 100'000.0}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u, 16u}) {
      RwParams p;
      p.read_write_ratio = ratio;
      p.threads = threads;
      EXPECT_GT(rw_relative_throughput(p, FenceImpl::kSignalAck, c), 1.0)
          << ratio << ":" << threads;
    }
  }
}

TEST(CostModelFig6, LestWinsAlmostEverywhere) {
  // The paper's expectation for the hardware mechanism: with a 150-cycle
  // round trip the ARW lock should "perform and scale well".
  CostTable c;
  for (double ratio : {1000.0, 10'000.0, 100'000.0}) {
    for (std::size_t threads : {2u, 8u, 16u}) {
      RwParams p;
      p.read_write_ratio = ratio;
      p.threads = threads;
      EXPECT_GT(rw_relative_throughput(p, FenceImpl::kLest, c), 1.0)
          << ratio << ":" << threads;
    }
  }
}

}  // namespace
}  // namespace lbmf::model
