#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "lbmf/ws/scheduler.hpp"

namespace lbmf::ws {
namespace {

// ------------------------------------------------------------- deque alone

TEST(TheDeque, LifoForVictimFifoForThief) {
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  auto mk = [&g] { return ClosureTask(g, [] {}); };
  auto t1 = mk();
  auto t2 = mk();
  auto t3 = mk();
  d.push(&t1);
  d.push(&t2);
  d.push(&t3);
  EXPECT_EQ(d.pop(), &t3);          // victim pops youngest
  EXPECT_EQ(d.steal(), &t1);        // thief steals oldest
  EXPECT_EQ(d.pop(), &t2);
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(TheDeque, PopOnEmptyTakesConflictPath) {
  TheDeque<SymmetricFence> d;
  EXPECT_EQ(d.pop(), nullptr);
  const DequeStats s = d.stats();
  EXPECT_EQ(s.pops_empty, 1u);
  EXPECT_EQ(s.pops_fast, 0u);
}

TEST(TheDeque, StatsCountFences) {
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  auto t1 = ClosureTask(g, [] {});
  d.push(&t1);
  (void)d.pop();
  (void)d.steal();
  const DequeStats s = d.stats();
  EXPECT_EQ(s.pushes, 1u);
  EXPECT_EQ(s.victim_fences, 1u);
  EXPECT_EQ(s.thief_fences, 1u);
  EXPECT_EQ(s.steals_empty, 1u);
}

TEST(TheDeque, ResetStatsZeroesBothSides) {
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  auto t1 = ClosureTask(g, [] {});
  d.push(&t1);
  (void)d.pop();
  (void)d.steal();
  d.reset_stats();
  const DequeStats s = d.stats();
  EXPECT_EQ(s.pushes, 0u);
  EXPECT_EQ(s.victim_fences, 0u);
  EXPECT_EQ(s.pops_fast, 0u);
  EXPECT_EQ(s.thief_fences, 0u);
  EXPECT_EQ(s.steals_empty, 0u);
}

TEST(TheDeque, StatsAreReadableWhileVictimAndThiefRun) {
  // Regression for the stats() data race: the live counters must be
  // atomics, so a concurrent reader sees well-defined (if slightly stale)
  // values. Run under TSan (deque_tsan_test drives the same shape) this
  // used to report plain uint64_t read/write races.
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  constexpr int kTasks = 20000;
  std::vector<ClosureTask<void (*)()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) tasks.emplace_back(g, +[] {});

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> removed{0};
  std::thread thief([&] {
    while (!stop.load(std::memory_order_acquire)) {
      if (d.steal() != nullptr) {
        removed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const DequeStats s = d.stats();
      // Monotone counters: a snapshot can lag but never exceeds what the
      // victim/thief have actually done.
      EXPECT_LE(s.pushes, static_cast<std::uint64_t>(kTasks));
      EXPECT_LE(s.steals_success + s.pops_fast,
                static_cast<std::uint64_t>(kTasks));
    }
  });
  for (auto& t : tasks) {
    d.push(&t);
    if (d.pop() != nullptr) removed.fetch_add(1, std::memory_order_relaxed);
  }
  while (d.steal() != nullptr) removed.fetch_add(1, std::memory_order_relaxed);
  stop.store(true, std::memory_order_release);
  thief.join();
  reader.join();

  EXPECT_EQ(removed.load(), static_cast<std::uint64_t>(kTasks));
  const DequeStats s = d.stats();
  EXPECT_EQ(s.pushes, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(s.pops_fast + s.pops_conflict - s.pops_empty + s.steals_success,
            static_cast<std::uint64_t>(kTasks));
}

TEST(TheDeque, PopExpectingNonemptySucceedsWhenTrulyNonempty) {
  // Single-threaded, the advisory answer cannot go stale: the tripwire
  // must pass through the popped task.
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  auto t1 = ClosureTask(g, [] {});
  d.push(&t1);
  ASSERT_FALSE(d.looks_empty());
  EXPECT_EQ(d.pop_expecting_nonempty(), &t1);
}

TEST(TheDeque, InterleavedPushPopKeepsOrder) {
  TheDeque<SymmetricFence> d;
  TaskGroupBase g;
  std::vector<ClosureTask<void (*)()>> tasks;
  tasks.reserve(8);
  for (int i = 0; i < 8; ++i) {
    tasks.emplace_back(g, +[] {});
  }
  d.push(&tasks[0]);
  d.push(&tasks[1]);
  EXPECT_EQ(d.pop(), &tasks[1]);
  d.push(&tasks[2]);
  EXPECT_EQ(d.steal(), &tasks[0]);
  EXPECT_EQ(d.steal(), &tasks[2]);
  EXPECT_EQ(d.steal(), nullptr);
}

// ------------------------------------------------------------ scheduler

template <typename P>
class SchedulerTest : public ::testing::Test {};

using Policies = ::testing::Types<SymmetricFence, AsymmetricSignalFence,
                                  AsymmetricMembarrierFence>;
TYPED_TEST_SUITE(SchedulerTest, Policies);

TYPED_TEST(SchedulerTest, RunsRootTask) {
  Scheduler<TypeParam> sched(2);
  std::atomic<int> x{0};
  sched.run([&] { x.store(42); });
  EXPECT_EQ(x.load(), 42);
}

TYPED_TEST(SchedulerTest, SpawnAndSyncSingleChild) {
  Scheduler<TypeParam> sched(2);
  int child = 0;
  sched.run([&] {
    typename Scheduler<TypeParam>::TaskGroup tg;
    auto t = tg.capture([&] { child = 7; });
    tg.spawn(t);
    tg.sync();
  });
  EXPECT_EQ(child, 7);
}

template <typename P>
void ws_fib(long n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  typename Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([n, &a] { ws_fib<P>(n - 1, &a); });
  tg.spawn(t);
  ws_fib<P>(n - 2, &b);
  tg.sync();
  *out = a + b;
}

TYPED_TEST(SchedulerTest, RecursiveFibIsCorrect) {
  Scheduler<TypeParam> sched(3);
  long result = 0;
  sched.run([&] { ws_fib<TypeParam>(18, &result); });
  EXPECT_EQ(result, 2584);  // fib(18)
}

TYPED_TEST(SchedulerTest, ParallelSumMatchesSerial) {
  constexpr int kN = 1 << 12;
  std::vector<long> data(kN);
  std::iota(data.begin(), data.end(), 1);

  std::function<long(int, int)> psum = [&](int lo, int hi) -> long {
    if (hi - lo <= 64) {
      long s = 0;
      for (int i = lo; i < hi; ++i) s += data[i];
      return s;
    }
    const int mid = lo + (hi - lo) / 2;
    long left = 0;
    typename Scheduler<TypeParam>::TaskGroup tg;
    auto t = tg.capture([&, lo, mid] { left = psum(lo, mid); });
    tg.spawn(t);
    const long right = psum(mid, hi);
    tg.sync();
    return left + right;
  };

  Scheduler<TypeParam> sched(4);
  long total = 0;
  sched.run([&] { total = psum(0, kN); });
  EXPECT_EQ(total, static_cast<long>(kN) * (kN + 1) / 2);
}

TYPED_TEST(SchedulerTest, StatsAccountSpawnsAndFences) {
  Scheduler<TypeParam> sched(2);
  long result = 0;
  sched.reset_stats();
  sched.run([&] { ws_fib<TypeParam>(15, &result); });
  const SchedulerStats s = sched.stats();
  // fib(15) spawns one task per internal call.
  EXPECT_GT(s.spawns, 100u);
  // Conservation law: every spawned task is removed exactly once — by a
  // fast pop, a conflict-path pop that won, or a successful steal.
  EXPECT_EQ(s.spawns,
            s.pops_fast + (s.pops_conflict - s.pops_empty) + s.steals_success);
  // The victim path executed exactly one fence per pop attempt.
  EXPECT_GE(s.victim_fences, s.pops_fast);
}

TYPED_TEST(SchedulerTest, SequentialRunsBackToBack) {
  Scheduler<TypeParam> sched(2);
  for (int round = 0; round < 5; ++round) {
    long result = 0;
    sched.run([&] { ws_fib<TypeParam>(10, &result); });
    EXPECT_EQ(result, 55);
  }
}

TYPED_TEST(SchedulerTest, SingleWorkerNeverSteals) {
  Scheduler<TypeParam> sched(1);
  long result = 0;
  sched.reset_stats();
  sched.run([&] { ws_fib<TypeParam>(12, &result); });
  EXPECT_EQ(result, 144);
  const SchedulerStats s = sched.stats();
  EXPECT_EQ(s.steal_attempts, 0u);
  EXPECT_EQ(s.steals_success, 0u);
  EXPECT_EQ(s.serializations, 0u);
}

TYPED_TEST(SchedulerTest, ManyWorkersOversubscribedStillCorrect) {
  // More workers than this host has cores: exercises the yield paths.
  Scheduler<TypeParam> sched(8);
  long result = 0;
  sched.run([&] { ws_fib<TypeParam>(16, &result); });
  EXPECT_EQ(result, 987);
}

TEST(SchedulerAsymmetry, SignalPolicySerializesOnlyOnSteals) {
  Scheduler<AsymmetricSignalFence> sched(2);
  long result = 0;
  sched.reset_stats();
  sched.run([&] { ws_fib<AsymmetricSignalFence>(18, &result); });
  const SchedulerStats s = sched.stats();
  // Serializations happen once per steal() call, never on the pop path:
  EXPECT_EQ(s.serializations, s.steal_attempts);
  EXPECT_LT(s.steal_attempts, s.spawns);  // asymmetric workload
}

}  // namespace
}  // namespace lbmf::ws
