// Multi-word cache lines and false sharing on the guarded line — a design
// consideration the LE/ST mechanism inherits from operating at coherence
// granularity: a remote access to a *neighbouring word* of the guarded
// line fires the guard (costing the primary a flush) even though the
// guarded location itself was never touched.
#include <gtest/gtest.h>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"

namespace lbmf::sim {
namespace {

SimConfig wide_cfg(std::size_t line_words) {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  cfg.line_words = line_words;
  return cfg;
}

TEST(SimFalseShare, WholeLineFillsOnMiss) {
  Machine m(wide_cfg(4));
  m.set_memory(0, 10);
  m.set_memory(1, 11);
  m.set_memory(2, 12);
  m.set_memory(3, 13);
  ProgramBuilder b("r");
  b.load(0, 2).load(1, 0).load(2, 3).halt();  // one miss, then line hits
  ProgramBuilder idle("i");
  idle.halt();
  m.load_program(0, b.build());
  m.load_program(1, idle.build());
  m.step(0, Action::Execute);  // miss fills words 0..3
  const auto miss_traffic = m.cpu(0).counters.bus_transactions;
  m.step(0, Action::Execute);
  m.step(0, Action::Execute);
  EXPECT_EQ(m.cpu(0).counters.bus_transactions, miss_traffic);  // line hits
  EXPECT_EQ(m.cpu(0).regs[0], 12);
  EXPECT_EQ(m.cpu(0).regs[1], 10);
  EXPECT_EQ(m.cpu(0).regs[2], 13);
}

TEST(SimFalseShare, StoreToOneWordPreservesNeighbours) {
  SimConfig cfg = wide_cfg(4);
  cfg.num_cpus = 1;
  Machine m(cfg);
  m.set_memory(0, 100);
  m.set_memory(1, 101);
  m.set_memory(3, 103);
  ProgramBuilder b("w");
  b.store(2, 42).mfence();
  b.load(0, 0).load(1, 1).load(2, 2).load(3, 3).halt();
  m.load_program(0, b.build());
  m.run_round_robin();
  EXPECT_EQ(m.cpu(0).regs[0], 100);
  EXPECT_EQ(m.cpu(0).regs[1], 101);
  EXPECT_EQ(m.cpu(0).regs[2], 42);
  EXPECT_EQ(m.cpu(0).regs[3], 103);
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimFalseShare, NeighbourAccessFiresTheGuard) {
  // CPU0 arms l-mfence on word 0; CPU1 reads word 1 — same line. The
  // guard MUST fire (the controller watches the line) even though the
  // guarded word itself is untouched.
  Machine m(wide_cfg(4));
  ProgramBuilder p("primary");
  p.lmfence(0, 1).halt();
  ProgramBuilder q("neighbour");
  q.load(reg::kObs0, 1).halt();  // word 1 shares line [0..3]
  m.load_program(0, p.build());
  m.load_program(1, q.build());
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  ASSERT_TRUE(m.cpu(0).le_bit);
  m.step(1, Action::Execute);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 1u);  // false sharing!
  EXPECT_FALSE(m.cpu(0).le_bit);
  EXPECT_TRUE(m.cpu(0).sb.empty());  // flushed, as the mechanism requires
  // And the reader still sees coherent data for its word.
  EXPECT_EQ(m.cpu(1).regs[reg::kObs0], 0);
  EXPECT_FALSE(m.check_coherence().has_value());
}

TEST(SimFalseShare, SeparateLinesDoNotInterfere) {
  // Same program, but the neighbour reads word 4 — the next line. The
  // guard must NOT fire.
  Machine m(wide_cfg(4));
  ProgramBuilder p("primary");
  p.lmfence(0, 1).halt();
  ProgramBuilder q("faraway");
  q.load(reg::kObs0, 4).halt();
  m.load_program(0, p.build());
  m.load_program(1, q.build());
  for (int i = 0; i < 4; ++i) m.step(0, Action::Execute);
  m.step(1, Action::Execute);
  EXPECT_EQ(m.cpu(0).counters.link_breaks_remote, 0u);
  EXPECT_TRUE(m.cpu(0).le_bit);  // link intact
}

TEST(SimFalseShare, DekkerStaysSafeWithColocatedFlags) {
  // Both Dekker flags on ONE line (addresses 0 and 1, line_words = 4):
  // heavy false sharing, constant guard breaking — but still correct.
  for (std::size_t words : {2u, 4u, 8u}) {
    const ExploreResult r = explore_all(make_dekker_machine(
        FenceKind::kLmfence, FenceKind::kMfence, wide_cfg(words)));
    ASSERT_FALSE(r.hit_limit)
        << "line_words=" << words << ": state budget hit, not SAFE";
    EXPECT_FALSE(r.violation.has_value())
        << "line_words=" << words << ": " << *r.violation;
  }
}

TEST(SimFalseShare, FenceFreeDekkerStillViolatesOnWideLines) {
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(FenceKind::kNone, FenceKind::kNone,
                                  wide_cfg(4)),
              opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.violation.has_value());
}

TEST(SimFalseShare, RandomSchedulesKeepInvariantsOnWideLines) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Machine m = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                    wide_cfg(4));
    m.run_random(seed);
    EXPECT_FALSE(m.check_coherence().has_value()) << "seed=" << seed;
  }
}

TEST(SimFalseShare, PaddingRestoresTheFastPath) {
  // Quantify the false-sharing penalty: primary runs a solo l-mfence loop
  // while a neighbour repeatedly reads either (a) a word in the same line
  // or (b) a padded-away word. The colocated case must break the link
  // far more often.
  auto run_case = [](Addr probe_addr) {
    Machine m(wide_cfg(4));
    ProgramBuilder p("loop");
    p.mov(2, 50);
    p.label("top");
    p.lmfence(0, 1);
    p.delay(5);
    p.store(0, 0);
    p.add(2, -1);
    p.branch_ne(2, 0, "top");
    p.halt();
    ProgramBuilder q("probe");
    q.mov(2, 25);
    q.label("top");
    q.load(1, probe_addr);
    q.mfence();
    q.add(2, -1);
    q.branch_ne(2, 0, "top");
    q.halt();
    m.load_program(0, p.build());
    m.load_program(1, q.build());
    m.run_round_robin();
    return m.cpu(0).counters.link_breaks_remote;
  };

  const auto colocated = run_case(1);  // same line as the guarded word 0
  const auto padded = run_case(4);     // next line
  EXPECT_EQ(padded, 0u);
  EXPECT_GT(colocated, 5u);
}

}  // namespace
}  // namespace lbmf::sim
