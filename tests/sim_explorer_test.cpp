// Exhaustive interleaving checks: machine-checked versions of the paper's
// Theorem 7 (asymmetric Dekker with l-mfence is mutually exclusive) and the
// negative controls showing the checker has teeth (without fences, TSO does
// violate Dekker, and the explorer exhibits a schedule).
#include <gtest/gtest.h>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg2() {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

// ------------------------------------------------------------------ Dekker

struct DekkerCase {
  FenceKind primary;
  FenceKind secondary;
  bool safe;  // is mutual exclusion guaranteed?
  const char* label;
};

class DekkerExhaustive : public ::testing::TestWithParam<DekkerCase> {};

TEST_P(DekkerExhaustive, MutualExclusionMatchesTheory) {
  const DekkerCase& c = GetParam();
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(c.primary, c.secondary, cfg2()), opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit) << "state space larger than expected";
  if (c.safe) {
    EXPECT_FALSE(r.violation.has_value())
        << c.label << ": " << *r.violation << " after trace of "
        << r.violation_trace.size() << " steps";
  } else {
    ASSERT_TRUE(r.violation.has_value())
        << c.label << ": expected a TSO mutual-exclusion violation but "
        << r.states_explored << " states were all safe";
    EXPECT_NE(r.violation->find("mutual exclusion"), std::string::npos);
    EXPECT_FALSE(r.violation_trace.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFenceCombinations, DekkerExhaustive,
    ::testing::Values(
        // The paper's asymmetric protocol (Fig. 3(a), Theorem 7).
        DekkerCase{FenceKind::kLmfence, FenceKind::kMfence, true,
                   "asymmetric l-mfence/mfence"},
        // Both sides with l-mfence — Sec. 4 notes the mirrored protocol is
        // still mutually exclusive.
        DekkerCase{FenceKind::kLmfence, FenceKind::kLmfence, true,
                   "mirrored l-mfence/l-mfence"},
        // The traditional symmetric protocol.
        DekkerCase{FenceKind::kMfence, FenceKind::kMfence, true,
                   "symmetric mfence/mfence"},
        DekkerCase{FenceKind::kMfence, FenceKind::kLmfence, true,
                   "mfence/l-mfence"},
        // Negative controls: any side running fence-free breaks Dekker
        // under TSO (Principle 4 reordering).
        DekkerCase{FenceKind::kNone, FenceKind::kNone, false,
                   "no fences at all"},
        DekkerCase{FenceKind::kNone, FenceKind::kMfence, false,
                   "primary fence-free"},
        DekkerCase{FenceKind::kLmfence, FenceKind::kNone, false,
                   "secondary fence-free"}),
    [](const ::testing::TestParamInfo<DekkerCase>& info) {
      std::string s = std::string(to_string(info.param.primary)) + "_" +
                      to_string(info.param.secondary);
      for (char& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(DekkerExhaustive, AblatedLeStFallsBackToFenceAndStaysSafe) {
  // With LE/ST disabled in "hardware", the Fig. 3(b) code path always takes
  // the branch into MFENCE — l-mfence degrades to mfence and the protocol
  // must remain safe (just slower).
  SimConfig cfg = cfg2();
  cfg.le_st_enabled = false;
  const ExploreResult r =
      explore_all(make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                      cfg));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

TEST(DekkerExhaustive, TinyStoreBufferStillSafe) {
  // sb_capacity = 1 forces the guarded store to complete early on many
  // paths (link cleared by natural completion) — a different mix of Lemma 3
  // cases must still all be safe.
  SimConfig cfg = cfg2();
  cfg.sb_capacity = 1;
  const ExploreResult r = explore_all(
      make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence, cfg));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

TEST(DekkerExhaustive, TinyCacheEvictionPathsStillSafe) {
  // cache_capacity = 2 makes the guarded line evictable while armed,
  // exercising the notify-on-evict path under every schedule.
  SimConfig cfg = cfg2();
  cfg.cache_capacity = 2;
  const ExploreResult r = explore_all(
      make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence, cfg));
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  EXPECT_FALSE(r.violation.has_value()) << *r.violation;
}

// ----------------------------------------------------------------- Peterson

// The Sec. 7 future-work question, answered exhaustively: Peterson's
// algorithm with the l-mfence guarding only its LAST announce store (turn)
// is safe on TSO, because the FIFO store buffer completes flag[i] before
// turn.
class PetersonExhaustive : public ::testing::TestWithParam<DekkerCase> {};

TEST_P(PetersonExhaustive, MutualExclusionMatchesTheory) {
  const DekkerCase& c = GetParam();
  const ExploreResult r =
      explore_all(make_peterson_machine(c.primary, c.secondary, cfg2()));
  ASSERT_FALSE(r.hit_limit);
  if (c.safe) {
    EXPECT_FALSE(r.violation.has_value()) << c.label << ": " << *r.violation;
  } else {
    EXPECT_TRUE(r.violation.has_value()) << c.label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FenceMatrix, PetersonExhaustive,
    ::testing::Values(
        DekkerCase{FenceKind::kLmfence, FenceKind::kMfence, true,
                   "peterson asymmetric"},
        DekkerCase{FenceKind::kLmfence, FenceKind::kLmfence, true,
                   "peterson mirrored l-mfence"},
        DekkerCase{FenceKind::kMfence, FenceKind::kMfence, true,
                   "peterson classic"},
        DekkerCase{FenceKind::kNone, FenceKind::kMfence, false,
                   "peterson primary fence-free"},
        DekkerCase{FenceKind::kNone, FenceKind::kNone, false,
                   "peterson no fences"}),
    [](const ::testing::TestParamInfo<DekkerCase>& info) {
      std::string s = std::string(to_string(info.param.primary)) + "_" +
                      to_string(info.param.secondary);
      for (char& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

// --------------------------------------------------------------- SB litmus

struct SbCase {
  FenceKind f0;
  FenceKind f1;
  bool both_zero_allowed;
};

class StoreBufferLitmus : public ::testing::TestWithParam<SbCase> {};

TEST_P(StoreBufferLitmus, BothZeroOutcomeMatchesTso) {
  const SbCase& c = GetParam();
  Explorer::Options opts;
  opts.observe = observe_obs0;
  Explorer ex(make_store_buffer_litmus(c.f0, c.f1, cfg2()), opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  const bool saw_both_zero = r.outcomes.count("r0=0,r0=0") > 0;
  EXPECT_EQ(saw_both_zero, c.both_zero_allowed)
      << to_string(c.f0) << "/" << to_string(c.f1);
  // The non-racy outcomes must always be reachable.
  EXPECT_TRUE(r.outcomes.count("r0=0,r0=1") || r.outcomes.count("r0=1,r0=0"));
}

INSTANTIATE_TEST_SUITE_P(
    FenceMatrix, StoreBufferLitmus,
    ::testing::Values(SbCase{FenceKind::kNone, FenceKind::kNone, true},
                      SbCase{FenceKind::kMfence, FenceKind::kMfence, false},
                      SbCase{FenceKind::kLmfence, FenceKind::kMfence, false},
                      SbCase{FenceKind::kMfence, FenceKind::kLmfence, false},
                      SbCase{FenceKind::kLmfence, FenceKind::kLmfence, false},
                      // One fenced side alone cannot forbid the outcome.
                      SbCase{FenceKind::kNone, FenceKind::kMfence, true},
                      SbCase{FenceKind::kNone, FenceKind::kLmfence, true}),
    [](const ::testing::TestParamInfo<SbCase>& info) {
      std::string s = std::string(to_string(info.param.f0)) + "_" +
                      to_string(info.param.f1);
      for (char& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

// ------------------------------------------------------- message passing

TEST(MessagePassingLitmus, TsoForbidsFlagWithoutData) {
  Explorer::Options opts;
  opts.observe = [](const Machine& m) {
    return std::to_string(m.cpu(1).regs[reg::kObs0]) + "," +
           std::to_string(m.cpu(1).regs[reg::kObs1]);
  };
  Explorer ex(make_message_passing_litmus(cfg2()), opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_EQ(r.outcomes.count("1,0"), 0u);  // the forbidden reordering
  EXPECT_GT(r.outcomes.count("1,42"), 0u);
  EXPECT_GT(r.outcomes.count("0,0"), 0u);
}

// ----------------------------------------------------- LB and IRIW litmus

TEST(LoadBufferingLitmus, TsoForbidsBothOnes) {
  // r0==1 on both CPUs would need load-store reordering; TSO (and this
  // simulator, which executes each instruction atomically in order) must
  // never produce it even with no fences.
  Explorer::Options opts;
  opts.observe = observe_obs0;
  Explorer ex(make_load_buffering_litmus(cfg2()), opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  EXPECT_EQ(r.outcomes.count("r0=1,r0=1"), 0u);
  EXPECT_GT(r.outcomes.count("r0=0,r0=0"), 0u);  // the common outcome
}

TEST(IriwLitmus, ReadersAgreeOnStoreOrder) {
  // The forbidden IRIW outcome: reader2 sees x=1,y=0 while reader3 sees
  // y=1,x=0 — the two writes observed in opposite orders. TSO's single
  // store order (the bus serializes completions) forbids it.
  Explorer::Options opts;
  opts.observe = [](const Machine& m) {
    return std::to_string(m.cpu(2).regs[reg::kObs0]) +
           std::to_string(m.cpu(2).regs[reg::kObs1]) + "," +
           std::to_string(m.cpu(3).regs[reg::kObs0]) +
           std::to_string(m.cpu(3).regs[reg::kObs1]);
  };
  opts.max_states = 5'000'000;
  Explorer ex(make_iriw_litmus(cfg2()), opts);
  const ExploreResult r = ex.run();
  ASSERT_FALSE(r.hit_limit) << "state budget hit: inconclusive, not SAFE";
  ASSERT_FALSE(r.violation.has_value()) << *r.violation;
  // Forbidden: both readers saw their first write but not the other's.
  EXPECT_EQ(r.outcomes.count("10,10"), 0u);
  // Plenty of legal outcomes must exist.
  EXPECT_GT(r.outcomes.size(), 4u);
}

// ---------------------------------------------------------- explorer sanity

TEST(Explorer, ExploresMoreStatesThanRoundRobin) {
  const ExploreResult r = explore_all(make_message_passing_litmus(cfg2()));
  // The schedule tree must be non-trivial and fully enumerated.
  EXPECT_GT(r.states_explored, 20u);
  EXPECT_GT(r.terminal_states, 0u);
  EXPECT_FALSE(r.hit_limit);
}

TEST(Explorer, StateLimitIsHonored) {
  Explorer::Options opts;
  opts.max_states = 5;
  Explorer ex(make_message_passing_litmus(cfg2()), opts);
  const ExploreResult r = ex.run();
  EXPECT_TRUE(r.hit_limit);
  EXPECT_LE(r.states_explored, 5u);
}

TEST(Explorer, LimitHitNeverReportsSafe) {
  // Regression: a truncated exploration is inconclusive — ok() must come
  // back false even though no violation was found, and callers that need
  // to tell the two apart must see hit_limit set with violation empty.
  // The machine here is genuinely UNSAFE (fence-free Dekker), so trusting
  // a limit-hit run as "safe" would be exactly the bug.
  Explorer::Options opts;
  opts.max_states = 2;
  Explorer ex(make_dekker_machine(FenceKind::kNone, FenceKind::kNone, cfg2()),
              opts);
  const ExploreResult r = ex.run();
  ASSERT_TRUE(r.hit_limit);
  EXPECT_FALSE(r.violation.has_value());
  EXPECT_FALSE(r.ok());
}

TEST(Explorer, ViolationTraceReplaysToViolation) {
  // Take the schedule the explorer produced for the fence-free Dekker and
  // replay it step-by-step on a fresh machine: it must reproduce the
  // violation. This pins down that traces are faithful.
  Explorer::Options opts;
  Explorer ex(make_dekker_machine(FenceKind::kNone, FenceKind::kNone, cfg2()),
              opts);
  const ExploreResult r = ex.run();
  ASSERT_TRUE(r.violation.has_value());

  Machine m = make_dekker_machine(FenceKind::kNone, FenceKind::kNone, cfg2());
  for (const Choice& c : r.violation_trace) {
    ASSERT_TRUE(m.action_enabled(c.cpu, c.action));
    m.step(c.cpu, c.action);
  }
  EXPECT_GT(m.cpus_in_cs(), 1u);
}

}  // namespace
}  // namespace lbmf::sim
