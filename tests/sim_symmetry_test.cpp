// Thread-symmetry reduction and the spillable visited set.
//
// The soundness claim behind `symmetric cpu` / auto_symmetry() is that a
// permutation of byte-identical CPUs is an automorphism of the transition
// system, so exploring canonical representatives (per-CPU state blocks
// sorted within each group) preserves reachability of every violation.
// These tests audit that claim empirically: the canonical search must
// agree with the exact (ungrouped, exact-dedup) search on every verdict,
// while visiting no more — and on genuinely symmetric workloads strictly
// fewer — states. The spill tests check that freezing cold fingerprints
// into mmap'd segments is invisible to every counter.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lbmf/sim/assembler.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/visited.hpp"

namespace lbmf::sim {
namespace {

SimConfig cfg_n(std::size_t cpus) {
  SimConfig cfg;
  cfg.num_cpus = cpus;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.good()) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string litmus_path(const char* name) {
  return std::string(LBMF_LITMUS_DIR) + "/" + name;
}

// Assemble a litmus file into a machine; `symmetry` applies the declared
// groups plus auto-detection (exactly what litmus_runner does by default).
Machine machine_from_file(const char* name, bool symmetry,
                          AssembleResult* out = nullptr) {
  const AssembleResult a = assemble(slurp(litmus_path(name)));
  EXPECT_TRUE(a.ok()) << name << ": "
                      << (a.error ? a.error->message : "unknown");
  Machine m(cfg_n(a.programs.size()));
  for (const auto& [addr, v] : a.initial_memory) m.set_memory(addr, v);
  for (std::size_t i = 0; i < a.programs.size(); ++i) {
    m.load_program(i, a.programs[i]);
  }
  if (symmetry) {
    std::vector<std::vector<std::uint8_t>> declared;
    for (const auto& g : a.symmetric_groups) {
      declared.emplace_back(g.begin(), g.end());
    }
    if (!declared.empty()) m.set_symmetric_groups(std::move(declared));
    m.auto_symmetry();
  }
  if (out != nullptr) *out = a;
  return m;
}

// ------------------------------------------------------ directive parsing

TEST(SymmetricDirective, ParsesAndValidatesGroups) {
  const AssembleResult a = assemble(R"(symmetric cpu 1, 2
cpu 0:
  store [X], 1
  halt
cpu 1:
  load r0, [X]
  halt
cpu 2:
  load r0, [X]
  halt
)");
  ASSERT_TRUE(a.ok()) << (a.error ? a.error->message : "");
  ASSERT_EQ(a.symmetric_groups.size(), 1u);
  EXPECT_EQ(a.symmetric_groups[0], (std::vector<std::size_t>{1, 2}));
}

TEST(SymmetricDirective, RejectsUnknownCpu) {
  const AssembleResult a = assemble(R"(symmetric cpu 0, 3
cpu 0:
  halt
cpu 1:
  halt
)");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error->message.find("cpu 3"), std::string::npos)
      << a.error->message;
}

TEST(SymmetricDirective, RejectsSingletonGroup) {
  const AssembleResult a = assemble("symmetric cpu 0\ncpu 0:\n  halt\n");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error->message.find("at least two"), std::string::npos)
      << a.error->message;
}

TEST(SymmetricDirective, RejectsOverlappingGroups) {
  const AssembleResult a = assemble(R"(symmetric cpu 0, 1
symmetric cpu 1, 2
cpu 0:
  halt
cpu 1:
  halt
cpu 2:
  halt
)");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error->message.find("more than one"), std::string::npos)
      << a.error->message;
}

TEST(SymmetricDirective, RejectsDivergentPrograms) {
  const AssembleResult a = assemble(R"(symmetric cpu 0, 1
cpu 0:
  store [X], 1
  halt
cpu 1:
  store [X], 2
  halt
)");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error->message.find("different programs"), std::string::npos)
      << a.error->message;
}

TEST(SymmetricDirective, RejectsDivergentFreqs) {
  const AssembleResult a = assemble(R"(symmetric cpu 0, 1
cpu 0:
  freq 1000
  store [X], 1
  halt
cpu 1:
  store [X], 1
  halt
)");
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error->message.find("different freqs"), std::string::npos)
      << a.error->message;
}

TEST(SymmetricDirective, RejectsMisalignedHoles) {
  const AssembleResult a = assemble(R"(symmetric cpu 0, 1
cpu 0:
  ?fence [X], 1
  halt
cpu 1:
  store [X], 1
  halt
)");
  ASSERT_FALSE(a.ok());
  // Byte-wise the programs agree (a hole assembles to its plain store);
  // the hole alignment check is what catches the drift.
  EXPECT_NE(a.error->message.find("misaligned"), std::string::npos)
      << a.error->message;
}

// -------------------------------------------------------- auto-detection

TEST(AutoSymmetry, GroupsByteIdenticalPrograms) {
  Machine m(cfg_n(4));
  for (std::size_t cpu = 0; cpu < 3; ++cpu) {
    m.load_program(cpu, dekker_side(addr::kFlag0, addr::kFlag1,
                                    FenceKind::kLmfence));
  }
  m.load_program(3, dekker_side(addr::kFlag1, addr::kFlag0,
                                FenceKind::kMfence));
  EXPECT_EQ(m.auto_symmetry(), 3u);  // three CPUs grouped, cpu3 left out
  ASSERT_EQ(m.symmetric_groups().size(), 1u);
  EXPECT_EQ(m.symmetric_groups()[0], (std::vector<std::uint8_t>{0, 1, 2}));
  EXPECT_EQ(m.symmetry_orbit(), 6u);  // 3!
  m.clear_symmetric_groups();
  EXPECT_EQ(m.symmetry_orbit(), 1u);
}

TEST(AutoSymmetry, NoGroupsWhenAllProgramsDiffer) {
  Machine m = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence,
                                  cfg_n(2));
  EXPECT_EQ(m.auto_symmetry(), 0u);
  EXPECT_TRUE(m.symmetric_groups().empty());
  EXPECT_EQ(m.symmetry_orbit(), 1u);
}

// Mirrored schedules of interchangeable CPUs must canonicalize to the same
// state with symmetry on, and to different states with it off.
TEST(Canonicalization, InvariantUnderGroupPermutation) {
  const auto build = [] {
    Machine m(cfg_n(2));
    ProgramBuilder b("twin");
    b.store(addr::kFlag0, 1);
    b.load(0, addr::kFlag1);
    b.halt();
    m.load_program(0, b.build());
    ProgramBuilder b2("twin");
    b2.store(addr::kFlag0, 1);
    b2.load(0, addr::kFlag1);
    b2.halt();
    m.load_program(1, b2.build());
    return m;
  };
  Machine a = build();
  Machine b = build();
  a.step(0, Action::Execute);  // cpu0 buffers the store
  b.step(1, Action::Execute);  // the mirror image on cpu1
  std::string sa, sb;
  EXPECT_NE(a.canonical_state(), b.canonical_state());
  EXPECT_FALSE(a.fingerprint(sa) == b.fingerprint(sb));
  a.auto_symmetry();
  b.auto_symmetry();
  EXPECT_EQ(a.canonical_state(), b.canonical_state());
  EXPECT_TRUE(a.fingerprint(sa) == b.fingerprint(sb));
}

// ------------------------------------------------------- parity audit

// The audit that justifies trusting symmetric searches: on every litmus
// protocol — asymmetric ones (where the reduction must be a no-op) and the
// symmetric big protocols alike — the canonical search agrees with the
// exact exact-dedup search on the verdict, and never explores more states.
TEST(SymmetryParity, CanonicalSearchAgreesWithExactDedup) {
  const char* files[] = {
      "broken_dekker.lit",         // asymmetric, violating
      "asymmetric_dekker.lit",     // asymmetric, safe
      "the_deque_two_thieves.lit", // symmetric thieves, violating
      "chase_lev.lit",             // symmetric thieves, violating
      "biased_rwlock.lit",         // symmetric writers, violating
  };
  for (const char* name : files) {
    AssembleResult assembled;
    Machine sym = machine_from_file(name, /*symmetry=*/true, &assembled);
    Machine exact = machine_from_file(name, /*symmetry=*/false);

    Explorer::Options opts;
    opts.stop_at_violation = false;  // deterministic full traversal
    opts.max_states = 2'000'000;
    opts.check = final_state_check(assembled.final_allowed);
    Explorer::Options exact_opts = opts;
    exact_opts.exact_dedup = true;

    const ExploreResult rs = explore_all(sym, opts);
    const ExploreResult re = explore_all(std::move(exact), exact_opts);
    ASSERT_FALSE(rs.hit_limit) << name;
    ASSERT_FALSE(re.hit_limit) << name;
    EXPECT_EQ(rs.violation.has_value(), re.violation.has_value()) << name;
    EXPECT_LE(rs.states_explored, re.states_explored) << name;
    if (sym.symmetry_orbit() > 1) {
      // A real group must reduce the graph, and the orbit must be reported.
      EXPECT_LT(rs.states_explored, re.states_explored) << name;
      EXPECT_EQ(rs.symmetry_orbit, sym.symmetry_orbit()) << name;
    } else {
      EXPECT_EQ(rs.states_explored, re.states_explored) << name;
    }
  }
}

// With symmetry ON, fingerprint dedup and exact-string dedup must still
// agree bit-for-bit (the canonical encoding feeds both).
TEST(SymmetryParity, FingerprintMatchesExactUnderSymmetry) {
  AssembleResult assembled;
  Machine m = machine_from_file("the_deque_two_thieves.lit", true, &assembled);
  Explorer::Options opts;
  opts.stop_at_violation = false;
  opts.max_states = 2'000'000;
  opts.check = final_state_check(assembled.final_allowed);
  const ExploreResult fp = explore_all(m, opts);
  opts.exact_dedup = true;
  const ExploreResult ex = explore_all(std::move(m), opts);
  EXPECT_EQ(fp.states_explored, ex.states_explored);
  EXPECT_EQ(fp.transitions, ex.transitions);
  EXPECT_EQ(fp.terminal_states, ex.terminal_states);
  EXPECT_EQ(fp.violation.has_value(), ex.violation.has_value());
}

// ------------------------------------------------------- spillable set

TEST(VisitedSpill, SegmentsStillAnswerMembership) {
  // A 64 KiB single-shard budget freezes the live set after ~2.8k entries;
  // 20k distinct fingerprints therefore span several frozen segments, and
  // every duplicate probe must still be caught in whichever segment holds
  // it.
  VisitedSet vs(/*exact=*/false, /*concurrent=*/false, 64 * 1024);
  const auto fp_of = [](std::uint64_t i) {
    return Fingerprint{i * 0x9E3779B97F4A7C15ull + 1, i + 1};
  };
  constexpr std::uint64_t kN = 20'000;
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(vs.insert(fp_of(i), "")) << i;
  }
  EXPECT_GE(vs.spill_segments(), 1u);
  EXPECT_GT(vs.spill_bytes(), 0u);
  // Residency stays bounded by (roughly) the shard budget.
  EXPECT_LE(vs.bytes(), 2 * 64 * 1024u);
  for (std::uint64_t i = 0; i < kN; ++i) {
    ASSERT_FALSE(vs.insert(fp_of(i), "")) << i;
  }
}

TEST(VisitedSpill, TinyBudgetLeavesExplorationCountersUnchanged) {
  const auto build = [] {
    Machine m(cfg_n(3));
    for (std::size_t cpu = 0; cpu < 3; ++cpu) {
      m.load_program(cpu, dekker_side(addr::kFlag0, addr::kFlag1,
                                      FenceKind::kLmfence));
    }
    return m;
  };
  Explorer::Options opts;
  opts.max_states = 2'000'000;
  opts.check_mutual_exclusion = false;  // three sides share one CS
  const ExploreResult unbounded = explore_all(build(), opts);
  opts.visited_budget_bytes = 64 * 1024;
  const ExploreResult spilled = explore_all(build(), opts);

  ASSERT_FALSE(unbounded.hit_limit);
  EXPECT_EQ(spilled.states_explored, unbounded.states_explored);
  EXPECT_EQ(spilled.transitions, unbounded.transitions);
  EXPECT_EQ(spilled.terminal_states, unbounded.terminal_states);
  EXPECT_EQ(spilled.violation.has_value(), unbounded.violation.has_value());
  EXPECT_GE(spilled.spill_segments, 1u);
  EXPECT_GT(spilled.spill_bytes, 0u);
  EXPECT_EQ(unbounded.spill_segments, 0u);
  EXPECT_LT(spilled.visited_bytes, unbounded.visited_bytes);
}

}  // namespace
}  // namespace lbmf::sim
