#include "lbmf/extract/emit.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>

#include "lbmf/sim/assembler.hpp"

namespace lbmf::extract {

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kLoad: return "load";
    case OpKind::kStore: return "store";
    case OpKind::kStoreReg: return "store";
    case OpKind::kMfence: return "mfence";
    case OpKind::kLmfence: return "lmfence";
    case OpKind::kFenceHole: return "?fence";
    case OpKind::kRmwAcquire: return "lock";
    case OpKind::kRmwRelease: return "unlock";
    case OpKind::kMov: return "mov";
    case OpKind::kAdd: return "add";
    case OpKind::kBranchEq: return "beq";
    case OpKind::kBranchNe: return "bne";
    case OpKind::kJump: return "jmp";
    case OpKind::kLabel: return "label";
    case OpKind::kCsEnter: return "cs_enter";
    case OpKind::kCsExit: return "cs_exit";
    case OpKind::kDelay: return "delay";
    case OpKind::kHalt: return "halt";
  }
  return "?";
}

std::string EmitError::to_string() const {
  std::string out;
  if (src.known()) {
    out += src.file + ":" + std::to_string(src.line) + ": ";
  }
  out += message;
  return out;
}

std::string EmitResult::error_string() const {
  std::string out;
  for (const EmitError& e : errors) {
    if (!out.empty()) out += "\n";
    out += e.to_string();
  }
  return out;
}

std::string canonical_source_path(std::string_view file) {
  // Stable across build machines: everything after the last "include/"
  // is the repo-relative header path the annotations live in.
  const std::size_t inc = file.rfind("include/");
  if (inc != std::string_view::npos) {
    return std::string(file.substr(inc + 8));
  }
  const std::size_t slash = file.rfind('/');
  return std::string(slash == std::string_view::npos
                         ? file
                         : file.substr(slash + 1));
}

namespace {

bool needs_reg(OpKind k) noexcept {
  return k == OpKind::kLoad || k == OpKind::kStoreReg || k == OpKind::kMov ||
         k == OpKind::kAdd || k == OpKind::kBranchEq || k == OpKind::kBranchNe;
}

bool is_branch(OpKind k) noexcept {
  return k == OpKind::kBranchEq || k == OpKind::kBranchNe ||
         k == OpKind::kJump;
}

/// Per-role register canonicalization: registers renamed to r0, r1, ...
/// in order of first use, so annotations may use mnemonic registers
/// without perturbing the emitted program bytes.
std::array<int, 8> canonical_registers(const RoleTrace& role) {
  std::array<int, 8> map;
  map.fill(-1);
  int next = 0;
  for (const RecordedOp& op : role.ops) {
    if (!needs_reg(op.kind)) continue;
    const auto idx = static_cast<std::size_t>(op.reg);
    if (map[idx] == -1) map[idx] = next++;
  }
  return map;
}

class Emitter {
 public:
  Emitter(const Spec& spec, const EmitOptions& opts)
      : spec_(spec), opts_(opts) {}

  EmitResult run() {
    validate();
    if (!result_.errors.empty()) return std::move(result_);
    render();
    return std::move(result_);
  }

 private:
  void fail(std::string message, const SourceLoc& src = {}) {
    result_.errors.push_back(
        EmitError{std::move(message),
                  SourceLoc{canonical_source_path(src.file), src.line}});
  }

  void validate() {
    if (spec_.roles.empty()) {
      fail("spec '" + spec_.name + "' declares no roles");
      return;
    }
    std::set<std::string> names;
    for (const RoleTrace& role : spec_.roles) {
      if (!names.insert(role.name).second) {
        fail("duplicate role '" + role.name + "'", role.src);
      }
      if (role.freq < 1.0 ||
          role.freq != static_cast<double>(static_cast<long long>(role.freq))) {
        fail("role '" + role.name + "': freq must be an integer >= 1",
             role.src);
      }
      validate_role(role);
    }
    // Symmetric groups must name existing roles, at least two, each role
    // in at most one group — mirroring the assembler's own validation so
    // mistakes surface here, with annotation provenance, first.
    std::set<std::string> grouped;
    for (const auto& group : spec_.symmetric) {
      if (group.size() < 2) {
        fail("symmetric group needs at least two roles");
      }
      for (const std::string& name : group) {
        if (names.find(name) == names.end()) {
          fail("symmetric group names unknown role '" + name + "'");
        }
        if (!grouped.insert(name).second) {
          fail("role '" + name + "' appears in more than one symmetric group");
        }
      }
    }
  }

  void validate_role(const RoleTrace& role) {
    if (role.ops.empty() || role.ops.back().kind != OpKind::kHalt) {
      fail("role '" + role.name + "' must end with LBMF_HALT",
           role.ops.empty() ? role.src : role.ops.back().src);
    }
    std::map<std::string, std::size_t> labels;
    for (const RecordedOp& op : role.ops) {
      if (op.kind == OpKind::kLabel && ++labels[op.label] > 1) {
        fail("role '" + role.name + "': duplicate label '" + op.label + "'",
             op.src);
      }
    }
    for (const RecordedOp& op : role.ops) {
      if (is_branch(op.kind) && labels.find(op.label) == labels.end()) {
        fail("role '" + role.name + "': branch to undefined label '" +
                 op.label + "'",
             op.src);
      }
      if ((op.kind == OpKind::kDelay) && op.value < 0) {
        fail("role '" + role.name + "': negative delay", op.src);
      }
    }
  }

  void put_line(std::string body, const SourceLoc& src,
                const std::string& note = "") {
    if (opts_.provenance && src.known()) {
      constexpr std::size_t kCol = 34;
      if (body.size() < kCol) body.append(kCol - body.size(), ' ');
      body += " #@ " + canonical_source_path(src.file) + ":" +
              std::to_string(src.line);
      if (!note.empty()) body += " " + note;
    }
    out_ << body << "\n";
  }

  std::string render_op(const RecordedOp& op, const std::array<int, 8>& regs) {
    auto reg = [&](Reg r) {
      return "r" + std::to_string(regs[static_cast<std::size_t>(r)]);
    };
    auto loc = [&] { return "[" + op.loc + "]"; };
    auto val = [&] { return std::to_string(op.value); };
    switch (op.kind) {
      case OpKind::kLoad: return "load " + reg(op.reg) + ", " + loc();
      case OpKind::kStore: return "store " + loc() + ", " + val();
      case OpKind::kStoreReg: return "store " + loc() + ", " + reg(op.reg);
      case OpKind::kMfence: return "mfence";
      case OpKind::kLmfence: return "lmfence " + loc() + ", " + val();
      case OpKind::kFenceHole: return "?fence " + loc() + ", " + val();
      case OpKind::kRmwAcquire: return "lock " + loc();
      case OpKind::kRmwRelease: return "unlock " + loc();
      case OpKind::kMov: return "mov " + reg(op.reg) + ", " + val();
      case OpKind::kAdd: return "add " + reg(op.reg) + ", " + val();
      case OpKind::kBranchEq:
        return "beq " + reg(op.reg) + ", " + val() + ", " + op.label;
      case OpKind::kBranchNe:
        return "bne " + reg(op.reg) + ", " + val() + ", " + op.label;
      case OpKind::kJump: return "jmp " + op.label;
      case OpKind::kLabel: return op.label + ":";
      case OpKind::kCsEnter: return "cs_enter";
      case OpKind::kCsExit: return "cs_exit";
      case OpKind::kDelay: return "delay " + val();
      case OpKind::kHalt: return "halt";
    }
    return "";
  }

  void render() {
    out_ << "# " << spec_.name
         << " — machine-extracted litmus (lbmf::extract).\n";
    out_ << "# Generated from the LBMF_* annotations in the runtime "
            "source; do not edit:\n";
    out_ << "# `lbmf_extract " << spec_.name
         << "` regenerates it, and the CI drift gate diffs the\n";
    out_ << "# regenerated protocol against the committed litmus file"
         << (opts_.banner_note.empty() ? "" : " (" + opts_.banner_note + ")")
         << ".\n\n";

    for (const auto& [loc, v] : spec_.inits) {
      out_ << "init [" << loc << "], " << v << "\n";
    }
    if (!spec_.inits.empty()) out_ << "\n";

    // Symmetric role groups fold into `symmetric cpu` directives over the
    // emitted section indices (roles are emitted in declaration order).
    std::map<std::string, std::size_t> role_index;
    for (std::size_t i = 0; i < spec_.roles.size(); ++i) {
      role_index[spec_.roles[i].name] = i;
    }
    for (const auto& group : spec_.symmetric) {
      out_ << "symmetric cpu";
      for (std::size_t i = 0; i < group.size(); ++i) {
        out_ << (i ? ", " : " ") << role_index[group[i]];
      }
      out_ << "\n";
    }
    if (!spec_.symmetric.empty()) out_ << "\n";

    for (std::size_t i = 0; i < spec_.roles.size(); ++i) {
      const RoleTrace& role = spec_.roles[i];
      const std::array<int, 8> regs = canonical_registers(role);
      put_line("cpu " + std::to_string(i) + ":", role.src,
               "role " + role.name);
      out_ << "  freq " << static_cast<long long>(role.freq) << "\n";
      for (const RecordedOp& op : role.ops) {
        std::string body = render_op(op, regs);
        if (op.kind != OpKind::kLabel) body = "  " + body;
        put_line(std::move(body), op.src);
      }
      out_ << "\n";
    }

    for (const auto& conj : spec_.finals) {
      out_ << "final";
      for (std::size_t i = 0; i < conj.size(); ++i) {
        out_ << (i ? ", " : " ") << "[" << conj[i].first << "], "
             << conj[i].second;
      }
      out_ << "\n";
    }

    result_.text = out_.str();
  }

  const Spec& spec_;
  const EmitOptions& opts_;
  EmitResult result_;
  std::ostringstream out_;
};

}  // namespace

EmitResult emit_lit(const Spec& spec, const EmitOptions& opts) {
  return Emitter(spec, opts).run();
}

std::string DriftReport::to_string() const {
  if (clean()) return "clean";
  std::string out;
  for (const std::string& d : diffs) {
    out += d;
    out += "\n";
  }
  return out;
}

namespace {

void diff_programs(const sim::AssembleResult& gen,
                   const sim::AssembleResult& ref, DriftReport* out) {
  const std::size_t n = std::min(gen.programs.size(), ref.programs.size());
  if (gen.programs.size() != ref.programs.size()) {
    out->diffs.push_back(
        "cpu count differs: generated " + std::to_string(gen.programs.size()) +
        " vs committed " + std::to_string(ref.programs.size()));
  }
  for (std::size_t cpu = 0; cpu < n; ++cpu) {
    const auto& g = gen.programs[cpu].code;
    const auto& r = ref.programs[cpu].code;
    if (g.size() != r.size()) {
      out->diffs.push_back("cpu" + std::to_string(cpu) +
                           ": instruction count differs: generated " +
                           std::to_string(g.size()) + " vs committed " +
                           std::to_string(r.size()));
    }
    for (std::size_t i = 0; i < std::min(g.size(), r.size()); ++i) {
      if (g[i] == r[i]) continue;
      out->diffs.push_back("cpu" + std::to_string(cpu) + "@" +
                           std::to_string(i) + ": generated `" +
                           sim::to_string(g[i]) + "` vs committed `" +
                           sim::to_string(r[i]) + "`");
    }
  }
}

}  // namespace

DriftReport compare_litmus(std::string_view generated,
                           std::string_view committed) {
  DriftReport out;
  const sim::AssembleResult gen = sim::assemble(generated);
  const sim::AssembleResult ref = sim::assemble(committed);
  if (!gen.ok()) {
    out.diffs.push_back("generated litmus does not assemble: line " +
                        std::to_string(gen.error->line) + ": " +
                        gen.error->message);
  }
  if (!ref.ok()) {
    out.diffs.push_back("committed litmus does not assemble: line " +
                        std::to_string(ref.error->line) + ": " +
                        ref.error->message);
  }
  if (!out.clean()) return out;

  diff_programs(gen, ref, &out);

  if (gen.symbols != ref.symbols) {
    std::string d = "symbol table differs: generated {";
    for (const auto& [name, addr] : gen.symbols) {
      d += " " + name + "=" + std::to_string(addr);
    }
    d += " } vs committed {";
    for (const auto& [name, addr] : ref.symbols) {
      d += " " + name + "=" + std::to_string(addr);
    }
    d += " }";
    out.diffs.push_back(std::move(d));
  }
  if (gen.initial_memory != ref.initial_memory) {
    out.diffs.push_back("initial memory (`init` directives) differs");
  }
  if (gen.cpu_freqs != ref.cpu_freqs) {
    out.diffs.push_back("per-cpu freq weights differ");
  }

  auto hole_key = [](const sim::LitHole& h) {
    return std::tuple(h.cpu, h.instr_index, h.addr, h.value);
  };
  const bool holes_equal =
      gen.holes.size() == ref.holes.size() &&
      std::equal(gen.holes.begin(), gen.holes.end(), ref.holes.begin(),
                 [&](const sim::LitHole& a, const sim::LitHole& b) {
                   return hole_key(a) == hole_key(b);
                 });
  if (!holes_equal) {
    out.diffs.push_back("`?fence` holes differ: generated " +
                        std::to_string(gen.holes.size()) + " vs committed " +
                        std::to_string(ref.holes.size()) +
                        " (compared by cpu/index/addr/value)");
  }
  if (gen.final_allowed != ref.final_allowed) {
    out.diffs.push_back("`final` terminal-state properties differ");
  }
  if (gen.symmetric_groups != ref.symmetric_groups) {
    out.diffs.push_back("`symmetric` groups differ");
  }
  return out;
}

}  // namespace lbmf::extract
