#include "lbmf/extract/mapback.hpp"

#include <sstream>

namespace lbmf::extract {

std::vector<SourcePlacement> map_back(const infer::InferProblem& p,
                                      const infer::Assignment& a) {
  std::vector<SourcePlacement> out;
  out.reserve(p.sites.size());
  for (std::size_t s = 0; s < p.sites.size(); ++s) {
    SourcePlacement sp;
    sp.site = s;
    sp.site_label = p.describe_site(s);
    sp.source = p.sites[s].provenance;
    sp.fence = sim::to_string(a.kinds[s]);
    sp.lit_line = p.sites[s].src_line;
    out.push_back(std::move(sp));
  }
  return out;
}

std::string format_source_placements(
    const std::vector<SourcePlacement>& placements) {
  std::ostringstream out;
  for (const SourcePlacement& sp : placements) {
    if (!sp.source.empty()) {
      out << sp.source << ": " << sp.fence << "  (" << sp.site_label << ")\n";
    } else {
      out << "<litmus line " << sp.lit_line << ">: " << sp.fence << "  ("
          << sp.site_label << ")\n";
    }
  }
  return out.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string extract_report_json(const std::string& protocol,
                                const infer::InferProblem& p,
                                const infer::InferResult& r) {
  std::ostringstream j;
  j << "{\n";
  j << "  \"protocol\": \"" << json_escape(protocol) << "\",\n";
  j << "  \"status\": \"" << infer::to_string(r.status) << "\",\n";
  j << "  \"holes\": " << p.sites.size() << ",\n";
  j << "  \"lattice_size\": " << r.lattice_size << ",\n";
  j << "  \"candidates_verified\": " << r.candidates_verified << ",\n";
  j << "  \"states_total\": " << r.states_total;
  if (r.status == infer::InferStatus::kSat) {
    const std::vector<SourcePlacement> placements = map_back(p, r.best);
    j << ",\n";
    j << "  \"best_cost\": " << r.best_cost << ",\n";
    j << "  \"recheck_safe\": " << (r.recheck_safe ? "true" : "false")
      << ",\n";
    // `fence` precedes the line fields on purpose: the CI gate pins
    // `"site": ..., "fence": ...` prefixes that must not depend on
    // volatile header line numbers.
    j << "  \"placement\": [\n";
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const SourcePlacement& sp = placements[i];
      j << "    {\"site\": \"" << json_escape(sp.site_label)
        << "\", \"fence\": \"" << sp.fence << "\", \"lit_line\": "
        << sp.lit_line << "}" << (i + 1 < placements.size() ? "," : "")
        << "\n";
    }
    j << "  ],\n";
    j << "  \"source_map\": [\n";
    for (std::size_t i = 0; i < placements.size(); ++i) {
      const SourcePlacement& sp = placements[i];
      j << "    {\"site\": \"" << json_escape(sp.site_label)
        << "\", \"fence\": \"" << sp.fence << "\", \"source\": \""
        << json_escape(sp.source) << "\"}"
        << (i + 1 < placements.size() ? "," : "") << "\n";
    }
    j << "  ]\n";
  } else {
    j << "\n";
  }
  j << "}\n";
  return j.str();
}

}  // namespace lbmf::extract
