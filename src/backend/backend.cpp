#include "lbmf/backend/backend.hpp"

#include <atomic>

#include "lbmf/core/membarrier.hpp"
#include "lbmf/model/cost_model.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"
#include "lbmf/util/timing.hpp"

namespace lbmf::backend {
namespace {

/// EWMA weight for measured round trips, matching SerializerRegistry's
/// record_roundtrip. The read-modify-store is racy on purpose: a dropped
/// sample under contention only slows convergence of an advisory estimate.
constexpr double kEwmaAlpha = 1.0 / 8.0;

/// Documented price of one EXPEDITED membarrier broadcast before the first
/// measurement: an IPI fan-out plus syscall entry/exit, well under the ~10k
/// signal round trip but far above the paper's ~150-cycle LE/ST proposal.
constexpr double kMembarrierDefaultRtt = 2'500.0;

std::atomic<double> g_membarrier_rtt{0.0};
std::atomic<std::uint64_t> g_membarrier_trips{0};

std::atomic<double> g_simlest_rtt_override{0.0};  // <= 0: measured default
std::atomic<std::uint64_t> g_simlest_trips{0};
std::atomic<std::uint64_t> g_simlest_cycles{0};

/// Issue one broadcast and fold its wall-clock cost into the EWMA.
void timed_membarrier() noexcept {
  const std::uint64_t t0 = rdtsc();
  membarrier::barrier();
  const double cycles = static_cast<double>(rdtsc() - t0);
  const double cur = g_membarrier_rtt.load(std::memory_order_relaxed);
  g_membarrier_rtt.store(
      cur == 0.0 ? cycles : cur + kEwmaAlpha * (cycles - cur),
      std::memory_order_relaxed);
  g_membarrier_trips.fetch_add(1, std::memory_order_relaxed);
}

/// Replay the LE/ST roundtrip litmus on a fresh simulated machine and return
/// the cycles the *secondary* paid: the primary arms a link with its
/// l-mfence'd store, the secondary's conflicting load breaks it and pays the
/// link-break round trip (~150 cycles — sim_lest_test pins the scale). The
/// stepping pattern mirrors that test: the primary runs just far enough to
/// arm the link and enter its spin window, then the secondary's single load
/// executes against the armed link.
std::uint64_t simulated_roundtrip() {
  sim::Machine hw = sim::make_roundtrip_machine(/*use_interrupt=*/false);
  for (int i = 0; i < 4 && hw.action_enabled(0, sim::Action::Execute); ++i) {
    hw.step(0, sim::Action::Execute);
  }
  if (hw.action_enabled(1, sim::Action::Execute)) {
    hw.step(1, sim::Action::Execute);
  }
  return hw.cpu(1).counters.cycles;
}

/// Baseline simulated RTT, measured once per process.
double measured_sim_rtt() {
  static const double rtt = [] {
    const std::uint64_t c = simulated_roundtrip();
    return c > 0 ? static_cast<double>(c)
                 : model::CostTable{}.lest_roundtrip_cycles;
  }();
  return rtt;
}

/// Route one live trip through the simulator and book it in the ledger.
void simulate_trip() {
  const std::uint64_t c = simulated_roundtrip();
  g_simlest_trips.fetch_add(1, std::memory_order_relaxed);
  g_simlest_cycles.fetch_add(c, std::memory_order_relaxed);
}

/// The paper's prototype: SerializerRegistry's coalesced signal round trip.
/// One-directional — only the registered primary can be drained remotely.
class SignalBackend final : public SerializationBackend {
 public:
  BackendId id() const noexcept override { return BackendId::kSignal; }
  const char* name() const noexcept override { return "signal"; }
  BackendCaps caps() const noexcept override {
    return {/*asymmetric=*/true, /*inverts_roles=*/false};
  }
  bool serialize(const SerializerRegistry::Handle& h) override {
    return SerializerRegistry::instance().serialize(h);
  }
  std::size_t serialize_many(
      std::span<const SerializerRegistry::Handle> hs) override {
    return SerializerRegistry::instance().serialize_many(hs);
  }
  bool serialize_peers() override { return false; }
  double roundtrip_cycles() const noexcept override {
    const double m = SerializerRegistry::measured_roundtrip_cycles();
    return m > 0.0 ? m : model::CostTable{}.signal_roundtrip_cycles;
  }
};

/// EXPEDITED membarrier broadcasts in both directions. One broadcast is a
/// full barrier on the caller *and* drains every peer's store buffer via the
/// kernel's IPI fan-out, so serialize(), serialize_many() and
/// serialize_peers() are all the same one-syscall wave — either side may run
/// the light path.
class MembarrierPairBackend final : public SerializationBackend {
 public:
  BackendId id() const noexcept override { return BackendId::kMembarrierPair; }
  const char* name() const noexcept override { return "membarrier-pair"; }
  BackendCaps caps() const noexcept override {
    const bool ok = membarrier::available();
    return {/*asymmetric=*/ok, /*inverts_roles=*/ok};
  }
  bool serialize(const SerializerRegistry::Handle&) override {
    if (!membarrier::available()) return false;
    timed_membarrier();
    return true;
  }
  std::size_t serialize_many(
      std::span<const SerializerRegistry::Handle> hs) override {
    if (hs.empty() || !membarrier::available()) return 0;
    timed_membarrier();  // one broadcast covers the whole wave
    return hs.size();
  }
  bool serialize_peers() override {
    if (!membarrier::available()) return false;
    timed_membarrier();
    return true;
  }
  double roundtrip_cycles() const noexcept override {
    const double m = g_membarrier_rtt.load(std::memory_order_relaxed);
    return m > 0.0 ? m : kMembarrierDefaultRtt;
  }
};

/// The paper's hardware proposal, emulated: each live trip replays the LE/ST
/// roundtrip litmus through lbmf::sim (so the trip is *priced* at the ~150
/// cycle link-break RTT and booked in the ledger) and then performs a real
/// drain — a membarrier broadcast when the kernel supports it, else the
/// signal registry — so the host runtime stays correct without LE/ST
/// silicon. Role inversion rides on the broadcast, hence requires
/// membarrier.
class SimLestBackend final : public SerializationBackend {
 public:
  BackendId id() const noexcept override { return BackendId::kSimLest; }
  const char* name() const noexcept override { return "sim-lest"; }
  BackendCaps caps() const noexcept override {
    return {/*asymmetric=*/true, /*inverts_roles=*/membarrier::available()};
  }
  bool serialize(const SerializerRegistry::Handle& h) override {
    if (!membarrier::available() && !h.valid()) return false;
    simulate_trip();
    if (membarrier::available()) {
      membarrier::barrier();
      return true;
    }
    return SerializerRegistry::instance().serialize(h);
  }
  std::size_t serialize_many(
      std::span<const SerializerRegistry::Handle> hs) override {
    if (hs.empty()) return 0;
    simulate_trip();
    if (membarrier::available()) {
      membarrier::barrier();
      return hs.size();
    }
    return SerializerRegistry::instance().serialize_many(hs);
  }
  bool serialize_peers() override {
    if (!membarrier::available()) return false;
    simulate_trip();
    membarrier::barrier();
    return true;
  }
  double roundtrip_cycles() const noexcept override {
    const double o = g_simlest_rtt_override.load(std::memory_order_relaxed);
    return o > 0.0 ? o : measured_sim_rtt();
  }
};

}  // namespace

const char* to_string(BackendId id) noexcept {
  switch (id) {
    case BackendId::kSignal:
      return "signal";
    case BackendId::kMembarrierPair:
      return "membarrier-pair";
    case BackendId::kSimLest:
      return "sim-lest";
  }
  return "unknown";
}

std::optional<BackendId> backend_from_string(std::string_view name) noexcept {
  if (name == "signal") return BackendId::kSignal;
  if (name == "membarrier-pair") return BackendId::kMembarrierPair;
  if (name == "sim-lest") return BackendId::kSimLest;
  return std::nullopt;
}

SerializationBackend& serialization_backend(BackendId id) noexcept {
  static SignalBackend signal;
  static MembarrierPairBackend membarrier_pair;
  static SimLestBackend sim_lest;
  switch (id) {
    case BackendId::kMembarrierPair:
      return membarrier_pair;
    case BackendId::kSimLest:
      return sim_lest;
    case BackendId::kSignal:
      break;
  }
  return signal;
}

void set_simlest_roundtrip_cycles(double cycles) noexcept {
  g_simlest_rtt_override.store(cycles, std::memory_order_relaxed);
}

std::uint64_t simlest_trips() noexcept {
  return g_simlest_trips.load(std::memory_order_relaxed);
}

std::uint64_t simlest_modeled_cycles() noexcept {
  return g_simlest_cycles.load(std::memory_order_relaxed);
}

std::uint64_t membarrier_trips() noexcept {
  return g_membarrier_trips.load(std::memory_order_relaxed);
}

}  // namespace lbmf::backend
