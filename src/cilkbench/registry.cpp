#include "lbmf/cilkbench/registry.hpp"

#include "lbmf/adapt/adaptive_fence.hpp"

#include "lbmf/cilkbench/dense.hpp"
#include "lbmf/cilkbench/fft.hpp"
#include "lbmf/cilkbench/heat.hpp"
#include "lbmf/cilkbench/recursive.hpp"
#include "lbmf/cilkbench/sort.hpp"

namespace lbmf::cilkbench {

template <FencePolicy P>
std::vector<Benchmark> all_benchmarks(Scale scale) {
  const bool t = scale == Scale::kTest;
  std::vector<Benchmark> v;

  // Span estimates: recursion depth times the number of sequential phases
  // per level at the kBench inputs; see each benchmark's structure.
  v.push_back({"cholesky", "Cholesky factorization (dense substitution)",
               "4000/40000 (sparse)", t ? "64" : "512",
               [t] { return cholesky<P>(t ? 64 : 512); },
               /*span=*/120.0, /*eff=*/0.536});

  v.push_back({"cilksort", "Parallel merge sort", "10^8",
               t ? "50000" : "2000000",
               [t] { return cilksort<P>(t ? 50'000 : 2'000'000); },
               /*span=*/35.0, /*eff=*/0.92});

  v.push_back({"fft", "Fast Fourier transform", "2^26",
               t ? "2^12" : "2^18",
               [t] { return fft<P>(t ? (1u << 12) : (1u << 18)); },
               /*span=*/60.0, /*eff=*/0.92});

  v.push_back({"fib", "Recursive Fibonacci", "42", t ? "20" : "27",
               [t] { return fib<P>(t ? 20 : 27); },
               /*span=*/27.0, /*eff=*/0.92});

  v.push_back({"fibx", "Skewed recursion: X(n)=X(n-1)+X(n-gap)",
               "280 (gap 40)", t ? "30 (gap 8)" : "60 (gap 10)",
               [t] { return fibx<P>(t ? 30 : 60, t ? 8 : 10); },
               /*span=*/60.0, /*eff=*/0.92});

  // heat: 60 fully sequential timesteps, each a parallel_for of depth
  // ~log2(rows/grain) — a long span relative to its spawn count, which is
  // exactly the paper's explanation for heat losing under signals.
  v.push_back({"heat", "Jacobi heat diffusion", "2048x500",
               t ? "64x64x8" : "1024x1024x60",
               [t] {
                 return t ? heat<P>(64, 64, 8) : heat<P>(1024, 1024, 60);
               },
               /*span=*/420.0, /*eff=*/0.92});

  v.push_back({"knapsack", "Recursive branch-and-bound knapsack", "32",
               t ? "16" : "26", [t] { return knapsack<P>(t ? 16 : 26); },
               /*span=*/26.0, /*eff=*/0.92});

  // lu: the recursive factorization is a sequential chain of 2^levels base
  // factorizations with solves/updates between — a long span.
  v.push_back({"lu", "LU decomposition", "4096", t ? "64" : "512",
               [t] { return lu<P>(t ? 64 : 512); },
               /*span=*/160.0, /*eff=*/0.728});

  v.push_back({"matmul", "Recursive matrix multiply", "2048",
               t ? "64" : "512", [t] { return matmul<P>(t ? 64 : 512); },
               /*span=*/30.0, /*eff=*/0.92});

  v.push_back({"nqueens", "Count N-queens placements", "14",
               t ? "7" : "11", [t] { return nqueens<P>(t ? 7 : 11); },
               /*span=*/12.0, /*eff=*/0.92});

  v.push_back({"rectmul", "Rectangular matrix multiply", "4096",
               t ? "64x64x64" : "512x512x512",
               [t] {
                 return t ? rectmul<P>(64, 64, 64)
                          : rectmul<P>(512, 512, 512);
               },
               /*span=*/45.0, /*eff=*/0.92});

  v.push_back({"strassen", "Strassen matrix multiply", "4096",
               t ? "128" : "512", [t] { return strassen<P>(t ? 128 : 512); },
               /*span=*/20.0, /*eff=*/0.92});

  return v;
}

template std::vector<Benchmark> all_benchmarks<adapt::AdaptiveFence>(Scale);
template std::vector<Benchmark> all_benchmarks<SymmetricFence>(Scale);
template std::vector<Benchmark> all_benchmarks<AsymmetricSignalFence>(Scale);
template std::vector<Benchmark> all_benchmarks<AsymmetricMembarrierFence>(
    Scale);
template std::vector<Benchmark> all_benchmarks<UnsafeNoFence>(Scale);

}  // namespace lbmf::cilkbench
