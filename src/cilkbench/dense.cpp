#include "lbmf/cilkbench/dense.hpp"

#include <cmath>

#include "lbmf/util/check.hpp"

namespace lbmf::cilkbench::detail {

void matmul_base(Block c, Block a, Block b, std::size_t m, std::size_t n,
                 std::size_t k, double sign) {
  // i-k-j loop order: streams B rows, accumulates into C rows.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 0; t < k; ++t) {
      const double av = sign * a.at(i, t);
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += av * b.at(t, j);
      }
    }
  }
}

void lu_base(Block a, std::size_t n) {
  // Right-looking LU without pivoting; requires a nonsingular leading
  // principal structure (our inputs are diagonally dominant).
  for (std::size_t kk = 0; kk < n; ++kk) {
    const double pivot = a.at(kk, kk);
    LBMF_CHECK_MSG(pivot != 0.0, "zero pivot in unpivoted LU");
    for (std::size_t i = kk + 1; i < n; ++i) {
      a.at(i, kk) /= pivot;
      const double lik = a.at(i, kk);
      for (std::size_t j = kk + 1; j < n; ++j) {
        a.at(i, j) -= lik * a.at(kk, j);
      }
    }
  }
}

void cholesky_base(Block a, std::size_t n) {
  // Lower Cholesky, reading/writing the lower triangle only.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t t = 0; t < j; ++t) d -= a.at(j, t) * a.at(j, t);
    LBMF_CHECK_MSG(d > 0.0, "cholesky input not positive definite");
    const double ljj = std::sqrt(d);
    a.at(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t t = 0; t < j; ++t) s -= a.at(i, t) * a.at(j, t);
      a.at(i, j) = s / ljj;
    }
  }
}

void lower_solve_row(Block x, Block l, std::size_t row, std::size_t n) {
  // Solve y L^T = x_row for one row, i.e. forward substitution against L:
  // y[j] = (x[j] - sum_{t<j} y[t] L[j][t]) / L[j][j].
  for (std::size_t j = 0; j < n; ++j) {
    double s = x.at(row, j);
    for (std::size_t t = 0; t < j; ++t) s -= x.at(row, t) * l.at(j, t);
    x.at(row, j) = s / l.at(j, j);
  }
}

void block_add(Block out, Block x, Block y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.at(i, j) = x.at(i, j) + y.at(i, j);
    }
  }
}

void block_sub(Block out, Block x, Block y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.at(i, j) = x.at(i, j) - y.at(i, j);
    }
  }
}

void block_copy(Block out, Block x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out.at(i, j) = x.at(i, j);
    }
  }
}

}  // namespace lbmf::cilkbench::detail
