#include "lbmf/cilkbench/common.hpp"

#include <cmath>

namespace lbmf::cilkbench {

std::uint64_t checksum_doubles(const double* p, std::size_t n) {
  // Quantize to 1e-6 so the hash tolerates non-associative summation-order
  // differences far below algorithmic error, while still catching wrong
  // results.
  std::uint64_t h = 0x51ed270b0badc0deULL;
  for (std::size_t i = 0; i < n; ++i) {
    const double q = std::nearbyint(p[i] * 1e6);
    h = hash_mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(q)));
  }
  return h;
}

}  // namespace lbmf::cilkbench
