#include "lbmf/cilkbench/recursive.hpp"

namespace lbmf::cilkbench {

std::vector<KnapsackItem> make_knapsack_items(int n, std::uint64_t seed) {
  LBMF_CHECK(n >= 1 && n <= 64);
  std::vector<KnapsackItem> items;
  items.reserve(static_cast<std::size_t>(n));
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i) {
    items.push_back(KnapsackItem{
        static_cast<int>(rng.next_below(90) + 10),   // value in [10, 100)
        static_cast<int>(rng.next_below(90) + 10)}); // weight in [10, 100)
  }
  // Sort by value density (descending) so the bound prunes effectively —
  // the standard branch-and-bound preparation.
  std::sort(items.begin(), items.end(),
            [](const KnapsackItem& a, const KnapsackItem& b) {
              return static_cast<long>(a.value) * b.weight >
                     static_cast<long>(b.value) * a.weight;
            });
  return items;
}

}  // namespace lbmf::cilkbench
