#include "lbmf/cilkbench/fft.hpp"

#include <cmath>

namespace lbmf::cilkbench {

std::vector<Complex> dft_reference(const std::vector<Complex>& in) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) *
                         static_cast<double>(j) / static_cast<double>(n);
      acc += in[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

}  // namespace lbmf::cilkbench
