#include "lbmf/rwlock/rwlock.hpp"

namespace lbmf {

// Explicit instantiations of the paper's three locks plus the membarrier
// variant, so template errors surface at library-build time.
template class BiasedRwLock<SymmetricFence, false>;
template class BiasedRwLock<AsymmetricSignalFence, false>;
template class BiasedRwLock<AsymmetricSignalFence, true>;
template class BiasedRwLock<AsymmetricMembarrierFence, false>;
template class BiasedRwLock<AsymmetricMembarrierFence, true>;

}  // namespace lbmf
