#include "lbmf/infer/reach.hpp"

#include <cstdio>
#include <cstring>
#include <deque>
#include <utility>

#include "lbmf/sim/visited.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::infer {

using sim::Action;
using sim::Choice;
using sim::Fingerprint;
using sim::Machine;

namespace {

void put32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put64(std::string& s, std::uint64_t v) {
  s.append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void put_str(std::string& s, const std::string& v) {
  put32(s, static_cast<std::uint32_t>(v.size()));
  s += v;
}
void put_choices(std::string& s, const std::vector<Choice>& cs) {
  put32(s, static_cast<std::uint32_t>(cs.size()));
  for (const Choice& c : cs) {
    s.push_back(static_cast<char>(c.cpu));
    s.push_back(static_cast<char>(c.action));
  }
}

struct Reader {
  std::string_view in;
  std::size_t pos = 0;
  bool ok = true;

  bool get32(std::uint32_t* v) {
    if (!ok || pos + sizeof(*v) > in.size()) return ok = false;
    std::memcpy(v, in.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  }
  bool get64(std::uint64_t* v) {
    if (!ok || pos + sizeof(*v) > in.size()) return ok = false;
    std::memcpy(v, in.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  }
  bool get_str(std::string* v) {
    std::uint32_t n = 0;
    if (!get32(&n) || pos + n > in.size()) return ok = false;
    v->assign(in.data() + pos, n);
    pos += n;
    return true;
  }
  bool get_choices(std::vector<Choice>* cs) {
    std::uint32_t n = 0;
    if (!get32(&n) || pos + 2ull * n > in.size()) return ok = false;
    cs->resize(n);
    for (Choice& c : *cs) {
      c.cpu = static_cast<std::uint8_t>(in[pos++]);
      c.action = static_cast<Action>(in[pos++]);
    }
    return true;
  }
};

constexpr char kGraphMagic[8] = {'L', 'B', 'M', 'F', 'P', 'G', '1', '\n'};

/// Root machine of the *base* (all-none) problem.
Machine base_machine(const InferProblem& p) {
  sim::SimConfig cfg = p.config;
  cfg.num_cpus = p.programs.size();
  Machine m(cfg);
  for (const auto& [addr, v] : p.initial_memory) m.set_memory(addr, v);
  for (std::size_t i = 0; i < p.programs.size(); ++i) {
    m.load_program(i, p.programs[i]);
  }
  return m;
}

std::optional<std::string> check_state(const Machine& m,
                                       const sim::Explorer::Options& eo) {
  std::optional<std::string> violation;
  if (eo.check_coherence) violation = m.check_coherence();
  if (!violation && eo.check_mutual_exclusion && m.cpus_in_cs() > 1) {
    violation = "mutual exclusion violated: " +
                std::to_string(m.cpus_in_cs()) +
                " CPUs in the critical section";
  }
  if (!violation && eo.check) violation = eo.check(m);
  return violation;
}

}  // namespace

Hash128 problem_graph_key(const InferProblem& p) {
  std::string s;
  put32(s, static_cast<std::uint32_t>(p.config.num_cpus));
  put32(s, static_cast<std::uint32_t>(p.config.sb_capacity));
  put32(s, static_cast<std::uint32_t>(p.config.cache_capacity));
  put32(s, static_cast<std::uint32_t>(p.config.line_words));
  put32(s, static_cast<std::uint32_t>(p.config.protocol));
  s.push_back(p.config.le_st_enabled ? 1 : 0);
  for (const sim::Program& prog : p.programs) {
    put32(s, static_cast<std::uint32_t>(prog.code.size()));
    for (const sim::Instr& in : prog.code) {
      s.push_back(static_cast<char>(in.op));
      s.push_back(static_cast<char>(in.reg));
      put32(s, in.addr);
      put64(s, static_cast<std::uint64_t>(in.imm));
      put32(s, static_cast<std::uint32_t>(in.target));
    }
  }
  put32(s, static_cast<std::uint32_t>(p.sites.size()));
  for (const FenceSite& site : p.sites) {
    put32(s, static_cast<std::uint32_t>(site.cpu));
    put32(s, static_cast<std::uint32_t>(site.instr_index));
    put32(s, site.addr);
    put64(s, static_cast<std::uint64_t>(site.value));
    s.push_back(site.is_reg_store ? 1 : 0);
  }
  put32(s, static_cast<std::uint32_t>(p.initial_memory.size()));
  for (const auto& [a, v] : p.initial_memory) {
    put32(s, a);
    put64(s, static_cast<std::uint64_t>(v));
  }
  put32(s, static_cast<std::uint32_t>(p.final_allowed.size()));
  for (const auto& conj : p.final_allowed) {
    put32(s, static_cast<std::uint32_t>(conj.size()));
    for (const auto& [a, v] : conj) {
      put32(s, a);
      put64(s, static_cast<std::uint64_t>(v));
    }
  }
  return lbmf::hash128(s.data(), s.size(), /*seed=*/0x5047);
}

PrefixGraph build_prefix_graph(const InferProblem& p,
                               const sim::Explorer::Options& eo) {
  PrefixGraph g;
  g.key = problem_graph_key(p);

  std::vector<std::vector<bool>> is_hole(p.programs.size());
  for (std::size_t cpu = 0; cpu < p.programs.size(); ++cpu) {
    is_hole[cpu].assign(p.programs[cpu].code.size(), false);
  }
  for (const FenceSite& s : p.sites) is_hole[s.cpu][s.instr_index] = true;

  struct Item {
    Machine m;
    std::vector<Choice> prefix;
  };
  std::deque<Item> queue;
  sim::FingerprintSet seen;
  std::string scratch;

  Machine root = base_machine(p);
  const Fingerprint root_fp = root.fingerprint(scratch);
  seen.insert(root_fp);
  g.visited.push_back(root_fp);
  g.base.states_explored = 1;  // the root, as in Explorer::run
  queue.push_back(Item{std::move(root), {}});

  while (!queue.empty()) {
    Item it = std::move(queue.front());
    queue.pop_front();

    std::vector<Choice> normal;
    std::vector<Choice> deferred;
    for (std::size_t cpu = 0; cpu < it.m.num_cpus(); ++cpu) {
      for (const Action a : {Action::Execute, Action::Drain}) {
        if (!it.m.action_enabled(cpu, a)) continue;
        const Choice c{static_cast<std::uint8_t>(cpu), a};
        const std::int32_t pc = it.m.cpu(cpu).pc;
        if (a == Action::Execute && pc >= 0 &&
            static_cast<std::size_t>(pc) < is_hole[cpu].size() &&
            is_hole[cpu][static_cast<std::size_t>(pc)]) {
          deferred.push_back(c);
        } else {
          normal.push_back(c);
        }
      }
    }
    if (normal.empty() && deferred.empty()) {
      ++g.base.terminal_states;
      if (eo.observe) g.base.outcomes.insert(eo.observe(it.m));
      continue;
    }
    if (!deferred.empty()) {
      PrefixGraph::Seed seed;
      it.m.save_arch(seed.arch);
      seed.prefix = it.prefix;
      seed.agenda = std::move(deferred);
      g.seeds.push_back(std::move(seed));
    }
    for (std::size_t i = 0; i < normal.size(); ++i) {
      const Choice c = normal[i];
      Machine child = i + 1 == normal.size() ? std::move(it.m) : it.m;
      child.step(c.cpu, c.action);
      ++g.base.transitions;
      const Fingerprint fp = child.fingerprint(scratch);
      if (!seen.insert(fp)) {
        ++g.base.dedup_hits;
        continue;
      }
      if (g.base.states_explored >= eo.max_states) {
        // The hole-free region alone blows the per-check budget: the graph
        // cannot be trusted to be complete, so incremental mode backs off.
        g.base.hit_limit = true;
        g.valid = false;
        return g;
      }
      g.visited.push_back(fp);
      ++g.base.states_explored;
      std::vector<Choice> prefix = it.prefix;
      prefix.push_back(c);
      if (auto violation = check_state(child, eo)) {
        // No hole executed on this path, so the violating schedule exists
        // verbatim in every candidate instantiation: the whole lattice
        // shares this verdict.
        g.base.violation = std::move(*violation);
        g.base.violation_trace = std::move(prefix);
        g.valid = true;
        return g;
      }
      queue.push_back(Item{std::move(child), std::move(prefix)});
    }
  }
  g.valid = true;
  return g;
}

sim::ExploreResult explore_with_prefix(const InferProblem& p,
                                       const Instantiation& inst,
                                       const PrefixGraph& g,
                                       const sim::Explorer::Options& eo,
                                       bool symmetry) {
  LBMF_CHECK(g.valid);
  std::vector<sim::SeedState> seeds;
  seeds.reserve(g.seeds.size());
  for (const PrefixGraph::Seed& s : g.seeds) {
    sim::SimConfig cfg = p.config;
    cfg.num_cpus = inst.programs.size();
    Machine m(cfg);
    for (const auto& [addr, v] : p.initial_memory) m.set_memory(addr, v);
    for (std::size_t i = 0; i < inst.programs.size(); ++i) {
      m.load_program(i, inst.programs[i]);
    }
    LBMF_CHECK_MSG(m.restore_arch(s.arch), "corrupt prefix-graph seed");
    // Saved pcs are base-coordinate; shift them past the candidate's
    // inserted fence instructions. All other state is hole-independent.
    for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
      const std::int32_t old_pc = m.cpu(cpu).pc;
      LBMF_CHECK(old_pc >= 0 &&
                 static_cast<std::size_t>(old_pc) < inst.pc_map[cpu].size());
      m.set_pc(cpu, static_cast<std::int32_t>(
                        inst.pc_map[cpu][static_cast<std::size_t>(old_pc)]));
    }
    if (symmetry) m.auto_symmetry();
    seeds.push_back(sim::SeedState{std::move(m), s.prefix, s.agenda});
  }
  return sim::explore_seeded(std::move(seeds), g.visited, g.base, eo);
}

bool save_prefix_graph(const PrefixGraph& g, const std::string& path) {
  if (!g.valid) return false;
  std::string s;
  s.append(kGraphMagic, sizeof(kGraphMagic));
  put64(s, g.key.lo);
  put64(s, g.key.hi);
  put64(s, g.base.states_explored);
  put64(s, g.base.transitions);
  put64(s, g.base.terminal_states);
  put64(s, g.base.dedup_hits);
  s.push_back(g.base.violation.has_value() ? 1 : 0);
  if (g.base.violation) {
    put_str(s, *g.base.violation);
    put_choices(s, g.base.violation_trace);
  }
  put32(s, static_cast<std::uint32_t>(g.base.outcomes.size()));
  for (const std::string& o : g.base.outcomes) put_str(s, o);
  put32(s, static_cast<std::uint32_t>(g.visited.size()));
  for (const Fingerprint& fp : g.visited) {
    put64(s, fp.lo);
    put64(s, fp.hi);
  }
  put32(s, static_cast<std::uint32_t>(g.seeds.size()));
  for (const PrefixGraph::Seed& seed : g.seeds) {
    put_str(s, seed.arch);
    put_choices(s, seed.prefix);
    put_choices(s, seed.agenda);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(s.data(), 1, s.size(), f) == s.size();
  std::fclose(f);
  return ok;
}

bool load_prefix_graph(PrefixGraph& g, const std::string& path,
                       const Hash128& expected_key) {
  g = PrefixGraph{};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string buf;
  char chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buf.append(chunk, n);
  }
  std::fclose(f);

  Reader r{buf};
  if (buf.size() < sizeof(kGraphMagic) ||
      std::memcmp(buf.data(), kGraphMagic, sizeof(kGraphMagic)) != 0) {
    return false;
  }
  r.pos = sizeof(kGraphMagic);
  if (!r.get64(&g.key.lo) || !r.get64(&g.key.hi)) return false;
  if (!(g.key == expected_key)) return false;
  if (!r.get64(&g.base.states_explored) || !r.get64(&g.base.transitions) ||
      !r.get64(&g.base.terminal_states) || !r.get64(&g.base.dedup_hits)) {
    return false;
  }
  if (r.pos >= buf.size()) return false;
  const bool has_violation = buf[r.pos++] != 0;
  if (has_violation) {
    std::string v;
    if (!r.get_str(&v) || !r.get_choices(&g.base.violation_trace)) {
      return false;
    }
    g.base.violation = std::move(v);
  }
  std::uint32_t count = 0;
  if (!r.get32(&count)) return false;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string o;
    if (!r.get_str(&o)) return false;
    g.base.outcomes.insert(std::move(o));
  }
  if (!r.get32(&count)) return false;
  g.visited.resize(count);
  for (Fingerprint& fp : g.visited) {
    if (!r.get64(&fp.lo) || !r.get64(&fp.hi)) return false;
  }
  if (!r.get32(&count)) return false;
  g.seeds.resize(count);
  for (PrefixGraph::Seed& seed : g.seeds) {
    if (!r.get_str(&seed.arch) || !r.get_choices(&seed.prefix) ||
        !r.get_choices(&seed.agenda)) {
      return false;
    }
  }
  if (r.pos != buf.size()) return false;
  g.valid = true;
  return true;
}

}  // namespace lbmf::infer
