#include "lbmf/infer/sites.hpp"

#include <algorithm>
#include <tuple>

#include "lbmf/util/check.hpp"

namespace lbmf::infer {

using sim::Addr;
using sim::Instr;
using sim::Op;
using sim::Word;

int strength(FenceKind k) noexcept {
  switch (k) {
    case FenceKind::kNone: return 0;
    case FenceKind::kLmfence: return 1;
    case FenceKind::kMfence: return 2;
  }
  return 0;
}

bool weaker_equal(const Assignment& a, const Assignment& b) noexcept {
  if (a.kinds.size() != b.kinds.size()) return false;
  for (std::size_t i = 0; i < a.kinds.size(); ++i) {
    if (strength(a.kinds[i]) > strength(b.kinds[i])) return false;
  }
  return true;
}

std::string to_string(const Assignment& a) {
  std::string out = "{";
  for (std::size_t i = 0; i < a.kinds.size(); ++i) {
    if (i > 0) out += ", ";
    out += sim::to_string(a.kinds[i]);
  }
  return out + "}";
}

Assignment InferProblem::uniform(FenceKind k) const {
  return Assignment{std::vector<FenceKind>(sites.size(), k)};
}

double InferProblem::cpu_freq(std::size_t cpu) const noexcept {
  return cpu < cpu_freqs.size() ? cpu_freqs[cpu] : 1.0;
}

std::string InferProblem::location_name(Addr a) const {
  for (const auto& [name, addr] : symbols) {
    if (addr == a) return name;
  }
  // Built by append (not operator+ on a literal): GCC 12's -Wrestrict
  // false-positives on literal + temporary-string concatenations.
  std::string out;
  out += '[';
  out += std::to_string(a);
  out += ']';
  return out;
}

std::string InferProblem::describe_site(std::size_t site) const {
  const FenceSite& s = sites[site];
  return "cpu" + std::to_string(s.cpu) + "@" + std::to_string(s.instr_index) +
         "[" + location_name(s.addr) + "]=" +
         (s.is_reg_store ? "r?" : std::to_string(s.value));
}

ProblemParse problem_from_source(std::string_view source, sim::SimConfig cfg) {
  ProblemParse out;
  sim::AssembleResult r = sim::assemble(source);
  if (!r.ok()) {
    out.error = std::move(r.error);
    return out;
  }
  InferProblem p;
  cfg.num_cpus = r.programs.size();
  p.config = cfg;
  p.programs = std::move(r.programs);
  p.cpu_freqs = std::move(r.cpu_freqs);
  p.initial_memory = std::move(r.initial_memory);
  p.symbols = std::move(r.symbols);
  p.final_allowed = std::move(r.final_allowed);
  p.sites.reserve(r.holes.size());
  for (const sim::LitHole& h : r.holes) {
    FenceSite s;
    s.cpu = h.cpu;
    s.instr_index = h.instr_index;
    s.addr = h.addr;
    s.value = h.value;
    s.is_reg_store = false;  // the ?fence grammar takes an immediate
    s.src_line = h.line;
    s.provenance = h.provenance;
    p.sites.push_back(std::move(s));
  }
  p.symmetric_groups = detect_symmetric_groups(p);
  out.problem = std::move(p);
  return out;
}

std::vector<std::vector<std::uint8_t>> detect_symmetric_groups(
    const InferProblem& p) {
  auto sites_of = [&p](std::size_t cpu) {
    std::vector<std::tuple<std::size_t, Addr, Word, bool>> v;
    for (const FenceSite& s : p.sites) {
      if (s.cpu == cpu) {
        v.emplace_back(s.instr_index, s.addr, s.value, s.is_reg_store);
      }
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  std::vector<std::vector<std::uint8_t>> groups;
  std::vector<bool> used(p.programs.size(), false);
  for (std::size_t i = 0; i < p.programs.size(); ++i) {
    if (used[i]) continue;
    std::vector<std::uint8_t> g{static_cast<std::uint8_t>(i)};
    const auto lead_sites = sites_of(i);
    for (std::size_t j = i + 1; j < p.programs.size(); ++j) {
      if (used[j]) continue;
      if (p.programs[j].code == p.programs[i].code &&
          p.cpu_freq(j) == p.cpu_freq(i) && sites_of(j) == lead_sites) {
        g.push_back(static_cast<std::uint8_t>(j));
        used[j] = true;
      }
    }
    if (g.size() >= 2) groups.push_back(std::move(g));
  }
  return groups;
}

std::vector<std::vector<std::vector<std::size_t>>> group_sites(
    const InferProblem& p) {
  std::vector<std::vector<std::vector<std::size_t>>> out;
  out.reserve(p.symmetric_groups.size());
  for (const auto& g : p.symmetric_groups) {
    std::vector<std::vector<std::size_t>> members;
    for (const std::uint8_t cpu : g) {
      std::vector<std::size_t> sites;
      for (std::size_t s = 0; s < p.sites.size(); ++s) {
        if (p.sites[s].cpu == cpu) sites.push_back(s);
      }
      std::sort(sites.begin(), sites.end(),
                [&p](std::size_t a, std::size_t b) {
                  return p.sites[a].instr_index < p.sites[b].instr_index;
                });
      members.push_back(std::move(sites));
    }
    out.push_back(std::move(members));
  }
  return out;
}

Assignment canonicalize_assignment(const InferProblem& p,
                                   const Assignment& a) {
  if (p.symmetric_groups.empty()) return a;
  Assignment out = a;
  for (const auto& members : group_sites(p)) {
    std::vector<std::vector<FenceKind>> tuples;
    tuples.reserve(members.size());
    for (const auto& sites : members) {
      std::vector<FenceKind> t;
      for (const std::size_t s : sites) t.push_back(a.kinds[s]);
      tuples.push_back(std::move(t));
    }
    std::sort(tuples.begin(), tuples.end());
    for (std::size_t k = 0; k < members.size(); ++k) {
      for (std::size_t j = 0; j < members[k].size(); ++j) {
        out.kinds[members[k][j]] = tuples[k][j];
      }
    }
  }
  return out;
}

std::vector<FenceSite> discover_sites(
    const std::vector<sim::Program>& programs) {
  std::vector<FenceSite> sites;
  for (std::size_t cpu = 0; cpu < programs.size(); ++cpu) {
    const auto& code = programs[cpu].code;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i].op != Op::kStore && code[i].op != Op::kStoreReg) continue;
      // A fence only changes behaviour when a later load can be reordered
      // over this store; skip trailing stores (e.g. flag clears at exit).
      const bool later_load = std::any_of(
          code.begin() + static_cast<std::ptrdiff_t>(i) + 1, code.end(),
          [](const Instr& in) {
            return in.op == Op::kLoad || in.op == Op::kLoadExclusive;
          });
      if (!later_load) continue;
      FenceSite s;
      s.cpu = cpu;
      s.instr_index = i;
      s.addr = code[i].addr;
      s.value = code[i].imm;
      s.is_reg_store = code[i].op == Op::kStoreReg;
      sites.push_back(std::move(s));
    }
  }
  return sites;
}

namespace {

bool is_branch(Op op) noexcept {
  return op == Op::kBranchEq || op == Op::kBranchNe || op == Op::kJump ||
         op == Op::kBranchLinkSet;
}

}  // namespace

Instantiation instantiate(const InferProblem& p, const Assignment& a) {
  LBMF_CHECK(a.kinds.size() == p.sites.size());
  Instantiation out;
  out.programs.reserve(p.programs.size());
  out.site_pos.resize(p.sites.size(), 0);

  for (std::size_t cpu = 0; cpu < p.programs.size(); ++cpu) {
    const auto& old_code = p.programs[cpu].code;
    // Site index (into p.sites) per old instruction, or npos.
    std::vector<std::size_t> site_at(old_code.size(), std::size_t(-1));
    for (std::size_t s = 0; s < p.sites.size(); ++s) {
      if (p.sites[s].cpu != cpu) continue;
      LBMF_CHECK(p.sites[s].instr_index < old_code.size());
      const Op op = old_code[p.sites[s].instr_index].op;
      LBMF_CHECK_MSG(op == Op::kStore || op == Op::kStoreReg,
                     "fence site must point at a store");
      site_at[p.sites[s].instr_index] = s;
    }

    std::vector<Instr> code;
    std::vector<std::size_t> new_start(old_code.size() + 1, 0);
    // from_old[j] = old index the emitted instr j was copied from, or npos
    // for fence instructions inserted here (their targets are already in
    // new coordinates).
    std::vector<std::size_t> from_old;

    for (std::size_t i = 0; i < old_code.size(); ++i) {
      new_start[i] = code.size();
      const std::size_t s = site_at[i];
      if (s == std::size_t(-1) || a.kinds[s] == FenceKind::kNone) {
        code.push_back(old_code[i]);
        from_old.push_back(i);
        if (s != std::size_t(-1)) out.site_pos[s] = code.size() - 1;
        continue;
      }
      const FenceSite& site = p.sites[s];
      if (a.kinds[s] == FenceKind::kMfence) {
        code.push_back(old_code[i]);
        from_old.push_back(i);
        out.site_pos[s] = code.size() - 1;
        code.push_back(Instr{.op = Op::kMfence});
        from_old.push_back(std::size_t(-1));
        continue;
      }
      // kLmfence: replace the store with the Fig. 3(b) expansion, kept
      // byte-for-byte in step with ProgramBuilder::lmfence by splicing the
      // builder's own output (minus its trailing halt).
      LBMF_CHECK_MSG(!site.is_reg_store,
                     "l-mfence cannot be materialized at a register store");
      LBMF_CHECK_MSG(!site.no_lmfence,
                     "l-mfence excluded at this site by backend constraint");
      sim::ProgramBuilder eb;
      eb.lmfence(site.addr, site.value);
      eb.halt();
      const std::vector<Instr> expansion = eb.build().code;
      const std::size_t base = code.size();
      for (std::size_t j = 0; j + 1 < expansion.size(); ++j) {  // skip halt
        Instr in = expansion[j];
        if (in.target >= 0) {  // expansion-internal branch: rebase
          in.target += static_cast<std::int32_t>(base);
        }
        if (in.op == Op::kStore) out.site_pos[s] = code.size();
        code.push_back(in);
        from_old.push_back(std::size_t(-1));
      }
    }
    new_start[old_code.size()] = code.size();

    // Remap branch targets of copied instructions into the new indices.
    for (std::size_t j = 0; j < code.size(); ++j) {
      if (from_old[j] == std::size_t(-1) || !is_branch(code[j].op)) continue;
      if (code[j].target < 0) continue;
      LBMF_CHECK(static_cast<std::size_t>(code[j].target) < new_start.size());
      code[j].target =
          static_cast<std::int32_t>(new_start[code[j].target]);
    }

    sim::Program prog;
    prog.code = std::move(code);
    prog.name = p.programs[cpu].name;
    out.programs.push_back(std::move(prog));
    out.pc_map.emplace_back(new_start.begin(), new_start.end());
  }
  return out;
}

sim::Machine instantiate_machine(const InferProblem& p, const Assignment& a) {
  Instantiation inst = instantiate(p, a);
  sim::SimConfig cfg = p.config;
  cfg.num_cpus = inst.programs.size();
  sim::Machine m(cfg);
  for (const auto& [addr, v] : p.initial_memory) m.set_memory(addr, v);
  for (std::size_t i = 0; i < inst.programs.size(); ++i) {
    m.load_program(i, std::move(inst.programs[i]));
  }
  return m;
}

namespace {

/// Σ over peer CPUs of freq(peer) × (loads of `addr` in that peer's base
/// program) — the static estimate of remote serializations an l-mfence
/// guard at this site would trigger.
double remote_read_weight(const InferProblem& p, const FenceSite& site) {
  double total = 0;
  for (std::size_t cpu = 0; cpu < p.programs.size(); ++cpu) {
    if (cpu == site.cpu) continue;
    std::size_t loads = 0;
    for (const Instr& in : p.programs[cpu].code) {
      if ((in.op == Op::kLoad || in.op == Op::kLoadExclusive) &&
          in.addr == site.addr) {
        ++loads;
      }
    }
    total += p.cpu_freq(cpu) * static_cast<double>(loads);
  }
  return total;
}

}  // namespace

double site_cost(const InferProblem& p, std::size_t site, FenceKind k,
                 const model::CostTable& c) {
  const FenceSite& s = p.sites[site];
  const double w = p.cpu_freq(s.cpu);
  switch (k) {
    case FenceKind::kNone:
      return 0.0;
    case FenceKind::kMfence:
      return w * c.mfence_cycles;
    case FenceKind::kLmfence:
      return w * c.lest_victim_cycles +
             remote_read_weight(p, s) *
                 (c.lest_roundtrip_cycles + c.lest_primary_penalty_cycles);
  }
  return 0.0;
}

double assignment_cost(const InferProblem& p, const Assignment& a,
                       const model::CostTable& c) {
  double total = 0;
  for (std::size_t i = 0; i < a.kinds.size(); ++i) {
    total += site_cost(p, i, a.kinds[i], c);
  }
  return total;
}

double assignment_cost_lower_bound(const InferProblem& p, const Assignment& a,
                                   const model::CostTable& c) {
  double total = 0;
  for (std::size_t i = 0; i < a.kinds.size(); ++i) {
    double best = site_cost(p, i, a.kinds[i], c);
    for (FenceKind k : {FenceKind::kLmfence, FenceKind::kMfence}) {
      if (strength(k) < strength(a.kinds[i])) continue;
      if (k == FenceKind::kLmfence &&
          (p.sites[i].is_reg_store || p.sites[i].no_lmfence)) {
        continue;
      }
      best = std::min(best, site_cost(p, i, k, c));
    }
    total += best;
  }
  return total;
}

}  // namespace lbmf::infer
