#include "lbmf/infer/engine.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <thread>
#include <utility>

#include "lbmf/infer/reach.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::infer {

using sim::Action;
using sim::Choice;
using sim::Op;

const char* to_string(InferStatus s) noexcept {
  switch (s) {
    case InferStatus::kSat: return "SAT";
    case InferStatus::kUnsat: return "UNSAT";
    case InferStatus::kLimit: return "LIMIT";
  }
  return "?";
}

namespace {

/// Learned from one counterexample: any assignment whose strength at every
/// listed site is <= the listed bound admits the same violating schedule.
struct Clause {
  std::vector<std::pair<std::size_t, int>> lits;  // (site, max strength)

  bool operator==(const Clause&) const = default;
};

bool covers(const Clause& c, const Assignment& a) {
  return std::all_of(c.lits.begin(), c.lits.end(), [&](const auto& l) {
    return strength(a.kinds[l.first]) <= l.second;
  });
}

/// Fence kinds available at a site, weakest first. Register-sourced stores
/// cannot take the l-mfence expansion (its ST carries an immediate);
/// backend-constrained sites (FenceSite::no_lmfence) exclude it by policy.
std::vector<FenceKind> valid_kinds(const FenceSite& s) {
  if (s.is_reg_store || s.no_lmfence) {
    return {FenceKind::kNone, FenceKind::kMfence};
  }
  return {FenceKind::kNone, FenceKind::kLmfence, FenceKind::kMfence};
}

sim::Machine machine_for(const InferProblem& p, const Instantiation& inst,
                         bool symmetry = false) {
  sim::SimConfig cfg = p.config;
  cfg.num_cpus = inst.programs.size();
  sim::Machine m(cfg);
  for (const auto& [addr, v] : p.initial_memory) m.set_memory(addr, v);
  for (std::size_t i = 0; i < inst.programs.size(); ++i) {
    m.load_program(i, inst.programs[i]);
  }
  // State symmetry is per *instantiated* candidate: auto_symmetry groups
  // only byte-identical programs, so a candidate that fences the group
  // members differently simply explores without the reduction.
  if (symmetry) m.auto_symmetry();
  return m;
}

/// Replay a violating schedule of assignment `a` and return the *culprit
/// sites*: candidate sites where a (stronger) fence would have ordered one
/// of the store→load crossings the schedule performs. A fence at site s
/// kills the crossing "store S delayed past load L" exactly when control
/// passes s's store between S entering the buffer and L executing — the
/// drain point sits between them — so we mirror the store buffer with a
/// shadow queue and stamp every entry with the sites passed while it was
/// buffered. If the replay diverges (it should not: the machine is
/// deterministic given the schedule), every site is conservatively culpable.
std::set<std::size_t> find_culprits(const InferProblem& p,
                                    const Instantiation& inst,
                                    const std::vector<Choice>& trace) {
  const std::size_t nsites = p.sites.size();
  std::set<std::size_t> everything;
  for (std::size_t s = 0; s < nsites; ++s) everything.insert(s);

  sim::Machine m = machine_for(p, inst);
  // Per CPU: instantiated instruction index of each site's store.
  std::vector<std::map<std::size_t, std::size_t>> site_at(m.num_cpus());
  for (std::size_t s = 0; s < nsites; ++s) {
    site_at[p.sites[s].cpu][inst.site_pos[s]] = s;
  }

  struct ShadowEntry {
    std::vector<char> passed;  // sites whose store ran since this was pushed
  };
  std::vector<std::deque<ShadowEntry>> shadow(m.num_cpus());
  std::set<std::size_t> culprits;

  for (const Choice& ch : trace) {
    if (ch.cpu >= m.num_cpus() || !m.action_enabled(ch.cpu, ch.action)) {
      return everything;
    }
    bool is_store = false;
    std::size_t pc_idx = 0;
    if (ch.action == Action::Execute) {
      const sim::CpuState& c = m.cpu(ch.cpu);
      pc_idx = static_cast<std::size_t>(c.pc);
      if (c.program == nullptr || pc_idx >= c.program->code.size()) {
        return everything;
      }
      const sim::Instr& in = c.program->code[pc_idx];
      if (in.op == Op::kLoad || in.op == Op::kLoadExclusive) {
        // Every buffered store is being reordered past this load; any site
        // it passed while buffered would have drained it first.
        for (const ShadowEntry& e : shadow[ch.cpu]) {
          for (std::size_t s = 0; s < nsites; ++s) {
            if (e.passed[s]) culprits.insert(s);
          }
        }
      }
      is_store = in.op == Op::kStore || in.op == Op::kStoreReg;
    }
    m.step(ch.cpu, ch.action);
    if (is_store) {
      const auto hit = site_at[ch.cpu].find(pc_idx);
      if (hit != site_at[ch.cpu].end()) {
        for (ShadowEntry& e : shadow[ch.cpu]) e.passed[hit->second] = 1;
      }
      ShadowEntry ne;
      ne.passed.assign(nsites, 0);
      // A fence at the store's own site drains the entry it just pushed.
      if (hit != site_at[ch.cpu].end()) ne.passed[hit->second] = 1;
      shadow[ch.cpu].push_back(std::move(ne));
    }
    // Any step can drain buffers — locally (Drain/mfence/full-buffer
    // stores/interrupts) or remotely (guard-triggered flushes) — always
    // FIFO, so reconciling lengths keeps the shadow an exact mirror.
    for (std::size_t k = 0; k < m.num_cpus(); ++k) {
      while (shadow[k].size() > m.cpu(k).sb.entries().size()) {
        shadow[k].pop_front();
      }
    }
  }
  return culprits;
}

struct Checked {
  Instantiation inst;
  sim::ExploreResult r;
  bool cached = false;  // answered from Options::verdict_cache
  bool reused = false;  // resumed from the prefix graph
};

/// Everything one candidate check needs: the problem, the options and —
/// when incremental mode has a trusted reached-state graph — the graph.
struct CheckCtx {
  const InferProblem& p;
  const InferenceEngine::Options& o;
  const PrefixGraph* graph = nullptr;  // null => cold exploration
};

Checked check_one(const CheckCtx& x, const Assignment& a,
                  bool allow_cache = true) {
  Checked c;
  c.inst = instantiate(x.p, a);
  if (allow_cache && x.o.verdict_cache != nullptr) {
    if (auto hit = x.o.verdict_cache->lookup(a.kinds)) {
      c.r = std::move(*hit);
      c.cached = true;
      return c;
    }
  }
  const sim::Explorer::Options eo =
      InferenceEngine::explorer_options_for(x.p, x.o);
  if (x.graph != nullptr) {
    c.r = explore_with_prefix(x.p, c.inst, *x.graph, eo, x.o.symmetry);
    c.reused = true;
  } else {
    sim::Explorer ex(machine_for(x.p, c.inst, x.o.symmetry), eo);
    c.r = ex.run();
  }
  if (allow_cache && x.o.verdict_cache != nullptr && !c.r.hit_limit) {
    x.o.verdict_cache->store(a.kinds, c.r);
  }
  return c;
}

/// Verify a wave of candidates, one explorer per thread when batch > 1.
std::vector<Checked> check_wave(const CheckCtx& x,
                                const std::vector<Assignment>& wave) {
  std::vector<Checked> out(wave.size());
  if (wave.size() <= 1) {
    for (std::size_t i = 0; i < wave.size(); ++i) out[i] = check_one(x, wave[i]);
    return out;
  }
  std::vector<std::thread> ts;
  ts.reserve(wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    ts.emplace_back([&, i] { out[i] = check_one(x, wave[i]); });
  }
  for (auto& t : ts) t.join();
  return out;
}

std::string describe_clause(const InferProblem& p, const Clause& c) {
  std::string s = "strengthen one of:";
  for (const auto& [site, str] : c.lits) {
    const char* k = str <= 0 ? "none"
                  : str == 1 ? sim::to_string(FenceKind::kLmfence)
                             : sim::to_string(FenceKind::kMfence);
    // Appended piecewise: GCC 12's -Wrestrict false-positives on chained
    // literal + temporary-string concatenations.
    s += ' ';
    s += p.describe_site(site);
    s += " beyond ";
    s += k;
    s += ';';
  }
  if (!c.lits.empty()) s.pop_back();
  return s;
}

}  // namespace

InferenceEngine::InferenceEngine(InferProblem problem, Options opts)
    : p_(std::move(problem)), o_(std::move(opts)) {}

sim::Explorer::Options InferenceEngine::explorer_options_for(
    const InferProblem& p, const Options& o) {
  sim::Explorer::Options e;
  e.check_coherence = true;
  e.check_mutual_exclusion = true;
  e.max_states = o.max_states_per_check;
  e.stop_at_violation = true;
  e.por = o.por;
  e.threads = o.explorer_threads;
  // Terminal-state property: `final` directives plus deadlock detection
  // (a no-op scan for problems without either construct).
  e.check = sim::final_state_check(p.final_allowed);
  return e;
}

InferResult InferenceEngine::run() {
  InferResult res;
  const std::size_t nsites = p_.sites.size();
  res.lattice_size = 1;
  for (const FenceSite& s : p_.sites) {
    res.lattice_size *= valid_kinds(s).size();
  }

  // --- Thread-symmetry setup. One explorer run per *orbit* of the
  // assignment lattice under the problem's symmetric groups: candidates
  // are canonicalized before dedup/frontier/cache, and clause coverage is
  // tested against every within-group permutation of a candidate (a clause
  // that kills any image kills the candidate, because the permutation is a
  // transition-system automorphism). Exhaustive mode never canonicalizes —
  // it is the one-run-per-lattice-point baseline the benches compare to.
  const bool sym = o_.symmetry && !p_.symmetric_groups.empty();
  const std::vector<std::vector<std::vector<std::size_t>>> gsites =
      sym ? group_sites(p_)
          : std::vector<std::vector<std::vector<std::size_t>>>{};
  std::uint64_t orbit_bound = 1;
  for (const auto& g : p_.symmetric_groups) {
    for (std::size_t k = 2; k <= g.size() && orbit_bound <= 64; ++k) {
      orbit_bound *= k;
    }
  }
  const auto canon = [&](Assignment a) {
    return sym ? canonicalize_assignment(p_, a) : std::move(a);
  };
  // All within-group permutation images of `a` (identity included); just
  // {a} when symmetry is off or the orbit is unreasonably large.
  const auto sym_images = [&](const Assignment& a) {
    std::vector<Assignment> images{a};
    if (!sym || orbit_bound > 64) return images;
    for (const auto& members : gsites) {
      std::vector<std::size_t> perm(members.size());
      std::iota(perm.begin(), perm.end(), std::size_t{0});
      std::vector<Assignment> next;
      do {
        for (const Assignment& base : images) {
          Assignment img = base;
          for (std::size_t k = 0; k < members.size(); ++k) {
            for (std::size_t j = 0; j < members[k].size(); ++j) {
              img.kinds[members[perm[k]][j]] = base.kinds[members[k][j]];
            }
          }
          next.push_back(std::move(img));
        }
      } while (std::next_permutation(perm.begin(), perm.end()));
      images = std::move(next);
    }
    return images;
  };

  // --- Incremental setup. Build (or adopt) the hole-independent prefix
  // graph; every candidate check then resumes from its frontier. A region
  // that alone blows the state budget leaves `graph` null and the engine
  // degrades to cold per-candidate runs.
  PrefixGraph local_graph;
  const PrefixGraph* graph = nullptr;
  if (o_.incremental && nsites > 0) {
    const Hash128 key = problem_graph_key(p_);
    if (o_.prefix_graph != nullptr && o_.prefix_graph->valid &&
        o_.prefix_graph->key == key) {
      graph = o_.prefix_graph;
    } else {
      local_graph = build_prefix_graph(p_, explorer_options_for(p_, o_));
      if (local_graph.valid) graph = &local_graph;
    }
    if (graph != nullptr) res.prefix_states = graph->base.states_explored;
  }
  const CheckCtx ctx{p_, o_, graph};

  struct Node {
    double bound;
    double cost;
    Assignment a;
    bool operator<(const Node& o) const {
      if (bound != o.bound) return bound < o.bound;
      if (cost != o.cost) return cost < o.cost;
      return a.kinds < o.a.kinds;
    }
  };

  const double inf = std::numeric_limits<double>::infinity();
  double best_cost = inf;
  std::optional<Assignment> best;
  bool saw_limit = false;
  std::vector<Clause> clauses;

  std::set<Node> frontier;
  std::set<std::vector<FenceKind>> seen;
  const auto enqueue = [&](Assignment a) {
    // Orbit quotient: only the canonical representative is ever enqueued.
    // Costs are group-invariant, so the representative prices its whole
    // orbit; the one-step bump edges from representatives still reach a
    // member of every orbit (bump the canonical predecessor's sites).
    a = canon(std::move(a));
    if (!seen.insert(a.kinds).second) return;
    ++res.candidates_generated;
    Node n;
    n.bound = assignment_cost_lower_bound(p_, a, o_.costs);
    n.cost = assignment_cost(p_, a, o_.costs);
    n.a = std::move(a);
    frontier.insert(std::move(n));
  };
  // Successors: bump one site to the next-stronger kind in its chain (the
  // one-step edges cover the lattice from the bottom).
  const auto expand = [&](const Assignment& a) {
    for (std::size_t s = 0; s < nsites; ++s) {
      const std::vector<FenceKind> ks = valid_kinds(p_.sites[s]);
      const auto it = std::find(ks.begin(), ks.end(), a.kinds[s]);
      LBMF_CHECK(it != ks.end());
      if (it + 1 == ks.end()) continue;
      Assignment succ = a;
      succ.kinds[s] = *(it + 1);
      enqueue(std::move(succ));
    }
  };
  const auto account = [&](const Checked& c) {
    if (c.cached) {
      ++res.cache_hits;
      return;
    }
    ++res.candidates_verified;
    std::uint64_t states = c.r.states_explored;
    if (c.reused && graph != nullptr) {
      // A resumed check's counters include the preloaded region (that is
      // its verdict coverage); the region's cost was paid once and lives
      // in prefix_states, so states_total only charges the new suffix.
      ++res.incremental_reuses;
      states -= std::min<std::uint64_t>(states, graph->base.states_explored);
    }
    res.states_total += states;
  };
  // A candidate is refuted by a learned clause if the clause covers any of
  // its within-group permutation images (same verdict by automorphism).
  const auto covered = [&](const Assignment& a) {
    if (clauses.empty()) return false;
    const std::vector<Assignment> images = sym_images(a);
    for (const Clause& c : clauses) {
      for (const Assignment& img : images) {
        if (covers(c, img)) return true;
      }
    }
    return false;
  };
  // Learn from a counterexample; returns false on the empty clause (the
  // violation involves no store→load crossing, so no placement helps).
  const auto learn_clause = [&](const Checked& c, const Assignment& a) -> bool {
    const std::set<std::size_t> culprits =
        find_culprits(p_, c.inst, c.r.violation_trace);
    if (culprits.empty()) {
      res.status = InferStatus::kUnsat;
      res.unsat_violation = c.r.violation;
      res.unsat_trace = c.r.violation_trace;
      return false;
    }
    Clause cl;
    for (std::size_t s : culprits) cl.lits.emplace_back(s, strength(a.kinds[s]));
    if (std::find(clauses.begin(), clauses.end(), cl) == clauses.end()) {
      res.clauses.push_back(describe_clause(p_, cl));
      clauses.push_back(std::move(cl));
    }
    return true;
  };

  if (o_.exhaustive) {
    // Naive baseline: verify every point of the lattice (odometer order).
    std::vector<std::size_t> digit(nsites, 0);
    std::optional<Checked> top_check;
    bool done = nsites == 0;
    Assignment cur = p_.uniform(FenceKind::kNone);
    for (;;) {
      for (std::size_t s = 0; s < nsites; ++s) {
        cur.kinds[s] = valid_kinds(p_.sites[s])[digit[s]];
      }
      if (res.candidates_verified >= o_.max_candidates) {
        saw_limit = true;
        break;
      }
      ++res.candidates_generated;
      Checked c = check_one(ctx, cur);
      account(c);
      if (c.r.hit_limit) {
        saw_limit = true;
      } else if (!c.r.violation) {
        const double cost = assignment_cost(p_, cur, o_.costs);
        if (cost < best_cost) {
          best_cost = cost;
          best = cur;
        }
      } else if (std::all_of(cur.kinds.begin(), cur.kinds.end(), [](FenceKind k) {
                   return k == FenceKind::kMfence;
                 })) {
        top_check = std::move(c);
      }
      if (done) break;
      // Advance the odometer.
      std::size_t s = 0;
      for (; s < nsites; ++s) {
        if (++digit[s] < valid_kinds(p_.sites[s]).size()) break;
        digit[s] = 0;
      }
      if (s == nsites) break;
    }
    if (!best && !saw_limit && top_check) {
      res.status = InferStatus::kUnsat;
      res.unsat_violation = top_check->r.violation;
      res.unsat_trace = top_check->r.violation_trace;
    }
  } else {
    enqueue(p_.uniform(FenceKind::kNone));
    while (!frontier.empty()) {
      if (best && frontier.begin()->bound >= best_cost) break;
      if (res.candidates_verified >= o_.max_candidates) {
        saw_limit = true;
        break;
      }
      // Pop a wave of candidates not already ruled out by learned clauses.
      std::vector<Assignment> wave;
      const std::size_t batch = std::max<std::size_t>(o_.batch, 1);
      while (!frontier.empty() && wave.size() < batch &&
             res.candidates_verified + wave.size() < o_.max_candidates) {
        Node n = *frontier.begin();
        frontier.erase(frontier.begin());
        if (best && n.bound >= best_cost) {
          frontier.clear();  // sorted by bound: nothing cheaper remains
          break;
        }
        expand(n.a);
        const bool pruned = o_.learn_clauses && covered(n.a);
        if (pruned) {
          ++res.candidates_pruned;
          continue;
        }
        wave.push_back(std::move(n.a));
      }
      if (wave.empty()) continue;
      const std::vector<Checked> checked = check_wave(ctx, wave);
      for (std::size_t i = 0; i < wave.size(); ++i) {
        account(checked[i]);
        if (checked[i].r.violation) {
          if (o_.learn_clauses && !learn_clause(checked[i], wave[i])) {
            return res;  // empty clause: unsat, res already filled
          }
        } else if (checked[i].r.hit_limit) {
          saw_limit = true;
        } else {
          const double cost = assignment_cost(p_, wave[i], o_.costs);
          if (cost < best_cost) {
            best_cost = cost;
            best = wave[i];
          }
        }
      }
    }
    if (!best && !saw_limit) {
      // Frontier exhausted with nothing safe. Confirm unsatisfiability with
      // a fresh check of the strongest placement (it may only have been
      // ruled out by counterexample reasoning, never explored directly).
      const Assignment top = p_.uniform(FenceKind::kMfence);
      Checked c = check_one(ctx, top);
      account(c);
      if (c.r.violation) {
        res.status = InferStatus::kUnsat;
        res.unsat_violation = c.r.violation;
        res.unsat_trace = c.r.violation_trace;
      } else if (c.r.hit_limit) {
        saw_limit = true;
      } else {
        best_cost = assignment_cost(p_, top, o_.costs);
        best = top;
      }
    }
  }

  if (!best) {
    // A proven UNSAT carries its fence-independent violation; anything else
    // without a winner means some budget made the search inconclusive.
    if (!res.unsat_violation) {
      res.status = saw_limit ? InferStatus::kLimit : InferStatus::kUnsat;
    }
    return res;
  }

  res.status = InferStatus::kSat;

  if (o_.minimality_pass && nsites > 0) {
    // Weaken or swap each placed fence: a per-site certificate that the
    // winner is locally minimal, and a repair pass if counterexample
    // pruning ever skipped a cheaper safe point. Most mutations are
    // decided without an explorer run — strengthenings by monotonicity
    // (SAFE is upward-closed in the strength lattice), weakenings by the
    // verdict cache or a learned clause; only a mutation that would
    // actually be *cheaper* and is undecided earns a fresh exploration.
    // Pricier undecided mutations are skipped without a note.
    bool improved = true;
    while (improved && res.candidates_verified < o_.max_candidates) {
      improved = false;
      for (std::size_t s = 0; s < nsites && !improved; ++s) {
        if (best->kinds[s] == FenceKind::kNone) continue;
        for (FenceKind alt : valid_kinds(p_.sites[s])) {
          if (alt == best->kinds[s]) continue;
          Assignment mut = *best;
          mut.kinds[s] = alt;
          const double cost = assignment_cost(p_, mut, o_.costs);
          MinimalityNote note;
          note.site = s;
          note.from = best->kinds[s];
          note.to = alt;
          note.cost_delta = cost - best_cost;
          if (strength(alt) > strength(best->kinds[s])) {
            note.safe = true;  // strengthening a SAFE placement stays SAFE
            res.minimality.push_back(note);
          } else {
            const Assignment mc = canon(mut);
            bool decided = false;
            if (o_.verdict_cache != nullptr) {
              if (auto hit = o_.verdict_cache->lookup(mc.kinds)) {
                note.safe = !hit->violation;  // hit_limit is never stored
                ++res.cache_hits;
                decided = true;
              }
            }
            if (!decided && o_.learn_clauses && covered(mc)) {
              note.safe = false;  // a search counterexample still applies
              ++res.candidates_pruned;
              decided = true;
            }
            if (!decided) {
              if (cost >= best_cost) continue;  // can't improve: skip
              Checked c = check_one(ctx, mc);
              account(c);
              note.hit_limit = c.r.hit_limit;
              note.safe = !c.r.violation && !c.r.hit_limit;
            }
            res.minimality.push_back(note);
          }
          if (note.safe && !note.hit_limit && cost < best_cost) {
            best_cost = cost;
            best = std::move(mut);
            improved = true;  // restart the sweep from the new winner
            break;
          }
        }
      }
    }
  }

  res.best = *best;
  res.best_cost = best_cost;

  // End-to-end certificate: one fresh *cold* exploration of the emitted
  // placement — never served from the verdict cache and never resumed from
  // the prefix graph, so on incremental runs it independently cross-checks
  // the resumed verdict for the winner.
  {
    const CheckCtx cold{p_, o_, nullptr};
    Checked c = check_one(cold, res.best, /*allow_cache=*/false);
    res.states_total += c.r.states_explored;
    res.recheck_safe = !c.r.violation && !c.r.hit_limit;
  }
  return res;
}

}  // namespace lbmf::infer
