#include "lbmf/infer/sweep.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "lbmf/infer/reach.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::infer {

bool SweepResult::all_sat() const noexcept {
  const auto ok = [](const std::vector<SweepPoint>& pts) {
    for (const SweepPoint& p : pts) {
      if (p.status != InferStatus::kSat || !p.recheck_safe) return false;
    }
    return !pts.empty();
  };
  if (!ok(points)) return false;
  for (const SweepBackendPlane& bp : backend_planes) {
    if (!ok(bp.points)) return false;
  }
  return true;
}

std::size_t SweepResult::distinct_optima_at(double roundtrip) const {
  std::vector<std::string> seen;
  for (const SweepPoint& p : points) {
    if (p.lest_roundtrip != roundtrip || p.status != InferStatus::kSat) {
      continue;
    }
    std::string key = to_string(p.best);
    bool fresh = true;
    for (const std::string& s : seen) {
      if (s == key) {
        fresh = false;
        break;
      }
    }
    if (fresh) seen.push_back(std::move(key));
  }
  return seen.size();
}

SweepResult run_sweep(InferProblem problem, const SweepOptions& opts) {
  LBMF_CHECK(!opts.victim_freqs.empty() && !opts.roundtrips.empty());
  LBMF_CHECK(opts.victim_cpu < problem.programs.size());
  if (problem.cpu_freqs.size() < problem.programs.size()) {
    problem.cpu_freqs.resize(problem.programs.size(), 1.0);
  }

  SweepResult out;
  out.victim_freqs = opts.victim_freqs;
  out.roundtrips = opts.roundtrips;

  // One verdict cache for the whole grid: safety is cost-independent, so
  // every lattice point is explored at most once across all grid points.
  // An externally supplied cache is honoured (and outlives the sweep).
  VerdictCache local_cache;
  VerdictCache* cache = opts.engine.verdict_cache != nullptr
                            ? opts.engine.verdict_cache
                            : &local_cache;

  // One prefix graph for the whole grid: problem_graph_key excludes freqs
  // and costs, so the hole-independent region built here matches every
  // grid point's problem and each engine adopts it instead of rebuilding.
  PrefixGraph grid_graph;
  const PrefixGraph* grid_graph_ptr = opts.engine.prefix_graph;
  if (opts.engine.incremental && grid_graph_ptr == nullptr &&
      !problem.sites.empty()) {
    grid_graph = build_prefix_graph(
        problem, InferenceEngine::explorer_options_for(problem, opts.engine));
    if (grid_graph.valid) grid_graph_ptr = &grid_graph;
  }
  if (grid_graph_ptr != nullptr) {
    out.prefix_states = grid_graph_ptr->base.states_explored;
  }

  const auto solve_grid = [&](const InferProblem& base,
                              std::vector<SweepPoint>& pts,
                              std::vector<Crossover>* crossovers) {
    for (double rt : opts.roundtrips) {
      const SweepPoint* prev = nullptr;
      for (double f : opts.victim_freqs) {
        InferProblem p = base;
        p.cpu_freqs[opts.victim_cpu] = f;
        InferenceEngine::Options eo = opts.engine;
        eo.costs.lest_roundtrip_cycles = rt;
        eo.verdict_cache = cache;
        eo.prefix_graph = grid_graph_ptr;
        InferenceEngine engine(std::move(p), eo);
        const InferResult r = engine.run();

        SweepPoint pt;
        pt.victim_freq = f;
        pt.lest_roundtrip = rt;
        pt.status = r.status;
        pt.best = r.best;
        pt.best_cost = r.best_cost;
        pt.recheck_safe = r.recheck_safe;
        out.explorer_runs += r.candidates_verified;
        out.cache_hits += r.cache_hits;
        out.states_total += r.states_total;
        out.incremental_reuses += r.incremental_reuses;

        if (crossovers != nullptr && prev != nullptr &&
            prev->status == InferStatus::kSat &&
            pt.status == InferStatus::kSat && !(prev->best == pt.best)) {
          Crossover x;
          x.lest_roundtrip = rt;
          x.freq_before = prev->victim_freq;
          x.freq_after = f;
          x.from = to_string(prev->best);
          x.to = to_string(pt.best);
          crossovers->push_back(std::move(x));
        }
        pts.push_back(std::move(pt));
        prev = &pts.back();
      }
    }
  };

  solve_grid(problem, out.points, &out.crossovers);

  for (const SweepBackend& b : opts.backends) {
    SweepBackendPlane plane;
    plane.name = b.name;
    plane.inverts_roles = b.inverts_roles;
    if (b.inverts_roles) {
      // Role inversion leaves every site's kind lattice intact, so the
      // plane's solution space — and therefore its solved grid — is the
      // base grid. Copy instead of re-solving.
      plane.points = out.points;
    } else {
      // The backend can only run the light path on the victim's side:
      // exclude l-mfence everywhere else and re-solve. The shared verdict
      // cache and prefix graph still apply (the constraint prunes
      // assignments; it never changes a safety verdict, and
      // problem_graph_key ignores it).
      InferProblem constrained = problem;
      for (FenceSite& s : constrained.sites) {
        if (s.cpu != opts.victim_cpu) s.no_lmfence = true;
      }
      // Orbit canonicalization permutes kind tuples within a symmetric
      // group, which is only sound when every member carries the same
      // constraint — drop groups mixing the victim with constrained peers.
      std::erase_if(constrained.symmetric_groups, [&](const auto& g) {
        bool has_victim = false, has_other = false;
        for (const std::uint8_t cpu : g) {
          (cpu == opts.victim_cpu ? has_victim : has_other) = true;
        }
        return has_victim && has_other;
      });
      solve_grid(constrained, plane.points, nullptr);
    }
    out.backend_planes.push_back(std::move(plane));
  }
  return out;
}

namespace {

void append_num(std::string& s, double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  s += buf;
}

}  // namespace

namespace {

void append_points(std::string& s, const std::vector<SweepPoint>& points) {
  s += "\"points\":[";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    if (i > 0) s += ',';
    s += "{\"freq\":";
    append_num(s, p.victim_freq);
    s += ",\"roundtrip\":";
    append_num(s, p.lest_roundtrip);
    s += ",\"status\":\"";
    s += to_string(p.status);
    s += "\",\"optimum\":\"" + to_string(p.best) + "\",\"cost\":";
    append_num(s, p.best_cost);
    s += ",\"recheck_safe\":";
    s += p.recheck_safe ? "true" : "false";
    s += '}';
  }
  s += ']';
}

}  // namespace

std::string sweep_to_json(const SweepResult& r, const std::string& workload) {
  std::string s = "{\"bench\":\"sweep\",\"workload\":\"" + workload + "\",";
  s += "\"victim_freqs\":[";
  for (std::size_t i = 0; i < r.victim_freqs.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, r.victim_freqs[i]);
  }
  s += "],\"roundtrips\":[";
  for (std::size_t i = 0; i < r.roundtrips.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, r.roundtrips[i]);
  }
  s += "],";
  append_points(s, r.points);
  s += ",\"crossovers\":[";
  for (std::size_t i = 0; i < r.crossovers.size(); ++i) {
    const Crossover& x = r.crossovers[i];
    if (i > 0) s += ',';
    s += "{\"roundtrip\":";
    append_num(s, x.lest_roundtrip);
    s += ",\"freq_before\":";
    append_num(s, x.freq_before);
    s += ",\"freq_after\":";
    append_num(s, x.freq_after);
    s += ",\"from\":\"" + x.from + "\",\"to\":\"" + x.to + "\"}";
  }
  s += "],\"explorer_runs\":" + std::to_string(r.explorer_runs);
  s += ",\"cache_hits\":" + std::to_string(r.cache_hits);
  s += ",\"states_total\":" + std::to_string(r.states_total);
  s += ",\"prefix_states\":" + std::to_string(r.prefix_states);
  s += ",\"incremental_reuses\":" + std::to_string(r.incremental_reuses);
  // The backend dimension rides after every base section so consumers that
  // stop at the first "points" array (PolicyTable::from_json's base parse)
  // are unaffected.
  if (!r.backend_planes.empty()) {
    s += ",\"backend_planes\":[";
    for (std::size_t i = 0; i < r.backend_planes.size(); ++i) {
      const SweepBackendPlane& bp = r.backend_planes[i];
      if (i > 0) s += ',';
      s += "{\"backend\":\"" + bp.name + "\",\"inverts_roles\":";
      s += bp.inverts_roles ? "true" : "false";
      s += ',';
      append_points(s, bp.points);
      s += '}';
    }
    s += ']';
  }
  s += '}';
  return s;
}

std::string sweep_to_policy_json(const SweepResult& r,
                                 std::size_t victim_site,
                                 std::size_t thief_site) {
  const auto lmfence_at = [](const SweepPoint& p, std::size_t site) {
    return p.status == InferStatus::kSat && site < p.best.kinds.size() &&
           p.best.kinds[site] == FenceKind::kLmfence;
  };
  std::string s = "{\"policy_table\":1,\"ratios\":[";
  for (std::size_t i = 0; i < r.victim_freqs.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, r.victim_freqs[i]);
  }
  s += "],\"roundtrips\":[";
  for (std::size_t i = 0; i < r.roundtrips.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, r.roundtrips[i]);
  }
  const auto append_modes = [&](const std::vector<SweepPoint>& points) {
    // points is row-major roundtrips × victim_freqs — exactly the cell
    // order PolicyTable expects.
    s += '[';
    for (std::size_t i = 0; i < points.size(); ++i) {
      const SweepPoint& p = points[i];
      if (i > 0) s += ',';
      s += '"';
      if (lmfence_at(p, victim_site) && lmfence_at(p, thief_site)) {
        s += "double-lmfence";
      } else if (lmfence_at(p, victim_site)) {
        s += "asymmetric";
      } else {
        s += "symmetric";
      }
      s += '"';
    }
    s += ']';
  };
  s += "],\"modes\":";
  append_modes(r.points);
  if (!r.backend_planes.empty()) {
    s += ",\"backends\":[";
    for (std::size_t i = 0; i < r.backend_planes.size(); ++i) {
      if (i > 0) s += ',';
      s += '"' + r.backend_planes[i].name + '"';
    }
    s += ']';
    for (const SweepBackendPlane& bp : r.backend_planes) {
      s += ",\"plane:" + bp.name + "\":";
      append_modes(bp.points);
    }
  }
  s += '}';
  return s;
}

}  // namespace lbmf::infer
