#include "lbmf/util/affinity.hpp"

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <thread>

namespace lbmf {

std::size_t online_cpus() noexcept {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  if (n > 0) return static_cast<std::size_t>(n);
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

bool pin_to_cpu(std::size_t cpu) noexcept {
  const std::size_t n = online_cpus();
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(cpu % n), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
}

}  // namespace lbmf
