#include "lbmf/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lbmf {

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p90 = percentile_sorted(samples, 0.90);
  s.p99 = percentile_sorted(samples, 0.99);
  RunningStat rs;
  for (double x : samples) rs.add(x);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  return s;
}

std::string Summary::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.4g sd=%.3g min=%.4g p50=%.4g p90=%.4g p99=%.4g "
                "max=%.4g",
                count, mean, stddev, min, p50, p90, p99, max);
  return buf;
}

}  // namespace lbmf
