#include "lbmf/util/timing.hpp"

#include <thread>

namespace lbmf {
namespace {

double calibrate_tsc_hz() {
  using clock = std::chrono::steady_clock;
  // Two short calibration windows; take the second (warm) one.
  double hz = 1e9;
  for (int pass = 0; pass < 2; ++pass) {
    const auto t0 = clock::now();
    const std::uint64_t c0 = rdtsc();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const std::uint64_t c1 = rdtsc();
    const auto t1 = clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (secs > 0) hz = static_cast<double>(c1 - c0) / secs;
  }
  return hz;
}

}  // namespace

double tsc_hz() {
  static const double hz = calibrate_tsc_hz();
  return hz;
}

double tsc_to_ns(std::uint64_t cycles) {
  return static_cast<double>(cycles) / tsc_hz() * 1e9;
}

}  // namespace lbmf
