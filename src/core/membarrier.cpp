#include "lbmf/core/membarrier.hpp"

#include <sys/syscall.h>
#include <unistd.h>

#include "lbmf/core/fence.hpp"

namespace lbmf::membarrier {
namespace {

// Values from <linux/membarrier.h>; defined locally so the build does not
// depend on kernel headers newer than the libc shipped with the toolchain.
constexpr int kCmdQuery = 0;
constexpr int kCmdPrivateExpedited = 1 << 3;
constexpr int kCmdRegisterPrivateExpedited = 1 << 4;

long sys_membarrier(int cmd) noexcept {
#ifdef SYS_membarrier
  return ::syscall(SYS_membarrier, cmd, 0, 0);
#else
  (void)cmd;
  return -1;
#endif
}

bool probe_and_register() noexcept {
  const long mask = sys_membarrier(kCmdQuery);
  if (mask < 0) return false;
  if ((mask & kCmdPrivateExpedited) == 0) return false;
  return sys_membarrier(kCmdRegisterPrivateExpedited) == 0;
}

}  // namespace

bool available() noexcept {
  static const bool ok = probe_and_register();
  return ok;
}

void barrier() noexcept {
  if (available() && sys_membarrier(kCmdPrivateExpedited) == 0) return;
  // Degraded mode: at least order this thread. Callers gate on available().
  full_fence();
}

}  // namespace lbmf::membarrier
