#include "lbmf/core/serializer.hpp"

#include <algorithm>
#include <csignal>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <ctime>
#endif

#include "lbmf/core/fence.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"
#include "lbmf/util/timing.hpp"

namespace lbmf {
namespace {

// The handler needs to find the slot of the thread it interrupted. A
// thread_local pointer is set at registration time, before any signal can
// target the thread, so the TLS block is guaranteed to be allocated by the
// time the handler dereferences it.
thread_local SerializerRegistry::Slot* tls_slot = nullptr;

// Eventcount park/wake over futex(2). Raw syscalls only — futex_wake runs
// inside the signal handler, where raw syscalls are async-signal-safe.
// Elsewhere the bounded park degrades to a yield, which only costs CPU.
#if defined(__linux__)
void ack_event_park(std::atomic<std::uint32_t>* ev, std::uint32_t expected,
                    long timeout_ns) {
  timespec ts{};
  ts.tv_sec = timeout_ns / 1'000'000'000;
  ts.tv_nsec = timeout_ns % 1'000'000'000;
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(ev),
          FUTEX_WAIT_PRIVATE, expected, &ts, nullptr, 0);
}

void ack_event_wake_all(std::atomic<std::uint32_t>* ev) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(ev),
          FUTEX_WAKE_PRIVATE, INT_MAX, nullptr, nullptr, 0);
}
#else
void ack_event_park(std::atomic<std::uint32_t>*, std::uint32_t, long) {
  std::this_thread::yield();
}
void ack_event_wake_all(std::atomic<std::uint32_t>*) {}
#endif

}  // namespace

int SerializerRegistry::signal_number() noexcept { return SIGURG; }

std::atomic<std::uint64_t> SerializerRegistry::rtt_ewma_cycles_{0};
std::atomic<std::uint64_t> SerializerRegistry::rtt_samples_{0};

void SerializerRegistry::record_roundtrip(std::uint64_t cycles) noexcept {
  const std::uint64_t old = rtt_ewma_cycles_.load(std::memory_order_relaxed);
  // Fixed-point EWMA, α = 1/8; seeded with the first sample outright.
  const std::uint64_t next = old == 0 ? cycles : old - old / 8 + cycles / 8;
  rtt_ewma_cycles_.store(next, std::memory_order_relaxed);
  rtt_samples_.fetch_add(1, std::memory_order_relaxed);
}

double SerializerRegistry::measured_roundtrip_cycles() noexcept {
  return rtt_samples_.load(std::memory_order_relaxed) > 0
             ? static_cast<double>(
                   rtt_ewma_cycles_.load(std::memory_order_relaxed))
             : 0.0;
}

SerializerRegistry& SerializerRegistry::instance() {
  static SerializerRegistry registry;
  return registry;
}

SerializerRegistry::SerializerRegistry() {
  struct sigaction sa = {};
  sa.sa_handler = &SerializerRegistry::handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  LBMF_CHECK(sigaction(signal_number(), &sa, nullptr) == 0);
}

void SerializerRegistry::handler(int) {
  // Entering the kernel to deliver this signal already drained the
  // interrupted core's store buffer (the serialization the secondary wants);
  // the fence below gives the same guarantee at the C++ abstract-machine
  // level so the code is correct under any compiler.
  full_fence();
  Slot* slot = tls_slot;
  if (slot == nullptr) return;  // late signal after unregistration
  slot->signals_received.fetch_add(1, std::memory_order_relaxed);
  // Coalescing protocol, handler side: clear in_flight BEFORE sampling
  // req_seq. A secondary that observes in_flight == true observed a value
  // this store has not yet overwritten, so in the seq_cst total order its
  // req_seq bump precedes the load below — the ack we are about to publish
  // covers its request, and skipping its signal was safe.
  slot->in_flight.store(false, std::memory_order_seq_cst);
  // Acknowledge every request issued so far. Reading req_seq *after* the
  // serializing fence means the ack covers exactly the requests whose
  // stores we have made visible.
  const std::uint64_t req = slot->req_seq.load(std::memory_order_seq_cst);
  std::uint64_t ack = slot->ack_seq.load(std::memory_order_relaxed);
  while (ack < req &&
         !slot->ack_seq.compare_exchange_weak(ack, req,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
  }
  // Rouse every secondary parked on this slot's ack. The eventcount bump
  // happens after the ack is published, so a waiter that re-checks on wake
  // (or races the bump and skips the park) always sees the covering ack.
  slot->ack_event.fetch_add(1, std::memory_order_release);
  ack_event_wake_all(&slot->ack_event);
}

SerializerRegistry::Handle SerializerRegistry::register_self() {
  for (std::size_t i = 0; i < kMaxPrimaries; ++i) {
    Slot& slot = *slots_[i];
    bool expected = false;
    if (!slot.used.load(std::memory_order_relaxed) &&
        slot.used.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      slot.thread = pthread_self();
      // Start a fresh request epoch so stale acks from a previous tenant of
      // this slot cannot satisfy new requests.
      const std::uint64_t epoch =
          slot.req_seq.load(std::memory_order_relaxed);
      slot.ack_seq.store(epoch, std::memory_order_relaxed);
      slot.in_flight.store(false, std::memory_order_relaxed);
      tls_slot = &slot;
      // The store-release of `live` is the publication edge: a secondary
      // whose serialize() acquires `live == true` is guaranteed to see
      // `thread`, the ack epoch, and the installed TLS pointer.
      slot.live.store(true, std::memory_order_release);
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_acq_rel)) {
      }
      return Handle(&slot);
    }
  }
  return Handle{};
}

void SerializerRegistry::unregister_self(Handle& h) {
  if (!h.valid()) return;
  Slot& slot = *h.slot_;
  LBMF_CHECK_MSG(pthread_equal(slot.thread, pthread_self()),
                 "unregister_self must run on the registered thread");
  tls_slot = nullptr;
  // A signal already in flight will find tls_slot == nullptr and return;
  // entering the kernel for it still serialized us, and any secondary that
  // raced with this unregistration holds a handle whose serialize() call the
  // caller promised not to overlap with destruction (see header contract).
  slot.live.store(false, std::memory_order_release);
  slot.used.store(false, std::memory_order_release);
  h.slot_ = nullptr;
}

std::uint64_t SerializerRegistry::post_request(Slot& slot) {
  // Coalescing protocol, secondary side. The bump and the in_flight probe
  // are both seq_cst so they pair with the handler's clear-then-load:
  //
  //   * exchange returned false — no signal pending; we post one ourselves.
  //     The handler it triggers runs after our bump, so its req_seq load
  //     covers us.
  //   * exchange returned true — the `true` we replaced is overwritten only
  //     by a handler invocation whose in_flight clear is later than our
  //     exchange (hence later than our bump) in the seq_cst order, and that
  //     invocation loads req_seq after clearing; its ack covers us. No
  //     signal of our own is needed: the round trip is shared.
  const std::uint64_t my_req =
      slot.req_seq.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (!slot.in_flight.exchange(true, std::memory_order_seq_cst)) {
    if (pthread_kill(slot.thread, signal_number()) != 0) {
      return 0;  // thread already gone; caller violated the contract
    }
    slot.signals_posted.fetch_add(1, std::memory_order_relaxed);
  }
  return my_req;
}

void SerializerRegistry::await_ack(Slot& slot, std::uint64_t my_req) {
  // Fast path: the ack usually lands within ~one cross-core round trip;
  // spin briefly (single pauses, no backoff, no yield) before parking.
  for (int i = 0; i < kAckSpinRounds; ++i) {
    if (slot.ack_seq.load(std::memory_order_acquire) >= my_req) return;
    cpu_relax();
  }
  // Slow path: park on the ack eventcount so coalesced waiters stop
  // competing with the primary for the CPU (on an oversubscribed host the
  // primary needs our core to run its handler). The classic eventcount
  // order — sample the event, re-check the predicate, then wait on the
  // sampled value — makes the park lost-wakeup-free: a handler that
  // publishes the ack between our check and the park also bumps the event,
  // so the park returns immediately.
  int parks = 0;
  while (slot.ack_seq.load(std::memory_order_acquire) < my_req) {
    const std::uint32_t ev = slot.ack_event.load(std::memory_order_acquire);
    if (slot.ack_seq.load(std::memory_order_acquire) >= my_req) return;
    ack_event_park(&slot.ack_event, ev, kAckParkNanos);
    if (++parks >= kResignalParkBudget) {
      // The delivery is lost or indefinitely delayed: re-post instead of
      // waiting forever. Marking in_flight keeps later secondaries
      // coalescing onto this fresh signal.
      parks = 0;
      slot.resignals.fetch_add(1, std::memory_order_relaxed);
      slot.in_flight.store(true, std::memory_order_seq_cst);
      if (pthread_kill(slot.thread, signal_number()) == 0) {
        slot.signals_posted.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
}

bool SerializerRegistry::serialize(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    return false;
  }
  if (pthread_equal(slot->thread, pthread_self())) {
    // Self-serialization degenerates to an ordinary fence.
    full_fence();
    return true;
  }
  const std::uint64_t start = rdtsc();
  const std::uint64_t my_req = post_request(*slot);
  if (my_req == 0) return false;
  await_ack(*slot, my_req);
  record_roundtrip(rdtsc() - start);
  return true;
}

bool SerializerRegistry::serialize_uncoalesced(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    return false;
  }
  if (pthread_equal(slot->thread, pthread_self())) {
    full_fence();
    return true;
  }
  const std::uint64_t my_req =
      slot->req_seq.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (pthread_kill(slot->thread, signal_number()) != 0) return false;
  slot->signals_posted.fetch_add(1, std::memory_order_relaxed);
  // Pre-batching wait shape: pure spin-yield until the ack covers us.
  SpinWait waiter;
  while (slot->ack_seq.load(std::memory_order_acquire) < my_req) {
    waiter.wait();
  }
  return true;
}

std::size_t SerializerRegistry::serialize_many(std::span<const Handle> hs) {
  std::size_t serialized = 0;
  // Wave state for one chunk; chunking bounds the stack while keeping every
  // realistic batch (call sites fan out over <= 64 slots) in a single wave.
  constexpr std::size_t kChunk = 64;
  Slot* pending[kChunk];
  std::uint64_t reqs[kChunk];

  for (std::size_t base = 0; base < hs.size(); base += kChunk) {
    const std::size_t end = std::min(hs.size(), base + kChunk);
    std::size_t n = 0;
    // Phase 1 — post the whole wave: bump every primary's req_seq and send
    // (or coalesce onto) its signal without waiting on anyone.
    for (std::size_t i = base; i < end; ++i) {
      Slot* slot = hs[i].slot_;
      if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
        continue;
      }
      if (pthread_equal(slot->thread, pthread_self())) {
        full_fence();
        ++serialized;
        continue;
      }
      const std::uint64_t my_req = post_request(*slot);
      if (my_req == 0) continue;
      pending[n] = slot;
      reqs[n] = my_req;
      ++n;
    }
    // Phase 2 — collect the acks. The round trips overlap: total latency is
    // the slowest primary's, not the sum over the wave.
    for (std::size_t i = 0; i < n; ++i) {
      await_ack(*pending[i], reqs[i]);
      ++serialized;
    }
  }
  return serialized;
}

}  // namespace lbmf
