#include "lbmf/core/serializer.hpp"

#include <csignal>

#include "lbmf/core/fence.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf {
namespace {

// The handler needs to find the slot of the thread it interrupted. A
// thread_local pointer is set at registration time, before any signal can
// target the thread, so the TLS block is guaranteed to be allocated by the
// time the handler dereferences it.
thread_local SerializerRegistry::Slot* tls_slot = nullptr;

}  // namespace

int SerializerRegistry::signal_number() noexcept { return SIGURG; }

SerializerRegistry& SerializerRegistry::instance() {
  static SerializerRegistry registry;
  return registry;
}

SerializerRegistry::SerializerRegistry() {
  struct sigaction sa = {};
  sa.sa_handler = &SerializerRegistry::handler;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  LBMF_CHECK(sigaction(signal_number(), &sa, nullptr) == 0);
}

void SerializerRegistry::handler(int) {
  // Entering the kernel to deliver this signal already drained the
  // interrupted core's store buffer (the serialization the secondary wants);
  // the fence below gives the same guarantee at the C++ abstract-machine
  // level so the code is correct under any compiler.
  full_fence();
  Slot* slot = tls_slot;
  if (slot == nullptr) return;  // late signal after unregistration
  slot->signals_received.fetch_add(1, std::memory_order_relaxed);
  // Acknowledge every request issued so far. Reading req_seq *after* the
  // fence means the ack covers exactly the requests whose stores we have
  // made visible.
  const std::uint64_t req = slot->req_seq.load(std::memory_order_acquire);
  std::uint64_t ack = slot->ack_seq.load(std::memory_order_relaxed);
  while (ack < req &&
         !slot->ack_seq.compare_exchange_weak(ack, req,
                                              std::memory_order_release,
                                              std::memory_order_relaxed)) {
  }
}

SerializerRegistry::Handle SerializerRegistry::register_self() {
  for (std::size_t i = 0; i < kMaxPrimaries; ++i) {
    Slot& slot = *slots_[i];
    bool expected = false;
    if (!slot.live.load(std::memory_order_relaxed) &&
        slot.live.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      slot.thread = pthread_self();
      // Start a fresh request epoch so stale acks from a previous tenant of
      // this slot cannot satisfy new requests.
      const std::uint64_t epoch =
          slot.req_seq.load(std::memory_order_relaxed);
      slot.ack_seq.store(epoch, std::memory_order_relaxed);
      tls_slot = &slot;
      // Publish thread/tls before secondaries can observe the handle.
      std::atomic_thread_fence(std::memory_order_release);
      std::size_t hw = high_water_.load(std::memory_order_relaxed);
      while (hw < i + 1 && !high_water_.compare_exchange_weak(
                               hw, i + 1, std::memory_order_relaxed)) {
      }
      return Handle(&slot);
    }
  }
  return Handle{};
}

void SerializerRegistry::unregister_self(Handle& h) {
  if (!h.valid()) return;
  Slot& slot = *h.slot_;
  LBMF_CHECK_MSG(pthread_equal(slot.thread, pthread_self()),
                 "unregister_self must run on the registered thread");
  tls_slot = nullptr;
  // A signal already in flight will find tls_slot == nullptr and return;
  // entering the kernel for it still serialized us, and any secondary that
  // raced with this unregistration holds a handle whose serialize() call the
  // caller promised not to overlap with destruction (see header contract).
  slot.live.store(false, std::memory_order_release);
  h.slot_ = nullptr;
}

bool SerializerRegistry::serialize(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    return false;
  }
  if (pthread_equal(slot->thread, pthread_self())) {
    // Self-serialization degenerates to an ordinary fence.
    full_fence();
    return true;
  }
  const std::uint64_t my_req =
      slot->req_seq.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (pthread_kill(slot->thread, signal_number()) != 0) {
    return false;  // thread already gone; caller violated the contract
  }
  SpinWait waiter;
  while (slot->ack_seq.load(std::memory_order_acquire) < my_req) {
    waiter.wait();
  }
  return true;
}

}  // namespace lbmf
