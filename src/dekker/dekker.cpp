#include "lbmf/dekker/asymmetric_mutex.hpp"
#include "lbmf/dekker/biased_lock.hpp"
#include "lbmf/dekker/peterson.hpp"
#include "lbmf/dekker/dekker.hpp"

namespace lbmf {

// Explicit instantiations for every fence policy the library ships: catches
// template errors at library-build time and lets client TUs share the code.
template class AsymmetricDekker<SymmetricFence>;
template class AsymmetricDekker<AsymmetricSignalFence>;
template class AsymmetricDekker<AsymmetricMembarrierFence>;
template class AsymmetricDekker<UnsafeNoFence>;

template class AsymmetricMutex<SymmetricFence>;
template class AsymmetricMutex<AsymmetricSignalFence>;
template class AsymmetricMutex<AsymmetricMembarrierFence>;
template class AsymmetricMutex<UnsafeNoFence>;

template class BiasedLock<SymmetricFence>;
template class BiasedLock<AsymmetricSignalFence>;
template class BiasedLock<AsymmetricMembarrierFence>;

template class AsymmetricPeterson<SymmetricFence>;
template class AsymmetricPeterson<AsymmetricSignalFence>;
template class AsymmetricPeterson<AsymmetricMembarrierFence>;

}  // namespace lbmf
