#include "lbmf/xval/harness.hpp"

#include <cstdio>
#include <utility>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/util/affinity.hpp"

namespace lbmf::xval {
namespace {

/// Cap on snapshotted violating states; a litmus needing more than this is
/// mis-designed for xval (its tainted set would dominate the state space),
/// and the harness degrades to complete=false rather than OOMing.
constexpr std::size_t kMaxViolatingStates = 4096;

sim::Machine make_machine(const sim::AssembleResult& lit) {
  sim::SimConfig cfg;
  cfg.num_cpus = lit.programs.size();
  cfg.sb_capacity = 4;  // litmus_runner's geometry: forced natural drains
  cfg.cache_capacity = 8;
  sim::Machine m(cfg);
  for (const auto& [a, v] : lit.initial_memory) m.set_memory(a, v);
  for (std::size_t i = 0; i < lit.programs.size(); ++i) {
    m.load_program(i, lit.programs[i]);
  }
  // No symmetry groups: canonicalization would merge permuted outcome
  // strings that the native runner keeps distinct.
  return m;
}

std::function<std::string(const sim::Machine&)> make_observe(
    const ObservationSchema& schema) {
  return [schema](const sim::Machine& m) {
    return schema.format(
        [&](std::size_t c, unsigned r) { return m.cpu(c).regs[r]; },
        [&](sim::Addr a) { return m.coherent_value(a); },
        [&](std::size_t c) { return !m.cpu(c).halted; });
  };
}

const char* host_arch() noexcept {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "other";
#endif
}

void append_escaped(std::string& s, const std::string& in) {
  for (char c : in) {
    if (c == '"' || c == '\\') s += '\\';
    s += c;
  }
}

void append_string_array(std::string& s, const char* key,
                         const std::set<std::string>& v) {
  s += '"';
  s += key;
  s += "\":[";
  bool first = true;
  for (const std::string& o : v) {
    if (!first) s += ',';
    first = false;
    s += '"';
    append_escaped(s, o);
    s += '"';
  }
  s += ']';
}

void append_string_array(std::string& s, const char* key,
                         const std::vector<std::string>& v) {
  append_string_array(s, key, std::set<std::string>(v.begin(), v.end()));
}

}  // namespace

ReachableSets compute_reachable(const sim::AssembleResult& lit,
                                const ObservationSchema& schema,
                                std::uint64_t max_states) {
  ReachableSets rs;

  // Run A — the full unchecked graph: every terminal observation is
  // reachable. POR stays on (terminal states and outcomes are preserved
  // exactly; there is no custom intermediate-state check here).
  {
    sim::Explorer::Options o;
    o.check_mutual_exclusion = false;
    o.stop_at_violation = false;
    o.observe = make_observe(schema);
    o.max_states = max_states;
    sim::ExploreResult r = sim::explore_all(make_machine(lit), o);
    rs.reachable = std::move(r.outcomes);
    rs.states_explored += r.states_explored;
    rs.complete = rs.complete && !r.hit_limit;
    if (r.violation) rs.violation = *r.violation;  // coherence = sim bug
  }

  // Run B — the checked graph: the litmus property (mutual exclusion +
  // `final` directives) runs as a custom check so every violating state
  // can be snapshotted; the built-in mutual-exclusion check would fire
  // first and hide the state from us. The custom check inspects
  // intermediate states, which POR does not guarantee to visit — so the
  // reduction is off for this run only.
  std::vector<sim::Machine> bad;
  bool bad_overflow = false;
  {
    sim::Explorer::Options o;
    o.check_mutual_exclusion = false;
    o.por = false;
    o.stop_at_violation = false;
    o.observe = make_observe(schema);
    o.max_states = max_states;
    auto final_check = sim::final_state_check(lit.final_allowed);
    o.check = [&bad, &bad_overflow,
               final_check](const sim::Machine& m) -> std::optional<std::string> {
      std::optional<std::string> v;
      if (m.cpus_in_cs() > 1) {
        v = "mutual exclusion violated: " + std::to_string(m.cpus_in_cs()) +
            " CPUs in the critical section";
      }
      if (!v) v = final_check(m);
      if (v) {
        if (bad.size() < kMaxViolatingStates) {
          bad.push_back(m);
        } else {
          bad_overflow = true;
        }
      }
      return v;
    };
    sim::ExploreResult r = sim::explore_all(make_machine(lit), o);
    rs.safe = std::move(r.outcomes);
    rs.states_explored += r.states_explored;
    rs.complete = rs.complete && !r.hit_limit && !bad_overflow;
    if (r.violation && rs.violation.empty()) rs.violation = *r.violation;
  }
  rs.violating_states = bad.size();

  // Run C — taint replay: the terminal outcomes *of* a violation are what
  // the violating states can still reach, so re-explore forward from each,
  // unchecked. (Plain "reachable minus safe" misses outcomes that are also
  // reachable by an innocent schedule — broken Dekker's both-entered
  // terminal state is reachable with temporally disjoint critical
  // sections too.)
  for (sim::Machine& m : bad) {
    sim::Explorer::Options o;
    o.check_mutual_exclusion = false;
    o.stop_at_violation = false;
    o.observe = make_observe(schema);
    o.max_states = max_states;
    sim::ExploreResult r = sim::explore_all(std::move(m), o);
    for (const std::string& out : r.outcomes) rs.violating.insert(out);
    rs.states_explored += r.states_explored;
    rs.complete = rs.complete && !r.hit_limit;
  }

  return rs;
}

XvalReport diff_outcomes(std::string litmus_name, const NativeResult& native,
                         const ReachableSets& sim) {
  XvalReport r;
  r.litmus = std::move(litmus_name);
  r.arch = host_arch();
  r.online_cpus = online_cpus();
  r.sim = sim;
  r.observed = native.observed;
  r.iterations = native.iterations;
  r.wedged_iterations = native.wedged_iterations;
  for (const auto& [obs, count] : native.observed) {
    if (sim.reachable.count(obs) == 0) r.unexplained.push_back(obs);
    if (sim.violating.count(obs) != 0) r.violations_observed += count;
  }
  for (const std::string& o : sim.reachable) {
    if (native.observed.count(o) == 0) r.unobserved.push_back(o);
  }
  return r;
}

XvalReport cross_validate(std::string litmus_name,
                          const sim::AssembleResult& lit,
                          const XvalOptions& opts) {
  const ObservationSchema schema = ObservationSchema::from(lit);
  const ReachableSets sets = compute_reachable(lit, schema, opts.max_states);

  std::string reason;
  if (!native_host_supported(lit.programs.size(), &reason)) {
    XvalReport r;
    r.litmus = std::move(litmus_name);
    r.arch = host_arch();
    r.online_cpus = online_cpus();
    r.sim = sets;
    r.skipped = true;
    r.skip_reason = std::move(reason);
    // Everything reachable counts as unobserved coverage debt.
    r.unobserved.assign(sets.reachable.begin(), sets.reachable.end());
    return r;
  }

  const NativeResult native = run_native(lit, schema, opts.native);
  return diff_outcomes(std::move(litmus_name), native, sets);
}

std::string to_json(const XvalReport& r) {
  std::string s = "{\"xval\":\"";
  append_escaped(s, r.litmus);
  s += "\",\"arch\":\"";
  s += r.arch;
  s += "\",\"online_cpus\":" + std::to_string(r.online_cpus);
  s += ",\"skipped\":";
  s += r.skipped ? "true" : "false";
  s += ",\"skip_reason\":\"";
  append_escaped(s, r.skip_reason);
  s += "\",\"iterations\":" + std::to_string(r.iterations);
  s += ",\"wedged_iterations\":" + std::to_string(r.wedged_iterations);
  s += ",\"model_sound\":";
  s += r.model_sound() ? "true" : "false";
  s += ",\"conclusive\":";
  s += r.conclusive() ? "true" : "false";
  char cov[32];
  std::snprintf(cov, sizeof cov, "%.4f", r.coverage());
  s += ",\"coverage\":";
  s += cov;
  s += ",\"violations_observed\":" + std::to_string(r.violations_observed);
  s += ",\"sim\":{\"states_explored\":" + std::to_string(r.sim.states_explored);
  s += ",\"violating_states\":" + std::to_string(r.sim.violating_states);
  s += ",\"complete\":";
  s += r.sim.complete ? "true" : "false";
  s += ",\"violation\":\"";
  append_escaped(s, r.sim.violation);
  s += "\",";
  append_string_array(s, "reachable", r.sim.reachable);
  s += ',';
  append_string_array(s, "safe", r.sim.safe);
  s += ',';
  append_string_array(s, "violating", r.sim.violating);
  s += "},\"observed\":{";
  bool first = true;
  for (const auto& [obs, count] : r.observed) {
    if (!first) s += ',';
    first = false;
    s += '"';
    append_escaped(s, obs);
    s += "\":" + std::to_string(count);
  }
  s += "},";
  append_string_array(s, "unexplained", r.unexplained);
  s += ',';
  append_string_array(s, "unobserved", r.unobserved);
  s += "}\n";
  return s;
}

}  // namespace lbmf::xval
