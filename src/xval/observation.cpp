#include "lbmf/xval/observation.hpp"

#include <algorithm>
#include <map>

namespace lbmf::xval {

ObservationSchema ObservationSchema::from(const sim::AssembleResult& lit) {
  ObservationSchema s;
  s.reg_masks.resize(lit.programs.size(), 0);

  // name per address (symbols are injective over the addresses the
  // assembler hands out; unnamed numeric addresses fall back to digits).
  std::map<sim::Addr, std::string> names;
  for (const auto& [name, addr] : lit.symbols) names.emplace(addr, name);

  std::map<sim::Addr, std::string> locs;
  auto touch = [&](sim::Addr a) {
    if (a == sim::kInvalidAddr) return;
    auto it = names.find(a);
    locs.emplace(a, it != names.end() ? it->second : std::to_string(a));
  };

  for (std::size_t c = 0; c < lit.programs.size(); ++c) {
    for (const sim::Instr& i : lit.programs[c].code) {
      touch(i.addr);
      // Mirror of CpuState::regs_written_mask: the register-writing ops.
      switch (i.op) {
        case sim::Op::kLoad:
        case sim::Op::kLoadExclusive:
        case sim::Op::kMovImm:
        case sim::Op::kAddImm:
          s.reg_masks[c] |= static_cast<std::uint8_t>(1u << (i.reg & 7));
          break;
        default:
          break;
      }
    }
  }
  for (const auto& [a, v] : lit.initial_memory) {
    (void)v;
    touch(a);
  }
  for (const auto& conj : lit.final_allowed) {
    for (const auto& [a, v] : conj) {
      (void)v;
      touch(a);
    }
  }

  s.locations.assign(locs.begin(), locs.end());
  return s;
}

}  // namespace lbmf::xval
