#include "lbmf/xval/native.hpp"

#include <array>
#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "lbmf/util/affinity.hpp"
#include "lbmf/util/barrier.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf::xval {
namespace {

/// One shared litmus location on its own cache line, so the only
/// communication between roles is the communication the litmus wrote.
struct alignas(64) Cell {
  std::atomic<sim::Word> v{0};
};

/// An Instr with its address pre-resolved to the backing cell — no map
/// lookup on the hot path.
struct NInstr {
  sim::Op op{};
  std::uint8_t reg = 0;
  sim::Word imm = 0;
  std::int32_t target = -1;
  Cell* cell = nullptr;
};

/// Per-role result slot, padded so slots never share a line mid-run.
struct alignas(64) RoleSlot {
  std::array<sim::Word, 8> regs{};
  bool stuck = false;
};

inline std::uint64_t xorshift64(std::uint64_t& s) noexcept {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

/// Run one role to halt. Returns false when the step budget ran out
/// (wedged: a blocked lock or runaway loop).
bool run_role(const std::vector<NInstr>& code, sim::Word* regs,
              std::uint64_t budget) {
  std::size_t pc = 0;
  std::uint64_t steps = 0;
  while (pc < code.size()) {
    if (++steps > budget) return false;
    const NInstr& i = code[pc];
    switch (i.op) {
      case sim::Op::kLoad:
      case sim::Op::kLoadExclusive:  // no LE hardware: a plain load
        regs[i.reg] = i.cell->v.load(std::memory_order_relaxed);
        break;
      case sim::Op::kStore:
        i.cell->v.store(i.imm, std::memory_order_relaxed);
        break;
      case sim::Op::kStoreReg:
        i.cell->v.store(regs[i.reg], std::memory_order_relaxed);
        break;
      case sim::Op::kMfence:
        std::atomic_thread_fence(std::memory_order_seq_cst);
        break;
      case sim::Op::kSetLink:
        break;  // no link register to arm
      case sim::Op::kBranchLinkSet:
        break;  // link never set: fall through to the MFENCE arm
      case sim::Op::kMovImm:
        regs[i.reg] = i.imm;
        break;
      case sim::Op::kAddImm:
        regs[i.reg] += i.imm;
        break;
      case sim::Op::kBranchEq:
        if (regs[i.reg] == i.imm) {
          pc = static_cast<std::size_t>(i.target);
          continue;
        }
        break;
      case sim::Op::kBranchNe:
        if (regs[i.reg] != i.imm) {
          pc = static_cast<std::size_t>(i.target);
          continue;
        }
        break;
      case sim::Op::kJump:
        pc = static_cast<std::size_t>(i.target);
        continue;
      case sim::Op::kCsEnter:
      case sim::Op::kCsExit:
        break;  // checker bookkeeping; violations are witnessed by outcome
      case sim::Op::kDelay:
        for (sim::Word d = 0; d < i.imm; ++d) cpu_relax();
        break;
      case sim::Op::kHalt:
        return true;
      case sim::Op::kLock:
        while (i.cell->v.exchange(1) != 0) {
          if (++steps > budget) return false;
          cpu_relax();
        }
        break;
      case sim::Op::kUnlock:
        i.cell->v.store(0);
        break;
    }
    ++pc;
  }
  return true;  // assembler guarantees a trailing halt; defensive
}

}  // namespace

bool native_host_supported(std::size_t roles, std::string* reason) {
#if !defined(__x86_64__)
  if (reason) *reason = "not an x86-64 build: the simulator models x86-TSO, so "
                        "weaker hosts would legitimately observe forbidden outcomes";
  (void)roles;
  return false;
#else
  if (roles < 1) {
    if (reason) *reason = "litmus has no roles";
    return false;
  }
  if (online_cpus() < 2) {
    if (reason) {
      *reason = "fewer than 2 online CPUs: a single core cannot overlap two "
                "store buffers, so every TSO reordering is unobservable";
    }
    return false;
  }
  return true;
#endif
}

NativeResult run_native(const sim::AssembleResult& lit,
                        const ObservationSchema& schema,
                        const NativeOptions& opts) {
  const std::size_t roles = lit.programs.size();
  LBMF_CHECK_MSG(roles >= 1, "run_native: litmus has no roles");

  // Shared memory: one padded cell per schema location.
  std::vector<Cell> cells(schema.locations.size());
  auto cell_for = [&](sim::Addr a) -> Cell* {
    for (std::size_t k = 0; k < schema.locations.size(); ++k) {
      if (schema.locations[k].first == a) return &cells[k];
    }
    return nullptr;
  };

  // Pre-resolve the programs.
  std::vector<std::vector<NInstr>> code(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    const auto& prog = lit.programs[r].code;
    code[r].reserve(prog.size());
    for (const sim::Instr& i : prog) {
      NInstr n;
      n.op = i.op;
      n.reg = static_cast<std::uint8_t>(i.reg & 7);
      n.imm = i.imm;
      n.target = i.target;
      if (i.addr != sim::kInvalidAddr) {
        n.cell = cell_for(i.addr);
        LBMF_CHECK_MSG(n.cell != nullptr,
                       "run_native: instruction references an address "
                       "missing from the observation schema");
      }
      if (i.op == sim::Op::kBranchEq || i.op == sim::Op::kBranchNe ||
          i.op == sim::Op::kJump || i.op == sim::Op::kBranchLinkSet) {
        LBMF_CHECK_MSG(i.target >= 0 &&
                           static_cast<std::size_t>(i.target) <= prog.size(),
                       "run_native: branch target out of range");
      }
      code[r].push_back(n);
    }
  }

  auto reset_memory = [&] {
    for (Cell& c : cells) c.v.store(0, std::memory_order_relaxed);
    for (const auto& [a, v] : lit.initial_memory) {
      Cell* c = cell_for(a);
      if (c) c->v.store(v, std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
  };
  reset_memory();

  std::vector<RoleSlot> slots(roles);
  SenseBarrier start(static_cast<int>(roles));
  SenseBarrier end(static_cast<int>(roles));
  const std::size_t ncpu = online_cpus();

  NativeResult result;
  result.iterations = opts.iterations;
  std::map<std::string, std::uint64_t>& observed = result.observed;
  std::uint64_t wedged = 0;

  auto role_main = [&](std::size_t r) {
    if (opts.pin_threads) pin_to_cpu(r % (ncpu == 0 ? 1 : ncpu));
    // One local sense PER BARRIER: the sense must alternate per crossing
    // of the same barrier object, so sharing one across start and end
    // would leave both barriers permanently open (see barrier.hpp).
    int start_sense = 0;
    int end_sense = 0;
    std::uint64_t rng_base =
        opts.seed ^ (0x9e3779b97f4a7c15ull * (r + 1));
    for (std::uint64_t iter = 0; iter < opts.iterations; ++iter) {
      // Role 0 has reset memory before releasing this barrier.
      start.arrive(start_sense);
      std::uint64_t rng = rng_base ^ (iter * 0xbf58476d1ce4e5b9ull);
      for (std::uint64_t k = xorshift64(rng) % (opts.max_skew + 1u); k != 0;
           --k) {
        cpu_relax();
      }
      RoleSlot& slot = slots[r];
      slot.regs.fill(0);
      slot.stuck = !run_role(code[r], slot.regs.data(), opts.step_budget);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      end.arrive(end_sense);
      if (r == 0) {
        // Role 0 doubles as the collector/reset thread: between the end
        // barrier and the next start barrier it is the only one running.
        std::atomic_thread_fence(std::memory_order_seq_cst);
        bool any_stuck = false;
        for (const RoleSlot& s : slots) any_stuck |= s.stuck;
        if (any_stuck) {
          // A timed-out iteration proves nothing about terminal states;
          // count it rather than let a heuristic poison the observed set.
          ++wedged;
        } else {
          std::string obs = schema.format(
              [&](std::size_t c, unsigned reg) {
                return slots[c].regs[reg];
              },
              [&](sim::Addr a) {
                return cell_for(a)->v.load(std::memory_order_relaxed);
              },
              [&](std::size_t c) { return slots[c].stuck; });
          ++observed[obs];
        }
        reset_memory();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(roles);
  for (std::size_t r = 0; r < roles; ++r) {
    threads.emplace_back(role_main, r);
  }
  for (std::thread& t : threads) t.join();

  result.wedged_iterations = wedged;
  return result;
}

}  // namespace lbmf::xval
