#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf::ws {

// Explicit instantiations over every shipped fence policy: catches template
// errors at library-build time and shares code across client TUs.
template class Scheduler<SymmetricFence>;
template class Scheduler<AsymmetricSignalFence>;
template class Scheduler<AsymmetricMembarrierFence>;
template class Scheduler<UnsafeNoFence>;
template class Scheduler<adapt::AdaptiveFence>;

template class Scheduler<SymmetricFence, ChaseLevDeque>;
template class Scheduler<AsymmetricSignalFence, ChaseLevDeque>;

template class ChaseLevDeque<SymmetricFence>;
template class ChaseLevDeque<AsymmetricSignalFence>;
template class ChaseLevDeque<AsymmetricMembarrierFence>;

template class TheDeque<SymmetricFence>;
template class TheDeque<AsymmetricSignalFence>;
template class TheDeque<AsymmetricMembarrierFence>;
template class TheDeque<UnsafeNoFence>;
template class TheDeque<adapt::AdaptiveFence>;

}  // namespace lbmf::ws
