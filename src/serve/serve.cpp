#include "lbmf/serve/serve.hpp"

#include "lbmf/adapt/adaptive_fence.hpp"

namespace lbmf::serve {

// Explicit instantiations over the shipped fence policies (including the
// adaptive one — the serving tier is where per-shard live regime switching
// is exercised). FlowTable<AdaptiveFence> is instantiated here rather than
// in flowtable.cpp so lbmf::flowtable keeps not depending on lbmf::adapt.
template class Shard<SymmetricFence>;
template class Shard<AsymmetricSignalFence>;
template class Shard<AsymmetricMembarrierFence>;
template class Shard<adapt::AdaptiveFence>;

template class Server<SymmetricFence>;
template class Server<AsymmetricSignalFence>;
template class Server<AsymmetricMembarrierFence>;
template class Server<adapt::AdaptiveFence>;

}  // namespace lbmf::serve
