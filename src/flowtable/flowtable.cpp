#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/flowtable/pipeline.hpp"

namespace lbmf::flowtable {

// Explicit instantiations over the shipped fence policies.
template class FlowTable<SymmetricFence>;
template class FlowTable<AsymmetricSignalFence>;
template class FlowTable<AsymmetricMembarrierFence>;

template PipelineResult run_pipeline<SymmetricFence>(double, std::size_t,
                                                     std::uint64_t,
                                                     std::uint32_t,
                                                     std::uint64_t,
                                                     std::size_t, Growth);
template PipelineResult run_pipeline<AsymmetricSignalFence>(
    double, std::size_t, std::uint64_t, std::uint32_t, std::uint64_t,
    std::size_t, Growth);

}  // namespace lbmf::flowtable
