#include "lbmf/adapt/policy_table.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "lbmf/util/check.hpp"

namespace lbmf::adapt {

const char* to_string(PolicyMode m) noexcept {
  switch (m) {
    case PolicyMode::kSymmetric:
      return "symmetric";
    case PolicyMode::kAsymmetric:
      return "asymmetric";
    case PolicyMode::kDoubleLmfence:
      return "double-lmfence";
  }
  return "?";
}

std::optional<PolicyMode> mode_from_string(std::string_view s) noexcept {
  if (s == "symmetric") return PolicyMode::kSymmetric;
  if (s == "asymmetric") return PolicyMode::kAsymmetric;
  if (s == "double-lmfence") return PolicyMode::kDoubleLmfence;
  return std::nullopt;
}

PolicyMode mode_from_optimum(std::string_view optimum, std::size_t victim_site,
                             std::size_t thief_site) {
  // Split "{a, b, c, d}" into per-site kind spellings.
  std::vector<std::string_view> kinds;
  std::size_t begin = optimum.find('{');
  const std::size_t close = optimum.rfind('}');
  if (begin == std::string_view::npos || close == std::string_view::npos ||
      close <= begin) {
    return PolicyMode::kSymmetric;  // unparseable: the always-safe regime
  }
  begin += 1;
  while (begin < close) {
    std::size_t end = optimum.find(',', begin);
    if (end == std::string_view::npos || end > close) end = close;
    std::string_view k = optimum.substr(begin, end - begin);
    while (!k.empty() && k.front() == ' ') k.remove_prefix(1);
    while (!k.empty() && k.back() == ' ') k.remove_suffix(1);
    kinds.push_back(k);
    begin = end + 1;
  }
  const auto lmfence_at = [&](std::size_t i) {
    return i < kinds.size() && kinds[i] == "l-mfence";
  };
  if (lmfence_at(victim_site) && lmfence_at(thief_site)) {
    return PolicyMode::kDoubleLmfence;
  }
  if (lmfence_at(victim_site)) return PolicyMode::kAsymmetric;
  return PolicyMode::kSymmetric;
}

PolicyTable::PolicyTable(std::vector<double> ratios,
                         std::vector<double> roundtrips,
                         std::vector<PolicyMode> modes)
    : ratios_(std::move(ratios)), roundtrips_(std::move(roundtrips)),
      modes_(std::move(modes)) {
  LBMF_CHECK_MSG(!ratios_.empty() && !roundtrips_.empty(),
                 "PolicyTable axes must be non-empty");
  LBMF_CHECK_MSG(modes_.size() == ratios_.size() * roundtrips_.size(),
                 "PolicyTable modes must cover the full grid");
  for (std::size_t i = 1; i < ratios_.size(); ++i) {
    LBMF_CHECK_MSG(ratios_[i - 1] < ratios_[i],
                   "PolicyTable ratio axis must ascend");
  }
  for (std::size_t i = 1; i < roundtrips_.size(); ++i) {
    LBMF_CHECK_MSG(roundtrips_[i - 1] < roundtrips_[i],
                   "PolicyTable roundtrip axis must ascend");
  }
}

namespace {

/// Index of the axis value nearest to `v` in log10 space (both the freq
/// and the round-trip axes are decade-ish scales; clamps outside the
/// range). Non-positive inputs clamp to the first entry.
std::size_t nearest_log(const std::vector<double>& axis, double v) {
  if (!(v > 0.0)) return 0;
  const double lv = std::log10(v);
  std::size_t best = 0;
  double best_d = std::fabs(std::log10(axis[0]) - lv);
  for (std::size_t i = 1; i < axis.size(); ++i) {
    const double d = std::fabs(std::log10(axis[i]) - lv);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace

PolicyMode PolicyTable::lookup(double freq_ratio,
                               double roundtrip_cycles) const noexcept {
  const std::size_t r = nearest_log(ratios_, freq_ratio);
  const std::size_t t = nearest_log(roundtrips_, roundtrip_cycles);
  return modes_[t * ratios_.size() + r];
}

PolicyMode PolicyTable::lookup(double freq_ratio, double roundtrip_cycles,
                               std::string_view backend) const noexcept {
  const std::size_t r = nearest_log(ratios_, freq_ratio);
  const std::size_t t = nearest_log(roundtrips_, roundtrip_cycles);
  const std::size_t cell = t * ratios_.size() + r;
  if (!backend.empty()) {
    for (const BackendPlane& p : planes_) {
      if (p.backend == backend) return p.modes[cell];
    }
  }
  return modes_[cell];
}

void PolicyTable::add_plane(BackendPlane plane) {
  LBMF_CHECK_MSG(plane.modes.size() == modes_.size(),
                 "BackendPlane must cover the full base grid");
  for (BackendPlane& p : planes_) {
    if (p.backend == plane.backend) {
      p = std::move(plane);
      return;
    }
  }
  planes_.push_back(std::move(plane));
}

PolicyTable PolicyTable::builtin_default() {
  constexpr PolicyMode S = PolicyMode::kSymmetric;
  constexpr PolicyMode A = PolicyMode::kAsymmetric;
  constexpr PolicyMode D = PolicyMode::kDoubleLmfence;
  // Rows 10..1500 are the shipped E17 sweep of the THE-deque litmus
  // (BENCH_sweep.json) collapsed via mode_from_optimum; rows 5000/15000
  // extrapolate to signal-prototype territory with the same arithmetic the
  // sweep priced sites with: the asymmetric mix wins once
  // ratio · mfence_cycles(100) exceeds the serialization round trip.
  PolicyTable t(
      /*ratios=*/{1, 10, 100, 1'000, 10'000, 100'000},
      /*roundtrips=*/{10, 50, 150, 500, 1'500, 5'000, 15'000},
      {
          D, A, A, A, A, A,  // rt 10
          A, A, A, A, A, A,  // rt 50
          S, A, A, A, A, A,  // rt 150
          S, A, A, A, A, A,  // rt 500
          S, S, A, A, A, A,  // rt 1500
          S, S, A, A, A, A,  // rt 5000
          S, S, S, A, A, A,  // rt 15000 (signal prototype + primary penalty)
      });
  // Signal plane: signals only drain the registered primary, so roles are
  // fixed and double-l-mfence is unrealizable — clamp those cells to the
  // asymmetric mix, matching what AdaptiveFence::realize would do anyway.
  std::vector<PolicyMode> signal_modes = t.modes();
  for (PolicyMode& m : signal_modes) {
    if (m == D) m = A;
  }
  t.add_plane({"signal", std::move(signal_modes)});
  // Role-inverting planes (membarrier-pair, sim-lest): in the
  // symmetric-traffic column (ratio ≈ 1) each side's announce is on the
  // hot path, so per announce the comparison is light fence + drain
  // (≈ lest_victim 3 + round trip) against mfence + remote serialization
  // (≈ 100 + 200 in the E18 window model). Double-l-mfence wins through
  // the LE/ST-scale rows (rt ≤ 150) and loses once the drain dominates
  // (rt ≥ 500), where the base grid's symmetric verdict stands.
  std::vector<PolicyMode> inverting_modes = t.modes();
  const std::size_t ncols = t.ratios().size();
  for (std::size_t row = 0; row < 3; ++row) {  // rt rows 10, 50, 150
    inverting_modes[row * ncols] = D;
  }
  t.add_plane({"membarrier-pair", inverting_modes});
  t.add_plane({"sim-lest", std::move(inverting_modes)});
  return t;
}

namespace {

/// Minimal scanners for the two fixed JSON shapes this table round-trips
/// through. They tolerate whitespace but not reordered nesting: keys are
/// located by their quoted spelling at any depth.

std::string quoted(std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 2);
  needle += '"';
  needle += key;
  needle += '"';
  return needle;
}

std::size_t find_key(std::string_view j, std::string_view key) {
  return j.find(quoted(key));
}

/// Parse `"key": [n, n, ...]` following `from`; empty on failure.
std::vector<double> parse_number_array(std::string_view j,
                                       std::string_view key) {
  std::vector<double> out;
  std::size_t p = find_key(j, key);
  if (p == std::string_view::npos) return out;
  p = j.find('[', p);
  if (p == std::string_view::npos) return out;
  const std::size_t end = j.find(']', p);
  if (end == std::string_view::npos) return out;
  ++p;
  while (p < end) {
    char* stop = nullptr;
    const double v = std::strtod(j.data() + p, &stop);
    if (stop == j.data() + p) break;
    out.push_back(v);
    p = static_cast<std::size_t>(stop - j.data());
    const std::size_t comma = j.find(',', p);
    if (comma == std::string_view::npos || comma > end) break;
    p = comma + 1;
  }
  return out;
}

/// Parse `"key": ["s", "s", ...]`; empty on failure.
std::vector<std::string> parse_string_array(std::string_view j,
                                            std::string_view key) {
  std::vector<std::string> out;
  std::size_t p = find_key(j, key);
  if (p == std::string_view::npos) return out;
  p = j.find('[', p);
  if (p == std::string_view::npos) return out;
  const std::size_t end = j.find(']', p);
  if (end == std::string_view::npos) return out;
  while (true) {
    const std::size_t open = j.find('"', p + 1);
    if (open == std::string_view::npos || open > end) break;
    const std::size_t close = j.find('"', open + 1);
    if (close == std::string_view::npos || close > end) break;
    out.emplace_back(j.substr(open + 1, close - open - 1));
    p = close;
  }
  return out;
}

/// Value of `"key": <number>` scanning forward from `from`; NaN on failure.
double parse_number_after(std::string_view j, std::size_t from,
                          std::string_view key) {
  std::size_t p = j.find(quoted(key), from);
  if (p == std::string_view::npos) return std::nan("");
  p = j.find(':', p);
  if (p == std::string_view::npos) return std::nan("");
  char* stop = nullptr;
  const double v = std::strtod(j.data() + p + 1, &stop);
  return stop == j.data() + p + 1 ? std::nan("") : v;
}

/// Value of `"key": "<string>"` scanning forward from `from`.
std::string parse_string_after(std::string_view j, std::size_t from,
                               std::string_view key) {
  std::size_t p = j.find(quoted(key), from);
  if (p == std::string_view::npos) return {};
  p = j.find(':', p);
  if (p == std::string_view::npos) return {};
  const std::size_t open = j.find('"', p);
  if (open == std::string_view::npos) return {};
  const std::size_t close = j.find('"', open + 1);
  if (close == std::string_view::npos) return {};
  return std::string(j.substr(open + 1, close - open - 1));
}

/// Walk the point objects in j[from, to) and collapse each "optimum" into
/// the grid cell named by its "freq"/"roundtrip" values; each point carries
/// its own axis values, so out-of-order points still land in the right
/// cell. Returns false if any grid cell was never reported.
bool fill_modes_from_points(std::string_view j, std::size_t from,
                            std::size_t to, const std::vector<double>& ratios,
                            const std::vector<double>& roundtrips,
                            std::vector<PolicyMode>& modes) {
  std::vector<bool> seen(modes.size(), false);
  std::size_t p = from;
  while (true) {
    const std::size_t obj = j.find('{', p);
    if (obj == std::string_view::npos || obj > to) break;
    const std::size_t obj_end = j.find('}', obj);
    if (obj_end == std::string_view::npos) break;
    const double freq = parse_number_after(j, obj, "freq");
    const double rt = parse_number_after(j, obj, "roundtrip");
    const std::string opt = parse_string_after(j, obj, "optimum");
    std::size_t ri = ratios.size(), ti = roundtrips.size();
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      if (ratios[i] == freq) ri = i;
    }
    for (std::size_t i = 0; i < roundtrips.size(); ++i) {
      if (roundtrips[i] == rt) ti = i;
    }
    if (ri < ratios.size() && ti < roundtrips.size() && !opt.empty()) {
      const std::size_t cell = ti * ratios.size() + ri;
      modes[cell] = mode_from_optimum(opt);
      seen[cell] = true;
    }
    p = obj_end + 1;
  }
  for (bool s : seen) {
    if (!s) return false;  // a grid cell was never reported
  }
  return true;
}

std::optional<PolicyTable> from_sweep_json(std::string_view j) {
  const std::vector<double> ratios = parse_number_array(j, "victim_freqs");
  const std::vector<double> roundtrips = parse_number_array(j, "roundtrips");
  if (ratios.empty() || roundtrips.empty()) return std::nullopt;
  std::vector<PolicyMode> modes(ratios.size() * roundtrips.size(),
                                PolicyMode::kSymmetric);
  std::size_t p = find_key(j, "points");
  if (p == std::string_view::npos) return std::nullopt;
  p = j.find('[', p);
  const std::size_t points_end = j.find(']', p);
  if (p == std::string_view::npos || points_end == std::string_view::npos) {
    return std::nullopt;
  }
  if (!fill_modes_from_points(j, p, points_end, ratios, roundtrips, modes)) {
    return std::nullopt;
  }
  PolicyTable table(ratios, roundtrips, std::move(modes));
  // Optional backend dimension: a "backend_planes" section appended after
  // the base points, one {"backend": "...", "points": [...]} entry per
  // backend. A malformed plane is skipped rather than failing the load —
  // the base grid is already sound on its own.
  const std::size_t planes_at = j.find(quoted("backend_planes"), points_end);
  if (planes_at != std::string_view::npos) {
    std::size_t bkey = j.find(quoted("backend"), planes_at + 1);
    while (bkey != std::string_view::npos) {
      const std::size_t next =
          j.find(quoted("backend"), bkey + quoted("backend").size());
      const std::string name = parse_string_after(j, bkey, "backend");
      const std::size_t pts = j.find(quoted("points"), bkey);
      if (!name.empty() && pts != std::string_view::npos && pts < next) {
        const std::size_t popen = j.find('[', pts);
        const std::size_t pend = popen == std::string_view::npos
                                     ? std::string_view::npos
                                     : j.find(']', popen);
        if (pend != std::string_view::npos) {
          std::vector<PolicyMode> pmodes(table.modes().size(),
                                         PolicyMode::kSymmetric);
          if (fill_modes_from_points(j, popen, pend, ratios, roundtrips,
                                     pmodes)) {
            table.add_plane({name, std::move(pmodes)});
          }
        }
      }
      bkey = next;
    }
  }
  return table;
}

std::optional<PolicyTable> from_compact_json(std::string_view j) {
  const std::vector<double> ratios = parse_number_array(j, "ratios");
  const std::vector<double> roundtrips = parse_number_array(j, "roundtrips");
  const std::vector<std::string> mode_names = parse_string_array(j, "modes");
  if (ratios.empty() || roundtrips.empty() ||
      mode_names.size() != ratios.size() * roundtrips.size()) {
    return std::nullopt;
  }
  std::vector<PolicyMode> modes;
  modes.reserve(mode_names.size());
  for (const std::string& n : mode_names) {
    const std::optional<PolicyMode> m = mode_from_string(n);
    if (!m) return std::nullopt;
    modes.push_back(*m);
  }
  PolicyTable table(ratios, roundtrips, std::move(modes));
  // Optional planes: a "backends" name list plus one "plane:<name>" mode
  // array per entry. A malformed plane is skipped, not fatal.
  for (const std::string& name : parse_string_array(j, "backends")) {
    const std::vector<std::string> plane_names =
        parse_string_array(j, std::string("plane:") + name);
    if (plane_names.size() != table.modes().size()) continue;
    std::vector<PolicyMode> pmodes;
    pmodes.reserve(plane_names.size());
    bool ok = true;
    for (const std::string& n : plane_names) {
      const std::optional<PolicyMode> m = mode_from_string(n);
      if (!m) {
        ok = false;
        break;
      }
      pmodes.push_back(*m);
    }
    if (ok) table.add_plane({name, std::move(pmodes)});
  }
  return table;
}

void append_num(std::string& s, double v) {
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  s += buf;
}

}  // namespace

std::optional<PolicyTable> PolicyTable::from_json(std::string_view json) {
  if (json.find("\"bench\":\"sweep\"") != std::string_view::npos ||
      json.find("\"bench\": \"sweep\"") != std::string_view::npos) {
    return from_sweep_json(json);
  }
  return from_compact_json(json);
}

std::string PolicyTable::to_json() const {
  std::string s = "{\"policy_table\":1,\"ratios\":[";
  for (std::size_t i = 0; i < ratios_.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, ratios_[i]);
  }
  s += "],\"roundtrips\":[";
  for (std::size_t i = 0; i < roundtrips_.size(); ++i) {
    if (i > 0) s += ',';
    append_num(s, roundtrips_[i]);
  }
  s += "],\"modes\":[";
  for (std::size_t i = 0; i < modes_.size(); ++i) {
    if (i > 0) s += ',';
    s += '"';
    s += to_string(modes_[i]);
    s += '"';
  }
  s += ']';
  if (!planes_.empty()) {
    s += ",\"backends\":[";
    for (std::size_t i = 0; i < planes_.size(); ++i) {
      if (i > 0) s += ',';
      s += '"';
      s += planes_[i].backend;
      s += '"';
    }
    s += ']';
    for (const BackendPlane& p : planes_) {
      s += ",\"plane:";
      s += p.backend;
      s += "\":[";
      for (std::size_t i = 0; i < p.modes.size(); ++i) {
        if (i > 0) s += ',';
        s += '"';
        s += to_string(p.modes[i]);
        s += '"';
      }
      s += ']';
    }
  }
  s += '}';
  return s;
}

}  // namespace lbmf::adapt
