#include "lbmf/adapt/adaptive_fence.hpp"

#include <utility>
#include <vector>

#include "lbmf/util/check.hpp"

namespace lbmf::adapt {
namespace {

/// Hot-path dispatch target for primary_fence(): set at registration time on
/// the registering thread, so the primary never chases a handle to find its
/// own mode cell.
thread_local AdaptiveFence::Slot* tls_mode_slot = nullptr;

/// Set by secondary_fence(h) when it went light (read kDoubleLmfence),
/// consumed by the same thread's serialize(h): if the trip it performs is
/// not itself a full barrier on the caller (the mode switched away from
/// double in between, or the backend fell back to the signal path), a local
/// full fence restores the secondary's serialization point. See the
/// switching proof sketch in the header.
thread_local bool tls_weak_announce = false;

std::atomic<backend::BackendId> g_default_backend{backend::BackendId::kSignal};

AdaptiveFence::Slot& pool_slot(std::size_t i) {
  // Slot's first member carries the cache-line alignment; function-local
  // static sidesteps cross-TU initialization order.
  static AdaptiveFence::Slot pool[AdaptiveFence::kMaxPrimaries];
  return pool[i];
}

bool is_asymmetric(PolicyMode m) noexcept {
  return m != PolicyMode::kSymmetric;
}

/// Whether backend `b` can remotely drain a primary registered as `sig`.
/// The signal path needs a valid registry slot; the membarrier broadcast
/// needs kernel support; sim-lest drains through whichever of the two it
/// has.
bool can_serialize(backend::BackendId b,
                   const SerializerRegistry::Handle& sig) noexcept {
  switch (b) {
    case backend::BackendId::kSignal:
      return sig.valid();
    case backend::BackendId::kMembarrierPair:
      return membarrier::available();
    case backend::BackendId::kSimLest:
      return membarrier::available() || sig.valid();
  }
  return false;
}

/// Clamp a booked regime to what backend `b` can actually realize:
/// kDoubleLmfence needs role inversion, kAsymmetric needs a working remote
/// drain, and anything unservable degrades toward kSymmetric (always safe —
/// the primary fences for itself).
PolicyMode realize(PolicyMode req, backend::BackendId b,
                   const SerializerRegistry::Handle& sig) noexcept {
  if (req == PolicyMode::kDoubleLmfence &&
      !backend::serialization_backend(b).caps().inverts_roles) {
    req = PolicyMode::kAsymmetric;
  }
  if (is_asymmetric(req) && !can_serialize(b, sig)) {
    req = PolicyMode::kSymmetric;
  }
  return req;
}

}  // namespace

AdaptiveFence::Handle AdaptiveFence::register_primary() {
  LBMF_CHECK_MSG(tls_mode_slot == nullptr,
                 "one adaptive registration per thread");
  for (std::size_t i = 0; i < kMaxPrimaries; ++i) {
    Slot& slot = pool_slot(i);
    bool expected = false;
    if (!slot.used.load(std::memory_order_relaxed) &&
        slot.used.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      // Signal-path registration may fail (registry full); the slot is still
      // usable — quiescent_point() clamps any asymmetric request to what the
      // bound backend can serve without it.
      slot.sig = SerializerRegistry::instance().register_self();
      const backend::BackendId b =
          g_default_backend.load(std::memory_order_relaxed);
      slot.mode.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
      slot.requested.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
      slot.booked.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
      slot.bound_backend.store(b, std::memory_order_relaxed);
      slot.requested_backend.store(b, std::memory_order_relaxed);
      // Counters are per registration, so a reused pool slot does not leak
      // a previous tenant's transitions into this one's accounting.
      slot.switches.store(0, std::memory_order_relaxed);
      slot.booked_switches.store(0, std::memory_order_relaxed);
      slot.degraded.store(0, std::memory_order_relaxed);
      tls_mode_slot = &slot;
      // Publication edge: a secondary that acquires `live == true` sees the
      // signal handle, the backend binding and the symmetric starting mode.
      slot.live.store(true, std::memory_order_release);
      return Handle(&slot);
    }
  }
  return Handle{};
}

void AdaptiveFence::unregister_primary(Handle& h) {
  if (!h.valid()) return;
  Slot& slot = *h.slot_;
  LBMF_CHECK_MSG(tls_mode_slot == &slot,
                 "unregister_primary must run on the registered thread");
  tls_mode_slot = nullptr;
  slot.live.store(false, std::memory_order_release);
  SerializerRegistry::instance().unregister_self(slot.sig);
  // Next tenant of the slot starts over in the self-sufficient regime.
  slot.mode.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
  slot.requested.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
  slot.booked.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
  slot.used.store(false, std::memory_order_release);
  h.slot_ = nullptr;
}

void AdaptiveFence::primary_fence() noexcept {
  Slot* slot = tls_mode_slot;
  // The mode cell is written only by this thread, so a relaxed load reads
  // the current regime. Unregistered threads get the safe fence. Both
  // asymmetric regimes run light here; in kDoubleLmfence the primary's
  // serialization point is the serialize_peers(h) broadcast that protocol
  // code issues before its conflict-deciding read.
  if (slot == nullptr ||
      slot->mode.load(std::memory_order_relaxed) == PolicyMode::kSymmetric) {
    store_load_fence();
  } else {
    compiler_fence();
  }
}

void AdaptiveFence::secondary_fence(const Handle& h) noexcept {
  Slot* slot = h.slot_;
  if (slot != nullptr && slot->live.load(std::memory_order_acquire) &&
      slot->mode.load(std::memory_order_seq_cst) ==
          PolicyMode::kDoubleLmfence) {
    // Light path: the serialize(h) that protocol code issues next supplies
    // the StoreLoad (membarrier is a full barrier on the caller). The note
    // makes serialize(h) cover the race where the mode switches away from
    // double between these two reads.
    compiler_fence();
    tls_weak_announce = true;
  } else {
    store_load_fence();
  }
}

bool AdaptiveFence::serialize(const Handle& h) {
  const bool weak = std::exchange(tls_weak_announce, false);
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    if (weak) full_fence();
    return false;
  }
  // The caller's secondary fence (or the weak-announce cover below) ordered
  // its announce before this load; see the switching proof sketch in the
  // header for why acting on a stale mode here is safe.
  const PolicyMode m = slot->mode.load(std::memory_order_seq_cst);
  if (!is_asymmetric(m)) {
    // The primary fences for itself. A weak announce can still reach this
    // point by racing a double→symmetric switch: restore our StoreLoad.
    if (weak) full_fence();
    return true;
  }
  if (weak && m != PolicyMode::kDoubleLmfence) {
    // Raced a double→asymmetric switch: the signal trip below drains the
    // *primary*, not us.
    full_fence();
  }
  auto& be = backend::serialization_backend(
      slot->bound_backend.load(std::memory_order_relaxed));
  if (be.serialize(slot->sig)) return true;
  // In double mode the backend trip doubled as our own barrier; if it could
  // not run (primary unregistering under us, capability lost), cover
  // locally before the caller acts on its reads.
  if (weak && m == PolicyMode::kDoubleLmfence) full_fence();
  return false;
}

bool AdaptiveFence::serialize_peers(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    return false;
  }
  // Only the registered primary calls this between its own protocol
  // operations, and only it writes the mode cell — relaxed is enough.
  if (slot->mode.load(std::memory_order_relaxed) !=
      PolicyMode::kDoubleLmfence) {
    return false;
  }
  return backend::serialization_backend(
             slot->bound_backend.load(std::memory_order_relaxed))
      .serialize_peers();
}

std::size_t AdaptiveFence::serialize_many(std::span<const Handle> hs) {
  std::size_t serialized = 0;
  // Bucket the asymmetric primaries per bound backend: each bucket pays one
  // overlapped wave (signals) or one broadcast (membarrier-backed).
  std::vector<SerializerRegistry::Handle> waves[backend::kBackendCount];
  for (const Handle& h : hs) {
    Slot* slot = h.slot_;
    if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
      continue;
    }
    if (!is_asymmetric(slot->mode.load(std::memory_order_seq_cst))) {
      ++serialized;  // symmetric primaries need no remote trip
      continue;
    }
    const auto b = slot->bound_backend.load(std::memory_order_relaxed);
    waves[static_cast<std::size_t>(b)].push_back(slot->sig);
  }
  for (std::size_t i = 0; i < backend::kBackendCount; ++i) {
    if (waves[i].empty()) continue;
    serialized +=
        backend::serialization_backend(static_cast<backend::BackendId>(i))
            .serialize_many(waves[i]);
  }
  return serialized;
}

bool AdaptiveFence::request_mode(const Handle& h, PolicyMode m) noexcept {
  if (!h.valid()) return false;
  h.slot_->requested.store(m, std::memory_order_release);
  return true;
}

bool AdaptiveFence::request_backend(const Handle& h,
                                    backend::BackendId b) noexcept {
  if (!h.valid()) return false;
  h.slot_->requested_backend.store(b, std::memory_order_release);
  return true;
}

bool AdaptiveFence::quiescent_point(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr) return false;
  LBMF_CHECK_MSG(tls_mode_slot == slot,
                 "quiescent_point must run on the registered primary");
  const PolicyMode req = slot->requested.load(std::memory_order_acquire);
  const backend::BackendId reqb =
      slot->requested_backend.load(std::memory_order_acquire);
  const PolicyMode cur = slot->mode.load(std::memory_order_relaxed);

  // Book the controller's request as asked, then clamp to what the backend
  // can realize. Booked vs realized is the misbooking fix: switch_count()
  // (and through it SchedulerStats::policy_switches / BENCH_adapt.json)
  // counts only transitions of the regime actually in force.
  if (req != slot->booked.load(std::memory_order_relaxed)) {
    slot->booked.store(req, std::memory_order_relaxed);
    slot->booked_switches.fetch_add(1, std::memory_order_relaxed);
  }
  const PolicyMode realized = realize(req, reqb, slot->sig);
  if (realized != req) {
    slot->degraded.fetch_add(1, std::memory_order_relaxed);
    static std::atomic<bool> warned{false};
    detail::warn_once(warned,
                      "adaptive quiescent point: bound backend cannot realize "
                      "the booked regime; degrading (booked vs realized modes "
                      "diverge)");
  }
  // Publish the backend binding before the mode RMW: a secondary that
  // observes the new mode (seq_cst load after the RMW) also finds the
  // backend it should drain through. A stale binding read under the *old*
  // mode is safe — realize() vetted the pairing in force at every switch,
  // and all backends drain the same registered primary.
  slot->bound_backend.store(reqb, std::memory_order_relaxed);
  if (realized == cur) return false;
  // The locked RMW is the Def. 2 serialization point between the regimes
  // (full proof sketch in the header): it drains every old-regime store
  // before the new mode becomes visible, and orders the publication before
  // any new-regime announce.
  slot->mode.exchange(realized, std::memory_order_seq_cst);
  slot->switches.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PolicyMode AdaptiveFence::realized_mode(const Handle& h) noexcept {
  return h.valid() ? h.slot_->mode.load(std::memory_order_acquire)
                   : PolicyMode::kSymmetric;
}

PolicyMode AdaptiveFence::current_mode(const Handle& h) noexcept {
  return realized_mode(h);
}

PolicyMode AdaptiveFence::booked_mode(const Handle& h) noexcept {
  return h.valid() ? h.slot_->booked.load(std::memory_order_relaxed)
                   : PolicyMode::kSymmetric;
}

PolicyMode AdaptiveFence::requested_mode(const Handle& h) noexcept {
  return h.valid() ? h.slot_->requested.load(std::memory_order_acquire)
                   : PolicyMode::kSymmetric;
}

std::uint64_t AdaptiveFence::switch_count(const Handle& h) noexcept {
  return h.valid() ? h.slot_->switches.load(std::memory_order_relaxed) : 0;
}

std::uint64_t AdaptiveFence::booked_switch_count(const Handle& h) noexcept {
  return h.valid() ? h.slot_->booked_switches.load(std::memory_order_relaxed)
                   : 0;
}

std::uint64_t AdaptiveFence::degraded_count(const Handle& h) noexcept {
  return h.valid() ? h.slot_->degraded.load(std::memory_order_relaxed) : 0;
}

backend::BackendId AdaptiveFence::current_backend(const Handle& h) noexcept {
  return h.valid() ? h.slot_->bound_backend.load(std::memory_order_relaxed)
                   : backend::BackendId::kSignal;
}

void AdaptiveFence::set_backend(backend::BackendId b) noexcept {
  g_default_backend.store(b, std::memory_order_relaxed);
}

backend::BackendId AdaptiveFence::backend_id() noexcept {
  return g_default_backend.load(std::memory_order_relaxed);
}

}  // namespace lbmf::adapt
