#include "lbmf/adapt/adaptive_fence.hpp"

#include <vector>

#include "lbmf/util/check.hpp"

namespace lbmf::adapt {
namespace {

/// Hot-path dispatch target for primary_fence(): set at registration time on
/// the registering thread, so the primary never chases a handle to find its
/// own mode cell.
thread_local AdaptiveFence::Slot* tls_mode_slot = nullptr;

std::atomic<AsymmetricBackend> g_backend{AsymmetricBackend::kSignal};

AdaptiveFence::Slot& pool_slot(std::size_t i) {
  // Slot's first member carries the cache-line alignment; function-local
  // static sidesteps cross-TU initialization order.
  static AdaptiveFence::Slot pool[AdaptiveFence::kMaxPrimaries];
  return pool[i];
}

bool membarrier_backend() noexcept {
  return g_backend.load(std::memory_order_relaxed) ==
             AsymmetricBackend::kMembarrier &&
         membarrier::available();
}

bool is_asymmetric(PolicyMode m) noexcept {
  return m != PolicyMode::kSymmetric;
}

}  // namespace

AdaptiveFence::Handle AdaptiveFence::register_primary() {
  LBMF_CHECK_MSG(tls_mode_slot == nullptr,
                 "one adaptive registration per thread");
  for (std::size_t i = 0; i < kMaxPrimaries; ++i) {
    Slot& slot = pool_slot(i);
    bool expected = false;
    if (!slot.used.load(std::memory_order_relaxed) &&
        slot.used.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
      // Signal-path registration may fail (registry full); the slot is still
      // usable — quiescent_point() refuses to leave kSymmetric while no
      // remote-serialization path exists.
      slot.sig = SerializerRegistry::instance().register_self();
      slot.mode.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
      slot.requested.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
      tls_mode_slot = &slot;
      // Publication edge: a secondary that acquires `live == true` sees the
      // signal handle and the symmetric starting mode.
      slot.live.store(true, std::memory_order_release);
      return Handle(&slot);
    }
  }
  return Handle{};
}

void AdaptiveFence::unregister_primary(Handle& h) {
  if (!h.valid()) return;
  Slot& slot = *h.slot_;
  LBMF_CHECK_MSG(tls_mode_slot == &slot,
                 "unregister_primary must run on the registered thread");
  tls_mode_slot = nullptr;
  slot.live.store(false, std::memory_order_release);
  SerializerRegistry::instance().unregister_self(slot.sig);
  // Next tenant of the slot starts over in the self-sufficient regime.
  slot.mode.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
  slot.requested.store(PolicyMode::kSymmetric, std::memory_order_relaxed);
  slot.used.store(false, std::memory_order_release);
  h.slot_ = nullptr;
}

void AdaptiveFence::primary_fence() noexcept {
  Slot* slot = tls_mode_slot;
  // The mode cell is written only by this thread, so a relaxed load reads
  // the current regime. Unregistered threads get the safe fence.
  if (slot == nullptr ||
      slot->mode.load(std::memory_order_relaxed) == PolicyMode::kSymmetric) {
    store_load_fence();
  } else {
    compiler_fence();
  }
}

bool AdaptiveFence::serialize(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
    return false;
  }
  // The caller's secondary_fence (mfence) ordered its announce before this
  // load; see the switching proof sketch in the header for why acting on a
  // stale mode here is safe.
  const PolicyMode m = slot->mode.load(std::memory_order_seq_cst);
  if (!is_asymmetric(m)) {
    return true;  // the primary fences for itself; nothing remote to do
  }
  if (membarrier_backend()) {
    membarrier::barrier();
    return true;
  }
  return SerializerRegistry::instance().serialize(slot->sig);
}

std::size_t AdaptiveFence::serialize_many(std::span<const Handle> hs) {
  std::size_t serialized = 0;
  std::vector<SerializerRegistry::Handle> wave;
  bool any_membarrier = false;
  for (const Handle& h : hs) {
    Slot* slot = h.slot_;
    if (slot == nullptr || !slot->live.load(std::memory_order_acquire)) {
      continue;
    }
    if (!is_asymmetric(slot->mode.load(std::memory_order_seq_cst))) {
      ++serialized;  // symmetric primaries need no remote trip
      continue;
    }
    if (membarrier_backend()) {
      any_membarrier = true;
      ++serialized;
    } else {
      wave.push_back(slot->sig);
    }
  }
  if (any_membarrier) {
    // One broadcast serializes every thread of the process — all the
    // asymmetric primaries in the span share it.
    membarrier::barrier();
  }
  if (!wave.empty()) {
    serialized += SerializerRegistry::instance().serialize_many(wave);
  }
  return serialized;
}

bool AdaptiveFence::request_mode(const Handle& h, PolicyMode m) noexcept {
  if (!h.valid()) return false;
  h.slot_->requested.store(m, std::memory_order_release);
  return true;
}

bool AdaptiveFence::quiescent_point(const Handle& h) {
  Slot* slot = h.slot_;
  if (slot == nullptr) return false;
  LBMF_CHECK_MSG(tls_mode_slot == slot,
                 "quiescent_point must run on the registered primary");
  const PolicyMode req = slot->requested.load(std::memory_order_acquire);
  const PolicyMode cur = slot->mode.load(std::memory_order_relaxed);
  if (req == cur) return false;
  if (is_asymmetric(req) && !slot->sig.valid() && !membarrier_backend()) {
    // No remote-serialization path: dropping the primary's fence would leave
    // secondaries with no way to force the drain. Stay symmetric.
    return false;
  }
  // The locked RMW is the Def. 2 serialization point between the regimes
  // (full proof sketch in the header): it drains every old-regime store
  // before the new mode becomes visible, and orders the publication before
  // any new-regime announce.
  slot->mode.exchange(req, std::memory_order_seq_cst);
  slot->switches.fetch_add(1, std::memory_order_relaxed);
  return true;
}

PolicyMode AdaptiveFence::current_mode(const Handle& h) noexcept {
  return h.valid() ? h.slot_->mode.load(std::memory_order_acquire)
                   : PolicyMode::kSymmetric;
}

PolicyMode AdaptiveFence::requested_mode(const Handle& h) noexcept {
  return h.valid() ? h.slot_->requested.load(std::memory_order_acquire)
                   : PolicyMode::kSymmetric;
}

std::uint64_t AdaptiveFence::switch_count(const Handle& h) noexcept {
  return h.valid() ? h.slot_->switches.load(std::memory_order_relaxed) : 0;
}

void AdaptiveFence::set_backend(AsymmetricBackend b) noexcept {
  g_backend.store(b, std::memory_order_relaxed);
}

AsymmetricBackend AdaptiveFence::backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

}  // namespace lbmf::adapt
