#include "lbmf/sim/visited.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "lbmf/util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define LBMF_VISITED_HAVE_MMAP 1
#endif

namespace lbmf::sim {

SpillSegment::SpillSegment(const std::vector<Fingerprint>& slots)
    : nslots_(slots.size()) {
  LBMF_CHECK(nslots_ != 0 && (nslots_ & (nslots_ - 1)) == 0);
  const std::size_t len = nslots_ * sizeof(Fingerprint);
#ifdef LBMF_VISITED_HAVE_MMAP
  // An unlinked temp file: the bytes live in the filesystem (and its page
  // cache), vanish with the last mapping, and never show up as a stray
  // artifact even if the process dies mid-run.
  const char* tmpdir = std::getenv("TMPDIR");
  std::string path = (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  path += "/lbmf-visited-XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd >= 0) {
    ::unlink(path.c_str());
    const char* p = reinterpret_cast<const char*>(slots.data());
    std::size_t off = 0;
    while (off < len) {
      const ::ssize_t n = ::write(fd, p + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    if (off == len) {
      void* m = ::mmap(nullptr, len, PROT_READ, MAP_SHARED, fd, 0);
      if (m != MAP_FAILED) mapped_ = m;
    }
    ::close(fd);
  }
#endif
  if (mapped_ == nullptr) ram_ = slots;  // fallback: stay resident
}

SpillSegment::~SpillSegment() {
#ifdef LBMF_VISITED_HAVE_MMAP
  if (mapped_ != nullptr) {
    ::munmap(mapped_, nslots_ * sizeof(Fingerprint));
  }
#endif
}

bool SpillSegment::contains(const Fingerprint& fp) const noexcept {
  const Fingerprint* slots = data();
  const std::size_t mask = nslots_ - 1;
  std::size_t i = static_cast<std::size_t>(fp.hi) & mask;
  while (true) {
    const Fingerprint& slot = slots[i];
    if (slot.lo == 0 && slot.hi == 0) return false;
    if (slot == fp) return true;
    i = (i + 1) & mask;
  }
}

VisitedSet::VisitedSet(bool exact, bool concurrent,
                       std::uint64_t budget_bytes)
    : exact_(exact), concurrent_(concurrent),
      shards_(concurrent ? kShards : 1) {
  if (budget_bytes != 0 && !exact) {
    shard_budget_ =
        std::max<std::uint64_t>(budget_bytes / shards_.size(),
                                kMinShardBudget);
  }
}

bool VisitedSet::insert(const Fingerprint& fp, const std::string& canonical) {
  Shard& s = shards_[shard_of(fp)];
  if (!concurrent_) return insert_into(s, fp, canonical);
  std::lock_guard<std::mutex> g(s.mu);
  return insert_into(s, fp, canonical);
}

void VisitedSet::preload(const std::vector<Fingerprint>& fps) {
  LBMF_CHECK_MSG(!exact_, "preload requires fingerprint mode");
  static const std::string kNoCanonical;
  for (const Fingerprint& fp : fps) insert(fp, kNoCanonical);
}

bool VisitedSet::insert_into(Shard& s, Fingerprint fp,
                             const std::string& canonical) {
  if (exact_) return s.exact.insert(canonical).second;
  // Normalize once so the live set and the frozen segments agree on the
  // {0,0}-is-empty convention.
  if (fp.lo == 0 && fp.hi == 0) fp.lo = 1;
  for (const auto& seg : s.segs) {
    if (seg->contains(fp)) return false;
  }
  if (!s.fps.insert(fp)) return false;
  if (shard_budget_ != 0 && s.fps.bytes() > shard_budget_) {
    s.segs.push_back(std::make_unique<SpillSegment>(s.fps.slots()));
    s.fps = FingerprintSet{};
  }
  return true;
}

std::uint64_t VisitedSet::bytes() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    if (exact_) {
      // Approximate unordered_set<string> footprint: key bytes + string
      // header + node and bucket overhead.
      for (const std::string& k : s.exact) {
        total += k.capacity() + sizeof(std::string) + 24;
      }
      total += s.exact.bucket_count() * sizeof(void*);
    } else {
      total += s.fps.bytes();
      for (const auto& seg : s.segs) {
        if (!seg->on_disk()) total += seg->bytes();
      }
    }
  }
  return total;
}

std::uint64_t VisitedSet::spill_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& seg : s.segs) {
      if (seg->on_disk()) total += seg->bytes();
    }
  }
  return total;
}

std::uint32_t VisitedSet::spill_segments() const {
  std::uint32_t n = 0;
  for (const Shard& s : shards_) {
    n += static_cast<std::uint32_t>(s.segs.size());
  }
  return n;
}

}  // namespace lbmf::sim
