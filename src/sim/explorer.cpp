#include "lbmf/sim/explorer.hpp"

#include <utility>

#include "lbmf/sim/trace.hpp"

namespace lbmf::sim {

Explorer::Explorer(Machine initial, Options opts)
    : initial_(std::move(initial)), opts_(std::move(opts)) {}

ExploreResult Explorer::run() {
  result_ = ExploreResult{};
  visited_.clear();
  trace_.clear();
  done_ = false;
  dfs(initial_);
  return result_;
}

void Explorer::dfs(const Machine& m) {
  if (done_) return;
  if (result_.states_explored >= opts_.max_states) {
    result_.hit_limit = true;
    done_ = true;
    return;
  }
  if (!visited_.insert(m.canonical_state()).second) return;
  ++result_.states_explored;

  bool any_transition = false;
  for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
    for (Action a : {Action::Execute, Action::Drain}) {
      if (!m.action_enabled(cpu, a)) continue;
      any_transition = true;
      Machine next = m;  // value-semantic snapshot
      const Choice choice{static_cast<std::uint8_t>(cpu), a};
      next.step(cpu, a);
      ++result_.transitions;
      trace_.push_back(choice);

      std::optional<std::string> violation;
      if (opts_.check_coherence) violation = next.check_coherence();
      if (!violation && opts_.check_mutual_exclusion &&
          next.cpus_in_cs() > 1) {
        violation = "mutual exclusion violated: " +
                    std::to_string(next.cpus_in_cs()) +
                    " CPUs in the critical section";
      }
      if (!violation && opts_.check) violation = opts_.check(next);

      if (violation) {
        if (!result_.violation) {
          result_.violation = violation;
          result_.violation_trace = trace_;
        }
        if (opts_.stop_at_violation) {
          done_ = true;
          trace_.pop_back();
          return;
        }
      } else {
        dfs(next);
      }
      trace_.pop_back();
      if (done_) return;
    }
  }

  if (!any_transition) {
    ++result_.terminal_states;
    if (opts_.observe) result_.outcomes.insert(opts_.observe(m));
  }
}

std::string annotate_schedule(Machine initial,
                              const std::vector<Choice>& schedule) {
  TraceRecorder rec;
  initial.set_trace(&rec);
  std::string out;
  for (const Choice& c : schedule) {
    if (!initial.action_enabled(c.cpu, c.action)) {
      out += "<<schedule step not enabled: " + to_string(c) + ">>\n";
      break;
    }
    initial.step(c.cpu, c.action);
  }
  out += rec.to_string();
  out += "final: " + std::to_string(initial.cpus_in_cs()) +
         " CPU(s) in critical section";
  if (const auto v = initial.check_coherence()) {
    out += "; coherence: " + *v;
  }
  out += '\n';
  return out;
}

ExploreResult explore_all(Machine machine, std::uint64_t max_states) {
  Explorer::Options opts;
  opts.max_states = max_states;
  Explorer ex(std::move(machine), std::move(opts));
  return ex.run();
}

}  // namespace lbmf::sim
