#include "lbmf/sim/explorer.hpp"

#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "lbmf/sim/trace.hpp"
#include "lbmf/sim/visited.hpp"
#include "lbmf/util/check.hpp"
#include "lbmf/ws/algorithms.hpp"

namespace lbmf::sim {
namespace {

// The visited-state storage (FingerprintSet / VisitedSet, with the
// spill-to-mmap machinery) lives in lbmf/sim/visited.hpp.

// ---------------------------------------------------------------------------
// Exploration engine
// ---------------------------------------------------------------------------

/// Machine caps num_cpus at 64, so at most 64 x {Execute, Drain} choices.
constexpr std::size_t kMaxChoices = 128;

struct ChoiceList {
  std::array<Choice, kMaxChoices> v{};  // only the first n entries are set
  std::uint8_t n = 0;
  /// True when POR selected a strict subset of the enabled actions; such a
  /// frame may be re-expanded to the full set by the cycle proviso, so its
  /// snapshot must not be moved out.
  bool reduced = false;

  void add(std::uint8_t cpu, Action a) {
    v[n++] = Choice{cpu, a};
  }
};

void enabled_choices(const Machine& m, ChoiceList& out) {
  out.n = 0;
  out.reduced = false;
  for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
    for (Action a : {Action::Execute, Action::Drain}) {
      if (m.action_enabled(cpu, a)) out.add(static_cast<std::uint8_t>(cpu), a);
    }
  }
}

/// Enabled choices, POR-reduced when sound: if some CPU's only enabled
/// action is a *local* Execute (Machine::action_is_local), that action is
/// independent of — commutes with, and neither enables nor disables — every
/// action of every other CPU, so {it} is a valid singleton ample set: every
/// interleaving from here is equivalent to one that schedules it first.
/// The in-stack cycle proviso (handled by the caller on a dedup hit) keeps
/// the reduction from starving the other CPUs around cycles.
void choose_actions(const Machine& m, bool por, ChoiceList& out) {
  out.n = 0;
  out.reduced = false;
  int ample = -1;  // first CPU whose only enabled action is a local Execute
  for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
    const bool exec = m.action_enabled(cpu, Action::Execute);
    const bool drain = m.action_enabled(cpu, Action::Drain);
    if (exec) out.add(static_cast<std::uint8_t>(cpu), Action::Execute);
    if (drain) out.add(static_cast<std::uint8_t>(cpu), Action::Drain);
    if (por && ample < 0 && exec && !drain &&
        m.action_is_local(cpu, Action::Execute)) {
      ample = static_cast<int>(cpu);
    }
  }
  if (por && ample >= 0 && out.n > 1) {
    out.n = 0;
    out.add(static_cast<std::uint8_t>(ample), Action::Execute);
    out.reduced = true;
  }
}

/// State shared by every worker of one run() (trivially so when sequential).
struct Shared {
  explicit Shared(const Explorer::Options& o)
      : opts(o),
        visited(o.exact_dedup, o.threads > 1, o.visited_budget_bytes) {}

  const Explorer::Options& opts;
  VisitedSet visited;
  std::atomic<std::uint64_t> states{0};
  std::atomic<bool> done{false};
  std::atomic<bool> hit_limit{false};

  std::mutex result_mu;
  ExploreResult merged;  // violation/outcomes/counters land here

  /// Count one fresh state against max_states. Returns false (and stops the
  /// run) if the budget is exhausted.
  bool count_state() {
    std::uint64_t cur = states.load(std::memory_order_relaxed);
    do {
      if (cur >= opts.max_states) {
        hit_limit.store(true, std::memory_order_relaxed);
        done.store(true, std::memory_order_relaxed);
        return false;
      }
    } while (!states.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_relaxed));
    return true;
  }

  std::optional<std::string> check_state(const Machine& m) const {
    std::optional<std::string> violation;
    if (opts.check_coherence) violation = m.check_coherence();
    if (!violation && opts.check_mutual_exclusion && m.cpus_in_cs() > 1) {
      violation = "mutual exclusion violated: " +
                  std::to_string(m.cpus_in_cs()) +
                  " CPUs in the critical section";
    }
    if (!violation && opts.check) violation = opts.check(m);
    return violation;
  }

  void report_violation(std::string what, const std::vector<Choice>& trace) {
    std::lock_guard<std::mutex> g(result_mu);
    if (!merged.violation) {
      merged.violation = std::move(what);
      merged.violation_trace = trace;
    }
    if (opts.stop_at_violation) done.store(true, std::memory_order_relaxed);
  }
};

/// One sequential DFS over a subtree, with an explicit frame stack.
class Worker {
 public:
  Worker(Shared& sh, bool parallel) : sh_(sh), parallel_(parallel) {}

  /// Explore from `start`, which the caller has already deduped, counted,
  /// and safety-checked. `prefix` is the schedule from the true root to
  /// `start` (empty when `start` is the root). A non-null `agenda`
  /// restricts the root frame to those choices (the incremental path: the
  /// omitted edges were already explored in the prefix region, so the
  /// frame still counts as fully expanded for the cycle proviso).
  void explore(Machine&& start, Fingerprint start_fp,
               std::vector<Choice> prefix, const ChoiceList* agenda = nullptr) {
    trace_ = std::move(prefix);
    ChoiceList cl;
    if (agenda != nullptr) {
      cl = *agenda;
    } else {
      choose_actions(start, sh_.opts.por, cl);
    }
    if (cl.n == 0) {
      note_terminal(start);
      merge();
      return;
    }
    if (sh_.opts.por) on_path_.insert(start_fp.lo);
    stack_.push_back(Frame{std::move(start), start_fp.lo, cl, 0});
    loop();
    merge();
  }

 private:
  struct Frame {
    std::optional<Machine> m;  // empty once moved into the last child
    std::uint64_t path_key;
    ChoiceList choices;
    std::uint8_t next;
  };

  void loop() {
    while (!stack_.empty()) {
      if (sh_.done.load(std::memory_order_relaxed)) return;
      Frame& f = stack_.back();
      if (f.next >= f.choices.n) {
        pop_frame();
        continue;
      }
      const Choice c = f.choices.v[f.next++];
      // Step into the worker's reusable scratch snapshot first: most edges
      // land on an already-visited state and are discarded immediately, and
      // assigning into the scratch machine's warm vectors skips the
      // malloc/free round trip a fresh Machine copy would pay per edge.
      if (scratch_m_) {
        *scratch_m_ = *f.m;
      } else {
        scratch_m_.emplace(*f.m);
      }
      Machine& child = *scratch_m_;
      child.step(c.cpu, c.action);
      ++local_.transitions;

      const Fingerprint fp = child.fingerprint(scratch_);
      if (!sh_.visited.insert(fp, scratch_)) {
        ++local_.dedup_hits;
        // Cycle proviso: a reduced frame whose ample successor closes a
        // cycle must be fully expanded, or the skipped CPUs could be
        // starved around the loop forever ("ignoring problem"). The
        // sequential test is `successor on the current DFS path`; parallel
        // workers cannot see each other's paths, so they conservatively
        // treat every revisit as a potential cycle.
        if (f.choices.reduced &&
            (parallel_ || on_path_.count(fp.lo) != 0)) {
          expand_fully(f, c);
        }
        continue;
      }

      if (!sh_.count_state()) return;
      // Safety properties are state predicates: evaluate each distinct
      // state once, on discovery, rather than once per incoming transition.
      if (auto violation = sh_.check_state(child)) {
        trace_.push_back(c);
        sh_.report_violation(std::move(*violation), trace_);
        trace_.pop_back();
        if (sh_.opts.stop_at_violation) return;
        continue;  // never explore beyond a violating state
      }

      ChoiceList cl;
      choose_actions(child, sh_.opts.por, cl);
      if (cl.n == 0) {
        note_terminal(child);
        continue;
      }
      trace_.push_back(c);
      if (sh_.opts.por) on_path_.insert(fp.lo);
      // Materialize the new frame's snapshot. The parent moves into its
      // last child — re-running the deterministic step in place costs one
      // step instead of one copy; earlier children copy the scratch state.
      // Reduced frames keep their snapshot in case the cycle proviso
      // re-expands them.
      const bool last = f.next == f.choices.n && !f.choices.reduced;
      if (last) {
        f.m->step(c.cpu, c.action);
        Machine snap = std::move(*f.m);
        f.m.reset();  // before push_back: it may reallocate the stack
        stack_.push_back(Frame{std::move(snap), fp.lo, cl, 0});
      } else {
        stack_.push_back(Frame{Machine(child), fp.lo, cl, 0});
      }
    }
  }

  void pop_frame() {
    if (sh_.opts.por) on_path_.erase(stack_.back().path_key);
    stack_.pop_back();
    if (!stack_.empty()) trace_.pop_back();
  }

  /// Replace a reduced frame's remaining agenda with every enabled action
  /// except the ample one just taken.
  void expand_fully(Frame& f, const Choice& taken) {
    ChoiceList all;
    enabled_choices(*f.m, all);
    ChoiceList rest;
    for (std::uint8_t i = 0; i < all.n; ++i) {
      if (!(all.v[i] == taken)) rest.add(all.v[i].cpu, all.v[i].action);
    }
    f.choices = rest;
    f.next = 0;
  }

  void note_terminal(const Machine& m) {
    ++local_.terminal_states;
    if (sh_.opts.observe) local_.outcomes.insert(sh_.opts.observe(m));
  }

  void merge() {
    std::lock_guard<std::mutex> g(sh_.result_mu);
    sh_.merged.transitions += local_.transitions;
    sh_.merged.terminal_states += local_.terminal_states;
    sh_.merged.dedup_hits += local_.dedup_hits;
    for (const std::string& o : local_.outcomes) sh_.merged.outcomes.insert(o);
    local_ = ExploreResult{};
  }

  Shared& sh_;
  bool parallel_;
  ExploreResult local_;
  std::string scratch_;
  std::optional<Machine> scratch_m_;  // reusable per-edge successor snapshot
  std::vector<Frame> stack_;
  std::vector<Choice> trace_;
  std::unordered_set<std::uint64_t> on_path_;
};

/// A frontier entry for the parallel mode: a deduped, counted, checked,
/// non-terminal state plus the schedule that reaches it.
struct FrontierItem {
  Machine m;
  Fingerprint fp;
  std::vector<Choice> prefix;
};

}  // namespace

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

Explorer::Explorer(Machine initial, Options opts)
    : initial_(std::move(initial)), opts_(std::move(opts)) {}

ExploreResult Explorer::run() {
  Shared sh(opts_);
  std::string scratch;

  // Root accounting (the root is never safety-checked, matching the
  // original explorer: properties are evaluated after transitions).
  Machine root = initial_;
  const Fingerprint root_fp = root.fingerprint(scratch);
  sh.visited.insert(root_fp, scratch);
  if (!sh.count_state()) {
    ExploreResult result;
    result.hit_limit = true;
    result.visited_bytes = sh.visited.bytes();
    return result;
  }

  const std::size_t threads = opts_.threads;
  if (threads <= 1) {
    Worker w(sh, /*parallel=*/false);
    w.explore(std::move(root), root_fp, {});
  } else {
    // Seed a frontier breadth-first (full expansion — trivially sound under
    // POR) until there is enough top-level parallelism to go around, then
    // fan the subtrees out over the work-stealing pool.
    std::deque<FrontierItem> frontier;
    frontier.push_back(FrontierItem{std::move(root), root_fp, {}});
    const std::size_t target = threads * 8;
    while (!frontier.empty() && frontier.size() < target &&
           !sh.done.load(std::memory_order_relaxed)) {
      FrontierItem item = std::move(frontier.front());
      frontier.pop_front();
      ChoiceList cl;
      enabled_choices(item.m, cl);
      if (cl.n == 0) {  // terminal frontier state
        std::lock_guard<std::mutex> g(sh.result_mu);
        ++sh.merged.terminal_states;
        if (opts_.observe) sh.merged.outcomes.insert(opts_.observe(item.m));
        continue;
      }
      for (std::uint8_t i = 0;
           i < cl.n && !sh.done.load(std::memory_order_relaxed); ++i) {
        const Choice c = cl.v[i];
        Machine child = i + 1 == cl.n ? std::move(item.m) : item.m;
        child.step(c.cpu, c.action);
        ++sh.merged.transitions;
        const Fingerprint fp = child.fingerprint(scratch);
        if (!sh.visited.insert(fp, scratch)) {
          ++sh.merged.dedup_hits;
          continue;
        }
        if (!sh.count_state()) break;
        std::vector<Choice> prefix = item.prefix;
        prefix.push_back(c);
        if (auto violation = sh.check_state(child)) {
          sh.report_violation(std::move(*violation), prefix);
          continue;
        }
        frontier.push_back(
            FrontierItem{std::move(child), fp, std::move(prefix)});
      }
    }

    if (!sh.done.load(std::memory_order_relaxed) && !frontier.empty()) {
      std::vector<FrontierItem> items;
      items.reserve(frontier.size());
      while (!frontier.empty()) {
        items.push_back(std::move(frontier.front()));
        frontier.pop_front();
      }
      // Dog-food the paper's runtime: the asymmetric-fence work-stealing
      // scheduler parallelizes the verifier that proves it correct.
      ws::Scheduler<AsymmetricSignalFence> sched(threads);
      sched.run([&] {
        ws::parallel_for<AsymmetricSignalFence>(
            0, items.size(), 1, [&](std::size_t i) {
              if (sh.done.load(std::memory_order_relaxed)) return;
              Worker w(sh, /*parallel=*/true);
              w.explore(std::move(items[i].m), items[i].fp,
                        std::move(items[i].prefix));
            });
      });
    }
  }

  ExploreResult result;
  {
    std::lock_guard<std::mutex> g(sh.result_mu);
    result = std::move(sh.merged);
  }
  result.states_explored = sh.states.load(std::memory_order_relaxed);
  result.hit_limit = sh.hit_limit.load(std::memory_order_relaxed);
  result.visited_bytes = sh.visited.bytes();
  result.spill_bytes = sh.visited.spill_bytes();
  result.spill_segments = sh.visited.spill_segments();
  result.symmetry_orbit = initial_.symmetry_orbit();
  return result;
}

ExploreResult explore_seeded(std::vector<SeedState> seeds,
                             const std::vector<Fingerprint>& visited,
                             const ExploreResult& base,
                             const Explorer::Options& opts) {
  if (base.violation || base.hit_limit) return base;

  Shared sh(opts);
  sh.visited.preload(visited);
  sh.states.store(base.states_explored, std::memory_order_relaxed);
  sh.merged.transitions = base.transitions;
  sh.merged.terminal_states = base.terminal_states;
  sh.merged.dedup_hits = base.dedup_hits;
  sh.merged.outcomes = base.outcomes;

  const std::uint64_t orbit =
      seeds.empty() ? 1 : seeds.front().m.symmetry_orbit();

  auto run_seed = [&sh](SeedState& seed, bool parallel) {
    LBMF_CHECK(!seed.agenda.empty() && seed.agenda.size() <= kMaxChoices);
    ChoiceList cl;
    for (const Choice& c : seed.agenda) cl.add(c.cpu, c.action);
    std::string scratch;
    const Fingerprint fp = seed.m.fingerprint(scratch);
    Worker w(sh, parallel);
    w.explore(std::move(seed.m), fp, std::move(seed.prefix), &cl);
  };

  if (opts.threads <= 1) {
    for (SeedState& seed : seeds) {
      if (sh.done.load(std::memory_order_relaxed)) break;
      run_seed(seed, /*parallel=*/false);
    }
  } else {
    ws::Scheduler<AsymmetricSignalFence> sched(opts.threads);
    sched.run([&] {
      ws::parallel_for<AsymmetricSignalFence>(
          0, seeds.size(), 1, [&](std::size_t i) {
            if (sh.done.load(std::memory_order_relaxed)) return;
            run_seed(seeds[i], /*parallel=*/true);
          });
    });
  }

  ExploreResult result;
  {
    std::lock_guard<std::mutex> g(sh.result_mu);
    result = std::move(sh.merged);
  }
  result.states_explored = sh.states.load(std::memory_order_relaxed);
  result.hit_limit = sh.hit_limit.load(std::memory_order_relaxed);
  result.visited_bytes = sh.visited.bytes();
  result.spill_bytes = sh.visited.spill_bytes();
  result.spill_segments = sh.visited.spill_segments();
  result.symmetry_orbit = orbit;
  return result;
}

std::string annotate_schedule(Machine initial,
                              const std::vector<Choice>& schedule) {
  TraceRecorder rec;
  initial.set_trace(&rec);
  std::string out;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const Choice& c = schedule[i];
    if (!initial.action_enabled(c.cpu, c.action)) {
      out += "<<schedule step " + std::to_string(i) +
             " not enabled: " + to_string(c) + ">>\n";
      break;
    }
    initial.step(c.cpu, c.action);
  }
  out += rec.to_string();
  out += "final: " + std::to_string(initial.cpus_in_cs()) +
         " CPU(s) in critical section";
  if (const auto v = initial.check_coherence()) {
    out += "; coherence: " + *v;
  }
  out += '\n';
  return out;
}

ExploreResult explore_all(Machine machine, std::uint64_t max_states) {
  Explorer::Options opts;
  opts.max_states = max_states;
  return explore_all(std::move(machine), std::move(opts));
}

ExploreResult explore_all(Machine machine, Explorer::Options opts) {
  Explorer ex(std::move(machine), std::move(opts));
  return ex.run();
}

}  // namespace lbmf::sim
