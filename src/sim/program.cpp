#include "lbmf/sim/program.hpp"

#include <cstdio>

#include "lbmf/util/check.hpp"

namespace lbmf::sim {

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kLoad: return "LOAD";
    case Op::kStore: return "ST";
    case Op::kStoreReg: return "STR";
    case Op::kLoadExclusive: return "LE";
    case Op::kMfence: return "MFENCE";
    case Op::kSetLink: return "SETLINK";
    case Op::kBranchLinkSet: return "BLINK";
    case Op::kMovImm: return "MOV";
    case Op::kAddImm: return "ADD";
    case Op::kBranchEq: return "BEQ";
    case Op::kBranchNe: return "BNE";
    case Op::kJump: return "JMP";
    case Op::kCsEnter: return "CS_ENTER";
    case Op::kCsExit: return "CS_EXIT";
    case Op::kDelay: return "DELAY";
    case Op::kHalt: return "HALT";
    case Op::kLock: return "LOCK";
    case Op::kUnlock: return "UNLOCK";
  }
  return "?";
}

std::string to_string(const Instr& i) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s r%u a=%d imm=%lld tgt=%d",
                to_string(i.op), unsigned{i.reg},
                i.addr == kInvalidAddr ? -1 : static_cast<int>(i.addr),
                static_cast<long long>(i.imm), i.target);
  return buf;
}

ProgramBuilder& ProgramBuilder::emit(Instr i) {
  prog_.code.push_back(i);
  return *this;
}

ProgramBuilder& ProgramBuilder::load(std::uint8_t reg, Addr a) {
  return emit({.op = Op::kLoad, .reg = reg, .addr = a});
}

ProgramBuilder& ProgramBuilder::store(Addr a, Word v) {
  return emit({.op = Op::kStore, .addr = a, .imm = v});
}

ProgramBuilder& ProgramBuilder::store_reg(Addr a, std::uint8_t reg) {
  return emit({.op = Op::kStoreReg, .reg = reg, .addr = a});
}

ProgramBuilder& ProgramBuilder::load_exclusive(std::uint8_t reg, Addr a) {
  return emit({.op = Op::kLoadExclusive, .reg = reg, .addr = a});
}

ProgramBuilder& ProgramBuilder::mfence() { return emit({.op = Op::kMfence}); }

ProgramBuilder& ProgramBuilder::mov(std::uint8_t reg, Word v) {
  return emit({.op = Op::kMovImm, .reg = reg, .imm = v});
}

ProgramBuilder& ProgramBuilder::add(std::uint8_t reg, Word v) {
  return emit({.op = Op::kAddImm, .reg = reg, .imm = v});
}

ProgramBuilder& ProgramBuilder::cs_enter() { return emit({.op = Op::kCsEnter}); }
ProgramBuilder& ProgramBuilder::cs_exit() { return emit({.op = Op::kCsExit}); }

ProgramBuilder& ProgramBuilder::delay(Word cycles) {
  return emit({.op = Op::kDelay, .imm = cycles});
}

ProgramBuilder& ProgramBuilder::halt() { return emit({.op = Op::kHalt}); }

ProgramBuilder& ProgramBuilder::lock(Addr a) {
  return emit({.op = Op::kLock, .addr = a});
}

ProgramBuilder& ProgramBuilder::unlock(Addr a) {
  return emit({.op = Op::kUnlock, .addr = a});
}

ProgramBuilder& ProgramBuilder::label(const std::string& name) {
  labels_.emplace_back(name, static_cast<std::int32_t>(prog_.code.size()));
  return *this;
}

ProgramBuilder& ProgramBuilder::branch_eq(std::uint8_t reg, Word v,
                                          const std::string& label) {
  fixups_.emplace_back(prog_.code.size(), label);
  return emit({.op = Op::kBranchEq, .reg = reg, .imm = v});
}

ProgramBuilder& ProgramBuilder::branch_ne(std::uint8_t reg, Word v,
                                          const std::string& label) {
  fixups_.emplace_back(prog_.code.size(), label);
  return emit({.op = Op::kBranchNe, .reg = reg, .imm = v});
}

ProgramBuilder& ProgramBuilder::jump(const std::string& label) {
  fixups_.emplace_back(prog_.code.size(), label);
  return emit({.op = Op::kJump});
}

ProgramBuilder& ProgramBuilder::lmfence(Addr a, Word v, std::uint8_t scratch) {
  // Fig. 3(b): K1.1-2 SetLink, K1.3 LE, K1.4 ST, K1.5 branch-if-link,
  // K1.6 MFENCE, K1.7 done.
  emit({.op = Op::kSetLink, .addr = a});
  emit({.op = Op::kLoadExclusive, .reg = scratch, .addr = a});
  emit({.op = Op::kStore, .addr = a, .imm = v});
  // Branch over the fence when the link survived to the store's commit.
  const auto branch_pos = prog_.code.size();
  emit({.op = Op::kBranchLinkSet,
        .target = static_cast<std::int32_t>(branch_pos + 2)});
  emit({.op = Op::kMfence});
  return *this;
}

std::optional<std::string> ProgramBuilder::try_build(Program* out) {
  for (const auto& [pos, name] : fixups_) {
    std::int32_t target = -1;
    for (const auto& [lname, lpos] : labels_) {
      if (lname == name) {
        target = lpos;
        break;
      }
    }
    if (target < 0) return "undefined label '" + name + "'";
    prog_.code[pos].target = target;
  }
  if (prog_.code.empty() || prog_.code.back().op != Op::kHalt) {
    return std::string("program must end with 'halt'");
  }
  *out = std::move(prog_);
  return std::nullopt;
}

Program ProgramBuilder::build() {
  Program out;
  const auto err = try_build(&out);
  LBMF_CHECK_MSG(!err.has_value(), err ? err->c_str() : "");
  return out;
}

}  // namespace lbmf::sim
