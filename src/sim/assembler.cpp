#include "lbmf/sim/assembler.hpp"

#include <cctype>
#include <charconv>

#include "lbmf/sim/machine.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::sim {
namespace {

/// Cursor over one source line, with small lexing helpers. Commas are
/// treated as whitespace; brackets delimit location operands.
class LineLexer {
 public:
  explicit LineLexer(std::string_view line) : s_(line) {}

  void skip_ws() {
    while (pos_ < s_.size() &&
           (std::isspace(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == ',')) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= s_.size();
  }

  /// Next bare token (identifier / number / sign), without brackets.
  std::string_view token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() && !std::isspace(static_cast<unsigned char>(
                                   s_[pos_])) &&
           s_[pos_] != ',' && s_[pos_] != '[' && s_[pos_] != ']' &&
           s_[pos_] != ':') {
      ++pos_;
    }
    last_start_ = start;
    last_ = s_.substr(start, pos_ - start);
    return last_;
  }

  bool consume(char c) {
    skip_ws();
    last_start_ = pos_;
    last_ = pos_ < s_.size() ? s_.substr(pos_, 1) : std::string_view{};
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// 1-based column of the last token()/consume() attempt — the lexer's
  /// line is a prefix of the raw source line, so columns line up with the
  /// file as the user sees it.
  std::size_t column() const noexcept { return last_start_ + 1; }
  std::string_view last_token() const noexcept { return last_; }

 private:
  std::string_view s_;
  std::size_t pos_ = 0;
  std::size_t last_start_ = 0;
  std::string_view last_;
};

bool parse_int(std::string_view tok, long long* out) {
  if (tok.empty()) return false;
  const auto* first = tok.data();
  const auto* last = tok.data() + tok.size();
  const auto res = std::from_chars(first, last, *out);
  return res.ec == std::errc{} && res.ptr == last;
}

struct Assembler {
  AssembleResult result;
  ProgramBuilder* builder = nullptr;
  std::vector<ProgramBuilder> builders;
  std::size_t line_no = 0;
  Addr next_addr = 0;
  std::vector<std::pair<Addr, Word>> initials;
  std::vector<double> freqs;     // one per cpu section, default 1.0
  std::vector<bool> freq_seen;   // duplicate-`freq` detection
  // `symmetric cpu ...` declarations, with the source line for late
  // validation errors (the groups are checked after every cpu section has
  // been built, so forward declarations are legal).
  std::vector<std::pair<std::vector<std::size_t>, std::size_t>> sym_decls;

  bool fail(std::string message) {
    result.error = AssembleError{line_no, std::move(message)};
    return false;
  }

  /// fail() attributed to the lexer's last token: records its 1-based
  /// column and text so the report can point at the offending operand.
  bool fail_at(const LineLexer& lex, std::string message) {
    result.error = AssembleError{line_no, std::move(message), lex.column(),
                                 std::string(lex.last_token())};
    return false;
  }

  bool parse_reg(LineLexer& lex, std::uint8_t* out) {
    const std::string_view t = lex.token();
    if (t.size() < 2 || (t[0] != 'r' && t[0] != 'R')) {
      return fail_at(lex,
                     "expected register r0..r7, got '" + std::string(t) + "'");
    }
    long long idx = -1;
    if (!parse_int(t.substr(1), &idx) || idx < 0 || idx > 7) {
      return fail_at(lex, "register out of range: '" + std::string(t) + "'");
    }
    *out = static_cast<std::uint8_t>(idx);
    return true;
  }

  bool parse_addr(LineLexer& lex, Addr* out) {
    if (!lex.consume('[')) {
      return fail_at(lex, "expected '[' before location");
    }
    const std::string_view t = lex.token();
    if (t.empty()) return fail_at(lex, "empty location");
    long long numeric = -1;
    if (parse_int(t, &numeric)) {
      if (numeric < 0) return fail_at(lex, "negative address");
      *out = static_cast<Addr>(numeric);
    } else {
      auto [it, inserted] =
          result.symbols.try_emplace(std::string(t), next_addr);
      if (inserted) ++next_addr;
      *out = it->second;
    }
    if (!lex.consume(']')) {
      return fail_at(lex, "expected ']' after location");
    }
    return true;
  }

  bool parse_imm(LineLexer& lex, Word* out) {
    const std::string_view t = lex.token();
    long long v = 0;
    if (!parse_int(t, &v)) {
      return fail_at(lex, "expected integer, got '" + std::string(t) + "'");
    }
    *out = static_cast<Word>(v);
    return true;
  }

  bool parse_label(LineLexer& lex, std::string* out) {
    const std::string_view t = lex.token();
    if (t.empty()) return fail_at(lex, "expected label name");
    *out = std::string(t);
    return true;
  }

  bool require_end(LineLexer& lex) {
    if (!lex.at_end()) {
      lex.token();  // attribute the error to the first trailing token
      return fail_at(lex, "trailing tokens on line");
    }
    return true;
  }

  bool finish_current() {
    if (builder == nullptr) return true;
    Program p;
    if (const auto err = builders.back().try_build(&p)) {
      return fail("cpu" + std::to_string(result.programs.size()) + ": " +
                  *err);
    }
    result.programs.push_back(std::move(p));
    builder = nullptr;
    return true;
  }

  /// Post-assembly check of every `symmetric cpu` declaration. A group is
  /// legal when the member CPUs are genuinely interchangeable: same
  /// instruction sequence, same relative frequency, and `?fence` holes at
  /// the same instruction indices over the same (addr, value) stores.
  bool validate_symmetry() {
    std::vector<bool> grouped(result.programs.size(), false);
    for (auto& [members, decl_line] : sym_decls) {
      line_no = decl_line;
      const std::size_t lead = members[0];
      for (const std::size_t m : members) {
        if (m >= result.programs.size()) {
          return fail("'symmetric' names cpu " + std::to_string(m) +
                      " but only " + std::to_string(result.programs.size()) +
                      " cpu sections exist");
        }
        if (grouped[m]) {
          return fail("cpu " + std::to_string(m) +
                      " appears in more than one 'symmetric' group");
        }
        grouped[m] = true;
        if (m == lead) continue;
        if (result.programs[m].code != result.programs[lead].code) {
          return fail("'symmetric' cpus " + std::to_string(lead) + " and " +
                      std::to_string(m) + " have different programs");
        }
        if (result.cpu_freqs[m] != result.cpu_freqs[lead]) {
          return fail("'symmetric' cpus " + std::to_string(lead) + " and " +
                      std::to_string(m) + " have different freqs");
        }
        auto holes_of = [this](std::size_t cpu) {
          std::vector<std::tuple<std::size_t, Addr, Word>> h;
          for (const LitHole& hole : result.holes) {
            if (hole.cpu == cpu) h.emplace_back(hole.instr_index, hole.addr,
                                                hole.value);
          }
          return h;  // source order == ascending instr_index per cpu
        };
        if (holes_of(m) != holes_of(lead)) {
          return fail("'symmetric' cpus " + std::to_string(lead) + " and " +
                      std::to_string(m) + " have misaligned ?fence holes");
        }
      }
      result.symmetric_groups.push_back(std::move(members));
    }
    return true;
  }

  bool handle_line(std::string_view raw) {
    // Runtime-source provenance: a trailing `#@ file:line` comment, one
    // per instruction in extractor-generated files. Captured before the
    // comment strip below removes it; attached to any `?fence` hole on
    // this line (a plain comment to everything else).
    std::string_view prov;
    if (const auto tag = raw.find("#@"); tag != std::string_view::npos) {
      prov = raw.substr(tag + 2);
      while (!prov.empty() &&
             std::isspace(static_cast<unsigned char>(prov.front()))) {
        prov.remove_prefix(1);
      }
      std::size_t end = 0;
      while (end < prov.size() &&
             !std::isspace(static_cast<unsigned char>(prov[end]))) {
        ++end;
      }
      prov = prov.substr(0, end);
    }
    // Strip comments.
    std::string_view line = raw;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    if (const auto slashes = line.find("//");
        slashes != std::string_view::npos) {
      line = line.substr(0, slashes);
    }
    LineLexer lex(line);
    if (lex.at_end()) return true;

    const std::string_view head = lex.token();

    // `init [loc], value` — initial memory contents; only before the first
    // cpu section (it describes the shared initial state).
    if (head == "init") {
      if (builder != nullptr || !result.programs.empty()) {
        return fail("'init' must precede the first cpu section");
      }
      Addr a = 0;
      Word v = 0;
      if (!parse_addr(lex, &a) || !parse_imm(lex, &v)) return false;
      initials.emplace_back(a, v);
      return require_end(lex);
    }

    // `final [loc], v, [loc2], w, ...` — one allowed terminal valuation (a
    // conjunction over locations); repeating the directive builds a
    // disjunction. Legal anywhere: it describes the whole test, not one
    // CPU, and by convention sits at the end of the file.
    if (head == "final") {
      std::vector<std::pair<Addr, Word>> conj;
      while (!lex.at_end()) {
        Addr a = 0;
        Word v = 0;
        if (!parse_addr(lex, &a) || !parse_imm(lex, &v)) return false;
        conj.emplace_back(a, v);
      }
      if (conj.empty()) return fail("'final' needs at least one [loc], value");
      result.final_allowed.push_back(std::move(conj));
      return true;
    }

    // `symmetric cpu N, M[, ...]` — declare a group of interchangeable
    // CPUs. Legal anywhere (like `final`); membership is validated once the
    // whole file has assembled: the named programs must be byte-identical,
    // their freqs equal, and their `?fence` holes aligned, so the
    // declaration fails loudly the moment the programs drift apart.
    if (head == "symmetric") {
      const std::string_view kw = lex.token();
      if (kw != "cpu") return fail("expected 'symmetric cpu N, M, ...'");
      std::vector<std::size_t> members;
      while (!lex.at_end()) {
        Word v = 0;
        if (!parse_imm(lex, &v)) return false;
        if (v < 0) return fail("negative cpu index in 'symmetric'");
        members.push_back(static_cast<std::size_t>(v));
      }
      if (members.size() < 2) {
        return fail("'symmetric cpu' needs at least two cpu indices");
      }
      sym_decls.emplace_back(std::move(members), line_no);
      return true;
    }

    if (head == "cpu") {
      long long n = -1;
      const std::string_view num = lex.token();
      // `builders` keeps one (possibly moved-from) slot per section seen so
      // far, so its size alone is the next expected cpu index. (Adding
      // result.programs.size() here double-counted finished sections and
      // rejected any third `cpu N:` block.)
      if (!parse_int(num, &n) || n != static_cast<long long>(builders.size())) {
        return fail("cpu sections must be 'cpu 0:', 'cpu 1:', ... in order");
      }
      if (!lex.consume(':')) return fail("expected ':' after cpu N");
      if (!finish_current()) return false;
      builders.emplace_back("cpu" + std::to_string(n));
      builder = &builders.back();
      freqs.push_back(1.0);
      freq_seen.push_back(false);
      return require_end(lex);
    }

    // `freq N` — relative execution frequency of this CPU's protocol entry
    // (how often this code runs per unit time, e.g. the biased-Dekker
    // primary vs its rare secondary). Consumed by the fence-inference cost
    // ranking; no effect on execution or exploration.
    if (head == "freq") {
      if (builder == nullptr) {
        return fail("'freq' must be inside a 'cpu N:' section");
      }
      if (freq_seen.back()) return fail("duplicate 'freq' in cpu section");
      Word v = 0;
      if (!parse_imm(lex, &v)) return false;
      if (v < 1) return fail("freq must be >= 1");
      freqs.back() = static_cast<double>(v);
      freq_seen.back() = true;
      return require_end(lex);
    }

    if (builder == nullptr) {
      return fail("instruction outside a 'cpu N:' section");
    }

    // Label definition: `name:` alone.
    {
      LineLexer probe(line);
      const std::string_view t = probe.token();
      if (!t.empty() && probe.consume(':') && probe.at_end() && t != "cpu") {
        builder->label(std::string(t));
        return true;
      }
    }

    std::uint8_t reg = 0;
    Addr a = 0;
    Word imm = 0;
    std::string label;

    if (head == "mov") {
      if (!parse_reg(lex, &reg) || !parse_imm(lex, &imm)) return false;
      builder->mov(reg, imm);
    } else if (head == "add") {
      if (!parse_reg(lex, &reg) || !parse_imm(lex, &imm)) return false;
      builder->add(reg, imm);
    } else if (head == "load") {
      if (!parse_reg(lex, &reg) || !parse_addr(lex, &a)) return false;
      builder->load(reg, a);
    } else if (head == "le") {
      if (!parse_reg(lex, &reg) || !parse_addr(lex, &a)) return false;
      builder->load_exclusive(reg, a);
    } else if (head == "store") {
      if (!parse_addr(lex, &a)) return false;
      // Either an immediate or a register source.
      LineLexer save = lex;
      const std::string_view t = save.token();
      long long v = 0;
      if (!t.empty() && (t[0] == 'r' || t[0] == 'R') &&
          parse_int(t.substr(1), &v) && v >= 0 && v <= 7) {
        lex = save;
        builder->store_reg(a, static_cast<std::uint8_t>(v));
      } else if (!parse_imm(lex, &imm)) {
        return false;
      } else {
        builder->store(a, imm);
      }
    } else if (head == "lmfence") {
      if (!parse_addr(lex, &a) || !parse_imm(lex, &imm)) return false;
      builder->lmfence(a, imm);
    } else if (head == "?fence") {
      // A fence HOLE: a store whose fence discipline ({none, mfence,
      // l-mfence}) is left for lbmf::infer to decide. Assembles to the
      // plain store (the weakest instantiation) and records the site.
      if (!parse_addr(lex, &a) || !parse_imm(lex, &imm)) return false;
      result.holes.push_back(LitHole{builders.size() - 1, builder->size(), a,
                                     imm, line_no, std::string(prov)});
      builder->store(a, imm);
    } else if (head == "mfence") {
      builder->mfence();
    } else if (head == "lock") {
      if (!parse_addr(lex, &a)) return false;
      builder->lock(a);
    } else if (head == "unlock") {
      if (!parse_addr(lex, &a)) return false;
      builder->unlock(a);
    } else if (head == "delay") {
      if (!parse_imm(lex, &imm)) return false;
      if (imm < 0) return fail("delay must be non-negative");
      builder->delay(imm);
    } else if (head == "beq") {
      if (!parse_reg(lex, &reg) || !parse_imm(lex, &imm) ||
          !parse_label(lex, &label)) {
        return false;
      }
      builder->branch_eq(reg, imm, label);
    } else if (head == "bne") {
      if (!parse_reg(lex, &reg) || !parse_imm(lex, &imm) ||
          !parse_label(lex, &label)) {
        return false;
      }
      builder->branch_ne(reg, imm, label);
    } else if (head == "jmp") {
      if (!parse_label(lex, &label)) return false;
      builder->jump(label);
    } else if (head == "cs_enter") {
      builder->cs_enter();
    } else if (head == "cs_exit") {
      builder->cs_exit();
    } else if (head == "halt") {
      builder->halt();
    } else {
      return fail_at(lex, "unknown instruction '" + std::string(head) + "'");
    }
    return require_end(lex);
  }
};

}  // namespace

std::string AssembleError::to_string() const {
  std::string out = "line " + std::to_string(line);
  if (column != 0) {
    out += ", col " + std::to_string(column);
    if (!token.empty()) out += " near '" + token + "'";
  }
  out += ": " + message;
  return out;
}

AssembleResult assemble(std::string_view source) {
  Assembler as;
  std::size_t start = 0;
  while (start <= source.size()) {
    ++as.line_no;
    const std::size_t nl = source.find('\n', start);
    const std::string_view line =
        nl == std::string_view::npos
            ? source.substr(start)
            : source.substr(start, nl - start);
    if (!as.handle_line(line)) return std::move(as.result);
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  if (as.builders.empty() && as.result.programs.empty()) {
    as.fail("no 'cpu N:' sections found");
    return std::move(as.result);
  }
  if (!as.finish_current()) return std::move(as.result);
  as.result.initial_memory = std::move(as.initials);
  as.result.cpu_freqs = std::move(as.freqs);
  if (!as.validate_symmetry()) return std::move(as.result);
  return std::move(as.result);
}

Machine assemble_machine(std::string_view source, SimConfig cfg) {
  AssembleResult r = assemble(source);
  LBMF_CHECK_MSG(r.ok(), "litmus assembly failed");
  cfg.num_cpus = r.programs.size();
  Machine m(cfg);
  for (const auto& [a, v] : r.initial_memory) m.set_memory(a, v);
  for (std::size_t i = 0; i < r.programs.size(); ++i) {
    m.load_program(i, std::move(r.programs[i]));
  }
  if (!r.symmetric_groups.empty()) {
    std::vector<std::vector<std::uint8_t>> groups;
    for (const auto& g : r.symmetric_groups) {
      groups.emplace_back(g.begin(), g.end());
    }
    m.set_symmetric_groups(std::move(groups));
  }
  return m;
}

}  // namespace lbmf::sim
