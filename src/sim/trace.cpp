#include "lbmf/sim/trace.hpp"

#include <cstdio>

namespace lbmf::sim {

const char* to_string(EventKind k) noexcept {
  switch (k) {
    case EventKind::kExec: return "exec";
    case EventKind::kDrain: return "drain";
    case EventKind::kInterrupt: return "interrupt";
    case EventKind::kBusRead: return "bus-read";
    case EventKind::kBusReadX: return "bus-rfo";
    case EventKind::kWriteback: return "writeback";
    case EventKind::kLinkArm: return "link-arm";
    case EventKind::kGuardRemote: return "guard-remote";
    case EventKind::kGuardEvict: return "guard-evict";
    case EventKind::kGuardSecond: return "guard-second";
    case EventKind::kLinkComplete: return "link-complete";
  }
  return "?";
}

std::string to_string(const TraceEvent& e) {
  char buf[96];
  if (e.addr == kInvalidAddr) {
    std::snprintf(buf, sizeof(buf), "#%04llu cpu%u %-13s",
                  static_cast<unsigned long long>(e.seq), unsigned{e.cpu},
                  to_string(e.kind));
  } else {
    std::snprintf(buf, sizeof(buf), "#%04llu cpu%u %-13s [%u]=%lld",
                  static_cast<unsigned long long>(e.seq), unsigned{e.cpu},
                  to_string(e.kind), e.addr,
                  static_cast<long long>(e.value));
  }
  std::string out(buf);
  if (!e.detail.empty()) {
    out += "  ";
    out += e.detail;
  }
  return out;
}

std::size_t TraceRecorder::count(EventKind k) const noexcept {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == k) ++n;
  }
  return n;
}

std::string TraceRecorder::to_string() const {
  std::string out;
  out.reserve(events_.size() * 48);
  for (const TraceEvent& e : events_) {
    out += sim::to_string(e);
    out += '\n';
  }
  return out;
}

}  // namespace lbmf::sim
