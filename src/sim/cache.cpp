#include "lbmf/sim/cache.hpp"

#include <algorithm>

#include "lbmf/util/check.hpp"

namespace lbmf::sim {

const CacheLine* Cache::peek(Addr base) const noexcept {
  for (const auto& l : lines_) {
    if (l.base == base) return &l;
  }
  return nullptr;
}

CacheLine* Cache::touch(Addr base) noexcept {
  for (auto& l : lines_) {
    if (l.base == base) {
      l.lru = ++clock_;
      return &l;
    }
  }
  return nullptr;
}

std::optional<CacheLine> Cache::insert(Addr base, Mesi state, LineData data) {
  LBMF_CHECK(state != Mesi::Invalid);
  if (CacheLine* existing = touch(base)) {
    existing->state = state;
    existing->data = std::move(data);
    return std::nullopt;
  }
  std::optional<CacheLine> evicted;
  if (lines_.size() >= capacity_) {
    auto victim = std::min_element(
        lines_.begin(), lines_.end(),
        [](const CacheLine& x, const CacheLine& y) { return x.lru < y.lru; });
    evicted = std::move(*victim);
    lines_.erase(victim);
  }
  // Insert in base order: lines_ stays sorted, so canonical encodings can
  // walk it directly instead of sorting a copy per serialized state.
  const auto pos = std::lower_bound(
      lines_.begin(), lines_.end(), base,
      [](const CacheLine& l, Addr b) { return l.base < b; });
  lines_.insert(pos, CacheLine{base, state, std::move(data), ++clock_});
  return evicted;
}

void Cache::set_state(Addr base, Mesi state) noexcept {
  for (auto& l : lines_) {
    if (l.base == base) {
      l.state = state;
      return;
    }
  }
}

std::optional<CacheLine> Cache::erase(Addr base) noexcept {
  for (auto it = lines_.begin(); it != lines_.end(); ++it) {
    if (it->base == base) {
      CacheLine removed = std::move(*it);
      lines_.erase(it);
      return removed;
    }
  }
  return std::nullopt;
}

void Cache::restore_lines(std::vector<CacheLine> lines) {
  LBMF_CHECK(lines.size() <= capacity_);
  LBMF_CHECK(std::is_sorted(
      lines.begin(), lines.end(),
      [](const CacheLine& a, const CacheLine& b) { return a.base < b.base; }));
  std::uint64_t max_lru = 0;
  for (const CacheLine& l : lines) max_lru = std::max(max_lru, l.lru);
  lines_ = std::move(lines);
  clock_ = max_lru + 1;
}

StoreEntry StoreBuffer::pop_oldest() {
  LBMF_CHECK(!entries_.empty());
  StoreEntry e = entries_.front();
  entries_.erase(entries_.begin());
  return e;
}

std::optional<Word> StoreBuffer::forwarded_value(Addr a) const noexcept {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->addr == a) return it->value;
  }
  return std::nullopt;
}

}  // namespace lbmf::sim
