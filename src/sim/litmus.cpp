#include "lbmf/sim/litmus.hpp"

#include <map>
#include <string>

namespace lbmf::sim {
namespace {

/// Emit "[my_flag] = 1" with the chosen fence discipline after it.
void emit_announce(ProgramBuilder& b, Addr my_flag, FenceKind fence) {
  fenced_store(b, my_flag, 1, fence);
}

}  // namespace

const char* to_string(FenceKind k) noexcept {
  switch (k) {
    case FenceKind::kNone: return "none";
    case FenceKind::kMfence: return "mfence";
    case FenceKind::kLmfence: return "l-mfence";
  }
  return "?";
}

std::optional<FenceKind> fence_kind_from_string(std::string_view s) noexcept {
  if (s == "none") return FenceKind::kNone;
  if (s == "mfence") return FenceKind::kMfence;
  if (s == "l-mfence" || s == "lmfence") return FenceKind::kLmfence;
  return std::nullopt;
}

ProgramBuilder& fenced_store(ProgramBuilder& b, Addr a, Word v, FenceKind f) {
  switch (f) {
    case FenceKind::kNone:
      return b.store(a, v);
    case FenceKind::kMfence:
      b.store(a, v);
      return b.mfence();
    case FenceKind::kLmfence:
      return b.lmfence(a, v);
  }
  return b;
}

Program dekker_side(Addr my_flag, Addr peer_flag, FenceKind fence,
                    Word cs_work) {
  ProgramBuilder b(std::string("dekker-") + to_string(fence));
  emit_announce(b, my_flag, fence);
  b.load(reg::kObs0, peer_flag);
  b.branch_ne(reg::kObs0, 0, "skip");
  b.cs_enter();
  if (cs_work > 0) b.delay(cs_work);
  b.cs_exit();
  b.label("skip");
  b.store(my_flag, 0);
  b.halt();
  return b.build();
}

Machine make_dekker_machine(FenceKind primary, FenceKind secondary,
                            SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);
  m.load_program(0, dekker_side(addr::kFlag0, addr::kFlag1, primary));
  m.load_program(1, dekker_side(addr::kFlag1, addr::kFlag0, secondary));
  return m;
}

Machine make_store_buffer_litmus(FenceKind f0, FenceKind f1, SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);
  auto side = [](Addr mine, Addr theirs, FenceKind f) {
    ProgramBuilder b(std::string("sb-") + to_string(f));
    emit_announce(b, mine, f);
    b.load(reg::kObs0, theirs);
    b.halt();
    return b.build();
  };
  m.load_program(0, side(addr::kFlag0, addr::kFlag1, f0));
  m.load_program(1, side(addr::kFlag1, addr::kFlag0, f1));
  return m;
}

Machine make_message_passing_litmus(SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);
  ProgramBuilder w("mp-writer");
  w.store(addr::kData, 42);
  w.store(addr::kFlag0, 1);
  w.halt();
  ProgramBuilder r("mp-reader");
  r.load(reg::kObs0, addr::kFlag0);
  r.load(reg::kObs1, addr::kData);
  r.halt();
  m.load_program(0, w.build());
  m.load_program(1, r.build());
  return m;
}

Machine make_load_buffering_litmus(SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);
  auto side = [](Addr mine, Addr theirs) {
    ProgramBuilder b("lb");
    b.load(reg::kObs0, theirs);
    b.store(mine, 1);
    b.halt();
    return b.build();
  };
  m.load_program(0, side(addr::kFlag0, addr::kFlag1));
  m.load_program(1, side(addr::kFlag1, addr::kFlag0));
  return m;
}

Machine make_iriw_litmus(SimConfig cfg) {
  cfg.num_cpus = 4;
  Machine m(cfg);
  ProgramBuilder w0("w-x");
  w0.store(addr::kFlag0, 1).halt();
  ProgramBuilder w1("w-y");
  w1.store(addr::kFlag1, 1).halt();
  auto reader = [](Addr first, Addr second) {
    ProgramBuilder b("iriw-r");
    b.load(reg::kObs0, first);
    b.load(reg::kObs1, second);
    b.halt();
    return b.build();
  };
  m.load_program(0, w0.build());
  m.load_program(1, w1.build());
  m.load_program(2, reader(addr::kFlag0, addr::kFlag1));
  m.load_program(3, reader(addr::kFlag1, addr::kFlag0));
  return m;
}

namespace {

/// One side of Peterson's entry protocol. `me` is this side's flag, `peer`
/// the other's; `turn_value` is the value this side writes to the turn
/// word (the *other* side's index).
Program peterson_side(Addr me, Addr peer, Word turn_value, FenceKind fence) {
  ProgramBuilder b(std::string("peterson-") + to_string(fence));
  b.store(me, 1);
  switch (fence) {
    case FenceKind::kNone:
      b.store(addr::kTurn, turn_value);
      break;
    case FenceKind::kMfence:
      b.store(addr::kTurn, turn_value);
      b.mfence();
      break;
    case FenceKind::kLmfence:
      // Guard only the LAST announce store: FIFO drain completes `me` too.
      b.lmfence(addr::kTurn, turn_value);
      break;
  }
  b.load(reg::kObs0, peer);
  b.branch_eq(reg::kObs0, 0, "enter");
  b.load(reg::kObs1, addr::kTurn);
  b.branch_eq(reg::kObs1, turn_value, "skip");
  b.label("enter");
  b.cs_enter();
  b.cs_exit();
  b.label("skip");
  b.store(me, 0);
  b.halt();
  return b.build();
}

}  // namespace

Machine make_peterson_machine(FenceKind primary, FenceKind secondary,
                              SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);
  // turn value written by side i is the peer's id; a side waits when the
  // peer's flag is up AND the turn still points at the peer.
  m.load_program(0, peterson_side(addr::kFlag0, addr::kFlag1, 1, primary));
  m.load_program(1, peterson_side(addr::kFlag1, addr::kFlag0, 2, secondary));
  return m;
}

Machine make_solo_dekker_machine(FenceKind fence, int iters, Word cs_work,
                                 SimConfig cfg) {
  cfg.num_cpus = 1;
  Machine m(cfg);
  ProgramBuilder b(std::string("solo-dekker-") + to_string(fence));
  b.mov(2, iters);
  b.label("loop");
  emit_announce(b, addr::kFlag0, fence);
  b.load(reg::kObs0, addr::kFlag1);
  b.branch_ne(reg::kObs0, 0, "skip");
  b.cs_enter();
  if (cs_work > 0) b.delay(cs_work);
  b.cs_exit();
  b.label("skip");
  b.store(addr::kFlag0, 0);
  b.add(2, -1);
  b.branch_ne(2, 0, "loop");
  b.halt();
  m.load_program(0, b.build());
  return m;
}

Machine make_roundtrip_machine(bool use_interrupt, SimConfig cfg) {
  cfg.num_cpus = 2;
  Machine m(cfg);

  // Primary: arm the link on kFlag0, keep the store parked in the buffer by
  // spinning on register-only work, then quiesce.
  ProgramBuilder p("roundtrip-primary");
  if (use_interrupt) {
    // Software-prototype shape: no LE/ST; plain store sits in the buffer
    // until the interrupt (signal) drains it.
    p.store(addr::kFlag0, 1);
  } else {
    p.lmfence(addr::kFlag0, 1);
  }
  p.mov(2, 1000);
  p.label("spin");
  p.add(2, -1);
  p.branch_ne(2, 0, "spin");
  p.halt();
  m.load_program(0, p.build());

  // Secondary: a single remote read of the guarded location.
  ProgramBuilder s("roundtrip-secondary");
  s.load(reg::kObs0, addr::kFlag0);
  s.halt();
  m.load_program(1, s.build());
  return m;
}

std::string observe_obs0(const Machine& m) {
  std::string out;
  for (std::size_t i = 0; i < m.num_cpus(); ++i) {
    if (i > 0) out += ',';
    out += "r0=" + std::to_string(m.cpu(i).regs[reg::kObs0]);
  }
  return out;
}


std::function<std::optional<std::string>(const Machine&)> final_state_check(
    std::vector<std::vector<std::pair<Addr, Word>>> allowed) {
  return [allowed = std::move(allowed)](
             const Machine& m) -> std::optional<std::string> {
    // Terminal = no CPU can take either explorable action. (The explorer
    // never schedules Interrupt, so Execute/Drain exhaust its choices.)
    for (std::size_t i = 0; i < m.num_cpus(); ++i) {
      if (m.action_enabled(i, Action::Execute) ||
          m.action_enabled(i, Action::Drain)) {
        return std::nullopt;
      }
    }
    if (!m.finished()) {
      // Zero enabled actions with un-halted CPUs: someone is wedged on a
      // blocked `lock` whose holder will never release the gate.
      std::string who;
      for (std::size_t i = 0; i < m.num_cpus(); ++i) {
        if (m.cpu(i).halted) continue;
        if (!who.empty()) who += ',';
        who += "cpu" + std::to_string(i);
      }
      return "deadlock: " + who + " blocked with no enabled action";
    }
    if (allowed.empty()) return std::nullopt;
    for (const auto& conj : allowed) {
      bool match = true;
      for (const auto& [a, v] : conj) {
        if (m.coherent_value(a) != v) {
          match = false;
          break;
        }
      }
      if (match) return std::nullopt;
    }
    // No disjunct matched: report the actual terminal values of every
    // location any `final` line mentions.
    std::map<Addr, Word> actual;
    for (const auto& conj : allowed) {
      for (const auto& [a, v] : conj) actual.emplace(a, m.coherent_value(a));
    }
    std::string got = "terminal state not in final set:";
    for (const auto& [a, v] : actual) {
      got += " [" + std::to_string(a) + "]=" + std::to_string(v);
    }
    return got;
  };
}

}  // namespace lbmf::sim
