#include "lbmf/sim/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "lbmf/sim/trace.hpp"

#include "lbmf/util/check.hpp"
#include "lbmf/util/rng.hpp"

namespace lbmf::sim {

const char* to_string(Mesi s) noexcept {
  switch (s) {
    case Mesi::Invalid: return "I";
    case Mesi::Shared: return "S";
    case Mesi::Exclusive: return "E";
    case Mesi::Modified: return "M";
    case Mesi::Owned: return "O";
  }
  return "?";
}

const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kMsi: return "MSI";
    case Protocol::kMesi: return "MESI";
    case Protocol::kMoesi: return "MOESI";
  }
  return "?";
}

namespace {

/// States in which no other cache may hold a valid copy — the states the
/// l-mfence link requires (Def. 3) and in which a store may complete.
bool is_exclusive_state(Mesi s) noexcept {
  return s == Mesi::Exclusive || s == Mesi::Modified;
}

/// States holding dirty data (memory may be stale).
bool is_dirty_state(Mesi s) noexcept {
  return s == Mesi::Modified || s == Mesi::Owned;
}

}  // namespace

const char* to_string(Action a) noexcept {
  switch (a) {
    case Action::Execute: return "exec";
    case Action::Drain: return "drain";
    case Action::Interrupt: return "intr";
  }
  return "?";
}

std::string to_string(const Choice& c) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "cpu%u:%s", unsigned{c.cpu},
                to_string(c.action));
  return buf;
}

Machine::Machine(SimConfig cfg) : cfg_(cfg) {
  LBMF_CHECK(cfg_.num_cpus >= 1 && cfg_.num_cpus <= 64);
  LBMF_CHECK(cfg_.sb_capacity >= 1);
  LBMF_CHECK(cfg_.cache_capacity >= 2);
  LBMF_CHECK(cfg_.line_words >= 1);
  cpus_.reserve(cfg_.num_cpus);
  for (std::size_t i = 0; i < cfg_.num_cpus; ++i) cpus_.emplace_back(cfg_);
}

void Machine::load_program(std::size_t cpu, Program p) {
  LBMF_CHECK(cpu < cpus_.size());
  // Registers this program can ever write. Registers outside the mask stay
  // zero forever, so the canonical encoding skips them (the encoding is
  // only ever compared between machines running the same programs).
  std::uint8_t mask = 0;
  for (const Instr& i : p.code) {
    switch (i.op) {
      case Op::kLoad:
      case Op::kLoadExclusive:
      case Op::kMovImm:
      case Op::kAddImm:
        LBMF_CHECK(i.reg < 8);
        mask |= static_cast<std::uint8_t>(1u << i.reg);
        break;
      default:
        break;
    }
  }
  cpus_[cpu].regs_written_mask = mask;
  cpus_[cpu].program = std::make_shared<const Program>(std::move(p));
}

Word Machine::memory(Addr a) const { return mem_.get(a); }

Word Machine::coherent_value(Addr a) const {
  const Addr base = line_base(a);
  for (const auto& c : cpus_) {
    const CacheLine* l = c.cache.peek(base);
    if (l != nullptr && is_dirty_state(l->state)) return l->at(line_off(a));
  }
  return mem_.get(a);
}

Addr Machine::line_base(Addr a) const noexcept {
  return a - (a % static_cast<Addr>(cfg_.line_words));
}

std::size_t Machine::line_off(Addr a) const noexcept {
  return a % cfg_.line_words;
}

LineData Machine::memory_line(Addr base) const {
  LineData out(cfg_.line_words);
  for (std::size_t i = 0; i < cfg_.line_words; ++i) {
    out[i] = memory(base + static_cast<Addr>(i));
  }
  return out;
}

void Machine::writeback_line(const CacheLine& l) {
  for (std::size_t i = 0; i < l.data.size(); ++i) {
    mem_.set(l.base + static_cast<Addr>(i), l.data[i]);
  }
}

bool Machine::action_enabled(std::size_t cpu, Action a) const {
  if (cpu >= cpus_.size()) return false;
  const CpuState& c = cpus_[cpu];
  switch (a) {
    case Action::Execute: {
      if (c.halted || c.program == nullptr) return false;
      // Locked RMWs are blocking instructions: their Execute action is
      // disabled until they can complete atomically. x86's `lock xchg`
      // drains the store buffer first (implicit full fence), and LOCK
      // additionally spins until the gate reads 0 — a disabled Execute
      // models the spin without adding retry states. Drain stays enabled,
      // so a CPU stalled here still makes its own stores visible.
      const Instr& i = c.program->code[c.pc];
      if (i.op == Op::kLock) {
        return c.sb.empty() && coherent_value(i.addr) == 0;
      }
      if (i.op == Op::kUnlock) return c.sb.empty();
      return true;
    }
    case Action::Drain:
      return !c.sb.empty();
    case Action::Interrupt:
      return true;  // interrupts can always arrive
  }
  return false;
}

void Machine::step(std::size_t cpu, Action a) {
  LBMF_CHECK(action_enabled(cpu, a));
  CpuState& c = cpus_[cpu];
  switch (a) {
    case Action::Execute:
      exec_instr(c);
      break;
    case Action::Drain:
      c.counters.cycles += complete_oldest(c);
      break;
    case Action::Interrupt:
      trace(c, static_cast<int>(EventKind::kInterrupt));
      c.counters.cycles += cfg_.cost_interrupt + flush_sb(c);
      break;
  }
}

bool Machine::finished() const {
  for (const auto& c : cpus_) {
    if (!c.halted || !c.sb.empty()) return false;
  }
  return true;
}

std::uint64_t Machine::run_round_robin(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!finished()) {
    bool progressed = false;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      if (action_enabled(i, Action::Execute)) {
        step(i, Action::Execute);
        ++steps;
        progressed = true;
      } else if (action_enabled(i, Action::Drain)) {
        step(i, Action::Drain);
        ++steps;
        progressed = true;
      }
      LBMF_CHECK_MSG(steps < max_steps, "simulated program did not terminate");
    }
    LBMF_CHECK_MSG(progressed, "simulated machine is wedged");
  }
  return steps;
}

std::uint64_t Machine::run_random(std::uint64_t seed,
                                  std::uint64_t max_steps) {
  Xoshiro256 rng(seed);
  std::uint64_t steps = 0;
  while (!finished()) {
    // Collect enabled (cpu, action) pairs; pick one uniformly.
    Choice enabled[128];
    std::size_t n = 0;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      if (action_enabled(i, Action::Execute)) {
        enabled[n++] = {static_cast<std::uint8_t>(i), Action::Execute};
      }
      if (action_enabled(i, Action::Drain)) {
        enabled[n++] = {static_cast<std::uint8_t>(i), Action::Drain};
      }
    }
    LBMF_CHECK_MSG(n > 0, "simulated machine is wedged");
    const Choice pick = enabled[rng.next_below(n)];
    step(pick.cpu, pick.action);
    ++steps;
    LBMF_CHECK_MSG(steps < max_steps, "simulated program did not terminate");
  }
  return steps;
}

std::size_t Machine::cpus_in_cs() const {
  std::size_t n = 0;
  for (const auto& c : cpus_) n += c.in_cs ? 1 : 0;
  return n;
}

Mesi Machine::line_state(std::size_t i, Addr a) const {
  const CacheLine* l = cpus_[i].cache.peek(line_base(a));
  return l == nullptr ? Mesi::Invalid : l->state;
}

std::uint64_t Machine::total_cycles() const {
  std::uint64_t t = 0;
  for (const auto& c : cpus_) t += c.counters.cycles;
  return t;
}

void Machine::trace(const CpuState& c, int kind_int, Addr a, Word v,
                    std::string detail) const {
  if (trace_ == nullptr) return;
  const auto cpu_index =
      static_cast<std::uint8_t>(&c - cpus_.data());
  trace_->record(cpu_index, static_cast<EventKind>(kind_int), a, v,
                 std::move(detail));
}

void Machine::deliver_interrupt(std::size_t cpu) {
  LBMF_CHECK(cpu < cpus_.size());
  step(cpu, Action::Interrupt);
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

void Machine::exec_instr(CpuState& c) {
  LBMF_CHECK(c.program != nullptr && !c.halted);
  LBMF_CHECK(c.pc >= 0 &&
             static_cast<std::size_t>(c.pc) < c.program->code.size());
  const Instr& i = c.program->code[c.pc];
  ++c.counters.instructions;
  if (trace_ != nullptr) {
    trace(c, static_cast<int>(EventKind::kExec), i.addr, i.imm,
          sim::to_string(i));
  }
  std::int32_t next_pc = c.pc + 1;

  switch (i.op) {
    case Op::kLoad: {
      ++c.counters.loads;
      if (auto fwd = c.sb.forwarded_value(i.addr)) {
        // Store-buffer forwarding: the CPU always sees its own stores.
        c.regs[i.reg] = *fwd;
        c.counters.cycles += cfg_.cost_load_hit;
      } else if (CacheLine* l = c.cache.touch(line_base(i.addr))) {
        c.regs[i.reg] = l->at(line_off(i.addr));
        c.counters.cycles += cfg_.cost_load_hit;
      } else {
        Word v = 0;
        c.counters.cycles += bus_read(c, i.addr, v);
        c.regs[i.reg] = v;
      }
      break;
    }

    case Op::kStore:
    case Op::kStoreReg: {
      ++c.counters.stores;
      const Word v = (i.op == Op::kStore) ? i.imm : c.regs[i.reg];
      if (c.sb.full()) {
        // Structural stall: the oldest entry must complete first.
        c.counters.cycles += complete_oldest(c);
      }
      StoreEntry e;
      e.addr = i.addr;
      e.value = v;
      // This store is "the store associated with the l-mfence" iff the link
      // is armed for its address at commit time (Sec. 3).
      e.guarded = c.le_bit && c.le_addr == i.addr;
      c.sb.push(e);
      c.counters.cycles += cfg_.cost_store_commit;
      break;
    }

    case Op::kLoadExclusive: {
      ++c.counters.loads;
      // LE is "very similar to a regular load, except the requirement for
      // Exclusive state" (Sec. 3).
      const CacheLine* l = c.cache.peek(line_base(i.addr));
      if (l != nullptr && is_exclusive_state(l->state)) {
        c.regs[i.reg] =
            c.cache.touch(line_base(i.addr))->at(line_off(i.addr));
        c.counters.cycles += cfg_.cost_load_hit;
      } else {
        Word v = 0;
        c.counters.cycles += bus_read_exclusive(c, i.addr, v);
        c.regs[i.reg] = v;
      }
      break;
    }

    case Op::kMfence: {
      ++c.counters.mfences;
      c.counters.cycles += cfg_.cost_mfence_base + flush_sb(c);
      break;
    }

    case Op::kSetLink: {
      if (!cfg_.le_st_enabled) break;  // ablated hardware: link never arms
      if (c.le_bit && c.le_addr != i.addr) {
        // Second l-mfence with a different guarded location while the first
        // link is live: clear and flush before proceeding (Sec. 3).
        ++c.counters.link_breaks_second;
        trace(c, static_cast<int>(EventKind::kGuardSecond), c.le_addr);
        clear_link(c);
        c.counters.cycles += flush_sb(c);
      }
      c.le_bit = true;
      c.le_addr = i.addr;
      ++c.counters.links_armed;
      trace(c, static_cast<int>(EventKind::kLinkArm), i.addr);
      c.counters.cycles += cfg_.cost_reg_op;
      break;
    }

    case Op::kBranchLinkSet:
      if (c.le_bit) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kMovImm:
      c.regs[i.reg] = i.imm;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kAddImm:
      c.regs[i.reg] += i.imm;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kBranchEq:
      if (c.regs[i.reg] == i.imm) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kBranchNe:
      if (c.regs[i.reg] != i.imm) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kJump:
      next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kCsEnter:
      LBMF_CHECK_MSG(!c.in_cs, "nested critical section in litmus program");
      c.in_cs = true;
      break;

    case Op::kCsExit:
      LBMF_CHECK_MSG(c.in_cs, "CS_EXIT without CS_ENTER");
      c.in_cs = false;
      break;

    case Op::kDelay:
      c.counters.cycles += static_cast<std::uint64_t>(i.imm);
      break;

    case Op::kHalt:
      c.halted = true;
      next_pc = c.pc;
      break;

    case Op::kLock:
    case Op::kUnlock: {
      // action_enabled guaranteed an empty store buffer and, for LOCK, a
      // zero gate. The RMW bypasses the buffer entirely: acquire the line
      // exclusively and write in one atomic simulator step, exactly the
      // shape of complete_oldest()'s commit path.
      ++c.counters.stores;
      c.counters.cycles += acquire_exclusive(c, i.addr);
      CacheLine* l = c.cache.touch(line_base(i.addr));
      LBMF_CHECK_MSG(l != nullptr, "locked RMW lost its cache line");
      l->at(line_off(i.addr)) = (i.op == Op::kLock) ? 1 : 0;
      l->state = Mesi::Modified;
      c.counters.cycles += cfg_.cost_store_commit;
      break;
    }
  }

  c.pc = next_pc;
}

// ---------------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------------

void Machine::clear_link(CpuState& c) {
  c.le_bit = false;
  c.le_addr = kInvalidAddr;
}

std::uint64_t Machine::notify_guard_remote(CpuState& owner, Addr base) {
  // The cache controller watches the *line* holding the guarded location:
  // with multi-word lines a remote access to a neighbouring word (false
  // sharing) fires the guard too.
  if (!owner.le_bit || line_base(owner.le_addr) != base) return 0;
  if (owner.flushing) return 0;  // flush already in progress up-stack
  // Sec. 3: the processor clears LEBit/LEAddr, flushes the store buffer and
  // only then replies, so the requester both waits out the flush and is
  // guaranteed to see the completed guarded store.
  ++owner.counters.link_breaks_remote;
  trace(owner, static_cast<int>(EventKind::kGuardRemote), base);
  clear_link(owner);
  owner.flushing = true;
  const std::uint64_t flush_cost = flush_sb(owner);
  owner.flushing = false;
  owner.counters.cycles += flush_cost;
  return flush_cost;
}

void Machine::handle_self_eviction(CpuState& c, const CacheLine& evicted) {
  if (is_dirty_state(evicted.state)) {
    writeback_line(evicted);  // M, or MOESI's O
    trace(c, static_cast<int>(EventKind::kWriteback), evicted.base);
  }
  if (c.le_bit && line_base(c.le_addr) == evicted.base) {
    // The cache controller can no longer watch the guarded line (Sec. 3):
    // break the link and serialize.
    ++c.counters.link_breaks_evict;
    trace(c, static_cast<int>(EventKind::kGuardEvict), evicted.base);
    clear_link(c);
    if (!c.flushing) {
      c.flushing = true;
      c.counters.cycles += flush_sb(c);
      c.flushing = false;
    }
  }
}

std::uint64_t Machine::bus_read(CpuState& c, Addr a, Word& out) {
  ++c.counters.bus_transactions;
  const Addr base = line_base(a);
  trace(c, static_cast<int>(EventKind::kBusRead), base);
  std::uint64_t latency = cfg_.cost_bus_transfer;

  bool someone_else_holds = false;
  LineData authoritative = memory_line(base);
  for (auto& other : cpus_) {
    if (&other == &c) continue;
    const CacheLine* l = other.cache.peek(base);
    if (l == nullptr) continue;
    someone_else_holds = true;
    if (is_exclusive_state(l->state)) {
      // A downgrade request: fire the guard first, then surrender
      // exclusivity. The guard flush may have evicted or rewritten the
      // line, so re-look it up.
      latency += notify_guard_remote(other, base);
      if (const CacheLine* after = other.cache.peek(base)) {
        if (after->state == Mesi::Modified) {
          if (cfg_.protocol == Protocol::kMoesi) {
            // MOESI: keep the dirty data, supply it to the reader, and
            // stay responsible for the eventual writeback.
            other.cache.set_state(base, Mesi::Owned);
          } else {
            writeback_line(*after);
            other.cache.set_state(base, Mesi::Shared);
          }
          authoritative = after->data;
        } else if (after->state == Mesi::Exclusive) {
          other.cache.set_state(base, Mesi::Shared);
          authoritative = after->data;
        }
      }
      latency += cfg_.cost_bus_transfer;  // transfer/ack hop
    } else if (l->state == Mesi::Owned) {
      // Owner supplies the data; no state change, memory stays stale.
      authoritative = l->data;
      latency += cfg_.cost_bus_transfer;
    }
  }

  out = authoritative[line_off(a)];
  const Mesi fill =
      someone_else_holds || cfg_.protocol == Protocol::kMsi
          ? Mesi::Shared
          : Mesi::Exclusive;  // E exists in both MESI and MOESI
  if (auto evicted = c.cache.insert(base, fill, std::move(authoritative))) {
    handle_self_eviction(c, *evicted);
  }
  return latency;
}

std::uint64_t Machine::bus_read_exclusive(CpuState& c, Addr a, Word& out) {
  ++c.counters.bus_transactions;
  const Addr base = line_base(a);
  trace(c, static_cast<int>(EventKind::kBusReadX), base);
  std::uint64_t latency = cfg_.cost_bus_transfer;

  // Our own copy may be the authoritative dirty one (e.g. Owned after a
  // downgrade); fold it into memory before we rebuild the line.
  if (const CacheLine* mine = c.cache.peek(base)) {
    if (is_dirty_state(mine->state)) writeback_line(*mine);
  }
  for (auto& other : cpus_) {
    if (&other == &c) continue;
    const CacheLine* l = other.cache.peek(base);
    if (l == nullptr) continue;
    if (is_exclusive_state(l->state)) {
      latency += notify_guard_remote(other, base);
      if (const CacheLine* after = other.cache.peek(base)) {
        if (is_dirty_state(after->state)) writeback_line(*after);
      }
      latency += cfg_.cost_bus_transfer;
    } else if (l->state == Mesi::Owned) {
      writeback_line(*l);
      latency += cfg_.cost_bus_transfer;
    }
    other.cache.erase(base);  // invalidate every remote copy
  }

  LineData data = memory_line(base);
  out = data[line_off(a)];
  // MSI has no Exclusive state: an exclusive fill lands directly in M.
  const Mesi fill = cfg_.protocol == Protocol::kMsi ? Mesi::Modified
                                                    : Mesi::Exclusive;
  if (auto evicted = c.cache.insert(base, fill, std::move(data))) {
    handle_self_eviction(c, *evicted);
  }
  return latency;
}

std::uint64_t Machine::acquire_exclusive(CpuState& c, Addr a) {
  const CacheLine* l = c.cache.peek(line_base(a));
  if (l != nullptr && is_exclusive_state(l->state)) return 0;
  Word dummy = 0;
  return bus_read_exclusive(c, a, dummy);
}

std::uint64_t Machine::complete_oldest(CpuState& c) {
  LBMF_CHECK(!c.sb.empty());
  const StoreEntry e = c.sb.pop_oldest();
  trace(c, static_cast<int>(EventKind::kDrain), e.addr, e.value);
  std::uint64_t latency = cfg_.cost_drain_entry;
  latency += acquire_exclusive(c, e.addr);
  CacheLine* l = c.cache.touch(line_base(e.addr));
  LBMF_CHECK_MSG(l != nullptr, "store completion lost its cache line");
  l->at(line_off(e.addr)) = e.value;
  l->state = Mesi::Modified;
  ++c.counters.sb_drains;
  if (e.guarded && c.le_bit && c.le_addr == e.addr) {
    // "Upon completing the store, the processor also clears LEBit and
    // LEAddr" (Sec. 3). With *consecutive same-location l-mfences* (which
    // Sec. 3 explicitly allows without an intervening flush) several
    // guarded stores can be buffered at once; the link must survive until
    // the newest completes, or a remote reader could be handed the older
    // value without triggering a flush of the newer one — violating the
    // Definition 2 ordering. The line may stay in M either way.
    bool newer_guarded_pending = false;
    for (const StoreEntry& rest : c.sb.entries()) {
      if (rest.guarded && rest.addr == e.addr) {
        newer_guarded_pending = true;
        break;
      }
    }
    if (!newer_guarded_pending) {
      ++c.counters.link_clears_complete;
      trace(c, static_cast<int>(EventKind::kLinkComplete), e.addr);
      clear_link(c);
    }
  }
  return latency;
}

std::uint64_t Machine::flush_sb(CpuState& c) {
  std::uint64_t latency = 0;
  while (!c.sb.empty()) latency += complete_oldest(c);
  return latency;
}

// ---------------------------------------------------------------------------
// Invariants and canonical state
// ---------------------------------------------------------------------------

std::optional<std::string> Machine::check_coherence() const {
  // Def. 3: once the guarded store has committed (a guarded entry sits in
  // the buffer) with LEBit still set, the guarded line must be in E/M
  // locally — any event that takes the line out of E/M must have cleared
  // LEBit on its way. Between SetLink and LE the bit may be set without the
  // line; that window is legal.
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    const CpuState& c = cpus_[i];
    if (!c.le_bit) continue;
    bool has_guarded_entry = false;
    for (const StoreEntry& e : c.sb.entries()) {
      if (e.guarded && e.addr == c.le_addr) has_guarded_entry = true;
    }
    if (!has_guarded_entry) continue;
    const CacheLine* g = c.cache.peek(c.le_addr);
    if (g == nullptr || !is_exclusive_state(g->state)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "armed link without E/M line on cpu %zu",
                    i);
      return std::string(buf);
    }
  }
  // Single-writer-multiple-reader, protocol-conformance and value
  // agreement invariants, per line.
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    for (const CacheLine& l : cpus_[i].cache.lines()) {
      // Protocol conformance: which states may exist at all.
      if (cfg_.protocol == Protocol::kMsi && l.state == Mesi::Exclusive) {
        return "Exclusive state present under MSI";
      }
      if (cfg_.protocol != Protocol::kMoesi && l.state == Mesi::Owned) {
        return "Owned state present outside MOESI";
      }
      if (l.data.size() != cfg_.line_words) {
        return "cache line has wrong width";
      }

      std::size_t exclusive_holders = 0;  // E or M
      std::size_t owned_holders = 0;      // O (MOESI)
      std::size_t sharers = 0;
      LineData authoritative = memory_line(l.base);
      for (std::size_t j = 0; j < cpus_.size(); ++j) {
        const CacheLine* o = cpus_[j].cache.peek(l.base);
        if (o == nullptr) continue;
        if (is_exclusive_state(o->state)) {
          ++exclusive_holders;
        } else if (o->state == Mesi::Owned) {
          ++owned_holders;
        } else if (o->state == Mesi::Shared) {
          ++sharers;
        }
        if (is_dirty_state(o->state)) authoritative = o->data;
      }
      if (exclusive_holders > 1 ||
          (exclusive_holders == 1 && (sharers > 0 || owned_holders > 0)) ||
          owned_holders > 1) {
        char buf[112];
        std::snprintf(buf, sizeof(buf),
                      "SWMR violated at line %u: %zu E/M, %zu O, %zu S",
                      l.base, exclusive_holders, owned_holders, sharers);
        return std::string(buf);
      }
      // Non-dirty copies must agree with the authoritative data (the
      // dirty owner's line under MOESI, memory otherwise).
      if ((l.state == Mesi::Shared || l.state == Mesi::Exclusive) &&
          l.data != authoritative) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "clean line stale at line %u on cpu %zu", l.base, i);
        return std::string(buf);
      }
    }
  }
  return std::nullopt;
}

std::string Machine::canonical_state() const {
  std::string s;
  s.reserve(256);
  append_canonical(s);
  return s;
}

Fingerprint Machine::fingerprint(std::string& scratch) const {
  scratch.clear();
  append_canonical(scratch);
  return lbmf::hash128(scratch.data(), scratch.size());
}

bool Machine::action_is_local(std::size_t cpu, Action a) const {
  LBMF_CHECK(action_enabled(cpu, a));
  const CpuState& c = cpus_[cpu];
  switch (a) {
    case Action::Drain:
      // Completing a store acquires exclusivity, writes the cache and may
      // fire remote guards; even an E/M-local completion races with remote
      // reads of the line's old value.
      return false;
    case Action::Interrupt:
      return false;  // flushes the store buffer (bus traffic)
    case Action::Execute:
      break;
  }
  const Instr& i = c.program->code[c.pc];
  switch (i.op) {
    case Op::kMovImm:
    case Op::kAddImm:
    case Op::kBranchEq:
    case Op::kBranchNe:
    case Op::kJump:
    case Op::kDelay:
    case Op::kHalt:
      return true;  // pc/registers only
    case Op::kStore:
    case Op::kStoreReg:
      // A plain SB push touches only this CPU's buffer — but only while no
      // link is armed: with le_bit set a remote access can flush the buffer
      // (guard fire), so buffer contents interact with remote actions, and
      // the pushed entry's `guarded` flag itself depends on the link.
      return !c.le_bit && !c.sb.full();
    case Op::kMfence:
      return c.sb.empty();  // nothing to drain: cost accounting only
    case Op::kSetLink:
    case Op::kBranchLinkSet:
      // le_bit is cleared by remote downgrades/invalidations, so anything
      // touching it is globally visible — unless the LE/ST hardware is
      // ablated, in which case the bit is permanently clear and both ops
      // degenerate to register ops.
      return !cfg_.le_st_enabled;
    case Op::kCsEnter:
    case Op::kCsExit:
      // Architecturally local, but visible to the mutual-exclusion
      // property: reordering them against other CPUs' actions changes
      // which cpus_in_cs() configurations the explorer can observe.
      return false;
    case Op::kLoad:
    case Op::kLoadExclusive:
      return false;  // cache/LRU/bus interaction
    case Op::kLock:
    case Op::kUnlock:
      // Atomic RMWs write a globally watched location (and their
      // enabledness depends on it), so they never commute with remote
      // actions.
      return false;
  }
  return false;
}

void Machine::append_cpu_block(const CpuState& c, std::string& s) const {
  auto put32 = [&s](std::uint32_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put64 = [&s](std::uint64_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(static_cast<std::uint32_t>(c.pc));
  // Only the registers the loaded program can write (regs_written_mask):
  // the rest are zero in every reachable state and would just dilute the
  // encoding this runs once per explored transition.
  for (std::uint8_t m = c.regs_written_mask, i = 0; m != 0; m >>= 1, ++i) {
    if (m & 1u) put64(static_cast<std::uint64_t>(c.regs[i]));
  }
  s.push_back(static_cast<char>((c.halted ? 1 : 0) | (c.in_cs ? 2 : 0) |
                                (c.le_bit ? 4 : 0)));
  put32(c.le_addr);
  put32(static_cast<std::uint32_t>(c.sb.size()));
  for (const StoreEntry& e : c.sb.entries()) {
    put32(e.addr);
    put64(static_cast<std::uint64_t>(e.value));
    s.push_back(e.guarded ? 1 : 0);
  }
  // Cache lines in base order (a Cache invariant — no sorting here), with
  // LRU encoded as eviction *rank* (the fine-grained stamp values differ
  // between equivalent histories). Ranks come from counting smaller
  // stamps: quadratic in residency, but branch-free and allocation-free,
  // which beats sorting a scratch array for every serialized state.
  const std::vector<CacheLine>& lines = c.cache.lines();
  const std::size_t n = lines.size();
  put32(static_cast<std::uint32_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const CacheLine& l = lines[i];
    put32(l.base);
    s.push_back(static_cast<char>(l.state));
    s.append(reinterpret_cast<const char*>(l.data.data()),
             l.data.size() * sizeof(Word));
    std::uint32_t rank = 0;
    for (std::size_t j = 0; j < n; ++j) {
      rank += lines[j].lru < l.lru ? 1u : 0u;
    }
    put32(rank);
  }
}

void Machine::append_canonical(std::string& s) const {
  if (sym_groups_ == nullptr) {
    for (const auto& c : cpus_) append_cpu_block(c, s);
  } else {
    // Thread-symmetry canonicalization: serialize each grouped CPU's block,
    // sort the blocks lexicographically within the group, and emit the
    // sorted blocks at the group members' positions. A CPU block is fully
    // self-contained (pc through cache lines), so sorting blocks realizes
    // exactly the private-state relabeling of the automorphism argued in
    // the header — and handles non-contiguous groups for free. Ungrouped
    // CPUs serialize in place. The scratch buffers are thread_local: this
    // runs once per explored transition on every parallel worker.
    const auto& groups = *sym_groups_;
    thread_local std::vector<int> gid;
    thread_local std::vector<std::vector<std::string>> sorted;
    thread_local std::vector<std::size_t> next;
    gid.assign(cpus_.size(), -1);
    if (sorted.size() < groups.size()) sorted.resize(groups.size());
    next.assign(groups.size(), 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      std::vector<std::string>& blocks = sorted[g];
      blocks.resize(groups[g].size());
      for (std::size_t j = 0; j < groups[g].size(); ++j) {
        const std::uint8_t cpu = groups[g][j];
        gid[cpu] = static_cast<int>(g);
        blocks[j].clear();
        append_cpu_block(cpus_[cpu], blocks[j]);
      }
      std::sort(blocks.begin(), blocks.end());
    }
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      if (gid[i] < 0) {
        append_cpu_block(cpus_[i], s);
      } else {
        s += sorted[static_cast<std::size_t>(gid[i])][next[gid[i]]++];
      }
    }
  }
  auto put32 = [&s](std::uint32_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put64 = [&s](std::uint64_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(static_cast<std::uint32_t>(mem_.size()));
  for (const auto& [a, v] : mem_) {
    put32(a);
    put64(static_cast<std::uint64_t>(v));
  }
}

void Machine::set_symmetric_groups(
    std::vector<std::vector<std::uint8_t>> groups) {
  std::vector<bool> used(cpus_.size(), false);
  for (const auto& g : groups) {
    LBMF_CHECK_MSG(g.size() >= 2, "symmetric group needs >= 2 CPUs");
    for (const std::uint8_t m : g) {
      LBMF_CHECK_MSG(m < cpus_.size(), "symmetric group CPU out of range");
      LBMF_CHECK_MSG(!used[m], "CPU in more than one symmetric group");
      used[m] = true;
      LBMF_CHECK_MSG(cpus_[m].program != nullptr &&
                         cpus_[g[0]].program != nullptr &&
                         cpus_[m].program->code == cpus_[g[0]].program->code,
                     "symmetric group CPUs must run identical programs");
    }
  }
  if (groups.empty()) {
    sym_groups_.reset();
  } else {
    sym_groups_ = std::make_shared<const std::vector<std::vector<std::uint8_t>>>(
        std::move(groups));
  }
}

std::size_t Machine::auto_symmetry() {
  std::vector<std::vector<std::uint8_t>> groups;
  std::vector<bool> used(cpus_.size(), false);
  std::size_t grouped = 0;
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    if (used[i] || cpus_[i].program == nullptr) continue;
    std::vector<std::uint8_t> g{static_cast<std::uint8_t>(i)};
    for (std::size_t j = i + 1; j < cpus_.size(); ++j) {
      if (used[j] || cpus_[j].program == nullptr) continue;
      if (cpus_[j].program->code == cpus_[i].program->code) {
        g.push_back(static_cast<std::uint8_t>(j));
        used[j] = true;
      }
    }
    if (g.size() >= 2) {
      grouped += g.size();
      groups.push_back(std::move(g));
    }
  }
  set_symmetric_groups(std::move(groups));
  return grouped;
}

const std::vector<std::vector<std::uint8_t>>& Machine::symmetric_groups()
    const {
  static const std::vector<std::vector<std::uint8_t>> kEmpty;
  return sym_groups_ == nullptr ? kEmpty : *sym_groups_;
}

std::uint64_t Machine::symmetry_orbit() const noexcept {
  std::uint64_t orbit = 1;
  if (sym_groups_ == nullptr) return orbit;
  for (const auto& g : *sym_groups_) {
    for (std::uint64_t k = 2; k <= g.size(); ++k) orbit *= k;
  }
  return orbit;
}

namespace {
constexpr std::uint32_t kArchMagic = 0x4C42'4152u;  // "LBAR"
}  // namespace

void Machine::save_arch(std::string& out) const {
  auto put32 = [&out](std::uint32_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put64 = [&out](std::uint64_t v) {
    out.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put32(kArchMagic);
  put32(static_cast<std::uint32_t>(cpus_.size()));
  for (const CpuState& c : cpus_) {
    put32(static_cast<std::uint32_t>(c.pc));
    for (const Word r : c.regs) put64(static_cast<std::uint64_t>(r));
    out.push_back(static_cast<char>((c.halted ? 1 : 0) | (c.in_cs ? 2 : 0) |
                                    (c.le_bit ? 4 : 0) |
                                    (c.flushing ? 8 : 0)));
    put32(c.le_addr);
    put32(static_cast<std::uint32_t>(c.sb.size()));
    for (const StoreEntry& e : c.sb.entries()) {
      put32(e.addr);
      put64(static_cast<std::uint64_t>(e.value));
      out.push_back(e.guarded ? 1 : 0);
    }
    const std::vector<CacheLine>& lines = c.cache.lines();
    put32(static_cast<std::uint32_t>(lines.size()));
    for (const CacheLine& l : lines) {
      put32(l.base);
      out.push_back(static_cast<char>(l.state));
      put32(static_cast<std::uint32_t>(l.data.size()));
      for (std::size_t w = 0; w < l.data.size(); ++w) {
        put64(static_cast<std::uint64_t>(l.data[w]));
      }
      put64(l.lru);
    }
  }
  put32(static_cast<std::uint32_t>(mem_.size()));
  for (const auto& [a, v] : mem_) {
    put32(a);
    put64(static_cast<std::uint64_t>(v));
  }
}

bool Machine::restore_arch(std::string_view in) {
  std::size_t pos = 0;
  auto get32 = [&in, &pos](std::uint32_t* v) {
    if (pos + sizeof(*v) > in.size()) return false;
    std::memcpy(v, in.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  };
  auto get64 = [&in, &pos](std::uint64_t* v) {
    if (pos + sizeof(*v) > in.size()) return false;
    std::memcpy(v, in.data() + pos, sizeof(*v));
    pos += sizeof(*v);
    return true;
  };
  auto get8 = [&in, &pos](std::uint8_t* v) {
    if (pos >= in.size()) return false;
    *v = static_cast<std::uint8_t>(in[pos++]);
    return true;
  };
  std::uint32_t magic = 0, ncpus = 0;
  if (!get32(&magic) || magic != kArchMagic) return false;
  if (!get32(&ncpus) || ncpus != cpus_.size()) return false;
  for (CpuState& c : cpus_) {
    std::uint32_t pc = 0;
    if (!get32(&pc)) return false;
    c.pc = static_cast<std::int32_t>(pc);
    for (Word& r : c.regs) {
      std::uint64_t v = 0;
      if (!get64(&v)) return false;
      r = static_cast<Word>(v);
    }
    std::uint8_t flags = 0;
    if (!get8(&flags)) return false;
    c.halted = (flags & 1) != 0;
    c.in_cs = (flags & 2) != 0;
    c.le_bit = (flags & 4) != 0;
    c.flushing = (flags & 8) != 0;
    if (!get32(&c.le_addr)) return false;
    std::uint32_t nsb = 0;
    if (!get32(&nsb)) return false;
    c.sb.clear();
    for (std::uint32_t i = 0; i < nsb; ++i) {
      StoreEntry e;
      std::uint64_t v = 0;
      std::uint8_t g = 0;
      if (!get32(&e.addr) || !get64(&v) || !get8(&g)) return false;
      e.value = static_cast<Word>(v);
      e.guarded = g != 0;
      if (c.sb.full()) return false;
      c.sb.push(e);
    }
    std::uint32_t nlines = 0;
    if (!get32(&nlines)) return false;
    if (nlines > c.cache.capacity()) return false;
    std::vector<CacheLine> lines(nlines);
    for (CacheLine& l : lines) {
      std::uint8_t state = 0;
      std::uint32_t nwords = 0;
      if (!get32(&l.base) || !get8(&state) || !get32(&nwords)) return false;
      if (nwords != cfg_.line_words) return false;
      l.state = static_cast<Mesi>(state);
      l.data = LineData(nwords);
      for (std::uint32_t w = 0; w < nwords; ++w) {
        std::uint64_t v = 0;
        if (!get64(&v)) return false;
        l.data[w] = static_cast<Word>(v);
      }
      if (!get64(&l.lru)) return false;
    }
    if (!std::is_sorted(lines.begin(), lines.end(),
                        [](const CacheLine& a, const CacheLine& b) {
                          return a.base < b.base;
                        })) {
      return false;
    }
    c.cache.restore_lines(std::move(lines));
  }
  std::uint32_t nmem = 0;
  if (!get32(&nmem)) return false;
  mem_.clear();
  for (std::uint32_t i = 0; i < nmem; ++i) {
    std::uint32_t a = 0;
    std::uint64_t v = 0;
    if (!get32(&a) || !get64(&v)) return false;
    mem_.set(a, static_cast<Word>(v));
  }
  return pos == in.size();
}

void Machine::set_pc(std::size_t cpu, std::int32_t pc) {
  LBMF_CHECK(cpu < cpus_.size());
  LBMF_CHECK(cpus_[cpu].program != nullptr && pc >= 0 &&
             static_cast<std::size_t>(pc) <= cpus_[cpu].program->code.size());
  cpus_[cpu].pc = pc;
}

}  // namespace lbmf::sim
