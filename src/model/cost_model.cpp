#include "lbmf/model/cost_model.hpp"

#include <algorithm>

namespace lbmf::model {

const char* to_string(FenceImpl f) noexcept {
  switch (f) {
    case FenceImpl::kMfence: return "mfence";
    case FenceImpl::kSignal: return "signal";
    case FenceImpl::kSignalAck: return "signal+ack";
    case FenceImpl::kLest: return "le/st";
    case FenceImpl::kNone: return "none";
  }
  return "?";
}

std::optional<FenceImpl> fence_impl_from_string(std::string_view s) noexcept {
  if (s == "mfence") return FenceImpl::kMfence;
  if (s == "signal") return FenceImpl::kSignal;
  if (s == "signal+ack") return FenceImpl::kSignalAck;
  if (s == "le/st") return FenceImpl::kLest;
  if (s == "none") return FenceImpl::kNone;
  return std::nullopt;
}

double victim_fence_cycles(FenceImpl f, const CostTable& c) noexcept {
  switch (f) {
    case FenceImpl::kMfence: return c.mfence_cycles;
    case FenceImpl::kSignal:
    case FenceImpl::kSignalAck: return c.compiler_fence_cycles;
    case FenceImpl::kLest: return c.lest_victim_cycles;
    case FenceImpl::kNone: return 0.0;
  }
  return 0.0;
}

double remote_serialize_cycles(FenceImpl f, const CostTable& c) noexcept {
  switch (f) {
    case FenceImpl::kMfence: return c.symmetric_steal_cycles;
    case FenceImpl::kSignal: return c.signal_roundtrip_cycles;
    case FenceImpl::kSignalAck: return c.ack_roundtrip_cycles;
    case FenceImpl::kLest: return c.lest_roundtrip_cycles;
    case FenceImpl::kNone: return 0.0;
  }
  return 0.0;
}

double primary_penalty_cycles(FenceImpl f, const CostTable& c) noexcept {
  switch (f) {
    case FenceImpl::kMfence: return 0.0;
    case FenceImpl::kSignal: return c.signal_primary_penalty_cycles;
    case FenceImpl::kSignalAck:
      // The heuristic replaces most signals with polled acks, which cost
      // the primary a cache miss at worst.
      return 10.0;
    case FenceImpl::kLest: return c.lest_primary_penalty_cycles;
    case FenceImpl::kNone: return 0.0;
  }
  return 0.0;
}

double ws_predicted_cycles(const WsCounts& w, std::size_t workers,
                           FenceImpl f, const CostTable& c) noexcept {
  const double p = static_cast<double>(std::max<std::size_t>(workers, 1));
  const double spawns = static_cast<double>(w.spawns);
  const double attempts = static_cast<double>(w.steal_attempts);
  // Work and victim-path fences are spread over the workers; every steal
  // attempt costs its thief a remote round trip and its victim a penalty
  // (also spread: thieves are distinct workers).
  const double victim_side = w.work_cycles + spawns * victim_fence_cycles(f, c);
  const double steal_side =
      attempts * (remote_serialize_cycles(f, c) + primary_penalty_cycles(f, c));
  return (victim_side + steal_side) / p;
}

double ws_relative_time(const WsCounts& w, std::size_t workers, FenceImpl f,
                        const CostTable& c) noexcept {
  const double base = ws_predicted_cycles(w, workers, FenceImpl::kMfence, c);
  return base <= 0.0 ? 0.0 : ws_predicted_cycles(w, workers, f, c) / base;
}

double rw_read_throughput(const RwParams& p, FenceImpl f,
                          const CostTable& c) noexcept {
  const double threads = static_cast<double>(std::max<std::size_t>(p.threads, 1));
  const double reads_per_period = p.read_write_ratio / threads;  // per thread
  const double read_cost = p.read_work_cycles + victim_fence_cycles(f, c);
  // Writer exclusion round: one serialize + wait per *other* registered
  // reader, executed serially by the writer while readers are held out.
  const double write_round =
      p.write_work_cycles +
      (threads - 1) *
          (remote_serialize_cycles(f, c) + primary_penalty_cycles(f, c));
  // One period per thread: N/P reads then one write. Writers are serialized
  // by the gate, so the write rounds of all P threads stack up while reads
  // only progress outside write rounds; cycle cost of a full system period:
  const double period_cycles =
      reads_per_period * read_cost + write_round * threads / threads +
      // amortized gate queueing: P writers per period, one at a time.
      (threads - 1) * write_round / threads;
  const double reads_per_cycle = reads_per_period / period_cycles;
  return reads_per_cycle * threads;  // system throughput
}

double rw_relative_throughput(const RwParams& p, FenceImpl f,
                              const CostTable& c) noexcept {
  const double base = rw_read_throughput(p, FenceImpl::kMfence, c);
  return base <= 0.0 ? 0.0 : rw_read_throughput(p, f, c) / base;
}

}  // namespace lbmf::model
