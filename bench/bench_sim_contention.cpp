// E9 (ablation) — where does l-mfence stop paying off? The paper's premise:
// "performance benefit is obtained if the latency avoided by T1 is greater
// than the communication overhead born by T2" (Sec. 1). We sweep the number
// of remote probes of the guarded location during a fixed 1000-iteration
// primary Dekker loop and report the primary's simulated cycles under:
//
//   mfence   — program-based fence, cost independent of contention
//   le/st    — l-mfence in hardware: tiny per-probe flush
//   signal   — l-mfence software prototype: each probe interrupts the
//              primary (~10k cycles), the cost that sinks heat/cholesky/lu
//              in Fig. 5(b)
//
// Expected shape: le/st beats mfence at every probe rate; signal beats
// mfence only while probes are rare, with a crossover around
// (mfence_saving_per_iter * iters) / interrupt_cost probes.

#include <cstdio>

#include "lbmf/sim/litmus.hpp"
#include "lbmf/sim/machine.hpp"

using namespace lbmf::sim;

namespace {

constexpr int kIters = 1000;

/// Primary cycles for the solo loop with `probes` remote reads of the
/// guarded flag spread evenly across the run. `kind` picks the primary's
/// fence; interrupts simulate the signal prototype instead of bus probes.
std::uint64_t run_with_probes(FenceKind kind, int probes,
                              bool probes_are_interrupts) {
  SimConfig cfg;
  cfg.num_cpus = 2;
  Machine m(cfg);

  ProgramBuilder p(std::string("loop-") + to_string(kind));
  p.mov(2, kIters);
  p.label("top");
  if (kind == FenceKind::kLmfence) {
    p.lmfence(addr::kFlag0, 1);
  } else {
    p.store(addr::kFlag0, 1);
    if (kind == FenceKind::kMfence) p.mfence();
  }
  p.load(reg::kObs0, addr::kFlag1);
  p.delay(20);  // the critical-section work
  p.store(addr::kFlag0, 0);
  p.add(2, -1);
  p.branch_ne(2, 0, "top");
  p.halt();
  m.load_program(0, p.build());

  // Secondary: `probes` spaced loads of the guarded flag (bus probes).
  ProgramBuilder s("prober");
  for (int i = 0; i < (probes_are_interrupts ? 0 : probes); ++i) {
    s.load(reg::kObs0, addr::kFlag0);
    s.mfence();  // drop any state between probes
  }
  s.halt();
  m.load_program(1, s.build());

  // Interleave: primary runs; the prober (or an interrupt) fires every
  // `gap` primary instructions.
  const int gap = probes > 0 ? (kIters * 8) / probes : 1 << 30;
  int since = 0;
  int fired = 0;
  while (m.action_enabled(0, Action::Execute)) {
    m.step(0, Action::Execute);
    if (++since >= gap && fired < probes) {
      since = 0;
      ++fired;
      if (probes_are_interrupts) {
        m.deliver_interrupt(0);
      } else {
        // Let the prober issue its next load (plus its mfence).
        if (m.action_enabled(1, Action::Execute)) {
          m.step(1, Action::Execute);
          if (m.action_enabled(1, Action::Execute)) m.step(1, Action::Execute);
        }
      }
    }
  }
  return m.cpu(0).counters.cycles;
}

}  // namespace

int main() {
  std::printf("E9 — primary cycles for %d Dekker iterations vs remote "
              "probe count\n\n",
              kIters);
  std::printf("%8s %12s %12s %12s | %s\n", "probes", "mfence", "le/st",
              "signal", "winner(le/st basis)");
  for (int probes : {0, 1, 2, 4, 8, 16, 32, 64, 128}) {
    const auto t_mfence =
        run_with_probes(FenceKind::kMfence, probes, /*interrupts=*/false);
    const auto t_lest =
        run_with_probes(FenceKind::kLmfence, probes, /*interrupts=*/false);
    const auto t_signal =
        run_with_probes(FenceKind::kNone, probes, /*interrupts=*/true);
    const char* verdict =
        t_lest <= t_mfence && t_lest <= t_signal
            ? "le/st"
            : (t_signal < t_mfence ? "signal" : "mfence");
    std::printf("%8d %12llu %12llu %12llu | %s\n", probes,
                static_cast<unsigned long long>(t_mfence),
                static_cast<unsigned long long>(t_lest),
                static_cast<unsigned long long>(t_signal), verdict);
  }
  std::printf(
      "\nle/st stays below mfence at every probe rate (the paper's claim\n"
      "that the hardware mechanism makes l-mfence near-free); the signal\n"
      "column crosses above mfence once interrupts outweigh the fences\n"
      "avoided — the regime where Fig. 5(b)'s losers live.\n");
  return 0;
}
