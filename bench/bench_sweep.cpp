// E17 — LE/ST-vs-mfence cost frontier on the THE deque protocol: run
// lbmf::infer over the 4-hole deque litmus (examples/litmus/
// the_deque_holes.lit, embedded below) at every point of a (victim pop
// frequency × LE/ST remote-round-trip cost) grid and chart where the
// inferred optimum crosses over between the all-mfence placement, the
// paper's asymmetric mix (victim l-mfence + thief mfence), and the
// double-l-mfence corner where remote trips are nearly free. Safety is
// cost-independent, so the whole grid shares one verdict cache and the
// explorer runs only once per distinct lattice point.
//
//   bench_sweep            # full 6x5 grid
//   bench_sweep --quick    # CI smoke mode: 3x2 grid around the frontier
//
// The sweep also runs the serialization-backend dimension: one extra
// plane per backend {signal, membarrier-pair, sim-lest}. The signal
// backend cannot invert roles, so its plane re-solves with l-mfence
// banned on the thief's holes and must never contain a double-l-mfence
// optimum; the two role-inverting backends admit the full lattice and
// their planes must equal the base grid — in particular the cheap-trip
// corner (freq 1, rt 10) keeps the double-l-mfence placement that the
// adaptive runtime can now realize (bench_adapt gates the realization).
//
// Emits BENCH_sweep.json (per-point optima, crossover boundaries, backend
// planes, cache accounting) in the working directory. Exit 0 requires
// every grid point — planes included — SAT with a SAFE recheck, at least
// two distinct optima along the freq axis at the paper's 150-cycle
// round-trip, agreement with three hand-checked grid points, and the
// backend-plane gates above (see ROADMAP/EXPERIMENTS E17).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "lbmf/infer/infer.hpp"

using namespace lbmf;

namespace {

// examples/litmus/the_deque_holes.lit, embedded so the bench is
// self-contained and keeps working from any working directory.
constexpr const char* kHoleyDeque = R"(
init [T], 1

cpu 0:                     # victim: pop() on the hot path
  freq 1000
  ?fence [T], 0            # hole A: announce the tail decrement
  load r0, [H]
  beq r0, 0, claim
  ?fence [T], 1            # hole B: retreat
  lock [G]
  load r1, [H]
  bne r1, 0, empty
  store [T], 0
  store [TK0], 1
empty:
  unlock [G]
  halt
claim:
  store [TK0], 1
  halt

cpu 1:                     # thief: steal(), always under the gate
  freq 1
  lock [G]
  ?fence [H], 1            # hole C: announce the head increment
  load r0, [T]
  beq r0, 0, miss
  store [TK1], 1
  unlock [G]
  halt
miss:
  ?fence [H], 0            # hole D: retreat
  unlock [G]
  halt

final [TK0], 1, [TK1], 0
final [TK0], 0, [TK1], 1
)";

const infer::SweepPoint* find_point_in(
    const std::vector<infer::SweepPoint>& pts, double freq, double roundtrip) {
  for (const infer::SweepPoint& p : pts) {
    if (p.victim_freq == freq && p.lest_roundtrip == roundtrip) return &p;
  }
  return nullptr;
}

const infer::SweepPoint* find_point(const infer::SweepResult& r, double freq,
                                    double roundtrip) {
  return find_point_in(r.points, freq, roundtrip);
}

bool is_double(const infer::SweepPoint* p) {
  // Holes {A,B,C,D} = {victim announce, victim retreat, thief announce,
  // thief retreat}: double-l-mfence = light announce on both sides.
  return p != nullptr && p->status == infer::InferStatus::kSat &&
         p->best.kinds.size() == 4 &&
         p->best.kinds[0] == infer::FenceKind::kLmfence &&
         p->best.kinds[2] == infer::FenceKind::kLmfence;
}

// The three hand-derived grid points the sweep must reproduce (costs from
// model::CostTable defaults; see EXPERIMENTS.md E17 for the arithmetic).
bool check_known_point(const infer::SweepResult& r, double freq,
                       double roundtrip, const char* expect) {
  const infer::SweepPoint* p = find_point(r, freq, roundtrip);
  if (p == nullptr) {
    std::printf("  MISSING grid point (freq %g, roundtrip %g)\n", freq,
                roundtrip);
    return false;
  }
  const std::string got = infer::to_string(p->best);
  const bool ok =
      p->status == infer::InferStatus::kSat && p->recheck_safe && got == expect;
  std::printf("  (freq %-6g rt %-4g) expect %-34s got %-34s %s\n", freq,
              roundtrip, expect, got.c_str(), ok ? "ok" : "MISMATCH");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const infer::ProblemParse parsed = infer::problem_from_source(kHoleyDeque);
  if (!parsed.ok()) {
    std::printf("FAIL: embedded litmus does not assemble: line %zu: %s\n",
                parsed.error ? parsed.error->line : 0,
                parsed.error ? parsed.error->message.c_str() : "?");
    return 1;
  }

  infer::SweepOptions so;
  so.backends = {{"signal", /*inverts_roles=*/false},
                 {"membarrier-pair", /*inverts_roles=*/true},
                 {"sim-lest", /*inverts_roles=*/true}};
  if (quick) {
    // The smallest grid that still crosses the frontier twice: the freq
    // axis at rt=150 flips between f=1 and f=10, and the cheap-round-trip
    // corner (f=1, rt=10) prefers the double-l-mfence placement.
    so.victim_freqs = {1, 10, 1'000};
    so.roundtrips = {10, 150};
  }

  const auto t0 = std::chrono::steady_clock::now();
  const infer::SweepResult r = infer::run_sweep(*parsed.problem, so);
  const auto t1 = std::chrono::steady_clock::now();
  const double ms = std::chrono::duration<double>(t1 - t0).count() * 1e3;

  std::printf("THE-deque cost frontier, %s %zux%zu grid (%.1f ms)\n\n",
              quick ? "quick" : "full", r.roundtrips.size(),
              r.victim_freqs.size(), ms);
  std::printf("%-10s", "rt\\freq");
  for (double f : r.victim_freqs) std::printf(" %-28g", f);
  std::printf("\n");
  for (double rt : r.roundtrips) {
    std::printf("%-10g", rt);
    for (double f : r.victim_freqs) {
      const infer::SweepPoint* p = find_point(r, f, rt);
      std::printf(" %-28s", p != nullptr && p->status == infer::InferStatus::kSat
                                ? infer::to_string(p->best).c_str()
                                : "?");
    }
    std::printf("\n");
  }

  std::printf("\ncrossovers:\n");
  if (r.crossovers.empty()) std::printf("  (none)\n");
  for (const infer::Crossover& x : r.crossovers) {
    std::printf("  rt %-5g: %s -> %s between freq %g and %g\n",
                x.lest_roundtrip, x.from.c_str(), x.to.c_str(), x.freq_before,
                x.freq_after);
  }
  std::printf(
      "grid points %zu, explorer runs %llu, cache hits %llu, states %llu\n",
      r.points.size(), static_cast<unsigned long long>(r.explorer_runs),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.states_total));

  std::printf("\nhand-checked points:\n");
  bool known_ok = true;
  known_ok &= check_known_point(r, 1, 150, "{mfence, none, mfence, none}");
  known_ok &=
      check_known_point(r, 1'000, 150, "{l-mfence, none, mfence, none}");
  known_ok &= check_known_point(r, 1, 10, "{l-mfence, none, l-mfence, none}");

  const std::size_t optima_150 = r.distinct_optima_at(150);
  std::printf("distinct optima along freq axis at rt=150: %zu (target >= 2)\n",
              optima_150);

  std::printf("\nbackend planes:\n");
  bool backend_ok = r.backend_planes.size() == so.backends.size();
  if (!backend_ok) std::printf("  MISSING planes\n");
  for (const infer::SweepBackendPlane& bp : r.backend_planes) {
    bool plane_ok = true;
    if (bp.inverts_roles) {
      // Full lattice: the plane must reproduce the base grid verbatim,
      // double-l-mfence corner included.
      for (std::size_t i = 0; i < r.points.size(); ++i) {
        plane_ok &= i < bp.points.size() &&
                    bp.points[i].best == r.points[i].best &&
                    bp.points[i].status == infer::InferStatus::kSat;
      }
      plane_ok &= is_double(find_point_in(bp.points, 1, 10));
    } else {
      // Fixed roles: every point re-solved SAT, and no thief hole may
      // carry l-mfence anywhere on the plane.
      for (const infer::SweepPoint& p : bp.points) {
        plane_ok &= p.status == infer::InferStatus::kSat && p.recheck_safe;
        for (std::size_t hole = 2; hole < p.best.kinds.size(); ++hole) {
          plane_ok &= p.best.kinds[hole] != infer::FenceKind::kLmfence;
        }
      }
      plane_ok &= !is_double(find_point_in(bp.points, 1, 10));
    }
    const infer::SweepPoint* corner = find_point_in(bp.points, 1, 10);
    std::printf("  %-16s (%s roles): corner (freq 1, rt 10) = %-34s %s\n",
                bp.name.c_str(), bp.inverts_roles ? "inverts" : "fixed",
                corner != nullptr ? infer::to_string(corner->best).c_str()
                                  : "?",
                plane_ok ? "ok" : "GATE FAILED");
    backend_ok &= plane_ok;
  }

  if (std::FILE* f = std::fopen("BENCH_sweep.json", "w")) {
    std::fprintf(f, "%s\n",
                 infer::sweep_to_json(r, "the_deque_holes").c_str());
    std::fclose(f);
    std::printf("wrote BENCH_sweep.json\n");
  }

  const bool pass = r.all_sat() && optima_150 >= 2 && known_ok && backend_ok;
  std::printf("%s\n",
              pass ? "PASS"
                   : "FAIL: grid not fully SAT, frontier flat at rt=150, "
                     "hand-checked point mismatch, or backend-plane gate");
  return pass ? 0 : 1;
}
