// E16 — counterexample-guided fence inference vs naive enumeration: both
// modes of lbmf::infer solve the 4-hole asymmetric Dekker (the paper's
// Fig. 3 protocol with every fence left open and a 1000:1 entry-frequency
// bias) and must agree on the minimum-cost placement; the guided search
// must get there with at least 4x fewer explorer runs than the 81-point
// lattice the naive mode verifies.
//
//   bench_infer            # full measurement
//   bench_infer --quick    # CI smoke mode
//
// Emits BENCH_infer.json (explorer-run and state-count ratios, solve
// latency, and the winning placement) in the working directory.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "lbmf/infer/infer.hpp"

using namespace lbmf;

namespace {

constexpr const char* kHoleyDekker = R"(
cpu 0:
  freq 1000
  ?fence [L1], 1
  load r0, [L2]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  ?fence [L1], 0
  halt
cpu 1:
  freq 1
  ?fence [L2], 1
  load r0, [L1]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  ?fence [L2], 0
  halt
)";

struct Row {
  const char* label = "";
  infer::InferResult result;
  double best_seconds = 1e9;  // least-perturbed solve latency
};

Row measure(const char* label, double min_seconds,
            const infer::InferenceEngine::Options& o) {
  const infer::ProblemParse parsed = infer::problem_from_source(kHoleyDekker);
  Row row;
  row.label = label;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    const auto r0 = std::chrono::steady_clock::now();
    infer::InferenceEngine engine(*parsed.problem, o);
    row.result = engine.run();
    const auto r1 = std::chrono::steady_clock::now();
    row.best_seconds = std::min(
        row.best_seconds, std::chrono::duration<double>(r1 - r0).count());
    elapsed = std::chrono::duration<double>(r1 - t0).count();
  } while (elapsed < min_seconds);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const double min_seconds = quick ? 0.2 : 1.0;

  // The minimality pass is disabled in both modes so candidates_verified
  // counts pure search work — the same sweep would be added to each.
  infer::InferenceEngine::Options guided_opts;
  guided_opts.minimality_pass = false;
  infer::InferenceEngine::Options naive_opts = guided_opts;
  naive_opts.exhaustive = true;

  const Row guided = measure("guided (clause learning)", min_seconds,
                             guided_opts);
  const Row naive = measure("naive (full lattice)", min_seconds, naive_opts);

  std::printf("4-hole asymmetric Dekker (freq 1000:1), %s measurement\n\n",
              quick ? "quick" : "full");
  std::printf("%-26s %10s %10s %12s %12s\n", "mode", "verified", "pruned",
              "states", "solve-ms");
  for (const Row* r : {&guided, &naive}) {
    std::printf("%-26s %10llu %10llu %12llu %12.2f\n", r->label,
                static_cast<unsigned long long>(r->result.candidates_verified),
                static_cast<unsigned long long>(r->result.candidates_pruned),
                static_cast<unsigned long long>(r->result.states_total),
                r->best_seconds * 1e3);
  }

  const bool both_sat =
      guided.result.status == infer::InferStatus::kSat &&
      naive.result.status == infer::InferStatus::kSat;
  const bool same_answer =
      both_sat && guided.result.best == naive.result.best &&
      guided.result.best_cost == naive.result.best_cost;
  const double candidate_ratio =
      guided.result.candidates_verified == 0
          ? 0.0
          : static_cast<double>(naive.result.candidates_verified) /
                static_cast<double>(guided.result.candidates_verified);
  const double state_ratio =
      guided.result.states_total == 0
          ? 0.0
          : static_cast<double>(naive.result.states_total) /
                static_cast<double>(guided.result.states_total);

  std::printf("\nguided vs naive over the %llu-point lattice:\n",
              static_cast<unsigned long long>(naive.result.lattice_size));
  if (both_sat) {
    std::string placement = infer::to_string(guided.result.best);
    std::printf("  winning placement  : %s, cost %.0f (recheck %s)\n",
                placement.c_str(), guided.result.best_cost,
                guided.result.recheck_safe ? "SAFE" : "FAILED");
  }
  std::printf("  explorer runs saved: %.1fx fewer candidates (target >= 4x)\n",
              candidate_ratio);
  std::printf("  states explored    : %.1fx fewer\n", state_ratio);

  if (std::FILE* f = std::fopen("BENCH_infer.json", "w")) {
    std::fprintf(
        f,
        "{\"bench\":\"infer\",\"workload\":\"dekker_4holes_freq1000\","
        "\"lattice\":%llu,\"guided_verified\":%llu,\"naive_verified\":%llu,"
        "\"candidate_ratio\":%.2f,\"state_ratio\":%.2f,\"best_cost\":%.0f,"
        "\"solve_ms\":%.2f,\"quick\":%s}\n",
        static_cast<unsigned long long>(naive.result.lattice_size),
        static_cast<unsigned long long>(guided.result.candidates_verified),
        static_cast<unsigned long long>(naive.result.candidates_verified),
        candidate_ratio, state_ratio,
        both_sat ? guided.result.best_cost : -1.0, guided.best_seconds * 1e3,
        quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_infer.json\n");
  }

  const bool pass =
      same_answer && guided.result.recheck_safe && candidate_ratio >= 4.0;
  std::printf("%s\n", pass ? "PASS"
                           : "FAIL: answers disagree or pruning below 4x");
  return pass ? 0 : 1;
}
