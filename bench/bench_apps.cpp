// E11 — microbenchmarks for the paper's motivating applications (Sec. 1)
// beyond the two it evaluates: the biased lock (Java-monitor style) and the
// safepoint poll (JVM/GC style). The headline numbers are the *fast paths*:
// a biased acquire and a safepoint poll should cost no more than a couple
// of nanoseconds under the asymmetric policies — versus the fence-bearing
// symmetric equivalents — because that is where l-mfence removes the
// serialization.

#include <benchmark/benchmark.h>

#include <mutex>

#include "lbmf/core/epoch.hpp"
#include "lbmf/core/safepoint.hpp"
#include "lbmf/dekker/biased_lock.hpp"

namespace lbmf {
namespace {

// ------------------------------------------------------------- biased lock

template <FencePolicy P>
void BM_BiasedLockFastPath(benchmark::State& state) {
  BiasedLock<P> lock;
  lock.lock();  // claim the bias
  volatile long x = 0;
  lock.unlock();
  for (auto _ : state) {
    lock.lock();
    x = x + 1;
    lock.unlock();
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
  lock.release_bias();
}

BENCHMARK(BM_BiasedLockFastPath<AsymmetricSignalFence>)
    ->Name("biased_lock/fast_path/lmfence");
BENCHMARK(BM_BiasedLockFastPath<SymmetricFence>)
    ->Name("biased_lock/fast_path/mfence");

void BM_StdMutexBaseline(benchmark::State& state) {
  std::mutex m;
  volatile long x = 0;
  for (auto _ : state) {
    m.lock();
    x = x + 1;
    m.unlock();
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_StdMutexBaseline)->Name("biased_lock/baseline/std_mutex");

// --------------------------------------------------------------- safepoint

template <FencePolicy P>
void BM_SafepointPoll(benchmark::State& state) {
  Safepoint<P> sp;
  auto token = sp.register_mutator();
  volatile long x = 0;
  for (auto _ : state) {
    x = x + 1;
    token.poll();
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SafepointPoll<AsymmetricSignalFence>)
    ->Name("safepoint/poll/lmfence");
BENCHMARK(BM_SafepointPoll<SymmetricFence>)->Name("safepoint/poll/mfence");

/// The safe-region boundary is where the Dekker announce (and thus the
/// fence, under the symmetric policy) lives — the JNI-call edge in the
/// JVM analogy.
template <FencePolicy P>
void BM_SafeRegionTransition(benchmark::State& state) {
  Safepoint<P> sp;
  auto token = sp.register_mutator();
  for (auto _ : state) {
    token.enter_safe_region();
    token.leave_safe_region();
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_SafeRegionTransition<AsymmetricSignalFence>)
    ->Name("safepoint/region_transition/lmfence");
BENCHMARK(BM_SafeRegionTransition<SymmetricFence>)
    ->Name("safepoint/region_transition/mfence");

/// Cost of a full stop-the-world against N busy mutators (the slow path the
/// asymmetric design deliberately makes expensive).
template <FencePolicy P>
void BM_StopTheWorld(benchmark::State& state) {
  const int mutators = static_cast<int>(state.range(0));
  Safepoint<P> sp;
  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::vector<std::thread> pool;
  for (int i = 0; i < mutators; ++i) {
    pool.emplace_back([&] {
      auto token = sp.register_mutator();
      ready.fetch_add(1);
      volatile long x = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x + 1;
        token.poll();
      }
      benchmark::DoNotOptimize(x);
    });
  }
  while (ready.load() < mutators) std::this_thread::yield();

  for (auto _ : state) {
    sp.stop_the_world([] {});
  }
  state.SetItemsProcessed(state.iterations());

  stop.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
}

BENCHMARK(BM_StopTheWorld<AsymmetricSignalFence>)
    ->Name("safepoint/stop_the_world/lmfence")
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------------------- epoch

/// RCU-style read-side critical section — the membarrier(2) use case.
template <FencePolicy P>
void BM_EpochReadSection(benchmark::State& state) {
  EpochDomain<P> d;
  auto token = d.register_reader();
  volatile long x = 0;
  for (auto _ : state) {
    auto g = token.read_lock();
    x = x + 1;
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_EpochReadSection<AsymmetricSignalFence>)
    ->Name("epoch/read_section/lmfence");
BENCHMARK(BM_EpochReadSection<SymmetricFence>)
    ->Name("epoch/read_section/mfence");

/// Grace-period cost against one busy reader (the deliberate slow path).
template <FencePolicy P>
void BM_EpochSynchronize(benchmark::State& state) {
  EpochDomain<P> d;
  std::atomic<bool> stop{false};
  std::atomic<bool> ready{false};
  std::thread reader([&] {
    auto token = d.register_reader();
    ready.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed)) {
      auto g = token.read_lock();
    }
  });
  while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();
  for (auto _ : state) {
    d.synchronize();
  }
  state.SetItemsProcessed(state.iterations());
  stop.store(true, std::memory_order_release);
  reader.join();
}

BENCHMARK(BM_EpochSynchronize<AsymmetricSignalFence>)
    ->Name("epoch/synchronize/lmfence")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lbmf

BENCHMARK_MAIN();
