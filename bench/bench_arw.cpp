// E6 / E7 — Fig. 6(a) and 6(b): normalized read throughput of the ARW lock
// (6a) and ARW+ lock (6b) against the SRW control, sweeping thread counts
// {1,2,4,8,16} and read:write ratios {300,500,1000,10000,100000}:1.
//
// Expected shape (paper): ARW loses at low ratios / high thread counts
// (the writer's serialized signal storm) and wins at high ratios; ARW+ is
// >= 1 essentially everywhere except the 300:1 row, with an outlier spike
// at (300:1, 2 threads) where the writer's ack usually arrives in time.
//
// This host is single-core: the measured sweep is oversubscribed, so the
// cost-model columns (signal / signal+ack / LE/ST at each P) regenerate
// the figure's shape; measured numbers are reported alongside.
//
// E15 rider: writer-acquire latency with 8 registered idle readers,
// batched serialize_many wave vs. the sequential per-reader round-trip
// loop (the pre-batching writer), for both ARW and ARW+. Emits
// BENCH_arw.json.
//
// Usage: bench_arw [--quick] [window_seconds]

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "lbmf/model/cost_model.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/util/stats.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

/// The paper's microbenchmark: every thread reads a 4-element array under
/// the read lock and performs one write per N/P reads. Returns reads/sec.
template <typename Lock>
double measure(std::size_t threads, double ratio, double window_s) {
  Lock lock;
  alignas(64) volatile long data[4] = {0, 0, 0, 0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      auto token = lock.register_reader();
      const std::uint64_t writes_every = static_cast<std::uint64_t>(
          std::max(1.0, ratio / static_cast<double>(threads)));
      std::uint64_t reads = 0, since = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        token.read_lock();
        long sum = 0;
        for (int j = 0; j < 4; ++j) sum += data[j];
        token.read_unlock();
        ++reads;
        if (++since >= writes_every) {
          since = 0;
          lock.write_lock();
          for (int j = 0; j < 4; ++j) data[j] = data[j] + 1;
          lock.write_unlock();
        }
        (void)sum;
      }
      total_reads.fetch_add(reads, std::memory_order_relaxed);
    });
  }
  Stopwatch sw;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(window_s * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return static_cast<double>(total_reads.load()) / sw.seconds();
}

/// E15 fixture: a lock with `readers` registered but idle readers — the
/// writer pays the full fan-out every acquire while the readers never
/// contend, isolating the serialization cost. Kept alive across samples so
/// two variants can be sampled interleaved under identical scheduler load.
template <typename Lock>
class IdleReaderHarness {
 public:
  explicit IdleReaderHarness(std::size_t readers) {
    for (std::size_t t = 0; t < readers; ++t) {
      pool_.emplace_back([this] {
        auto token = lock_.register_reader();
        ready_.fetch_add(1, std::memory_order_acq_rel);
        while (!stop_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      });
    }
    while (ready_.load(std::memory_order_acquire) <
           static_cast<int>(readers)) {
      std::this_thread::yield();
    }
    for (int i = 0; i < 3; ++i) sample();  // warm the slot paths
  }

  ~IdleReaderHarness() {
    stop_.store(true, std::memory_order_release);
    for (auto& th : pool_) th.join();
  }

  /// Cycles for one write_lock/write_unlock pair.
  double sample() {
    const std::uint64_t c0 = rdtscp();
    lock_.write_lock();
    lock_.write_unlock();
    const std::uint64_t c1 = rdtscp();
    return static_cast<double>(c1 - c0);
  }

 private:
  Lock lock_;
  std::vector<std::thread> pool_;
  std::atomic<bool> stop_{false};
  std::atomic<int> ready_{0};
};

/// Sample two writer variants interleaved (one acquire each per round) so
/// scheduler drift hits both equally instead of biasing whichever variant
/// was measured last.
template <typename SeqLock, typename BatchLock>
std::pair<Summary, Summary> writer_latency_pair(std::size_t readers,
                                                int reps) {
  IdleReaderHarness<SeqLock> seq(readers);
  IdleReaderHarness<BatchLock> batch(readers);
  std::vector<double> seq_samples, batch_samples;
  seq_samples.reserve(static_cast<std::size_t>(reps));
  batch_samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    seq_samples.push_back(seq.sample());
    batch_samples.push_back(batch.sample());
  }
  return {summarize(std::move(seq_samples)),
          summarize(std::move(batch_samples))};
}

}  // namespace

int main(int argc, char** argv) {
  double window = 0.25;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      window = 0.05;
      quick = true;
    } else {
      window = std::atof(argv[i]);
    }
  }

  const std::size_t thread_counts[] = {1, 2, 4, 8, 16};
  const double ratios[] = {300, 500, 1000, 10'000, 100'000};
  const model::CostTable table;

  for (int fig = 0; fig < 2; ++fig) {
    const bool plus = fig == 1;
    std::printf("Fig. 6(%c) — normalized read throughput %s/SRW "
                "(> 1: asymmetric lock wins)\n\n",
                plus ? 'b' : 'a', plus ? "ARW+" : "ARW");
    std::printf("%-12s", "ratio\\thr");
    for (std::size_t t : thread_counts) std::printf("   %6zu", t);
    std::printf("      (measured | model)\n");

    for (double ratio : ratios) {
      std::printf("%9.0f:1 ", ratio);
      std::vector<double> modeled;
      for (std::size_t t : thread_counts) {
        const double srw = measure<SrwLock>(t, ratio, window);
        const double asym = plus
                                ? measure<ArwPlusLock>(t, ratio, window)
                                : measure<ArwLock>(t, ratio, window);
        std::printf("   %6.2f", srw > 0 ? asym / srw : 0.0);

        model::RwParams p;
        p.threads = t;
        p.read_write_ratio = ratio;
        modeled.push_back(model::rw_relative_throughput(
            p, plus ? model::FenceImpl::kSignalAck : model::FenceImpl::kSignal,
            table));
      }
      std::printf("   |");
      for (double m : modeled) std::printf("   %6.2f", m);
      std::printf("\n");
    }
    std::printf("\n");
  }

  // The paper's forward-looking column: the same lock under LE/ST hardware.
  std::printf("model only — ARW under the proposed LE/ST hardware "
              "(150-cycle round trips):\n\n%-12s", "ratio\\thr");
  for (std::size_t t : thread_counts) std::printf("   %6zu", t);
  std::printf("\n");
  for (double ratio : ratios) {
    std::printf("%9.0f:1 ", ratio);
    for (std::size_t t : thread_counts) {
      model::RwParams p;
      p.threads = t;
      p.read_write_ratio = ratio;
      std::printf("   %6.2f", model::rw_relative_throughput(
                                  p, model::FenceImpl::kLest, table));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape: ARW dips below 1 at low ratios/high threads (signal storm),\n"
      "ARW+ holds >= 1 except near 300:1, and LE/ST wins everywhere — the\n"
      "progression Fig. 6 uses to argue for the hardware mechanism.\n");

  // --- E15: writer-acquire latency, batched wave vs. sequential loop ------
  constexpr std::size_t kIdleReaders = 8;
  const int reps = quick ? 20 : 60;
  std::printf("\nE15 — write_lock latency (cycles), %zu registered idle "
              "readers:\n\n", kIdleReaders);
  const auto [arw_seq, arw_batch] =
      writer_latency_pair<ArwLockSequential, ArwLock>(kIdleReaders, reps);
  const auto [plus_seq, plus_batch] =
      writer_latency_pair<ArwPlusLockSequential, ArwPlusLock>(kIdleReaders,
                                                              reps);
  std::printf("%-26s p50=%9.0f  mean=%9.0f\n", "ARW  sequential signals",
              arw_seq.p50, arw_seq.mean);
  std::printf("%-26s p50=%9.0f  mean=%9.0f\n", "ARW  batched wave",
              arw_batch.p50, arw_batch.mean);
  std::printf("%-26s p50=%9.0f  mean=%9.0f\n", "ARW+ sequential signals",
              plus_seq.p50, plus_seq.mean);
  std::printf("%-26s p50=%9.0f  mean=%9.0f\n", "ARW+ batched wave",
              plus_batch.p50, plus_batch.mean);
  const double arw_speedup =
      arw_batch.p50 > 0 ? arw_seq.p50 / arw_batch.p50 : 0.0;
  const double plus_speedup =
      plus_batch.p50 > 0 ? plus_seq.p50 / plus_batch.p50 : 0.0;
  std::printf("%-26s ARW %.2fx, ARW+ %.2fx\n", "batched writer speedup",
              arw_speedup, plus_speedup);

  if (std::FILE* f = std::fopen("BENCH_arw.json", "w")) {
    std::fprintf(
        f,
        "{\"bench\":\"arw\",\"idle_readers\":%zu,"
        "\"arw_seq_writer_p50_cycles\":%.0f,"
        "\"arw_batch_writer_p50_cycles\":%.0f,"
        "\"arw_batch_speedup\":%.2f,"
        "\"arwplus_seq_writer_p50_cycles\":%.0f,"
        "\"arwplus_batch_writer_p50_cycles\":%.0f,"
        "\"arwplus_batch_speedup\":%.2f,\"quick\":%s}\n",
        kIdleReaders, arw_seq.p50, arw_batch.p50, arw_speedup, plus_seq.p50,
        plus_batch.p50, plus_speedup, quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_arw.json\n");
  }
  return 0;
}
