// E6 / E7 — Fig. 6(a) and 6(b): normalized read throughput of the ARW lock
// (6a) and ARW+ lock (6b) against the SRW control, sweeping thread counts
// {1,2,4,8,16} and read:write ratios {300,500,1000,10000,100000}:1.
//
// Expected shape (paper): ARW loses at low ratios / high thread counts
// (the writer's serialized signal storm) and wins at high ratios; ARW+ is
// >= 1 essentially everywhere except the 300:1 row, with an outlier spike
// at (300:1, 2 threads) where the writer's ack usually arrives in time.
//
// This host is single-core: the measured sweep is oversubscribed, so the
// cost-model columns (signal / signal+ack / LE/ST at each P) regenerate
// the figure's shape; measured numbers are reported alongside.
//
// Usage: bench_arw [--quick] [window_seconds]

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "lbmf/model/cost_model.hpp"
#include "lbmf/rwlock/rwlock.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

/// The paper's microbenchmark: every thread reads a 4-element array under
/// the read lock and performs one write per N/P reads. Returns reads/sec.
template <typename Lock>
double measure(std::size_t threads, double ratio, double window_s) {
  Lock lock;
  alignas(64) volatile long data[4] = {0, 0, 0, 0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total_reads{0};

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      auto token = lock.register_reader();
      const std::uint64_t writes_every = static_cast<std::uint64_t>(
          std::max(1.0, ratio / static_cast<double>(threads)));
      std::uint64_t reads = 0, since = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        token.read_lock();
        long sum = 0;
        for (int j = 0; j < 4; ++j) sum += data[j];
        token.read_unlock();
        ++reads;
        if (++since >= writes_every) {
          since = 0;
          lock.write_lock();
          for (int j = 0; j < 4; ++j) data[j] = data[j] + 1;
          lock.write_unlock();
        }
        (void)sum;
      }
      total_reads.fetch_add(reads, std::memory_order_relaxed);
    });
  }
  Stopwatch sw;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(window_s * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  return static_cast<double>(total_reads.load()) / sw.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  double window = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) window = 0.05;
    else window = std::atof(argv[i]);
  }

  const std::size_t thread_counts[] = {1, 2, 4, 8, 16};
  const double ratios[] = {300, 500, 1000, 10'000, 100'000};
  const model::CostTable table;

  for (int fig = 0; fig < 2; ++fig) {
    const bool plus = fig == 1;
    std::printf("Fig. 6(%c) — normalized read throughput %s/SRW "
                "(> 1: asymmetric lock wins)\n\n",
                plus ? 'b' : 'a', plus ? "ARW+" : "ARW");
    std::printf("%-12s", "ratio\\thr");
    for (std::size_t t : thread_counts) std::printf("   %6zu", t);
    std::printf("      (measured | model)\n");

    for (double ratio : ratios) {
      std::printf("%9.0f:1 ", ratio);
      std::vector<double> modeled;
      for (std::size_t t : thread_counts) {
        const double srw = measure<SrwLock>(t, ratio, window);
        const double asym = plus
                                ? measure<ArwPlusLock>(t, ratio, window)
                                : measure<ArwLock>(t, ratio, window);
        std::printf("   %6.2f", srw > 0 ? asym / srw : 0.0);

        model::RwParams p;
        p.threads = t;
        p.read_write_ratio = ratio;
        modeled.push_back(model::rw_relative_throughput(
            p, plus ? model::FenceImpl::kSignalAck : model::FenceImpl::kSignal,
            table));
      }
      std::printf("   |");
      for (double m : modeled) std::printf("   %6.2f", m);
      std::printf("\n");
    }
    std::printf("\n");
  }

  // The paper's forward-looking column: the same lock under LE/ST hardware.
  std::printf("model only — ARW under the proposed LE/ST hardware "
              "(150-cycle round trips):\n\n%-12s", "ratio\\thr");
  for (std::size_t t : thread_counts) std::printf("   %6zu", t);
  std::printf("\n");
  for (double ratio : ratios) {
    std::printf("%9.0f:1 ", ratio);
    for (std::size_t t : thread_counts) {
      model::RwParams p;
      p.threads = t;
      p.read_write_ratio = ratio;
      std::printf("   %6.2f", model::rw_relative_throughput(
                                  p, model::FenceImpl::kLest, table));
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape: ARW dips below 1 at low ratios/high threads (signal storm),\n"
      "ARW+ holds >= 1 except near 300:1, and LE/ST wins everywhere — the\n"
      "progression Fig. 6 uses to argue for the hardware mechanism.\n");
  return 0;
}
