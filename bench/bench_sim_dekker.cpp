// E8 — cycle and event accounting of the LE/ST mechanism on the simulator:
// the solo Dekker loop under each fence kind (the Sec. 1 overhead claim,
// measured in simulated cycles), the per-event counter profile of the
// mechanism, and exhaustive safety verdicts for every fence combination
// (Theorem 7 plus negative controls).

#include <cstdio>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"

using namespace lbmf::sim;

int main() {
  // --- solo Dekker loop: simulated cycles per iteration -------------------
  std::printf("solo Dekker loop (1000 iterations, simulated cycles):\n\n");
  std::printf("%-10s %10s %10s %9s %8s %8s\n", "fence", "cycles", "cyc/iter",
              "mfences", "links", "clears");
  std::uint64_t none_cycles = 0, mfence_cycles = 0;
  for (FenceKind k :
       {FenceKind::kNone, FenceKind::kMfence, FenceKind::kLmfence}) {
    Machine m = make_solo_dekker_machine(k, 1000);
    m.run_round_robin();
    const auto& c = m.cpu(0).counters;
    if (k == FenceKind::kNone) none_cycles = c.cycles;
    if (k == FenceKind::kMfence) mfence_cycles = c.cycles;
    std::printf("%-10s %10llu %10.1f %9llu %8llu %8llu\n", to_string(k),
                static_cast<unsigned long long>(c.cycles),
                static_cast<double>(c.cycles) / 1000.0,
                static_cast<unsigned long long>(c.mfences),
                static_cast<unsigned long long>(c.links_armed),
                static_cast<unsigned long long>(c.link_clears_complete));
  }
  std::printf("\nmfence/no-fence ratio: %.1fx   (paper Sec. 1: 4-7x)\n\n",
              static_cast<double>(mfence_cycles) /
                  static_cast<double>(none_cycles));

  // --- exhaustive safety matrix -------------------------------------------
  std::printf("exhaustive mutual-exclusion verdicts "
              "(primary/secondary fences):\n\n");
  std::printf("%-10s %-10s %9s %s\n", "primary", "secondary", "states",
              "verdict");
  const FenceKind kinds[] = {FenceKind::kNone, FenceKind::kMfence,
                             FenceKind::kLmfence};
  for (FenceKind p : kinds) {
    for (FenceKind s : kinds) {
      Explorer::Options opts;
      Explorer ex(make_dekker_machine(p, s), opts);
      const ExploreResult r = ex.run();
      std::printf("%-10s %-10s %9llu %s\n", to_string(p), to_string(s),
                  static_cast<unsigned long long>(r.states_explored),
                  r.violation ? "VIOLATION (expected for fence-free sides)"
                              : "safe");
    }
  }

  // --- mechanism event profile under contention ----------------------------
  std::printf("\nLE/ST event profile, asymmetric Dekker, all schedules "
              "(random sampling):\n\n");
  std::uint64_t remote = 0, evict = 0, complete = 0, armed = 0;
  constexpr int kSeeds = 200;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    Machine m = make_dekker_machine(FenceKind::kLmfence, FenceKind::kMfence);
    m.run_random(seed);
    armed += m.cpu(0).counters.links_armed;
    remote += m.cpu(0).counters.link_breaks_remote;
    evict += m.cpu(0).counters.link_breaks_evict;
    complete += m.cpu(0).counters.link_clears_complete;
  }
  std::printf("  links armed                 : %llu\n",
              static_cast<unsigned long long>(armed));
  std::printf("  broken by remote access     : %llu\n",
              static_cast<unsigned long long>(remote));
  std::printf("  broken by eviction          : %llu\n",
              static_cast<unsigned long long>(evict));
  std::printf("  cleared by store completion : %llu\n",
              static_cast<unsigned long long>(complete));
  std::printf("  (every armed link is resolved by exactly one of the "
              "three events\n   or survives to the end of the program)\n");
  return 0;
}
