#pragma once

// Frozen snapshot of the *seed-commit* simulator core (cache.hpp,
// machine.hpp as of the seed), kept verbatim under lbmf::seedsim as the
// baseline for bench_explorer (E14). The live lbmf::sim Machine has since
// been optimized for exploration throughput — inline cache-line storage,
// flat memory, allocation-free canonical serialization — so benchmarking
// the rebuilt explorer against the live Machine would credit the baseline
// with improvements it never had. Do not modernize this file; its whole
// point is to stay what the seed was.

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "lbmf/sim/program.hpp"
#include "lbmf/sim/types.hpp"

namespace lbmf::sim {
class TraceRecorder;
}

namespace lbmf::seedsim {

using sim::Action;
using sim::Addr;
using sim::Choice;
using sim::Instr;
using sim::kInvalidAddr;
using sim::Mesi;
using sim::Op;
using sim::Program;
using sim::Protocol;
using sim::SimConfig;
using sim::TraceRecorder;
using sim::Word;


/// One resident line in a private cache. Lines hold `SimConfig::line_words`
/// consecutive words starting at `base` (base is always line-aligned); the
/// default of one word per line keeps litmus tests exact, while wider lines
/// model false sharing — including remote accesses to a *neighbouring*
/// word of an l-mfence-guarded location firing the guard.
struct CacheLine {
  Addr base = kInvalidAddr;
  Mesi state = Mesi::Invalid;
  std::vector<Word> data;
  std::uint64_t lru = 0;  // last-touch stamp; smallest is evicted first

  Word& at(std::size_t offset) noexcept { return data[offset]; }
  Word at(std::size_t offset) const noexcept { return data[offset]; }
};

/// A fully associative, LRU private cache keyed by line base address.
/// Value-semantic (copyable) so the interleaving explorer can snapshot
/// whole machines. Linear scans are fine: litmus programs touch a handful
/// of lines.
class Cache {
 public:
  explicit Cache(std::size_t capacity) : capacity_(capacity) {}

  /// Lookup without touching LRU state (for invariant checks / peeking).
  const CacheLine* peek(Addr base) const noexcept;

  /// Lookup and refresh the line's LRU stamp.
  CacheLine* touch(Addr base) noexcept;

  /// Insert (or overwrite) a line. If the cache is full, evicts the LRU
  /// line first and returns it so the owner can run eviction side effects
  /// (writeback; guard-link breaking per Sec. 3 of the paper).
  std::optional<CacheLine> insert(Addr base, Mesi state,
                                  std::vector<Word> data);

  /// Change the state of a resident line; no-op if absent.
  void set_state(Addr base, Mesi state) noexcept;

  /// Remove a line (invalidate); returns the removed line if present.
  std::optional<CacheLine> erase(Addr base) noexcept;

  std::size_t size() const noexcept { return lines_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const std::vector<CacheLine>& lines() const noexcept { return lines_; }

 private:
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  std::vector<CacheLine> lines_;
};

/// One committed-but-incomplete store (Sec. 2: committed = in the buffer,
/// completed = written to the cache). Store granularity is one word.
struct StoreEntry {
  Addr addr = kInvalidAddr;
  Word value = 0;
  /// True if this is the store associated with an armed l-mfence link; its
  /// completion clears the link (Sec. 3).
  bool guarded = false;
};

/// FIFO store buffer with store-to-load forwarding.
class StoreBuffer {
 public:
  explicit StoreBuffer(std::size_t capacity) : capacity_(capacity) {}

  bool full() const noexcept { return entries_.size() >= capacity_; }
  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }

  void push(StoreEntry e) { entries_.push_back(e); }

  /// Oldest entry (the next to complete). Precondition: !empty().
  StoreEntry pop_oldest();

  /// Youngest entry matching `a`, if any — store-buffer forwarding gives a
  /// load the most recent committed value (Sec. 2).
  std::optional<Word> forwarded_value(Addr a) const noexcept;

  const std::vector<StoreEntry>& entries() const noexcept { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<StoreEntry> entries_;  // front = oldest
};



/// Per-CPU event counters (not part of the canonical state; pure telemetry).
struct CpuCounters {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t mfences = 0;
  std::uint64_t bus_transactions = 0;
  std::uint64_t sb_drains = 0;          // entries completed
  std::uint64_t links_armed = 0;        // SetLink executions arming a link
  std::uint64_t link_breaks_remote = 0; // guard fired on remote downgrade/inv
  std::uint64_t link_breaks_evict = 0;  // guard fired on local eviction
  std::uint64_t link_breaks_second = 0; // second l-mfence to a new location
  std::uint64_t link_clears_complete = 0;  // guarded store completed
};

/// The architectural (explorable) state of one simulated CPU, plus its
/// program. Value-semantic: the explorer copies whole machines.
struct CpuState {
  explicit CpuState(const SimConfig& cfg)
      : sb(cfg.sb_capacity), cache(cfg.cache_capacity) {}

  std::shared_ptr<const Program> program;  // immutable, shared across copies
  std::int32_t pc = 0;
  std::array<Word, 8> regs{};
  StoreBuffer sb;
  Cache cache;

  // The two registers the LE/ST mechanism adds (Sec. 3).
  bool le_bit = false;
  Addr le_addr = kInvalidAddr;

  bool in_cs = false;
  bool halted = false;
  bool flushing = false;  // re-entrancy latch for guard-triggered flushes

  CpuCounters counters;
};

/// A TSO multiprocessor with per-CPU FIFO store buffers, MESI private
/// caches over a shared memory, and the LE/ST location-based-memory-fence
/// mechanism. Coherence transactions are atomic in simulator time; the
/// schedulable nondeterminism is *which CPU steps next* and *when a store
/// buffer drains an entry* — exactly the degrees of freedom that produce
/// TSO reorderings and the corner cases in Sec. 3/4 of the paper.
class Machine {
 public:
  explicit Machine(SimConfig cfg);

  /// Attach a program to a CPU (before the first step).
  void load_program(std::size_t cpu, Program p);

  void set_memory(Addr a, Word v) { mem_[a] = v; }
  Word memory(Addr a) const;

  /// Whether `step(cpu, a)` is currently legal.
  bool action_enabled(std::size_t cpu, Action a) const;

  /// Perform one atomic step. Precondition: action_enabled(cpu, a).
  void step(std::size_t cpu, Action a);

  /// Every CPU halted and every store buffer drained.
  bool finished() const;

  /// Drive with a fixed round-robin schedule (drains interleaved); returns
  /// steps taken. Aborts via LBMF_CHECK if max_steps is exceeded (i.e. the
  /// program does not terminate).
  std::uint64_t run_round_robin(std::uint64_t max_steps = 10'000'000);

  /// Drive with a seeded random schedule; returns steps taken.
  std::uint64_t run_random(std::uint64_t seed,
                           std::uint64_t max_steps = 10'000'000);

  /// MESI single-writer / value-coherence invariants. Returns a description
  /// of the first violated invariant, or nullopt if all hold.
  std::optional<std::string> check_coherence() const;

  /// Number of CPUs currently inside a critical section.
  std::size_t cpus_in_cs() const;

  /// Canonical encoding of the architectural state (excludes counters), for
  /// explorer memoization. Two machines with equal canonical state have
  /// identical future behaviour.
  std::string canonical_state() const;

  std::size_t num_cpus() const noexcept { return cpus_.size(); }
  const CpuState& cpu(std::size_t i) const { return cpus_[i]; }
  const SimConfig& config() const noexcept { return cfg_; }

  /// State of address `a` in cpu `i`'s cache (Invalid if absent).
  Mesi line_state(std::size_t i, Addr a) const;

  /// Deliver an interrupt to a CPU (models signal delivery: kernel crossing
  /// plus a full store-buffer flush). Usable any time before halt.
  void deliver_interrupt(std::size_t cpu);

  /// Sum of cycles across CPUs (a serial-machine view of cost).
  std::uint64_t total_cycles() const;

  /// Attach (or detach with nullptr) an event recorder. Not part of the
  /// architectural state: copies of the machine share the pointer, and
  /// recording changes no behaviour.
  void set_trace(TraceRecorder* t) noexcept { trace_ = t; }

 private:
  CpuState& mut_cpu(std::size_t i) { return cpus_[i]; }

  void exec_instr(CpuState& c);

  // --- memory-system internals. All return the latency (cycles) the
  // *initiating* CPU experiences; callees also charge remote CPUs for work
  // they perform (e.g. a guard-triggered flush).
  std::uint64_t bus_read(CpuState& c, Addr a, Word& out);        // GetS
  std::uint64_t bus_read_exclusive(CpuState& c, Addr a, Word& out);  // GetX
  std::uint64_t acquire_exclusive(CpuState& c, Addr a);
  std::uint64_t complete_oldest(CpuState& c);
  std::uint64_t flush_sb(CpuState& c);
  /// Guard check on CPU `owner` for a remote request to `a`. Returns the
  /// latency the requester must wait for the owner's flush (0 if no guard).
  std::uint64_t notify_guard_remote(CpuState& owner, Addr base);
  void handle_self_eviction(CpuState& c, const CacheLine& evicted);
  void clear_link(CpuState& c);

  // Line geometry (SimConfig::line_words) and whole-line memory access.
  Addr line_base(Addr a) const noexcept;
  std::size_t line_off(Addr a) const noexcept;
  std::vector<Word> memory_line(Addr base) const;
  void writeback_line(const CacheLine& l);

  void trace(const CpuState& c, int kind_int, Addr a = kInvalidAddr,
             Word v = 0, std::string detail = {}) const;

  SimConfig cfg_;
  std::vector<CpuState> cpus_;
  std::map<Addr, Word> mem_;
  TraceRecorder* trace_ = nullptr;
};


}  // namespace lbmf::seedsim
