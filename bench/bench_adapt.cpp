// E18 — online policy selection across a workload phase change: replay a
// deterministic two-phase steal/pop trace through the real adaptation
// stack (WorkloadMonitor EWMA → PolicyTable frontier lookup → hysteresis →
// AdaptiveFence quiescent-point switch on a live registered primary) and
// price every window with the Sec. 5 cost model under the mode the fence
// was actually in. Phase 1 is pop-heavy (the asymmetric corner: victim
// announces dominate), phase 2 is steal-heavy (the symmetric corner: each
// steal costs a signal round trip). A static policy is optimal in one
// phase and pays heavily in the other; the adaptive policy must track both
// regimes and switch exactly twice.
//
//   bench_adapt            # 120 + 120 windows
//   bench_adapt --quick    # CI smoke mode: 40 + 40 windows
//
// Emits BENCH_adapt.json in the working directory. Exit 0 requires:
//   - exactly 2 *realized* mode switches, and the fence's switch count
//     agrees with the selector's (every adoption really crossed a
//     quiescent point);
//   - steady state: over the last quarter of each phase the adaptive cost
//     is within 1.10x of the best static policy for that phase;
//   - across the phase change: the worst static policy costs >= 1.5x the
//     adaptive total;
//   - a live Scheduler<AdaptiveFence> run (adaptation on) computes the
//     same fib checksum as the symmetric baseline scheduler.
//
// A second section replays a high-symmetric-traffic phase (pops ≈ steals,
// the double-l-mfence cell of BENCH_sweep.json at LE/ST-scale round
// trips) across the serialization-backend matrix {signal, membarrier-pair,
// sim-lest}. Gates:
//   - on the role-inverting backends the selector books double-l-mfence
//     AND the fence realizes it (realized_mode, not just requested), with
//     zero degradations, and the modeled tail cost beats parity with the
//     best static policy;
//   - on the signal backend double-l-mfence is never proposed (its table
//     plane clamps the cell), and a forced request_mode(double) books it
//     but realizes only the asymmetric mix, counted by degraded_count —
//     the booked-vs-realized split satellite;
//   - when the host lacks membarrier, realization legs report SKIPPED
//     (loud degradation is then the *correct* behavior) instead of
//     failing.

#include <cstdio>
#include <cstring>
#include <string>

#include "lbmf/adapt/adapt.hpp"
#include "lbmf/backend/backend.hpp"
#include "lbmf/model/cost_model.hpp"
#include "lbmf/ws/scheduler.hpp"

using namespace lbmf;

namespace {

struct PhaseSpec {
  const char* name;
  int windows;
  std::uint64_t pops;    // victim announces per window
  std::uint64_t steals;  // steal attempts per window
};

// Window cost under mode m: the victim pays its announce fence per pop,
// each steal attempt costs the thief a remote serialization and the victim
// its penalty — exactly ws_predicted_cycles' accounting, per window.
double window_cost(adapt::PolicyMode m, std::uint64_t pops,
                   std::uint64_t steals, const model::CostTable& c) {
  using model::FenceImpl;
  FenceImpl f = FenceImpl::kMfence;
  if (m == adapt::PolicyMode::kAsymmetric) f = FenceImpl::kSignal;
  if (m == adapt::PolicyMode::kDoubleLmfence) f = FenceImpl::kLest;
  return static_cast<double>(pops) * model::victim_fence_cycles(f, c) +
         static_cast<double>(steals) *
             (model::remote_serialize_cycles(f, c) +
              model::primary_penalty_cycles(f, c));
}

// Spawn-recursive fib for the live-scheduler checksum leg.
template <typename P>
void fib(long n, long* out) {
  if (n < 2) {
    *out = n;
    return;
  }
  long a = 0, b = 0;
  typename ws::Scheduler<P>::TaskGroup tg;
  auto t = tg.capture([n, &a] { fib<P>(n - 1, &a); });
  tg.spawn(t);
  fib<P>(n - 2, &b);
  tg.sync();
  *out = a + b;
}

void append_num(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  s += buf;
}

struct BackendLeg {
  bool gate_ok = true;
  bool skipped = false;  // host cannot realize this backend's inversion
};

// One backend's replay of the high-symmetric-traffic phase: pops ≈ steals
// at an LE/ST-scale modeled round trip — the double-l-mfence cell of
// BENCH_sweep.json. The selector consults the backend's table plane, the
// fence is re-bound to the backend, and every window is priced under the
// *realized* mode. Appends one JSON object to `json`.
BackendLeg run_backend_leg(backend::BackendId id, int windows,
                           const model::CostTable& costs, std::string& json) {
  const char* name = backend::to_string(id);
  const bool inverting =
      backend::serialization_backend(id).caps().inverts_roles;
  BackendLeg leg;

  adapt::SelectorConfig cfg;
  // The sim-lest backend's configurable RTT (~150 cycles, the paper's
  // LE/ST constant) — pinned so the replay is deterministic and both new
  // backends are priced in the regime the double cell belongs to.
  cfg.fixed_roundtrip_cycles = 150.0;
  cfg.backend = name;
  adapt::PolicySelector sel(adapt::PolicyTable::builtin_default(), cfg);

  adapt::AdaptiveFence::Handle h = adapt::AdaptiveFence::register_primary();
  if (!h.valid()) {
    std::printf("  %-16s FAIL: could not register primary\n", name);
    leg.gate_ok = false;
    return leg;
  }
  adapt::AdaptiveFence::request_backend(h, id);
  adapt::AdaptiveFence::quiescent_point(h);

  const std::uint64_t kPops = 200, kSteals = 200;
  std::uint64_t pops_total = 0, steals_total = 0;
  bool booked_double = false, realized_double = false;
  double tail_cost = 0.0;
  const int tail_from = windows - windows / 4;
  for (int w = 0; w < windows; ++w) {
    pops_total += kPops;
    steals_total += kSteals;
    const adapt::PolicyMode want = sel.update(pops_total, steals_total);
    adapt::AdaptiveFence::request_mode(h, want);
    adapt::AdaptiveFence::quiescent_point(h);
    booked_double |= adapt::AdaptiveFence::booked_mode(h) ==
                     adapt::PolicyMode::kDoubleLmfence;
    const adapt::PolicyMode realized = adapt::AdaptiveFence::realized_mode(h);
    realized_double |= realized == adapt::PolicyMode::kDoubleLmfence;
    if (w >= tail_from) {
      tail_cost += window_cost(realized, kPops, kSteals, costs);
    }
  }

  const double sym_w =
      window_cost(adapt::PolicyMode::kSymmetric, kPops, kSteals, costs);
  const double asym_w =
      window_cost(adapt::PolicyMode::kAsymmetric, kPops, kSteals, costs);
  const double best_static_tail =
      (sym_w < asym_w ? sym_w : asym_w) * static_cast<double>(windows / 4);
  const bool parity_ok = tail_cost <= 1.10 * best_static_tail;

  if (id == backend::BackendId::kSignal) {
    // Fixed roles: the signal plane clamps the double cell, so double must
    // never even be *booked* from the selector...
    leg.gate_ok &= !booked_double && !realized_double && parity_ok;
    // ...and a forced request books it but realizes only the asymmetric
    // mix, with the degradation counted — the booked-vs-realized split.
    adapt::AdaptiveFence::request_mode(h,
                                       adapt::PolicyMode::kDoubleLmfence);
    adapt::AdaptiveFence::quiescent_point(h);
    leg.gate_ok &= adapt::AdaptiveFence::booked_mode(h) ==
                       adapt::PolicyMode::kDoubleLmfence &&
                   adapt::AdaptiveFence::realized_mode(h) ==
                       adapt::PolicyMode::kAsymmetric &&
                   adapt::AdaptiveFence::degraded_count(h) >= 1;
  } else if (inverting) {
    // The workload point the ISSUE asks for: the adaptive policy selects
    // double-l-mfence AND the fence realizes it, with no degradation, at
    // or beyond cost parity with the best static policy.
    leg.gate_ok &= booked_double && realized_double &&
                   adapt::AdaptiveFence::degraded_count(h) == 0 && parity_ok;
  } else {
    // Host cannot realize the inversion (no membarrier): booking still
    // happens, realization degrades loudly — correct, but not gateable.
    leg.skipped = true;
    leg.gate_ok &= booked_double && !realized_double &&
                   adapt::AdaptiveFence::degraded_count(h) >= 1;
  }

  const std::uint64_t realized_switches =
      adapt::AdaptiveFence::switch_count(h);
  const std::uint64_t booked_switches =
      adapt::AdaptiveFence::booked_switch_count(h);
  const std::uint64_t degraded = adapt::AdaptiveFence::degraded_count(h);
  adapt::AdaptiveFence::unregister_primary(h);

  std::printf("  %-16s booked double %-3s realized double %-3s "
              "switches %llu/%llu booked, degraded %llu, tail %.0f "
              "(best static %.0f)  %s\n",
              name, booked_double ? "yes" : "no",
              realized_double ? "yes" : "no",
              static_cast<unsigned long long>(realized_switches),
              static_cast<unsigned long long>(booked_switches),
              static_cast<unsigned long long>(degraded), tail_cost,
              best_static_tail,
              leg.skipped ? "SKIPPED (backend unavailable)"
                          : (leg.gate_ok ? "ok" : "GATE FAILED"));

  if (!json.empty()) json += ',';
  json += "{\"backend\":\"";
  json += name;
  json += "\",\"booked_double\":";
  json += booked_double ? "true" : "false";
  json += ",\"realized_double\":";
  json += realized_double ? "true" : "false";
  json += ",\"realized_switches\":" + std::to_string(realized_switches);
  json += ",\"booked_switches\":" + std::to_string(booked_switches);
  json += ",\"degraded\":" + std::to_string(degraded);
  json += ",\"tail_cost\":";
  append_num(json, tail_cost);
  json += ",\"best_static_tail\":";
  append_num(json, best_static_tail);
  json += ",\"skipped\":";
  json += leg.skipped ? "true" : "false";
  json += ",\"ok\":";
  json += leg.gate_ok ? "true" : "false";
  json += '}';
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int phase_windows = quick ? 40 : 120;

  // The two steady-state extremes of the E17 frontier at the signal
  // prototype's 10k-cycle round trip: a ~2000:1 pop:steal mix wants the
  // asymmetric fence, a 1:4 mix wants mfence.
  const PhaseSpec phases[] = {
      {"pop-heavy", phase_windows, 2000, 1},
      {"steal-heavy", phase_windows, 50, 200},
  };
  const model::CostTable costs;

  // Real stack end to end: table + hysteresis + a live registered primary
  // whose mode is switched at explicit quiescent points. The round trip is
  // pinned to the model constant so the replay is deterministic.
  adapt::SelectorConfig cfg;
  cfg.fixed_roundtrip_cycles = costs.signal_roundtrip_cycles;
  adapt::PolicySelector selector(adapt::PolicyTable::builtin_default(), cfg);
  adapt::AdaptiveFence::Handle h = adapt::AdaptiveFence::register_primary();
  if (!h.valid()) {
    std::printf("FAIL: could not register an adaptive primary\n");
    return 1;
  }

  double cost_adaptive = 0.0, cost_sym = 0.0, cost_asym = 0.0;
  bool tails_ok = true;
  std::uint64_t pops_total = 0, steals_total = 0;

  std::printf("adaptive policy replay, %d+%d windows\n\n", phase_windows,
              phase_windows);
  for (const PhaseSpec& ph : phases) {
    const double sym_w =
        window_cost(adapt::PolicyMode::kSymmetric, ph.pops, ph.steals, costs);
    const double asym_w =
        window_cost(adapt::PolicyMode::kAsymmetric, ph.pops, ph.steals, costs);
    const double best_w = sym_w < asym_w ? sym_w : asym_w;
    double tail_cost = 0.0;
    const int tail_from = ph.windows - ph.windows / 4;

    for (int w = 0; w < ph.windows; ++w) {
      pops_total += ph.pops;
      steals_total += ph.steals;
      const adapt::PolicyMode want =
          selector.update(pops_total, steals_total);
      adapt::AdaptiveFence::request_mode(h, want);
      // Between replay windows no announce is outstanding on this thread —
      // the quiescent point where a decided switch may be adopted.
      adapt::AdaptiveFence::quiescent_point(h);
      const adapt::PolicyMode mode = adapt::AdaptiveFence::current_mode(h);
      const double c = window_cost(mode, ph.pops, ph.steals, costs);
      cost_adaptive += c;
      if (w >= tail_from) tail_cost += c;
      cost_sym += sym_w;
      cost_asym += asym_w;
    }

    const double tail_best = best_w * static_cast<double>(ph.windows / 4);
    const bool tail_ok = tail_cost <= 1.10 * tail_best;
    tails_ok &= tail_ok;
    std::printf(
        "  %-12s %4d windows  sym %.0f c/w  asym %.0f c/w  "
        "adaptive tail %.0f (best %.0f)  %s\n",
        ph.name, ph.windows, sym_w, asym_w, tail_cost, tail_best,
        tail_ok ? "ok" : "LAGGING");
  }

  const std::uint64_t fence_switches = adapt::AdaptiveFence::switch_count(h);
  adapt::AdaptiveFence::unregister_primary(h);
  const std::uint64_t switches = selector.switches();
  const double worst_static = cost_sym > cost_asym ? cost_sym : cost_asym;
  const double best_static = cost_sym < cost_asym ? cost_sym : cost_asym;
  const bool switches_ok = switches == 2 && fence_switches == switches;
  const bool phase_win = worst_static >= 1.5 * cost_adaptive;

  std::printf("\n  totals: adaptive %.0f, static sym %.0f, static asym %.0f\n",
              cost_adaptive, cost_sym, cost_asym);
  std::printf("  switches: selector %llu, fence %llu (want 2)\n",
              static_cast<unsigned long long>(switches),
              static_cast<unsigned long long>(fence_switches));
  std::printf("  worst static / adaptive = %.2fx (gate >= 1.5x)\n",
              cost_adaptive > 0.0 ? worst_static / cost_adaptive : 0.0);

  // Live leg: the adaptive scheduler must still compute correct answers
  // with adaptation enabled (switching machinery racing real steals).
  long want = 0, got = 0;
  {
    ws::Scheduler<SymmetricFence> base(2);
    base.run([&] { fib<SymmetricFence>(18, &want); });
  }
  {
    ws::Scheduler<adapt::AdaptiveFence> sched(2);
    ws::AdaptationOptions opts;
    opts.selector.confirm_windows = 1;
    opts.sample_every = 64;
    sched.enable_adaptation(opts);
    sched.run([&] { fib<adapt::AdaptiveFence>(18, &got); });
  }
  const bool live_ok = want == got && want == 2584;
  std::printf("  live scheduler checksum: fib(18) = %ld vs %ld  %s\n", got,
              want, live_ok ? "ok" : "MISMATCH");

  // Backend matrix: the double-l-mfence cell across serialization
  // backends (see the header comment for the gates).
  const int matrix_windows = quick ? 20 : 60;
  std::printf("\nbackend matrix (pops = steals = 200/window, rt 150, "
              "%d windows):\n",
              matrix_windows);
  std::string backends_json;
  bool backends_ok = true;
  for (backend::BackendId id :
       {backend::BackendId::kSignal, backend::BackendId::kMembarrierPair,
        backend::BackendId::kSimLest}) {
    backends_ok &= run_backend_leg(id, matrix_windows, costs,
                                   backends_json).gate_ok;
  }

  std::string json = "{\"bench\":\"adapt\",\"phase_windows\":";
  json += std::to_string(phase_windows);
  json += ",\"cost_adaptive\":";
  append_num(json, cost_adaptive);
  json += ",\"cost_static_symmetric\":";
  append_num(json, cost_sym);
  json += ",\"cost_static_asymmetric\":";
  append_num(json, cost_asym);
  json += ",\"best_static\":";
  append_num(json, best_static);
  json += ",\"switches\":" + std::to_string(switches);
  json += ",\"tails_ok\":";
  json += tails_ok ? "true" : "false";
  json += ",\"phase_win_factor\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f",
                cost_adaptive > 0.0 ? worst_static / cost_adaptive : 0.0);
  json += buf;
  json += ",\"backend_matrix\":[" + backends_json + "]}";
  if (std::FILE* f = std::fopen("BENCH_adapt.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("wrote BENCH_adapt.json\n");
  }

  const bool pass =
      switches_ok && tails_ok && phase_win && live_ok && backends_ok;
  std::printf("%s\n", pass ? "PASS"
                           : "FAIL: lagging tail, wrong switch count, "
                             "missing phase-change win, bad checksum, or "
                             "backend-matrix gate");
  return pass ? 0 : 1;
}
