// E19 — the serving tier end to end (lbmf::serve): the paper's
// packet-processing application (Sec. 1) grown to server shape — per-core
// flow-table shards whose owners are l-mfence primaries, SPSC client lanes,
// a wave-batched secondary control plane, and optional per-shard adaptive
// fence selection. Four legs, each an acceptance gate:
//
//   A  capacity   owner-side incremental rehash sustains >= 1M live flows
//                 across >= 8 shards with live growth (no pause, no
//                 pre-sizing), fed purely through the data path.
//   B  ablation   asymmetric vs symmetric fence policy at the rare-update
//                 serving point: asym must win >= 1.3x on BOTH p99 request
//                 sojourn and flows/sec (the tier-level form of E10).
//   C  wave       one cross-shard rule-push wave (one fence + one
//                 overlapped serialize_many) vs sequential per-shard
//                 secondary acquisition: wave must win >= 2x.
//   D  adaptive   a data-heavy phase then a rule-update storm: every
//                 shard's selector must re-bind its fence regime at least
//                 once (>= 1 recorded policy switch per shard).
//
//   bench_serve [--quick]    # --quick shortens windows for CI
//
// Emits BENCH_serve.json; exit 0 iff all four gates pass. Latencies are
// client-side sojourns (reap tsc - submit tsc) from the log-bucketed
// histogram, reported in ns via the calibrated TSC frequency.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/serve/serve.hpp"
#include "lbmf/util/histogram.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;
using namespace lbmf::serve;

namespace {

void append_num(std::string& s, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  s += buf;
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  s += buf;
}

// ------------------------------------------------------------------ leg A

struct FillResult {
  double seconds = 0;
  double flows_per_second = 0;
  std::size_t flows = 0;
  std::size_t shards = 0;
  std::size_t grows = 0;
  bool ok = false;
};

/// Fill the tier with `target` distinct flows through the data path only:
/// every shard starts at a small table and must reach ~target/shards live
/// entries via its own incremental rehash, while serving.
FillResult run_fill(std::size_t target, double timeout_s) {
  ServeConfig cfg;
  cfg.shards = 8;
  cfg.max_clients = 1;
  cfg.ring_capacity = 1024;
  cfg.batch_limit = 256;
  cfg.initial_shard_capacity = 1u << 12;  // 1M flows = ~5 doublings/shard
  cfg.growth = flowtable::Growth::kGrowable;
  Server<AsymmetricSignalFence> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  FillResult r;
  r.shards = cfg.shards;
  Stopwatch sw;
  std::uint64_t submitted = 0, reaped = 0;
  FlowKey next = 1;  // distinct keys: one new flow per request
  bool timed_out = false;
  while (submitted < target) {
    const std::uint64_t now = rdtsc();
    for (int i = 0; i < 16 && submitted < target; ++i) {
      if (client.try_submit(next, 64, /*burst=*/1, now)) {
        ++next;
        ++submitted;
      } else {
        break;
      }
    }
    reaped += client.poll();
    if ((submitted & 0xFFFF) == 0 && sw.seconds() > timeout_s) {
      timed_out = true;
      break;
    }
  }
  while (reaped < submitted) reaped += client.poll();
  r.seconds = sw.seconds();
  r.flows = srv.live_flows();
  srv.stop();
  const ServerStats s = srv.stats();
  r.grows = s.grows;
  r.flows_per_second = r.seconds > 0 ? static_cast<double>(r.flows) / r.seconds
                                     : 0.0;
  r.ok = !timed_out && r.flows >= target;
  return r;
}

// ------------------------------------------------------------------ leg B

struct TrafficResult {
  double packets_per_second = 0;
  double p50_ns = 0;
  double p99_ns = 0;
  std::uint64_t requests = 0;
};

/// Closed-loop serving window over a hot key population with a rare-update
/// control plane (one rule push per `update_interval` — E10's "paper
/// regime" point, at tier level). The client keeps the lanes saturated up
/// to the in-flight bound; sojourns land in a client-side histogram.
template <typename P>
TrafficResult run_traffic(double window_s, std::uint32_t burst,
                          std::size_t hot_keys,
                          std::chrono::microseconds update_interval) {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.max_clients = 1;
  // Deep rings: on an oversubscribed box the owners and the client share
  // cores, so each owner must find a full scheduling slice worth of queued
  // requests every time it wakes — otherwise throughput is set by the
  // context-switch rotation and the per-packet fence cost (the thing this
  // leg measures) disappears into it. The in-flight bound (== ring size)
  // also fixes the closed-loop population, so by Little's law the p99
  // sojourn tracks 1/throughput and both gates move together.
  cfg.ring_capacity = 8192;
  cfg.batch_limit = 256;
  cfg.initial_shard_capacity = 1u << 12;  // no growth noise in the ablation
  Server<P> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  std::atomic<bool> stop{false};
  std::thread updater([&] {
    std::uint32_t rule = 1;
    FlowKey k = 1;
    while (!stop.load(std::memory_order_acquire)) {
      srv.update_rule(k % hot_keys + 1, rule++);
      ++k;
      std::this_thread::sleep_for(update_interval);
    }
  });

  LogHistogram hist;
  Stopwatch sw;
  std::uint64_t submitted = 0, reaped = 0;
  FlowKey next = 0;
  while (sw.seconds() < window_s) {
    const std::uint64_t now = rdtsc();
    for (int i = 0; i < 64; ++i) {
      if (client.try_submit(next % hot_keys + 1, 64, burst, now)) {
        ++next;
        ++submitted;
      } else {
        break;
      }
    }
    reaped += client.poll(&hist);
  }
  while (reaped < submitted) reaped += client.poll(&hist);
  const double secs = sw.seconds();
  stop.store(true, std::memory_order_release);
  updater.join();
  srv.stop();

  TrafficResult r;
  r.requests = submitted;
  r.packets_per_second =
      secs > 0 ? static_cast<double>(submitted) * burst / secs : 0.0;
  r.p50_ns = tsc_to_ns(hist.percentile(50));
  r.p99_ns = tsc_to_ns(hist.percentile(99));
  return r;
}

// ------------------------------------------------------------------ leg C

struct WaveResult {
  double wave_cycles = 0;  // median
  double seq_cycles = 0;   // median
  double ratio = 0;        // seq / wave
};

double median(std::vector<std::uint64_t>& v) {
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return static_cast<double>(v[v.size() / 2]);
}

/// One rule push per shard, applied as one cross-shard wave vs as eight
/// sequential secondary acquisitions, owners idle (pure control-plane
/// cost). The wave pays one fence and overlaps the eight remote
/// serializations; sequential pays eight full round trips.
WaveResult run_wave(std::size_t rounds) {
  ServeConfig cfg;
  cfg.shards = 8;
  cfg.max_clients = 1;
  cfg.ring_capacity = 64;
  Server<AsymmetricSignalFence> srv(cfg);
  srv.start();

  // One key per shard so both paths touch all eight tables.
  std::vector<RuleUpdate> updates;
  {
    std::vector<bool> have(cfg.shards, false);
    for (FlowKey k = 1; updates.size() < cfg.shards; ++k) {
      const std::size_t s = srv.shard_of(k);
      if (!have[s]) {
        have[s] = true;
        updates.push_back({k, 1});
      }
    }
  }

  std::vector<std::uint64_t> wave, seq;
  wave.reserve(rounds);
  seq.reserve(rounds);
  for (std::size_t round = 0; round < rounds + 5; ++round) {
    for (RuleUpdate& u : updates) u.rule = static_cast<std::uint32_t>(round);
    std::uint64_t t0 = rdtscp();
    srv.push_rules_wave(updates);
    std::uint64_t t1 = rdtscp();
    srv.push_rules_sequential(updates);
    std::uint64_t t2 = rdtscp();
    if (round >= 5) {  // warmup discarded
      wave.push_back(t1 - t0);
      seq.push_back(t2 - t1);
    }
  }
  srv.stop();

  WaveResult r;
  r.wave_cycles = median(wave);
  r.seq_cycles = median(seq);
  r.ratio = r.wave_cycles > 0 ? r.seq_cycles / r.wave_cycles : 0.0;
  return r;
}

// ------------------------------------------------------------------ leg D

struct AdaptResult {
  std::uint64_t min_switches = 0;  // across shards
  std::uint64_t total_switches = 0;
  bool ok = false;
};

/// Phase change under the adaptive policy: a data-heavy serving phase
/// (announce-dominated => the table says asymmetric) followed by a
/// rule-update storm with the client silent (serialization-dominated =>
/// symmetric). Every shard's selector must re-bind at least once.
AdaptResult run_adaptive(double phase_s) {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.max_clients = 1;
  cfg.ring_capacity = 256;
  cfg.batch_limit = 64;
  cfg.adapt = true;
  cfg.sample_every = 256;
  cfg.selector.confirm_windows = 2;
  // Price remote serialization at its signal-path cost so the table's
  // regime boundary sits between the two phases (see E18).
  cfg.selector.fixed_roundtrip_cycles = 10000;
  Server<adapt::AdaptiveFence> srv(cfg);
  srv.start();
  auto client = srv.make_client();

  // Phase 1: pure data traffic over a hot set.
  Stopwatch sw;
  std::uint64_t submitted = 0, reaped = 0;
  FlowKey next = 0;
  while (sw.seconds() < phase_s) {
    const std::uint64_t now = rdtsc();
    for (int i = 0; i < 8; ++i) {
      if (client.try_submit(next % 256 + 1, 64, /*burst=*/4, now)) {
        ++next;
        ++submitted;
      } else {
        break;
      }
    }
    reaped += client.poll();
  }
  while (reaped < submitted) reaped += client.poll();

  // Phase 2: client silent, control plane storms both shards.
  sw.reset();
  std::uint32_t rule = 0;
  FlowKey k = 0;
  while (sw.seconds() < phase_s) {
    srv.update_rule(k % 1024 + 1, rule++);
    ++k;
  }
  srv.stop();

  AdaptResult r;
  const ServerStats s = srv.stats();
  r.min_switches = ~std::uint64_t{0};
  for (const ShardStats& sh : s.shards) {
    r.min_switches = std::min(r.min_switches, sh.policy_switches);
    r.total_switches += sh.policy_switches;
  }
  r.ok = r.min_switches >= 1;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const double window = quick ? 0.3 : 1.0;
  const std::size_t wave_rounds = quick ? 40 : 200;
  constexpr std::size_t kTargetFlows = 1'000'000;

  std::printf("E19 — serving tier (lbmf::serve), %s mode\n\n",
              quick ? "quick" : "full");

  std::printf("[A] capacity: filling %zu flows through 8 growable shards...\n",
              kTargetFlows);
  const FillResult fill = run_fill(kTargetFlows, /*timeout_s=*/120.0);
  std::printf("    %zu live flows across %zu shards in %.2fs "
              "(%.0f flows/s, %zu table grows) %s\n",
              fill.flows, fill.shards, fill.seconds, fill.flows_per_second,
              fill.grows, fill.ok ? "ok" : "FAILED");

  std::printf("[B] ablation: rare-update serving, sym vs asym (%.1fs/window)\n",
              window);
  const TrafficResult sym = run_traffic<SymmetricFence>(
      window, /*burst=*/32, /*hot_keys=*/4096,
      std::chrono::microseconds(10000));
  const TrafficResult asym = run_traffic<AsymmetricSignalFence>(
      window, /*burst=*/32, /*hot_keys=*/4096,
      std::chrono::microseconds(10000));
  const double tput_ratio =
      sym.packets_per_second > 0
          ? asym.packets_per_second / sym.packets_per_second
          : 0.0;
  const double p99_ratio = asym.p99_ns > 0 ? sym.p99_ns / asym.p99_ns : 0.0;
  std::printf("    sym : %12.0f pkt/s  p50 %8.0f ns  p99 %8.0f ns\n",
              sym.packets_per_second, sym.p50_ns, sym.p99_ns);
  std::printf("    asym: %12.0f pkt/s  p50 %8.0f ns  p99 %8.0f ns\n",
              asym.packets_per_second, asym.p50_ns, asym.p99_ns);
  std::printf("    asym/sym throughput %.2fx, sym/asym p99 %.2fx\n",
              tput_ratio, p99_ratio);

  std::printf("[C] wave: 8-shard rule push, batched vs sequential "
              "(%zu rounds)\n", wave_rounds);
  const WaveResult wavr = run_wave(wave_rounds);
  std::printf("    wave %8.0f cycles, sequential %8.0f cycles => %.2fx\n",
              wavr.wave_cycles, wavr.seq_cycles, wavr.ratio);

  std::printf("[D] adaptive: data phase then update storm (%.1fs each)\n",
              window);
  const AdaptResult ad = run_adaptive(window);
  std::printf("    policy switches: min/shard %llu, total %llu %s\n",
              static_cast<unsigned long long>(ad.min_switches),
              static_cast<unsigned long long>(ad.total_switches),
              ad.ok ? "ok" : "FAILED");

  const bool pass_a = fill.ok && fill.shards >= 8 && fill.grows > 0;
  const bool pass_b = tput_ratio >= 1.3 && p99_ratio >= 1.3;
  const bool pass_c = wavr.ratio >= 2.0;
  const bool pass_d = ad.ok;
  const bool pass = pass_a && pass_b && pass_c && pass_d;

  std::string json = "{\"bench\":\"serve\",\"quick\":";
  json += quick ? "true" : "false";
  json += ",\"capacity\":{\"flows\":";
  append_u64(json, fill.flows);
  json += ",\"shards\":";
  append_u64(json, fill.shards);
  json += ",\"grows\":";
  append_u64(json, fill.grows);
  json += ",\"seconds\":";
  append_num(json, fill.seconds);
  json += ",\"flows_per_second\":";
  append_num(json, fill.flows_per_second);
  json += "},\"ablation\":{\"sym_pps\":";
  append_num(json, sym.packets_per_second);
  json += ",\"asym_pps\":";
  append_num(json, asym.packets_per_second);
  json += ",\"sym_p50_ns\":";
  append_num(json, sym.p50_ns);
  json += ",\"asym_p50_ns\":";
  append_num(json, asym.p50_ns);
  json += ",\"sym_p99_ns\":";
  append_num(json, sym.p99_ns);
  json += ",\"asym_p99_ns\":";
  append_num(json, asym.p99_ns);
  json += ",\"throughput_ratio\":";
  append_num(json, tput_ratio);
  json += ",\"p99_ratio\":";
  append_num(json, p99_ratio);
  json += "},\"wave\":{\"wave_cycles\":";
  append_num(json, wavr.wave_cycles);
  json += ",\"seq_cycles\":";
  append_num(json, wavr.seq_cycles);
  json += ",\"ratio\":";
  append_num(json, wavr.ratio);
  json += "},\"adaptive\":{\"min_switches\":";
  append_u64(json, ad.min_switches);
  json += ",\"total_switches\":";
  append_u64(json, ad.total_switches);
  json += "},\"pass\":{\"capacity\":";
  json += pass_a ? "true" : "false";
  json += ",\"ablation\":";
  json += pass_b ? "true" : "false";
  json += ",\"wave\":";
  json += pass_c ? "true" : "false";
  json += ",\"adaptive\":";
  json += pass_d ? "true" : "false";
  json += "}}";

  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_serve.json\n");
  }

  std::printf("%s  (A:%s >=1M flows/8 shards/grown;  B:%s >=1.3x tput+p99;"
              "  C:%s >=2x wave;  D:%s >=1 switch/shard)\n",
              pass ? "PASS" : "FAIL", pass_a ? "ok" : "FAIL",
              pass_b ? "ok" : "FAIL", pass_c ? "ok" : "FAIL",
              pass_d ? "ok" : "FAIL");
  return pass ? 0 : 1;
}
