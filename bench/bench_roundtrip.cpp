// E2 — Sec. 5 cost comparison: "The estimated cost of a single round trip
// communication is in the order of 10,000 cycles ... the round trip time in
// the LE/ST mechanism ... costs about 150 cycles on our system."
//
// Measures, in cycles:
//   * the real signal-based serialize() round trip (the software prototype),
//   * the real membarrier() round trip (the modern asymmetric fence),
//   * a local mfence for scale,
//   * the simulated LE/ST round trip (the hardware the paper proposes),
//   * the simulated signal round trip (sanity check of the cost table).

#include <atomic>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "lbmf/core/fence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/util/stats.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

Summary measure_cycles(int reps, int inner, const std::function<void()>& op) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t c0 = rdtscp();
    for (int i = 0; i < inner; ++i) op();
    const std::uint64_t c1 = rdtscp();
    samples.push_back(static_cast<double>(c1 - c0) /
                      static_cast<double>(inner));
  }
  return summarize(std::move(samples));
}

}  // namespace

int main() {
  std::printf("E2: remote-serialization round-trip costs (cycles)\n\n");

  // --- local mfence, for scale ------------------------------------------
  const Summary fence = measure_cycles(50, 1000, [] { full_fence(); });
  std::printf("%-26s p50=%8.0f  mean=%8.0f\n", "local mfence", fence.p50,
              fence.mean);

  // --- real signal round trip -------------------------------------------
  {
    auto& reg = SerializerRegistry::instance();
    std::atomic<bool> ready{false};
    std::atomic<bool> stop{false};
    SerializerRegistry::Handle handle;
    std::thread primary([&] {
      handle = reg.register_self();
      ready.store(true, std::memory_order_release);
      while (!stop.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      reg.unregister_self(handle);
    });
    while (!ready.load(std::memory_order_acquire)) std::this_thread::yield();

    const Summary sig =
        measure_cycles(30, 20, [&] { reg.serialize(handle); });
    std::printf("%-26s p50=%8.0f  mean=%8.0f   (paper: ~10,000)\n",
                "signal serialize (sw)", sig.p50, sig.mean);

    stop.store(true, std::memory_order_release);
    primary.join();
  }

  // --- membarrier round trip --------------------------------------------
  if (membarrier::available()) {
    std::atomic<bool> stop{false};
    std::thread peer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
      }
    });
    const Summary mb = measure_cycles(30, 20, [] { membarrier::barrier(); });
    std::printf("%-26s p50=%8.0f  mean=%8.0f\n", "membarrier (kernel)",
                mb.p50, mb.mean);
    stop.store(true, std::memory_order_relaxed);
    peer.join();
  } else {
    std::printf("%-26s (not supported on this kernel)\n", "membarrier");
  }

  // --- simulated LE/ST and signal round trips ----------------------------
  {
    using namespace lbmf::sim;
    Machine hw = make_roundtrip_machine(/*use_interrupt=*/false);
    for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);
    hw.step(1, Action::Execute);
    std::printf("%-26s      %8llu              (paper: ~150)\n",
                "LE/ST round trip (sim)",
                static_cast<unsigned long long>(hw.cpu(1).counters.cycles));

    Machine sw = make_roundtrip_machine(/*use_interrupt=*/true);
    sw.step(0, Action::Execute);
    sw.deliver_interrupt(0);
    sw.step(1, Action::Execute);
    std::printf("%-26s      %8llu              (paper: ~10,000)\n",
                "signal round trip (sim)",
                static_cast<unsigned long long>(sw.cpu(0).counters.cycles +
                                                sw.cpu(1).counters.cycles));
  }

  std::printf(
      "\nShape check: signal-serialize must be orders of magnitude above a\n"
      "local mfence, and the simulated LE/ST round trip sits at the L1-miss/\n"
      "L2-hit scale the paper reports — the gap that motivates the hardware.\n");
  return 0;
}
