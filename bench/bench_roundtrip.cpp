// E2 / E15 — Sec. 5 cost comparison plus the batching/coalescing win.
//
// E2 (Sec. 5): "The estimated cost of a single round trip communication is
// in the order of 10,000 cycles ... the round trip time in the LE/ST
// mechanism ... costs about 150 cycles on our system."
//
// E15: the round trip is expensive, so the serializer makes it pay once,
// not N times. Measured here:
//   * pre-PR sequential fan-out over 8 primaries (one spin-awaited round
//     trip each, the old writer shape) vs. one batched serialize_many wave
//     (post all, then collect all) — claim: the wave costs the slowest
//     round trip, not the sum (>= 3x);
//   * 8 secondaries hammering ONE primary with coalescing disabled
//     (every request posts its own signal) vs. enabled (requests share the
//     in-flight signal's ack) — claim: >= 2x aggregate throughput.
//
// Usage: bench_roundtrip [--quick]
// Emits BENCH_roundtrip.json; exit code gates the two E15 ratios.

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "lbmf/core/fence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "lbmf/util/stats.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;

namespace {

Summary measure_cycles(int reps, int inner, const std::function<void()>& op) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::uint64_t c0 = rdtscp();
    for (int i = 0; i < inner; ++i) op();
    const std::uint64_t c1 = rdtscp();
    samples.push_back(static_cast<double>(c1 - c0) /
                      static_cast<double>(inner));
  }
  return summarize(std::move(samples));
}

/// A pool of registered-primary threads that idle (yield) until told to
/// stop — the "readers parked elsewhere" a fan-out writer signals.
class PrimaryPool {
 public:
  explicit PrimaryPool(std::size_t n) : handles_(n) {
    for (std::size_t i = 0; i < n; ++i) {
      threads_.emplace_back([this, i] {
        auto& reg = SerializerRegistry::instance();
        handles_[i] = reg.register_self();
        registered_.fetch_add(1, std::memory_order_acq_rel);
        while (!stop_.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        reg.unregister_self(handles_[i]);
      });
    }
    while (registered_.load(std::memory_order_acquire) <
           static_cast<int>(n)) {
      std::this_thread::yield();
    }
  }

  ~PrimaryPool() {
    stop_.store(true, std::memory_order_release);
    for (auto& t : threads_) t.join();
  }

  const std::vector<SerializerRegistry::Handle>& handles() const {
    return handles_;
  }

 private:
  std::vector<SerializerRegistry::Handle> handles_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> registered_{0};
};

/// Aggregate serialize() completions/sec of `secondaries` threads hammering
/// one primary for `window_s` seconds, with or without request coalescing.
double coalescing_throughput(int secondaries, double window_s,
                             bool coalesced) {
  auto& reg = SerializerRegistry::instance();
  PrimaryPool pool(1);
  const auto handle = pool.handles()[0];

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < secondaries; ++t) {
    workers.emplace_back([&] {
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const bool ok = coalesced ? reg.serialize(handle)
                                  : reg.serialize_uncoalesced(handle);
        if (ok) ++local;
      }
      completed.fetch_add(local, std::memory_order_relaxed);
    });
  }
  Stopwatch sw;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(window_s * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  return static_cast<double>(completed.load()) / sw.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  auto& reg = SerializerRegistry::instance();

  std::printf("E2/E15: remote-serialization round-trip costs (cycles)\n\n");

  // --- local mfence, for scale ------------------------------------------
  const Summary fence = measure_cycles(50, 1000, [] { full_fence(); });
  std::printf("%-26s p50=%8.0f  mean=%8.0f\n", "local mfence", fence.p50,
              fence.mean);

  // --- real signal round trip -------------------------------------------
  Summary sig;
  {
    PrimaryPool pool(1);
    const auto handle = pool.handles()[0];
    sig = measure_cycles(quick ? 15 : 30, 20,
                         [&] { reg.serialize(handle); });
    std::printf("%-26s p50=%8.0f  mean=%8.0f   (paper: ~10,000)\n",
                "signal serialize (sw)", sig.p50, sig.mean);
  }

  // --- E15a: sequential fan-out vs. one batched wave, 8 primaries --------
  constexpr std::size_t kPrimaries = 8;
  Summary seq_wave, batch_wave;
  {
    PrimaryPool pool(kPrimaries);
    const auto& handles = pool.handles();
    const int reps = quick ? 15 : 40;
    // Pre-PR writer shape: one fully awaited (spin-waited) round trip per
    // primary, in a loop. serialize_uncoalesced preserves that path.
    seq_wave = measure_cycles(reps, 4, [&] {
      for (const auto& h : handles) reg.serialize_uncoalesced(h);
    });
    batch_wave = measure_cycles(reps, 4, [&] {
      reg.serialize_many(handles);
    });
  }
  const double batch_speedup = seq_wave.mean / batch_wave.mean;
  std::printf("%-26s p50=%8.0f  mean=%8.0f   (pre-PR: 8 awaited trips)\n",
              "sequential fan-out x8", seq_wave.p50, seq_wave.mean);
  std::printf("%-26s p50=%8.0f  mean=%8.0f   (one overlapped wave)\n",
              "serialize_many x8", batch_wave.p50, batch_wave.mean);
  std::printf("%-26s %8.1fx              (target >= 3x)\n",
              "batched fan-out speedup", batch_speedup);

  // --- E15b: coalescing, 8 secondaries on one primary --------------------
  constexpr int kSecondaries = 8;
  const double window = quick ? 0.15 : 0.5;
  const double uncoalesced =
      coalescing_throughput(kSecondaries, window, /*coalesced=*/false);
  const double coalesced =
      coalescing_throughput(kSecondaries, window, /*coalesced=*/true);
  const double coalesce_ratio = uncoalesced > 0 ? coalesced / uncoalesced : 0;
  std::printf("\ncoalescing, %d secondaries hammering one primary:\n",
              kSecondaries);
  std::printf("%-26s %12.0f ops/sec (every request posts a signal)\n",
              "uncoalesced serialize", uncoalesced);
  std::printf("%-26s %12.0f ops/sec (requests share the in-flight ack)\n",
              "coalesced serialize", coalesced);
  std::printf("%-26s %8.1fx              (target >= 2x)\n",
              "coalescing throughput", coalesce_ratio);

  // --- membarrier round trip --------------------------------------------
  if (membarrier::available()) {
    std::atomic<bool> stop{false};
    std::thread peer([&] {
      while (!stop.load(std::memory_order_relaxed)) {
      }
    });
    const Summary mb = measure_cycles(quick ? 15 : 30, 20,
                                      [] { membarrier::barrier(); });
    std::printf("\n%-26s p50=%8.0f  mean=%8.0f  (one syscall serializes "
                "every thread: a full wave for the price of one trip)\n",
                "membarrier (kernel)", mb.p50, mb.mean);
    stop.store(true, std::memory_order_relaxed);
    peer.join();
  } else {
    std::printf("\n%-26s (not supported on this kernel)\n", "membarrier");
  }

  // --- simulated LE/ST and signal round trips ----------------------------
  {
    using namespace lbmf::sim;
    Machine hw = make_roundtrip_machine(/*use_interrupt=*/false);
    for (int i = 0; i < 4; ++i) hw.step(0, Action::Execute);
    hw.step(1, Action::Execute);
    std::printf("%-26s      %8llu              (paper: ~150)\n",
                "LE/ST round trip (sim)",
                static_cast<unsigned long long>(hw.cpu(1).counters.cycles));

    Machine sw = make_roundtrip_machine(/*use_interrupt=*/true);
    sw.step(0, Action::Execute);
    sw.deliver_interrupt(0);
    sw.step(1, Action::Execute);
    std::printf("%-26s      %8llu              (paper: ~10,000)\n",
                "signal round trip (sim)",
                static_cast<unsigned long long>(sw.cpu(0).counters.cycles +
                                                sw.cpu(1).counters.cycles));
  }

  std::printf(
      "\nShape check: signal-serialize sits orders of magnitude above a\n"
      "local mfence — which is why the fan-out sites batch and coalesce so\n"
      "the round trip is paid once (max), not once per participant (sum).\n");

  if (std::FILE* f = std::fopen("BENCH_roundtrip.json", "w")) {
    std::fprintf(
        f,
        "{\"bench\":\"roundtrip\",\"primaries\":%zu,\"secondaries\":%d,"
        "\"signal_p50_cycles\":%.0f,\"seq_wave_mean_cycles\":%.0f,"
        "\"batch_wave_mean_cycles\":%.0f,\"batch_speedup\":%.2f,"
        "\"uncoalesced_ops_per_sec\":%.0f,\"coalesced_ops_per_sec\":%.0f,"
        "\"coalesce_ratio\":%.2f,\"quick\":%s}\n",
        kPrimaries, kSecondaries, sig.p50, seq_wave.mean, batch_wave.mean,
        batch_speedup, uncoalesced, coalesced, coalesce_ratio,
        quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_roundtrip.json\n");
  }

  const bool pass = batch_speedup >= 3.0 && coalesce_ratio >= 2.0;
  std::printf("%s\n", pass ? "PASS" : "FAIL: below target ratios");
  return pass ? 0 : 1;
}
