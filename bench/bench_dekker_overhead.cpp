// E1 — the paper's Sec. 1 motivating claim: "a thread running alone and
// executing the Dekker protocol with a memory fence, accessing only a few
// memory locations in the critical section, runs 4-7 times slower than when
// it is executing the same code without a memory fence."
//
// Each benchmark is one uncontended Dekker entry/exit with a 4-word
// critical section, under a different fence discipline on the announce
// path. Compare items/sec: no_fence vs mfence reproduces the 4-7x band;
// the asymmetric policies must sit near no_fence.

#include <benchmark/benchmark.h>

#include <atomic>

#include "lbmf/dekker/dekker.hpp"
#include "lbmf/dekker/peterson.hpp"

namespace lbmf {
namespace {

/// One uncontended lock/unlock plus a tiny critical section, mirroring the
/// paper's "accessing only a few memory locations".
template <FencePolicy P>
void dekker_solo_iteration(AsymmetricDekker<P>& d, volatile long* cells) {
  d.lock_primary();
  for (int i = 0; i < 4; ++i) cells[i] = cells[i] + 1;
  d.unlock_primary();
}

template <FencePolicy P>
void BM_DekkerSolo(benchmark::State& state) {
  AsymmetricDekker<P> d;
  d.bind_primary();
  alignas(64) volatile long cells[4] = {0, 0, 0, 0};
  for (auto _ : state) {
    dekker_solo_iteration(d, cells);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
  d.unbind_primary();
}

BENCHMARK(BM_DekkerSolo<UnsafeNoFence>)->Name("dekker_solo/no_fence");
BENCHMARK(BM_DekkerSolo<SymmetricFence>)->Name("dekker_solo/mfence");
BENCHMARK(BM_DekkerSolo<AsymmetricSignalFence>)
    ->Name("dekker_solo/lmfence_signal");
BENCHMARK(BM_DekkerSolo<AsymmetricMembarrierFence>)
    ->Name("dekker_solo/lmfence_membarrier");

/// The bare announce (store + fence + load) without the protocol around it,
/// to isolate the fence cost itself.
template <FencePolicy P>
void BM_AnnounceOnly(benchmark::State& state) {
  alignas(64) std::atomic<int> flag{0};
  alignas(64) std::atomic<int> peer{0};
  long acc = 0;
  for (auto _ : state) {
    flag.store(1, std::memory_order_relaxed);
    P::primary_fence();
    acc += peer.load(std::memory_order_relaxed);
    flag.store(0, std::memory_order_relaxed);
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_AnnounceOnly<UnsafeNoFence>)->Name("announce/no_fence");
BENCHMARK(BM_AnnounceOnly<SymmetricFence>)->Name("announce/mfence");
BENCHMARK(BM_AnnounceOnly<AsymmetricSignalFence>)->Name("announce/lmfence");

/// Peterson's entry (the Sec. 7 future-work algorithm), uncontended.
template <FencePolicy P>
void BM_PetersonSolo(benchmark::State& state) {
  AsymmetricPeterson<P> p;
  p.bind_primary();
  volatile long x = 0;
  for (auto _ : state) {
    p.lock_primary();
    x = x + 1;
    p.unlock_primary();
  }
  benchmark::DoNotOptimize(x);
  state.SetItemsProcessed(state.iterations());
  p.unbind_primary();
}

BENCHMARK(BM_PetersonSolo<SymmetricFence>)->Name("peterson_solo/mfence");
BENCHMARK(BM_PetersonSolo<AsymmetricSignalFence>)
    ->Name("peterson_solo/lmfence");

}  // namespace
}  // namespace lbmf

BENCHMARK_MAIN();
