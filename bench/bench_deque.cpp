// E13 (ablation) — the victim's pop/take fast path across the two deque
// designs (Cilk-5 THE vs Chase-Lev) and fence policies: the Dekker fence
// the paper removes sits in both, so l-mfence accelerates both. Measures
// an uncontended push+pop pair, which is the spawn/return hot path of a
// work-stealing runtime.

#include <benchmark/benchmark.h>

#include "lbmf/ws/chase_lev.hpp"
#include "lbmf/ws/deque.hpp"
#include "lbmf/ws/task.hpp"

namespace lbmf::ws {
namespace {

template <FencePolicy P>
TaskBase* pop_one(TheDeque<P>& d) {
  return d.pop();
}
template <FencePolicy P>
TaskBase* pop_one(ChaseLevDeque<P>& d) {
  return d.take();
}

template <typename Deque, FencePolicy P>
void push_pop_loop(benchmark::State& state) {
  Deque d;
  auto handle = P::register_primary();
  d.set_owner_handle(handle);
  TaskGroupBase g;
  auto task = ClosureTask(g, [] {});
  for (auto _ : state) {
    d.push(&task);
    TaskBase* t = pop_one(d);
    benchmark::DoNotOptimize(t);
  }
  state.SetItemsProcessed(state.iterations());
  P::unregister_primary(handle);
}

template <FencePolicy P>
void BM_ThePushPop(benchmark::State& state) {
  push_pop_loop<TheDeque<P>, P>(state);
}
template <FencePolicy P>
void BM_ChaseLevPushPop(benchmark::State& state) {
  push_pop_loop<ChaseLevDeque<P>, P>(state);
}

BENCHMARK(BM_ThePushPop<SymmetricFence>)->Name("the_deque/push_pop/mfence");
BENCHMARK(BM_ThePushPop<AsymmetricSignalFence>)
    ->Name("the_deque/push_pop/lmfence");
BENCHMARK(BM_ChaseLevPushPop<SymmetricFence>)
    ->Name("chase_lev/push_take/mfence");
BENCHMARK(BM_ChaseLevPushPop<AsymmetricSignalFence>)
    ->Name("chase_lev/push_take/lmfence");

}  // namespace
}  // namespace lbmf::ws

BENCHMARK_MAIN();
