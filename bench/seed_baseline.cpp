// Frozen seed-commit implementation (cache.cpp + machine.cpp as of the
// seed) for the bench_explorer baseline. See seed_baseline.hpp.

#include "seed_baseline.hpp"

#include <algorithm>
#include <cstdio>

#include "lbmf/sim/trace.hpp"

#include "lbmf/util/check.hpp"
#include "lbmf/util/rng.hpp"

namespace lbmf::seedsim {

using sim::EventKind;


const CacheLine* Cache::peek(Addr base) const noexcept {
  for (const auto& l : lines_) {
    if (l.base == base) return &l;
  }
  return nullptr;
}

CacheLine* Cache::touch(Addr base) noexcept {
  for (auto& l : lines_) {
    if (l.base == base) {
      l.lru = ++clock_;
      return &l;
    }
  }
  return nullptr;
}

std::optional<CacheLine> Cache::insert(Addr base, Mesi state,
                                       std::vector<Word> data) {
  LBMF_CHECK(state != Mesi::Invalid);
  if (CacheLine* existing = touch(base)) {
    existing->state = state;
    existing->data = std::move(data);
    return std::nullopt;
  }
  std::optional<CacheLine> evicted;
  if (lines_.size() >= capacity_) {
    auto victim = std::min_element(
        lines_.begin(), lines_.end(),
        [](const CacheLine& x, const CacheLine& y) { return x.lru < y.lru; });
    evicted = std::move(*victim);
    lines_.erase(victim);
  }
  lines_.push_back(CacheLine{base, state, std::move(data), ++clock_});
  return evicted;
}

void Cache::set_state(Addr base, Mesi state) noexcept {
  for (auto& l : lines_) {
    if (l.base == base) {
      l.state = state;
      return;
    }
  }
}

std::optional<CacheLine> Cache::erase(Addr base) noexcept {
  for (auto it = lines_.begin(); it != lines_.end(); ++it) {
    if (it->base == base) {
      CacheLine removed = std::move(*it);
      lines_.erase(it);
      return removed;
    }
  }
  return std::nullopt;
}

StoreEntry StoreBuffer::pop_oldest() {
  LBMF_CHECK(!entries_.empty());
  StoreEntry e = entries_.front();
  entries_.erase(entries_.begin());
  return e;
}

std::optional<Word> StoreBuffer::forwarded_value(Addr a) const noexcept {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->addr == a) return it->value;
  }
  return std::nullopt;
}


namespace {

/// States in which no other cache may hold a valid copy — the states the
/// l-mfence link requires (Def. 3) and in which a store may complete.
bool is_exclusive_state(Mesi s) noexcept {
  return s == Mesi::Exclusive || s == Mesi::Modified;
}

/// States holding dirty data (memory may be stale).
bool is_dirty_state(Mesi s) noexcept {
  return s == Mesi::Modified || s == Mesi::Owned;
}

}  // namespace


Machine::Machine(SimConfig cfg) : cfg_(cfg) {
  LBMF_CHECK(cfg_.num_cpus >= 1 && cfg_.num_cpus <= 64);
  LBMF_CHECK(cfg_.sb_capacity >= 1);
  LBMF_CHECK(cfg_.cache_capacity >= 2);
  LBMF_CHECK(cfg_.line_words >= 1);
  cpus_.reserve(cfg_.num_cpus);
  for (std::size_t i = 0; i < cfg_.num_cpus; ++i) cpus_.emplace_back(cfg_);
}

void Machine::load_program(std::size_t cpu, Program p) {
  LBMF_CHECK(cpu < cpus_.size());
  cpus_[cpu].program = std::make_shared<const Program>(std::move(p));
}

Word Machine::memory(Addr a) const {
  auto it = mem_.find(a);
  return it == mem_.end() ? 0 : it->second;
}

Addr Machine::line_base(Addr a) const noexcept {
  return a - (a % static_cast<Addr>(cfg_.line_words));
}

std::size_t Machine::line_off(Addr a) const noexcept {
  return a % cfg_.line_words;
}

std::vector<Word> Machine::memory_line(Addr base) const {
  std::vector<Word> out(cfg_.line_words);
  for (std::size_t i = 0; i < cfg_.line_words; ++i) {
    out[i] = memory(base + static_cast<Addr>(i));
  }
  return out;
}

void Machine::writeback_line(const CacheLine& l) {
  for (std::size_t i = 0; i < l.data.size(); ++i) {
    mem_[l.base + static_cast<Addr>(i)] = l.data[i];
  }
}

bool Machine::action_enabled(std::size_t cpu, Action a) const {
  if (cpu >= cpus_.size()) return false;
  const CpuState& c = cpus_[cpu];
  switch (a) {
    case Action::Execute:
      return !c.halted && c.program != nullptr;
    case Action::Drain:
      return !c.sb.empty();
    case Action::Interrupt:
      return true;  // interrupts can always arrive
  }
  return false;
}

void Machine::step(std::size_t cpu, Action a) {
  LBMF_CHECK(action_enabled(cpu, a));
  CpuState& c = cpus_[cpu];
  switch (a) {
    case Action::Execute:
      exec_instr(c);
      break;
    case Action::Drain:
      c.counters.cycles += complete_oldest(c);
      break;
    case Action::Interrupt:
      trace(c, static_cast<int>(EventKind::kInterrupt));
      c.counters.cycles += cfg_.cost_interrupt + flush_sb(c);
      break;
  }
}

bool Machine::finished() const {
  for (const auto& c : cpus_) {
    if (!c.halted || !c.sb.empty()) return false;
  }
  return true;
}

std::uint64_t Machine::run_round_robin(std::uint64_t max_steps) {
  std::uint64_t steps = 0;
  while (!finished()) {
    bool progressed = false;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      if (action_enabled(i, Action::Execute)) {
        step(i, Action::Execute);
        ++steps;
        progressed = true;
      } else if (action_enabled(i, Action::Drain)) {
        step(i, Action::Drain);
        ++steps;
        progressed = true;
      }
      LBMF_CHECK_MSG(steps < max_steps, "simulated program did not terminate");
    }
    LBMF_CHECK_MSG(progressed, "simulated machine is wedged");
  }
  return steps;
}

std::uint64_t Machine::run_random(std::uint64_t seed,
                                  std::uint64_t max_steps) {
  Xoshiro256 rng(seed);
  std::uint64_t steps = 0;
  while (!finished()) {
    // Collect enabled (cpu, action) pairs; pick one uniformly.
    Choice enabled[128];
    std::size_t n = 0;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
      if (action_enabled(i, Action::Execute)) {
        enabled[n++] = {static_cast<std::uint8_t>(i), Action::Execute};
      }
      if (action_enabled(i, Action::Drain)) {
        enabled[n++] = {static_cast<std::uint8_t>(i), Action::Drain};
      }
    }
    LBMF_CHECK_MSG(n > 0, "simulated machine is wedged");
    const Choice pick = enabled[rng.next_below(n)];
    step(pick.cpu, pick.action);
    ++steps;
    LBMF_CHECK_MSG(steps < max_steps, "simulated program did not terminate");
  }
  return steps;
}

std::size_t Machine::cpus_in_cs() const {
  std::size_t n = 0;
  for (const auto& c : cpus_) n += c.in_cs ? 1 : 0;
  return n;
}

Mesi Machine::line_state(std::size_t i, Addr a) const {
  const CacheLine* l = cpus_[i].cache.peek(line_base(a));
  return l == nullptr ? Mesi::Invalid : l->state;
}

std::uint64_t Machine::total_cycles() const {
  std::uint64_t t = 0;
  for (const auto& c : cpus_) t += c.counters.cycles;
  return t;
}

void Machine::trace(const CpuState& c, int kind_int, Addr a, Word v,
                    std::string detail) const {
  if (trace_ == nullptr) return;
  const auto cpu_index =
      static_cast<std::uint8_t>(&c - cpus_.data());
  trace_->record(cpu_index, static_cast<EventKind>(kind_int), a, v,
                 std::move(detail));
}

void Machine::deliver_interrupt(std::size_t cpu) {
  LBMF_CHECK(cpu < cpus_.size());
  step(cpu, Action::Interrupt);
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

void Machine::exec_instr(CpuState& c) {
  LBMF_CHECK(c.program != nullptr && !c.halted);
  LBMF_CHECK(c.pc >= 0 &&
             static_cast<std::size_t>(c.pc) < c.program->code.size());
  const Instr& i = c.program->code[c.pc];
  ++c.counters.instructions;
  if (trace_ != nullptr) {
    trace(c, static_cast<int>(EventKind::kExec), i.addr, i.imm,
          sim::to_string(i));
  }
  std::int32_t next_pc = c.pc + 1;

  switch (i.op) {
    case Op::kLoad: {
      ++c.counters.loads;
      if (auto fwd = c.sb.forwarded_value(i.addr)) {
        // Store-buffer forwarding: the CPU always sees its own stores.
        c.regs[i.reg] = *fwd;
        c.counters.cycles += cfg_.cost_load_hit;
      } else if (CacheLine* l = c.cache.touch(line_base(i.addr))) {
        c.regs[i.reg] = l->at(line_off(i.addr));
        c.counters.cycles += cfg_.cost_load_hit;
      } else {
        Word v = 0;
        c.counters.cycles += bus_read(c, i.addr, v);
        c.regs[i.reg] = v;
      }
      break;
    }

    case Op::kStore:
    case Op::kStoreReg: {
      ++c.counters.stores;
      const Word v = (i.op == Op::kStore) ? i.imm : c.regs[i.reg];
      if (c.sb.full()) {
        // Structural stall: the oldest entry must complete first.
        c.counters.cycles += complete_oldest(c);
      }
      StoreEntry e;
      e.addr = i.addr;
      e.value = v;
      // This store is "the store associated with the l-mfence" iff the link
      // is armed for its address at commit time (Sec. 3).
      e.guarded = c.le_bit && c.le_addr == i.addr;
      c.sb.push(e);
      c.counters.cycles += cfg_.cost_store_commit;
      break;
    }

    case Op::kLoadExclusive: {
      ++c.counters.loads;
      // LE is "very similar to a regular load, except the requirement for
      // Exclusive state" (Sec. 3).
      const CacheLine* l = c.cache.peek(line_base(i.addr));
      if (l != nullptr && is_exclusive_state(l->state)) {
        c.regs[i.reg] =
            c.cache.touch(line_base(i.addr))->at(line_off(i.addr));
        c.counters.cycles += cfg_.cost_load_hit;
      } else {
        Word v = 0;
        c.counters.cycles += bus_read_exclusive(c, i.addr, v);
        c.regs[i.reg] = v;
      }
      break;
    }

    case Op::kMfence: {
      ++c.counters.mfences;
      c.counters.cycles += cfg_.cost_mfence_base + flush_sb(c);
      break;
    }

    case Op::kSetLink: {
      if (!cfg_.le_st_enabled) break;  // ablated hardware: link never arms
      if (c.le_bit && c.le_addr != i.addr) {
        // Second l-mfence with a different guarded location while the first
        // link is live: clear and flush before proceeding (Sec. 3).
        ++c.counters.link_breaks_second;
        trace(c, static_cast<int>(EventKind::kGuardSecond), c.le_addr);
        clear_link(c);
        c.counters.cycles += flush_sb(c);
      }
      c.le_bit = true;
      c.le_addr = i.addr;
      ++c.counters.links_armed;
      trace(c, static_cast<int>(EventKind::kLinkArm), i.addr);
      c.counters.cycles += cfg_.cost_reg_op;
      break;
    }

    case Op::kBranchLinkSet:
      if (c.le_bit) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kMovImm:
      c.regs[i.reg] = i.imm;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kAddImm:
      c.regs[i.reg] += i.imm;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kBranchEq:
      if (c.regs[i.reg] == i.imm) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kBranchNe:
      if (c.regs[i.reg] != i.imm) next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kJump:
      next_pc = i.target;
      c.counters.cycles += cfg_.cost_reg_op;
      break;

    case Op::kCsEnter:
      LBMF_CHECK_MSG(!c.in_cs, "nested critical section in litmus program");
      c.in_cs = true;
      break;

    case Op::kCsExit:
      LBMF_CHECK_MSG(c.in_cs, "CS_EXIT without CS_ENTER");
      c.in_cs = false;
      break;

    case Op::kDelay:
      c.counters.cycles += static_cast<std::uint64_t>(i.imm);
      break;

    case Op::kHalt:
      c.halted = true;
      next_pc = c.pc;
      break;

    case Op::kLock:
    case Op::kUnlock:
      // Ops that postdate the seed snapshot; the baseline workloads never
      // execute them.
      LBMF_CHECK_MSG(false, "seed baseline does not implement locked RMWs");
      break;
  }

  c.pc = next_pc;
}

// ---------------------------------------------------------------------------
// Memory system
// ---------------------------------------------------------------------------

void Machine::clear_link(CpuState& c) {
  c.le_bit = false;
  c.le_addr = kInvalidAddr;
}

std::uint64_t Machine::notify_guard_remote(CpuState& owner, Addr base) {
  // The cache controller watches the *line* holding the guarded location:
  // with multi-word lines a remote access to a neighbouring word (false
  // sharing) fires the guard too.
  if (!owner.le_bit || line_base(owner.le_addr) != base) return 0;
  if (owner.flushing) return 0;  // flush already in progress up-stack
  // Sec. 3: the processor clears LEBit/LEAddr, flushes the store buffer and
  // only then replies, so the requester both waits out the flush and is
  // guaranteed to see the completed guarded store.
  ++owner.counters.link_breaks_remote;
  trace(owner, static_cast<int>(EventKind::kGuardRemote), base);
  clear_link(owner);
  owner.flushing = true;
  const std::uint64_t flush_cost = flush_sb(owner);
  owner.flushing = false;
  owner.counters.cycles += flush_cost;
  return flush_cost;
}

void Machine::handle_self_eviction(CpuState& c, const CacheLine& evicted) {
  if (is_dirty_state(evicted.state)) {
    writeback_line(evicted);  // M, or MOESI's O
    trace(c, static_cast<int>(EventKind::kWriteback), evicted.base);
  }
  if (c.le_bit && line_base(c.le_addr) == evicted.base) {
    // The cache controller can no longer watch the guarded line (Sec. 3):
    // break the link and serialize.
    ++c.counters.link_breaks_evict;
    trace(c, static_cast<int>(EventKind::kGuardEvict), evicted.base);
    clear_link(c);
    if (!c.flushing) {
      c.flushing = true;
      c.counters.cycles += flush_sb(c);
      c.flushing = false;
    }
  }
}

std::uint64_t Machine::bus_read(CpuState& c, Addr a, Word& out) {
  ++c.counters.bus_transactions;
  const Addr base = line_base(a);
  trace(c, static_cast<int>(EventKind::kBusRead), base);
  std::uint64_t latency = cfg_.cost_bus_transfer;

  bool someone_else_holds = false;
  std::vector<Word> authoritative = memory_line(base);
  for (auto& other : cpus_) {
    if (&other == &c) continue;
    const CacheLine* l = other.cache.peek(base);
    if (l == nullptr) continue;
    someone_else_holds = true;
    if (is_exclusive_state(l->state)) {
      // A downgrade request: fire the guard first, then surrender
      // exclusivity. The guard flush may have evicted or rewritten the
      // line, so re-look it up.
      latency += notify_guard_remote(other, base);
      if (const CacheLine* after = other.cache.peek(base)) {
        if (after->state == Mesi::Modified) {
          if (cfg_.protocol == Protocol::kMoesi) {
            // MOESI: keep the dirty data, supply it to the reader, and
            // stay responsible for the eventual writeback.
            other.cache.set_state(base, Mesi::Owned);
          } else {
            writeback_line(*after);
            other.cache.set_state(base, Mesi::Shared);
          }
          authoritative = after->data;
        } else if (after->state == Mesi::Exclusive) {
          other.cache.set_state(base, Mesi::Shared);
          authoritative = after->data;
        }
      }
      latency += cfg_.cost_bus_transfer;  // transfer/ack hop
    } else if (l->state == Mesi::Owned) {
      // Owner supplies the data; no state change, memory stays stale.
      authoritative = l->data;
      latency += cfg_.cost_bus_transfer;
    }
  }

  out = authoritative[line_off(a)];
  const Mesi fill =
      someone_else_holds || cfg_.protocol == Protocol::kMsi
          ? Mesi::Shared
          : Mesi::Exclusive;  // E exists in both MESI and MOESI
  if (auto evicted = c.cache.insert(base, fill, std::move(authoritative))) {
    handle_self_eviction(c, *evicted);
  }
  return latency;
}

std::uint64_t Machine::bus_read_exclusive(CpuState& c, Addr a, Word& out) {
  ++c.counters.bus_transactions;
  const Addr base = line_base(a);
  trace(c, static_cast<int>(EventKind::kBusReadX), base);
  std::uint64_t latency = cfg_.cost_bus_transfer;

  // Our own copy may be the authoritative dirty one (e.g. Owned after a
  // downgrade); fold it into memory before we rebuild the line.
  if (const CacheLine* mine = c.cache.peek(base)) {
    if (is_dirty_state(mine->state)) writeback_line(*mine);
  }
  for (auto& other : cpus_) {
    if (&other == &c) continue;
    const CacheLine* l = other.cache.peek(base);
    if (l == nullptr) continue;
    if (is_exclusive_state(l->state)) {
      latency += notify_guard_remote(other, base);
      if (const CacheLine* after = other.cache.peek(base)) {
        if (is_dirty_state(after->state)) writeback_line(*after);
      }
      latency += cfg_.cost_bus_transfer;
    } else if (l->state == Mesi::Owned) {
      writeback_line(*l);
      latency += cfg_.cost_bus_transfer;
    }
    other.cache.erase(base);  // invalidate every remote copy
  }

  std::vector<Word> data = memory_line(base);
  out = data[line_off(a)];
  // MSI has no Exclusive state: an exclusive fill lands directly in M.
  const Mesi fill = cfg_.protocol == Protocol::kMsi ? Mesi::Modified
                                                    : Mesi::Exclusive;
  if (auto evicted = c.cache.insert(base, fill, std::move(data))) {
    handle_self_eviction(c, *evicted);
  }
  return latency;
}

std::uint64_t Machine::acquire_exclusive(CpuState& c, Addr a) {
  const CacheLine* l = c.cache.peek(line_base(a));
  if (l != nullptr && is_exclusive_state(l->state)) return 0;
  Word dummy = 0;
  return bus_read_exclusive(c, a, dummy);
}

std::uint64_t Machine::complete_oldest(CpuState& c) {
  LBMF_CHECK(!c.sb.empty());
  const StoreEntry e = c.sb.pop_oldest();
  trace(c, static_cast<int>(EventKind::kDrain), e.addr, e.value);
  std::uint64_t latency = cfg_.cost_drain_entry;
  latency += acquire_exclusive(c, e.addr);
  CacheLine* l = c.cache.touch(line_base(e.addr));
  LBMF_CHECK_MSG(l != nullptr, "store completion lost its cache line");
  l->at(line_off(e.addr)) = e.value;
  l->state = Mesi::Modified;
  ++c.counters.sb_drains;
  if (e.guarded && c.le_bit && c.le_addr == e.addr) {
    // "Upon completing the store, the processor also clears LEBit and
    // LEAddr" (Sec. 3). With *consecutive same-location l-mfences* (which
    // Sec. 3 explicitly allows without an intervening flush) several
    // guarded stores can be buffered at once; the link must survive until
    // the newest completes, or a remote reader could be handed the older
    // value without triggering a flush of the newer one — violating the
    // Definition 2 ordering. The line may stay in M either way.
    bool newer_guarded_pending = false;
    for (const StoreEntry& rest : c.sb.entries()) {
      if (rest.guarded && rest.addr == e.addr) {
        newer_guarded_pending = true;
        break;
      }
    }
    if (!newer_guarded_pending) {
      ++c.counters.link_clears_complete;
      trace(c, static_cast<int>(EventKind::kLinkComplete), e.addr);
      clear_link(c);
    }
  }
  return latency;
}

std::uint64_t Machine::flush_sb(CpuState& c) {
  std::uint64_t latency = 0;
  while (!c.sb.empty()) latency += complete_oldest(c);
  return latency;
}

// ---------------------------------------------------------------------------
// Invariants and canonical state
// ---------------------------------------------------------------------------

std::optional<std::string> Machine::check_coherence() const {
  // Def. 3: once the guarded store has committed (a guarded entry sits in
  // the buffer) with LEBit still set, the guarded line must be in E/M
  // locally — any event that takes the line out of E/M must have cleared
  // LEBit on its way. Between SetLink and LE the bit may be set without the
  // line; that window is legal.
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    const CpuState& c = cpus_[i];
    if (!c.le_bit) continue;
    bool has_guarded_entry = false;
    for (const StoreEntry& e : c.sb.entries()) {
      if (e.guarded && e.addr == c.le_addr) has_guarded_entry = true;
    }
    if (!has_guarded_entry) continue;
    const CacheLine* g = c.cache.peek(c.le_addr);
    if (g == nullptr || !is_exclusive_state(g->state)) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "armed link without E/M line on cpu %zu",
                    i);
      return std::string(buf);
    }
  }
  // Single-writer-multiple-reader, protocol-conformance and value
  // agreement invariants, per line.
  for (std::size_t i = 0; i < cpus_.size(); ++i) {
    for (const CacheLine& l : cpus_[i].cache.lines()) {
      // Protocol conformance: which states may exist at all.
      if (cfg_.protocol == Protocol::kMsi && l.state == Mesi::Exclusive) {
        return "Exclusive state present under MSI";
      }
      if (cfg_.protocol != Protocol::kMoesi && l.state == Mesi::Owned) {
        return "Owned state present outside MOESI";
      }
      if (l.data.size() != cfg_.line_words) {
        return "cache line has wrong width";
      }

      std::size_t exclusive_holders = 0;  // E or M
      std::size_t owned_holders = 0;      // O (MOESI)
      std::size_t sharers = 0;
      std::vector<Word> authoritative = memory_line(l.base);
      for (std::size_t j = 0; j < cpus_.size(); ++j) {
        const CacheLine* o = cpus_[j].cache.peek(l.base);
        if (o == nullptr) continue;
        if (is_exclusive_state(o->state)) {
          ++exclusive_holders;
        } else if (o->state == Mesi::Owned) {
          ++owned_holders;
        } else if (o->state == Mesi::Shared) {
          ++sharers;
        }
        if (is_dirty_state(o->state)) authoritative = o->data;
      }
      if (exclusive_holders > 1 ||
          (exclusive_holders == 1 && (sharers > 0 || owned_holders > 0)) ||
          owned_holders > 1) {
        char buf[112];
        std::snprintf(buf, sizeof(buf),
                      "SWMR violated at line %u: %zu E/M, %zu O, %zu S",
                      l.base, exclusive_holders, owned_holders, sharers);
        return std::string(buf);
      }
      // Non-dirty copies must agree with the authoritative data (the
      // dirty owner's line under MOESI, memory otherwise).
      if ((l.state == Mesi::Shared || l.state == Mesi::Exclusive) &&
          l.data != authoritative) {
        char buf[96];
        std::snprintf(buf, sizeof(buf),
                      "clean line stale at line %u on cpu %zu", l.base, i);
        return std::string(buf);
      }
    }
  }
  return std::nullopt;
}

std::string Machine::canonical_state() const {
  std::string s;
  s.reserve(256);
  auto put32 = [&s](std::uint32_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  auto put64 = [&s](std::uint64_t v) {
    s.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (const auto& c : cpus_) {
    put32(static_cast<std::uint32_t>(c.pc));
    for (Word r : c.regs) put64(static_cast<std::uint64_t>(r));
    s.push_back(static_cast<char>((c.halted ? 1 : 0) | (c.in_cs ? 2 : 0) |
                                  (c.le_bit ? 4 : 0)));
    put32(c.le_addr);
    put32(static_cast<std::uint32_t>(c.sb.size()));
    for (const StoreEntry& e : c.sb.entries()) {
      put32(e.addr);
      put64(static_cast<std::uint64_t>(e.value));
      s.push_back(e.guarded ? 1 : 0);
    }
    // Cache lines sorted by address, with LRU encoded as eviction *rank*
    // (the fine-grained stamp values differ between equivalent histories).
    std::vector<CacheLine> lines = c.cache.lines();
    std::sort(lines.begin(), lines.end(),
              [](const CacheLine& x, const CacheLine& y) {
                return x.base < y.base;
              });
    std::vector<std::uint64_t> stamps;
    stamps.reserve(lines.size());
    for (const auto& l : lines) stamps.push_back(l.lru);
    std::sort(stamps.begin(), stamps.end());
    put32(static_cast<std::uint32_t>(lines.size()));
    for (const auto& l : lines) {
      put32(l.base);
      s.push_back(static_cast<char>(l.state));
      for (Word w : l.data) put64(static_cast<std::uint64_t>(w));
      const auto rank = static_cast<std::uint32_t>(
          std::lower_bound(stamps.begin(), stamps.end(), l.lru) -
          stamps.begin());
      put32(rank);
    }
  }
  put32(static_cast<std::uint32_t>(mem_.size()));
  for (const auto& [a, v] : mem_) {
    put32(a);
    put64(static_cast<std::uint64_t>(v));
  }
  return s;
}


}  // namespace lbmf::seedsim
