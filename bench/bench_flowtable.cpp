// E10 (application ablation) — the paper's fourth motivating example
// (Sec. 1): a packet-processing thread owns its flow table; other threads
// occasionally update rules in it. Sweeps the remote-update rate and
// compares owner throughput under the symmetric discipline (mfence per
// packet) against the asymmetric one (l-mfence announce per packet,
// remote updates serialize the owner).
//
// Expected shape: the asymmetric table wins clearly while updates are rare
// (the common case the paper targets) and the gap narrows as the update
// rate grows — the same benefit-vs-communication tradeoff as E9, on a
// realistic workload.
//
//   bench_flowtable [window_seconds]   # sweep only, no gate
//   bench_flowtable --quick            # CI mode: short windows, gated
//
// Emits BENCH_flowtable.json. Exit 0 (gated modes) requires asym/sym >= 1
// at the rare-update point (1 updater / 10ms) — the paper's claimed regime;
// the tighter >= 1.3x latency/throughput acceptance lives in bench_serve
// (E19), which measures the full serving tier rather than one bare table.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lbmf/flowtable/pipeline.hpp"

using namespace lbmf;
using namespace lbmf::flowtable;

int main(int argc, char** argv) {
  bool quick = false;
  double window = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      window = std::atof(argv[i]);
    }
  }
  if (quick) window = 0.15;

  struct Config {
    std::size_t updaters;
    std::uint64_t interval_us;
    const char* label;
    const char* key;  // JSON field name
    bool gated;       // participates in the rare-update gate
  };
  const Config configs[] = {
      {0, 0, "no remote updates", "none", false},
      {1, 10'000, "1 updater / 10ms", "rare_10ms", true},
      {1, 1'000, "1 updater / 1ms", "mid_1ms", false},
      {1, 100, "1 updater / 100us", "frequent_100us", false},
      {2, 100, "2 updaters / 100us", "frequent_2x100us", false},
  };

  std::printf("E10 — flow-table owner throughput (packets/s), window %.2fs\n\n",
              window);
  std::printf("%-22s %14s %14s %8s %10s\n", "remote update rate", "sym pps",
              "asym pps", "asym/sym", "updates");

  std::string json = "{\"bench\":\"flowtable\",\"quick\":";
  json += quick ? "true" : "false";
  json += ",\"window_seconds\":";
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", window);
    json += buf;
  }
  double rare_ratio = 0.0;
  for (const Config& c : configs) {
    const PipelineResult sym = run_pipeline<SymmetricFence>(
        window, c.updaters, c.interval_us);
    const PipelineResult asym = run_pipeline<AsymmetricSignalFence>(
        window, c.updaters, c.interval_us);
    const double ratio = sym.packets_per_second() > 0
                             ? asym.packets_per_second() /
                                   sym.packets_per_second()
                             : 0.0;
    if (c.gated) rare_ratio = ratio;
    std::printf("%-22s %14.0f %14.0f %8.2f %10llu\n", c.label,
                sym.packets_per_second(), asym.packets_per_second(), ratio,
                static_cast<unsigned long long>(asym.remote_updates));
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ",\"%s\":{\"sym_pps\":%.0f,\"asym_pps\":%.0f,"
                  "\"ratio\":%.3f,\"updates\":%llu}",
                  c.key, sym.packets_per_second(), asym.packets_per_second(),
                  ratio,
                  static_cast<unsigned long long>(asym.remote_updates));
    json += buf;
  }
  {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"rare_update_ratio\":%.3f}",
                  rare_ratio);
    json += buf;
  }

  if (std::FILE* f = std::fopen("BENCH_flowtable.json", "w")) {
    std::fprintf(f, "%s\n", json.c_str());
    std::fclose(f);
    std::printf("\nwrote BENCH_flowtable.json\n");
  }

  std::printf(
      "\nasym/sym > 1: the owner's per-packet fence elimination outweighs\n"
      "the serialization cost charged to the (rare) remote updaters.\n");

  const bool pass = rare_ratio >= 1.0;
  std::printf("%s (rare-update asym/sym = %.2f, gate >= 1.0)\n",
              pass ? "PASS" : "FAIL", rare_ratio);
  return pass ? 0 : 1;
}
