// E10 (application ablation) — the paper's fourth motivating example
// (Sec. 1): a packet-processing thread owns its flow table; other threads
// occasionally update rules in it. Sweeps the remote-update rate and
// compares owner throughput under the symmetric discipline (mfence per
// packet) against the asymmetric one (l-mfence announce per packet,
// remote updates serialize the owner).
//
// Expected shape: the asymmetric table wins clearly while updates are rare
// (the common case the paper targets) and the gap narrows as the update
// rate grows — the same benefit-vs-communication tradeoff as E9, on a
// realistic workload.
//
// Usage: bench_flowtable [window_seconds]

#include <cstdio>
#include <cstdlib>

#include "lbmf/flowtable/pipeline.hpp"

using namespace lbmf;
using namespace lbmf::flowtable;

int main(int argc, char** argv) {
  const double window = argc > 1 ? std::atof(argv[1]) : 0.25;

  struct Config {
    std::size_t updaters;
    std::uint64_t interval_us;
    const char* label;
  };
  const Config configs[] = {
      {0, 0, "no remote updates"},
      {1, 10'000, "1 updater / 10ms"},
      {1, 1'000, "1 updater / 1ms"},
      {1, 100, "1 updater / 100us"},
      {2, 100, "2 updaters / 100us"},
  };

  std::printf("E10 — flow-table owner throughput (packets/s), window %.2fs\n\n",
              window);
  std::printf("%-22s %14s %14s %8s %10s\n", "remote update rate", "sym pps",
              "asym pps", "asym/sym", "updates");
  for (const Config& c : configs) {
    const PipelineResult sym = run_pipeline<SymmetricFence>(
        window, c.updaters, c.interval_us);
    const PipelineResult asym = run_pipeline<AsymmetricSignalFence>(
        window, c.updaters, c.interval_us);
    std::printf("%-22s %14.0f %14.0f %8.2f %10llu\n", c.label,
                sym.packets_per_second(), asym.packets_per_second(),
                sym.packets_per_second() > 0
                    ? asym.packets_per_second() / sym.packets_per_second()
                    : 0.0,
                static_cast<unsigned long long>(asym.remote_updates));
  }

  std::printf(
      "\nasym/sym > 1: the owner's per-packet fence elimination outweighs\n"
      "the serialization cost charged to the (rare) remote updaters.\n");
  return 0;
}
