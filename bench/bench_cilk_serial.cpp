// E4 — Fig. 5(a): relative serial execution time of the asymmetric runtime
// (ACilk-5: victim pays a compiler fence, i.e. the l-mfence software
// prototype) against the symmetric baseline (Cilk-5: mfence per pop), for
// the 12 benchmarks of Fig. 4.
//
// Expected shape (paper): every bar below 1; the uncoarsened spawn-bound
// benchmarks (fib, fibx, knapsack) gain the most — fib's spawn overhead is
// roughly halved — while coarsened benchmarks hover just below 1.
//
// Usage: bench_cilk_serial [--test] [reps]

#include <cstdio>
#include <cstring>
#include <string>

#include "lbmf/cilkbench/registry.hpp"
#include "lbmf/model/cost_model.hpp"
#include "lbmf/util/timing.hpp"

using namespace lbmf;
using cilkbench::Benchmark;
using cilkbench::Scale;

namespace {

template <FencePolicy P>
double best_of(ws::Scheduler<P>& sched, const Benchmark& b, int reps,
               std::uint64_t* checksum, ws::SchedulerStats* stats) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    sched.reset_stats();
    Stopwatch sw;
    *checksum = cilkbench::run_on(sched, b);
    best = std::min(best, sw.seconds());
    *stats = sched.stats();
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Scale scale = Scale::kBench;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--test") == 0) scale = Scale::kTest;
    else reps = std::atoi(argv[i]);
  }

  const auto sym_list = cilkbench::all_benchmarks<SymmetricFence>(scale);
  const auto asym_list =
      cilkbench::all_benchmarks<AsymmetricSignalFence>(scale);
  const auto base_list = cilkbench::all_benchmarks<UnsafeNoFence>(scale);

  ws::Scheduler<SymmetricFence> sym(1);
  ws::Scheduler<AsymmetricSignalFence> asym(1);
  ws::Scheduler<UnsafeNoFence> base(1);

  const model::CostTable table;

  std::printf("Fig. 5(a) — relative SERIAL execution time, asym/sym "
              "(< 1: l-mfence wins)\n\n");
  std::printf("%-10s %9s %9s %9s | %8s %8s %8s | %10s\n", "benchmark",
              "sym(ms)", "asym(ms)", "base(ms)", "measured", "mdl:sig",
              "mdl:lest", "spawns");

  for (std::size_t i = 0; i < sym_list.size(); ++i) {
    std::uint64_t cs_sym = 0, cs_asym = 0, cs_base = 0;
    ws::SchedulerStats ss{}, as{}, bs{};
    const double t_sym = best_of(sym, sym_list[i], reps, &cs_sym, &ss);
    const double t_asym = best_of(asym, asym_list[i], reps, &cs_asym, &as);
    const double t_base = best_of(base, base_list[i], reps, &cs_base, &bs);
    if (cs_sym != cs_asym || cs_sym != cs_base) {
      std::fprintf(stderr, "checksum mismatch on %s\n",
                   sym_list[i].name.c_str());
      return 1;
    }
    model::WsCounts counts;
    counts.spawns = bs.spawns;
    counts.steal_attempts = 0;  // serial: no thieves exist
    counts.steals_success = 0;
    counts.work_cycles = t_base * tsc_hz();
    const double mdl_sig =
        model::ws_relative_time(counts, 1, model::FenceImpl::kSignal, table);
    const double mdl_lest =
        model::ws_relative_time(counts, 1, model::FenceImpl::kLest, table);

    std::printf("%-10s %9.2f %9.2f %9.2f | %8.3f %8.3f %8.3f | %10llu\n",
                sym_list[i].name.c_str(), t_sym * 1e3, t_asym * 1e3,
                t_base * 1e3, t_sym > 0 ? t_asym / t_sym : 0.0, mdl_sig,
                mdl_lest, static_cast<unsigned long long>(bs.spawns));
  }

  std::printf(
      "\nmeasured: asym/sym wall time on this host (1 worker).\n"
      "mdl:sig / mdl:lest: cost-model prediction from event counts with the\n"
      "paper's constants (mfence 100cy; signal victim-free; LE/ST ~3cy).\n");
  return 0;
}
