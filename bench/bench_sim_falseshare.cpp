// E12 (ablation) — false sharing on the guarded line. LE/ST operates at
// cache-line granularity, so colocating the guarded location with
// unrelated hot data makes innocent remote accesses break the link and
// flush the primary's store buffer. This bench quantifies the penalty and
// shows that padding (the standard fix, which this library's CacheAligned
// applies to every real protocol flag) restores the fast path.
//
// Sweep: line width x probe placement; report the primary's cycles and
// link-break counts for a fixed l-mfence loop.

#include <cstdio>

#include "lbmf/sim/machine.hpp"
#include "lbmf/sim/program.hpp"

using namespace lbmf::sim;

namespace {

constexpr int kIters = 500;
constexpr int kProbes = 100;

struct Result {
  std::uint64_t primary_cycles;
  std::uint64_t link_breaks;
  std::uint64_t mfences;
};

Result run_case(std::size_t line_words, Addr probe_addr) {
  SimConfig cfg;
  cfg.num_cpus = 2;
  cfg.line_words = line_words;
  Machine m(cfg);

  ProgramBuilder p("primary");
  p.mov(2, kIters);
  p.label("top");
  p.lmfence(0, 1);
  p.delay(10);
  p.store(0, 0);
  p.add(2, -1);
  p.branch_ne(2, 0, "top");
  p.halt();
  m.load_program(0, p.build());

  ProgramBuilder q("prober");
  q.mov(2, kProbes);
  q.label("top");
  q.load(1, probe_addr);
  q.mfence();  // drop state so every probe is a fresh bus transaction
  q.add(2, -1);
  q.branch_ne(2, 0, "top");
  q.halt();
  m.load_program(1, q.build());

  m.run_round_robin();
  return Result{m.cpu(0).counters.cycles,
                m.cpu(0).counters.link_breaks_remote,
                m.cpu(0).counters.mfences};
}

}  // namespace

int main() {
  std::printf("E12 — false sharing on the l-mfence guarded line\n");
  std::printf("(%d-iteration primary loop, %d remote probes)\n\n", kIters,
              kProbes);
  std::printf("%10s %-22s %12s %12s %9s\n", "line", "probe target",
              "primary cyc", "link breaks", "mfences");

  for (std::size_t words : {1u, 4u, 8u}) {
    // Probe the word right next to the guarded location...
    const Result neighbour = run_case(words, 1);
    // ...and a word padded onto its own line.
    const Result padded = run_case(words, static_cast<Addr>(words));
    const char* same_line = words == 1 ? "word 1 (own line)"
                                       : "word 1 (SAME line)";
    std::printf("%7zu w  %-22s %12llu %12llu %9llu\n", words, same_line,
                static_cast<unsigned long long>(neighbour.primary_cycles),
                static_cast<unsigned long long>(neighbour.link_breaks),
                static_cast<unsigned long long>(neighbour.mfences));
    std::printf("%7zu w  %-22s %12llu %12llu %9llu\n", words,
                "padded (next line)",
                static_cast<unsigned long long>(padded.primary_cycles),
                static_cast<unsigned long long>(padded.link_breaks),
                static_cast<unsigned long long>(padded.mfences));
  }

  std::printf(
      "\nWith one word per line the neighbour lives on its own line and\n"
      "never disturbs the guard. With wider lines the same neighbour\n"
      "colocates with the guarded word: every probe breaks the link and\n"
      "flushes the primary (and can force the Fig. 3(b) mfence fallback).\n"
      "Padding the guarded location — as this library's CacheAligned does\n"
      "for every real flag — restores the contact-free fast path.\n");
  return 0;
}
