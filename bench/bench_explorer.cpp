// E14 — explorer engine throughput: the rebuilt explorer (fingerprint
// dedup, iterative DFS with move-at-branch-point, partial-order reduction,
// optional lbmf::ws parallel fan-out, plus the Machine snapshot/serialize
// optimizations that came with it) against the seed engine it replaced, at
// equal max_states. The baseline is the *complete* seed stack — the
// seed-commit Machine (std::map memory, heap-vector cache lines, allocating
// canonical_state()/check_coherence()) compiled verbatim from
// seed_baseline.{hpp,cpp}, driven by the seed's recursive DFS over a
// std::set of full canonical keys with one Machine copy per transition.
//
// Workload: two independent instances of the bundled asymmetric-Dekker
// protocol (l-mfence vs mfence) on one 4-CPU machine. A single pair's
// interleaving graph is only ~560 states — far too small for the visited
// set's asymptotics to matter — so the bench composes two pairs on disjoint
// flag addresses, giving the ~product graph (~310k states) where per-state
// costs dominate, exactly as they would on any non-toy model.
// Mutual-exclusion checking is off in BOTH engines (the two pairs
// legitimately occupy their critical sections concurrently); coherence
// checking stays on in both.
//
// E20 — explorer scale-up: the same binary also measures the three
// reductions that make the big-protocol inferences tractable.
//   symmetry    — three byte-identical Dekker sides; the canonical graph
//                 (states modulo CPU permutation) vs the exact graph, with
//                 equal verdicts (gate: >= 1.3x fewer states).
//   spill       — the exact run re-done under a 64 KiB visited-set budget:
//                 identical state/transition counts, but the cold
//                 fingerprints frozen into mmap'd segments (gate: >= 1
//                 segment, counters unchanged).
//   incremental — a holey Dekker swept over a freq x roundtrip grid, cold
//                 (every verification from the initial state) vs warm
//                 (verifications resume from the persisted hole-independent
//                 prefix region), with bit-identical optima (gate: warm
//                 total explorer work, prefix included, strictly below
//                 cold).
//
//   bench_explorer            # full measurement (120k-state budget)
//   bench_explorer --quick    # CI smoke mode (60k-state budget)
//
// Emits BENCH_explorer.json (states/sec and peak RSS of the default engine,
// the speedup and memory ratios vs the seed baseline, plus the E20
// symmetry/spill/incremental section) in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define LBMF_BENCH_HAVE_RUSAGE 1
#endif

#include "lbmf/infer/infer.hpp"
#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "seed_baseline.hpp"

using namespace lbmf::sim;
namespace seedsim = lbmf::seedsim;

namespace seed {

struct Result {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminals = 0;
  std::uint64_t visited_bytes = 0;  // keys + per-node tree overhead
  bool violation = false;
  bool hit_limit = false;
};

// The seed driver, verbatim in structure: recursion per transition, a
// std::set of full canonical-state strings for dedup, a value-semantic
// Machine snapshot copied for every explored edge, and coherence checked on
// every transition (not once per state), as the seed did.
class Explorer {
 public:
  Explorer(std::uint64_t max_states, bool check_mutex)
      : max_states_(max_states), check_mutex_(check_mutex) {}

  Result run(const seedsim::Machine& m) {
    result_ = Result{};
    visited_.clear();
    done_ = false;
    dfs(m);
    for (const std::string& key : visited_) {
      // string payload + red-black node overhead (3 pointers + color,
      // rounded) + the string header itself.
      result_.visited_bytes +=
          key.size() + 4 * sizeof(void*) + sizeof(std::string);
    }
    return result_;
  }

 private:
  void dfs(const seedsim::Machine& m) {
    if (done_) return;
    if (result_.states >= max_states_) {
      result_.hit_limit = true;
      done_ = true;
      return;
    }
    if (!visited_.insert(m.canonical_state()).second) return;
    ++result_.states;

    bool any_transition = false;
    for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
      for (Action a : {Action::Execute, Action::Drain}) {
        if (!m.action_enabled(cpu, a)) continue;
        any_transition = true;
        seedsim::Machine next = m;  // snapshot per transition
        next.step(cpu, a);
        ++result_.transitions;
        std::optional<std::string> violation = next.check_coherence();
        if (!violation && check_mutex_ && next.cpus_in_cs() > 1) {
          violation = "mutex";
        }
        if (violation) {
          result_.violation = true;
          done_ = true;
          return;
        }
        dfs(next);
        if (done_) return;
      }
    }
    if (!any_transition) ++result_.terminals;
  }

  std::uint64_t max_states_;
  bool check_mutex_;
  std::set<std::string> visited_;
  Result result_;
  bool done_ = false;
};

}  // namespace seed

namespace {

// Disjoint flag pair for the second Dekker instance.
constexpr Addr kPairBFlag0 = 4;
constexpr Addr kPairBFlag1 = 5;

struct Row {
  const char* label;
  std::uint64_t states = 0;
  std::uint64_t visited_bytes = 0;
  double states_per_sec = 0;
  std::uint64_t peak_rss_kib = 0;  // process high-water mark after the row
};

// Process peak resident set size in KiB (monotone: each row reports the
// high-water mark up to and including itself). 0 where getrusage is
// unavailable.
std::uint64_t peak_rss_kib() {
#ifdef LBMF_BENCH_HAVE_RUSAGE
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // bytes there
#else
    return static_cast<std::uint64_t>(ru.ru_maxrss);  // already KiB on Linux
#endif
  }
#endif
  return 0;
}

SimConfig workload_config() {
  SimConfig cfg;
  cfg.num_cpus = 4;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

// The four dekker_side programs of the two independent pairs, loaded into
// either engine's Machine (the program/ISA layer is shared between the
// seed snapshot and the live simulator).
template <typename MachineT>
MachineT workload() {
  MachineT m(workload_config());
  m.load_program(0,
                 dekker_side(addr::kFlag0, addr::kFlag1, FenceKind::kLmfence));
  m.load_program(1, dekker_side(addr::kFlag1, addr::kFlag0, FenceKind::kMfence));
  m.load_program(2, dekker_side(kPairBFlag0, kPairBFlag1, FenceKind::kLmfence));
  m.load_program(3, dekker_side(kPairBFlag1, kPairBFlag0, FenceKind::kMfence));
  return m;
}

// Repeat `run` until `min_seconds` of wall clock is spent and report the
// best per-repetition rate (noise on a shared box only ever slows a rep
// down, so the max is the least-perturbed estimate of the engine's speed).
template <typename Run>
Row measure(const char* label, double min_seconds, Run run) {
  Row row;
  row.label = label;
  double best = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    const auto r0 = std::chrono::steady_clock::now();
    run(&row);
    const auto r1 = std::chrono::steady_clock::now();
    const double rep = std::chrono::duration<double>(r1 - r0).count();
    best = std::max(best, static_cast<double>(row.states) / rep);
    elapsed = std::chrono::duration<double>(r1 - t0).count();
  } while (elapsed < min_seconds);
  row.states_per_sec = best;
  row.peak_rss_kib = peak_rss_kib();
  return row;
}

// E20 symmetry/spill workload: three byte-identical copies of the hot
// (l-mfence) Dekker side contending on one flag pair. auto_symmetry()
// groups all three, so the canonical graph identifies states up to any of
// the 3! CPU permutations — and the exact graph stays small enough to
// enumerate fully in CI.
Machine symmetric_workload() {
  SimConfig cfg = workload_config();
  cfg.num_cpus = 3;
  Machine m(cfg);
  for (std::size_t cpu = 0; cpu < 3; ++cpu) {
    m.load_program(cpu,
                   dekker_side(addr::kFlag0, addr::kFlag1, FenceKind::kLmfence));
  }
  return m;
}

// E20 incremental workload: a holey Dekker behind a hole-independent
// warm-up prefix (the private [V]/[W] traffic), so the persisted prefix
// region — which every verification of every candidate re-explores when
// run cold — is a substantial share of each check.
constexpr const char* kHoleyDekker = R"(cpu 0:
  freq 1000
  store [V], 1
  store [V], 2
  load r2, [V]
  store [V], 3
  ?fence [A], 1
  load r0, [B]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [A], 0
  halt
cpu 1:
  store [W], 1
  store [W], 2
  load r2, [W]
  store [W], 3
  ?fence [B], 1
  load r0, [A]
  bne r0, 0, skip
  cs_enter
  cs_exit
skip:
  store [B], 0
  halt
)";

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Equal state budget for every engine; the full product graph (~310k
  // states) exceeds both budgets, so each row explores exactly this many
  // distinct states and states/sec compares like against like.
  const std::uint64_t max_states = quick ? 60'000 : 120'000;
  const double min_seconds = quick ? 0.5 : 1.0;
  const seedsim::Machine seed_m = workload<seedsim::Machine>();
  const Machine new_m = workload<Machine>();

  std::vector<Row> rows;
  rows.push_back(measure("seed (recursive, std::set, copy/edge)", min_seconds,
                         [&](Row* r) {
                           seed::Explorer ex(max_states, /*check_mutex=*/false);
                           const seed::Result sr = ex.run(seed_m);
                           r->states = sr.states;
                           r->visited_bytes = sr.visited_bytes;
                         }));
  const auto new_engine = [&](bool por, std::size_t threads) {
    return [&, por, threads](Row* r) {
      Explorer::Options opts;
      opts.max_states = max_states;
      opts.por = por;
      opts.threads = threads;
      opts.check_mutual_exclusion = false;  // two pairs share the machine
      const ExploreResult er = explore_all(new_m, opts);
      r->states = er.states_explored;
      r->visited_bytes = er.visited_bytes;
    };
  };
  rows.push_back(
      measure("fingerprint dedup", min_seconds, new_engine(false, 1)));
  rows.push_back(
      measure("fingerprint + POR", min_seconds, new_engine(true, 1)));
  rows.push_back(measure("fingerprint + POR, 4 threads", min_seconds,
                         new_engine(true, 4)));

  std::printf(
      "two independent asymmetric-Dekker pairs (l-mfence/mfence), 4 CPUs,\n"
      "max_states=%llu for every engine, %s measurement\n\n",
      static_cast<unsigned long long>(max_states), quick ? "quick" : "full");
  std::printf("%-34s %8s %12s %14s %12s\n", "engine", "states", "visited-B",
              "states/sec", "peak-RSS-KiB");
  for (const Row& r : rows) {
    std::printf("%-34s %8llu %12llu %14.0f %12llu\n", r.label,
                static_cast<unsigned long long>(r.states),
                static_cast<unsigned long long>(r.visited_bytes),
                r.states_per_sec,
                static_cast<unsigned long long>(r.peak_rss_kib));
  }

  const Row& base = rows[0];
  const Row& fp = rows[1];   // same full graph as the seed: apples-to-apples
  const Row& def = rows[2];  // the default engine configuration
  const double speedup = fp.states_per_sec / base.states_per_sec;
  const double mem_ratio = static_cast<double>(base.visited_bytes) /
                           static_cast<double>(fp.visited_bytes);
  std::printf("\nvs seed engine (equal %llu-state budget):\n",
              static_cast<unsigned long long>(fp.states));
  std::printf("  states/sec speedup : %.1fx   (target >= 5x)\n", speedup);
  std::printf("  visited-set memory : %.1fx smaller   (target >= 4x)\n",
              mem_ratio);
  std::printf("  POR                : same budget spent on the reduced graph "
              "(%llu states)\n",
              static_cast<unsigned long long>(def.states));

  // ---- E20: symmetry reduction, spillable visited set, incremental ----

  // Symmetry: the exact graph vs the canonical (mod CPU permutation) graph
  // of four byte-identical Dekker sides. Equal verdicts, fewer states.
  Explorer::Options e20;
  e20.max_states = 2'000'000;
  e20.check_mutual_exclusion = false;  // all four sides share one CS
  const ExploreResult sym_off = explore_all(symmetric_workload(), e20);
  Machine sym_m = symmetric_workload();
  sym_m.auto_symmetry();
  const ExploreResult sym_on = explore_all(sym_m, e20);
  const double sym_ratio =
      sym_on.states_explored == 0
          ? 0.0
          : static_cast<double>(sym_off.states_explored) /
                static_cast<double>(sym_on.states_explored);
  const bool sym_ok = !sym_off.hit_limit && !sym_on.hit_limit &&
                      sym_off.violation.has_value() ==
                          sym_on.violation.has_value() &&
                      sym_ratio >= 1.3;
  std::printf("\nE20 symmetry (3 identical Dekker sides, orbit %llu):\n"
              "  exact %llu states vs canonical %llu states: %.1fx fewer "
              "(target >= 1.3x), verdicts %s\n",
              static_cast<unsigned long long>(sym_on.symmetry_orbit),
              static_cast<unsigned long long>(sym_off.states_explored),
              static_cast<unsigned long long>(sym_on.states_explored),
              sym_ratio,
              sym_off.violation.has_value() == sym_on.violation.has_value()
                  ? "equal"
                  : "DIFFER");

  // Spill: the exact run again under a 64 KiB visited-set budget. Same
  // graph, same counters; the cold fingerprints land in mmap'd segments.
  Explorer::Options spill_opts = e20;
  spill_opts.visited_budget_bytes = 64 * 1024;
  const ExploreResult spilled = explore_all(symmetric_workload(), spill_opts);
  const bool spill_ok = spilled.states_explored == sym_off.states_explored &&
                        spilled.transitions == sym_off.transitions &&
                        spilled.spill_segments >= 1;
  std::printf("E20 spill (64 KiB budget): %llu states (%s), %.1f KiB in %u "
              "segment(s), %.1f KiB resident\n",
              static_cast<unsigned long long>(spilled.states_explored),
              spilled.states_explored == sym_off.states_explored
                  ? "counters unchanged"
                  : "COUNTERS CHANGED",
              static_cast<double>(spilled.spill_bytes) / 1024.0,
              spilled.spill_segments,
              static_cast<double>(spilled.visited_bytes) / 1024.0);

  // Incremental: sweep the holey Dekker over a freq x roundtrip grid, cold
  // vs warm. Warm verifications resume from the one-time prefix region;
  // the optima must be bit-identical.
  namespace infer = lbmf::infer;
  const infer::ProblemParse parsed = infer::problem_from_source(kHoleyDekker);
  std::uint64_t inc_cold = 0, inc_warm = 0;
  bool inc_ok = false;
  double inc_ratio = 0.0;
  if (parsed.ok()) {
    infer::SweepOptions so;
    so.victim_freqs = {1, 1'000, 100'000};
    so.roundtrips = {150, 1'500};
    so.engine.incremental = false;
    const infer::SweepResult cold = infer::run_sweep(*parsed.problem, so);
    so.engine.incremental = true;
    const infer::SweepResult warm = infer::run_sweep(*parsed.problem, so);
    inc_cold = cold.states_total;
    // Total explorer work including the one-time prefix build, so the
    // comparison cannot hide the region cost.
    inc_warm = warm.states_total + warm.prefix_states;
    bool same_optima = cold.points.size() == warm.points.size();
    for (std::size_t i = 0; same_optima && i < cold.points.size(); ++i) {
      same_optima = cold.points[i].status == warm.points[i].status &&
                    cold.points[i].best.kinds == warm.points[i].best.kinds &&
                    cold.points[i].best_cost == warm.points[i].best_cost;
    }
    inc_ratio = inc_warm == 0 ? 0.0
                              : static_cast<double>(inc_cold) /
                                    static_cast<double>(inc_warm);
    inc_ok = same_optima && warm.incremental_reuses > 0 && inc_warm < inc_cold;
    std::printf("E20 incremental (6-point sweep): cold %llu states vs warm "
                "%llu (+%llu-state prefix, %llu reuses): %.2fx less work, "
                "optima %s\n",
                static_cast<unsigned long long>(inc_cold),
                static_cast<unsigned long long>(warm.states_total),
                static_cast<unsigned long long>(warm.prefix_states),
                static_cast<unsigned long long>(warm.incremental_reuses),
                inc_ratio, same_optima ? "bit-identical" : "DIFFER");
  } else {
    std::printf("E20 incremental: holey workload failed to parse\n");
  }
  const std::uint64_t rss_kib = peak_rss_kib();

  if (std::FILE* f = std::fopen("BENCH_explorer.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"explorer\",\"workload\":\"asymmetric_dekker_x2\","
                 "\"max_states\":%llu,\"states_per_sec\":%.0f,"
                 "\"peak_rss_kib\":%llu,"
                 "\"speedup_vs_seed\":%.2f,\"memory_ratio_vs_seed\":%.2f,",
                 static_cast<unsigned long long>(max_states),
                 def.states_per_sec,
                 static_cast<unsigned long long>(rss_kib), speedup, mem_ratio);
    std::fprintf(f,
                 "\"symmetry\":{\"orbit\":%llu,\"states_exact\":%llu,"
                 "\"states_canonical\":%llu,\"ratio\":%.2f},",
                 static_cast<unsigned long long>(sym_on.symmetry_orbit),
                 static_cast<unsigned long long>(sym_off.states_explored),
                 static_cast<unsigned long long>(sym_on.states_explored),
                 sym_ratio);
    std::fprintf(f,
                 "\"spill\":{\"segments\":%u,\"spill_bytes\":%llu,"
                 "\"counters_unchanged\":%s},",
                 spilled.spill_segments,
                 static_cast<unsigned long long>(spilled.spill_bytes),
                 spill_ok ? "true" : "false");
    std::fprintf(f,
                 "\"incremental\":{\"states_cold\":%llu,\"states_warm\":%llu,"
                 "\"ratio\":%.2f,\"optima_equal\":%s},"
                 "\"quick\":%s}\n",
                 static_cast<unsigned long long>(inc_cold),
                 static_cast<unsigned long long>(inc_warm), inc_ratio,
                 inc_ok ? "true" : "false", quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_explorer.json\n");
  }
  const bool pass =
      speedup >= 5.0 && mem_ratio >= 4.0 && sym_ok && spill_ok && inc_ok;
  if (!pass) {
    std::printf("FAIL:%s%s%s%s\n",
                speedup >= 5.0 && mem_ratio >= 4.0 ? "" : " seed-ratios",
                sym_ok ? "" : " symmetry", spill_ok ? "" : " spill",
                inc_ok ? "" : " incremental");
  } else {
    std::printf("PASS\n");
  }
  return pass ? 0 : 1;
}
