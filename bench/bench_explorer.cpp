// E14 — explorer engine throughput: the rebuilt explorer (fingerprint
// dedup, iterative DFS with move-at-branch-point, partial-order reduction,
// optional lbmf::ws parallel fan-out, plus the Machine snapshot/serialize
// optimizations that came with it) against the seed engine it replaced, at
// equal max_states. The baseline is the *complete* seed stack — the
// seed-commit Machine (std::map memory, heap-vector cache lines, allocating
// canonical_state()/check_coherence()) compiled verbatim from
// seed_baseline.{hpp,cpp}, driven by the seed's recursive DFS over a
// std::set of full canonical keys with one Machine copy per transition.
//
// Workload: two independent instances of the bundled asymmetric-Dekker
// protocol (l-mfence vs mfence) on one 4-CPU machine. A single pair's
// interleaving graph is only ~560 states — far too small for the visited
// set's asymptotics to matter — so the bench composes two pairs on disjoint
// flag addresses, giving the ~product graph (~310k states) where per-state
// costs dominate, exactly as they would on any non-toy model.
// Mutual-exclusion checking is off in BOTH engines (the two pairs
// legitimately occupy their critical sections concurrently); coherence
// checking stays on in both.
//
//   bench_explorer            # full measurement (120k-state budget)
//   bench_explorer --quick    # CI smoke mode (60k-state budget)
//
// Emits BENCH_explorer.json (states/sec of the default engine plus the
// speedup and memory ratios vs the seed baseline) in the working directory.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "lbmf/sim/explorer.hpp"
#include "lbmf/sim/litmus.hpp"
#include "seed_baseline.hpp"

using namespace lbmf::sim;
namespace seedsim = lbmf::seedsim;

namespace seed {

struct Result {
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t terminals = 0;
  std::uint64_t visited_bytes = 0;  // keys + per-node tree overhead
  bool violation = false;
  bool hit_limit = false;
};

// The seed driver, verbatim in structure: recursion per transition, a
// std::set of full canonical-state strings for dedup, a value-semantic
// Machine snapshot copied for every explored edge, and coherence checked on
// every transition (not once per state), as the seed did.
class Explorer {
 public:
  Explorer(std::uint64_t max_states, bool check_mutex)
      : max_states_(max_states), check_mutex_(check_mutex) {}

  Result run(const seedsim::Machine& m) {
    result_ = Result{};
    visited_.clear();
    done_ = false;
    dfs(m);
    for (const std::string& key : visited_) {
      // string payload + red-black node overhead (3 pointers + color,
      // rounded) + the string header itself.
      result_.visited_bytes +=
          key.size() + 4 * sizeof(void*) + sizeof(std::string);
    }
    return result_;
  }

 private:
  void dfs(const seedsim::Machine& m) {
    if (done_) return;
    if (result_.states >= max_states_) {
      result_.hit_limit = true;
      done_ = true;
      return;
    }
    if (!visited_.insert(m.canonical_state()).second) return;
    ++result_.states;

    bool any_transition = false;
    for (std::size_t cpu = 0; cpu < m.num_cpus(); ++cpu) {
      for (Action a : {Action::Execute, Action::Drain}) {
        if (!m.action_enabled(cpu, a)) continue;
        any_transition = true;
        seedsim::Machine next = m;  // snapshot per transition
        next.step(cpu, a);
        ++result_.transitions;
        std::optional<std::string> violation = next.check_coherence();
        if (!violation && check_mutex_ && next.cpus_in_cs() > 1) {
          violation = "mutex";
        }
        if (violation) {
          result_.violation = true;
          done_ = true;
          return;
        }
        dfs(next);
        if (done_) return;
      }
    }
    if (!any_transition) ++result_.terminals;
  }

  std::uint64_t max_states_;
  bool check_mutex_;
  std::set<std::string> visited_;
  Result result_;
  bool done_ = false;
};

}  // namespace seed

namespace {

// Disjoint flag pair for the second Dekker instance.
constexpr Addr kPairBFlag0 = 4;
constexpr Addr kPairBFlag1 = 5;

struct Row {
  const char* label;
  std::uint64_t states = 0;
  std::uint64_t visited_bytes = 0;
  double states_per_sec = 0;
};

SimConfig workload_config() {
  SimConfig cfg;
  cfg.num_cpus = 4;
  cfg.sb_capacity = 4;
  cfg.cache_capacity = 8;
  return cfg;
}

// The four dekker_side programs of the two independent pairs, loaded into
// either engine's Machine (the program/ISA layer is shared between the
// seed snapshot and the live simulator).
template <typename MachineT>
MachineT workload() {
  MachineT m(workload_config());
  m.load_program(0,
                 dekker_side(addr::kFlag0, addr::kFlag1, FenceKind::kLmfence));
  m.load_program(1, dekker_side(addr::kFlag1, addr::kFlag0, FenceKind::kMfence));
  m.load_program(2, dekker_side(kPairBFlag0, kPairBFlag1, FenceKind::kLmfence));
  m.load_program(3, dekker_side(kPairBFlag1, kPairBFlag0, FenceKind::kMfence));
  return m;
}

// Repeat `run` until `min_seconds` of wall clock is spent and report the
// best per-repetition rate (noise on a shared box only ever slows a rep
// down, so the max is the least-perturbed estimate of the engine's speed).
template <typename Run>
Row measure(const char* label, double min_seconds, Run run) {
  Row row;
  row.label = label;
  double best = 0;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0;
  do {
    const auto r0 = std::chrono::steady_clock::now();
    run(&row);
    const auto r1 = std::chrono::steady_clock::now();
    const double rep = std::chrono::duration<double>(r1 - r0).count();
    best = std::max(best, static_cast<double>(row.states) / rep);
    elapsed = std::chrono::duration<double>(r1 - t0).count();
  } while (elapsed < min_seconds);
  row.states_per_sec = best;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  // Equal state budget for every engine; the full product graph (~310k
  // states) exceeds both budgets, so each row explores exactly this many
  // distinct states and states/sec compares like against like.
  const std::uint64_t max_states = quick ? 60'000 : 120'000;
  const double min_seconds = quick ? 0.5 : 1.0;
  const seedsim::Machine seed_m = workload<seedsim::Machine>();
  const Machine new_m = workload<Machine>();

  std::vector<Row> rows;
  rows.push_back(measure("seed (recursive, std::set, copy/edge)", min_seconds,
                         [&](Row* r) {
                           seed::Explorer ex(max_states, /*check_mutex=*/false);
                           const seed::Result sr = ex.run(seed_m);
                           r->states = sr.states;
                           r->visited_bytes = sr.visited_bytes;
                         }));
  const auto new_engine = [&](bool por, std::size_t threads) {
    return [&, por, threads](Row* r) {
      Explorer::Options opts;
      opts.max_states = max_states;
      opts.por = por;
      opts.threads = threads;
      opts.check_mutual_exclusion = false;  // two pairs share the machine
      const ExploreResult er = explore_all(new_m, opts);
      r->states = er.states_explored;
      r->visited_bytes = er.visited_bytes;
    };
  };
  rows.push_back(
      measure("fingerprint dedup", min_seconds, new_engine(false, 1)));
  rows.push_back(
      measure("fingerprint + POR", min_seconds, new_engine(true, 1)));
  rows.push_back(measure("fingerprint + POR, 4 threads", min_seconds,
                         new_engine(true, 4)));

  std::printf(
      "two independent asymmetric-Dekker pairs (l-mfence/mfence), 4 CPUs,\n"
      "max_states=%llu for every engine, %s measurement\n\n",
      static_cast<unsigned long long>(max_states), quick ? "quick" : "full");
  std::printf("%-34s %8s %12s %14s\n", "engine", "states", "visited-B",
              "states/sec");
  for (const Row& r : rows) {
    std::printf("%-34s %8llu %12llu %14.0f\n", r.label,
                static_cast<unsigned long long>(r.states),
                static_cast<unsigned long long>(r.visited_bytes),
                r.states_per_sec);
  }

  const Row& base = rows[0];
  const Row& fp = rows[1];   // same full graph as the seed: apples-to-apples
  const Row& def = rows[2];  // the default engine configuration
  const double speedup = fp.states_per_sec / base.states_per_sec;
  const double mem_ratio = static_cast<double>(base.visited_bytes) /
                           static_cast<double>(fp.visited_bytes);
  std::printf("\nvs seed engine (equal %llu-state budget):\n",
              static_cast<unsigned long long>(fp.states));
  std::printf("  states/sec speedup : %.1fx   (target >= 5x)\n", speedup);
  std::printf("  visited-set memory : %.1fx smaller   (target >= 4x)\n",
              mem_ratio);
  std::printf("  POR                : same budget spent on the reduced graph "
              "(%llu states)\n",
              static_cast<unsigned long long>(def.states));

  if (std::FILE* f = std::fopen("BENCH_explorer.json", "w")) {
    std::fprintf(f,
                 "{\"bench\":\"explorer\",\"workload\":\"asymmetric_dekker_x2\","
                 "\"max_states\":%llu,\"states_per_sec\":%.0f,"
                 "\"speedup_vs_seed\":%.2f,\"memory_ratio_vs_seed\":%.2f,"
                 "\"quick\":%s}\n",
                 static_cast<unsigned long long>(max_states),
                 def.states_per_sec, speedup, mem_ratio,
                 quick ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_explorer.json\n");
  }
  const bool pass = speedup >= 5.0 && mem_ratio >= 4.0;
  std::printf("%s\n", pass ? "PASS" : "FAIL: below target ratios");
  return pass ? 0 : 1;
}
