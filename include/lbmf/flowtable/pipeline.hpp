#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/util/rng.hpp"
#include "lbmf/util/timing.hpp"

namespace lbmf::flowtable {

/// Synthetic traffic source: keys drawn from a bounded flow population with
/// a hot set (approximating the skew of real traffic), deterministic per
/// seed.
class PacketGenerator {
 public:
  PacketGenerator(std::uint64_t seed, std::uint32_t flows,
                  double hot_fraction = 0.1, double hot_probability = 0.9)
      : rng_(seed),
        flows_(flows),
        hot_flows_(std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                                  flows * hot_fraction))),
        hot_probability_(hot_probability) {}

  struct Packet {
    FlowKey key;
    std::uint32_t bytes;
  };

  Packet next() {
    const bool hot = rng_.next_bool(hot_probability_);
    const std::uint64_t base = hot ? rng_.next_below(hot_flows_)
                                   : rng_.next_below(flows_);
    return Packet{base + 1, static_cast<std::uint32_t>(
                                64 + rng_.next_below(1436))};
  }

 private:
  Xoshiro256 rng_;
  std::uint32_t flows_;
  std::uint32_t hot_flows_;
  double hot_probability_;
};

/// Measurement output of one pipeline run.
struct PipelineResult {
  std::uint64_t packets_processed = 0;
  std::uint64_t remote_updates = 0;
  double seconds = 0;
  std::size_t flows_seen = 0;    // live flows at the end of the run
  std::size_t table_grows = 0;   // completed doublings (growable tables)
  DekkerStats sync;

  double packets_per_second() const noexcept {
    return seconds > 0 ? static_cast<double>(packets_processed) / seconds
                       : 0.0;
  }
};

/// One owner thread processing synthetic traffic into its FlowTable while
/// `updaters` other threads occasionally install rules into it — the
/// paper's asymmetric-contention shape, as a reusable harness for tests,
/// the example and the bench.
///
/// `update_interval_us`: mean microseconds between remote rule updates
/// (0 = no updaters).
///
/// `capacity_pow2` sizes the table explicitly; 0 (the default) keeps the
/// historical auto-sizing of 4x the flow population. Pass a small capacity
/// with Growth::kGrowable to exercise owner-side incremental rehash under
/// live traffic — with Growth::kFixed an undersized table still dies with
/// "flow table full", which is the sim-mapped litmus configuration.
template <FencePolicy P>
PipelineResult run_pipeline(double duration_s, std::size_t updaters,
                            std::uint64_t update_interval_us,
                            std::uint32_t flows = 4096,
                            std::uint64_t seed = 0xf10u,
                            std::size_t capacity_pow2 = 0,
                            Growth growth = Growth::kFixed) {
  // Auto-size at 4x the flow population (next power of two) so load factor
  // stays low even when every flow appears.
  std::size_t cap = capacity_pow2;
  if (cap == 0) {
    cap = 1;
    while (cap < static_cast<std::size_t>(flows) * 4) cap <<= 1;
  }
  FlowTable<P> table(cap, growth);
  std::atomic<bool> stop{false};
  std::atomic<bool> owner_ready{false};
  std::atomic<std::size_t> updaters_done{0};
  std::atomic<std::uint64_t> updates{0};
  PipelineResult result;

  std::thread owner([&] {
    table.bind_owner();
    owner_ready.store(true, std::memory_order_release);
    PacketGenerator gen(seed, flows);
    std::uint64_t n = 0;
    Stopwatch sw;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto pkt = gen.next();
      (void)table.record_packet(pkt.key, pkt.bytes);
      ++n;
    }
    result.packets_processed = n;
    result.seconds = sw.seconds();
    // Unbind only after every updater has issued its last serialize().
    while (updaters_done.load(std::memory_order_acquire) < updaters) {
      std::this_thread::yield();
    }
    table.unbind_owner();
  });
  while (!owner_ready.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  std::vector<std::thread> pool;
  for (std::size_t u = 0; u < updaters; ++u) {
    pool.emplace_back([&, u] {
      Xoshiro256 rng(seed ^ (u + 1));
      while (!stop.load(std::memory_order_relaxed)) {
        table.update_rule(rng.next_below(flows) + 1,
                          static_cast<std::uint32_t>(rng.next_below(16)));
        updates.fetch_add(1, std::memory_order_relaxed);
        if (update_interval_us > 0) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(update_interval_us));
        }
      }
      updaters_done.fetch_add(1, std::memory_order_acq_rel);
    });
  }

  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(duration_s * 1e3)));
  stop.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  owner.join();

  result.remote_updates = updates.load();
  result.flows_seen = table.flow_count();
  result.table_grows = table.grow_count();
  result.sync = table.sync_stats();
  return result;
}

}  // namespace lbmf::flowtable
