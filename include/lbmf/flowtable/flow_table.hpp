#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "lbmf/dekker/asymmetric_mutex.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::flowtable {

/// Surrogate for a hashed 5-tuple flow identifier.
using FlowKey = std::uint64_t;

/// Per-flow accounting plus the forwarding rule applied to the flow.
struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t rule = 0;  // forwarding/action rule id
};

/// The paper's fourth motivating application (Sec. 1): "in network package
/// processing applications, each processing thread (primary) maintains its
/// own data structures for its group of source addresses, but occasionally,
/// a thread (secondary) might need to update data structures maintained by
/// a different thread."
///
/// FlowTable is that per-thread structure: an open-addressing hash table of
/// flow statistics owned by exactly one processing thread. The owner
/// records packets through the *primary* side of an asymmetric Dekker
/// mutex — one l-mfence-style announce per packet, no hardware fence under
/// the asymmetric policies — while remote rule updates come through the
/// gated *secondary* side, paying the fence and the remote serialization.
///
/// With P = SymmetricFence the same table becomes the conventional design
/// (an mfence per packet), which is what the flow-table benchmark compares
/// against.
template <FencePolicy P>
class FlowTable {
 public:
  explicit FlowTable(std::size_t capacity_pow2 = 1u << 12)
      : mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    LBMF_CHECK((capacity_pow2 & (capacity_pow2 - 1)) == 0);
  }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Owner-thread registration; same contract as AsymmetricMutex.
  void bind_owner() { mutex_.bind_primary(); }
  void unbind_owner() { mutex_.unbind_primary(); }

  // -------------------------------------------------------------- owner

  /// Owner fast path: account one packet for `key`. Returns the rule
  /// currently applied to the flow (what a real pipeline would act on).
  std::uint32_t record_packet(FlowKey key, std::uint32_t bytes) {
    mutex_.lock_primary();
    Slot& s = find_or_insert(key);
    ++s.stats.packets;
    s.stats.bytes += bytes;
    const std::uint32_t rule = s.stats.rule;
    mutex_.unlock_primary();
    return rule;
  }

  /// Owner-side read without contention handling (diagnostics).
  std::optional<FlowStats> owner_peek(FlowKey key) {
    mutex_.lock_primary();
    std::optional<FlowStats> out;
    if (Slot* s = find(key)) out = s->stats;
    mutex_.unlock_primary();
    return out;
  }

  // ------------------------------------------------------------- remote

  /// Remote (secondary) path: install or change the rule for a flow. Any
  /// thread other than the owner; serialized through the gate.
  void update_rule(FlowKey key, std::uint32_t rule) {
    mutex_.lock_secondary();
    find_or_insert(key).stats.rule = rule;
    mutex_.unlock_secondary();
  }

  /// Remote read of a flow's statistics (e.g. an exporter thread).
  std::optional<FlowStats> remote_read(FlowKey key) {
    mutex_.lock_secondary();
    std::optional<FlowStats> out;
    if (Slot* s = find(key)) out = s->stats;
    mutex_.unlock_secondary();
    return out;
  }

  /// Total packets across all flows (remote path).
  std::uint64_t remote_total_packets() {
    mutex_.lock_secondary();
    std::uint64_t total = 0;
    for (const Slot& s : slots_) {
      if (s.occupied) total += s.stats.packets;
    }
    mutex_.unlock_secondary();
    return total;
  }

  std::size_t flow_count() const noexcept { return occupied_; }
  DekkerStats sync_stats() const noexcept { return mutex_.stats(); }

 private:
  struct Slot {
    FlowKey key = 0;
    bool occupied = false;
    FlowStats stats;
  };

  static std::size_t hash(FlowKey k) noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }

  Slot* find(FlowKey key) {
    std::size_t i = hash(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      Slot& s = slots_[i];
      if (!s.occupied) return nullptr;
      if (s.key == key) return &s;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  Slot& find_or_insert(FlowKey key) {
    std::size_t i = hash(key) & mask_;
    for (std::size_t probes = 0; probes <= mask_; ++probes) {
      Slot& s = slots_[i];
      if (!s.occupied) {
        LBMF_CHECK_MSG(occupied_ < slots_.size() - 1, "flow table full");
        s.occupied = true;
        s.key = key;
        ++occupied_;
        return s;
      }
      if (s.key == key) return s;
      i = (i + 1) & mask_;
    }
    LBMF_CHECK_MSG(false, "flow table probe loop exhausted");
    return slots_[0];  // unreachable
  }

  AsymmetricMutex<P> mutex_;
  std::size_t mask_;
  std::size_t occupied_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace lbmf::flowtable
