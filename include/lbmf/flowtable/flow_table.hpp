#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "lbmf/dekker/asymmetric_mutex.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::flowtable {

/// Surrogate for a hashed 5-tuple flow identifier.
using FlowKey = std::uint64_t;

/// Per-flow accounting plus the forwarding rule applied to the flow.
struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t rule = 0;  // forwarding/action rule id
};

/// Capacity regime. kFixed is the original table: capacity is final and
/// exhausting it is a hard error — the shape the sim-mapped litmus story
/// and the E10 microbench reason about, where table size is part of the
/// modelled state. kGrowable is the serving-tier regime: the owner rehashes
/// incrementally into a table twice the size whenever load crosses 3/4,
/// moving a bounded batch of entries per mutating operation so growth cost
/// is amortized under the primary lock and the l-mfence fast path (no
/// global pause, no hardware fence added) is preserved.
enum class Growth : std::uint8_t { kFixed, kGrowable };

/// The paper's fourth motivating application (Sec. 1): "in network package
/// processing applications, each processing thread (primary) maintains its
/// own data structures for its group of source addresses, but occasionally,
/// a thread (secondary) might need to update data structures maintained by
/// a different thread."
///
/// FlowTable is that per-thread structure: an open-addressing hash table of
/// flow statistics owned by exactly one processing thread. The owner
/// records packets through the *primary* side of an asymmetric Dekker
/// mutex — one l-mfence-style announce per packet, no hardware fence under
/// the asymmetric policies — while remote rule updates come through the
/// gated *secondary* side, paying the fence and the remote serialization.
///
/// With P = SymmetricFence the same table becomes the conventional design
/// (an mfence per packet), which is what the flow-table benchmark compares
/// against.
///
/// During an incremental rehash two arrays are live: inserts go to the new
/// (current) array; lookups probe current first, then the draining old
/// array, whose vacated slots become kMoved tombstones so later entries of
/// a probe chain stay reachable. Every mutating op migrates up to
/// kMigrateBatch old entries, so a grow triggered at 3/4 load finishes
/// well before the doubled array could itself reach the trigger.
template <FencePolicy P>
class FlowTable {
 public:
  static constexpr std::size_t kMigrateBatch = 8;

  explicit FlowTable(std::size_t capacity_pow2 = 1u << 12,
                     Growth growth = Growth::kFixed)
      : growth_(growth), mask_(capacity_pow2 - 1), slots_(capacity_pow2) {
    LBMF_CHECK((capacity_pow2 & (capacity_pow2 - 1)) == 0);
  }

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  /// Owner-thread registration; same contract as AsymmetricMutex.
  void bind_owner() { mutex_.bind_primary(); }
  void unbind_owner() { mutex_.unbind_primary(); }

  // -------------------------------------------------------------- owner

  /// Owner fast path: account one packet for `key`. Returns the rule
  /// currently applied to the flow (what a real pipeline would act on).
  std::uint32_t record_packet(FlowKey key, std::uint32_t bytes) {
    mutex_.lock_primary();
    Slot& s = find_or_insert(key);
    ++s.stats.packets;
    s.stats.bytes += bytes;
    const std::uint32_t rule = s.stats.rule;
    mutex_.unlock_primary();
    return rule;
  }

  /// Owner-side read without contention handling (diagnostics).
  std::optional<FlowStats> owner_peek(FlowKey key) {
    mutex_.lock_primary();
    std::optional<FlowStats> out;
    if (Slot* s = find(key)) out = s->stats;
    mutex_.unlock_primary();
    return out;
  }

  // ------------------------------------------------------------- remote

  /// Remote (secondary) path: install or change the rule for a flow,
  /// inserting the flow if the owner has not seen it yet (a rule pushed
  /// ahead of traffic). Returns whether the flow already existed, so
  /// control planes can distinguish update from insert instead of
  /// silently inflating flow_count().
  bool update_rule(FlowKey key, std::uint32_t rule) {
    mutex_.lock_secondary();
    const bool existed = upsert_rule_locked(key, rule);
    mutex_.unlock_secondary();
    return existed;
  }

  /// Remote read of a flow's statistics (e.g. an exporter thread).
  std::optional<FlowStats> remote_read(FlowKey key) {
    mutex_.lock_secondary();
    std::optional<FlowStats> out;
    if (Slot* s = find(key)) out = s->stats;
    mutex_.unlock_secondary();
    return out;
  }

  /// Total packets across all flows (remote path).
  std::uint64_t remote_total_packets() {
    mutex_.lock_secondary();
    const std::uint64_t total = total_packets_locked();
    mutex_.unlock_secondary();
    return total;
  }

  /// Remote eviction sweep: drop every flow with fewer than `min_packets`
  /// packets. Returns the number of flows evicted.
  std::size_t remote_evict_below(std::uint64_t min_packets) {
    mutex_.lock_secondary();
    const std::size_t evicted = evict_below_locked(min_packets);
    mutex_.unlock_secondary();
    return evicted;
  }

  // ------------------------------------------- locked-context primitives
  //
  // For callers that already hold the table's mutex — in particular the
  // serving tier's cross-shard control plane, which acquires many tables
  // through one lock_secondary_wave instead of per-table lock_secondary.

  /// The table's synchronization object, for wave acquisition.
  AsymmetricMutex<P>& sync_mutex() noexcept { return mutex_; }

  /// Insert-or-update a rule; caller holds the mutex (either side).
  /// Returns whether the flow already existed.
  bool upsert_rule_locked(FlowKey key, std::uint32_t rule) {
    bool existed = true;
    Slot& s = find_or_insert(key, &existed);
    s.stats.rule = rule;
    return existed;
  }

  std::uint64_t total_packets_locked() const noexcept {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) {
      if (s.state == SlotState::kOccupied) total += s.stats.packets;
    }
    for (const Slot& s : old_) {
      if (s.state == SlotState::kOccupied) total += s.stats.packets;
    }
    return total;
  }

  /// Evict flows with packets < min_packets; caller holds the mutex. Any
  /// in-flight incremental rehash is completed first, then the surviving
  /// entries are rebuilt into a clean array (no tombstones left behind).
  std::size_t evict_below_locked(std::uint64_t min_packets) {
    finish_migration();
    std::vector<Slot> survivors;
    survivors.reserve(flow_count());
    for (Slot& s : slots_) {
      if (s.state == SlotState::kOccupied && s.stats.packets >= min_packets) {
        survivors.push_back(s);
      }
    }
    const std::size_t evicted = flow_count() - survivors.size();
    for (Slot& s : slots_) s.state = SlotState::kEmpty;
    for (const Slot& s : survivors) {
      Slot& dst = insert_new(slots_, mask_, s.key);
      dst.stats = s.stats;
    }
    store_occupied(survivors.size());
    return evicted;
  }

  // -------------------------------------------------------------- stats

  /// Live flows. Safe to read concurrently (momentary snapshot).
  std::size_t flow_count() const noexcept {
    return occupied_.load(std::memory_order_relaxed);
  }
  /// Completed table doublings. Safe to read concurrently.
  std::size_t grow_count() const noexcept {
    return grows_.load(std::memory_order_relaxed);
  }
  /// Capacity of the current (largest) array.
  std::size_t capacity() const noexcept { return mask_ + 1; }

  DekkerStats sync_stats() const noexcept { return mutex_.stats(); }

 private:
  enum class SlotState : std::uint8_t {
    kEmpty = 0,
    kOccupied,
    kMoved,  // old-array tombstone: probe chains continue through it
  };

  struct Slot {
    FlowKey key = 0;
    SlotState state = SlotState::kEmpty;
    FlowStats stats;
  };

  static std::size_t hash(FlowKey k) noexcept {
    k ^= k >> 33;
    k *= 0xff51afd7ed558ccdULL;
    k ^= k >> 33;
    return static_cast<std::size_t>(k);
  }

  void store_occupied(std::size_t n) noexcept {
    occupied_.store(n, std::memory_order_relaxed);
  }
  void add_occupied(std::ptrdiff_t d) noexcept {
    occupied_.store(flow_count() + static_cast<std::size_t>(d),
                    std::memory_order_relaxed);
  }

  static Slot* probe(std::vector<Slot>& arr, std::size_t mask, FlowKey key) {
    std::size_t i = hash(key) & mask;
    for (std::size_t probes = 0; probes <= mask; ++probes) {
      Slot& s = arr[i];
      if (s.state == SlotState::kEmpty) return nullptr;
      if (s.state == SlotState::kOccupied && s.key == key) return &s;
      i = (i + 1) & mask;
    }
    return nullptr;
  }

  /// Insert a key known to be absent into `arr`; never grows.
  static Slot& insert_new(std::vector<Slot>& arr, std::size_t mask,
                          FlowKey key) {
    std::size_t i = hash(key) & mask;
    for (std::size_t probes = 0; probes <= mask; ++probes) {
      Slot& s = arr[i];
      if (s.state != SlotState::kOccupied) {
        s.state = SlotState::kOccupied;
        s.key = key;
        s.stats = FlowStats{};
        return s;
      }
      i = (i + 1) & mask;
    }
    LBMF_CHECK_MSG(false, "flow table probe loop exhausted");
    return arr[0];  // unreachable
  }

  Slot* find(FlowKey key) {
    if (Slot* s = probe(slots_, mask_, key)) return s;
    if (!old_.empty()) return probe(old_, old_mask_, key);
    return nullptr;
  }

  Slot& find_or_insert(FlowKey key, bool* existed = nullptr) {
    if (growth_ == Growth::kGrowable) {
      if (!old_.empty()) {
        migrate_step(kMigrateBatch);
      } else if ((flow_count() + 1) * 4 > capacity() * 3) {
        start_grow();
      }
    }
    if (Slot* s = probe(slots_, mask_, key)) return *s;
    if (!old_.empty()) {
      if (Slot* s = probe(old_, old_mask_, key)) {
        // Promote the entry to the current array so the caller's mutation
        // lands where future lookups probe first.
        Slot& dst = insert_new(slots_, mask_, key);
        dst.stats = s->stats;
        s->state = SlotState::kMoved;
        return dst;
      }
    }
    if (growth_ == Growth::kFixed) {
      LBMF_CHECK_MSG(flow_count() < slots_.size() - 1, "flow table full");
    }
    if (existed != nullptr) *existed = false;
    Slot& s = insert_new(slots_, mask_, key);
    add_occupied(+1);
    return s;
  }

  void start_grow() {
    old_ = std::move(slots_);
    old_mask_ = mask_;
    mask_ = (old_mask_ + 1) * 2 - 1;
    slots_.assign(mask_ + 1, Slot{});
    migrate_pos_ = 0;
  }

  void migrate_step(std::size_t budget) {
    while (budget > 0 && migrate_pos_ < old_.size()) {
      Slot& s = old_[migrate_pos_++];
      if (s.state == SlotState::kOccupied) {
        Slot& dst = insert_new(slots_, mask_, s.key);
        dst.stats = s.stats;
        s.state = SlotState::kMoved;
        --budget;
      }
    }
    if (migrate_pos_ >= old_.size()) {
      old_.clear();
      old_.shrink_to_fit();
      grows_.store(grow_count() + 1, std::memory_order_relaxed);
    }
  }

  void finish_migration() {
    while (!old_.empty()) migrate_step(old_.size());
  }

  AsymmetricMutex<P> mutex_;
  Growth growth_;
  std::size_t mask_;
  std::size_t old_mask_ = 0;
  std::size_t migrate_pos_ = 0;
  // Single writer (whoever holds the mutex); read lock-free by stats
  // exporters, hence relaxed atomics rather than plain fields.
  std::atomic<std::size_t> occupied_{0};
  std::atomic<std::size_t> grows_{0};
  std::vector<Slot> slots_;
  std::vector<Slot> old_;  // non-empty exactly while a rehash is draining
};

}  // namespace lbmf::flowtable
