#pragma once

#include <atomic>
#include <cstdint>

namespace lbmf {

/// Relaxed single-writer increment for event counters that are read by a
/// stats() snapshot from arbitrary threads: load+store rather than
/// fetch_add, so the instrumentation adds no lock prefix — an x86 locked
/// RMW is a full StoreLoad fence and would silently re-insert, on the very
/// hot paths this library instruments (Dekker announce, deque pop), the
/// fence the asymmetric policies exist to remove. Only legal where writers
/// of the counter are serialized (a side's own half of a Dekker pair, the
/// deque victim's counters, thief counters under the THE gate); racing
/// writers must use fetch_add instead.
inline void bump_relaxed(std::atomic<std::uint64_t>& c) noexcept {
  c.store(c.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
}

}  // namespace lbmf
