#pragma once

#include <atomic>

#include "lbmf/util/spin.hpp"

namespace lbmf {

/// Classic sense-reversing centralized barrier (seq_cst throughout:
/// correctness over cycles — callers cross it at most a few times per
/// measured iteration).
///
/// Each thread keeps one local sense PER BARRIER OBJECT and passes it to
/// every arrive() on that object, so the local sense alternates per
/// crossing of that barrier. Sharing a single local sense across two
/// barriers (e.g. a start and an end barrier in a loop) breaks both: the
/// shared sense flips twice per iteration, so each object is always
/// crossed with the same local value — one barrier's waiters pass
/// immediately and the other's stop waiting after the first crossing.
/// (util_test's SenseBarrier cases pin this down.)
class SenseBarrier {
 public:
  explicit SenseBarrier(int n) : n_(n), count_(n) {}
  SenseBarrier(const SenseBarrier&) = delete;
  SenseBarrier& operator=(const SenseBarrier&) = delete;

  /// Block until all n threads have arrived. `local_sense` must start at 0
  /// and be reused for every crossing of this barrier by this thread.
  void arrive(int& local_sense) {
    local_sense ^= 1;
    if (count_.fetch_sub(1) == 1) {
      count_.store(n_);
      sense_.store(local_sense);
    } else {
      // SpinWait so an oversubscribed host (threads > cores) yields
      // instead of spinning the releasing thread off its only core.
      SpinWait w;
      while (sense_.load() != local_sense) w.wait();
    }
  }

 private:
  const int n_;
  std::atomic<int> count_;
  std::atomic<int> sense_{0};
};

}  // namespace lbmf
