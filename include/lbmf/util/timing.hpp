#pragma once

#include <chrono>
#include <cstdint>

namespace lbmf {

/// Read the time-stamp counter. On modern x86-64 the TSC is invariant
/// (constant rate, synchronized across cores), so it is usable as a cheap
/// cycle-resolution clock. Falls back to steady_clock nanoseconds elsewhere.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__)
  std::uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Serializing rdtsc (rdtscp + lfence would be stricter; rdtscp alone waits
/// for prior instructions to retire, which is what benchmark edges need).
inline std::uint64_t rdtscp() noexcept {
#if defined(__x86_64__)
  std::uint32_t lo, hi, aux;
  asm volatile("rdtscp" : "=a"(lo), "=d"(hi), "=c"(aux));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
#else
  return rdtsc();
#endif
}

/// Measured TSC frequency in Hz (calibrated once against steady_clock on
/// first use). Used to convert cycle counts into seconds in reports.
double tsc_hz();

/// Convert a TSC delta to nanoseconds using the calibrated frequency.
double tsc_to_ns(std::uint64_t cycles);

/// Simple wall-clock stopwatch over steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lbmf
