#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace lbmf {

/// Log-bucketed histogram for latency samples (HdrHistogram shape): values
/// below 2^kSubBits are recorded exactly; above that, each power-of-two
/// octave is split into 2^kSubBits linear sub-buckets, so the relative
/// quantization error is bounded by 2^-kSubBits (6.25%) across the whole
/// 64-bit range. Recording is two shifts and an increment — cheap enough
/// for a serving fast path — and the footprint is one fixed array, so a
/// per-thread histogram costs ~8 KiB and merge() is a vector add.
///
/// The unit is the caller's (the serving tier records TSC cycles and
/// converts to nanoseconds only when reporting). Not thread-safe: keep one
/// per thread and merge() after joining.
class LogHistogram {
 public:
  static constexpr unsigned kSubBits = 4;
  static constexpr unsigned kSubBuckets = 1u << kSubBits;
  // Values < kSubBuckets occupy buckets [0, kSubBuckets); each of the
  // remaining 64 - kSubBits octaves contributes kSubBuckets more.
  static constexpr std::size_t kBuckets =
      kSubBuckets + (64 - kSubBits) * kSubBuckets;

  static std::uint32_t bucket_of(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::uint32_t>(v);
    const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    return ((shift + 1) << kSubBits) +
           static_cast<std::uint32_t>((v >> shift) & (kSubBuckets - 1));
  }

  /// Inclusive lower bound of a bucket (the smallest value mapping to it).
  static std::uint64_t bucket_floor(std::uint32_t b) noexcept {
    if (b < kSubBuckets) return b;
    const unsigned shift = (b >> kSubBits) - 1;
    const std::uint64_t sub = b & (kSubBuckets - 1);
    return ((static_cast<std::uint64_t>(kSubBuckets) + sub) << shift);
  }

  void record(std::uint64_t v) noexcept {
    ++counts_[bucket_of(v)];
    ++total_;
    sum_ += v;
    min_ = v < min_ ? v : min_;
    max_ = v > max_ ? v : max_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_)
                  : 0.0;
  }

  /// Value at percentile `pct` in [0, 100]: the upper edge of the first
  /// bucket whose cumulative count covers pct% of the samples (so "p99"
  /// reads as "99% of samples were at or below this"), clamped to the
  /// exactly-tracked [min, max]. 0 on an empty histogram.
  std::uint64_t percentile(double pct) const noexcept {
    if (total_ == 0) return 0;
    const double want_d = pct / 100.0 * static_cast<double>(total_);
    std::uint64_t want = static_cast<std::uint64_t>(want_d);
    if (static_cast<double>(want) < want_d || want == 0) ++want;
    want = std::min(want, total_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= want) {
        const std::uint64_t ceil =
            bucket_floor(static_cast<std::uint32_t>(b) + 1) - 1;
        return std::clamp(ceil, min_, max_);
      }
    }
    return max_;
  }

  void merge(const LogHistogram& o) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
    total_ += o.total_;
    sum_ += o.sum_;
    min_ = o.total_ && o.min_ < min_ ? o.min_ : min_;
    max_ = o.max_ > max_ ? o.max_ : max_;
  }

  void reset() noexcept {
    counts_.fill(0);
    total_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t{0};
    max_ = 0;
  }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  std::uint64_t max_ = 0;
};

}  // namespace lbmf
