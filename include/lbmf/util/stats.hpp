#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace lbmf {

/// Streaming mean / variance (Welford). Numerically stable; O(1) space.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  /// Coefficient of variation (stddev / mean); 0 when mean is 0.
  double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a batch of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

/// Compute a Summary from samples (copies and sorts internally).
Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector; q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace lbmf
