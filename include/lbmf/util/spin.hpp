#pragma once

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace lbmf {

/// Hint to the core that we are in a spin-wait loop. On x86 this is `pause`,
/// which reduces the penalty of leaving the loop and yields pipeline
/// resources to a hyper-sibling.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  // Portable fallback: a compiler barrier so the loop is not collapsed.
  asm volatile("" ::: "memory");
#endif
}

/// Adaptive spin-waiter: spins with `pause` for a bounded number of rounds,
/// then starts yielding the CPU. On an oversubscribed host (fewer cores than
/// threads) the yield path is essential — a pure spin would deadlock the very
/// thread we are waiting on off the only core.
class SpinWait {
 public:
  /// `spin_limit` = number of pause-only rounds before we begin yielding.
  explicit SpinWait(std::uint32_t spin_limit = 64) noexcept
      : spin_limit_(spin_limit) {}

  void wait() noexcept {
    if (count_ < spin_limit_) {
      // Exponential backoff inside the pause phase: 1, 2, 4, ... pauses.
      const std::uint32_t reps = 1u << (count_ < 6 ? count_ : 6);
      for (std::uint32_t i = 0; i < reps; ++i) cpu_relax();
      ++count_;
    } else {
      std::this_thread::yield();
    }
  }

  void reset() noexcept { count_ = 0; }

  std::uint32_t rounds() const noexcept { return count_; }

 private:
  std::uint32_t spin_limit_;
  std::uint32_t count_ = 0;
};

}  // namespace lbmf
