#pragma once

#include <cstdint>
#include <limits>

namespace lbmf {

/// SplitMix64 — used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr result_type operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality PRNG for workload generation and
/// randomized schedules in the simulator. Deterministic given the seed, which
/// is what makes simulator test failures replayable.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1bf52u) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr result_type operator()() noexcept { return next(); }

  /// Unbiased-enough (multiply-shift) integer in [0, bound). bound must be
  /// nonzero.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift range reduction (Lemire).
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli(p) draw.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace lbmf
