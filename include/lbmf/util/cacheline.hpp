#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lbmf {

/// Size of the destructive-interference granule we pad to. We use a fixed
/// 64 bytes (the line size of every x86-64 part this library targets) rather
/// than std::hardware_destructive_interference_size, whose value may vary
/// between TUs compiled with different tuning flags.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that it occupies (at least) one cache line by itself.
/// Used for per-thread flags in Dekker-style protocols, where false sharing
/// between the two flag words would destroy the asymmetry the protocol
/// is designed to exploit.
template <typename T>
struct alignas(kCacheLineSize) CacheAligned {
  static_assert(!std::is_reference_v<T>, "CacheAligned cannot hold references");

  T value{};

  CacheAligned() = default;

  template <typename... Args>
  explicit CacheAligned(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

// alignas on the struct rounds sizeof up to the alignment, so arrays of
// CacheAligned<T> never place two elements on one line.
static_assert(sizeof(CacheAligned<char>) == kCacheLineSize);

}  // namespace lbmf
