#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace lbmf {

/// A 128-bit hash value. 128 bits keep the birthday-bound collision
/// probability for explorer state dedup negligible: at 10^9 distinct states
/// the expected number of colliding pairs is ~1.5e-21, so fingerprint-based
/// dedup is exact for all practical purposes (and the explorer's
/// `exact_dedup` audit mode can verify it on any given workload).
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Hash128&) const noexcept = default;
};

namespace detail {

inline std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

inline std::uint64_t load64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

}  // namespace detail

/// MurmurHash3 x64 128-bit over an arbitrary byte range. Not cryptographic;
/// chosen for speed (one pass, two multiplies per 16 bytes) and very good
/// avalanche behaviour, which is what a dedup fingerprint needs.
inline Hash128 hash128(const void* data, std::size_t len,
                       std::uint64_t seed = 0) noexcept {
  using detail::fmix64;
  using detail::load64;
  using detail::rotl64;

  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t nblocks = len / 16;

  std::uint64_t h1 = seed;
  std::uint64_t h2 = seed;
  constexpr std::uint64_t c1 = 0x87c37b91114253d5ULL;
  constexpr std::uint64_t c2 = 0x4cf5ad432745937fULL;

  for (std::size_t i = 0; i < nblocks; ++i) {
    std::uint64_t k1 = load64(p + i * 16);
    std::uint64_t k2 = load64(p + i * 16 + 8);

    k1 *= c1;
    k1 = rotl64(k1, 31);
    k1 *= c2;
    h1 ^= k1;
    h1 = rotl64(h1, 27);
    h1 += h2;
    h1 = h1 * 5 + 0x52dce729;

    k2 *= c2;
    k2 = rotl64(k2, 33);
    k2 *= c1;
    h2 ^= k2;
    h2 = rotl64(h2, 31);
    h2 += h1;
    h2 = h2 * 5 + 0x38495ab5;
  }

  const unsigned char* tail = p + nblocks * 16;
  std::uint64_t k1 = 0;
  std::uint64_t k2 = 0;
  switch (len & 15) {
    case 15: k2 ^= std::uint64_t{tail[14]} << 48; [[fallthrough]];
    case 14: k2 ^= std::uint64_t{tail[13]} << 40; [[fallthrough]];
    case 13: k2 ^= std::uint64_t{tail[12]} << 32; [[fallthrough]];
    case 12: k2 ^= std::uint64_t{tail[11]} << 24; [[fallthrough]];
    case 11: k2 ^= std::uint64_t{tail[10]} << 16; [[fallthrough]];
    case 10: k2 ^= std::uint64_t{tail[9]} << 8; [[fallthrough]];
    case 9:
      k2 ^= std::uint64_t{tail[8]};
      k2 *= c2;
      k2 = rotl64(k2, 33);
      k2 *= c1;
      h2 ^= k2;
      [[fallthrough]];
    case 8: k1 ^= std::uint64_t{tail[7]} << 56; [[fallthrough]];
    case 7: k1 ^= std::uint64_t{tail[6]} << 48; [[fallthrough]];
    case 6: k1 ^= std::uint64_t{tail[5]} << 40; [[fallthrough]];
    case 5: k1 ^= std::uint64_t{tail[4]} << 32; [[fallthrough]];
    case 4: k1 ^= std::uint64_t{tail[3]} << 24; [[fallthrough]];
    case 3: k1 ^= std::uint64_t{tail[2]} << 16; [[fallthrough]];
    case 2: k1 ^= std::uint64_t{tail[1]} << 8; [[fallthrough]];
    case 1:
      k1 ^= std::uint64_t{tail[0]};
      k1 *= c1;
      k1 = rotl64(k1, 31);
      k1 *= c2;
      h1 ^= k1;
      break;
    case 0: break;
  }

  h1 ^= static_cast<std::uint64_t>(len);
  h2 ^= static_cast<std::uint64_t>(len);
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

}  // namespace lbmf
