#pragma once

#include <cstdio>
#include <cstdlib>

namespace lbmf::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "LBMF_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace lbmf::detail

/// Always-on invariant check (simulator state machines rely on these even in
/// Release builds; a silently corrupt MESI state would invalidate every
/// downstream result).
#define LBMF_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lbmf::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define LBMF_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::lbmf::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
