#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace lbmf::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "LBMF_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

/// Log `msg` to stderr at most once per `flag` (typically a function-local
/// static). For degraded-but-sound fallbacks that must be loud without
/// flooding hot paths — e.g. a fence backend quietly losing its asymmetric
/// capability on kernels without EXPEDITED membarrier.
inline void warn_once(std::atomic<bool>& flag, const char* msg) noexcept {
  if (!flag.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr, "lbmf: warning: %s\n", msg);
  }
}

}  // namespace lbmf::detail

/// Always-on invariant check (simulator state machines rely on these even in
/// Release builds; a silently corrupt MESI state would invalidate every
/// downstream result).
#define LBMF_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::lbmf::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define LBMF_CHECK_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::lbmf::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
