#pragma once

#include <cstddef>

namespace lbmf {

/// Pin the calling thread to logical CPU `cpu` (modulo the number of CPUs in
/// the process's affinity mask). Returns true on success. On a single-core
/// host this is a no-op that still succeeds, so callers need no special case.
bool pin_to_cpu(std::size_t cpu) noexcept;

/// Number of logical CPUs available to this process.
std::size_t online_cpus() noexcept;

}  // namespace lbmf
