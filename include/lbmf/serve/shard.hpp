#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/adapt/policy_table.hpp"
#include "lbmf/adapt/selector.hpp"
#include "lbmf/flowtable/flow_table.hpp"
#include "lbmf/serve/spsc_ring.hpp"
#include "lbmf/util/spin.hpp"

namespace lbmf::serve {

using flowtable::FlowKey;

/// One unit of client traffic: `burst` coalesced packets for one flow (the
/// GRO/receive-batching shape real NIC stacks hand a worker), stamped at
/// submission so the serving tier can histogram the full queue + service
/// sojourn per request.
struct Request {
  FlowKey key = 0;
  std::uint32_t bytes = 0;
  std::uint32_t burst = 1;
  std::uint64_t submit_tsc = 0;
};

/// What the owner hands back: the forwarding rule in force after the
/// request's packets were accounted (what a real pipeline would act on).
struct Response {
  FlowKey key = 0;
  std::uint32_t rule = 0;
  std::uint64_t submit_tsc = 0;
};

/// A control-plane rule installation (see Server::push_rules_wave).
struct RuleUpdate {
  FlowKey key = 0;
  std::uint32_t rule = 0;
};

struct ServeConfig {
  /// Power-of-two shard count; one owner worker per shard.
  std::size_t shards = 8;
  /// Client lanes: each client gets a private SPSC ingress/egress ring
  /// pair per shard.
  std::size_t max_clients = 2;
  /// Per-lane ring capacity (power of two). Also the per-lane in-flight
  /// bound Client enforces, which is what lets the owner treat its egress
  /// push as infallible.
  std::size_t ring_capacity = 1024;
  /// Max requests drained from one lane per owner visit (latency/fairness
  /// bound between lanes, and the size of the owner's scratch batch).
  std::size_t batch_limit = 256;
  /// Starting capacity of each shard's flow table.
  std::size_t initial_shard_capacity = 1u << 12;
  flowtable::Growth growth = flowtable::Growth::kGrowable;

  /// Adaptive wiring (meaningful only when P is an AdaptiveFencePolicy):
  /// each shard owner samples its own Dekker counters every `sample_every`
  /// loop iterations, consults the table, and re-binds its fence regime at
  /// the loop boundary — the same monitor → table → hysteresis chain the
  /// work-stealing scheduler runs, but keyed on packet-vs-rule-update
  /// frequency instead of pop-vs-steal.
  bool adapt = false;
  adapt::PolicyTable table = adapt::PolicyTable::builtin_default();
  adapt::SelectorConfig selector;
  std::uint64_t sample_every = 1024;
};

/// Point-in-time counters for one shard (momentary snapshots; exact once
/// the server is stopped).
struct ShardStats {
  std::uint64_t requests = 0;
  std::uint64_t packets = 0;
  std::size_t flows = 0;
  std::size_t grows = 0;
  std::uint64_t policy_switches = 0;
  DekkerStats sync;
};

/// One shard: a FlowTable owned by the worker running owner_loop(), plus
/// per-client SPSC lanes. The owner is the table's Dekker *primary* — every
/// packet it accounts costs an l-mfence announce only — while the control
/// plane reaches the table through the secondary side (directly or via
/// Server's cross-shard waves).
template <FencePolicy P>
class Shard {
 public:
  Shard(std::size_t index, const ServeConfig& cfg)
      : index_(index), table_(cfg.initial_shard_capacity, cfg.growth) {
    ingress_.reserve(cfg.max_clients);
    egress_.reserve(cfg.max_clients);
    for (std::size_t c = 0; c < cfg.max_clients; ++c) {
      ingress_.push_back(std::make_unique<SpscRing<Request>>(cfg.ring_capacity));
      egress_.push_back(std::make_unique<SpscRing<Response>>(cfg.ring_capacity));
    }
  }

  std::size_t index() const noexcept { return index_; }
  SpscRing<Request>& ingress(std::size_t lane) { return *ingress_[lane]; }
  SpscRing<Response>& egress(std::size_t lane) { return *egress_[lane]; }
  flowtable::FlowTable<P>& table() noexcept { return table_; }

  /// The shard's serving loop; runs as a scheduler task until `stop`.
  /// Registers the calling worker as the table's primary, bumps `ready`,
  /// then drains lanes in bounded batches.
  void owner_loop(const ServeConfig& cfg, const std::atomic<bool>& stop,
                  std::atomic<std::size_t>& ready) {
    table_.bind_owner();
    ready.fetch_add(1, std::memory_order_acq_rel);

    std::vector<Request> batch(cfg.batch_limit);
    std::unique_ptr<adapt::PolicySelector> selector;
    std::uint64_t ticks = 0;
    SpinWait idle;
    while (!stop.load(std::memory_order_acquire)) {
      std::size_t drained = 0;
      for (std::size_t lane = 0; lane < ingress_.size(); ++lane) {
        const std::size_t n =
            ingress_[lane]->pop_some(batch.data(), batch.size());
        for (std::size_t i = 0; i < n; ++i) {
          const Request& rq = batch[i];
          std::uint32_t rule = 0;
          for (std::uint32_t b = 0; b < rq.burst; ++b) {
            rule = table_.record_packet(rq.key, rq.bytes);
          }
          packets_.store(
              packets_.load(std::memory_order_relaxed) + rq.burst,
              std::memory_order_relaxed);
          // Cannot fail: the client caps in-flight per lane at the ring
          // capacity, so egress occupancy never exceeds it.
          LBMF_CHECK(egress_[lane]->try_push(
              Response{rq.key, rule, rq.submit_tsc}));
        }
        drained += n;
      }
      requests_.store(requests_.load(std::memory_order_relaxed) + drained,
                      std::memory_order_relaxed);
      maybe_adapt(cfg, selector, ticks);
      if (drained == 0) {
        idle.wait();
      } else {
        idle.reset();
      }
    }
    table_.unbind_owner();
  }

  ShardStats stats() const {
    ShardStats s;
    s.requests = requests_.load(std::memory_order_relaxed);
    s.packets = packets_.load(std::memory_order_relaxed);
    s.flows = table_.flow_count();
    s.grows = table_.grow_count();
    s.policy_switches = switches_.load(std::memory_order_relaxed);
    s.sync = table_.sync_stats();
    return s;
  }

 private:
  void maybe_adapt(const ServeConfig& cfg,
                   std::unique_ptr<adapt::PolicySelector>& selector,
                   std::uint64_t& ticks) {
    if constexpr (adapt::AdaptiveFencePolicy<P>) {
      if (!cfg.adapt) return;
      if (++ticks % cfg.sample_every != 0) return;
      if (!selector) {
        selector =
            std::make_unique<adapt::PolicySelector>(cfg.table, cfg.selector);
      }
      // One selector window per sample: the shard's own packet announces
      // (primary acquires) against control-plane intrusions (secondary
      // acquires), plus the process-wide measured round trip.
      const DekkerStats d = table_.sync_stats();
      const adapt::PolicyMode m =
          selector->update(d.primary_acquires, d.secondary_acquires,
                           SerializerRegistry::measured_roundtrip_cycles());
      const typename P::Handle h = table_.sync_mutex().primary_handle();
      P::request_mode(h, m);
      // The drain-loop boundary is a quiescent point: no announce is in
      // flight between batches.
      P::quiescent_point(h);
      switches_.store(P::switch_count(h), std::memory_order_relaxed);
    } else {
      (void)cfg;
      (void)selector;
      (void)ticks;
    }
  }

  std::size_t index_;
  flowtable::FlowTable<P> table_;
  std::vector<std::unique_ptr<SpscRing<Request>>> ingress_;
  std::vector<std::unique_ptr<SpscRing<Response>>> egress_;
  // Single writer (the owner); read lock-free by stats exporters.
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> switches_{0};
};

}  // namespace lbmf::serve
