#pragma once

/// lbmf::serve — the sharded flow-serving tier (see server.hpp for the
/// architecture note). One include for the whole subsystem.

#include "lbmf/serve/server.hpp"
#include "lbmf/serve/shard.hpp"
#include "lbmf/serve/spsc_ring.hpp"
