#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "lbmf/util/cacheline.hpp"
#include "lbmf/util/check.hpp"

namespace lbmf::serve {

/// Bounded single-producer/single-consumer ring: the ingress/egress lanes
/// between one client thread and one shard owner. Lock-free with exactly
/// two shared atomics (head and tail) on separate cache lines; each side
/// additionally keeps a local cache of the *other* side's index so the
/// common case touches one shared line per batch, not per element.
///
/// No fence policy parameter on purpose: the ring is classic
/// release/acquire message passing (the indices carry the happens-before
/// edge for the payload), not a Dekker duality — there is no StoreLoad
/// decision for l-mfence to optimize here.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity_pow2)
      : mask_(capacity_pow2 - 1), buf_(capacity_pow2) {
    LBMF_CHECK((capacity_pow2 & (capacity_pow2 - 1)) == 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(const T& v) noexcept {
    const std::uint64_t t = tail_->load(std::memory_order_relaxed);
    if (t - *cached_head_ > mask_) {
      *cached_head_ = head_->load(std::memory_order_acquire);
      if (t - *cached_head_ > mask_) return false;
    }
    buf_[t & mask_] = v;
    tail_->store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: drain up to `max` elements into `out`. Returns the
  /// number popped (0 when empty).
  std::size_t pop_some(T* out, std::size_t max) noexcept {
    const std::uint64_t h = head_->load(std::memory_order_relaxed);
    std::uint64_t avail = *cached_tail_ - h;
    if (avail == 0) {
      *cached_tail_ = tail_->load(std::memory_order_acquire);
      avail = *cached_tail_ - h;
      if (avail == 0) return 0;
    }
    const std::size_t n =
        avail < static_cast<std::uint64_t>(max) ? static_cast<std::size_t>(avail)
                                                : max;
    for (std::size_t i = 0; i < n; ++i) out[i] = buf_[(h + i) & mask_];
    head_->store(h + n, std::memory_order_release);
    return n;
  }

  bool try_pop(T* out) noexcept { return pop_some(out, 1) == 1; }

  /// Approximate occupancy (either side, diagnostics).
  std::size_t size() const noexcept {
    const std::uint64_t t = tail_->load(std::memory_order_acquire);
    const std::uint64_t h = head_->load(std::memory_order_acquire);
    return static_cast<std::size_t>(t - h);
  }

 private:
  std::size_t mask_;
  std::vector<T> buf_;
  CacheAligned<std::atomic<std::uint64_t>> head_{};  // consumer index
  CacheAligned<std::atomic<std::uint64_t>> tail_{};  // producer index
  CacheAligned<std::uint64_t> cached_head_{};  // producer's view of head_
  CacheAligned<std::uint64_t> cached_tail_{};  // consumer's view of tail_
};

}  // namespace lbmf::serve
