#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "lbmf/serve/shard.hpp"
#include "lbmf/util/histogram.hpp"
#include "lbmf/util/timing.hpp"
#include "lbmf/ws/scheduler.hpp"

namespace lbmf::serve {

/// Aggregated serving-tier counters (Server::stats()).
struct ServerStats {
  std::vector<ShardStats> shards;
  std::uint64_t requests = 0;
  std::uint64_t packets = 0;
  std::size_t flows = 0;
  std::size_t grows = 0;
  std::uint64_t policy_switches = 0;
};

/// The serving tier: the paper's packet-processing application (Sec. 1)
/// grown to server shape. The flow table is sharded per core by key hash;
/// each shard's owner worker runs on the lbmf::ws scheduler and is the
/// Dekker *primary* of its own table (data path = l-mfence announces only,
/// scaled by sharding and kept live at millions of flows by owner-side
/// incremental rehash). The control plane is the *secondary*: single-shard
/// ops pay one gate + fence + remote serialization, and multi-shard ops
/// (rule pushes spanning shards, table-wide stats export, eviction sweeps)
/// acquire all their shards through ONE lock_secondary_wave — one fence,
/// one overlapped serialize_many — instead of N sequential round trips.
///
/// Shard owners are hosted on a Scheduler<SymmetricFence> pool regardless
/// of P: the per-thread serializer (and adaptive-fence) registration must
/// belong to the shard's table, not to the host pool's own deques — the
/// pool's deques are idle here anyway (one resident task per worker), so
/// its fence policy is off the measured path.
template <FencePolicy P>
class Server {
 public:
  using Policy = P;

  explicit Server(ServeConfig cfg = {}) : cfg_(cfg) {
    LBMF_CHECK(cfg_.shards >= 1 && (cfg_.shards & (cfg_.shards - 1)) == 0);
    LBMF_CHECK(cfg_.max_clients >= 1);
    shards_.reserve(cfg_.shards);
    for (std::size_t i = 0; i < cfg_.shards; ++i) {
      shards_.push_back(std::make_unique<Shard<P>>(i, cfg_));
    }
  }

  ~Server() { stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::size_t num_shards() const noexcept { return shards_.size(); }
  const ServeConfig& config() const noexcept { return cfg_; }

  /// Key-hash shard routing. Deliberately a different mix than FlowTable's
  /// in-table hash so shard choice and probe position are uncorrelated.
  std::size_t shard_of(FlowKey key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 40) &
           (shards_.size() - 1);
  }

  /// Launch one owner worker per shard; returns once every owner has
  /// registered as its table's primary.
  void start() {
    LBMF_CHECK_MSG(!started_, "Server already started");
    stop_.store(false, std::memory_order_relaxed);
    ready_.store(0, std::memory_order_relaxed);
    sched_ = std::make_unique<ws::Scheduler<SymmetricFence>>(cfg_.shards);
    runner_ = std::thread([this] {
      sched_->run([this] {
        using Sched = ws::Scheduler<SymmetricFence>;
        typename Sched::TaskGroup tg;
        auto body_of = [this](std::size_t i) {
          return [this, i] { shards_[i]->owner_loop(cfg_, stop_, ready_); };
        };
        // Tasks are intrusive and must not relocate once spawned; a deque
        // gives address-stable emplace_back.
        std::deque<ws::ClosureTask<decltype(body_of(std::size_t{0}))>> tasks;
        for (std::size_t i = 0; i < shards_.size(); ++i) {
          tasks.emplace_back(tg, body_of(i));
          tg.spawn(tasks.back());
        }
        tg.sync();  // returns only when every owner loop has exited
      });
    });
    SpinWait sw;
    while (ready_.load(std::memory_order_acquire) < shards_.size()) sw.wait();
    started_ = true;
  }

  /// Stop the owner workers and tear down the pool. Callers must have
  /// quiesced clients and control-plane threads first (owners unregister
  /// their primaries on the way out).
  void stop() {
    if (!started_) return;
    stop_.store(true, std::memory_order_release);
    runner_.join();
    sched_.reset();
    started_ = false;
  }

  // ------------------------------------------------------------ clients

  /// A client lane: submits requests to any shard and reaps responses,
  /// enforcing the per-lane in-flight bound that keeps the owner's egress
  /// push infallible. One thread per Client; distinct Clients are fully
  /// independent (private SPSC lanes).
  class Client {
   public:
    /// Route and enqueue one request. `now_tsc` is the submission stamp
    /// (pass rdtsc() — taking it as a parameter lets callers amortize one
    /// timestamp over a submission batch). Returns false when the lane is
    /// saturated (in-flight bound or ingress full): poll() and retry.
    bool try_submit(FlowKey key, std::uint32_t bytes, std::uint32_t burst,
                    std::uint64_t now_tsc) {
      const std::size_t s = srv_->shard_of(key);
      if (outstanding_[s] >= srv_->cfg_.ring_capacity) return false;
      if (!srv_->shards_[s]->ingress(lane_).try_push(
              Request{key, bytes, burst, now_tsc})) {
        return false;
      }
      ++outstanding_[s];
      ++in_flight_;
      return true;
    }

    /// Reap completed responses from every shard. Each response's sojourn
    /// (reap tsc − submit tsc) is recorded into `hist` when non-null; one
    /// timestamp per non-empty shard batch. Returns responses reaped.
    std::size_t poll(LogHistogram* hist = nullptr) {
      std::size_t reaped = 0;
      for (std::size_t s = 0; s < srv_->shards_.size(); ++s) {
        if (outstanding_[s] == 0) continue;
        const std::size_t n =
            srv_->shards_[s]->egress(lane_).pop_some(buf_.data(), buf_.size());
        if (n == 0) continue;
        if (hist != nullptr) {
          const std::uint64_t now = rdtsc();
          for (std::size_t i = 0; i < n; ++i) {
            hist->record(now - buf_[i].submit_tsc);
          }
        }
        outstanding_[s] -= static_cast<std::uint32_t>(n);
        in_flight_ -= n;
        reaped += n;
      }
      return reaped;
    }

    std::size_t in_flight() const noexcept { return in_flight_; }
    std::size_t lane() const noexcept { return lane_; }

   private:
    friend class Server;
    Client(Server* srv, std::size_t lane)
        : srv_(srv),
          lane_(lane),
          outstanding_(srv->shards_.size(), 0),
          buf_(srv->cfg_.batch_limit) {}

    Server* srv_;
    std::size_t lane_;
    std::vector<std::uint32_t> outstanding_;  // per shard
    std::size_t in_flight_ = 0;
    std::vector<Response> buf_;
  };

  /// Claim the next client lane. At most cfg.max_clients lanes exist.
  Client make_client() {
    const std::size_t lane =
        next_lane_.fetch_add(1, std::memory_order_relaxed);
    LBMF_CHECK_MSG(lane < cfg_.max_clients, "client lanes exhausted");
    return Client(this, lane);
  }

  // ------------------------------------------------------ control plane
  //
  // Secondary-side operations; any non-owner thread. Do not call once
  // stop() has begun.

  /// Install or change one flow's rule. Returns whether the flow existed.
  bool update_rule(FlowKey key, std::uint32_t rule) {
    return shards_[shard_of(key)]->table().update_rule(key, rule);
  }

  /// Push a batch of rule updates spanning any number of shards through
  /// ONE secondary wave: all touched shards' gates + intents first, one
  /// fence, one overlapped serialize_many, then the per-shard applies.
  /// Returns how many updates hit an existing flow.
  std::size_t push_rules_wave(std::span<const RuleUpdate> updates) {
    std::vector<std::vector<RuleUpdate>> per(shards_.size());
    for (const RuleUpdate& u : updates) per[shard_of(u.key)].push_back(u);
    std::vector<std::size_t> touched;
    for (std::size_t s = 0; s < per.size(); ++s) {
      if (!per[s].empty()) touched.push_back(s);
    }
    std::vector<AsymmetricMutex<P>*> ms;  // ascending shard order
    ms.reserve(touched.size());
    for (std::size_t s : touched) {
      ms.push_back(&shards_[s]->table().sync_mutex());
    }
    std::size_t existed = 0;
    lock_secondary_wave<P>(ms);
    for (std::size_t s : touched) {
      for (const RuleUpdate& u : per[s]) {
        existed += shards_[s]->table().upsert_rule_locked(u.key, u.rule) ? 1 : 0;
      }
    }
    unlock_secondary_wave<P>(ms);
    return existed;
  }

  /// Sequential baseline for the same batch: one full secondary
  /// acquisition (fence + remote round trip) per update. This is the
  /// E19 ablation's comparison leg, not a recommended path.
  std::size_t push_rules_sequential(std::span<const RuleUpdate> updates) {
    std::size_t existed = 0;
    for (const RuleUpdate& u : updates) {
      existed += update_rule(u.key, u.rule) ? 1 : 0;
    }
    return existed;
  }

  /// Consistent table-wide packet total: every shard is held (via one
  /// wave) while the totals are read, so concurrent owner updates cannot
  /// tear the sum across shards.
  std::uint64_t total_packets() {
    std::vector<AsymmetricMutex<P>*> ms = all_mutexes();
    lock_secondary_wave<P>(ms);
    std::uint64_t total = 0;
    for (auto& sh : shards_) total += sh->table().total_packets_locked();
    unlock_secondary_wave<P>(ms);
    return total;
  }

  /// Evict every flow with fewer than `min_packets` packets, across all
  /// shards, under one wave. Returns flows evicted.
  std::size_t evict_sweep(std::uint64_t min_packets) {
    std::vector<AsymmetricMutex<P>*> ms = all_mutexes();
    lock_secondary_wave<P>(ms);
    std::size_t evicted = 0;
    for (auto& sh : shards_) {
      evicted += sh->table().evict_below_locked(min_packets);
    }
    unlock_secondary_wave<P>(ms);
    return evicted;
  }

  // -------------------------------------------------------------- stats

  Shard<P>& shard(std::size_t i) { return *shards_[i]; }

  /// Lock-free momentary snapshot (exact after stop()).
  ServerStats stats() const {
    ServerStats out;
    out.shards.reserve(shards_.size());
    for (const auto& sh : shards_) {
      ShardStats s = sh->stats();
      out.requests += s.requests;
      out.packets += s.packets;
      out.flows += s.flows;
      out.grows += s.grows;
      out.policy_switches += s.policy_switches;
      out.shards.push_back(std::move(s));
    }
    return out;
  }

  /// Sum of live flows only (the cheap poll the fill bench spins on).
  std::size_t live_flows() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->stats().flows;
    return n;
  }

 private:
  std::vector<AsymmetricMutex<P>*> all_mutexes() {
    std::vector<AsymmetricMutex<P>*> ms;
    ms.reserve(shards_.size());
    for (auto& sh : shards_) ms.push_back(&sh->table().sync_mutex());
    return ms;
  }

  ServeConfig cfg_;
  std::vector<std::unique_ptr<Shard<P>>> shards_;
  std::unique_ptr<ws::Scheduler<SymmetricFence>> sched_;
  std::thread runner_;
  bool started_ = false;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> ready_{0};
  std::atomic<std::size_t> next_lane_{0};
};

}  // namespace lbmf::serve
