#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lbmf::adapt {

/// The three regimes the E17 cost-frontier sweep distinguishes, collapsed
/// from concrete per-hole assignments to what the *runtime* can dispatch on:
///
///   kSymmetric     — {mfence, mfence}: the primary pays a real StoreLoad
///                    fence on every announce; secondaries never serialize
///                    remotely. Wins when the guarded location is contended
///                    (steal-heavy phases) or remote trips are expensive.
///   kAsymmetric    — the paper's mix: primary l-mfence (compiler fence +
///                    remote serialization on demand), secondary mfence +
///                    serialize. Wins when the primary:secondary frequency
///                    ratio is high enough to amortize the round trips.
///   kDoubleLmfence — both announces l-mfence. Only optimal when a remote
///                    round trip costs a few tens-to-hundreds of cycles.
///                    Realizing it needs a serialization backend that can
///                    invert roles (either side may run the light path):
///                    membarrier-pair or simulated-LE/ST. The signal
///                    backend cannot, so AdaptiveFence degrades the mode
///                    to kAsymmetric there (see AdaptiveFence::realize).
enum class PolicyMode : std::uint8_t {
  kSymmetric = 0,
  kAsymmetric = 1,
  kDoubleLmfence = 2,
};

const char* to_string(PolicyMode m) noexcept;
std::optional<PolicyMode> mode_from_string(std::string_view s) noexcept;

/// Collapse one sweep optimum (infer::to_string(Assignment), e.g.
/// "{l-mfence, none, mfence, none}") to a runtime mode by looking at the
/// victim's and the thief's *announce* holes. For the THE-deque litmus the
/// holes are ordered {victim announce, victim retreat, thief announce,
/// thief retreat}, hence the 0/2 defaults.
PolicyMode mode_from_optimum(std::string_view optimum,
                             std::size_t victim_site = 0,
                             std::size_t thief_site = 2);

/// One serialization backend's view of the frontier: the same grid geometry
/// as the base table, re-solved under that backend's capabilities (a
/// non-inverting backend forbids l-mfence on the secondary's sites, so its
/// plane never contains kDoubleLmfence). Produced by the E17 sweep's
/// backend dimension (infer::SweepOptions::backends).
struct BackendPlane {
  std::string backend;            // backend::to_string spelling
  std::vector<PolicyMode> modes;  // row-major, same shape as the base grid
  bool operator==(const BackendPlane&) const = default;
};

/// The crossover frontier as a lookup grid: (primary:secondary frequency
/// ratio × remote round-trip cycles) → PolicyMode. Axes are ascending;
/// modes are row-major with the round-trip axis outer (matching the order
/// infer::run_sweep emits grid points). Lookup snaps to the nearest grid
/// point in log10 space and clamps outside the covered range, so a
/// deployment measuring a 10⁴-cycle signal round trip still lands on the
/// most-expensive-trip row of an LE/ST-era table.
///
/// Beyond the base grid the table may carry per-backend *planes*
/// (BackendPlane): the same axes, re-solved under one serialization
/// backend's capability caps. The three-argument lookup consults the named
/// plane and falls back to the base grid when no plane matches, so callers
/// that never configure a backend see unchanged behavior.
class PolicyTable {
 public:
  /// Aborts (LBMF_CHECK) unless modes.size() == ratios.size() *
  /// roundtrips.size() and both axes are non-empty and ascending.
  PolicyTable(std::vector<double> ratios, std::vector<double> roundtrips,
              std::vector<PolicyMode> modes);

  PolicyMode lookup(double freq_ratio, double roundtrip_cycles) const noexcept;

  /// Plane-aware lookup: consult the plane registered for `backend`, or
  /// the base grid when `backend` is empty / has no plane.
  PolicyMode lookup(double freq_ratio, double roundtrip_cycles,
                    std::string_view backend) const noexcept;

  /// Install (or replace, matching on name) the mode grid consulted for
  /// one backend. Aborts (LBMF_CHECK) unless the plane covers the full
  /// base grid.
  void add_plane(BackendPlane plane);

  /// The frontier distilled from the shipped E17 sweep of the THE-deque
  /// litmus (BENCH_sweep.json), extended past the LE/ST range with two
  /// signal-prototype rows derived from the same site-cost arithmetic
  /// (asymmetric wins once ratio · mfence_cycles outgrows the round trip).
  /// Carries one plane per built-in serialization backend: the signal
  /// plane clamps kDoubleLmfence cells to kAsymmetric (it cannot invert
  /// roles); the membarrier-pair and sim-lest planes additionally mark the
  /// symmetric-traffic column double-l-mfence up through the LE/ST-scale
  /// round-trip rows, where two light announces plus a cheap drain undercut
  /// two full fences.
  static PolicyTable builtin_default();

  /// Parse either the compact table form written by
  /// infer::sweep_to_policy_json —
  ///   {"policy_table":..., "ratios":[...], "roundtrips":[...],
  ///    "modes":["symmetric",...],
  ///    "backends":["signal",...], "plane:signal":["symmetric",...]}
  /// — or a full BENCH_sweep.json (detected by "bench":"sweep"), whose
  /// per-point "optimum" strings are collapsed via mode_from_optimum and
  /// whose optional "backend_planes" section populates the planes.
  /// Returns nullopt on malformed input (a malformed plane drops only the
  /// plane — the base grid still loads).
  static std::optional<PolicyTable> from_json(std::string_view json);

  /// Single-line compact-form JSON (round-trips with from_json).
  std::string to_json() const;

  const std::vector<double>& ratios() const noexcept { return ratios_; }
  const std::vector<double>& roundtrips() const noexcept {
    return roundtrips_;
  }
  const std::vector<PolicyMode>& modes() const noexcept { return modes_; }
  const std::vector<BackendPlane>& planes() const noexcept { return planes_; }

  bool operator==(const PolicyTable&) const = default;

 private:
  std::vector<double> ratios_;
  std::vector<double> roundtrips_;
  std::vector<PolicyMode> modes_;  // roundtrips_.size() x ratios_.size()
  std::vector<BackendPlane> planes_;
};

}  // namespace lbmf::adapt
