#pragma once

/// lbmf::adapt — online fence-policy selection: a per-primary workload
/// monitor (decayed windows over pop/steal rates and measured round-trip
/// latency), the E17 crossover frontier as a runtime lookup table, and the
/// AdaptiveFence policy that re-binds a primary's fence discipline at its
/// own quiescent points. See docs/ARCHITECTURE.md "Adaptive policy
/// selection".

#include "lbmf/adapt/adaptive_fence.hpp"
#include "lbmf/adapt/monitor.hpp"
#include "lbmf/adapt/policy_table.hpp"
#include "lbmf/adapt/selector.hpp"
