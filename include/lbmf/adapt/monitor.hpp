#pragma once

#include <cstdint>

namespace lbmf::adapt {

/// Exponentially-decayed window over a stream of per-sample values: the
/// estimate is the decay-weighted average
///
///     estimate = Σ α(1-α)^k · x_{n-k}  /  Σ α(1-α)^k
///
/// (bias-corrected, so the first samples are not diluted by the implicit
/// zero history). α is the weight of the newest sample: a single burst
/// moves the estimate by at most α of its magnitude, which is what keeps
/// one anomalous window from thrashing the policy choice; the selector's
/// confirmation streak (see selector.hpp) handles the rest.
class DecayedWindow {
 public:
  explicit DecayedWindow(double alpha = 0.2) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
    weight_ = alpha_ + (1.0 - alpha_) * weight_;
    ++samples_;
  }

  /// 0 before the first sample.
  double estimate() const noexcept {
    return weight_ > 0.0 ? value_ / weight_ : 0.0;
  }

  std::uint64_t samples() const noexcept { return samples_; }

  void reset() noexcept {
    value_ = 0.0;
    weight_ = 0.0;
    samples_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  double weight_ = 0.0;
  std::uint64_t samples_ = 0;
};

struct MonitorConfig {
  /// EWMA weight of the newest window for the pop/steal rates.
  double rate_alpha = 0.2;
  /// EWMA weight of the newest round-trip measurement.
  double roundtrip_alpha = 0.2;
  /// Reported when no round-trip has been measured yet: the paper's
  /// Sec. 5 signal-prototype constant, i.e. assume serialization is
  /// expensive until proven otherwise.
  double default_roundtrip_cycles = 10'000.0;
};

/// Per-deque (per-primary) workload estimator. Feed it cumulative event
/// counters — the victim's announce count and the steal attempts against
/// its deque, straight from ws::DequeStats — once per sampling window; it
/// differences consecutive snapshots and keeps decayed windows of both
/// rates plus the measured remote round trip.
class WorkloadMonitor {
 public:
  explicit WorkloadMonitor(MonitorConfig cfg = {}) noexcept
      : cfg_(cfg), pops_(cfg.rate_alpha), steals_(cfg.rate_alpha),
        roundtrip_(cfg.roundtrip_alpha) {}

  /// One sampling window. `pops_total` / `steals_total` are cumulative
  /// (monotone except across a reset_stats(), which is detected and treated
  /// as a fresh baseline). `roundtrip_cycles` <= 0 means "no measurement
  /// this window" and leaves the round-trip estimate untouched.
  void sample(std::uint64_t pops_total, std::uint64_t steals_total,
              double roundtrip_cycles = 0.0) noexcept {
    pops_.add(delta(pops_total, &last_pops_));
    steals_.add(delta(steals_total, &last_steals_));
    if (roundtrip_cycles > 0.0) roundtrip_.add(roundtrip_cycles);
  }

  /// Decayed pops-per-window : steals-per-window ratio — the runtime analogue
  /// of the sweep's victim-freq axis. A deque nobody steals from reports a
  /// very large ratio (the asymmetric corner); a steal-storm reports ~0.
  double freq_ratio() const noexcept {
    const double p = pops_.estimate();
    const double s = steals_.estimate();
    return (p + kFloor) / (s + kFloor);
  }

  /// Decayed remote round-trip estimate, or the configured default before
  /// any measurement lands.
  double roundtrip_cycles() const noexcept {
    return roundtrip_.samples() > 0 ? roundtrip_.estimate()
                                    : cfg_.default_roundtrip_cycles;
  }

  double pops_per_window() const noexcept { return pops_.estimate(); }
  double steals_per_window() const noexcept { return steals_.estimate(); }
  std::uint64_t windows() const noexcept { return pops_.samples(); }

 private:
  /// Rate floor: keeps the ratio finite and maps (0 pops, 0 steals) — an
  /// idle deque — to ratio 1, the neutral middle of the table.
  static constexpr double kFloor = 1e-6;

  double delta(std::uint64_t total, std::uint64_t* last) noexcept {
    // A counter that moved backwards means reset_stats() ran concurrently.
    // The events since the reset are indistinguishable from the window that
    // was lost to it, so report an empty window and re-baseline on the new
    // total: counting `total` itself would spike the EWMA with a delta that
    // conflates pre- and post-reset activity.
    const double d =
        total >= *last ? static_cast<double>(total - *last) : 0.0;
    *last = total;
    return d;
  }

  MonitorConfig cfg_;
  DecayedWindow pops_;
  DecayedWindow steals_;
  DecayedWindow roundtrip_;
  std::uint64_t last_pops_ = 0;
  std::uint64_t last_steals_ = 0;
};

}  // namespace lbmf::adapt
