#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>

#include "lbmf/adapt/policy_table.hpp"
#include "lbmf/backend/backend.hpp"
#include "lbmf/core/fence.hpp"
#include "lbmf/core/membarrier.hpp"
#include "lbmf/core/policies.hpp"
#include "lbmf/core/serializer.hpp"
#include "lbmf/util/cacheline.hpp"

namespace lbmf::adapt {

/// A FencePolicy whose strength is chosen *per primary, at runtime*: each
/// registered primary carries a mode cell (PolicyMode) that secondaries
/// consult, and the primary re-binds at its own quiescent points from a
/// monitor-driven request (see selector.hpp and ws::Scheduler's adaptation
/// hook). This is the runtime realization of the E17 sweep's frontier: the
/// same deployment runs {mfence, mfence} through a steal-storm and the
/// paper's asymmetric protocol through a pop-heavy phase, without
/// recompiling or even re-registering.
///
/// Each primary is additionally bound to a serialization *backend*
/// (backend::BackendId, re-bindable at quiescent points like the mode): the
/// mechanism secondaries use to drain it remotely. Backends differ in what
/// regimes they can realize — only a backend whose caps().inverts_roles
/// holds (membarrier-pair; sim-lest on membarrier kernels) lets the
/// *primary* drain its peers too, which is what the double-l-mfence regime
/// requires.
///
/// Mode semantics on each side of the Dekker duality:
///
///   kSymmetric      primary_fence = mfence;          serialize = no-op
///   kAsymmetric     primary_fence = compiler fence;  serialize = remote trip
///   kDoubleLmfence  both sides run the light path: primary_fence *and*
///                   secondary_fence(h) are compiler fences, and each side
///                   pays a remote drain at conflict time instead —
///                   serialize(h) for the secondary, serialize_peers(h) for
///                   the primary. Requires a role-inverting backend; when the
///                   bound backend cannot invert, quiescent_point() *books*
///                   the request but *realizes* kAsymmetric (visible via
///                   booked_mode() vs realized_mode(), counted in
///                   degraded_count()) — it never silently pretends.
///
/// ## Why switching mid-run is safe (proof sketch)
///
/// Def. 2 of the paper requires a *serialization point* between a primary's
/// guarded store and the moment a secondary may trust its read of the
/// primary's flag: either the primary's own fence (symmetric) or the remote
/// serialization the secondary performs (asymmetric, double). A mode switch
/// is the one place both obligations could be dropped at once — the primary
/// stops fencing while a secondary, still assuming the old mode, skips the
/// trip. quiescent_point() closes that window with a single locked RMW on
/// the mode cell, executed by the primary *between* protocol operations (no
/// announce in flight):
///
///   * The RMW is a full StoreLoad fence, so every store of the *old*
///     regime has drained before the new mode becomes visible — it is
///     itself the Def. 2 serialization point between the regimes.
///   * It is a store, so (TSO, FIFO store buffer) any announce issued under
///     the *new* regime becomes visible only after the new mode does.
///
/// A secondary orders its own announce before the mode read — with the
/// mfence of secondary_fence in the symmetric/asymmetric regimes, or, when
/// secondary_fence(h) read kDoubleLmfence and went light, with the full
/// barrier its serialize(h) performs before the conflict-deciding read (the
/// membarrier broadcast is a full barrier on the *caller* as well as a drain
/// of every peer). Then it acts on the mode it read:
///
///   * New mode read ⇒ by the first bullet every old-regime store is
///     already visible, and in-flight protocol state is per the new mode,
///     which the secondary now honours.
///   * Old mode read ⇒ the mode publication was not yet visible to it, so
///     by the second bullet *no new-regime announce is visible either* —
///     every store the secondary might miss by acting on the old mode
///     belongs to the new regime, and the primary issued those only after
///     the RMW completed, i.e. after the secondary's own announce (ordered
///     before its mode read as above) was globally visible. The primary's
///     next conflict check therefore observes the secondary and retreats to
///     the gated slow path; the task race resolves there, just as in the
///     steady-state protocol.
///
/// One wrinkle is specific to leaving double-l-mfence: a secondary may read
/// kDoubleLmfence in secondary_fence(h) (and go light), then find the mode
/// already switched when serialize(h) re-reads it — at which point no
/// membarrier trip would run and the secondary would be left with *no*
/// StoreLoad between its announce and its flag read. serialize(h) closes
/// this with a thread-local "weak announce" note: secondary_fence(h) sets it
/// when it goes light, and serialize(h) issues a local full fence whenever
/// the note is set but the trip it performs would not be a full barrier on
/// the caller. The straddling secondary thus always has its own
/// serialization point, and the switching argument above applies unchanged.
///
/// Switching is thus linearized at the RMW: before it the pair runs the old
/// protocol end-to-end, after it the new one, and the straddling case
/// degrades to the protocol's own conflict path rather than to a missed
/// serialization.
class AdaptiveFence {
 public:
  static constexpr std::size_t kMaxPrimaries = 256;

  struct Slot {
    /// Current *realized* regime; written only by the registered primary
    /// (inside quiescent_point), read by secondaries on every serialize.
    alignas(kCacheLineSize) std::atomic<PolicyMode> mode{
        PolicyMode::kSymmetric};
    /// Requested regime; written by any controller thread, adopted (after
    /// capability clamping) by the primary at its next quiescent point.
    std::atomic<PolicyMode> requested{PolicyMode::kSymmetric};
    /// Last regime the controller's request *booked* at a quiescent point,
    /// before capability clamping — realized_mode() == booked_mode() unless
    /// the bound backend could not serve the request.
    std::atomic<PolicyMode> booked{PolicyMode::kSymmetric};
    /// Serialization backend secondaries use to drain this primary; written
    /// at quiescent points, advisory-read (relaxed) by secondaries after the
    /// seq_cst mode load.
    std::atomic<backend::BackendId> bound_backend{backend::BackendId::kSignal};
    std::atomic<backend::BackendId> requested_backend{
        backend::BackendId::kSignal};
    /// Realized transitions (mode cell actually changed).
    std::atomic<std::uint64_t> switches{0};
    /// Booked transitions (controller's request changed) — the pre-fix
    /// switch count, kept so misbooking is measurable.
    std::atomic<std::uint64_t> booked_switches{0};
    /// Quiescent points where the realized regime fell short of the booked
    /// one (backend could not invert roles / could not serialize).
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<bool> used{false};
    std::atomic<bool> live{false};
    SerializerRegistry::Handle sig;
  };

  class Handle {
   public:
    Handle() = default;
    bool valid() const noexcept { return slot_ != nullptr; }

   private:
    friend class AdaptiveFence;
    explicit Handle(Slot* s) noexcept : slot_(s) {}
    Slot* slot_ = nullptr;
  };

  static constexpr bool kAsymmetric = true;

  /// Registers the calling thread with the SerializerRegistry and claims a
  /// mode slot; starts in kSymmetric (the self-sufficient regime — safe
  /// before any monitor has spoken) on the process-default backend. One
  /// adaptive registration per thread. Returns an invalid handle when the
  /// pool is exhausted, in which case primary_fence() falls back to a real
  /// fence and serialize() to a no-op: the pair degenerates to
  /// SymmetricFence.
  static Handle register_primary();
  static void unregister_primary(Handle& h);

  /// Hot path: dispatch on the calling thread's own mode (thread-local;
  /// the mode cell is only ever written by this same thread).
  static void primary_fence() noexcept;

  static void secondary_fence() noexcept { store_load_fence(); }

  /// Handle-aware secondary fence: compiler-only when the primary's
  /// realized mode is kDoubleLmfence (the following serialize(h) supplies
  /// the secondary's serialization point), a real fence otherwise.
  static void secondary_fence(const Handle& h) noexcept;

  /// Dispatch on the primary's current mode: no remote work when the
  /// primary fences for itself, a trip through the primary's bound backend
  /// (signal round trip, membarrier broadcast, or simulated LE/ST) when it
  /// does not.
  static bool serialize(const Handle& h);

  /// Primary-side drain of every peer — called by the registered primary
  /// between its announce and its conflict-deciding read. A no-op (false)
  /// unless the realized mode is kDoubleLmfence, where the bound backend's
  /// broadcast both serializes the caller and drains the peers.
  static bool serialize_peers(const Handle& h);

  /// Batched wave: symmetric primaries are skipped, and asymmetric
  /// primaries are bucketed per bound backend — signal-mode primaries share
  /// one overlapped wave, membarrier-backed ones collapse into a single
  /// broadcast.
  static std::size_t serialize_many(std::span<const Handle> hs);

  static constexpr const char* name() noexcept { return "adaptive"; }

  // -------------------------------------------------------------------
  // Control surface (the FencePolicy concept stops above this line)
  // -------------------------------------------------------------------

  /// Ask the primary behind `h` to move to `m` at its next quiescent
  /// point. Callable from any thread. Returns false on an invalid handle.
  static bool request_mode(const Handle& h, PolicyMode m) noexcept;

  /// Ask the primary behind `h` to re-bind to backend `b` at its next
  /// quiescent point. Callable from any thread.
  static bool request_backend(const Handle& h, backend::BackendId b) noexcept;

  /// Adopt the requested mode and backend. MUST be called by the registered
  /// primary itself, strictly between protocol operations (no announce in
  /// flight) — a worker's own scheduling-loop boundary, a safepoint, an
  /// epoch edge. The request is first *booked*, then clamped to what the
  /// requested backend can realize (kDoubleLmfence needs inverts_roles;
  /// kAsymmetric needs a working remote drain; anything unservable degrades
  /// toward kSymmetric, loudly — warn-once + degraded_count()). Returns
  /// true iff the *realized* mode changed.
  static bool quiescent_point(const Handle& h);

  /// The regime actually in force — what primary_fence()/serialize()
  /// dispatch on. current_mode() is a synonym (kept for existing callers).
  static PolicyMode realized_mode(const Handle& h) noexcept;
  static PolicyMode current_mode(const Handle& h) noexcept;
  /// The regime last booked from the controller's request, before
  /// capability clamping.
  static PolicyMode booked_mode(const Handle& h) noexcept;
  static PolicyMode requested_mode(const Handle& h) noexcept;

  /// Realized transitions — what policy_switches / BENCH_adapt.json count.
  static std::uint64_t switch_count(const Handle& h) noexcept;
  /// Booked transitions; booked_switch_count() - switch_count() > 0 means
  /// some requests could not be realized as asked.
  static std::uint64_t booked_switch_count(const Handle& h) noexcept;
  /// Quiescent points that clamped the booked regime down.
  static std::uint64_t degraded_count(const Handle& h) noexcept;

  static backend::BackendId current_backend(const Handle& h) noexcept;

  /// Process-wide default backend new registrations start on. Intended to
  /// be set once at startup; per-primary re-binding goes through
  /// request_backend() + quiescent_point().
  static void set_backend(backend::BackendId b) noexcept;
  static backend::BackendId backend_id() noexcept;
};

static_assert(FencePolicy<AdaptiveFence>);

/// FencePolicy extension the scheduler's adaptation hook dispatches on:
/// policies whose per-primary strength can be re-bound live.
template <typename P>
concept AdaptiveFencePolicy =
    FencePolicy<P> && requires(const typename P::Handle h, PolicyMode m) {
      { P::request_mode(h, m) } -> std::convertible_to<bool>;
      { P::quiescent_point(h) } -> std::convertible_to<bool>;
      { P::current_mode(h) } -> std::same_as<PolicyMode>;
      { P::realized_mode(h) } -> std::same_as<PolicyMode>;
      { P::switch_count(h) } -> std::convertible_to<std::uint64_t>;
    };

static_assert(AdaptiveFencePolicy<AdaptiveFence>);
static_assert(!AdaptiveFencePolicy<SymmetricFence>);

}  // namespace lbmf::adapt
